file(REMOVE_RECURSE
  "CMakeFiles/kernel_tests.dir/test_fault_injection.cc.o"
  "CMakeFiles/kernel_tests.dir/test_fault_injection.cc.o.d"
  "CMakeFiles/kernel_tests.dir/test_kernels.cc.o"
  "CMakeFiles/kernel_tests.dir/test_kernels.cc.o.d"
  "kernel_tests"
  "kernel_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
