file(REMOVE_RECURSE
  "CMakeFiles/protocol_tests.dir/test_mesi.cc.o"
  "CMakeFiles/protocol_tests.dir/test_mesi.cc.o.d"
  "CMakeFiles/protocol_tests.dir/test_protocols.cc.o"
  "CMakeFiles/protocol_tests.dir/test_protocols.cc.o.d"
  "CMakeFiles/protocol_tests.dir/test_runtime_integration.cc.o"
  "CMakeFiles/protocol_tests.dir/test_runtime_integration.cc.o.d"
  "CMakeFiles/protocol_tests.dir/test_stress.cc.o"
  "CMakeFiles/protocol_tests.dir/test_stress.cc.o.d"
  "CMakeFiles/protocol_tests.dir/test_table_cache.cc.o"
  "CMakeFiles/protocol_tests.dir/test_table_cache.cc.o.d"
  "CMakeFiles/protocol_tests.dir/test_timing.cc.o"
  "CMakeFiles/protocol_tests.dir/test_timing.cc.o.d"
  "CMakeFiles/protocol_tests.dir/test_transitions.cc.o"
  "CMakeFiles/protocol_tests.dir/test_transitions.cc.o.d"
  "protocol_tests"
  "protocol_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
