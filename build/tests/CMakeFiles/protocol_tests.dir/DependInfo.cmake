
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_mesi.cc" "tests/CMakeFiles/protocol_tests.dir/test_mesi.cc.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/test_mesi.cc.o.d"
  "/root/repo/tests/test_protocols.cc" "tests/CMakeFiles/protocol_tests.dir/test_protocols.cc.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/test_protocols.cc.o.d"
  "/root/repo/tests/test_runtime_integration.cc" "tests/CMakeFiles/protocol_tests.dir/test_runtime_integration.cc.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/test_runtime_integration.cc.o.d"
  "/root/repo/tests/test_stress.cc" "tests/CMakeFiles/protocol_tests.dir/test_stress.cc.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/test_stress.cc.o.d"
  "/root/repo/tests/test_table_cache.cc" "tests/CMakeFiles/protocol_tests.dir/test_table_cache.cc.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/test_table_cache.cc.o.d"
  "/root/repo/tests/test_timing.cc" "tests/CMakeFiles/protocol_tests.dir/test_timing.cc.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/test_timing.cc.o.d"
  "/root/repo/tests/test_transitions.cc" "tests/CMakeFiles/protocol_tests.dir/test_transitions.cc.o" "gcc" "tests/CMakeFiles/protocol_tests.dir/test_transitions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/cohesion_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/cohesion_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/cohesion_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/cohesion/CMakeFiles/cohesion_cohesion.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cohesion_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
