file(REMOVE_RECURSE
  "CMakeFiles/unit_tests.dir/test_address_map.cc.o"
  "CMakeFiles/unit_tests.dir/test_address_map.cc.o.d"
  "CMakeFiles/unit_tests.dir/test_cache_array.cc.o"
  "CMakeFiles/unit_tests.dir/test_cache_array.cc.o.d"
  "CMakeFiles/unit_tests.dir/test_coherence.cc.o"
  "CMakeFiles/unit_tests.dir/test_coherence.cc.o.d"
  "CMakeFiles/unit_tests.dir/test_cotask.cc.o"
  "CMakeFiles/unit_tests.dir/test_cotask.cc.o.d"
  "CMakeFiles/unit_tests.dir/test_event_queue.cc.o"
  "CMakeFiles/unit_tests.dir/test_event_queue.cc.o.d"
  "CMakeFiles/unit_tests.dir/test_harness.cc.o"
  "CMakeFiles/unit_tests.dir/test_harness.cc.o.d"
  "CMakeFiles/unit_tests.dir/test_mem.cc.o"
  "CMakeFiles/unit_tests.dir/test_mem.cc.o.d"
  "CMakeFiles/unit_tests.dir/test_runtime_units.cc.o"
  "CMakeFiles/unit_tests.dir/test_runtime_units.cc.o.d"
  "unit_tests"
  "unit_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
