# Empty dependencies file for scale_tests.
# This may be replaced when dependencies are built.
