file(REMOVE_RECURSE
  "CMakeFiles/scale_tests.dir/test_paper_scale.cc.o"
  "CMakeFiles/scale_tests.dir/test_paper_scale.cc.o.d"
  "scale_tests"
  "scale_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
