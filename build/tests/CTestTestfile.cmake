# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(unit_tests "/root/repo/build/tests/unit_tests")
set_tests_properties(unit_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;40;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(protocol_tests "/root/repo/build/tests/protocol_tests")
set_tests_properties(protocol_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;41;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(kernel_tests "/root/repo/build/tests/kernel_tests")
set_tests_properties(kernel_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;42;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(scale_tests "/root/repo/build/tests/scale_tests")
set_tests_properties(scale_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;43;add_test;/root/repo/tests/CMakeLists.txt;0;")
