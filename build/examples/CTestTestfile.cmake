# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "2" "1")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heterogeneous_offload "/root/repo/build/examples/heterogeneous_offload")
set_tests_properties(example_heterogeneous_offload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_image_pipeline "/root/repo/build/examples/image_pipeline")
set_tests_properties(example_image_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_protocol_trace "/root/repo/build/examples/protocol_trace")
set_tests_properties(example_protocol_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
