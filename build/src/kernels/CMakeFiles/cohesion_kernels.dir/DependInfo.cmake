
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/cg.cc" "src/kernels/CMakeFiles/cohesion_kernels.dir/cg.cc.o" "gcc" "src/kernels/CMakeFiles/cohesion_kernels.dir/cg.cc.o.d"
  "/root/repo/src/kernels/dmm.cc" "src/kernels/CMakeFiles/cohesion_kernels.dir/dmm.cc.o" "gcc" "src/kernels/CMakeFiles/cohesion_kernels.dir/dmm.cc.o.d"
  "/root/repo/src/kernels/gjk.cc" "src/kernels/CMakeFiles/cohesion_kernels.dir/gjk.cc.o" "gcc" "src/kernels/CMakeFiles/cohesion_kernels.dir/gjk.cc.o.d"
  "/root/repo/src/kernels/heat.cc" "src/kernels/CMakeFiles/cohesion_kernels.dir/heat.cc.o" "gcc" "src/kernels/CMakeFiles/cohesion_kernels.dir/heat.cc.o.d"
  "/root/repo/src/kernels/kmeans.cc" "src/kernels/CMakeFiles/cohesion_kernels.dir/kmeans.cc.o" "gcc" "src/kernels/CMakeFiles/cohesion_kernels.dir/kmeans.cc.o.d"
  "/root/repo/src/kernels/mri.cc" "src/kernels/CMakeFiles/cohesion_kernels.dir/mri.cc.o" "gcc" "src/kernels/CMakeFiles/cohesion_kernels.dir/mri.cc.o.d"
  "/root/repo/src/kernels/registry.cc" "src/kernels/CMakeFiles/cohesion_kernels.dir/registry.cc.o" "gcc" "src/kernels/CMakeFiles/cohesion_kernels.dir/registry.cc.o.d"
  "/root/repo/src/kernels/sobel.cc" "src/kernels/CMakeFiles/cohesion_kernels.dir/sobel.cc.o" "gcc" "src/kernels/CMakeFiles/cohesion_kernels.dir/sobel.cc.o.d"
  "/root/repo/src/kernels/stencil.cc" "src/kernels/CMakeFiles/cohesion_kernels.dir/stencil.cc.o" "gcc" "src/kernels/CMakeFiles/cohesion_kernels.dir/stencil.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/cohesion_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/cohesion_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/cohesion_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/cohesion/CMakeFiles/cohesion_cohesion.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cohesion_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
