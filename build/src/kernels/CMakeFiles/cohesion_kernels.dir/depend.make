# Empty dependencies file for cohesion_kernels.
# This may be replaced when dependencies are built.
