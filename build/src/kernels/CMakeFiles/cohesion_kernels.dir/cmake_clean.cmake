file(REMOVE_RECURSE
  "CMakeFiles/cohesion_kernels.dir/cg.cc.o"
  "CMakeFiles/cohesion_kernels.dir/cg.cc.o.d"
  "CMakeFiles/cohesion_kernels.dir/dmm.cc.o"
  "CMakeFiles/cohesion_kernels.dir/dmm.cc.o.d"
  "CMakeFiles/cohesion_kernels.dir/gjk.cc.o"
  "CMakeFiles/cohesion_kernels.dir/gjk.cc.o.d"
  "CMakeFiles/cohesion_kernels.dir/heat.cc.o"
  "CMakeFiles/cohesion_kernels.dir/heat.cc.o.d"
  "CMakeFiles/cohesion_kernels.dir/kmeans.cc.o"
  "CMakeFiles/cohesion_kernels.dir/kmeans.cc.o.d"
  "CMakeFiles/cohesion_kernels.dir/mri.cc.o"
  "CMakeFiles/cohesion_kernels.dir/mri.cc.o.d"
  "CMakeFiles/cohesion_kernels.dir/registry.cc.o"
  "CMakeFiles/cohesion_kernels.dir/registry.cc.o.d"
  "CMakeFiles/cohesion_kernels.dir/sobel.cc.o"
  "CMakeFiles/cohesion_kernels.dir/sobel.cc.o.d"
  "CMakeFiles/cohesion_kernels.dir/stencil.cc.o"
  "CMakeFiles/cohesion_kernels.dir/stencil.cc.o.d"
  "libcohesion_kernels.a"
  "libcohesion_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohesion_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
