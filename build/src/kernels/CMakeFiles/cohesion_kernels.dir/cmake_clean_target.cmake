file(REMOVE_RECURSE
  "libcohesion_kernels.a"
)
