# Empty dependencies file for cohesion_harness.
# This may be replaced when dependencies are built.
