file(REMOVE_RECURSE
  "CMakeFiles/cohesion_harness.dir/report.cc.o"
  "CMakeFiles/cohesion_harness.dir/report.cc.o.d"
  "CMakeFiles/cohesion_harness.dir/runner.cc.o"
  "CMakeFiles/cohesion_harness.dir/runner.cc.o.d"
  "CMakeFiles/cohesion_harness.dir/table.cc.o"
  "CMakeFiles/cohesion_harness.dir/table.cc.o.d"
  "libcohesion_harness.a"
  "libcohesion_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohesion_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
