file(REMOVE_RECURSE
  "libcohesion_harness.a"
)
