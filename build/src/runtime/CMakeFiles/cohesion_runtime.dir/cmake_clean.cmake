file(REMOVE_RECURSE
  "CMakeFiles/cohesion_runtime.dir/runtime.cc.o"
  "CMakeFiles/cohesion_runtime.dir/runtime.cc.o.d"
  "libcohesion_runtime.a"
  "libcohesion_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohesion_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
