# Empty dependencies file for cohesion_runtime.
# This may be replaced when dependencies are built.
