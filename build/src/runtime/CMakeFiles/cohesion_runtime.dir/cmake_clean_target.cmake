file(REMOVE_RECURSE
  "libcohesion_runtime.a"
)
