# Empty dependencies file for cohesion_sim.
# This may be replaced when dependencies are built.
