file(REMOVE_RECURSE
  "CMakeFiles/cohesion_sim.dir/event_queue.cc.o"
  "CMakeFiles/cohesion_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/cohesion_sim.dir/logging.cc.o"
  "CMakeFiles/cohesion_sim.dir/logging.cc.o.d"
  "CMakeFiles/cohesion_sim.dir/trace.cc.o"
  "CMakeFiles/cohesion_sim.dir/trace.cc.o.d"
  "libcohesion_sim.a"
  "libcohesion_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohesion_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
