file(REMOVE_RECURSE
  "libcohesion_sim.a"
)
