file(REMOVE_RECURSE
  "CMakeFiles/cohesion_arch.dir/chip.cc.o"
  "CMakeFiles/cohesion_arch.dir/chip.cc.o.d"
  "CMakeFiles/cohesion_arch.dir/cluster.cc.o"
  "CMakeFiles/cohesion_arch.dir/cluster.cc.o.d"
  "CMakeFiles/cohesion_arch.dir/core.cc.o"
  "CMakeFiles/cohesion_arch.dir/core.cc.o.d"
  "CMakeFiles/cohesion_arch.dir/l3bank.cc.o"
  "CMakeFiles/cohesion_arch.dir/l3bank.cc.o.d"
  "CMakeFiles/cohesion_arch.dir/machine_config.cc.o"
  "CMakeFiles/cohesion_arch.dir/machine_config.cc.o.d"
  "CMakeFiles/cohesion_arch.dir/msg.cc.o"
  "CMakeFiles/cohesion_arch.dir/msg.cc.o.d"
  "CMakeFiles/cohesion_arch.dir/protocol.cc.o"
  "CMakeFiles/cohesion_arch.dir/protocol.cc.o.d"
  "libcohesion_arch.a"
  "libcohesion_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohesion_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
