
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/chip.cc" "src/arch/CMakeFiles/cohesion_arch.dir/chip.cc.o" "gcc" "src/arch/CMakeFiles/cohesion_arch.dir/chip.cc.o.d"
  "/root/repo/src/arch/cluster.cc" "src/arch/CMakeFiles/cohesion_arch.dir/cluster.cc.o" "gcc" "src/arch/CMakeFiles/cohesion_arch.dir/cluster.cc.o.d"
  "/root/repo/src/arch/core.cc" "src/arch/CMakeFiles/cohesion_arch.dir/core.cc.o" "gcc" "src/arch/CMakeFiles/cohesion_arch.dir/core.cc.o.d"
  "/root/repo/src/arch/l3bank.cc" "src/arch/CMakeFiles/cohesion_arch.dir/l3bank.cc.o" "gcc" "src/arch/CMakeFiles/cohesion_arch.dir/l3bank.cc.o.d"
  "/root/repo/src/arch/machine_config.cc" "src/arch/CMakeFiles/cohesion_arch.dir/machine_config.cc.o" "gcc" "src/arch/CMakeFiles/cohesion_arch.dir/machine_config.cc.o.d"
  "/root/repo/src/arch/msg.cc" "src/arch/CMakeFiles/cohesion_arch.dir/msg.cc.o" "gcc" "src/arch/CMakeFiles/cohesion_arch.dir/msg.cc.o.d"
  "/root/repo/src/arch/protocol.cc" "src/arch/CMakeFiles/cohesion_arch.dir/protocol.cc.o" "gcc" "src/arch/CMakeFiles/cohesion_arch.dir/protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cohesion_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/cohesion_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/cohesion/CMakeFiles/cohesion_cohesion.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
