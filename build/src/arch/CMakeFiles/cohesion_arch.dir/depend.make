# Empty dependencies file for cohesion_arch.
# This may be replaced when dependencies are built.
