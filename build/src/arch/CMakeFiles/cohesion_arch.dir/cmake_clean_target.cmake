file(REMOVE_RECURSE
  "libcohesion_arch.a"
)
