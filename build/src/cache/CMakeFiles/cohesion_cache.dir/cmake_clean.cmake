file(REMOVE_RECURSE
  "CMakeFiles/cohesion_cache.dir/cache_array.cc.o"
  "CMakeFiles/cohesion_cache.dir/cache_array.cc.o.d"
  "libcohesion_cache.a"
  "libcohesion_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohesion_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
