# Empty compiler generated dependencies file for cohesion_cache.
# This may be replaced when dependencies are built.
