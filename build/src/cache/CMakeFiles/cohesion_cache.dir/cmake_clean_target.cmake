file(REMOVE_RECURSE
  "libcohesion_cache.a"
)
