file(REMOVE_RECURSE
  "CMakeFiles/cohesion_cohesion.dir/region_table.cc.o"
  "CMakeFiles/cohesion_cohesion.dir/region_table.cc.o.d"
  "libcohesion_cohesion.a"
  "libcohesion_cohesion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohesion_cohesion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
