file(REMOVE_RECURSE
  "libcohesion_cohesion.a"
)
