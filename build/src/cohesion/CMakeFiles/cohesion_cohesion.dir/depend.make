# Empty dependencies file for cohesion_cohesion.
# This may be replaced when dependencies are built.
