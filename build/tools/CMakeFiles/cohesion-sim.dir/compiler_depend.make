# Empty compiler generated dependencies file for cohesion-sim.
# This may be replaced when dependencies are built.
