file(REMOVE_RECURSE
  "CMakeFiles/cohesion-sim.dir/cohesion_sim.cc.o"
  "CMakeFiles/cohesion-sim.dir/cohesion_sim.cc.o.d"
  "cohesion-sim"
  "cohesion-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohesion-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
