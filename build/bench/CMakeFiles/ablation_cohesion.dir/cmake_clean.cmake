file(REMOVE_RECURSE
  "CMakeFiles/ablation_cohesion.dir/ablation_cohesion.cc.o"
  "CMakeFiles/ablation_cohesion.dir/ablation_cohesion.cc.o.d"
  "ablation_cohesion"
  "ablation_cohesion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cohesion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
