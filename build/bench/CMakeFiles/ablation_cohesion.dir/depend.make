# Empty dependencies file for ablation_cohesion.
# This may be replaced when dependencies are built.
