file(REMOVE_RECURSE
  "CMakeFiles/sec44_directory_area.dir/sec44_directory_area.cc.o"
  "CMakeFiles/sec44_directory_area.dir/sec44_directory_area.cc.o.d"
  "sec44_directory_area"
  "sec44_directory_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec44_directory_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
