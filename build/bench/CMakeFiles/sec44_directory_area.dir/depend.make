# Empty dependencies file for sec44_directory_area.
# This may be replaced when dependencies are built.
