
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/sec44_directory_area.cc" "bench/CMakeFiles/sec44_directory_area.dir/sec44_directory_area.cc.o" "gcc" "bench/CMakeFiles/sec44_directory_area.dir/sec44_directory_area.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/cohesion_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/cohesion_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cohesion_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/cohesion_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/cohesion_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/cohesion/CMakeFiles/cohesion_cohesion.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cohesion_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
