# Empty compiler generated dependencies file for fig08_l2_messages.
# This may be replaced when dependencies are built.
