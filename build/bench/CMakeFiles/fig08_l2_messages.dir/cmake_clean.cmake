file(REMOVE_RECURSE
  "CMakeFiles/fig08_l2_messages.dir/fig08_l2_messages.cc.o"
  "CMakeFiles/fig08_l2_messages.dir/fig08_l2_messages.cc.o.d"
  "fig08_l2_messages"
  "fig08_l2_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_l2_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
