file(REMOVE_RECURSE
  "CMakeFiles/fig09_directory_sweep.dir/fig09_directory_sweep.cc.o"
  "CMakeFiles/fig09_directory_sweep.dir/fig09_directory_sweep.cc.o.d"
  "fig09_directory_sweep"
  "fig09_directory_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_directory_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
