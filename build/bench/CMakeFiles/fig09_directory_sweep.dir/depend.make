# Empty dependencies file for fig09_directory_sweep.
# This may be replaced when dependencies are built.
