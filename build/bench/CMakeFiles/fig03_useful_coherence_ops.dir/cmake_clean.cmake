file(REMOVE_RECURSE
  "CMakeFiles/fig03_useful_coherence_ops.dir/fig03_useful_coherence_ops.cc.o"
  "CMakeFiles/fig03_useful_coherence_ops.dir/fig03_useful_coherence_ops.cc.o.d"
  "fig03_useful_coherence_ops"
  "fig03_useful_coherence_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_useful_coherence_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
