# Empty compiler generated dependencies file for fig03_useful_coherence_ops.
# This may be replaced when dependencies are built.
