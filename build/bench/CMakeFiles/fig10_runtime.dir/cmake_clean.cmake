file(REMOVE_RECURSE
  "CMakeFiles/fig10_runtime.dir/fig10_runtime.cc.o"
  "CMakeFiles/fig10_runtime.dir/fig10_runtime.cc.o.d"
  "fig10_runtime"
  "fig10_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
