# Empty dependencies file for fig10_runtime.
# This may be replaced when dependencies are built.
