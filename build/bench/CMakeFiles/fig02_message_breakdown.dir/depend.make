# Empty dependencies file for fig02_message_breakdown.
# This may be replaced when dependencies are built.
