file(REMOVE_RECURSE
  "CMakeFiles/fig02_message_breakdown.dir/fig02_message_breakdown.cc.o"
  "CMakeFiles/fig02_message_breakdown.dir/fig02_message_breakdown.cc.o.d"
  "fig02_message_breakdown"
  "fig02_message_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_message_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
