/**
 * @file
 * cohesion-diff: structured comparison of two statistics documents —
 * the JSON written by `cohesion-sim --stats-json`, a standalone
 * `--host-profile` report, or a whole `cohesion_sweep --out` results
 * file. Both documents are flattened to dotted scalar paths and
 * merge-diffed under optional tolerances:
 *
 *   cohesion-diff a.stats.json b.stats.json
 *   cohesion-diff --rel-tol 0.02 base.json candidate.json
 *   cohesion-diff --no-ignore-host a.json b.json
 *
 * Host-side self-observation (`host.*` subtrees, per-job `wall_sec`,
 * the `latency.host_*` scalars the latency-accounting runner stamps)
 * is wall-clock data and differs run to run by nature; those paths
 * are ignored by default so "byte-identical modulo host time" is exit
 * code 0 — the property CI gates `--jobs 1` vs `--jobs 8` sweeps on.
 * The simulated latency.mode.* / latency.class.* cycle blame is
 * deterministic and always compared.
 *
 * Options:
 *   --abs-tol X        numeric leaves pass when |a-b| <= X
 *   --rel-tol X        ... or |a-b| <= X * max(|a|,|b|)
 *   --ignore SEG       also ignore paths containing segment SEG
 *                      (repeatable)
 *   --ignore-prefix P  also ignore flattened paths starting with P
 *                      (repeatable)
 *   --no-ignore-host   compare host.*, wall_sec and latency.host_* too
 *   --quiet            summary line only, no per-stat lines
 *
 * Exit codes: 0 documents match, 1 differences found, 2 usage error,
 * 3 a file is missing or unreadable, 4 a file is not valid JSON.
 * The distinct codes let CI tell "regression" from "artifact never
 * got produced" from "artifact corrupt".
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "harness/statdiff.hh"
#include "sim/json.hh"

namespace {

[[noreturn]] void
usage(int code)
{
    std::cout <<
        "usage: cohesion-diff [--abs-tol X] [--rel-tol X]\n"
        "                     [--ignore SEG] [--ignore-prefix P]\n"
        "                     [--no-ignore-host] [--quiet]\n"
        "                     A.json B.json\n"
        "exit: 0 match, 1 differ, 2 usage, 3 missing file, 4 bad "
        "JSON\n";
    std::exit(code);
}

/** Read and parse one document; exits 3 / 4 on failure. */
sim::JsonValue
loadDoc(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "cohesion-diff: cannot open " << path << '\n';
        std::exit(3);
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    sim::JsonValue doc;
    std::string err;
    if (!sim::parseJson(text, &doc, &err)) {
        std::cerr << "cohesion-diff: " << path << ": " << err << '\n';
        std::exit(4);
    }
    return doc;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::DiffOptions opts;
    std::vector<std::string> files;
    bool quiet = false;
    bool ignore_host = true;
    std::vector<std::string> extra_ignores;
    std::vector<std::string> extra_prefixes;

    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << flag << " requires a value\n";
                usage(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--abs-tol")) {
            opts.absTol = std::atof(next("--abs-tol"));
        } else if (!std::strcmp(argv[i], "--rel-tol")) {
            opts.relTol = std::atof(next("--rel-tol"));
        } else if (!std::strcmp(argv[i], "--ignore")) {
            extra_ignores.push_back(next("--ignore"));
        } else if (!std::strcmp(argv[i], "--ignore-prefix")) {
            extra_prefixes.push_back(next("--ignore-prefix"));
        } else if (!std::strcmp(argv[i], "--no-ignore-host")) {
            ignore_host = false;
        } else if (!std::strcmp(argv[i], "--quiet")) {
            quiet = true;
        } else if (!std::strcmp(argv[i], "--help")) {
            usage(0);
        } else if (argv[i][0] == '-' && std::strcmp(argv[i], "-")) {
            std::cerr << "unknown option: " << argv[i] << '\n';
            usage(2);
        } else {
            files.push_back(argv[i]);
        }
    }
    if (files.size() != 2) {
        std::cerr << "cohesion-diff: need exactly two files\n";
        usage(2);
    }
    if (!ignore_host) {
        opts.ignoreSegments.clear();
        opts.ignorePrefixes.clear();
    }
    opts.ignoreSegments.insert(opts.ignoreSegments.end(),
                               extra_ignores.begin(),
                               extra_ignores.end());
    opts.ignorePrefixes.insert(opts.ignorePrefixes.end(),
                               extra_prefixes.begin(),
                               extra_prefixes.end());

    sim::JsonValue a = loadDoc(files[0]);
    sim::JsonValue b = loadDoc(files[1]);

    harness::DiffResult d = harness::diffStats(a, b, opts);
    if (quiet) {
        std::size_t added = 0, removed = 0, changed = 0;
        for (const harness::DiffEntry &e : d.entries) {
            switch (e.kind) {
              case harness::DiffEntry::Kind::Added: ++added; break;
              case harness::DiffEntry::Kind::Removed: ++removed; break;
              case harness::DiffEntry::Kind::Changed: ++changed; break;
            }
        }
        if (d.identical()) {
            std::cout << files[0] << " and " << files[1] << " match: "
                      << d.compared << " stats compared\n";
        } else {
            std::cout << files[0] << " vs " << files[1] << ": "
                      << changed << " changed, " << added << " added, "
                      << removed << " removed\n";
        }
    } else {
        harness::printDiff(std::cout, d, files[0], files[1]);
    }
    return d.identical() ? 0 : 1;
}
