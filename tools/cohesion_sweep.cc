/**
 * @file
 * cohesion-sweep: the parallel campaign driver. Two modes:
 *
 * 1. Spec mode — run a declarative multi-configuration campaign:
 *
 *      cohesion-sweep --spec sweep.json --jobs 8 --out results.json
 *
 *    The spec is the cross-product schema of harness/sweep.hh; results
 *    are written as a JSON object whose "jobs" array is in
 *    job-submission order and deterministic for any --jobs value;
 *    host timing (per-job "host" subtrees, the top-level "host"
 *    aggregate) is the one nondeterministic part and is ignored by
 *    cohesion-diff by default. Exit 1 if any job failed.
 *
 *    --progress[=FILE] emits a campaign heartbeat every second —
 *    done/failed/running counts, aggregate events/sec, an ETA — as a
 *    human one-liner on stderr and, with =FILE, as JSON lines. The
 *    monitor thread only reads per-job atomics, so results stay
 *    identical. --host-profile enables the in-simulator host profiler
 *    in every job and reports per-job attribution in the results.
 *
 *    --backend a,b|all overrides the spec's "backends" axis; without
 *    --spec it runs a built-in backend-ablation campaign (every
 *    kernel — or the --quick trio — under cohesion and hwcc modes,
 *    once per requested coherence backend). Unknown backend names
 *    exit 2 listing the registered ones.
 *
 * 2. Baseline mode — re-run the committed perf/paper-metric baseline
 *    and gate on drift:
 *
 *      cohesion-sweep --baseline BENCH_simcore.json [--jobs N]
 *                     [--tolerance-pct 0] [--perf-tolerance-pct 30]
 *                     [--metrics-only | --perf-only] [--kernels a,b,c]
 *
 *    Re-runs the baseline's end-to-end kernels at the same machine
 *    scale and compares (a) the paper metrics — final cycle count and
 *    events fired, which are deterministic, so the default tolerance
 *    is 0% — and (b) events/sec against the recorded throughput.
 *    Exit codes: 0 ok, 1 usage/run error, 2 paper-metric drift,
 *    3 perf regression. CI runs --metrics-only as a blocking gate and
 *    the perf comparison as a separate advisory step.
 *
 *    Perf numbers are only meaningful when each job has a core of its
 *    own; baseline mode therefore defaults to --jobs 1 unless
 *    --metrics-only (wall time irrelevant) or an explicit --jobs is
 *    given.
 */

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "coherence/backend.hh"
#include "harness/journal.hh"
#include "harness/sweep.hh"
#include "kernels/registry.hh"
#include "sim/json.hh"
#include "sim/logging.hh"

namespace {

/** Set by SIGINT/SIGTERM; the engine checks it between jobs. */
std::atomic<bool> g_stop{false};

extern "C" void
stopSignalHandler(int)
{
    g_stop.store(true);
}

[[noreturn]] void
usage(int code)
{
    std::cout <<
        "usage: cohesion-sweep --spec FILE [--jobs N] [--out FILE]\n"
        "                      [--backend a,b|all]\n"
        "                      [--journal FILE | --resume FILE]\n"
        "                      [--progress[=FILE]] [--host-profile]\n"
        "       cohesion-sweep --backend a,b|all [--quick] [--jobs N]\n"
        "                      [--out FILE]    (built-in ablation "
        "campaign)\n"
        "       cohesion-sweep --baseline FILE [--jobs N]\n"
        "                      [--tolerance-pct P] "
        "[--perf-tolerance-pct P]\n"
        "                      [--metrics-only | --perf-only]\n"
        "                      [--kernels a,b,c] [--out FILE]\n"
        "  --spec FILE            declarative sweep (harness/sweep.hh "
        "schema)\n"
        "  --baseline FILE        BENCH_simcore.json drift gate\n"
        "  --backend a,b|all      coherence-backend axis: overrides the\n"
        "                         spec's \"backends\"; without --spec "
        "runs\n"
        "                         the built-in ablation campaign\n"
        "  --list-backends        print registered backends and exit\n"
        "  --jobs N               worker threads (default: all cores;\n"
        "                         baseline perf runs default to 1)\n"
        "  --shards N             intra-run shard threads per job\n"
        "                         (bit-identical results for any N;\n"
        "                         overrides the spec's options.shards)\n"
        "  --out FILE             results JSON (\"-\" = stdout)\n"
        "  --journal FILE         append each finished job to FILE as a\n"
        "                         JSON line; SIGINT/SIGTERM then stop the\n"
        "                         campaign gracefully (running jobs\n"
        "                         finish and are journaled)\n"
        "  --resume FILE          skip jobs already in the journal FILE,\n"
        "                         run the rest, and write a results file\n"
        "                         byte-identical to an uninterrupted\n"
        "                         campaign (implies --journal FILE; the\n"
        "                         journal omits per-job host timing)\n"
        "  --tolerance-pct P      allowed cycles/events drift "
        "(default 0)\n"
        "  --perf-tolerance-pct P allowed events/sec loss (default 30)\n"
        "  --metrics-only         gate only the deterministic metrics\n"
        "  --perf-only            gate only throughput\n"
        "  --kernels a,b,c        restrict baseline/ablation kernels\n"
        "  --quick                baseline/ablation: three fastest "
        "kernels only\n"
        "  --progress[=FILE]      live heartbeat on stderr (and JSON\n"
        "                         lines to FILE)\n"
        "  --host-profile         profile host time inside each job\n"
        "exit: 0 ok, 1 error/failed job, 2 metric drift, 3 perf "
        "regression,\n"
        "      5 interrupted (journal holds finished jobs; rerun with "
        "--resume)\n";
    std::exit(code);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "cohesion-sweep: cannot open " << path << '\n';
        std::exit(1);
    }
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void
writeResultsJson(std::ostream &os,
                 const std::vector<sim::JobResult> &results)
{
    // Everything under the per-job "host" keys and the top-level
    // "host" aggregate is nondeterministic wall-clock data;
    // cohesion-diff skips those subtrees by default so results files
    // still compare identical for any --jobs value.
    os << "{\n  \"schema\": \"cohesion-sweep-results-v2\",\n"
       << "  \"jobs\": [\n";
    double wall_total = 0, wall_max = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const sim::JobResult &r = results[i];
        wall_total += r.wallSec;
        wall_max = std::max(wall_max, r.wallSec);
        os << "    {\"label\": ";
        sim::writeJsonString(os, r.label);
        os << ", \"outcome\": ";
        sim::writeJsonString(os, sim::jobOutcomeName(r.outcome));
        if (r.ok()) {
            os << ", \"cycles\": " << r.run.cycles
               << ", \"events\": " << r.run.eventsRun
               << ", \"instructions\": " << r.run.instructions
               << ", \"msgs\": " << r.run.msgs.total()
               << ", \"dir_evictions\": " << r.run.dirEvictions
               << ", \"l2_misses\": " << r.run.l2Misses
               << ", \"resp_p50\": " << r.run.respLatency.p50()
               << ", \"resp_p95\": " << r.run.respLatency.p95()
               << ", \"resp_p99\": " << r.run.respLatency.p99()
               << ", \"seed\": " << r.run.seed;
            if (r.run.faultSeed) {
                os << ", \"faults_injected\": " << r.run.faultsInjected
                   << ", \"faults_recovered\": " << r.run.faultsRecovered;
            }
        } else {
            os << ", \"what\": ";
            sim::writeJsonString(os, r.what);
            os << ", \"log\": ";
            sim::writeJsonString(os, r.log);
        }
        os << ", \"host\": {\"wall_sec\": " << r.wallSec;
        if (r.ok() && !r.run.hostProfile.empty()) {
            double attr = r.run.hostProfile.attributedNs() / 1e9;
            os << ", \"attributed_sec\": " << attr;
            if (r.run.hostWallSec > 0) {
                os << ", \"attributed_pct\": "
                   << 100.0 * attr / r.run.hostWallSec;
            }
        }
        os << "}}" << (i + 1 < results.size() ? ",\n" : "\n");
    }
    os << "  ],\n  \"host\": {\"jobs\": " << results.size()
       << ", \"wall_sec_total\": " << wall_total
       << ", \"wall_sec_max\": " << wall_max << "}\n}\n";
}

/** Campaign-table footer: where the host time went. */
void
printHostSummary(const std::vector<sim::JobResult> &results)
{
    if (results.empty())
        return;
    double total = 0, slowest = 0;
    const sim::JobResult *slow = nullptr;
    for (const sim::JobResult &r : results) {
        total += r.wallSec;
        if (r.wallSec > slowest) {
            slowest = r.wallSec;
            slow = &r;
        }
    }
    std::cerr << "cohesion-sweep: host time " << total << "s across "
              << results.size() << " jobs";
    if (slow)
        std::cerr << ", slowest " << slow->label << " (" << slowest
                  << "s)";
    std::cerr << '\n';
}

/** CLI-level telemetry options shared by both modes. */
struct ProgressCli
{
    bool enabled = false;
    std::string jsonlPath;
    bool hostProfile = false;
};

int
runSpec(const std::string &spec_path, unsigned jobs, unsigned shards,
        const std::string &out_path, const std::string &journal_path,
        bool resume, const ProgressCli &pcli,
        const std::vector<std::string> &backends,
        const std::vector<std::string> &kernel_filter)
{
    sim::SweepSpec spec;
    std::string err;
    if (spec_path.empty()) {
        // Built-in backend-ablation campaign: every requested kernel
        // under both coherence modes, once per backend.
        spec.kernels = kernel_filter.empty() ? kernels::allKernelNames()
                                             : kernel_filter;
        spec.modes = {arch::CoherenceMode::Cohesion,
                      arch::CoherenceMode::HWccOnly};
    } else if (!sim::SweepSpec::parse(readFile(spec_path), &spec,
                                      &err)) {
        std::cerr << "cohesion-sweep: " << err << '\n';
        // A bad backend name is a usage error, distinct from a broken
        // spec file or a failed job.
        return err.find("unknown backend") != std::string::npos ? 2 : 1;
    }
    if (!backends.empty())
        spec.backends = backends; // CLI overrides the spec's axis
    if (shards)
        spec.shards = shards; // CLI overrides options.shards

    std::vector<sim::SweepPoint> points = spec.expand();

    // Jobs already journaled by an earlier, interrupted campaign are
    // not re-run; their journaled bytes re-enter the results document
    // verbatim, which is what makes a resumed results file
    // byte-identical to an uninterrupted one.
    std::map<std::string, std::string> journaled;
    if (resume) {
        if (!harness::ResultsJournal::load(journal_path, &journaled,
                                           &err)) {
            std::cerr << "cohesion-sweep: " << err << '\n';
            return 1;
        }
    }

    harness::ResultsJournal journal;
    if (!journal_path.empty() &&
        !journal.open(journal_path, &err)) {
        std::cerr << "cohesion-sweep: " << err << '\n';
        return 1;
    }

    std::vector<std::size_t> pending_idx;
    std::vector<sim::SweepJob> sweep_jobs;
    sweep_jobs.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        points[i].hostProfile = pcli.hostProfile;
        if (journaled.count(points[i].label))
            continue;
        pending_idx.push_back(i);
        sweep_jobs.push_back(sim::makeJob(points[i]));
    }
    if (resume) {
        std::cerr << "cohesion-sweep: resuming — "
                  << points.size() - pending_idx.size() << '/'
                  << points.size() << " jobs already journaled\n";
    }

    sim::SweepEngine engine(jobs);
    std::cerr << "cohesion-sweep: " << sweep_jobs.size() << " jobs on "
              << engine.threads() << " threads\n";
    std::ofstream jsonl;
    sim::SweepProgress sp;
    sp.enabled = pcli.enabled;
    if (!pcli.jsonlPath.empty()) {
        jsonl.open(pcli.jsonlPath);
        if (!jsonl) {
            std::cerr << "cohesion-sweep: cannot write "
                      << pcli.jsonlPath << '\n';
            return 1;
        }
        sp.jsonl = &jsonl;
    }
    sp.stop = &g_stop;
    std::signal(SIGINT, stopSignalHandler);
    std::signal(SIGTERM, stopSignalHandler);
    if (journal.isOpen()) {
        sp.onJobDone = [&journal](std::size_t, const sim::JobResult &r) {
            journal.append(r.label, harness::jobObjectJson(r));
        };
    }
    std::vector<sim::JobResult> results = engine.run(sweep_jobs, sp);

    bool interrupted = false;
    unsigned failed = 0;
    for (const sim::JobResult &r : results) {
        if (r.outcome == sim::JobOutcome::Skipped) {
            interrupted = true;
            continue;
        }
        if (!r.ok()) {
            ++failed;
            std::cerr << "FAIL " << r.label << " ["
                      << sim::jobOutcomeName(r.outcome) << "] "
                      << r.what << '\n';
            if (!r.log.empty())
                std::cerr << r.log;
        }
    }
    // Journal-replayed failures count too: a deterministic failure is
    // the same failure on resume.
    for (const sim::SweepPoint &p : points) {
        auto it = journaled.find(p.label);
        if (it == journaled.end())
            continue;
        sim::JsonValue job;
        std::string perr;
        if (sim::parseJson(it->second, &job, &perr)) {
            const sim::JsonValue *o = job.find("outcome");
            if (o && o->isString() && o->str != "ok") {
                ++failed;
                std::cerr << "FAIL " << p.label << " [" << o->str
                          << "] (journaled)\n";
            }
        }
    }

    if (!journal_path.empty()) {
        // Journaled campaigns write the deterministic document (no
        // host-timing blocks): journaled and freshly-run jobs compose
        // byte-stably. An interrupted campaign writes none — the
        // journal is the partial result, --resume completes it.
        if (interrupted) {
            if (!out_path.empty()) {
                std::cerr << "cohesion-sweep: interrupted; not writing "
                          << out_path << " (resume with --resume "
                          << journal_path << ")\n";
            }
        } else {
            std::vector<std::string> objs(points.size());
            for (std::size_t i = 0; i < points.size(); ++i) {
                auto it = journaled.find(points[i].label);
                if (it != journaled.end())
                    objs[i] = it->second;
            }
            for (std::size_t j = 0; j < results.size(); ++j)
                objs[pending_idx[j]] =
                    harness::jobObjectJson(results[j]);
            if (out_path == "-") {
                harness::writeResultsDoc(std::cout, objs);
            } else if (!out_path.empty()) {
                std::ofstream os(out_path);
                if (!os) {
                    std::cerr << "cohesion-sweep: cannot write "
                              << out_path << '\n';
                    return 1;
                }
                harness::writeResultsDoc(os, objs);
            }
        }
    } else if (out_path == "-") {
        writeResultsJson(std::cout, results);
    } else if (!out_path.empty()) {
        std::ofstream os(out_path);
        if (!os) {
            std::cerr << "cohesion-sweep: cannot write " << out_path
                      << '\n';
            return 1;
        }
        writeResultsJson(os, results);
    }

    printHostSummary(results);
    if (interrupted) {
        std::size_t skipped = 0;
        for (const sim::JobResult &r : results)
            skipped += r.outcome == sim::JobOutcome::Skipped;
        std::cerr << "cohesion-sweep: interrupted — " << skipped
                  << " jobs not run";
        if (!journal_path.empty())
            std::cerr << "; resume with --resume " << journal_path;
        std::cerr << '\n';
        return 5;
    }
    std::cerr << "cohesion-sweep: " << points.size() - failed << '/'
              << points.size() << " jobs ok\n";
    return failed ? 1 : 0;
}

struct BaselineKernel
{
    std::string kernel;
    std::uint64_t cycles = 0;
    std::uint64_t events = 0;
    double eventsPerSec = 0;
};

int
runBaseline(const std::string &baseline_path, unsigned jobs,
            bool jobs_given, double tol_pct, double perf_tol_pct,
            bool metrics_only, bool perf_only,
            std::vector<std::string> kernel_filter,
            const std::string &out_path, const ProgressCli &pcli)
{
    sim::JsonValue doc;
    std::string err;
    if (!sim::parseJson(readFile(baseline_path), &doc, &err)) {
        std::cerr << "cohesion-sweep: " << baseline_path << ": " << err
                  << '\n';
        return 1;
    }

    const sim::JsonValue *kernels_v = doc.find("kernels");
    if (!kernels_v || !kernels_v->isArray() || kernels_v->arr.empty()) {
        std::cerr << "cohesion-sweep: baseline has no kernels array\n";
        return 1;
    }
    unsigned scale = 4;
    if (const sim::JsonValue *s = doc.find("workload_scale");
        s && s->isNumber()) {
        scale = static_cast<unsigned>(s->number);
    }
    bool paper = true;
    if (const sim::JsonValue *m = doc.find("machine");
        m && m->isString() && m->str.find("1024 cores") == std::string::npos) {
        paper = false; // scaled baseline; keep the default 4-cluster box
    }

    std::vector<BaselineKernel> base;
    for (const sim::JsonValue &k : kernels_v->arr) {
        BaselineKernel b;
        if (const sim::JsonValue *v = k.find("kernel"); v && v->isString())
            b.kernel = v->str;
        if (const sim::JsonValue *v = k.find("cycles"); v && v->isNumber())
            b.cycles = static_cast<std::uint64_t>(v->number);
        if (const sim::JsonValue *v = k.find("events"); v && v->isNumber())
            b.events = static_cast<std::uint64_t>(v->number);
        if (const sim::JsonValue *v = k.find("events_per_sec");
            v && v->isNumber()) {
            b.eventsPerSec = v->number;
        }
        if (b.kernel.empty() || !kernels::isKernelName(b.kernel)) {
            std::cerr << "cohesion-sweep: baseline names unknown kernel\n";
            return 1;
        }
        if (!kernel_filter.empty() &&
            std::find(kernel_filter.begin(), kernel_filter.end(),
                      b.kernel) == kernel_filter.end()) {
            continue;
        }
        base.push_back(std::move(b));
    }
    if (base.empty()) {
        std::cerr << "cohesion-sweep: kernel filter matched nothing\n";
        return 1;
    }

    // The baseline was recorded one kernel at a time (perf_simcore):
    // audit off, default seed, paper machine. Reproduce that exactly.
    arch::MachineConfig cfg = paper ? arch::MachineConfig::paper1024()
                                    : arch::MachineConfig::scaled(4);
    std::vector<sim::SweepJob> sweep_jobs;
    for (const BaselineKernel &b : base) {
        sim::SweepPoint p;
        p.label = b.kernel;
        p.kernel = b.kernel;
        p.cfg = cfg;
        p.params.scale = scale;
        p.audit = false;
        sweep_jobs.push_back(sim::makeJob(p));
    }

    // Contended cores corrupt the throughput measurement; default to
    // the serial reference unless wall time is irrelevant.
    if (!jobs_given && !metrics_only)
        jobs = 1;
    sim::SweepEngine engine(jobs);
    std::cerr << "cohesion-sweep: baseline gate, " << sweep_jobs.size()
              << " kernels on " << engine.threads() << " threads\n";
    std::ofstream jsonl;
    sim::SweepProgress sp;
    sp.enabled = pcli.enabled;
    if (!pcli.jsonlPath.empty()) {
        jsonl.open(pcli.jsonlPath);
        if (jsonl)
            sp.jsonl = &jsonl;
    }
    std::vector<sim::JobResult> results = engine.run(sweep_jobs, sp);

    bool metric_drift = false, perf_drift = false, run_error = false;
    std::printf("  %-10s %12s %12s %9s %9s  %s\n", "kernel", "cycles",
                "events", "d-cyc%", "d-ev/s%", "verdict");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const sim::JobResult &r = results[i];
        const BaselineKernel &b = base[i];
        if (!r.ok()) {
            run_error = true;
            std::printf("  %-10s %38s  FAIL[%s] %s\n", b.kernel.c_str(),
                        "", sim::jobOutcomeName(r.outcome),
                        r.what.c_str());
            continue;
        }
        double dcyc =
            b.cycles ? 100.0 * (double(r.run.cycles) - double(b.cycles)) /
                           double(b.cycles)
                     : 0.0;
        double dev =
            b.events
                ? 100.0 * (double(r.run.eventsRun) - double(b.events)) /
                      double(b.events)
                : 0.0;
        double eps = r.wallSec > 0 ? double(r.run.eventsRun) / r.wallSec
                                   : 0.0;
        double deps = b.eventsPerSec
                          ? 100.0 * (eps - b.eventsPerSec) /
                                b.eventsPerSec
                          : 0.0;
        bool cell_metric = false, cell_perf = false;
        if (!perf_only &&
            (std::abs(dcyc) > tol_pct || std::abs(dev) > tol_pct)) {
            cell_metric = true;
        }
        if (!metrics_only && deps < -perf_tol_pct)
            cell_perf = true;
        metric_drift |= cell_metric;
        perf_drift |= cell_perf;
        std::printf("  %-10s %12llu %12llu %8.2f%% %8.1f%%  %s\n",
                    b.kernel.c_str(),
                    static_cast<unsigned long long>(r.run.cycles),
                    static_cast<unsigned long long>(r.run.eventsRun),
                    dcyc, deps,
                    cell_metric   ? "METRIC DRIFT"
                    : cell_perf   ? "PERF REGRESSION"
                                  : "ok");
    }

    if (!out_path.empty()) {
        std::ofstream os(out_path);
        if (os)
            writeResultsJson(os, results);
    }

    if (run_error) {
        std::cerr << "cohesion-sweep: baseline kernels failed to run\n";
        return 1;
    }
    if (metric_drift) {
        std::cerr << "cohesion-sweep: paper-metric drift beyond "
                  << tol_pct << "% (cycles/events are deterministic; "
                  << "an intended change needs a baseline refresh: "
                  << "perf_simcore --json " << baseline_path << ")\n";
        return 2;
    }
    if (perf_drift) {
        std::cerr << "cohesion-sweep: events/sec regressed more than "
                  << perf_tol_pct << "% vs baseline\n";
        return 3;
    }
    std::cerr << "cohesion-sweep: baseline ok\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string spec_path, baseline_path, out_path, journal_path;
    bool resume = false;
    unsigned jobs = 0;
    bool jobs_given = false;
    unsigned shards = 0;
    double tol_pct = 0.0;
    double perf_tol_pct = 30.0;
    bool metrics_only = false, perf_only = false, quick = false;
    std::vector<std::string> kernel_filter;
    std::vector<std::string> backend_args;
    ProgressCli pcli;

    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << flag << " requires a value\n";
                usage(1);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--spec")) {
            spec_path = next("--spec");
        } else if (!std::strcmp(argv[i], "--baseline")) {
            baseline_path = next("--baseline");
        } else if (!std::strcmp(argv[i], "--jobs")) {
            jobs = std::atoi(next("--jobs"));
            jobs_given = true;
        } else if (!std::strcmp(argv[i], "--shards")) {
            shards = std::atoi(next("--shards"));
            if (shards < 1) {
                std::cerr << "--shards must be >= 1\n";
                usage(1);
            }
        } else if (!std::strcmp(argv[i], "--out")) {
            out_path = next("--out");
        } else if (!std::strcmp(argv[i], "--journal")) {
            journal_path = next("--journal");
        } else if (!std::strcmp(argv[i], "--resume")) {
            journal_path = next("--resume");
            resume = true;
        } else if (!std::strcmp(argv[i], "--tolerance-pct")) {
            tol_pct = std::atof(next("--tolerance-pct"));
        } else if (!std::strcmp(argv[i], "--perf-tolerance-pct")) {
            perf_tol_pct = std::atof(next("--perf-tolerance-pct"));
        } else if (!std::strcmp(argv[i], "--metrics-only")) {
            metrics_only = true;
        } else if (!std::strcmp(argv[i], "--perf-only")) {
            perf_only = true;
        } else if (!std::strcmp(argv[i], "--quick")) {
            quick = true;
        } else if (!std::strcmp(argv[i], "--progress")) {
            pcli.enabled = true;
        } else if (!std::strncmp(argv[i], "--progress=", 11)) {
            pcli.enabled = true;
            pcli.jsonlPath = argv[i] + 11;
        } else if (!std::strcmp(argv[i], "--host-profile")) {
            pcli.hostProfile = true;
        } else if (!std::strcmp(argv[i], "--backend")) {
            std::stringstream ss(next("--backend"));
            std::string tok;
            while (std::getline(ss, tok, ','))
                if (!tok.empty())
                    backend_args.push_back(tok);
        } else if (!std::strcmp(argv[i], "--list-backends")) {
            for (const auto &b : coherence::backendNames())
                std::cout << b << '\n';
            return 0;
        } else if (!std::strcmp(argv[i], "--kernels")) {
            std::stringstream ss(next("--kernels"));
            std::string tok;
            while (std::getline(ss, tok, ','))
                if (!tok.empty())
                    kernel_filter.push_back(tok);
        } else if (!std::strcmp(argv[i], "--help")) {
            usage(0);
        } else {
            std::cerr << "unknown option: " << argv[i] << '\n';
            usage(1);
        }
    }

    // Expand and validate --backend before picking a mode, so a typo
    // fails fast with the registered list (exit 2, a usage error CI
    // can tell apart from a failed job).
    std::vector<std::string> backends;
    for (const std::string &b : backend_args) {
        if (b == "all") {
            for (const std::string &name : coherence::backendNames())
                backends.push_back(name);
        } else if (!coherence::backendKnown(b)) {
            std::cerr << "cohesion-sweep: unknown backend '" << b
                      << "' (registered: "
                      << coherence::backendListString() << ")\n";
            return 2;
        } else {
            backends.push_back(b);
        }
    }

    bool ablation = spec_path.empty() && !backends.empty() &&
                    baseline_path.empty();
    if (!ablation && spec_path.empty() == baseline_path.empty()) {
        std::cerr << "exactly one of --spec / --baseline / --backend "
                     "is required\n";
        usage(1);
    }
    if (!baseline_path.empty() && !backends.empty()) {
        std::cerr << "--backend is not supported with --baseline\n";
        usage(1);
    }
    if (metrics_only && perf_only) {
        std::cerr << "--metrics-only and --perf-only conflict\n";
        usage(1);
    }
    if (quick && kernel_filter.empty())
        kernel_filter = {"gjk", "sobel", "kmeans"};
    if (!journal_path.empty() && spec_path.empty() && !ablation) {
        std::cerr << "--journal/--resume require --spec\n";
        usage(1);
    }

    if (!spec_path.empty() || ablation)
        return runSpec(spec_path, jobs, shards, out_path, journal_path,
                       resume, pcli, backends, kernel_filter);
    return runBaseline(baseline_path, jobs, jobs_given, tol_pct,
                       perf_tol_pct, metrics_only, perf_only,
                       std::move(kernel_filter), out_path, pcli);
}
