/**
 * @file
 * cohesion-sim: the command-line simulator driver. Runs one benchmark
 * kernel on a configurable machine and prints either a full
 * human-readable statistics report or machine-readable CSV.
 *
 *   cohesion-sim --kernel heat --mode cohesion --clusters 8 --scale 4
 *   cohesion-sim --kernel kmeans --mode swcc --csv > stats.csv
 *   cohesion-sim --list
 *
 * Options:
 *   --kernel NAME     cg|dmm|gjk|heat|kmeans|mri|sobel|stencil
 *   --mode MODE       swcc | hwcc | cohesion  (default cohesion)
 *   --backend NAME    coherence backend (msi-fullmap | dir4b | dls;
 *                     default derives from the directory config)
 *   --list-backends   print the registered backend names and exit
 *   --clusters N      clusters of 8 cores (default 4)
 *   --paper           full 1024-core Table 3 machine
 *   --shards N        run one simulation on N worker threads
 *                     (bit-identical results for any N; default 1)
 *   --scale N         workload scale (default 1)
 *   --seed N          workload seed
 *   --dir-entries N   per-bank directory entries (0 = infinite)
 *   --dir-assoc N     directory associativity (0 = fully associative)
 *   --dir4b           limited Dir4B sharer pointers
 *   --occupancy       sample directory occupancy every 1000 cycles
 *   --no-verify       skip numerical verification
 *   --csv             emit CSV instead of the report
 *   --stats-json F    hierarchical statistics as JSON ("-" = stdout)
 *   --trace-json F    Chrome trace-event / Perfetto JSON trace
 *   --sample-period N sample the time series every N cycles
 *   --timeseries-csv F  sampled series as tidy CSV ("-" = stdout)
 *   --fault-plan F    JSON fault campaign (sim/fault.hh schema)
 *   --fault-seed N    fault-stream seed (default derives from --seed)
 *   --fault-drop-rate R  drop rate on both fabric directions
 *   --no-audit        disable the runtime coherence auditor
 *   --recorder N      flight-recorder ring capacity (0 disables)
 *   --recorder-dump F write the binary recorder dump after the run
 *                     (decode with cohesion-trace)
 *   --watch-line A    narrate recorded events touching line A live
 *   --latency         per-transaction latency accounting (adds the
 *                     chip.latency.* / latency.* blame breakdown;
 *                     observer-only, results are byte-identical)
 *   --latency-topn N  print the top-N contended (class, stage) cells
 *                     and the per-mode waterfall (implies --latency)
 *   --host-profile F  enable the host-side self-profiler and write its
 *                     JSON report (per-phase host time) to F
 *   --progress[=F]    live heartbeat on stderr while the run executes;
 *                     =F also appends machine-readable JSON lines to F
 *   --checkpoint-at F write a CCKPT1 machine snapshot after the run
 *   --restore F       restore machine state from a snapshot before the
 *                     run (exit 4 on a corrupt/incompatible snapshot)
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "coherence/backend.hh"
#include "harness/hostprof.hh"
#include "harness/progress.hh"
#include "harness/report.hh"
#include "sim/fault.hh"
#include "sim/serialize.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"
#include "harness/runner.hh"
#include "kernels/registry.hh"

namespace {

[[noreturn]] void
usage(int code)
{
    std::cout <<
        "usage: cohesion-sim [--kernel NAME] [--mode swcc|hwcc|cohesion]\n"
        "                    [--backend NAME] [--list-backends]\n"
        "                    [--clusters N] [--paper] [--shards N]\n"
        "                    [--scale N]\n"
        "                    [--seed N] [--dir-entries N] [--dir-assoc N]\n"
        "                    [--dir4b] [--occupancy] [--no-verify]\n"
        "                    [--table-cache N] [--trace CATEGORIES]\n"
        "                    [--csv] [--list]\n"
        "                    [--stats-json FILE] [--trace-json FILE]\n"
        "                    [--sample-period N] [--timeseries-csv FILE]\n"
        "                    [--fault-plan FILE] [--fault-seed N]\n"
        "                    [--fault-drop-rate R] [--no-audit]\n"
        "                    [--recorder N] [--recorder-dump FILE]\n"
        "                    [--watch-line 0xADDR]\n"
        "                    [--latency] [--latency-topn N]\n"
        "                    [--host-profile FILE] [--progress[=FILE]]\n"
        "                    [--checkpoint-at FILE] [--restore FILE]\n"
        "  trace categories: protocol,cache,transition,net,dram,\n"
        "                    runtime,watchdog,fault,all\n"
        "  FILE may be \"-\" for stdout (except --trace-json)\n";
    std::exit(code);
}

/** Open @p path for writing; "-" means stdout. Exits on failure. */
std::ostream *
openSink(const std::string &path,
         std::vector<std::unique_ptr<std::ofstream>> &owned)
{
    if (path == "-")
        return &std::cout;
    owned.push_back(std::make_unique<std::ofstream>(path));
    if (!*owned.back()) {
        std::cerr << "cannot open " << path << " for writing\n";
        std::exit(1);
    }
    return owned.back().get();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string kernel = "heat";
    std::string mode = "cohesion";
    std::string backend;
    unsigned clusters = 4;
    bool paper = false;
    kernels::Params params;
    coherence::DirectoryConfig dir =
        coherence::DirectoryConfig::optimistic();
    bool dir4b = false;
    std::uint32_t table_cache = 0;
    harness::RunOptions opts;
    int latency_topn = 0;
    bool csv = false;
    std::string trace;
    std::string stats_json, trace_json, timeseries_csv;
    std::string host_profile, progress_jsonl;
    bool progress = false;
    std::string fault_plan_path;
    std::uint64_t fault_seed = 0;
    double fault_drop_rate = 0.0;
    std::vector<std::unique_ptr<std::ofstream>> sinks;

    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << flag << " requires a value\n";
                usage(1);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--kernel")) {
            kernel = next("--kernel");
        } else if (!std::strcmp(argv[i], "--mode")) {
            mode = next("--mode");
        } else if (!std::strcmp(argv[i], "--backend")) {
            backend = next("--backend");
        } else if (!std::strcmp(argv[i], "--list-backends")) {
            for (const auto &b : coherence::backendNames())
                std::cout << b << '\n';
            return 0;
        } else if (!std::strcmp(argv[i], "--clusters")) {
            clusters = std::atoi(next("--clusters"));
        } else if (!std::strcmp(argv[i], "--paper")) {
            paper = true;
        } else if (!std::strcmp(argv[i], "--shards")) {
            opts.shards = std::atoi(next("--shards"));
            if (opts.shards < 1) {
                std::cerr << "--shards must be >= 1\n";
                usage(1);
            }
        } else if (!std::strcmp(argv[i], "--scale")) {
            params.scale = std::atoi(next("--scale"));
        } else if (!std::strcmp(argv[i], "--seed")) {
            params.seed = std::atoll(next("--seed"));
        } else if (!std::strcmp(argv[i], "--dir-entries")) {
            dir.entries = std::atoi(next("--dir-entries"));
        } else if (!std::strcmp(argv[i], "--dir-assoc")) {
            dir.assoc = std::atoi(next("--dir-assoc"));
        } else if (!std::strcmp(argv[i], "--dir4b")) {
            dir4b = true;
        } else if (!std::strcmp(argv[i], "--table-cache")) {
            table_cache = std::atoi(next("--table-cache"));
        } else if (!std::strcmp(argv[i], "--occupancy")) {
            opts.sampleOccupancy = true;
        } else if (!std::strcmp(argv[i], "--no-verify")) {
            opts.skipVerify = true;
        } else if (!std::strcmp(argv[i], "--csv")) {
            csv = true;
        } else if (!std::strcmp(argv[i], "--trace")) {
            trace = next("--trace");
        } else if (!std::strcmp(argv[i], "--stats-json")) {
            stats_json = next("--stats-json");
        } else if (!std::strcmp(argv[i], "--trace-json")) {
            trace_json = next("--trace-json");
        } else if (!std::strcmp(argv[i], "--sample-period")) {
            opts.samplePeriod = std::atoll(next("--sample-period"));
        } else if (!std::strcmp(argv[i], "--timeseries-csv")) {
            timeseries_csv = next("--timeseries-csv");
        } else if (!std::strcmp(argv[i], "--fault-plan")) {
            fault_plan_path = next("--fault-plan");
        } else if (!std::strcmp(argv[i], "--fault-seed")) {
            fault_seed = std::strtoull(next("--fault-seed"), nullptr, 0);
        } else if (!std::strcmp(argv[i], "--fault-drop-rate")) {
            fault_drop_rate = std::atof(next("--fault-drop-rate"));
        } else if (!std::strcmp(argv[i], "--no-audit")) {
            opts.audit = false;
        } else if (!std::strcmp(argv[i], "--recorder")) {
            opts.recorderCapacity = static_cast<std::uint32_t>(
                std::strtoul(next("--recorder"), nullptr, 0));
        } else if (!std::strcmp(argv[i], "--recorder-dump")) {
            opts.recorderDumpPath = next("--recorder-dump");
        } else if (!std::strcmp(argv[i], "--checkpoint-at")) {
            opts.checkpointAt = next("--checkpoint-at");
        } else if (!std::strcmp(argv[i], "--restore")) {
            opts.restoreFrom = next("--restore");
        } else if (!std::strcmp(argv[i], "--host-profile")) {
            host_profile = next("--host-profile");
        } else if (!std::strcmp(argv[i], "--progress")) {
            progress = true;
        } else if (!std::strncmp(argv[i], "--progress=", 11)) {
            progress = true;
            progress_jsonl = argv[i] + 11;
        } else if (!std::strcmp(argv[i], "--latency")) {
            opts.latency = true;
        } else if (!std::strcmp(argv[i], "--latency-topn")) {
            latency_topn = std::atoi(next("--latency-topn"));
            if (latency_topn < 1) {
                std::cerr << "--latency-topn must be >= 1\n";
                usage(1);
            }
            opts.latency = true;
        } else if (!std::strcmp(argv[i], "--watch-line")) {
            opts.watchLine =
                std::strtoull(next("--watch-line"), nullptr, 0);
            // Narration goes through inform(), which is off by default.
            sim::setVerbose(true);
        } else if (!std::strcmp(argv[i], "--list")) {
            for (const auto &k : kernels::allKernelNames())
                std::cout << k << '\n';
            return 0;
        } else if (!std::strcmp(argv[i], "--help")) {
            usage(0);
        } else {
            std::cerr << "unknown option: " << argv[i] << '\n';
            usage(1);
        }
    }

    arch::MachineConfig cfg = paper ? arch::MachineConfig::paper1024()
                                    : arch::MachineConfig::scaled(clusters);
    if (mode == "swcc") {
        cfg.mode = arch::CoherenceMode::SWccOnly;
    } else if (mode == "hwcc") {
        cfg.mode = arch::CoherenceMode::HWccOnly;
    } else if (mode == "cohesion") {
        cfg.mode = arch::CoherenceMode::Cohesion;
    } else {
        std::cerr << "unknown mode: " << mode << '\n';
        usage(1);
    }
    if (dir4b)
        dir.sharerKind = coherence::SharerKind::LimitedPtr;
    cfg.directory = dir;
    cfg.tableCacheEntries = table_cache;
    if (!backend.empty() && !coherence::backendKnown(backend)) {
        // Exit 2: a usage error CI can tell apart from a sim failure.
        std::cerr << "unknown coherence backend '" << backend
                  << "' (registered: " << coherence::backendListString()
                  << ")\n";
        return 2;
    }
    cfg.backend = backend;

    if (!fault_plan_path.empty()) {
        std::ifstream in(fault_plan_path);
        if (!in) {
            std::cerr << "cannot open fault plan " << fault_plan_path
                      << '\n';
            return 1;
        }
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        cfg.faults = sim::FaultPlan::parse(text);
    }
    if (fault_drop_rate > 0.0) {
        cfg.faults.site(sim::FaultSite::FabricC2BDrop).rate =
            fault_drop_rate;
        cfg.faults.site(sim::FaultSite::FabricB2CDrop).rate =
            fault_drop_rate;
    }
    if (fault_seed)
        cfg.faults.seed = fault_seed;

    if (!stats_json.empty())
        opts.statsJson = openSink(stats_json, sinks);
    if (!trace_json.empty()) {
        if (trace_json == "-") {
            std::cerr << "--trace-json needs a file path (not \"-\")\n";
            usage(1);
        }
        opts.traceJson = openSink(trace_json, sinks);
    }
    if (!timeseries_csv.empty() && opts.samplePeriod == 0 &&
        !opts.sampleOccupancy) {
        // A CSV sink without an explicit period implies sampling at
        // the paper's default cadence.
        opts.sampleOccupancy = true;
    }

    if (!host_profile.empty())
        opts.hostProfile = true;
    std::optional<harness::RunProgress> prog;
    if (progress) {
        std::ostream *jsonl = progress_jsonl.empty()
                                  ? nullptr
                                  : openSink(progress_jsonl, sinks);
        prog.emplace(kernel, jsonl);
        opts.progress = [&prog](sim::Tick t, std::uint64_t events) {
            prog->beat(t, events);
        };
    }

    try {
        opts.traceMask = sim::parseCategories(trace);
        harness::RunResult r = harness::runKernel(
            cfg, kernels::kernelFactory(kernel), params, opts);
        if (!timeseries_csv.empty())
            r.timeSeries.dumpCsv(*openSink(timeseries_csv, sinks));
        if (!host_profile.empty()) {
            // The RunResult snapshot already includes the export
            // phases: it is taken at the very end of runKernel.
            harness::writeHostProfileJson(*openSink(host_profile, sinks),
                                          r.hostProfile, r.hostWallSec,
                                          r.eventsRun);
        }
        // A "-" sink claims stdout for machine-readable output; the
        // human report would corrupt it.
        if (stats_json == "-" || timeseries_csv == "-" ||
            host_profile == "-") {
        } else if (csv) {
            harness::printCsv(std::cout, cfg, r);
        } else {
            std::cout << "kernel: " << kernel
                      << (opts.skipVerify ? " (not verified)"
                                          : " (verified)")
                      << '\n'
                      << "seed: " << r.seed;
            if (r.faultSeed) {
                std::cout << "  fault-seed: " << r.faultSeed
                          << "  faults-injected: " << r.faultsInjected
                          << "  faults-recovered: " << r.faultsRecovered;
            }
            std::cout << '\n';
            harness::printReport(std::cout, cfg, r);
        }
        if (latency_topn > 0) {
            // When a "-" sink owns stdout the table goes to stderr so
            // the machine-readable stream stays parseable.
            bool stdout_claimed = stats_json == "-" ||
                                  timeseries_csv == "-" ||
                                  host_profile == "-";
            harness::printLatencyTopN(stdout_claimed ? std::cerr
                                                     : std::cout,
                                      r,
                                      static_cast<unsigned>(latency_topn));
        }
    } catch (const sim::SnapshotError &e) {
        std::cerr << "snapshot error: " << e.what() << '\n';
        return 4;
    } catch (const std::exception &e) {
        std::cerr << "simulation failed: " << e.what() << '\n';
        return 1;
    }
    return 0;
}
