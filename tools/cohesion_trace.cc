/**
 * @file
 * cohesion-trace: decode a flight-recorder dump (written by
 * cohesion-sim --recorder-dump, or a CI post-mortem artifact) into a
 * human-readable narrative, optionally filtered to one line, one
 * causal transaction, or a tick window, and optionally exported as a
 * Chrome trace-event / Perfetto JSON view.
 *
 *   cohesion-trace run.cfr
 *   cohesion-trace --line 0x84c0 run.cfr
 *   cohesion-trace --txn 17 run.cfr
 *   cohesion-trace --tick-range 1000:2000 --perfetto out.json run.cfr
 *   cohesion-trace --critical-path --txn 17 run.cfr
 *
 * Options:
 *   --line 0xADDR    only events touching ADDR's cache line
 *   --txn N          only the causal chain of message id N (includes
 *                    the bank transactions TxnBegin binds to it)
 *   --tick-range A:B only events with A <= tick <= B
 *   --perfetto FILE  write the filtered events as trace-event JSON
 *   --limit N        print at most the last N matching events
 *   --quiet          suppress the narrative (useful with --perfetto)
 *   --critical-path  with --txn N: walk the line-lock blocker chain of
 *                    message N (who held the line while N's bank
 *                    transaction waited, recursively) and print a
 *                    waterfall; with --perfetto, write the chain as
 *                    nested duration events instead of instants.
 *                    The walk reads only the dump, so the output is
 *                    byte-identical for any --shards value that
 *                    produced it.
 *
 * Exit codes: 0 ok, 1 usage / output error, 3 dump file missing or
 * unreadable, 4 dump corrupt or truncated. Scripts can tell "the run
 * never produced a dump" from "the dump is damaged".
 */

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "arch/flight_decode.hh"
#include "mem/types.hh"
#include "sim/flight_recorder.hh"
#include "sim/trace_json.hh"

namespace {

using sim::FlightRecorder;

[[noreturn]] void
usage(int code)
{
    std::cout <<
        "usage: cohesion-trace [--line 0xADDR] [--txn N]\n"
        "                      [--tick-range A:B] [--perfetto FILE]\n"
        "                      [--limit N] [--quiet]\n"
        "                      [--critical-path] DUMP.cfr\n";
    std::exit(code);
}

/** One bank transaction reconstructed from its TxnBegin/TxnEnd pair,
 *  keyed by (bank component, bank-local sequence). */
struct BankTxn
{
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    std::uint32_t line = 0;
    std::uint32_t msg = 0; ///< cluster msgId bound by TxnBegin::b
    std::uint16_t comp = 0;
    bool ended = false;
};

using TxnKey = std::pair<std::uint16_t, std::uint32_t>;

/** One hop of the extracted critical path. */
struct PathHop
{
    TxnKey key;
    BankTxn txn;
    std::uint64_t send = 0; ///< MsgSend tick (0 if wrapped out)
    std::uint64_t recv = 0; ///< RespRecv tick (0 if wrapped out)
    std::uint64_t wait = 0; ///< begin -> blocker-release wait, cycles
};

/**
 * Walk the line-lock blocker chain starting at message @p root_msg:
 * the bank transaction bound to it, then whichever older transaction
 * on the same line at the same bank retired last while ours was in
 * flight (that retirement is what released the line lock), and so on.
 * The walk is bounded by a seen-set and a depth cap so a wrapped or
 * adversarial dump cannot loop. Returns the hops root-first; empty if
 * the dump holds no bank transaction for @p root_msg.
 */
std::vector<PathHop>
extractCriticalPath(const std::vector<FlightRecorder::Record> &records,
                    std::uint64_t root_msg)
{
    constexpr unsigned maxDepth = 32;
    std::map<TxnKey, BankTxn> txns;
    std::map<std::uint32_t, std::uint64_t> send_tick, recv_tick;
    for (const auto &r : records) {
        switch (static_cast<FlightRecorder::Ev>(r.kind)) {
          case FlightRecorder::Ev::TxnBegin: {
            BankTxn &t = txns[{r.comp, r.txn}];
            t.begin = r.tick;
            t.line = r.line;
            t.msg = r.b;
            t.comp = r.comp;
            break;
          }
          case FlightRecorder::Ev::TxnEnd: {
            BankTxn &t = txns[{r.comp, r.txn}];
            t.end = r.tick;
            t.ended = true;
            break;
          }
          case FlightRecorder::Ev::MsgSend:
            if (!send_tick.count(r.txn))
                send_tick[r.txn] = r.tick;
            break;
          case FlightRecorder::Ev::RespRecv:
            recv_tick[r.txn] = r.tick;
            break;
          default:
            break;
        }
    }

    auto txnForMsg = [&](std::uint64_t msg) {
        // msgIds are cluster-local, so a very long dump could bind two
        // transactions to one id; the earliest begin wins (stable and
        // deterministic, and collisions need ~4G messages per cluster).
        auto best = txns.end();
        for (auto it = txns.begin(); it != txns.end(); ++it) {
            if (it->second.msg != msg)
                continue;
            if (best == txns.end() ||
                it->second.begin < best->second.begin) {
                best = it;
            }
        }
        return best;
    };

    std::vector<PathHop> path;
    std::set<TxnKey> seen;
    auto cur = txnForMsg(root_msg);
    while (cur != txns.end() && path.size() < maxDepth &&
           seen.insert(cur->first).second) {
        PathHop hop;
        hop.key = cur->first;
        hop.txn = cur->second;
        if (auto it = send_tick.find(hop.txn.msg); it != send_tick.end())
            hop.send = it->second;
        if (auto it = recv_tick.find(hop.txn.msg); it != recv_tick.end())
            hop.recv = it->second;

        // The blocker: among transactions at the same bank on the same
        // line that began before ours, the one whose retirement falls
        // latest inside our span — its TxnEnd is the moment the line
        // lock was handed to us.
        auto blocker = txns.end();
        std::uint64_t span_end =
            hop.txn.ended ? hop.txn.end : ~std::uint64_t(0);
        for (auto it = txns.begin(); it != txns.end(); ++it) {
            if (it->first == cur->first || !it->second.ended)
                continue;
            if (it->second.comp != hop.txn.comp ||
                it->second.line != hop.txn.line)
                continue;
            if (it->second.begin > hop.txn.begin)
                continue;
            if (it->second.end < hop.txn.begin ||
                it->second.end > span_end)
                continue;
            if (blocker == txns.end() ||
                it->second.end > blocker->second.end) {
                blocker = it;
            }
        }
        if (blocker != txns.end())
            hop.wait = blocker->second.end - hop.txn.begin;
        path.push_back(hop);
        cur = blocker;
    }
    return path;
}

void
printCriticalPath(std::ostream &os, const std::vector<PathHop> &path,
                  std::uint64_t root_msg)
{
    if (path.empty()) {
        os << "critical path: no bank transaction bound to message "
           << root_msg << " (wrapped out of the ring?)\n";
        return;
    }
    os << "critical path for message " << root_msg << " (" << path.size()
       << " hop" << (path.size() == 1 ? "" : "s") << "):\n";
    for (std::size_t i = 0; i < path.size(); ++i) {
        const PathHop &h = path[i];
        os << "  [" << i << "] msg " << h.txn.msg << " line 0x"
           << std::hex << h.txn.line << std::dec << " "
           << FlightRecorder::compName(h.txn.comp) << " txn#"
           << h.key.second;
        if (h.send)
            os << " send@" << h.send;
        os << " bank " << h.txn.begin << "..";
        if (h.txn.ended)
            os << h.txn.end << " (" << h.txn.end - h.txn.begin << "cy)";
        else
            os << "? (never retired)";
        if (h.recv)
            os << " resp@" << h.recv;
        os << '\n';
        if (i + 1 < path.size()) {
            os << "      waited " << h.wait
               << "cy for the line lock, released by:\n";
        } else if (h.wait) {
            os << "      waited " << h.wait
               << "cy for the line lock (blocker beyond depth cap or"
                  " wrapped)\n";
        }
    }
    const PathHop &root = path.front();
    if (root.send && root.recv && root.recv > root.send) {
        std::uint64_t e2e = root.recv - root.send;
        std::uint64_t chain = 0;
        for (const PathHop &h : path)
            chain += h.wait;
        os << "  end-to-end " << e2e << "cy, of which " << chain
           << "cy (" << std::fixed << std::setprecision(1)
           << (e2e ? 100.0 * double(chain) / double(e2e) : 0.0)
           << std::defaultfloat
           << "%) is transitive line-lock serialization\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    mem::Addr line = ~mem::Addr(0);
    std::uint64_t txn = ~std::uint64_t(0);
    std::uint64_t tick_lo = 0, tick_hi = ~std::uint64_t(0);
    std::string perfetto;
    std::size_t limit = 0;
    bool quiet = false;
    bool critical_path = false;

    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << flag << " requires a value\n";
                usage(1);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--line")) {
            line = mem::lineBase(
                std::strtoull(next("--line"), nullptr, 0));
        } else if (!std::strcmp(argv[i], "--txn")) {
            txn = std::strtoull(next("--txn"), nullptr, 0);
        } else if (!std::strcmp(argv[i], "--tick-range")) {
            std::string v = next("--tick-range");
            std::size_t colon = v.find(':');
            if (colon == std::string::npos) {
                std::cerr << "--tick-range wants A:B\n";
                usage(1);
            }
            tick_lo = std::strtoull(v.c_str(), nullptr, 0);
            tick_hi = std::strtoull(v.c_str() + colon + 1, nullptr, 0);
        } else if (!std::strcmp(argv[i], "--perfetto")) {
            perfetto = next("--perfetto");
        } else if (!std::strcmp(argv[i], "--limit")) {
            limit = std::strtoull(next("--limit"), nullptr, 0);
        } else if (!std::strcmp(argv[i], "--quiet")) {
            quiet = true;
        } else if (!std::strcmp(argv[i], "--critical-path")) {
            critical_path = true;
        } else if (!std::strcmp(argv[i], "--help")) {
            usage(0);
        } else if (argv[i][0] == '-') {
            std::cerr << "unknown option: " << argv[i] << '\n';
            usage(1);
        } else {
            path = argv[i];
        }
    }
    if (path.empty()) {
        std::cerr << "missing dump file\n";
        usage(1);
    }
    if (critical_path && txn == ~std::uint64_t(0)) {
        std::cerr << "--critical-path needs --txn N (the message id "
                     "to start the walk from)\n";
        usage(1);
    }

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "cohesion-trace: cannot open " << path << '\n';
        return 3;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::vector<FlightRecorder::Record> records;
    std::string err;
    std::uint64_t total = 0;
    if (!FlightRecorder::deserialize(bytes, &records, &err, &total)) {
        std::cerr << "cohesion-trace: " << path << ": " << err << '\n';
        return 4;
    }

    if (critical_path) {
        std::vector<PathHop> cpath = extractCriticalPath(records, txn);
        if (!quiet)
            printCriticalPath(std::cout, cpath, txn);
        if (!perfetto.empty()) {
            std::ofstream out(perfetto);
            if (!out) {
                std::cerr << "cannot open " << perfetto << '\n';
                return 1;
            }
            sim::TraceJsonWriter w(out);
            // One track per hop depth: the root's span on top, each
            // blocker one row down, so the staircase reads as a
            // waterfall in ui.perfetto.dev.
            for (std::size_t i = 0; i < cpath.size(); ++i) {
                const PathHop &h = cpath[i];
                int tid = 300 + static_cast<int>(i);
                w.threadName(tid, "critical-path[" + std::to_string(i) +
                                      "]");
                std::uint64_t lo = h.send ? h.send : h.txn.begin;
                std::uint64_t hi = h.recv             ? h.recv
                                   : h.txn.ended      ? h.txn.end
                                                      : h.txn.begin;
                std::string name =
                    "msg " + std::to_string(h.txn.msg) + " " +
                    FlightRecorder::compName(h.txn.comp) + " txn#" +
                    std::to_string(h.key.second);
                w.complete(lo, hi > lo ? hi - lo : 0, tid, name,
                           "critical-path");
                if (h.txn.ended) {
                    w.complete(h.txn.begin, h.txn.end - h.txn.begin,
                               tid, "bank span", "critical-path");
                }
            }
            w.finish();
            if (!quiet)
                std::cout << "wrote " << w.events()
                          << " trace events to " << perfetto << '\n';
        }
        return cpath.empty() ? 1 : 0;
    }

    // --txn N follows the causal chain: every event stamped with the
    // message id, plus the bank transactions TxnBegin bound to it
    // (their TxnBegin/TxnEnd records carry the bank-local sequence in
    // txn and the message id in b).
    std::set<std::uint64_t> bank_txns;
    if (txn != ~std::uint64_t(0)) {
        for (const auto &r : records) {
            auto kind = static_cast<FlightRecorder::Ev>(r.kind);
            if ((kind == FlightRecorder::Ev::TxnBegin ||
                 kind == FlightRecorder::Ev::TxnEnd) &&
                r.b == txn) {
                bank_txns.insert(r.txn);
            }
        }
    }

    std::vector<const FlightRecorder::Record *> matched;
    for (const auto &r : records) {
        if (r.tick < tick_lo || r.tick > tick_hi)
            continue;
        if (line != ~mem::Addr(0) && r.line != line)
            continue;
        if (txn != ~std::uint64_t(0)) {
            auto kind = static_cast<FlightRecorder::Ev>(r.kind);
            bool bound = (kind == FlightRecorder::Ev::TxnBegin ||
                          kind == FlightRecorder::Ev::TxnEnd)
                             ? r.b == txn || bank_txns.count(r.txn)
                             : r.txn == txn;
            if (!bound)
                continue;
        }
        matched.push_back(&r);
    }

    if (!quiet) {
        std::cout << path << ": " << records.size() << " records ("
                  << total << " recorded";
        if (total > records.size())
            std::cout << ", " << (total - records.size())
                      << " overwritten by ring wrap";
        std::cout << "), " << matched.size() << " match\n";
        std::size_t first =
            limit && matched.size() > limit ? matched.size() - limit : 0;
        if (first)
            std::cout << "  ... " << first << " earlier omitted\n";
        for (std::size_t i = first; i < matched.size(); ++i)
            std::cout << "  " << arch::describeRecord(*matched[i]) << '\n';
    }

    if (!perfetto.empty()) {
        std::ofstream out(perfetto);
        if (!out) {
            std::cerr << "cannot open " << perfetto << '\n';
            return 1;
        }
        sim::TraceJsonWriter w(out);
        std::set<std::uint16_t> named;
        for (const FlightRecorder::Record *r : matched) {
            int tid = sim::TraceJsonWriter::machineTid;
            unsigned idx = FlightRecorder::compIndex(r->comp);
            switch (FlightRecorder::compKind(r->comp)) {
              case 1:
                tid = sim::TraceJsonWriter::clusterTid(idx);
                break;
              case 2:
                tid = sim::TraceJsonWriter::bankTid(idx);
                break;
              default:
                break;
            }
            if (named.insert(r->comp).second)
                w.threadName(tid, FlightRecorder::compName(r->comp));
            w.instant(r->tick, tid, arch::describeRecordBody(*r),
                      FlightRecorder::evName(
                          static_cast<FlightRecorder::Ev>(r->kind)));
        }
        w.finish();
        if (!quiet)
            std::cout << "wrote " << w.events() << " trace events to "
                      << perfetto << '\n';
    }
    return 0;
}
