/**
 * @file
 * cohesion-trace: decode a flight-recorder dump (written by
 * cohesion-sim --recorder-dump, or a CI post-mortem artifact) into a
 * human-readable narrative, optionally filtered to one line, one
 * causal transaction, or a tick window, and optionally exported as a
 * Chrome trace-event / Perfetto JSON view.
 *
 *   cohesion-trace run.cfr
 *   cohesion-trace --line 0x84c0 run.cfr
 *   cohesion-trace --txn 17 run.cfr
 *   cohesion-trace --tick-range 1000:2000 --perfetto out.json run.cfr
 *
 * Options:
 *   --line 0xADDR    only events touching ADDR's cache line
 *   --txn N          only the causal chain of message id N (includes
 *                    the bank transactions TxnBegin binds to it)
 *   --tick-range A:B only events with A <= tick <= B
 *   --perfetto FILE  write the filtered events as trace-event JSON
 *   --limit N        print at most the last N matching events
 *   --quiet          suppress the narrative (useful with --perfetto)
 *
 * Exit codes: 0 ok, 1 usage / output error, 3 dump file missing or
 * unreadable, 4 dump corrupt or truncated. Scripts can tell "the run
 * never produced a dump" from "the dump is damaged".
 */

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "arch/flight_decode.hh"
#include "mem/types.hh"
#include "sim/flight_recorder.hh"
#include "sim/trace_json.hh"

namespace {

using sim::FlightRecorder;

[[noreturn]] void
usage(int code)
{
    std::cout <<
        "usage: cohesion-trace [--line 0xADDR] [--txn N]\n"
        "                      [--tick-range A:B] [--perfetto FILE]\n"
        "                      [--limit N] [--quiet] DUMP.cfr\n";
    std::exit(code);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    mem::Addr line = ~mem::Addr(0);
    std::uint64_t txn = ~std::uint64_t(0);
    std::uint64_t tick_lo = 0, tick_hi = ~std::uint64_t(0);
    std::string perfetto;
    std::size_t limit = 0;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << flag << " requires a value\n";
                usage(1);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--line")) {
            line = mem::lineBase(
                std::strtoull(next("--line"), nullptr, 0));
        } else if (!std::strcmp(argv[i], "--txn")) {
            txn = std::strtoull(next("--txn"), nullptr, 0);
        } else if (!std::strcmp(argv[i], "--tick-range")) {
            std::string v = next("--tick-range");
            std::size_t colon = v.find(':');
            if (colon == std::string::npos) {
                std::cerr << "--tick-range wants A:B\n";
                usage(1);
            }
            tick_lo = std::strtoull(v.c_str(), nullptr, 0);
            tick_hi = std::strtoull(v.c_str() + colon + 1, nullptr, 0);
        } else if (!std::strcmp(argv[i], "--perfetto")) {
            perfetto = next("--perfetto");
        } else if (!std::strcmp(argv[i], "--limit")) {
            limit = std::strtoull(next("--limit"), nullptr, 0);
        } else if (!std::strcmp(argv[i], "--quiet")) {
            quiet = true;
        } else if (!std::strcmp(argv[i], "--help")) {
            usage(0);
        } else if (argv[i][0] == '-') {
            std::cerr << "unknown option: " << argv[i] << '\n';
            usage(1);
        } else {
            path = argv[i];
        }
    }
    if (path.empty()) {
        std::cerr << "missing dump file\n";
        usage(1);
    }

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "cohesion-trace: cannot open " << path << '\n';
        return 3;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::vector<FlightRecorder::Record> records;
    std::string err;
    std::uint64_t total = 0;
    if (!FlightRecorder::deserialize(bytes, &records, &err, &total)) {
        std::cerr << "cohesion-trace: " << path << ": " << err << '\n';
        return 4;
    }

    // --txn N follows the causal chain: every event stamped with the
    // message id, plus the bank transactions TxnBegin bound to it
    // (their TxnBegin/TxnEnd records carry the bank-local sequence in
    // txn and the message id in b).
    std::set<std::uint64_t> bank_txns;
    if (txn != ~std::uint64_t(0)) {
        for (const auto &r : records) {
            auto kind = static_cast<FlightRecorder::Ev>(r.kind);
            if ((kind == FlightRecorder::Ev::TxnBegin ||
                 kind == FlightRecorder::Ev::TxnEnd) &&
                r.b == txn) {
                bank_txns.insert(r.txn);
            }
        }
    }

    std::vector<const FlightRecorder::Record *> matched;
    for (const auto &r : records) {
        if (r.tick < tick_lo || r.tick > tick_hi)
            continue;
        if (line != ~mem::Addr(0) && r.line != line)
            continue;
        if (txn != ~std::uint64_t(0)) {
            auto kind = static_cast<FlightRecorder::Ev>(r.kind);
            bool bound = (kind == FlightRecorder::Ev::TxnBegin ||
                          kind == FlightRecorder::Ev::TxnEnd)
                             ? r.b == txn || bank_txns.count(r.txn)
                             : r.txn == txn;
            if (!bound)
                continue;
        }
        matched.push_back(&r);
    }

    if (!quiet) {
        std::cout << path << ": " << records.size() << " records ("
                  << total << " recorded";
        if (total > records.size())
            std::cout << ", " << (total - records.size())
                      << " overwritten by ring wrap";
        std::cout << "), " << matched.size() << " match\n";
        std::size_t first =
            limit && matched.size() > limit ? matched.size() - limit : 0;
        if (first)
            std::cout << "  ... " << first << " earlier omitted\n";
        for (std::size_t i = first; i < matched.size(); ++i)
            std::cout << "  " << arch::describeRecord(*matched[i]) << '\n';
    }

    if (!perfetto.empty()) {
        std::ofstream out(perfetto);
        if (!out) {
            std::cerr << "cannot open " << perfetto << '\n';
            return 1;
        }
        sim::TraceJsonWriter w(out);
        std::set<std::uint16_t> named;
        for (const FlightRecorder::Record *r : matched) {
            int tid = sim::TraceJsonWriter::machineTid;
            unsigned idx = FlightRecorder::compIndex(r->comp);
            switch (FlightRecorder::compKind(r->comp)) {
              case 1:
                tid = sim::TraceJsonWriter::clusterTid(idx);
                break;
              case 2:
                tid = sim::TraceJsonWriter::bankTid(idx);
                break;
              default:
                break;
            }
            if (named.insert(r->comp).second)
                w.threadName(tid, FlightRecorder::compName(r->comp));
            w.instant(r->tick, tid, arch::describeRecordBody(*r),
                      FlightRecorder::evName(
                          static_cast<FlightRecorder::Ev>(r->kind)));
        }
        w.finish();
        if (!quiet)
            std::cout << "wrote " << w.events() << " trace events to "
                      << perfetto << '\n';
    }
    return 0;
}
