/**
 * @file
 * A small visual-computing pipeline on the task-queue programming
 * model (the paper's motivating application class): blur -> Sobel
 * gradients -> histogram of edge strengths. Stage buffers live on the
 * incoherent heap (SWcc, flushed/invalidated at stage boundaries);
 * the histogram is built with uncached atomics; the stage structure
 * is barrier-synchronized — exactly the BSP idiom of Section 3.3.
 *
 * Runs the same pipeline under all three machine modes and reports
 * runtime, traffic, and the (identical) image statistics.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "harness/runner.hh"
#include "harness/table.hh"
#include "kernels/kernel.hh"

namespace {

constexpr std::uint32_t kW = 96;
constexpr std::uint32_t kH = 96;
constexpr unsigned kBins = 16;

class PipelineKernel : public kernels::Kernel
{
  public:
    explicit PipelineKernel(const kernels::Params &params)
        : Kernel(params)
    {}

    const char *name() const override { return "image-pipeline"; }

    void
    setup(runtime::CohesionRuntime &rt) override
    {
        const std::uint32_t pixels = kW * kH;
        _src = rt.cohMalloc(pixels * 4);
        _blur = rt.cohMalloc(pixels * 4);
        _edges = rt.cohMalloc(pixels * 4);
        _hist = rt.malloc(kBins * mem::lineBytes); // HWcc atomics

        sim::Rng rng(99);
        for (std::uint32_t i = 0; i < pixels; ++i) {
            rt.poke<float>(_src + i * 4,
                           static_cast<float>(rng.range(0.0, 255.0)));
        }
        for (unsigned b = 0; b < kBins; ++b)
            rt.poke<std::uint32_t>(_hist + b * mem::lineBytes, 0);

        std::uint32_t rows = kH - 2;
        std::uint32_t chunk = std::max<std::uint32_t>(
            1, rows / (2 * rt.chip().totalCores()));
        _phaseBlur = addPhase(rt, chunkTasks(rows, chunk));
        _phaseEdge = addPhase(rt, chunkTasks(rows, chunk));
        _phaseHist = addPhase(rt, chunkTasks(rows, chunk));
    }

    sim::CoTask
    blurTask(runtime::Ctx &ctx, runtime::TaskDesc td)
    {
        const std::uint32_t r0 = td.arg0 + 1, rows = td.arg1;
        for (std::uint32_t r = r0; r < r0 + rows; ++r) {
            for (std::uint32_t c = 1; c + 1 < kW; ++c) {
                float acc = 0;
                for (int dr = -1; dr <= 1; ++dr) {
                    for (int dc = -1; dc <= 1; ++dc) {
                        acc += runtime::Ctx::asF32(co_await ctx.load32(
                            _src + ((r + dr) * kW + c + dc) * 4));
                    }
                }
                co_await ctx.compute(10);
                co_await ctx.storeF32(_blur + (r * kW + c) * 4,
                                      acc / 9.0f);
            }
        }
        if (ctx.swccManaged(_blur))
            co_await ctx.flushRegion(_blur + r0 * kW * 4, rows * kW * 4);
    }

    sim::CoTask
    edgeTask(runtime::Ctx &ctx, runtime::TaskDesc td)
    {
        const std::uint32_t r0 = td.arg0 + 1, rows = td.arg1;
        if (ctx.swccManaged(_blur)) {
            co_await ctx.invRegion(_blur + (r0 - 1) * kW * 4,
                                   (rows + 2) * kW * 4);
        }
        for (std::uint32_t r = r0; r < r0 + rows; ++r) {
            for (std::uint32_t c = 1; c + 1 < kW; ++c) {
                auto pix = [&](std::uint32_t rr,
                               std::uint32_t cc) -> arch::MemOp {
                    return ctx.load32(_blur + (rr * kW + cc) * 4);
                };
                float a = runtime::Ctx::asF32(co_await pix(r - 1, c));
                float b = runtime::Ctx::asF32(co_await pix(r + 1, c));
                float l = runtime::Ctx::asF32(co_await pix(r, c - 1));
                float rr = runtime::Ctx::asF32(co_await pix(r, c + 1));
                co_await ctx.compute(6);
                co_await ctx.storeF32(_edges + (r * kW + c) * 4,
                                      std::fabs(b - a) +
                                          std::fabs(rr - l));
            }
        }
        if (ctx.swccManaged(_edges))
            co_await ctx.flushRegion(_edges + r0 * kW * 4,
                                     rows * kW * 4);
    }

    sim::CoTask
    histTask(runtime::Ctx &ctx, runtime::TaskDesc td)
    {
        const std::uint32_t r0 = td.arg0 + 1, rows = td.arg1;
        if (ctx.swccManaged(_edges)) {
            co_await ctx.invRegion(_edges + r0 * kW * 4, rows * kW * 4);
        }
        std::uint32_t local[kBins] = {};
        for (std::uint32_t r = r0; r < r0 + rows; ++r) {
            for (std::uint32_t c = 1; c + 1 < kW; ++c) {
                float e = runtime::Ctx::asF32(co_await ctx.load32(
                    _edges + (r * kW + c) * 4));
                co_await ctx.compute(3);
                unsigned bin = std::min<unsigned>(
                    kBins - 1, static_cast<unsigned>(e / 16.0f));
                ++local[bin];
            }
        }
        for (unsigned b = 0; b < kBins; ++b) {
            if (local[b]) {
                co_await ctx.atomicAdd(_hist + b * mem::lineBytes,
                                       local[b]);
            }
        }
    }

    sim::CoTask
    worker(runtime::Ctx ctx) override
    {
        ctx.core().setCodeRegion(runtime::Layout::codeBase + 0xA000,
                                 1024);
        co_await ctx.forEachTask(
            _phaseBlur, [this](runtime::Ctx &c,
                               const runtime::TaskDesc &td) {
                return blurTask(c, td);
            });
        co_await ctx.barrier();
        co_await ctx.forEachTask(
            _phaseEdge, [this](runtime::Ctx &c,
                               const runtime::TaskDesc &td) {
                return edgeTask(c, td);
            });
        co_await ctx.barrier();
        co_await ctx.forEachTask(
            _phaseHist, [this](runtime::Ctx &c,
                               const runtime::TaskDesc &td) {
                return histTask(c, td);
            });
        co_await ctx.barrier();
    }

    void
    verify(runtime::CohesionRuntime &rt) override
    {
        std::uint32_t total = 0;
        for (unsigned b = 0; b < kBins; ++b)
            total += rt.verifyRead32(_hist + b * mem::lineBytes);
        fatal_if(total != (kW - 2) * (kH - 2),
                 "pipeline histogram lost pixels: ", total);
    }

    std::vector<std::uint32_t>
    histogram(runtime::CohesionRuntime &rt)
    {
        std::vector<std::uint32_t> h(kBins);
        for (unsigned b = 0; b < kBins; ++b)
            h[b] = rt.verifyRead32(_hist + b * mem::lineBytes);
        return h;
    }

  private:
    mem::Addr _src = 0, _blur = 0, _edges = 0, _hist = 0;
    unsigned _phaseBlur = 0, _phaseEdge = 0, _phaseHist = 0;
};

} // namespace

int
main()
{
    harness::banner(std::cout,
                    "Image pipeline example: blur -> sobel -> histogram "
                    "(BSP task queues on 32 cores)");

    harness::Table t({"mode", "cycles", "L2->L3 msgs", "flushes",
                      "atomics", "histogram nonzero bins"});
    std::vector<std::uint32_t> reference;

    for (auto mode :
         {arch::CoherenceMode::SWccOnly, arch::CoherenceMode::HWccOnly,
          arch::CoherenceMode::Cohesion}) {
        arch::MachineConfig cfg = arch::MachineConfig::scaled(4);
        cfg.mode = mode;
        kernels::Params params;
        PipelineKernel kernel(params);

        arch::Chip chip(cfg, runtime::Layout::tableBase);
        runtime::CohesionRuntime rt(chip);
        kernel.setup(rt);
        std::vector<sim::CoTask> workers;
        for (unsigned c = 0; c < chip.totalCores(); ++c)
            workers.push_back(kernel.worker(runtime::Ctx(rt, chip.core(c))));
        for (auto &w : workers)
            w.start();
        sim::Tick end = chip.runUntilQuiescent();
        kernel.verify(rt);

        auto hist = kernel.histogram(rt);
        if (reference.empty())
            reference = hist;
        if (hist != reference) {
            std::cerr << "histogram differs across modes!\n";
            return 1;
        }
        unsigned nonzero = 0;
        for (auto v : hist)
            nonzero += v != 0;
        auto msgs = chip.aggregateMessages();
        t.addRow({arch::coherenceModeName(mode), std::to_string(end),
                  harness::Table::fmtCount(msgs.total()),
                  harness::Table::fmtCount(
                      msgs.get(arch::MsgClass::SoftwareFlush)),
                  harness::Table::fmtCount(
                      msgs.get(arch::MsgClass::UncachedAtomic)),
                  std::to_string(nonzero)});
    }

    t.print(std::cout);
    std::cout << "\nAll three modes computed identical histograms.\n";
    return 0;
}
