/**
 * @file
 * Quickstart: build a small Cohesion machine, run the heat kernel in
 * all three coherence modes (SWcc-only, optimistic HWcc, Cohesion),
 * and print runtime plus the L2 output message breakdown — a
 * miniature of the paper's Figure 8 on one workload.
 *
 * Usage: quickstart [clusters] [scale]
 */

#include <cstdlib>
#include <iostream>

#include "harness/runner.hh"
#include "harness/table.hh"
#include "kernels/registry.hh"

int
main(int argc, char **argv)
{
    unsigned clusters = argc > 1 ? std::atoi(argv[1]) : 4;
    unsigned scale = argc > 2 ? std::atoi(argv[2]) : 1;

    kernels::Params params;
    params.scale = scale;

    harness::banner(std::cout, "Cohesion quickstart: heat kernel, " +
                                   std::to_string(clusters * 8) +
                                   " cores");

    harness::Table table({"config", "cycles", "total msgs", "rd", "wr",
                          "instr", "atomic", "evict", "flush", "rdrel",
                          "probe"});

    struct ModeRow
    {
        const char *label;
        arch::CoherenceMode mode;
    };
    const ModeRow rows[] = {
        {"SWcc", arch::CoherenceMode::SWccOnly},
        {"HWcc(opt)", arch::CoherenceMode::HWccOnly},
        {"Cohesion", arch::CoherenceMode::Cohesion},
    };

    for (const auto &row : rows) {
        arch::MachineConfig cfg = arch::MachineConfig::scaled(clusters);
        cfg.mode = row.mode;
        cfg.directory = coherence::DirectoryConfig::optimistic();

        auto kernel = kernels::kernelFactory("heat")(params);
        harness::RunResult r = harness::runKernel(cfg, *kernel);

        using MC = arch::MsgClass;
        table.addRow({row.label, std::to_string(r.cycles),
                      harness::Table::fmtCount(r.msgs.total()),
                      harness::Table::fmtCount(r.msgs.get(MC::ReadRequest)),
                      harness::Table::fmtCount(r.msgs.get(MC::WriteRequest)),
                      harness::Table::fmtCount(
                          r.msgs.get(MC::InstructionRequest)),
                      harness::Table::fmtCount(
                          r.msgs.get(MC::UncachedAtomic)),
                      harness::Table::fmtCount(
                          r.msgs.get(MC::CacheEviction)),
                      harness::Table::fmtCount(
                          r.msgs.get(MC::SoftwareFlush)),
                      harness::Table::fmtCount(r.msgs.get(MC::ReadRelease)),
                      harness::Table::fmtCount(
                          r.msgs.get(MC::ProbeResponse))});
        std::cout << "  " << row.label << ": verified OK in " << r.cycles
                  << " cycles\n";
    }

    table.print(std::cout);
    std::cout << "\nAll three coherence modes produced the verified "
                 "numerical result.\n";
    return 0;
}
