/**
 * @file
 * Protocol walkthrough on a tiny two-cluster machine: drives one cache
 * line through the full Figure 6 / Figure 7 state space and prints the
 * observable state (L2 line state per cluster, directory entry,
 * fine-grain table bit, L3/memory value) after every step. A readable,
 * executable companion to the paper's protocol figures.
 */

#include <iomanip>
#include <iostream>

#include "arch/chip.hh"
#include "runtime/ctx.hh"

namespace {

arch::Chip *g_chip;
runtime::CohesionRuntime *g_rt;

void
show(const std::string &step, mem::Addr a)
{
    auto l2state = [&](unsigned cl) -> std::string {
        cache::Line *l = g_chip->cluster(cl).l2().probe(a);
        if (!l)
            return "--";
        std::string s = l->incoherent
                            ? (l->dirty() ? "SWcc:dirty" : "SWcc:clean")
                            : cache::cohStateName(l->hwState);
        return s;
    };
    std::string dir = "--";
    if (auto *e = g_chip->bank(g_chip->map().bankOf(a)).directory().find(a)) {
        dir = sim::cat(cache::cohStateName(e->state), " x",
                       e->sharers.count());
    }
    mem::Addr w = g_chip->map().tableWordAddr(a);
    bool bit = (g_chip->coherentRead32(w) >>
                g_chip->map().tableBitIndex(a)) & 1;

    std::cout << "  " << std::left << std::setw(44) << step
              << " L2[0]=" << std::setw(10) << l2state(0)
              << " L2[1]=" << std::setw(10) << l2state(1)
              << " dir=" << std::setw(6) << dir
              << " table=" << (bit ? "SWcc" : "HWcc")
              << " value=" << g_chip->coherentRead32(a) << "\n";
}

sim::CoTask
scenario(runtime::Ctx c0, runtime::Ctx c1, mem::Addr a)
{
    std::cout << "\nLine 0x" << std::hex << a << std::dec
              << " (incoherent heap; starts SWcc)\n\n";
    show("initial", a);

    co_await c0.store32(a, 100);
    show("cluster0 store 100 (SWcc write-allocate)", a);

    co_await c0.core().flushLine(a);
    co_await c0.drain();
    show("cluster0 flush (eager writeback)", a);

    co_await c1.load32(a);
    show("cluster1 load (incoherent fill)", a);

    // SWcc => HWcc with a clean copy in each cluster: case 2b.
    co_await c0.core().invLine(a);
    co_await c0.load32(a);
    show("cluster0 inv+reload (both clusters clean)", a);
    co_await c0.toHWcc(a, 4);
    show("coh_HWcc_region: case 2b (copies join as S)", a);

    co_await c0.store32(a, 200);
    show("cluster0 store 200 (S->M upgrade, peer inv)", a);

    std::uint32_t v =
        static_cast<std::uint32_t>(co_await c1.load32(a));
    show(sim::cat("cluster1 load -> ", v, " (M downgraded)"), a);

    // HWcc => SWcc with shared copies: case 2a.
    co_await c0.toSWcc(a, 4);
    show("coh_SWcc_region: case 2a (sharers invalidated)", a);

    co_await c0.store32(a, 300);
    show("cluster0 store 300 (SWcc again)", a);

    // SWcc => HWcc with a single dirty owner: case 3b.
    co_await c1.toHWcc(a, 4);
    show("coh_HWcc_region: case 3b (owner upgraded, no WB)", a);

    v = static_cast<std::uint32_t>(co_await c1.load32(a));
    show(sim::cat("cluster1 load -> ", v, " (pulled from owner)"), a);

    std::uint32_t old = static_cast<std::uint32_t>(
        co_await c0.atomicAdd(a, 5));
    show(sim::cat("cluster0 atom.add 5 (old=", old,
                  ", HWcc copies recalled)"),
         a);
}

} // namespace

int
main()
{
    std::cout << "==========================================================\n"
              << "Protocol trace: one line through the Fig. 6/7 state space\n"
              << "==========================================================\n";

    arch::MachineConfig cfg = arch::MachineConfig::scaled(2);
    cfg.mode = arch::CoherenceMode::Cohesion;
    arch::Chip chip(cfg, runtime::Layout::tableBase);
    runtime::CohesionRuntime rt(chip);
    g_chip = &chip;
    g_rt = &rt;

    mem::Addr a = rt.cohMalloc(64);

    sim::CoTask t = scenario(runtime::Ctx(rt, chip.core(0)),
                             runtime::Ctx(rt, chip.core(8)), a);
    t.start();
    chip.runUntilQuiescent();
    t.rethrow();
    if (!t.done()) {
        std::cerr << "scenario did not finish\n";
        return 1;
    }

    std::uint64_t transitions = 0;
    for (unsigned b = 0; b < chip.numBanks(); ++b)
        transitions += chip.bank(b).transitions();
    std::cout << "\nCompleted in " << chip.eq().now() << " cycles with "
              << transitions << " coherence-domain transitions.\n";
    return 0;
}
