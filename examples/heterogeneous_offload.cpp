/**
 * @file
 * Heterogeneous offload scenario (paper Sections 2.3 and 6): a
 * "host-style" producer thread prepares work under hardware coherence
 * (easy porting, fine-grained sharing), then hands the buffers to the
 * accelerator fleet by transitioning them to the SWcc domain with
 * coh_SWcc_region — no copies, same addresses. The accelerator cores
 * process the data with software-managed coherence (no directory
 * pressure), flush results, and the region is transitioned back to
 * HWcc for the host to consume with ordinary coherent loads.
 *
 * Demonstrates the full Table 2 API and prints the directory/message
 * effects of each stage.
 */

#include <iostream>

#include "arch/chip.hh"
#include "harness/table.hh"
#include "runtime/ctx.hh"

namespace {

constexpr std::uint32_t kElems = 4096;

std::uint64_t
dirEntriesFor(arch::Chip &chip, mem::Addr base, std::uint32_t bytes)
{
    std::uint64_t n = 0;
    for (mem::Addr a = mem::lineBase(base); a < base + bytes;
         a += mem::lineBytes) {
        if (chip.bank(chip.map().bankOf(a)).directory().find(a))
            ++n;
    }
    return n;
}

/** Host core: produce inputs under HWcc, orchestrate the offload. */
sim::CoTask
hostMain(runtime::Ctx ctx, mem::Addr data, mem::Addr flags,
         arch::Chip *chip)
{
    // Stage 1: produce under HWcc (conventional shared memory).
    for (std::uint32_t i = 0; i < kElems; ++i)
        co_await ctx.store32(data + i * 4, i * 3 + 1);
    std::cout << "  [host] produced " << kElems
              << " elements under HWcc; directory entries for buffer: "
              << dirEntriesFor(*chip, data, kElems * 4) << "\n";

    // Stage 2: hand the buffer to the accelerator domain — no copy,
    // the lines migrate coherence domains in place.
    co_await ctx.toSWcc(data, kElems * 4);
    std::cout << "  [host] coh_SWcc_region done; directory entries now: "
              << dirEntriesFor(*chip, data, kElems * 4) << "\n";

    // Release the accelerator cores (uncached flag, HWcc domain).
    co_await ctx.atomicAdd(flags, 1);

    // Wait for all workers to check in.
    while (true) {
        std::uint32_t done =
            static_cast<std::uint32_t>(co_await ctx.atomicAdd(flags + 4, 0));
        if (done == ctx.numCores() - 1)
            break;
        co_await ctx.compute(200);
    }

    // Stage 3: pull the results back into HWcc and consume them.
    co_await ctx.toHWcc(data, kElems * 4);
    std::uint64_t sum = 0;
    for (std::uint32_t i = 0; i < kElems; ++i)
        sum += co_await ctx.load32(data + i * 4);
    std::uint64_t want = 0;
    for (std::uint32_t i = 0; i < kElems; ++i)
        want += std::uint64_t(i * 3 + 1) * 2 + 7;
    std::cout << "  [host] consumed results under HWcc: sum=" << sum
              << " expected=" << want
              << (sum == want ? "  (correct)\n" : "  (MISMATCH)\n");
    if (sum != want)
        std::exit(1);
}

/** Accelerator core: software-managed processing of its slice. */
sim::CoTask
acceleratorMain(runtime::Ctx ctx, mem::Addr data, mem::Addr flags)
{
    // Spin (politely) until the host releases us.
    while (true) {
        std::uint32_t go =
            static_cast<std::uint32_t>(co_await ctx.atomicAdd(flags, 0));
        if (go)
            break;
        co_await ctx.compute(200);
    }

    unsigned worker = ctx.coreId() - 1;
    unsigned workers = ctx.numCores() - 1;
    std::uint32_t per = kElems / workers;
    std::uint32_t begin = worker * per;
    std::uint32_t end = worker + 1 == workers ? kElems : begin + per;

    // SWcc processing: invalidate our slice (the host produced it in
    // another cluster), transform it, flush it back.
    co_await ctx.invRegion(data + begin * 4, (end - begin) * 4);
    for (std::uint32_t i = begin; i < end; ++i) {
        std::uint32_t v =
            static_cast<std::uint32_t>(co_await ctx.load32(data + i * 4));
        co_await ctx.compute(8);
        co_await ctx.store32(data + i * 4, v * 2 + 7);
    }
    co_await ctx.flushRegion(data + begin * 4, (end - begin) * 4);
    co_await ctx.drain();
    // Transition discipline: drop our (now clean) copies before the
    // host converts the region to HWcc. Slice boundaries share cache
    // lines, so a lazily-kept clean copy can hold stale values for a
    // neighbour's words — and coh_HWcc_region adopts clean copies
    // as-is (Fig. 7b case 2b; the paper: "the data values may not be
    // safe"). Well-formed runtimes invalidate before transitioning.
    co_await ctx.invRegion(data + begin * 4, (end - begin) * 4);
    co_await ctx.atomicAdd(flags + 4, 1);
}

} // namespace

int
main()
{
    harness::banner(std::cout,
                    "Heterogeneous offload: HWcc produce -> SWcc "
                    "accelerate -> HWcc consume (no copies, one "
                    "address space)");

    arch::MachineConfig cfg = arch::MachineConfig::scaled(2); // 16 cores
    cfg.mode = arch::CoherenceMode::Cohesion;
    arch::Chip chip(cfg, runtime::Layout::tableBase);
    runtime::CohesionRuntime rt(chip);

    // The buffer lives on the incoherent heap (it will transition);
    // it starts SWcc, so move it to HWcc for the host's produce phase.
    mem::Addr data = rt.cohMalloc(kElems * 4);
    mem::Addr flags = rt.malloc(64);
    rt.poke<std::uint32_t>(flags, 0);
    rt.poke<std::uint32_t>(flags + 4, 0);
    cohesion::fine_table::pokeRegion(chip.store(), chip.map(), data,
                                     kElems * 4, false); // boot-time HWcc

    std::vector<sim::CoTask> tasks;
    tasks.push_back(hostMain(runtime::Ctx(rt, chip.core(0)), data, flags,
                             &chip));
    for (unsigned c = 1; c < chip.totalCores(); ++c) {
        tasks.push_back(
            acceleratorMain(runtime::Ctx(rt, chip.core(c)), data, flags));
    }
    for (auto &t : tasks)
        t.start();
    sim::Tick end = chip.runUntilQuiescent();
    for (auto &t : tasks) {
        t.rethrow();
        if (!t.done()) {
            std::cerr << "deadlock\n";
            return 1;
        }
    }

    std::uint64_t transitions = 0;
    for (unsigned b = 0; b < chip.numBanks(); ++b)
        transitions += chip.bank(b).transitions();
    std::cout << "\nFinished in " << end << " cycles; "
              << transitions << " per-line domain transitions, "
              << chip.aggregateMessages().total()
              << " total L2->L3 messages.\n";
    return 0;
}
