/**
 * @file
 * GDDR5-class DRAM timing model. One channel per four L3 banks
 * (Table 3: 8 channels, 192 GB/s aggregate => 24 GB/s per channel,
 * i.e. 16 bytes per 1.5 GHz core cycle). Each channel has 16 internal
 * banks with open-row tracking: a row hit pays CAS only, a row miss
 * pays precharge + activate + CAS. The model is arithmetic (no
 * events): callers pass the request tick and receive the completion
 * tick, with per-bank and per-channel-bus availability enforced via
 * next-free counters, which is exact for the FCFS ordering the L3
 * banks generate.
 */

#ifndef COHESION_MEM_DRAM_HH
#define COHESION_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "mem/address_map.hh"
#include "mem/types.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace mem {

/** Timing parameters, in core cycles (1.5 GHz per Table 3). */
struct DramTiming
{
    sim::Tick rowHit = 22;        ///< CAS-only access.
    sim::Tick rowMiss = 52;       ///< tRP + tRCD + CAS.
    sim::Tick burst = 2;          ///< 32 B line at 16 B/cycle.
    sim::Tick writeRecovery = 8;  ///< tWR after a write burst.
};

/** One GDDR channel with open-row banks and a shared data bus. */
class DramChannel
{
  public:
    explicit DramChannel(const DramTiming &timing)
        : _timing(timing),
          _banks(AddressMap::dramBanksPerChannel)
    {}

    /**
     * Issue an access and return its data-completion tick.
     *
     * @param bank  DRAM-internal bank index within this channel.
     * @param row   Row identifier for hit/miss determination.
     * @param write True for writes (adds write recovery to the bank).
     * @param when  Earliest tick the request can start.
     */
    sim::Tick
    access(unsigned bank, std::uint32_t row, bool write, sim::Tick when)
    {
        Bank &b = _banks[bank % _banks.size()];
        sim::Tick start = std::max(when, b.nextFree);
        bool hit = b.rowValid && b.openRow == row;
        sim::Tick array_done =
            start + (hit ? _timing.rowHit : _timing.rowMiss);

        // Data transfer occupies the channel bus after the array access.
        sim::Tick xfer_start = std::max(array_done, _busNextFree);
        sim::Tick done = xfer_start + _timing.burst;
        _busNextFree = done;

        b.rowValid = true;
        b.openRow = row;
        b.nextFree = done + (write ? _timing.writeRecovery : 0);

        (hit ? _rowHits : _rowMisses).inc();
        (write ? _writes : _reads).inc();
        return done;
    }

    std::uint64_t reads() const { return _reads.value(); }
    std::uint64_t writes() const { return _writes.value(); }
    std::uint64_t rowHits() const { return _rowHits.value(); }
    std::uint64_t rowMisses() const { return _rowMisses.value(); }

    /** Checkpoint hooks: open-row state and next-free counters shape
     *  every post-restore access latency. */
    void
    checkpointState(sim::Serializer &ser) const
    {
        ser.u64(_banks.size());
        for (const Bank &b : _banks) {
            ser.b(b.rowValid);
            ser.u32(b.openRow);
            ser.u64(b.nextFree);
        }
        ser.u64(_busNextFree);
        _reads.checkpointState(ser);
        _writes.checkpointState(ser);
        _rowHits.checkpointState(ser);
        _rowMisses.checkpointState(ser);
    }

    void
    restoreState(sim::Deserializer &des)
    {
        if (des.u64() != _banks.size())
            throw sim::SnapshotError("snapshot DRAM bank count mismatch");
        for (Bank &b : _banks) {
            b.rowValid = des.b();
            b.openRow = des.u32();
            b.nextFree = des.u64();
        }
        _busNextFree = des.u64();
        _reads.restoreState(des);
        _writes.restoreState(des);
        _rowHits.restoreState(des);
        _rowMisses.restoreState(des);
    }

  private:
    struct Bank
    {
        bool rowValid = false;
        std::uint32_t openRow = 0;
        sim::Tick nextFree = 0;
    };

    DramTiming _timing;
    std::vector<Bank> _banks;
    sim::Tick _busNextFree = 0;

    sim::Counter _reads, _writes, _rowHits, _rowMisses;
};

/** The full memory system: one channel per AddressMap channel. */
class DramModel
{
  public:
    DramModel(const AddressMap &map, const DramTiming &timing = {})
        : _map(map)
    {
        for (unsigned c = 0; c < map.numChannels(); ++c)
            _channels.emplace_back(timing);
    }

    /** Access the line containing @p a; returns completion tick. */
    sim::Tick
    access(Addr a, bool write, sim::Tick when)
    {
        DramChannel &ch = _channels[_map.channelOf(a)];
        return ch.access(_map.dramBankOf(a), _map.dramRowOf(a), write, when);
    }

    const DramChannel &channel(unsigned c) const { return _channels.at(c); }
    unsigned numChannels() const { return _channels.size(); }

    void
    checkpointState(sim::Serializer &ser) const
    {
        ser.tag("dram");
        ser.u64(_channels.size());
        for (const DramChannel &c : _channels)
            c.checkpointState(ser);
    }

    void
    restoreState(sim::Deserializer &des)
    {
        des.tag("dram");
        if (des.u64() != _channels.size())
            throw sim::SnapshotError("snapshot DRAM channel count mismatch");
        for (DramChannel &c : _channels)
            c.restoreState(des);
    }

    /** Aggregate accesses across channels (diagnostics). */
    std::uint64_t
    totalAccesses() const
    {
        std::uint64_t n = 0;
        for (const auto &c : _channels)
            n += c.reads() + c.writes();
        return n;
    }

  private:
    const AddressMap &_map;
    std::vector<DramChannel> _channels;
};

} // namespace mem

#endif // COHESION_MEM_DRAM_HH
