/**
 * @file
 * Sparse backing store for the simulated 4 GB physical address space.
 * This is the architectural "DRAM contents"; caches keep their own
 * copies of line data so stale values are genuinely observable, which
 * the SWcc correctness tests depend on.
 */

#ifndef COHESION_MEM_BACKING_STORE_HH
#define COHESION_MEM_BACKING_STORE_HH

#include <algorithm>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/types.hh"
#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace mem {

/** Sparse page-granular byte store over the 32-bit space. */
class BackingStore
{
  public:
    static constexpr unsigned pageShift = 16; // 64 KB pages
    static constexpr unsigned pageBytes = 1u << pageShift;

    /** Read @p bytes at @p a into @p out. Untouched memory reads zero. */
    void
    read(Addr a, void *out, unsigned bytes) const
    {
        auto *dst = static_cast<std::uint8_t *>(out);
        while (bytes > 0) {
            unsigned chunk = chunkWithinPage(a, bytes);
            const std::uint8_t *p = peek(a);
            if (p) {
                std::memcpy(dst, p, chunk);
            } else {
                std::memset(dst, 0, chunk);
            }
            a += chunk;
            dst += chunk;
            bytes -= chunk;
        }
    }

    /** Write @p bytes at @p a from @p src, allocating pages on demand. */
    void
    write(Addr a, const void *src, unsigned bytes)
    {
        auto *s = static_cast<const std::uint8_t *>(src);
        while (bytes > 0) {
            unsigned chunk = chunkWithinPage(a, bytes);
            std::memcpy(poke(a), s, chunk);
            a += chunk;
            s += chunk;
            bytes -= chunk;
        }
    }

    /** Typed convenience accessors. */
    template <typename T>
    T
    readT(Addr a) const
    {
        T v;
        read(a, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeT(Addr a, T v)
    {
        write(a, &v, sizeof(T));
    }

    /** Number of pages materialized (footprint diagnostics). */
    std::size_t pagesAllocated() const { return _pages.size(); }

    /** Checkpoint hooks. Pages are written in ascending page-number
     *  order so snapshots of identical memory images are byte-identical
     *  regardless of hash-map iteration order. */
    void
    checkpointState(sim::Serializer &ser) const
    {
        ser.tag("store");
        std::vector<std::uint32_t> keys;
        keys.reserve(_pages.size());
        for (const auto &[page, data] : _pages)
            keys.push_back(page);
        std::sort(keys.begin(), keys.end());
        ser.u64(keys.size());
        for (std::uint32_t page : keys) {
            ser.u32(page);
            ser.bytes(_pages.at(page).get(), pageBytes);
        }
    }

    void
    restoreState(sim::Deserializer &des)
    {
        des.tag("store");
        _pages.clear();
        std::uint64_t n = des.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            std::uint32_t page = des.u32();
            auto &slot = _pages[page];
            slot = std::make_unique<std::uint8_t[]>(pageBytes);
            des.bytes(slot.get(), pageBytes);
        }
    }

  private:
    static unsigned
    chunkWithinPage(Addr a, unsigned bytes)
    {
        unsigned room = pageBytes - (a & (pageBytes - 1));
        return bytes < room ? bytes : room;
    }

    const std::uint8_t *
    peek(Addr a) const
    {
        auto it = _pages.find(a >> pageShift);
        if (it == _pages.end())
            return nullptr;
        return it->second.get() + (a & (pageBytes - 1));
    }

    std::uint8_t *
    poke(Addr a)
    {
        auto &page = _pages[a >> pageShift];
        if (!page) {
            page = std::make_unique<std::uint8_t[]>(pageBytes);
            std::memset(page.get(), 0, pageBytes);
        }
        return page.get() + (a & (pageBytes - 1));
    }

    std::unordered_map<std::uint32_t, std::unique_ptr<std::uint8_t[]>> _pages;
};

} // namespace mem

#endif // COHESION_MEM_BACKING_STORE_HH
