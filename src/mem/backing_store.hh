/**
 * @file
 * Sparse backing store for the simulated 4 GB physical address space.
 * This is the architectural "DRAM contents"; caches keep their own
 * copies of line data so stale values are genuinely observable, which
 * the SWcc correctness tests depend on.
 */

#ifndef COHESION_MEM_BACKING_STORE_HH
#define COHESION_MEM_BACKING_STORE_HH

#include <atomic>
#include <cstring>
#include <memory>
#include <vector>

#include "mem/types.hh"
#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace mem {

/**
 * Sparse page-granular byte store over the 32-bit space.
 *
 * Thread model (sharded runs): each L3 bank only ever touches bytes of
 * its own 2 KB-interleaved address slices, so concurrent shard threads
 * never race on *data*. The only shared mutation is lazy page
 * materialization — two banks homed on different shards faulting in
 * disjoint slices of the same 64 KB page — so the page table is a
 * fixed array of atomic pointers published with a CAS.
 */
class BackingStore
{
  public:
    static constexpr unsigned pageShift = 16; // 64 KB pages
    static constexpr unsigned pageBytes = 1u << pageShift;
    static constexpr std::size_t numPages = std::size_t(1)
                                            << (32 - pageShift);

    BackingStore() : _pages(numPages) {}

    ~BackingStore() { releaseAll(); }

    BackingStore(const BackingStore &) = delete;
    BackingStore &operator=(const BackingStore &) = delete;

    /** Read @p bytes at @p a into @p out. Untouched memory reads zero. */
    void
    read(Addr a, void *out, unsigned bytes) const
    {
        auto *dst = static_cast<std::uint8_t *>(out);
        while (bytes > 0) {
            unsigned chunk = chunkWithinPage(a, bytes);
            const std::uint8_t *p = peek(a);
            if (p) {
                std::memcpy(dst, p, chunk);
            } else {
                std::memset(dst, 0, chunk);
            }
            a += chunk;
            dst += chunk;
            bytes -= chunk;
        }
    }

    /** Write @p bytes at @p a from @p src, allocating pages on demand. */
    void
    write(Addr a, const void *src, unsigned bytes)
    {
        auto *s = static_cast<const std::uint8_t *>(src);
        while (bytes > 0) {
            unsigned chunk = chunkWithinPage(a, bytes);
            std::memcpy(poke(a), s, chunk);
            a += chunk;
            s += chunk;
            bytes -= chunk;
        }
    }

    /** Typed convenience accessors. */
    template <typename T>
    T
    readT(Addr a) const
    {
        T v;
        read(a, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeT(Addr a, T v)
    {
        write(a, &v, sizeof(T));
    }

    /** Number of pages materialized (footprint diagnostics). */
    std::size_t
    pagesAllocated() const
    {
        return _allocated.load(std::memory_order_relaxed);
    }

    /** Checkpoint hooks. Pages are written in ascending page-number
     *  order so snapshots of identical memory images are byte-identical
     *  regardless of allocation order. */
    void
    checkpointState(sim::Serializer &ser) const
    {
        ser.tag("store");
        ser.u64(pagesAllocated());
        for (std::size_t page = 0; page < numPages; ++page) {
            const std::uint8_t *p =
                _pages[page].load(std::memory_order_acquire);
            if (!p)
                continue;
            ser.u32(static_cast<std::uint32_t>(page));
            ser.bytes(p, pageBytes);
        }
    }

    void
    restoreState(sim::Deserializer &des)
    {
        des.tag("store");
        releaseAll();
        std::uint64_t n = des.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            std::uint32_t page = des.u32();
            auto *p = new std::uint8_t[pageBytes];
            des.bytes(p, pageBytes);
            _pages[page].store(p, std::memory_order_release);
        }
        _allocated.store(n, std::memory_order_relaxed);
    }

  private:
    static unsigned
    chunkWithinPage(Addr a, unsigned bytes)
    {
        unsigned room = pageBytes - (a & (pageBytes - 1));
        return bytes < room ? bytes : room;
    }

    const std::uint8_t *
    peek(Addr a) const
    {
        const std::uint8_t *p =
            _pages[a >> pageShift].load(std::memory_order_acquire);
        if (!p)
            return nullptr;
        return p + (a & (pageBytes - 1));
    }

    std::uint8_t *
    poke(Addr a)
    {
        auto &slot = _pages[a >> pageShift];
        std::uint8_t *p = slot.load(std::memory_order_acquire);
        if (!p) {
            auto *fresh = new std::uint8_t[pageBytes]();
            if (slot.compare_exchange_strong(p, fresh,
                                             std::memory_order_acq_rel)) {
                p = fresh;
                _allocated.fetch_add(1, std::memory_order_relaxed);
            } else {
                delete[] fresh; // another shard published first
            }
        }
        return p + (a & (pageBytes - 1));
    }

    void
    releaseAll()
    {
        for (auto &slot : _pages) {
            delete[] slot.load(std::memory_order_relaxed);
            slot.store(nullptr, std::memory_order_relaxed);
        }
        _allocated.store(0, std::memory_order_relaxed);
    }

    std::vector<std::atomic<std::uint8_t *>> _pages;
    std::atomic<std::size_t> _allocated{0};
};

} // namespace mem

#endif // COHESION_MEM_BACKING_STORE_HH
