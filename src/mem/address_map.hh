/**
 * @file
 * Address interleaving across L3 banks / DRAM channels and the
 * fine-grain region-table offset hash (the paper's `hybrid.tbloff`
 * instruction, Section 3.4, footnote 1).
 *
 * Interleave: addr[10..0] map to the same memory controller (2 KB DRAM
 * row stride); the L3 bank field starts at bit 11 and the channel is
 * the low bits of the bank field, so an eight-channel configuration
 * strides channels across addr[13..11] exactly as the paper describes.
 *
 * The table hash implemented here is a parameterized variant of the
 * paper's footnote-1 function. It provides the same architectural
 * property for any power-of-two bank count: the slice of the 16 MB
 * fine-grain table that covers a bank's addresses is itself homed to
 * that bank, so a table lookup never requires a bank-to-bank query.
 * The mapping is a bijection from the 22-bit table-word index space to
 * the 22-bit word-offset space (property-tested in tests/).
 */

#ifndef COHESION_MEM_ADDRESS_MAP_HH
#define COHESION_MEM_ADDRESS_MAP_HH

#include <bit>

#include "mem/types.hh"
#include "sim/logging.hh"

namespace mem {

/** Byte size of the full fine-grain table: 1 bit per 32 B line of 4 GB. */
constexpr std::uint32_t fineTableBytes = 1u << 24; // 16 MB

class AddressMap
{
  public:
    /**
     * @param num_banks     Number of L3 cache banks (power of two).
     * @param num_channels  Number of GDDR channels (power of two,
     *                      <= num_banks).
     * @param table_base    Base physical address of the fine-grain
     *                      region table; must be 16 MB aligned.
     */
    AddressMap(unsigned num_banks, unsigned num_channels, Addr table_base)
        : _numBanks(num_banks), _numChannels(num_channels),
          _bankBits(std::bit_width(num_banks) - 1), _tableBase(table_base)
    {
        fatal_if(!std::has_single_bit(num_banks), "L3 bank count must be "
                 "a power of two, got ", num_banks);
        fatal_if(!std::has_single_bit(num_channels),
                 "channel count must be a power of two, got ", num_channels);
        fatal_if(num_channels > num_banks,
                 "more channels than L3 banks");
        fatal_if(table_base & (fineTableBytes - 1),
                 "fine-grain table base must be 16 MB aligned");
        fatal_if(_bankBits > 13, "bank field exceeds supported width");
    }

    unsigned numBanks() const { return _numBanks; }
    unsigned numChannels() const { return _numChannels; }
    Addr tableBase() const { return _tableBase; }

    /** Home L3 bank of address @p a. */
    unsigned
    bankOf(Addr a) const
    {
        return (a >> bankShift) & (_numBanks - 1);
    }

    /** GDDR channel of address @p a (low bits of the bank field). */
    unsigned
    channelOf(Addr a) const
    {
        return bankOf(a) & (_numChannels - 1);
    }

    /** DRAM-internal bank within the channel (row-buffer locality). */
    unsigned
    dramBankOf(Addr a) const
    {
        return (a >> (bankShift + _bankBits)) & (dramBanksPerChannel - 1);
    }

    /** DRAM row identifier (for row-hit/miss modelling). */
    std::uint32_t
    dramRowOf(Addr a) const
    {
        return a >> (bankShift + _bankBits + 4);
    }

    /** True if @p a falls inside the fine-grain region table. */
    bool
    inTable(Addr a) const
    {
        return a >= _tableBase && a - _tableBase < fineTableBytes;
    }

    /**
     * `hybrid.tbloff`: byte address of the 32-bit table word holding
     * the region bit for the line containing @p a. Guaranteed to home
     * to bankOf(a).
     */
    Addr
    tableWordAddr(Addr a) const
    {
        return _tableBase + (permuteWordIndex(a >> 10) << 2);
    }

    /** Bit position of line(@p a)'s region bit within its table word. */
    unsigned
    tableBitIndex(Addr a) const
    {
        return (a >> lineShift) & 31;
    }

    /**
     * Inverse of the word-index permutation: given a byte offset into
     * the table, return the base address of the 1 KB block of memory
     * whose region bits that word holds. Used by the directory to
     * recover the target region on snooped table updates, and by the
     * bijectivity tests.
     */
    Addr
    coveredBlockBase(Addr table_addr) const
    {
        panic_if(!inTable(table_addr), "address not inside fine table");
        return unpermuteWordIndex((table_addr - _tableBase) >> 2) << 10;
    }

    static constexpr unsigned bankShift = 11;
    static constexpr unsigned dramBanksPerChannel = 16;

  private:
    /**
     * Bijection over 22-bit word indices (= addr[31:10]). Index bit i
     * corresponds to addr bit i+10 on the input side, and — because the
     * word offset is index<<2 and the base is 16 MB aligned — to table
     * address bit i+2 on the output side. The home-bank field of the
     * table address therefore occupies *output* index bits
     * [9 .. 9+bankBits-1], while the covered line's bank field arrives
     * in *input* index bits [1 .. bankBits]. The permutation moves the
     * bank field accordingly and scatters the remaining bits, in order,
     * over the remaining positions.
     */
    std::uint32_t
    permuteWordIndex(std::uint32_t idx) const
    {
        std::uint32_t out = 0;
        for (unsigned i = 0; i < _bankBits; ++i) {
            if (idx & (1u << (1 + i)))
                out |= 1u << (9 + i);
        }
        unsigned out_pos = 0;
        auto place = [&](unsigned in_bit) {
            if (out_pos == 9)
                out_pos += _bankBits; // skip the pinned bank field
            if (idx & (1u << in_bit))
                out |= 1u << out_pos;
            ++out_pos;
        };
        place(0);
        for (unsigned i = _bankBits + 1; i < 22; ++i)
            place(i);
        return out;
    }

    std::uint32_t
    unpermuteWordIndex(std::uint32_t out) const
    {
        std::uint32_t idx = 0;
        for (unsigned i = 0; i < _bankBits; ++i) {
            if (out & (1u << (9 + i)))
                idx |= 1u << (1 + i);
        }
        unsigned out_pos = 0;
        auto take = [&](unsigned in_bit) {
            if (out_pos == 9)
                out_pos += _bankBits;
            if (out & (1u << out_pos))
                idx |= 1u << in_bit;
            ++out_pos;
        };
        take(0);
        for (unsigned i = _bankBits + 1; i < 22; ++i)
            take(i);
        return idx;
    }

    unsigned _numBanks;
    unsigned _numChannels;
    unsigned _bankBits;
    Addr _tableBase;
};

} // namespace mem

#endif // COHESION_MEM_ADDRESS_MAP_HH
