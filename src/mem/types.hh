/**
 * @file
 * Fundamental memory-system types: the 32-bit simulated physical
 * address space, cache-line geometry (32-byte lines, eight 32-bit
 * words, per the paper's Table 3), and per-word bit masks.
 */

#ifndef COHESION_MEM_TYPES_HH
#define COHESION_MEM_TYPES_HH

#include <cstdint>

namespace mem {

/** A simulated 32-bit physical address (the paper's single space). */
using Addr = std::uint32_t;

/** Cache-line geometry (Table 3: 32-byte lines). */
constexpr unsigned lineBytes = 32;
constexpr unsigned lineShift = 5;
constexpr unsigned wordBytes = 4;
constexpr unsigned wordsPerLine = lineBytes / wordBytes; // 8

/** Bit mask with one bit per word of a line. */
using WordMask = std::uint8_t;
constexpr WordMask fullMask = 0xFF;

/** Align @p a down to its line base. */
constexpr Addr
lineBase(Addr a)
{
    return a & ~Addr(lineBytes - 1);
}

/** Line number of @p a (address >> 5). */
constexpr std::uint32_t
lineNumber(Addr a)
{
    return a >> lineShift;
}

/** Word index of @p a within its line (0..7). */
constexpr unsigned
wordIndex(Addr a)
{
    return (a >> 2) & (wordsPerLine - 1);
}

/** Single-bit mask for the word containing @p a. */
constexpr WordMask
wordBit(Addr a)
{
    return WordMask(1u << wordIndex(a));
}

/** Mask covering @p bytes starting at @p a, within one line. */
constexpr WordMask
wordMaskFor(Addr a, unsigned bytes)
{
    unsigned first = wordIndex(a);
    unsigned last = wordIndex(a + bytes - 1);
    WordMask m = 0;
    for (unsigned w = first; w <= last; ++w)
        m |= WordMask(1u << w);
    return m;
}

/** True if [a, a+bytes) stays within a single cache line. */
constexpr bool
withinLine(Addr a, unsigned bytes)
{
    return lineBase(a) == lineBase(a + bytes - 1);
}

} // namespace mem

#endif // COHESION_MEM_TYPES_HH
