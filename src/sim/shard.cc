#include "sim/shard.hh"

#include "sim/host_profiler.hh"

namespace sim {

thread_local unsigned tlsShard = 0;

// --------------------------------------------------------------------
// ShardRouter
// --------------------------------------------------------------------

void
ShardRouter::collect()
{
    for (unsigned src = 0; src < _numShards; ++src) {
        for (unsigned dst = 0; dst < _numShards; ++dst) {
            auto &out = _outbox[std::size_t(src) * _numShards + dst];
            if (out.empty())
                continue;
            auto &in = _inbox[dst];
            for (Msg &m : out) {
                in.push_back(std::move(m));
                std::push_heap(in.begin(), in.end(), Later{});
            }
            out.clear();
        }
    }
}

Tick
ShardRouter::minInboxHead() const
{
    Tick t = maxTick;
    for (unsigned s = 0; s < _numShards; ++s)
        t = std::min(t, inboxHead(s));
    return t;
}

void
ShardRouter::flush(unsigned shard, Tick stop, EventQueue &eq)
{
    auto &in = _inbox[shard];
    while (!in.empty() && in.front().when <= stop) {
        std::pop_heap(in.begin(), in.end(), Later{});
        Msg m = std::move(in.back());
        in.pop_back();
        eq.schedule(m.when, std::move(m.cb));
    }
}

bool
ShardRouter::empty() const
{
    for (const auto &v : _outbox)
        if (!v.empty())
            return false;
    for (const auto &v : _inbox)
        if (!v.empty())
            return false;
    return true;
}

// --------------------------------------------------------------------
// ShardCrew
// --------------------------------------------------------------------

ShardCrew::ShardCrew(unsigned num_shards)
    : _numShards(num_shards),
      _ownerGroup(HostProfiler::groupKey()),
      _start(num_shards),
      _end(num_shards),
      _errors(num_shards)
{
    _threads.reserve(num_shards > 0 ? num_shards - 1 : 0);
    for (unsigned s = 1; s < num_shards; ++s)
        _threads.emplace_back([this, s] { workerMain(s); });
}

ShardCrew::~ShardCrew()
{
    if (!_threads.empty()) {
        _quit = true;
        _start.arrive_and_wait();
        for (std::thread &t : _threads)
            t.join();
    }
}

void
ShardCrew::workerMain(unsigned shard)
{
    // Fold this thread's host-profiler accumulation into the owning
    // run's group so threadSnapshot() attributes shard work correctly.
    HostProfiler::joinGroup(_ownerGroup);
    for (;;) {
        _start.arrive_and_wait();
        if (_quit)
            return;
        // Route panic/fatal/warn text into the orchestrator's capture
        // (if any) for the window's duration.
        LogSinkAdoption adopt(_sink);
        try {
            ShardGuard g(shard);
            (*_fn)(shard);
        } catch (...) {
            _errors[shard] = std::current_exception();
        }
        _end.arrive_and_wait();
    }
}

void
ShardCrew::runWindow(const std::function<void(unsigned)> &fn)
{
    if (_numShards <= 1) {
        ShardGuard g(0);
        fn(0);
        return;
    }
    _fn = &fn;
    _sink = LogCapture::current();
    _start.arrive_and_wait();
    try {
        ShardGuard g(0);
        fn(0);
    } catch (...) {
        _errors[0] = std::current_exception();
    }
    _end.arrive_and_wait();
    _fn = nullptr;
    for (unsigned s = 0; s < _numShards; ++s) {
        if (_errors[s]) {
            std::exception_ptr e = _errors[s];
            for (auto &err : _errors)
                err = nullptr;
            std::rethrow_exception(e);
        }
    }
}

} // namespace sim
