/**
 * @file
 * Discrete-event simulation core: a global tick counter and a priority
 * queue of scheduled callbacks. Events scheduled at the same tick fire
 * in FIFO order (a monotonically increasing sequence number breaks
 * ties), which keeps simulations deterministic.
 */

#ifndef COHESION_SIM_EVENT_QUEUE_HH
#define COHESION_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"

namespace sim {

/** Simulated time, in core clock cycles. */
using Tick = std::uint64_t;

/** Sentinel for "no limit". */
constexpr Tick maxTick = ~Tick(0);

/**
 * The event queue. One instance drives one simulated machine; there are
 * no globals so several machines can be simulated in one process (the
 * parameter-sweep benches rely on this).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Number of events executed so far (for perf accounting). */
    std::uint64_t eventsRun() const { return _eventsRun; }

    /** Number of events currently pending. */
    std::size_t pending() const { return _queue.size(); }

    /** Schedule @p cb to run at absolute tick @p when (>= now). */
    void
    schedule(Tick when, Callback cb)
    {
        panic_if(when < _now, "scheduling event in the past: ", when,
                 " < ", _now);
        _queue.push(Entry{when, _nextSeq++, std::move(cb)});
    }

    /** Schedule @p cb to run @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb)
    {
        schedule(_now + delta, std::move(cb));
    }

    /** True if no events are pending. */
    bool empty() const { return _queue.empty(); }

    /** Tick of the next pending event; maxTick when empty. */
    Tick
    nextEventTick() const
    {
        return _queue.empty() ? maxTick : _queue.top().when;
    }

    /** Execute a single event, advancing time to it. */
    void runOne();

    /**
     * Run until the queue drains or @p limit is reached.
     * @return true if the queue drained, false if the limit stopped us.
     */
    bool run(Tick limit = maxTick);

    /**
     * Advance the clock to @p when without running anything; used by
     * drivers that interleave synchronous work with events. It is an
     * error to skip over a pending event.
     */
    void
    advanceTo(Tick when)
    {
        panic_if(when < _now, "advanceTo moving backwards");
        panic_if(nextEventTick() < when, "advanceTo skipping events");
        _now = when;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Entry &other) const
        {
            return when != other.when ? when > other.when : seq > other.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> _queue;
    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _eventsRun = 0;
};

} // namespace sim

#endif // COHESION_SIM_EVENT_QUEUE_HH
