/**
 * @file
 * Discrete-event simulation core: a global tick counter and a bucketed
 * calendar queue (timing wheel) of scheduled callbacks. Events within
 * the wheel's horizon go straight into a per-tick bucket; far-future
 * events wait in a small binary heap and migrate into buckets as the
 * wheel advances. Events scheduled at the same tick fire in FIFO
 * order, which keeps simulations deterministic: bucket append order is
 * schedule order, and overflow entries carry a monotonically
 * increasing sequence number so they migrate in schedule order ahead
 * of any later same-tick append.
 *
 * Together with sim::Event (small-buffer callables over pooled nodes)
 * the common schedule->fire cycle performs zero heap allocations once
 * bucket vectors and pool slabs are warm.
 */

#ifndef COHESION_SIM_EVENT_QUEUE_HH
#define COHESION_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event.hh"
#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace sim {

/** Simulated time, in core clock cycles. */
using Tick = std::uint64_t;

/** Sentinel for "no limit". */
constexpr Tick maxTick = ~Tick(0);

/**
 * The event queue. One instance drives one simulated machine; there are
 * no globals so several machines can be simulated in one process (the
 * parameter-sweep benches rely on this).
 */
class EventQueue
{
  public:
    using Callback = Event;

    EventQueue()
        : _buckets(numBuckets), _occupied(numBuckets / 64, 0)
    {}

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Number of events executed so far (for perf accounting). */
    std::uint64_t eventsRun() const { return _eventsRun; }

    /**
     * Tick of the most recently fired event. Unlike now(), this is not
     * disturbed by a bounded run() stopping at its limit, so a sharded
     * chip can report the true final tick as the maximum of its
     * queues' lastFired values.
     */
    Tick lastFired() const { return _lastFired; }

    /** Next schedule-order sequence number (checkpoint plumbing). */
    std::uint64_t nextSeq() const { return _nextSeq; }

    /**
     * Restore-time adoption for one queue of a sharded machine: set
     * the clock and counters of a drained, unused queue. The chip
     * snapshot stores one canonical (tick, eventsRun, nextSeq) triple;
     * every shard queue adopts the same tick and sequence origin so a
     * snapshot restores identically for any shard count.
     */
    void
    adopt(Tick now, std::uint64_t next_seq, std::uint64_t events_run = 0)
    {
        panic_if(_size != 0 || _eventsRun != 0,
                 "adopting into a used event queue");
        _now = now;
        _lastFired = now;
        _base = now;
        _nextSeq = next_seq;
        _eventsRun = events_run;
    }

    /** Number of events currently pending. */
    std::size_t pending() const { return _size; }

    /** Schedule @p cb to run at absolute tick @p when (>= now). */
    void
    schedule(Tick when, Event cb)
    {
        panic_if(when < _now, "scheduling event in the past: ", when,
                 " < ", _now);
        if (_now > _base)
            rebase(_now);
        ++_size;
        if (when - _base < numBuckets) {
            pushBucket(when, std::move(cb));
        } else {
            _far.push_back(FarEvent{when, _nextSeq, std::move(cb)});
            std::push_heap(_far.begin(), _far.end(), FarLater{});
        }
        ++_nextSeq;
    }

    /** Schedule @p cb to run @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Event cb)
    {
        schedule(_now + delta, std::move(cb));
    }

    /** True if no events are pending. */
    bool empty() const { return _size == 0; }

    /** Tick of the next pending event; maxTick when empty. */
    Tick
    nextEventTick() const
    {
        if (_size > _far.size())
            return _base + wheelScan();
        return _far.empty() ? maxTick : _far.front().when;
    }

    /** Execute a single event, advancing time to it. */
    void runOne();

    /**
     * Run until the queue drains or @p limit is reached.
     * @return true if the queue drained, false if the limit stopped us.
     */
    bool run(Tick limit = maxTick);

    /**
     * Advance the clock to @p when without running anything; used by
     * drivers that interleave synchronous work with events. It is an
     * error to skip over a pending event.
     */
    void
    advanceTo(Tick when)
    {
        panic_if(when < _now, "advanceTo moving backwards");
        panic_if(nextEventTick() < when, "advanceTo skipping events");
        _now = when;
    }

    /**
     * Checkpoint hooks. Snapshots are only taken at quiescent points,
     * so the queue must be drained: the type-erased callables never
     * serialize, only the clock and the counters that make later
     * scheduling (sequence numbers) and reporting (events run) resume
     * exactly where they left off.
     */
    void
    checkpointState(Serializer &ser) const
    {
        if (_size != 0) {
            throw SnapshotError(
                "checkpoint requires a drained event queue");
        }
        ser.u64(_now);
        ser.u64(_eventsRun);
        ser.u64(_nextSeq);
    }

    void
    restoreState(Deserializer &des)
    {
        panic_if(_size != 0 || _eventsRun != 0,
                 "restoring into a used event queue");
        _now = des.u64();
        _eventsRun = des.u64();
        _nextSeq = des.u64();
        _base = _now;
        _lastFired = _now;
    }

  private:
    /** Wheel geometry: one bucket per tick across a 4096-tick horizon
     *  (covers every fabric/backoff/DRAM latency in the model; longer
     *  delays take the overflow heap). */
    static constexpr unsigned bucketBits = 12;
    static constexpr Tick numBuckets = Tick(1) << bucketBits;
    static constexpr Tick bucketMask = numBuckets - 1;

    /** One tick's events; head is the fire cursor so consuming is
     *  O(1) and the vector's capacity is recycled across laps. */
    struct Bucket
    {
        std::vector<Event> events;
        std::size_t head = 0;
    };

    struct FarEvent
    {
        Tick when;
        std::uint64_t seq;
        Event cb;
    };

    /** Heap comparator: the (when, seq)-smallest entry at the front. */
    struct FarLater
    {
        bool
        operator()(const FarEvent &a, const FarEvent &b) const
        {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };

    void
    pushBucket(Tick when, Event cb)
    {
        std::size_t idx = when & bucketMask;
        _buckets[idx].events.push_back(std::move(cb));
        _occupied[idx >> 6] |= std::uint64_t(1) << (idx & 63);
    }

    /**
     * Slide the wheel's window forward to [base, base + numBuckets) and
     * migrate newly covered overflow events into their buckets. Called
     * before time advances past _base, so a migrated event always lands
     * in its bucket before any later same-tick schedule() appends —
     * preserving global FIFO order.
     */
    void
    rebase(Tick base)
    {
        _base = base;
        while (!_far.empty() && _far.front().when - _base < numBuckets) {
            std::pop_heap(_far.begin(), _far.end(), FarLater{});
            FarEvent f = std::move(_far.back());
            _far.pop_back();
            pushBucket(f.when, std::move(f.cb));
        }
    }

    /** Distance in ticks from _base to the first occupied bucket;
     *  requires at least one event in the wheel. */
    Tick
    wheelScan() const
    {
        const std::size_t start = _base & bucketMask;
        const std::size_t w0 = start >> 6;
        const unsigned bit = start & 63;
        const std::size_t words = _occupied.size();
        std::size_t idx;
        std::uint64_t hi = _occupied[w0] & (~std::uint64_t(0) << bit);
        if (hi) {
            idx = (w0 << 6) | std::countr_zero(hi);
        } else {
            idx = numBuckets; // sentinel
            for (std::size_t k = 1; k < words; ++k) {
                std::size_t w = w0 + k;
                if (w >= words)
                    w -= words;
                if (_occupied[w]) {
                    idx = (w << 6) | std::countr_zero(_occupied[w]);
                    break;
                }
            }
            if (idx == numBuckets) {
                std::uint64_t lo =
                    _occupied[w0] & ~(~std::uint64_t(0) << bit);
                panic_if(!lo, "event wheel occupancy out of sync");
                idx = (w0 << 6) | std::countr_zero(lo);
            }
        }
        return (idx - start) & bucketMask;
    }

    /** Fire the pending events of the bucket covering tick @p t
     *  (which must be _now) — at least one, at most @p max_events. */
    std::size_t fireBucket(Tick t, std::size_t max_events);

    std::vector<Bucket> _buckets;
    std::vector<std::uint64_t> _occupied; ///< Non-empty-bucket bitmap.
    std::vector<FarEvent> _far;           ///< Beyond-horizon min-heap.
    Tick _base = 0;                       ///< Wheel window origin.
    Tick _now = 0;
    Tick _lastFired = 0;
    std::size_t _size = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _eventsRun = 0;
};

} // namespace sim

#endif // COHESION_SIM_EVENT_QUEUE_HH
