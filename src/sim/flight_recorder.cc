#include "sim/flight_recorder.hh"

#include <bit>
#include <cstring>

namespace sim {

namespace {

constexpr char kMagic[4] = {'C', 'F', 'R', '1'};

struct DumpHeader
{
    char magic[4];
    std::uint16_t version;
    std::uint16_t recordBytes;
    std::uint64_t totalRecorded;
    std::uint64_t storedCount;
};
static_assert(sizeof(DumpHeader) == 24);

} // namespace

void
FlightRecorder::enable(std::uint32_t capacity)
{
    std::uint32_t cap = std::bit_ceil(std::max<std::uint32_t>(capacity, 16));
    _ring.assign(cap, Record{});
    _mask = cap - 1;
    _next = 0;
}

void
FlightRecorder::disable()
{
    _ring.clear();
    _ring.shrink_to_fit();
    _mask = 0;
    _next = 0;
}

std::string
FlightRecorder::compName(std::uint16_t c)
{
    switch (compKind(c)) {
      case 0:
        return "chip";
      case 1:
        return "cluster" + std::to_string(compIndex(c));
      case 2:
        return "bank" + std::to_string(compIndex(c));
      default:
        return "comp" + std::to_string(c);
    }
}

std::string
FlightRecorder::serialize() const
{
    DumpHeader h{};
    std::memcpy(h.magic, kMagic, 4);
    h.version = 1;
    h.recordBytes = sizeof(Record);
    h.totalRecorded = _next;
    h.storedCount = size();

    std::string out;
    out.reserve(sizeof(h) + h.storedCount * sizeof(Record));
    out.append(reinterpret_cast<const char *>(&h), sizeof(h));
    forEach([&](const Record &r) {
        out.append(reinterpret_cast<const char *>(&r), sizeof(r));
    });
    return out;
}

bool
FlightRecorder::deserialize(std::string_view bytes, std::vector<Record> *out,
                            std::string *err, std::uint64_t *total_recorded)
{
    auto fail = [&](const char *why) {
        if (err)
            *err = why;
        return false;
    };
    if (bytes.size() < sizeof(DumpHeader))
        return fail("dump truncated before header");
    DumpHeader h;
    std::memcpy(&h, bytes.data(), sizeof(h));
    if (std::memcmp(h.magic, kMagic, 4) != 0)
        return fail("bad magic (not a flight-recorder dump)");
    if (h.version != 1)
        return fail("unsupported dump version");
    if (h.recordBytes != sizeof(Record))
        return fail("record size mismatch (dump from another build?)");
    std::size_t need = sizeof(h) + h.storedCount * sizeof(Record);
    if (bytes.size() < need)
        return fail("dump truncated: fewer records than header claims");
    out->resize(h.storedCount);
    if (h.storedCount)
        std::memcpy(out->data(), bytes.data() + sizeof(h),
                    h.storedCount * sizeof(Record));
    if (total_recorded)
        *total_recorded = h.totalRecorded;
    return true;
}

void
FlightRecorder::checkpointState(Serializer &ser) const
{
    ser.tag("recorder");
    ser.u32(capacity());
    ser.u64(_next);
    if (!enabled())
        return;
    // Full ring in slot order: the masked-store cursor lands on the
    // same slots after restore, so post-restore history splices onto
    // pre-checkpoint history exactly.
    ser.bytes(_ring.data(), _ring.size() * sizeof(Record));
}

void
FlightRecorder::restoreState(Deserializer &des)
{
    des.tag("recorder");
    std::uint32_t cap = des.u32();
    std::uint64_t next = des.u64();
    if (cap == 0) {
        disable();
        _next = next;
        return;
    }
    enable(cap);
    if (capacity() != cap) {
        throw SnapshotError(
            "snapshot corrupt: recorder capacity not a power of two");
    }
    _next = next;
    des.bytes(_ring.data(), _ring.size() * sizeof(Record));
}

const char *
FlightRecorder::evName(Ev e)
{
    switch (e) {
      case Ev::None:          return "none";
      case Ev::MsgSend:       return "msg.send";
      case Ev::MsgRecv:       return "msg.recv";
      case Ev::MsgDrop:       return "msg.drop";
      case Ev::MsgRetransmit: return "msg.retransmit";
      case Ev::RespSend:      return "resp.send";
      case Ev::RespRecv:      return "resp.recv";
      case Ev::ProbeSend:     return "probe.send";
      case Ev::ProbeRecv:     return "probe.recv";
      case Ev::ProbeAck:      return "probe.ack";
      case Ev::DirInsert:     return "dir.insert";
      case Ev::DirState:      return "dir.state";
      case Ev::DirErase:      return "dir.erase";
      case Ev::SwccFlush:     return "swcc.flush";
      case Ev::SwccInv:       return "swcc.inv";
      case Ev::Writeback:     return "writeback";
      case Ev::WbAck:         return "writeback.ack";
      case Ev::Fill:          return "fill";
      case Ev::Evict:         return "evict";
      case Ev::TableRead:     return "table.read";
      case Ev::TableUpdate:   return "table.update";
      case Ev::TransBegin:    return "trans.begin";
      case Ev::TransStep:     return "trans.step";
      case Ev::TransEnd:      return "trans.end";
      case Ev::TxnBegin:      return "txn.begin";
      case Ev::TxnEnd:        return "txn.end";
      case Ev::RetransmitExhausted: return "msg.retransmit-exhausted";
      case Ev::numEvents:     break;
    }
    return "unknown";
}

const char *
FlightRecorder::stepName(Step s)
{
    switch (s) {
      case Step::Recall:       return "recall";
      case Step::Broadcast:    return "broadcast-cleanquery";
      case Step::CleanSharer:  return "clean-sharer-joins";
      case Step::MakeOwner:    return "make-owner";
      case Step::Invalidate:   return "invalidate-copy";
      case Step::WritebackInv: return "writeback-invalidate";
      case Step::Merge:        return "merge-dirty-words";
      case Step::Conflict:     return "merge-conflict";
      case Step::Commit:       return "commit-table-bit";
    }
    return "step?";
}

} // namespace sim
