#include "sim/trace.hh"

#include <iostream>
#include <sstream>

#include "sim/trace_json.hh"

namespace sim {

const char *
categoryName(Category c)
{
    switch (c) {
      case Category::Protocol:
        return "protocol";
      case Category::Cache:
        return "cache";
      case Category::Transition:
        return "transition";
      case Category::Net:
        return "net";
      case Category::Dram:
        return "dram";
      case Category::Runtime:
        return "runtime";
      case Category::Watchdog:
        return "watchdog";
      case Category::Fault:
        return "fault";
      case Category::None:
        return "none";
      case Category::All:
        return "all";
    }
    return "?";
}

Category
parseCategories(const std::string &spec)
{
    Category mask = Category::None;
    std::stringstream ss(spec);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
        if (tok.empty())
            continue;
        if (tok == "all")
            return Category::All;
        if (tok == "none")
            return Category::None;
        bool known = false;
        for (Category c : {Category::Protocol, Category::Cache,
                           Category::Transition, Category::Net,
                           Category::Dram, Category::Runtime,
                           Category::Watchdog, Category::Fault}) {
            if (tok == categoryName(c)) {
                mask = mask | c;
                known = true;
                break;
            }
        }
        fatal_if(!known, "unknown trace category: ", tok);
    }
    return mask;
}

void
Tracer::emit(Category c, const std::string &msg)
{
    ++_records;
    std::ostream &os = _os ? *_os : std::cerr;
    os << _eq.now() << " [" << categoryName(c) << "] " << msg << '\n';
    if (_json)
        _json->instant(_eq.now(), TraceJsonWriter::machineTid, msg,
                       categoryName(c));
}

} // namespace sim
