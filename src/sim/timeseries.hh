/**
 * @file
 * Run-loop-driven time-series sampler. Components register named probe
 * functions; once started with a period, the sampler exposes the next
 * due tick via nextSampleAt() and the run loop (Chip::runUntilQuiescent)
 * bounds each event-queue burst by it and calls tick() when the cadence
 * comes due — the same pattern the coherence auditor and fault pump use.
 * Driving sampling from the run loop instead of a self-re-arming queue
 * event means the sampler never holds a quiescing machine alive, and —
 * unlike the old event-driven design, which stopped for good the first
 * time it found the queue empty — sampling resumes automatically when
 * new work arrives after a quiescent gap (the paper's "sampled every
 * 1000 cycles" methodology, Fig. 9c, generalized to any scalar the
 * machine can observe).
 *
 * The recorded data is a plain copyable struct so a run's trace can
 * outlive the machine that produced it; export is tidy CSV
 * (tick,series,value — one observation per row).
 */

#ifndef COHESION_SIM_TIMESERIES_HH
#define COHESION_SIM_TIMESERIES_HH

#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace sim {

/** The recorded samples of one run (copyable, machine-independent). */
struct TimeSeriesData
{
    struct Row
    {
        Tick tick = 0;
        std::vector<double> values; ///< Aligned with `names`.
    };

    std::vector<std::string> names;
    std::vector<Row> rows;
    Tick period = 0;

    bool empty() const { return rows.empty(); }

    /** Tidy CSV: header `tick,series,value`, one observation per row. */
    void
    dumpCsv(std::ostream &os) const
    {
        os << "tick,series,value\n";
        for (const Row &r : rows) {
            for (std::size_t i = 0;
                 i < names.size() && i < r.values.size(); ++i) {
                os << r.tick << ',' << names[i] << ',' << r.values[i]
                   << '\n';
            }
        }
    }
};

class TimeSeries
{
  public:
    using Probe = std::function<double()>;
    using Sink = std::function<void(Tick, const std::string &, double)>;

    explicit TimeSeries(EventQueue &eq) : _eq(eq) {}

    /** Register a named probe; call before start(). */
    void
    add(std::string name, Probe probe)
    {
        panic_if(enabled(), "TimeSeries probes must be added before start");
        _data.names.push_back(std::move(name));
        _probes.push_back(std::move(probe));
    }

    /** Run @p fn once per sampling point, before the probes (lets one
     *  expensive walk feed several probes through cached values). */
    void setPreSample(std::function<void()> fn) { _preSample = std::move(fn); }

    /** Mirror every observation to @p sink (e.g. Perfetto counters). */
    void setSink(Sink sink) { _sink = std::move(sink); }

    /** Begin periodic sampling; idempotent re-arm is not supported. */
    void
    start(Tick period)
    {
        panic_if(period == 0, "TimeSeries period must be nonzero");
        panic_if(enabled(), "TimeSeries already started");
        _data.period = period;
        _next = _eq.now() + period;
    }

    /** Next tick a sample is due at (maxTick while not started). The
     *  run loop bounds its event bursts by this. */
    Tick nextSampleAt() const { return enabled() ? _next : maxTick; }

    /**
     * Record the due sample and re-arm. Called by the run loop once
     * now() reaches nextSampleAt(); if the loop overshot the cadence
     * (e.g. sampling enabled mid-run after a long stall) the next due
     * tick is realigned forward so at most one catch-up row is taken.
     */
    void
    tick()
    {
        sampleNow();
        _next += _data.period;
        if (_next <= _eq.now())
            _next = _eq.now() + _data.period;
    }

    bool enabled() const { return _data.period != 0; }
    std::uint64_t samples() const { return _data.rows.size(); }
    const TimeSeriesData &data() const { return _data; }

    /** Record one row at the current tick (also used by the driver). */
    void
    sampleNow()
    {
        if (_preSample)
            _preSample();
        TimeSeriesData::Row row;
        row.tick = _eq.now();
        row.values.reserve(_probes.size());
        for (std::size_t i = 0; i < _probes.size(); ++i) {
            double v = _probes[i]();
            row.values.push_back(v);
            if (_sink)
                _sink(row.tick, _data.names[i], v);
        }
        _data.rows.push_back(std::move(row));
    }

  private:
    EventQueue &_eq;
    Tick _next = maxTick;
    std::vector<Probe> _probes;
    std::function<void()> _preSample;
    Sink _sink;
    TimeSeriesData _data;
};

} // namespace sim

#endif // COHESION_SIM_TIMESERIES_HH
