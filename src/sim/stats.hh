/**
 * @file
 * Lightweight statistics containers: scalar counters, distributions,
 * and a periodic time-sampler (used for directory-occupancy traces,
 * Fig. 9c). Components hold concrete Stat members (cheap increments);
 * a StatSet provides named export for reporting.
 */

#ifndef COHESION_SIM_STATS_HH
#define COHESION_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sim {

/** A scalar event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { _value += n; }
    void reset() { _value = 0; }
    std::uint64_t value() const { return _value; }

  private:
    std::uint64_t _value = 0;
};

/** Running min/mean/max over observed samples. */
class Distribution
{
  public:
    void
    sample(double v)
    {
        if (_count == 0) {
            _min = _max = v;
        } else {
            _min = std::min(_min, v);
            _max = std::max(_max, v);
        }
        _sum += v;
        ++_count;
    }

    void
    reset()
    {
        _count = 0;
        _sum = _min = _max = 0.0;
    }

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double min() const { return _min; }
    double max() const { return _max; }
    double mean() const { return _count ? _sum / _count : 0.0; }

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/**
 * Collects (time, value) samples at a fixed period; reports the
 * time-average and the maximum, matching the paper's "sampled every
 * 1000 cycles" methodology.
 */
class TimeSampler
{
  public:
    explicit TimeSampler(std::uint64_t period = 1000) : _period(period) {}

    std::uint64_t period() const { return _period; }

    void sample(double v) { _dist.sample(v); }

    double timeAverage() const { return _dist.mean(); }
    double maximum() const { return _dist.max(); }
    std::uint64_t samples() const { return _dist.count(); }
    void reset() { _dist.reset(); }

  private:
    std::uint64_t _period;
    Distribution _dist;
};

/** A named bag of scalar values for uniform reporting/CSV export. */
class StatSet
{
  public:
    void set(const std::string &name, double v) { _values[name] = v; }
    void add(const std::string &name, double v) { _values[name] += v; }

    double
    get(const std::string &name) const
    {
        auto it = _values.find(name);
        return it == _values.end() ? 0.0 : it->second;
    }

    bool has(const std::string &name) const { return _values.count(name); }

    const std::map<std::string, double> &values() const { return _values; }

    /** Merge (sum) another set into this one. */
    void
    merge(const StatSet &other)
    {
        for (const auto &[k, v] : other.values())
            add(k, v);
    }

  private:
    std::map<std::string, double> _values;
};

} // namespace sim

#endif // COHESION_SIM_STATS_HH
