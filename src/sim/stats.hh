/**
 * @file
 * Lightweight statistics containers: scalar counters, distributions,
 * and a periodic time-sampler (used for directory-occupancy traces,
 * Fig. 9c). Components hold concrete Stat members (cheap increments);
 * a StatSet provides named export for reporting.
 */

#ifndef COHESION_SIM_STATS_HH
#define COHESION_SIM_STATS_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/serialize.hh"

namespace sim {

/** A scalar event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { _value += n; }
    void reset() { _value = 0; }
    std::uint64_t value() const { return _value; }

    void checkpointState(Serializer &ser) const { ser.u64(_value); }
    void restoreState(Deserializer &des) { _value = des.u64(); }

  private:
    std::uint64_t _value = 0;
};

/**
 * Running min/mean/max/variance over observed samples. The mean and
 * variance use Welford's online recurrence, so one pass is numerically
 * stable and reset() leaves no residue. An empty (or freshly reset)
 * distribution reports zero for every moment; a single sample has zero
 * variance. variance() is the population variance (divide by N).
 *
 * percentile() is served from a bounded reservoir: exact while the
 * sample count fits (reservoirSize), then Vitter's algorithm R driven
 * by a fixed-seed LCG — deterministic for a given sample sequence, so
 * percentile columns stay byte-identical across reruns and --jobs
 * values. Storage is a fixed array: no allocation on the sample path.
 */
class Distribution
{
  public:
    static constexpr std::uint32_t reservoirSize = 512;

    void
    sample(double v)
    {
        if (_count == 0) {
            _min = _max = v;
        } else {
            _min = std::min(_min, v);
            _max = std::max(_max, v);
        }
        _sum += v;
        ++_count;
        double delta = v - _mean;
        _mean += delta / _count;
        _m2 += delta * (v - _mean);

        if (_count <= reservoirSize) {
            _reservoir[_count - 1] = v;
        } else {
            _lcg = _lcg * 6364136223846793005ull + 1442695040888963407ull;
            // Top bits of the LCG are the good ones; map onto [0,count).
            std::uint64_t slot =
                static_cast<std::uint64_t>((_lcg >> 11) % _count);
            if (slot < reservoirSize)
                _reservoir[static_cast<std::uint32_t>(slot)] = v;
        }
    }

    void reset() { *this = Distribution(); }

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double min() const { return _min; }
    double max() const { return _max; }
    double mean() const { return _count ? _mean : 0.0; }
    double variance() const { return _count ? _m2 / _count : 0.0; }
    double stddev() const { return std::sqrt(variance()); }

    /**
     * Nearest-rank percentile for @p p in [0,100], exact when at most
     * reservoirSize samples were observed and a deterministic estimate
     * beyond that. Empty distributions report 0.
     */
    double
    percentile(double p) const
    {
        std::uint32_t n = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(_count, reservoirSize));
        if (n == 0)
            return 0.0;
        std::array<double, reservoirSize> sorted;
        std::copy(_reservoir.begin(), _reservoir.begin() + n,
                  sorted.begin());
        std::sort(sorted.begin(), sorted.begin() + n);
        double clamped = std::clamp(p, 0.0, 100.0);
        std::uint32_t rank = static_cast<std::uint32_t>(
            std::ceil(clamped / 100.0 * n));
        return sorted[rank == 0 ? 0 : rank - 1];
    }

    double p50() const { return percentile(50); }
    double p95() const { return percentile(95); }
    double p99() const { return percentile(99); }

    /** The reservoir and its LCG serialize too: percentile columns in
     *  stat exports must be byte-identical after a restore. */
    void
    checkpointState(Serializer &ser) const
    {
        ser.u64(_count);
        ser.f64(_sum);
        ser.f64(_min);
        ser.f64(_max);
        ser.f64(_mean);
        ser.f64(_m2);
        ser.u64(_lcg);
        for (double v : _reservoir)
            ser.f64(v);
    }

    void
    restoreState(Deserializer &des)
    {
        _count = des.u64();
        _sum = des.f64();
        _min = des.f64();
        _max = des.f64();
        _mean = des.f64();
        _m2 = des.f64();
        _lcg = des.u64();
        for (double &v : _reservoir)
            v = des.f64();
    }

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
    double _mean = 0.0;
    double _m2 = 0.0;
    std::uint64_t _lcg = 0x9E3779B97F4A7C15ull;
    std::array<double, reservoirSize> _reservoir{};
};

/**
 * Log2-bucketed histogram of non-negative integer samples (message
 * latencies, queue depths). Bucket 0 holds the value 0; bucket i
 * holds [2^(i-1), 2^i - 1]; the last bucket absorbs everything above.
 * Constant memory, O(1) sampling — safe on hot paths.
 */
class Histogram
{
  public:
    static constexpr unsigned numBuckets = 33;

    static unsigned
    bucketOf(std::uint64_t v)
    {
        unsigned w = static_cast<unsigned>(std::bit_width(v));
        return w < numBuckets ? w : numBuckets - 1;
    }

    /** Lowest value accounted to bucket @p b. */
    static std::uint64_t
    bucketLow(unsigned b)
    {
        return b == 0 ? 0 : std::uint64_t(1) << (b - 1);
    }

    /** Highest value accounted to bucket @p b (inclusive). */
    static std::uint64_t
    bucketHigh(unsigned b)
    {
        if (b == 0)
            return 0;
        if (b >= numBuckets - 1)
            return ~std::uint64_t(0);
        return (std::uint64_t(1) << b) - 1;
    }

    void
    sample(std::uint64_t v, std::uint64_t weight = 1)
    {
        if (weight == 0)
            return;
        if (_count == 0) {
            _min = _max = v;
        } else {
            _min = std::min(_min, v);
            _max = std::max(_max, v);
        }
        _buckets[bucketOf(v)] += weight;
        _count += weight;
        _sum += v * weight;
    }

    void reset() { *this = Histogram(); }

    void
    merge(const Histogram &other)
    {
        if (other._count == 0)
            return;
        if (_count == 0) {
            _min = other._min;
            _max = other._max;
        } else {
            _min = std::min(_min, other._min);
            _max = std::max(_max, other._max);
        }
        for (unsigned i = 0; i < numBuckets; ++i)
            _buckets[i] += other._buckets[i];
        _count += other._count;
        _sum += other._sum;
    }

    std::uint64_t count() const { return _count; }
    std::uint64_t sum() const { return _sum; }
    std::uint64_t min() const { return _min; }
    std::uint64_t max() const { return _max; }
    double mean() const { return _count ? double(_sum) / _count : 0.0; }
    std::uint64_t bucket(unsigned b) const { return _buckets.at(b); }

    /**
     * Percentile estimate for @p p in [0,100]: find the bucket holding
     * the nearest-rank sample and interpolate linearly inside it,
     * clamped to the observed min/max. Exact bucket membership makes
     * this deterministic (no sampling), at log2-bucket resolution.
     */
    double
    percentile(double p) const
    {
        if (_count == 0)
            return 0.0;
        double clamped = std::clamp(p, 0.0, 100.0);
        std::uint64_t rank = static_cast<std::uint64_t>(
            std::ceil(clamped / 100.0 * _count));
        if (rank == 0)
            rank = 1;
        std::uint64_t seen = 0;
        for (unsigned b = 0; b < numBuckets; ++b) {
            if (seen + _buckets[b] < rank) {
                seen += _buckets[b];
                continue;
            }
            double lo = static_cast<double>(
                std::max(bucketLow(b), _min));
            double hi = static_cast<double>(
                std::min(bucketHigh(b), _max));
            double frac = _buckets[b] <= 1
                              ? 1.0
                              : double(rank - seen) / double(_buckets[b]);
            return lo + (hi - lo) * frac;
        }
        return static_cast<double>(_max);
    }

    double p50() const { return percentile(50); }
    double p95() const { return percentile(95); }
    double p99() const { return percentile(99); }

    void
    checkpointState(Serializer &ser) const
    {
        for (std::uint64_t b : _buckets)
            ser.u64(b);
        ser.u64(_count);
        ser.u64(_sum);
        ser.u64(_min);
        ser.u64(_max);
    }

    void
    restoreState(Deserializer &des)
    {
        for (std::uint64_t &b : _buckets)
            b = des.u64();
        _count = des.u64();
        _sum = des.u64();
        _min = des.u64();
        _max = des.u64();
    }

  private:
    std::array<std::uint64_t, numBuckets> _buckets{};
    std::uint64_t _count = 0;
    std::uint64_t _sum = 0;
    std::uint64_t _min = 0;
    std::uint64_t _max = 0;
};

/**
 * Collects (time, value) samples at a fixed period; reports the
 * time-average and the maximum, matching the paper's "sampled every
 * 1000 cycles" methodology.
 */
class TimeSampler
{
  public:
    explicit TimeSampler(std::uint64_t period = 1000) : _period(period) {}

    std::uint64_t period() const { return _period; }

    void sample(double v) { _dist.sample(v); }

    double timeAverage() const { return _dist.mean(); }
    double maximum() const { return _dist.max(); }
    std::uint64_t samples() const { return _dist.count(); }
    void reset() { _dist.reset(); }

    void checkpointState(Serializer &ser) const { _dist.checkpointState(ser); }
    void restoreState(Deserializer &des) { _dist.restoreState(des); }

  private:
    std::uint64_t _period;
    Distribution _dist;
};

/** A named bag of scalar values for uniform reporting/CSV export. */
class StatSet
{
  public:
    void set(const std::string &name, double v) { _values[name] = v; }
    void add(const std::string &name, double v) { _values[name] += v; }

    double
    get(const std::string &name) const
    {
        auto it = _values.find(name);
        return it == _values.end() ? 0.0 : it->second;
    }

    bool has(const std::string &name) const { return _values.count(name); }

    const std::map<std::string, double> &values() const { return _values; }

    /** Merge (sum) another set into this one. */
    void
    merge(const StatSet &other)
    {
        for (const auto &[k, v] : other.values())
            add(k, v);
    }

  private:
    std::map<std::string, double> _values;
};

} // namespace sim

#endif // COHESION_SIM_STATS_HH
