#include "sim/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace sim {

void
writeJsonString(std::ostream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\b':
            os << "\\b";
            break;
          case '\f':
            os << "\\f";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\r':
            os << "\\r";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeJsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << 0;
        return;
    }
    // Integral values in the exactly-representable range print as
    // integers so counters stay exact and machine-friendly.
    constexpr double exact = 9007199254740992.0; // 2^53
    if (v == std::floor(v) && std::fabs(v) < exact) {
        os << static_cast<long long>(v);
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

void
writeJson(std::ostream &os, const JsonValue &v)
{
    switch (v.kind) {
      case JsonValue::Kind::Null:
        os << "null";
        break;
      case JsonValue::Kind::Bool:
        os << (v.boolean ? "true" : "false");
        break;
      case JsonValue::Kind::Number:
        writeJsonNumber(os, v.number);
        break;
      case JsonValue::Kind::String:
        writeJsonString(os, v.str);
        break;
      case JsonValue::Kind::Array:
        os << '[';
        for (std::size_t i = 0; i < v.arr.size(); ++i) {
            if (i)
                os << ',';
            writeJson(os, v.arr[i]);
        }
        os << ']';
        break;
      case JsonValue::Kind::Object:
        os << '{';
        for (std::size_t i = 0; i < v.obj.size(); ++i) {
            if (i)
                os << ',';
            writeJsonString(os, v.obj[i].first);
            os << ':';
            writeJson(os, v.obj[i].second);
        }
        os << '}';
        break;
    }
}

std::string
JsonValue::dump() const
{
    std::ostringstream os;
    writeJson(os, *this);
    return os.str();
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : obj) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

namespace {

class Parser
{
  public:
    Parser(std::string_view text, std::string *err)
        : _text(text), _err(err)
    {}

    bool
    parse(JsonValue *out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        if (_pos != _text.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &why)
    {
        if (_err)
            *_err = why + " (at offset " + std::to_string(_pos) + ")";
        return false;
    }

    void
    skipWs()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r')) {
            ++_pos;
        }
    }

    bool
    literal(std::string_view word)
    {
        if (_text.substr(_pos, word.size()) != word)
            return false;
        _pos += word.size();
        return true;
    }

    bool
    value(JsonValue *out)
    {
        if (_pos >= _text.size())
            return fail("unexpected end of input");
        char c = _text[_pos];
        switch (c) {
          case '{':
            return object(out);
          case '[':
            return array(out);
          case '"':
            out->kind = JsonValue::Kind::String;
            return string(&out->str);
          case 't':
            if (!literal("true"))
                return fail("bad literal");
            out->kind = JsonValue::Kind::Bool;
            out->boolean = true;
            return true;
          case 'f':
            if (!literal("false"))
                return fail("bad literal");
            out->kind = JsonValue::Kind::Bool;
            out->boolean = false;
            return true;
          case 'n':
            if (!literal("null"))
                return fail("bad literal");
            out->kind = JsonValue::Kind::Null;
            return true;
          default:
            return number(out);
        }
    }

    bool
    object(JsonValue *out)
    {
        out->kind = JsonValue::Kind::Object;
        ++_pos; // '{'
        skipWs();
        if (_pos < _text.size() && _text[_pos] == '}') {
            ++_pos;
            return true;
        }
        while (true) {
            skipWs();
            if (_pos >= _text.size() || _text[_pos] != '"')
                return fail("expected object key");
            std::string key;
            if (!string(&key))
                return false;
            skipWs();
            if (_pos >= _text.size() || _text[_pos] != ':')
                return fail("expected ':'");
            ++_pos;
            skipWs();
            JsonValue v;
            if (!value(&v))
                return false;
            out->obj.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (_pos >= _text.size())
                return fail("unterminated object");
            if (_text[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_text[_pos] == '}') {
                ++_pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(JsonValue *out)
    {
        out->kind = JsonValue::Kind::Array;
        ++_pos; // '['
        skipWs();
        if (_pos < _text.size() && _text[_pos] == ']') {
            ++_pos;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue v;
            if (!value(&v))
                return false;
            out->arr.push_back(std::move(v));
            skipWs();
            if (_pos >= _text.size())
                return fail("unterminated array");
            if (_text[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_text[_pos] == ']') {
                ++_pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    string(std::string *out)
    {
        ++_pos; // opening quote
        while (_pos < _text.size()) {
            char c = _text[_pos];
            if (c == '"') {
                ++_pos;
                return true;
            }
            if (c == '\\') {
                if (_pos + 1 >= _text.size())
                    return fail("dangling escape");
                char e = _text[++_pos];
                switch (e) {
                  case '"':
                  case '\\':
                  case '/':
                    out->push_back(e);
                    break;
                  case 'b':
                    out->push_back('\b');
                    break;
                  case 'f':
                    out->push_back('\f');
                    break;
                  case 'n':
                    out->push_back('\n');
                    break;
                  case 'r':
                    out->push_back('\r');
                    break;
                  case 't':
                    out->push_back('\t');
                    break;
                  case 'u': {
                      if (_pos + 4 >= _text.size())
                          return fail("truncated \\u escape");
                      unsigned cp = 0;
                      for (int i = 0; i < 4; ++i) {
                          char h = _text[++_pos];
                          cp <<= 4;
                          if (h >= '0' && h <= '9') {
                              cp |= h - '0';
                          } else if (h >= 'a' && h <= 'f') {
                              cp |= h - 'a' + 10;
                          } else if (h >= 'A' && h <= 'F') {
                              cp |= h - 'A' + 10;
                          } else {
                              return fail("bad \\u escape");
                          }
                      }
                      // Encode as UTF-8 (surrogates land as-is; the
                      // exporters never emit them).
                      if (cp < 0x80) {
                          out->push_back(static_cast<char>(cp));
                      } else if (cp < 0x800) {
                          out->push_back(
                              static_cast<char>(0xc0 | (cp >> 6)));
                          out->push_back(
                              static_cast<char>(0x80 | (cp & 0x3f)));
                      } else {
                          out->push_back(
                              static_cast<char>(0xe0 | (cp >> 12)));
                          out->push_back(static_cast<char>(
                              0x80 | ((cp >> 6) & 0x3f)));
                          out->push_back(
                              static_cast<char>(0x80 | (cp & 0x3f)));
                      }
                      break;
                  }
                  default:
                    return fail("unknown escape");
                }
                ++_pos;
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("control character in string");
            out->push_back(c);
            ++_pos;
        }
        return fail("unterminated string");
    }

    bool
    number(JsonValue *out)
    {
        std::size_t start = _pos;
        if (_pos < _text.size() && _text[_pos] == '-')
            ++_pos;
        bool digits = false;
        while (_pos < _text.size() &&
               std::isdigit(static_cast<unsigned char>(_text[_pos]))) {
            ++_pos;
            digits = true;
        }
        if (_pos < _text.size() && _text[_pos] == '.') {
            ++_pos;
            while (_pos < _text.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(_text[_pos]))) {
                ++_pos;
                digits = true;
            }
        }
        if (_pos < _text.size() &&
            (_text[_pos] == 'e' || _text[_pos] == 'E')) {
            ++_pos;
            if (_pos < _text.size() &&
                (_text[_pos] == '+' || _text[_pos] == '-')) {
                ++_pos;
            }
            while (_pos < _text.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(_text[_pos]))) {
                ++_pos;
            }
        }
        if (!digits)
            return fail("expected a value");
        std::string tok(_text.substr(start, _pos - start));
        out->kind = JsonValue::Kind::Number;
        out->number = std::strtod(tok.c_str(), nullptr);
        return true;
    }

    std::string_view _text;
    std::string *_err;
    std::size_t _pos = 0;
};

} // namespace

bool
parseJson(std::string_view text, JsonValue *out, std::string *err)
{
    Parser p(text, err);
    return p.parse(out);
}

} // namespace sim
