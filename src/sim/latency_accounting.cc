#include "sim/latency_accounting.hh"

#include "sim/stat_registry.hh"

namespace sim {

namespace lat {

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::Issue:
        return "issue";
      case Stage::Mshr:
        return "mshr";
      case Stage::ReqFabric:
        return "req_fabric";
      case Stage::Retry:
        return "retry";
      case Stage::BankLock:
        return "bank_lock";
      case Stage::Dir:
        return "dir";
      case Stage::Probe:
        return "probe";
      case Stage::Dram:
        return "dram";
      case Stage::Service:
        return "service";
      case Stage::RespFabric:
        return "resp_fabric";
    }
    return "?";
}

const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::Hwcc:
        return "hwcc";
      case Mode::Swcc:
        return "swcc";
      case Mode::Transition:
        return "transition";
    }
    return "?";
}

} // namespace lat

LatencyTotals
LatencyAccountant::fold() const
{
    LatencyTotals t;
    t.cls.assign(_numClasses, LatencyTotals::Bucket{});
    auto sum = [](LatencyTotals::Bucket &into,
                  const LatencyTotals::Bucket &from) {
        into.count += from.count;
        into.e2e += from.e2e;
        for (unsigned s = 0; s < lat::numStages; ++s)
            into.stage[s] += from.stage[s];
    };
    for (const Lane &l : _lanes) {
        for (unsigned m = 0; m < lat::numModes; ++m)
            sum(t.mode[m], l.mode[m]);
        for (unsigned c = 0; c < l.cls.size() && c < t.cls.size(); ++c)
            sum(t.cls[c], l.cls[c]);
        t.violations += l.violations;
    }
    return t;
}

void
registerLatencyTotals(StatRegistry &reg, const std::string &prefix,
                      const LatencyTotals &t,
                      const char *(*class_name)(unsigned))
{
    auto bucket = [&reg](const std::string &base,
                         const LatencyTotals::Bucket &b) {
        reg.addScalar(base + ".count",
                      static_cast<double>(b.count));
        reg.addScalar(base + ".e2e", static_cast<double>(b.e2e));
        for (unsigned s = 0; s < lat::numStages; ++s) {
            reg.addScalar(
                base + "." +
                    lat::stageName(static_cast<lat::Stage>(s)),
                static_cast<double>(b.stage[s]));
        }
    };
    for (unsigned m = 0; m < lat::numModes; ++m) {
        bucket(prefix + ".mode." +
                   lat::modeName(static_cast<lat::Mode>(m)),
               t.mode[m]);
    }
    for (unsigned c = 0; c < t.cls.size(); ++c)
        bucket(prefix + ".class." + class_name(c), t.cls[c]);
    reg.addScalar(prefix + ".violations",
                  static_cast<double>(t.violations));
}

void
LatencyAccountant::registerStats(StatRegistry &reg,
                                 const std::string &prefix,
                                 const char *(*class_name)(unsigned)) const
{
    registerLatencyTotals(reg, prefix, fold(), class_name);
}

} // namespace sim
