/**
 * @file
 * Minimal dependency-free JSON support: string escaping and number
 * formatting for the stat-registry / trace exporters, and a small
 * recursive-descent parser used by the tests to validate that exported
 * documents are well-formed (and by any embedder that wants to consume
 * them without an external library).
 */

#ifndef COHESION_SIM_JSON_HH
#define COHESION_SIM_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sim {

/** Write @p s as a JSON string literal (quotes included, escaped). */
void writeJsonString(std::ostream &os, std::string_view s);

/**
 * Write @p v as a JSON number: integral values print without a
 * fractional part; non-finite values (not representable in JSON)
 * print as 0.
 */
void writeJsonNumber(std::ostream &os, double v);

/** A parsed JSON document node. */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> arr;                          ///< Kind::Array
    std::vector<std::pair<std::string, JsonValue>> obj;  ///< Kind::Object

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr if absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** Serialize this node back to compact JSON text (round-trips
     *  through parseJson; used to hand subtrees to sub-parsers). */
    std::string dump() const;
};

/** Write @p v as compact JSON. */
void writeJson(std::ostream &os, const JsonValue &v);

/**
 * Parse a complete JSON document. Returns false (and sets @p err, if
 * given) on malformed input or trailing garbage.
 */
bool parseJson(std::string_view text, JsonValue *out,
               std::string *err = nullptr);

} // namespace sim

#endif // COHESION_SIM_JSON_HH
