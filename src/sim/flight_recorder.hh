/**
 * @file
 * Always-on flight recorder: a fixed-size ring of compact binary
 * protocol events (message send/recv/drop, directory transitions,
 * SWcc flush/invalidate/writeback, table reads, Fig. 7 transition
 * steps). Each record carries the tick, the emitting component, the
 * line base address, and a causal id (the cluster's msgId or the
 * bank's transaction sequence number), so the lifetime of one line
 * reconstructs as a chain without replaying the run.
 *
 * The recorder follows the PR 3 event-pool discipline: storage is
 * allocated once at enable() and never grows; record() is a masked
 * store into the ring; the disabled path is a single byte test at the
 * emit site (Chip::rec). Decoding protocol enums into text lives in
 * the arch layer (arch/flight_decode.hh) so this header stays free of
 * protocol knowledge.
 */

#ifndef COHESION_SIM_FLIGHT_RECORDER_HH
#define COHESION_SIM_FLIGHT_RECORDER_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/event_queue.hh"

namespace sim {

class FlightRecorder
{
  public:
    /** Event kinds. Kept generic here; protocol-specific payloads ride
     *  in the a/b arguments and are decoded by arch/flight_decode. */
    enum class Ev : std::uint8_t {
        None = 0,
        MsgSend,    ///< cluster -> bank request left the L2. a=ReqType,
                    ///< b=MsgClass, txn=msgId.
        MsgRecv,    ///< request arrived at the home bank. a=ReqType,
                    ///< b=cluster, txn=msgId.
        MsgDrop,    ///< fabric dropped one copy. a=ReqType, b=drop #.
        MsgRetransmit, ///< delivery after >=1 drops. a=ReqType, b=drops.
        RespSend,   ///< bank -> cluster response sent. a=ReqType,
                    ///< b=flags (respIncoherent|respGrant), txn=msgId.
        RespRecv,   ///< response arrived at the cluster. txn=msgId.
        ProbeSend,  ///< bank sent a probe. a=ProbeType, b=target cluster.
        ProbeRecv,  ///< probe applied at the cluster. a=ProbeType,
                    ///< b=result flags (probeFound|probeDirty).
        ProbeAck,   ///< probe response arrived back at the bank.
        DirInsert,  ///< directory entry allocated. a=CohState, b=cluster.
        DirState,   ///< directory state change. a=new CohState, b=sharers.
        DirErase,   ///< directory entry dropped.
        SwccFlush,  ///< software flush wrote back dirty words. a=mask.
        SwccInv,    ///< software invalidate dropped the L2 copy.
        Writeback,  ///< dirty data left an L2 (evict/release). a=mask.
        WbAck,      ///< writeback acknowledged at the cluster.
        Fill,       ///< response data installed in the L2. a=flags.
        Evict,      ///< L2 victimized the line. a=flags (fillIncoherent
                    ///< if SWcc, evictDirty if it carried data).
        TableRead,  ///< fine-table bit consulted. a=bit, b=source
                    ///< (tableFromCache / tableFromMem).
        TableUpdate,///< fine-table bit committed. a=new bit.
        TransBegin, ///< Fig. 7 transition started. a=1 for ->SWcc.
        TransStep,  ///< one protocol step; a=Step below.
        TransEnd,   ///< transition committed for this line.
        TxnBegin,   ///< bank transaction opened. txn=bank seq, b=msgId.
        TxnEnd,     ///< bank transaction retired. txn=bank seq.
        RetransmitExhausted, ///< drop-retransmit budget spent; message
                             ///< force-delivered. a=ReqType, b=drops.
        numEvents,
    };

    /** TransStep sub-codes (Record::a). */
    enum class Step : std::uint8_t {
        Recall = 0,     ///< Fig. 7a: recall sharers / owner, erase dir.
        Broadcast,      ///< Fig. 7b: CleanQuery broadcast issued.
        CleanSharer,    ///< 1b/2b: clean copy joins the new dir entry.
        MakeOwner,      ///< 3b: single dirty copy becomes M in place.
        Invalidate,     ///< 4b/5b: reader copy invalidated.
        WritebackInv,   ///< 4b/5b: dirty copy written back + invalidated.
        Merge,          ///< dirty words merged into the home line.
        Conflict,       ///< overlapping dirty words from two writers.
        Commit,         ///< table bit written, transition visible.
    };

    // Flag bits for Record::a / Record::b payloads.
    static constexpr std::uint8_t respIncoherent = 1; ///< SWcc fill.
    static constexpr std::uint8_t respGrant = 2;      ///< exclusive grant.
    static constexpr std::uint8_t probeFound = 1;
    static constexpr std::uint8_t probeDirty = 2;
    static constexpr std::uint8_t evictDirty = 2;
    static constexpr std::uint32_t tableFromMem = 0;
    static constexpr std::uint32_t tableFromCache = 1;

    /** One ring slot. 24 bytes, trivially copyable; the dump format is
     *  these records memcpy'd verbatim behind a small header. */
    struct Record
    {
        std::uint64_t tick = 0;
        std::uint32_t line = 0; ///< line base address
        std::uint32_t txn = 0;  ///< causal id (msgId or bank txn seq)
        std::uint16_t comp = 0; ///< component path, see compCluster()
        std::uint8_t kind = 0;  ///< Ev
        std::uint8_t a = 0;     ///< small payload (enum / mask / flags)
        std::uint32_t b = 0;    ///< wide payload (cluster, msgId, word)
    };
    static_assert(sizeof(Record) == 24, "keep ring slots compact");

    // --- Component path encoding (Record::comp) ----------------------

    static constexpr std::uint16_t compChip = 0;
    static std::uint16_t compCluster(unsigned i)
    {
        return static_cast<std::uint16_t>(0x1000 | (i & 0xFFF));
    }
    static std::uint16_t compBank(unsigned i)
    {
        return static_cast<std::uint16_t>(0x2000 | (i & 0xFFF));
    }
    static unsigned compKind(std::uint16_t c) { return c >> 12; }
    static unsigned compIndex(std::uint16_t c) { return c & 0xFFF; }
    static std::string compName(std::uint16_t c);

    // --- Recording ----------------------------------------------------

    /**
     * Allocate a ring of @p capacity records (rounded up to a power of
     * two, minimum 16). The one and only allocation; re-enabling with a
     * different capacity restarts the ring.
     */
    void enable(std::uint32_t capacity);
    void disable();

    bool enabled() const { return _mask != 0; }
    std::uint32_t capacity() const { return _mask ? _mask + 1 : 0; }

    /** Total records ever written (wrapped ones included). */
    std::uint64_t recorded() const { return _next; }

    /** Records currently held in the ring. */
    std::uint32_t
    size() const
    {
        std::uint64_t cap = capacity();
        return static_cast<std::uint32_t>(_next < cap ? _next : cap);
    }

    void
    record(Tick tick, Ev kind, std::uint16_t comp, std::uint32_t line,
           std::uint32_t txn, std::uint8_t a, std::uint32_t b)
    {
        Record &r = _ring[static_cast<std::size_t>(_next) & _mask];
        ++_next;
        r.tick = tick;
        r.line = line;
        r.txn = txn;
        r.comp = comp;
        r.kind = static_cast<std::uint8_t>(kind);
        r.a = a;
        r.b = b;
    }

    /** Visit retained records oldest-first. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        std::uint64_t cap = capacity();
        std::uint64_t first = _next < cap ? 0 : _next - cap;
        for (std::uint64_t i = first; i < _next; ++i)
            f(_ring[static_cast<std::size_t>(i) & _mask]);
    }

    // --- Binary dump format -------------------------------------------

    /**
     * Serialize the retained records oldest-first: a 24-byte header
     * (magic "CFR1", version, record size, total recorded, stored
     * count) followed by raw Record structs. Deterministic for a
     * deterministic run, so dumps compare byte-for-byte across
     * --jobs values.
     */
    std::string serialize() const;

    /** Parse a serialize()d blob. Returns false and sets @p err on a
     *  bad magic/version/size; @p total_recorded may be null. */
    static bool deserialize(std::string_view bytes,
                            std::vector<Record> *out, std::string *err,
                            std::uint64_t *total_recorded = nullptr);

    /** Stable lowercase name for an event kind ("msg.send", ...). */
    static const char *evName(Ev e);
    static const char *stepName(Step s);

    /**
     * Checkpoint hooks: the ring contents and write cursor resume so a
     * restored machine's post-mortem history is seamless across the
     * snapshot boundary. Restore re-allocates the ring at the
     * checkpointed capacity (overriding any enable() done before).
     */
    void checkpointState(Serializer &ser) const;
    void restoreState(Deserializer &des);

  private:
    std::vector<Record> _ring;
    std::uint64_t _next = 0;
    std::uint32_t _mask = 0;
};

} // namespace sim

#endif // COHESION_SIM_FLIGHT_RECORDER_HH
