/**
 * @file
 * C++20 coroutine task type used as the execution model for simulated
 * cores. A kernel runs as a tree of CoTask coroutines; awaiting a
 * memory operation either completes synchronously (L1/L2 hit: zero
 * simulation events) or suspends the coroutine until the memory system
 * resumes it from an event callback.
 */

#ifndef COHESION_SIM_COTASK_HH
#define COHESION_SIM_COTASK_HH

#include <coroutine>
#include <exception>
#include <utility>

#include "sim/logging.hh"

namespace sim {

/**
 * An eagerly-ownable, lazily-started coroutine with void result.
 * Supports nesting via `co_await child()` with symmetric transfer back
 * to the parent at completion. Top-level tasks are kicked off with
 * start() and report completion through done().
 */
class CoTask
{
  public:
    struct promise_type
    {
        std::coroutine_handle<> continuation;
        bool finished = false;
        std::exception_ptr error;

        CoTask
        get_return_object()
        {
            return CoTask(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<promise_type> h) noexcept
            {
                auto &p = h.promise();
                p.finished = true;
                if (p.continuation)
                    return p.continuation;
                return std::noop_coroutine();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception() { error = std::current_exception(); }
    };

    CoTask() = default;

    explicit CoTask(std::coroutine_handle<promise_type> h) : _handle(h) {}

    CoTask(CoTask &&other) noexcept
        : _handle(std::exchange(other._handle, nullptr))
    {}

    CoTask &
    operator=(CoTask &&other) noexcept
    {
        if (this != &other) {
            destroy();
            _handle = std::exchange(other._handle, nullptr);
        }
        return *this;
    }

    CoTask(const CoTask &) = delete;
    CoTask &operator=(const CoTask &) = delete;

    ~CoTask() { destroy(); }

    /** True if a coroutine is attached. */
    bool valid() const { return static_cast<bool>(_handle); }

    /** True once the coroutine has run to completion. */
    bool
    done() const
    {
        return _handle && _handle.promise().finished;
    }

    /** Start (or resume) a top-level task. Rethrows task exceptions. */
    void
    start()
    {
        panic_if(!_handle, "starting an empty CoTask");
        _handle.resume();
        rethrow();
    }

    /** Rethrow an exception captured inside the coroutine, if any. */
    void
    rethrow() const
    {
        if (_handle && _handle.promise().error)
            std::rethrow_exception(_handle.promise().error);
    }

    /** Awaiter for nesting: co_await child starts it, resumes us after. */
    struct Awaiter
    {
        std::coroutine_handle<promise_type> child;

        bool await_ready() const noexcept { return !child || child.done(); }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> parent) noexcept
        {
            child.promise().continuation = parent;
            return child;
        }

        void
        await_resume() const
        {
            if (child && child.promise().error)
                std::rethrow_exception(child.promise().error);
        }
    };

    Awaiter operator co_await() const noexcept { return Awaiter{_handle}; }

  private:
    void
    destroy()
    {
        if (_handle) {
            _handle.destroy();
            _handle = nullptr;
        }
    }

    std::coroutine_handle<promise_type> _handle;
};

/**
 * One-shot resumption slot: the memory system parks a coroutine handle
 * here and an event callback later resumes it. Used by awaitables whose
 * completion is event-driven.
 */
class Resumer
{
  public:
    void
    arm(std::coroutine_handle<> h)
    {
        panic_if(_handle, "Resumer armed twice");
        _handle = h;
    }

    bool armed() const { return static_cast<bool>(_handle); }

    /** Resume the parked coroutine (clears the slot first). */
    void
    fire()
    {
        panic_if(!_handle, "Resumer fired while empty");
        auto h = std::exchange(_handle, nullptr);
        h.resume();
    }

  private:
    std::coroutine_handle<> _handle;
};

} // namespace sim

#endif // COHESION_SIM_COTASK_HH
