#include "sim/serialize.hh"

#include <fstream>
#include <sstream>

namespace sim {

namespace {

// 8-byte container preamble: the format name, NUL-padded. The version
// is a separate field so "wrong version" and "not a snapshot" produce
// distinct diagnostics.
constexpr char magic[8] = {'C', 'C', 'K', 'P', 'T', '1', 0, 0};
constexpr std::uint32_t formatVersion = 1;

void
putU64(std::string &out, std::uint64_t v)
{
    char b[8];
    for (unsigned i = 0; i < 8; ++i)
        b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    out.append(b, 8);
}

std::uint64_t
getU64(std::string_view in, std::size_t at)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(in[at + i]))
             << (8 * i);
    }
    return v;
}

} // namespace

std::string
frameSnapshot(const std::string &payload)
{
    std::string out;
    out.reserve(sizeof(magic) + 24 + payload.size());
    out.append(magic, sizeof(magic));
    putU64(out, formatVersion);
    putU64(out, payload.size());
    putU64(out, snapshotChecksum(payload));
    out.append(payload);
    return out;
}

std::string
unframeSnapshot(std::string_view file_bytes)
{
    constexpr std::size_t headerBytes = sizeof(magic) + 24;
    if (file_bytes.size() < headerBytes)
        throw SnapshotError("snapshot truncated: incomplete header");
    if (std::memcmp(file_bytes.data(), magic, sizeof(magic)) != 0)
        throw SnapshotError("not a Cohesion snapshot (bad magic)");
    std::uint64_t version = getU64(file_bytes, sizeof(magic));
    if (version != formatVersion) {
        std::ostringstream os;
        os << "unsupported snapshot version " << version << " (expected "
           << formatVersion << ")";
        throw SnapshotError(os.str());
    }
    std::uint64_t payload_len = getU64(file_bytes, sizeof(magic) + 8);
    std::uint64_t checksum = getU64(file_bytes, sizeof(magic) + 16);
    if (file_bytes.size() - headerBytes != payload_len) {
        std::ostringstream os;
        os << "snapshot truncated: header promises " << payload_len
           << " payload bytes, file holds "
           << (file_bytes.size() - headerBytes);
        throw SnapshotError(os.str());
    }
    std::string_view payload = file_bytes.substr(headerBytes);
    if (snapshotChecksum(payload) != checksum)
        throw SnapshotError("snapshot corrupt (checksum mismatch)");
    return std::string(payload);
}

void
writeSnapshotFile(const std::string &path, const std::string &payload)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw SnapshotError("cannot write snapshot " + path);
    std::string framed = frameSnapshot(payload);
    out.write(framed.data(), static_cast<std::streamsize>(framed.size()));
    out.flush();
    if (!out)
        throw SnapshotError("short write on snapshot " + path);
}

std::string
readSnapshotFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SnapshotError("cannot open snapshot " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        throw SnapshotError("read error on snapshot " + path);
    return unframeSnapshot(buf.str());
}

} // namespace sim
