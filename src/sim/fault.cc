#include "sim/fault.hh"

#include "sim/json.hh"
#include "sim/logging.hh"

namespace sim {

namespace {

constexpr const char *siteNames[numFaultSites] = {
    "fabric.c2b.drop",  "fabric.c2b.dup",  "fabric.c2b.delay",
    "fabric.b2c.drop",  "fabric.b2c.dup",  "fabric.b2c.delay",
    "l2.data.flip",     "l2.meta.flip",    "l3.data.flip",
    "l3.meta.flip",     "table.stale",     "mem.data.flip",
};

} // namespace

const char *
faultSiteName(FaultSite s)
{
    unsigned i = static_cast<unsigned>(s);
    return i < numFaultSites ? siteNames[i] : "?";
}

bool
faultSiteFromName(std::string_view name, FaultSite *out)
{
    for (unsigned i = 0; i < numFaultSites; ++i) {
        if (name == siteNames[i]) {
            *out = static_cast<FaultSite>(i);
            return true;
        }
    }
    return false;
}

bool
FaultPlan::anyEnabled() const
{
    for (const FaultSiteConfig &c : sites) {
        if (c.rate > 0.0)
            return true;
    }
    return false;
}

FaultPlan
FaultPlan::parse(std::string_view json_text)
{
    JsonValue doc;
    std::string err;
    fatal_if(!parseJson(json_text, &doc, &err), "fault plan: ", err);
    fatal_if(!doc.isObject(), "fault plan: top level must be an object");

    FaultPlan plan;
    if (const JsonValue *v = doc.find("seed")) {
        fatal_if(!v->isNumber(), "fault plan: seed must be a number");
        plan.seed = static_cast<std::uint64_t>(v->number);
    }
    if (const JsonValue *v = doc.find("pump_period")) {
        fatal_if(!v->isNumber() || v->number < 1,
                 "fault plan: pump_period must be a positive number");
        plan.pumpPeriod = static_cast<Tick>(v->number);
    }
    const JsonValue *sites = doc.find("sites");
    if (!sites)
        return plan;
    fatal_if(!sites->isObject(), "fault plan: sites must be an object");
    for (const auto &[name, cfg] : sites->obj) {
        FaultSite s;
        fatal_if(!faultSiteFromName(name, &s),
                 "fault plan: unknown site \"", name, "\"");
        fatal_if(!cfg.isObject(), "fault plan: site \"", name,
                 "\" must be an object");
        FaultSiteConfig &sc = plan.site(s);
        if (const JsonValue *v = cfg.find("rate")) {
            fatal_if(!v->isNumber() || v->number < 0.0 || v->number > 1.0,
                     "fault plan: ", name, ".rate must be in [0, 1]");
            sc.rate = v->number;
        }
        if (const JsonValue *v = cfg.find("max")) {
            fatal_if(!v->isNumber() || v->number < 0,
                     "fault plan: ", name, ".max must be >= 0");
            sc.max = static_cast<std::uint64_t>(v->number);
        }
        if (const JsonValue *v = cfg.find("delay")) {
            fatal_if(!v->isNumber() || v->number < 0,
                     "fault plan: ", name, ".delay must be >= 0");
            sc.delay = static_cast<Tick>(v->number);
        }
    }
    return plan;
}

namespace {

/** Lane count for @p s: C2B fabric sites are laned by source cluster,
 *  B2C sites and TableStale by bank, flip sites share one lane (their
 *  opportunities happen at the single-threaded fault pump). */
unsigned
laneCountFor(FaultSite s, unsigned clusters, unsigned banks)
{
    switch (s) {
      case FaultSite::FabricC2BDrop:
      case FaultSite::FabricC2BDup:
      case FaultSite::FabricC2BDelay:
        return clusters;
      case FaultSite::FabricB2CDrop:
      case FaultSite::FabricB2CDup:
      case FaultSite::FabricB2CDelay:
      case FaultSite::TableStale:
        return banks;
      default:
        return 1;
    }
}

} // namespace

void
FaultInjector::configure(const FaultPlan &plan, unsigned clusters,
                         unsigned banks)
{
    _plan = plan;
    _seed = plan.seed ? plan.seed : deriveSeed(12345, "fault");
    _enabled = plan.anyEnabled();
    if (clusters < 1)
        clusters = 1;
    if (banks < 1)
        banks = 1;
    for (unsigned i = 0; i < numFaultSites; ++i) {
        FaultSite s = static_cast<FaultSite>(i);
        unsigned n = laneCountFor(s, clusters, banks);
        _lanes[i].clear();
        _lanes[i].reserve(n);
        for (unsigned lane = 0; lane < n; ++lane) {
            Lane l;
            l.rng = Rng(deriveSeed(
                _seed, cat(faultSiteName(s), ".", lane)));
            _lanes[i].push_back(std::move(l));
        }
    }
    for (auto &v : _recovered)
        v.store(0, std::memory_order_relaxed);
    _pumpRng = Rng(deriveSeed(_seed, "pump"));
}

std::uint64_t
FaultInjector::totalInjected() const
{
    std::uint64_t n = 0;
    for (unsigned i = 0; i < numFaultSites; ++i)
        n += injected(static_cast<FaultSite>(i));
    return n;
}

std::uint64_t
FaultInjector::totalRecovered() const
{
    std::uint64_t n = 0;
    for (unsigned i = 0; i < numFaultSites; ++i)
        n += recovered(static_cast<FaultSite>(i));
    return n;
}

void
FaultInjector::registerStats(StatRegistry &reg,
                             const std::string &prefix) const
{
    reg.addScalar(prefix + ".seed", static_cast<double>(_seed));
    reg.addScalar(prefix + ".injected",
                  [this]() { return double(totalInjected()); });
    reg.addScalar(prefix + ".recovered",
                  [this]() { return double(totalRecovered()); });
    for (unsigned i = 0; i < numFaultSites; ++i) {
        FaultSite s = static_cast<FaultSite>(i);
        if (!(_plan.site(s).rate > 0.0) && injected(s) == 0)
            continue; // keep quiet sites out of the report
        std::string base = prefix + ".site." + faultSiteName(s);
        reg.addScalar(base + ".injected",
                      [this, s]() { return double(injected(s)); });
        reg.addScalar(base + ".recovered",
                      [this, s]() { return double(recovered(s)); });
    }
}

} // namespace sim
