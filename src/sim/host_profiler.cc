#include "sim/host_profiler.hh"

#include <memory>
#include <mutex>
#include <vector>

namespace sim {

std::atomic<bool> HostProfiler::_on{false};
std::atomic<unsigned> HostProfiler::_sampleShift{
    HostProfiler::defaultSampleShift};
thread_local HostProfiler::Phase HostProfiler::_tlPhase =
    HostProfiler::Phase::None;

thread_local HostProfiler::ThreadAcc *HostProfiler::_tlAcc = nullptr;

namespace {

struct AccRegistry
{
    std::mutex mu;
    std::vector<std::unique_ptr<HostProfiler::ThreadAcc>> accs;
};

AccRegistry &
registry()
{
    // Leaked intentionally: thread-exit order vs static destruction
    // order is unknowable, and the registry must outlive both.
    static AccRegistry *r = new AccRegistry;
    return *r;
}

} // namespace

HostProfiler::ThreadAcc &
HostProfiler::threadAcc()
{
    if (!_tlAcc) {
        auto acc = std::make_unique<ThreadAcc>();
        _tlAcc = acc.get();
        AccRegistry &r = registry();
        std::lock_guard<std::mutex> g(r.mu);
        r.accs.push_back(std::move(acc));
    }
    return *_tlAcc;
}

void
HostProfiler::enable(unsigned sample_shift)
{
    _sampleShift.store(sample_shift < 16 ? sample_shift : 15,
                       std::memory_order_relaxed);
    _on.store(true, std::memory_order_relaxed);
}

void
HostProfiler::disable()
{
    _on.store(false, std::memory_order_relaxed);
}

void
HostProfiler::reset()
{
    AccRegistry &r = registry();
    std::lock_guard<std::mutex> g(r.mu);
    for (auto &acc : r.accs) {
        acc->phases.fill(PhaseAcc{});
        acc->stride.fill(0);
    }
}

HostProfiler::Profile
HostProfiler::processSnapshot()
{
    Profile p;
    p.sampleShift = sampleShift();
    AccRegistry &r = registry();
    std::lock_guard<std::mutex> g(r.mu);
    for (const auto &acc : r.accs) {
        for (unsigned i = 0; i < numPhases; ++i) {
            p.phases[i].count += acc->phases[i].count;
            p.phases[i].timedCount += acc->phases[i].timedCount;
            p.phases[i].timedNs += acc->phases[i].timedNs;
        }
    }
    return p;
}

HostProfiler::Profile
HostProfiler::threadSnapshot()
{
    Profile p;
    p.sampleShift = sampleShift();
    if (!_tlAcc) {
        // Never profiled and owns no group: nothing to report, and
        // registering an accumulator just to scan for members that
        // cannot exist would be wasted work.
        return p;
    }
    const void *self = _tlAcc->group.load(std::memory_order_acquire);
    const void *key = self ? self : _tlAcc;
    AccRegistry &r = registry();
    std::lock_guard<std::mutex> g(r.mu);
    for (const auto &acc : r.accs) {
        const void *g_ = acc->group.load(std::memory_order_acquire);
        const void *accKey = g_ ? g_ : acc.get();
        if (accKey != key)
            continue;
        for (unsigned i = 0; i < numPhases; ++i) {
            p.phases[i].count += acc->phases[i].count;
            p.phases[i].timedCount += acc->phases[i].timedCount;
            p.phases[i].timedNs += acc->phases[i].timedNs;
        }
    }
    return p;
}

const void *
HostProfiler::groupKey()
{
    ThreadAcc &a = threadAcc();
    const void *g = a.group.load(std::memory_order_acquire);
    return g ? g : &a;
}

void
HostProfiler::joinGroup(const void *key)
{
    threadAcc().group.store(key, std::memory_order_release);
}

std::uint64_t
HostProfiler::Profile::estNs(Phase p) const
{
    const PhaseAcc &a = (*this)[p];
    if (!phaseSampled(p) || a.count == a.timedCount)
        return a.timedNs;
    if (!a.timedCount)
        return 0;
    return static_cast<std::uint64_t>(
        static_cast<double>(a.timedNs) * static_cast<double>(a.count) /
        static_cast<double>(a.timedCount));
}

std::uint64_t
HostProfiler::Profile::attributedNs() const
{
    std::uint64_t ns = 0;
    for (unsigned i = 1; i < numPhases; ++i) {
        Phase p = static_cast<Phase>(i);
        if (!phaseSampled(p))
            ns += estNs(p);
    }
    return ns;
}

void
HostProfiler::Profile::merge(const Profile &other)
{
    for (unsigned i = 0; i < numPhases; ++i) {
        phases[i].count += other.phases[i].count;
        phases[i].timedCount += other.phases[i].timedCount;
        phases[i].timedNs += other.phases[i].timedNs;
    }
}

HostProfiler::Profile
HostProfiler::Profile::since(const Profile &earlier) const
{
    auto sub = [](std::uint64_t a, std::uint64_t b) {
        return a > b ? a - b : 0;
    };
    Profile d;
    d.sampleShift = sampleShift;
    for (unsigned i = 0; i < numPhases; ++i) {
        d.phases[i].count = sub(phases[i].count, earlier.phases[i].count);
        d.phases[i].timedCount =
            sub(phases[i].timedCount, earlier.phases[i].timedCount);
        d.phases[i].timedNs =
            sub(phases[i].timedNs, earlier.phases[i].timedNs);
    }
    return d;
}

const char *
HostProfiler::phaseName(Phase p)
{
    switch (p) {
      case Phase::None:
        return "none";
      case Phase::Setup:
        return "setup";
      case Phase::EqDispatch:
        return "eq.dispatch";
      case Phase::Audit:
        return "audit";
      case Phase::FaultPump:
        return "fault.pump";
      case Phase::Sampler:
        return "sampler";
      case Phase::Verify:
        return "verify";
      case Phase::StatsExport:
        return "export.stats";
      case Phase::TraceExport:
        return "export.trace";
      case Phase::ClusterCore:
        return "cluster.core";
      case Phase::ClusterMsg:
        return "cluster.msg";
      case Phase::ClusterSwcc:
        return "cluster.swcc";
      case Phase::BankMsg:
        return "bank.msg";
      case Phase::Directory:
        return "bank.directory";
      case Phase::RegionTable:
        return "cohesion.table";
      case Phase::numPhases:
        break;
    }
    return "?";
}

} // namespace sim
