/**
 * @file
 * Category-based debug tracing in the gem5 DPRINTF idiom. Categories
 * are enabled at runtime (e.g. from cohesion-sim --trace
 * protocol,transition); when a category is off the trace statement
 * costs one branch. Each record is prefixed with the simulated tick
 * and the emitting component, giving a readable interleaved protocol
 * transcript:
 *
 *     TRACE(tracer, Category::Protocol, "bank", id, ": RdReq 0x", ...)
 */

#ifndef COHESION_SIM_TRACE_HH
#define COHESION_SIM_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace sim {

/** Trace categories (bitmask). */
enum class Category : std::uint32_t {
    None = 0,
    Protocol = 1u << 0,   ///< Directory/MSI transactions at the banks.
    Cache = 1u << 1,      ///< L2 fills, evictions, upgrades.
    Transition = 1u << 2, ///< HWcc<->SWcc domain transitions.
    Net = 1u << 3,        ///< Message sends/arrivals.
    Dram = 1u << 4,       ///< Memory accesses.
    Runtime = 1u << 5,    ///< Barriers, task queue, heaps.
    Watchdog = 1u << 6,   ///< Deadlock watchdog windows / dumps.
    Fault = 1u << 7,      ///< Fault injections and recoveries.
    All = ~0u
};

constexpr Category
operator|(Category a, Category b)
{
    return static_cast<Category>(static_cast<std::uint32_t>(a) |
                                 static_cast<std::uint32_t>(b));
}

constexpr bool
any(Category a, Category b)
{
    return (static_cast<std::uint32_t>(a) &
            static_cast<std::uint32_t>(b)) != 0;
}

/** Parse "protocol,cache,..." / "all" into a category mask. */
Category parseCategories(const std::string &spec);

/** Printable name of a single category bit. */
const char *categoryName(Category c);

class TraceJsonWriter;

/**
 * Per-machine trace sink. Disabled (mask None) by default; writes to
 * stderr or a caller-provided stream. Kept deliberately simple: the
 * simulator is single-threaded.
 *
 * An optional TraceJsonWriter can be attached; structured
 * instrumentation (transaction spans, transition instants, counters)
 * is emitted through it by the components whenever it is present,
 * independent of the text mask, and every text record additionally
 * mirrors as an instant event so the Perfetto timeline carries the
 * full transcript.
 */
class Tracer
{
  public:
    explicit Tracer(const EventQueue &eq) : _eq(eq) {}

    void setMask(Category mask) { _mask = mask; }
    Category mask() const { return _mask; }
    bool enabled(Category c) const { return any(_mask, c); }

    /** Redirect output (default stderr); not owned. */
    void setStream(std::ostream *os) { _os = os; }

    /** Attach/detach a structured JSON trace sink; not owned. */
    void setJson(TraceJsonWriter *w) { _json = w; }
    TraceJsonWriter *json() const { return _json; }

    /** Number of records emitted (tests assert on this). */
    std::uint64_t records() const { return _records; }

    template <typename... Args>
    void
    print(Category c, Args &&...args)
    {
        if (!enabled(c))
            return;
        emit(c, cat(std::forward<Args>(args)...));
    }

  private:
    void emit(Category c, const std::string &msg);

    const EventQueue &_eq;
    Category _mask = Category::None;
    std::ostream *_os = nullptr;
    TraceJsonWriter *_json = nullptr;
    std::uint64_t _records = 0;
};

} // namespace sim

/** Trace macro: zero-ish cost when the category is disabled. */
#define TRACE(tracer, category, ...)                  \
    do {                                              \
        if ((tracer).enabled(category))               \
            (tracer).print(category, __VA_ARGS__);    \
    } while (0)

#endif // COHESION_SIM_TRACE_HH
