#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <stdexcept>

namespace sim {

namespace {

std::atomic<bool> verboseFlag{false};

/** Innermost capture installed on this thread; null => stderr. */
thread_local LogCapture *tlsCapture = nullptr;

/** Serializes uncaptured writes so concurrent jobs that run without a
 *  capture still emit whole lines. */
std::mutex &
stderrMutex()
{
    static std::mutex m;
    return m;
}

void
emitLine(const std::string &line)
{
    if (LogCapture *cap = tlsCapture) {
        cap->append(line); // private per-thread buffer: no locking
        return;
    }
    std::lock_guard<std::mutex> g(stderrMutex());
    std::fputs(line.c_str(), stderr);
    std::fflush(stderr);
}

} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return verboseFlag.load(std::memory_order_relaxed);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    emitLine(cat("panic: ", msg, " (", file, ":", line, ")\n"));
    // Throw instead of abort() so that tests can assert on panics.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    emitLine(cat("fatal: ", msg, " (", file, ":", line, ")\n"));
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    emitLine("warn: " + msg + "\n");
}

void
informImpl(const std::string &msg)
{
    if (verbose())
        emitLine("info: " + msg + "\n");
}

LogCapture::LogCapture() : _prev(tlsCapture)
{
    tlsCapture = this;
}

LogCapture::~LogCapture()
{
    tlsCapture = _prev;
}

LogCapture *
LogCapture::current()
{
    return tlsCapture;
}

LogSinkAdoption::LogSinkAdoption(LogCapture *sink)
    : _prev(tlsCapture), _installed(sink != nullptr)
{
    if (_installed)
        tlsCapture = sink;
}

LogSinkAdoption::~LogSinkAdoption()
{
    if (_installed)
        tlsCapture = _prev;
}

} // namespace sim
