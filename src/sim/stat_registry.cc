#include "sim/stat_registry.hh"

#include <ostream>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace sim {

void
StatRegistry::insert(const std::string &path, Entry e)
{
    panic_if(path.empty(), "registering a stat with an empty path");
    auto [it, ok] = _entries.emplace(path, std::move(e));
    panic_if(!ok, "duplicate stat registration: ", path);
}

void
StatRegistry::addScalar(const std::string &path, double value)
{
    insert(path, value);
}

void
StatRegistry::addScalar(const std::string &path, ScalarFn fn)
{
    insert(path, std::move(fn));
}

void
StatRegistry::addCounter(const std::string &path, const Counter &c)
{
    insert(path, &c);
}

void
StatRegistry::addDistribution(const std::string &path,
                              const Distribution &d)
{
    insert(path, &d);
}

void
StatRegistry::addHistogram(const std::string &path, const Histogram &h)
{
    insert(path, &h);
}

double
StatRegistry::scalarValue(const std::string &path) const
{
    auto it = _entries.find(path);
    if (it == _entries.end())
        return 0.0;
    const Entry &e = it->second;
    if (const double *v = std::get_if<double>(&e))
        return *v;
    if (const ScalarFn *fn = std::get_if<ScalarFn>(&e))
        return (*fn)();
    if (const Counter *const *c = std::get_if<const Counter *>(&e))
        return static_cast<double>((*c)->value());
    if (const Distribution *const *d =
            std::get_if<const Distribution *>(&e))
        return static_cast<double>((*d)->count());
    if (const Histogram *const *h = std::get_if<const Histogram *>(&e))
        return static_cast<double>((*h)->count());
    return 0.0;
}

StatSet
StatRegistry::flatten() const
{
    StatSet out;
    for (const auto &[path, e] : _entries) {
        if (const double *v = std::get_if<double>(&e)) {
            out.set(path, *v);
        } else if (const ScalarFn *fn = std::get_if<ScalarFn>(&e)) {
            out.set(path, (*fn)());
        } else if (const Counter *const *c =
                       std::get_if<const Counter *>(&e)) {
            out.set(path, static_cast<double>((*c)->value()));
        } else if (const Distribution *const *dp =
                       std::get_if<const Distribution *>(&e)) {
            const Distribution &d = **dp;
            out.set(path + ".count", static_cast<double>(d.count()));
            out.set(path + ".mean", d.mean());
            out.set(path + ".min", d.min());
            out.set(path + ".max", d.max());
            out.set(path + ".stddev", d.stddev());
            out.set(path + ".p50", d.p50());
            out.set(path + ".p95", d.p95());
            out.set(path + ".p99", d.p99());
        } else if (const Histogram *const *hp =
                       std::get_if<const Histogram *>(&e)) {
            const Histogram &h = **hp;
            out.set(path + ".count", static_cast<double>(h.count()));
            out.set(path + ".mean", h.mean());
            out.set(path + ".min", static_cast<double>(h.min()));
            out.set(path + ".max", static_cast<double>(h.max()));
            out.set(path + ".p50", h.p50());
            out.set(path + ".p95", h.p95());
            out.set(path + ".p99", h.p99());
        }
    }
    return out;
}

void
StatRegistry::dumpCsv(std::ostream &os) const
{
    os << "stat,value\n";
    StatSet flat = flatten();
    for (const auto &[name, value] : flat.values()) {
        os << name << ',';
        writeJsonNumber(os, value);
        os << '\n';
    }
}

namespace {

void
emitLeaf(std::ostream &os,
         const std::variant<double, StatRegistry::ScalarFn,
                            const Counter *, const Distribution *,
                            const Histogram *> &e)
{
    if (const double *v = std::get_if<double>(&e)) {
        writeJsonNumber(os, *v);
    } else if (const StatRegistry::ScalarFn *fn =
                   std::get_if<StatRegistry::ScalarFn>(&e)) {
        writeJsonNumber(os, (*fn)());
    } else if (const Counter *const *c = std::get_if<const Counter *>(&e)) {
        writeJsonNumber(os, static_cast<double>((*c)->value()));
    } else if (const Distribution *const *dp =
                   std::get_if<const Distribution *>(&e)) {
        const Distribution &d = **dp;
        os << "{\"type\":\"distribution\",\"count\":";
        writeJsonNumber(os, static_cast<double>(d.count()));
        os << ",\"sum\":";
        writeJsonNumber(os, d.sum());
        os << ",\"mean\":";
        writeJsonNumber(os, d.mean());
        os << ",\"min\":";
        writeJsonNumber(os, d.min());
        os << ",\"max\":";
        writeJsonNumber(os, d.max());
        os << ",\"stddev\":";
        writeJsonNumber(os, d.stddev());
        os << ",\"p50\":";
        writeJsonNumber(os, d.p50());
        os << ",\"p95\":";
        writeJsonNumber(os, d.p95());
        os << ",\"p99\":";
        writeJsonNumber(os, d.p99());
        os << '}';
    } else if (const Histogram *const *hp =
                   std::get_if<const Histogram *>(&e)) {
        const Histogram &h = **hp;
        os << "{\"type\":\"histogram\",\"count\":";
        writeJsonNumber(os, static_cast<double>(h.count()));
        os << ",\"sum\":";
        writeJsonNumber(os, static_cast<double>(h.sum()));
        os << ",\"mean\":";
        writeJsonNumber(os, h.mean());
        os << ",\"min\":";
        writeJsonNumber(os, static_cast<double>(h.min()));
        os << ",\"max\":";
        writeJsonNumber(os, static_cast<double>(h.max()));
        os << ",\"p50\":";
        writeJsonNumber(os, h.p50());
        os << ",\"p95\":";
        writeJsonNumber(os, h.p95());
        os << ",\"p99\":";
        writeJsonNumber(os, h.p99());
        os << ",\"buckets\":[";
        bool first = true;
        for (unsigned b = 0; b < Histogram::numBuckets; ++b) {
            if (!h.bucket(b))
                continue;
            if (!first)
                os << ',';
            first = false;
            os << "{\"lo\":";
            writeJsonNumber(os, static_cast<double>(Histogram::bucketLow(b)));
            os << ",\"hi\":";
            writeJsonNumber(os,
                            static_cast<double>(Histogram::bucketHigh(b)));
            os << ",\"count\":";
            writeJsonNumber(os, static_cast<double>(h.bucket(b)));
            os << '}';
        }
        os << "]}";
    }
}

struct TreeNode
{
    std::map<std::string, TreeNode> kids;
    std::function<void(std::ostream &)> leaf; // null if interior only
};

void
emitNode(std::ostream &os, const TreeNode &n)
{
    if (n.leaf && n.kids.empty()) {
        n.leaf(os);
        return;
    }
    os << '{';
    bool first = true;
    if (n.leaf) {
        // A path that is both a leaf and an interior node keeps its
        // value under a reserved key so neither is lost.
        writeJsonString(os, "_value");
        os << ':';
        n.leaf(os);
        first = false;
    }
    for (const auto &[key, kid] : n.kids) {
        if (!first)
            os << ',';
        first = false;
        writeJsonString(os, key);
        os << ':';
        emitNode(os, kid);
    }
    os << '}';
}

} // namespace

void
StatRegistry::dumpJson(std::ostream &os) const
{
    TreeNode root;
    for (const auto &[path, e] : _entries) {
        TreeNode *n = &root;
        std::size_t start = 0;
        while (true) {
            std::size_t dot = path.find('.', start);
            std::string seg = path.substr(
                start, dot == std::string::npos ? dot : dot - start);
            n = &n->kids[seg];
            if (dot == std::string::npos)
                break;
            start = dot + 1;
        }
        const Entry *ep = &e;
        n->leaf = [ep](std::ostream &o) { emitLeaf(o, *ep); };
    }
    emitNode(os, root);
    os << '\n';
}

} // namespace sim
