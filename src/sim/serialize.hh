/**
 * @file
 * Checkpoint serialization core. A machine snapshot is a flat binary
 * payload built by a Serializer and re-read by a Deserializer, wrapped
 * on disk in the versioned "CCKPT1" container (magic, version, payload
 * length, FNV-1a checksum). Components implement
 *
 *     void checkpointState(sim::Serializer &) const;
 *     void restoreState(sim::Deserializer &);
 *
 * hook pairs that write and read the exact same field sequence;
 * section tags give corrupt or mismatched snapshots a named failure
 * point instead of a silent misparse.
 *
 * Snapshots are only taken at quiescent points (event queue drained,
 * no in-flight protocol transactions), so no type-erased event
 * callables or coroutine frames ever need serializing — see
 * DESIGN.md §12 for the quiescent-point rule.
 *
 * Encoding is explicit little-endian, independent of host byte order.
 * Every malformed-input path throws SnapshotError; tools translate
 * that to exit code 4 (the cohesion-trace/cohesion-diff "artifact
 * corrupt" convention).
 */

#ifndef COHESION_SIM_SERIALIZE_HH
#define COHESION_SIM_SERIALIZE_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

namespace sim {

/** Any snapshot failure: truncated/corrupt files, version or section
 *  mismatches, machine-shape incompatibility. */
class SnapshotError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** FNV-1a over a byte string (snapshot payload checksum). */
inline std::uint64_t
snapshotChecksum(std::string_view bytes)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ULL;
    }
    return h;
}

/** Appends little-endian primitives to a growing payload buffer. */
class Serializer
{
  public:
    void
    u64(std::uint64_t v)
    {
        char b[8];
        for (unsigned i = 0; i < 8; ++i)
            b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
        _buf.append(b, 8);
    }

    void u32(std::uint32_t v) { u64(v); }
    void u8(std::uint8_t v) { u64(v); }
    void b(bool v) { u64(v ? 1 : 0); }

    void
    f64(double v)
    {
        u64(std::bit_cast<std::uint64_t>(v));
    }

    void
    bytes(const void *p, std::size_t n)
    {
        _buf.append(static_cast<const char *>(p), n);
    }

    void
    str(std::string_view s)
    {
        u64(s.size());
        _buf.append(s.data(), s.size());
    }

    /** Named section marker; Deserializer::tag verifies it. */
    void tag(std::string_view name) { str(name); }

    const std::string &blob() const { return _buf; }
    std::string take() { return std::move(_buf); }

  private:
    std::string _buf;
};

/** Bounds-checked reader over a snapshot payload. */
class Deserializer
{
  public:
    explicit Deserializer(std::string_view data) : _data(data) {}

    std::uint64_t
    u64()
    {
        need(8, "integer");
        std::uint64_t v = 0;
        for (unsigned i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(_data[_pos + i]))
                 << (8 * i);
        }
        _pos += 8;
        return v;
    }

    std::uint32_t
    u32()
    {
        std::uint64_t v = u64();
        if (v > 0xFFFFFFFFULL)
            fail("32-bit field out of range");
        return static_cast<std::uint32_t>(v);
    }

    std::uint8_t
    u8()
    {
        std::uint64_t v = u64();
        if (v > 0xFF)
            fail("8-bit field out of range");
        return static_cast<std::uint8_t>(v);
    }

    bool
    b()
    {
        std::uint64_t v = u64();
        if (v > 1)
            fail("boolean field out of range");
        return v != 0;
    }

    double f64() { return std::bit_cast<double>(u64()); }

    void
    bytes(void *p, std::size_t n)
    {
        need(n, "raw bytes");
        std::memcpy(p, _data.data() + _pos, n);
        _pos += n;
    }

    std::string
    str()
    {
        std::uint64_t n = u64();
        need(n, "string body");
        std::string s(_data.substr(_pos, n));
        _pos += n;
        return s;
    }

    /** Consume a section marker written by Serializer::tag. */
    void
    tag(std::string_view name)
    {
        std::string got = str();
        if (got != name) {
            throw SnapshotError("snapshot section mismatch: expected \"" +
                                std::string(name) + "\", found \"" + got +
                                "\"");
        }
    }

    bool atEnd() const { return _pos == _data.size(); }
    std::size_t pos() const { return _pos; }

  private:
    void
    need(std::size_t n, const char *what)
    {
        if (_data.size() - _pos < n) {
            throw SnapshotError(
                std::string("snapshot truncated while reading ") + what);
        }
    }

    [[noreturn]] void
    fail(const char *what)
    {
        throw SnapshotError(std::string("snapshot corrupt: ") + what);
    }

    std::string_view _data;
    std::size_t _pos = 0;
};

/** Wrap @p payload in the CCKPT1 container (in memory). */
std::string frameSnapshot(const std::string &payload);

/** Unwrap a CCKPT1 container; throws SnapshotError on any damage. */
std::string unframeSnapshot(std::string_view file_bytes);

/** Write @p payload to @p path inside the CCKPT1 container. */
void writeSnapshotFile(const std::string &path, const std::string &payload);

/** Read and verify a CCKPT1 file; returns the payload. */
std::string readSnapshotFile(const std::string &path);

} // namespace sim

#endif // COHESION_SIM_SERIALIZE_HH
