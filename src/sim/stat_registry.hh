/**
 * @file
 * Hierarchical statistics registry. Components register named typed
 * stats (Counter, Distribution, Histogram, plain or lazily-computed
 * scalars) under dotted paths such as "chip.cluster3.l2.evict.clean".
 * One registry walk then produces every export format uniformly:
 *
 *  - dumpJson(): a nested JSON object tree (the dot hierarchy becomes
 *    object nesting; histograms carry their non-empty buckets);
 *  - dumpCsv(): flat `stat,value` rows;
 *  - flatten(): the legacy StatSet for existing report consumers.
 *
 * The registry stores pointers to registered stats; it does not own
 * them. Registrants must outlive every dump call (the harness builds a
 * registry per report, so this is naturally satisfied).
 */

#ifndef COHESION_SIM_STAT_REGISTRY_HH
#define COHESION_SIM_STAT_REGISTRY_HH

#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <variant>

#include "sim/stats.hh"

namespace sim {

class StatRegistry
{
  public:
    using ScalarFn = std::function<double()>;

    void addScalar(const std::string &path, double value);
    void addScalar(const std::string &path, ScalarFn fn);
    void addCounter(const std::string &path, const Counter &c);
    void addDistribution(const std::string &path, const Distribution &d);
    void addHistogram(const std::string &path, const Histogram &h);

    bool has(const std::string &path) const { return _entries.count(path); }
    std::size_t size() const { return _entries.size(); }

    /** Scalar view of one entry (count for histograms/distributions). */
    double scalarValue(const std::string &path) const;

    /** Flatten into the legacy StatSet (see header comment). */
    StatSet flatten() const;

    /** Nested JSON object tree, one object level per path segment. */
    void dumpJson(std::ostream &os) const;

    /** Flat `stat,value` CSV with a header row. */
    void dumpCsv(std::ostream &os) const;

  private:
    using Entry = std::variant<double, ScalarFn, const Counter *,
                               const Distribution *, const Histogram *>;

    void insert(const std::string &path, Entry e);

    std::map<std::string, Entry> _entries;
};

} // namespace sim

#endif // COHESION_SIM_STAT_REGISTRY_HH
