#include "sim/trace_json.hh"

#include "sim/json.hh"

namespace sim {

TraceJsonWriter::TraceJsonWriter(std::ostream &os) : _os(os)
{
    _os << "{\"traceEvents\":[";
}

TraceJsonWriter::~TraceJsonWriter()
{
    finish();
}

void
TraceJsonWriter::begin(const char *ph, Tick ts, int tid,
                       std::string_view name, std::string_view cat)
{
    if (!_first)
        _os << ',';
    _first = false;
    ++_events;
    _os << "\n{\"ph\":\"" << ph << "\",\"pid\":1,\"tid\":" << tid
        << ",\"ts\":" << ts << ",\"name\":";
    writeJsonString(_os, name);
    if (!cat.empty()) {
        _os << ",\"cat\":";
        writeJsonString(_os, cat);
    }
}

void
TraceJsonWriter::end()
{
    _os << '}';
}

void
TraceJsonWriter::threadName(int tid, std::string_view name)
{
    if (_finished)
        return;
    begin("M", 0, tid, "thread_name", {});
    _os << ",\"args\":{\"name\":";
    writeJsonString(_os, name);
    _os << '}';
    end();
}

void
TraceJsonWriter::instant(Tick ts, int tid, std::string_view name,
                         std::string_view cat)
{
    if (_finished)
        return;
    begin("i", ts, tid, name, cat);
    _os << ",\"s\":\"t\"";
    end();
}

void
TraceJsonWriter::complete(Tick ts, Tick dur, int tid,
                          std::string_view name, std::string_view cat)
{
    if (_finished)
        return;
    begin("X", ts, tid, name, cat);
    _os << ",\"dur\":" << dur;
    end();
}

void
TraceJsonWriter::asyncBegin(std::uint64_t id, Tick ts,
                            std::string_view name, std::string_view cat)
{
    if (_finished)
        return;
    begin("b", ts, machineTid, name, cat);
    _os << ",\"id\":\"" << id << '"';
    end();
}

void
TraceJsonWriter::asyncEnd(std::uint64_t id, Tick ts,
                          std::string_view name, std::string_view cat)
{
    if (_finished)
        return;
    begin("e", ts, machineTid, name, cat);
    _os << ",\"id\":\"" << id << '"';
    end();
}

void
TraceJsonWriter::counter(Tick ts, std::string_view name, double value)
{
    if (_finished)
        return;
    begin("C", ts, machineTid, name, "sample");
    _os << ",\"args\":{\"value\":";
    writeJsonNumber(_os, value);
    _os << '}';
    end();
}

void
TraceJsonWriter::finish()
{
    if (_finished)
        return;
    _finished = true;
    _os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":"
           "{\"tool\":\"cohesion-sim\"}}\n";
    _os.flush();
}

} // namespace sim
