/**
 * @file
 * Chrome trace-event / Perfetto JSON exporter. Writes the JSON Object
 * Format ({"traceEvents":[...]}) understood by ui.perfetto.dev and
 * chrome://tracing, streaming events as they happen so arbitrarily
 * long protocol transcripts never live in memory.
 *
 * Mapping from simulation to trace concepts:
 *  - ts        = simulated tick (displayed as microseconds);
 *  - pid 1     = the simulated machine;
 *  - tid       = one track per component (banks, clusters, machine);
 *  - "b"/"e"   = async spans for protocol transactions (they interleave
 *                on a bank, so synchronous B/E nesting would not hold);
 *  - "i"       = instants for transitions, barriers, trace records;
 *  - "C"       = counters for sampled series (directory occupancy...).
 *
 * finish() (or destruction) closes the document; the output is strict
 * JSON and machine-parsable (the tests parse it back).
 */

#ifndef COHESION_SIM_TRACE_JSON_HH
#define COHESION_SIM_TRACE_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "sim/event_queue.hh"

namespace sim {

class TraceJsonWriter
{
  public:
    /** Conventional track ids (tid) for machine components. */
    static constexpr int machineTid = 0;
    static int bankTid(unsigned bank) { return 100 + int(bank); }
    static int clusterTid(unsigned cluster) { return 200 + int(cluster); }

    explicit TraceJsonWriter(std::ostream &os);
    ~TraceJsonWriter();

    TraceJsonWriter(const TraceJsonWriter &) = delete;
    TraceJsonWriter &operator=(const TraceJsonWriter &) = delete;

    /** Name a track (metadata event; call once per tid). */
    void threadName(int tid, std::string_view name);

    /** Instant event at @p ts on @p tid. */
    void instant(Tick ts, int tid, std::string_view name,
                 std::string_view cat);

    /** Complete event (known duration up front). */
    void complete(Tick ts, Tick dur, int tid, std::string_view name,
                  std::string_view cat);

    /** Async span: begin/end matched by (cat, id). */
    void asyncBegin(std::uint64_t id, Tick ts, std::string_view name,
                    std::string_view cat);
    void asyncEnd(std::uint64_t id, Tick ts, std::string_view name,
                  std::string_view cat);

    /** Counter sample (one counter track per name). */
    void counter(Tick ts, std::string_view name, double value);

    /** Close the JSON document; further events are ignored. */
    void finish();

    bool finished() const { return _finished; }

    /** Events emitted so far (tests assert on this). */
    std::uint64_t events() const { return _events; }

  private:
    /** Open one event object and write the common fields. */
    void begin(const char *ph, Tick ts, int tid, std::string_view name,
               std::string_view cat);
    void end();

    std::ostream &_os;
    bool _first = true;
    bool _finished = false;
    std::uint64_t _events = 0;
};

} // namespace sim

#endif // COHESION_SIM_TRACE_JSON_HH
