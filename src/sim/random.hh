/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**). All
 * workload generation uses this so runs are reproducible bit-for-bit
 * across hosts; std::mt19937 is avoided because libstdc++ does not
 * guarantee distribution stability.
 */

#ifndef COHESION_SIM_RANDOM_HH
#define COHESION_SIM_RANDOM_HH

#include <cstdint>

namespace sim {

/** xoshiro256** by Blackman & Vigna (public domain algorithm). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        // SplitMix64 seeding.
        std::uint64_t x = seed;
        for (auto &word : _state) {
            x += 0x9E3779B97F4A7C15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            word = z ^ (z >> 31);
        }
    }

    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const std::uint64_t t = _state[1] << 17;
        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Uniform double in [lo, hi). */
    double
    range(double lo, double hi)
    {
        return lo + uniform() * (hi - lo);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _state[4];
};

} // namespace sim

#endif // COHESION_SIM_RANDOM_HH
