/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**). All
 * workload generation uses this so runs are reproducible bit-for-bit
 * across hosts; std::mt19937 is avoided because libstdc++ does not
 * guarantee distribution stability.
 */

#ifndef COHESION_SIM_RANDOM_HH
#define COHESION_SIM_RANDOM_HH

#include <array>
#include <cstdint>
#include <string_view>

namespace sim {

/** xoshiro256** by Blackman & Vigna (public domain algorithm). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        // SplitMix64 seeding.
        std::uint64_t x = seed;
        for (auto &word : _state) {
            x += 0x9E3779B97F4A7C15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            word = z ^ (z >> 31);
        }
    }

    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const std::uint64_t t = _state[1] << 17;
        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /**
     * Uniform integer in [0, bound). @p bound must be nonzero.
     *
     * Lemire's multiply-shift with rejection: `next() % bound` maps
     * the 2^64 raw values onto the bound unevenly (the low
     * 2^64 mod bound residues appear once more often than the rest),
     * so e.g. address-stream generators favored low line numbers.
     * Here the draw selects a 2^64-wide slice [i*bound, (i+1)*bound)
     * via the high word of a 128-bit product and rejects the draws
     * that fall in the truncated final slice, giving every residue
     * identical probability while consuming one draw in the common
     * case.
     */
    std::uint64_t
    below(std::uint64_t bound)
    {
        std::uint64_t x = next();
        unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                x = next();
                m = static_cast<unsigned __int128>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Uniform double in [lo, hi). */
    double
    range(double lo, double hi)
    {
        return lo + uniform() * (hi - lo);
    }

    /** Raw generator state (checkpoint support). */
    std::array<std::uint64_t, 4>
    rawState() const
    {
        return {_state[0], _state[1], _state[2], _state[3]};
    }

    void
    setRawState(const std::array<std::uint64_t, 4> &s)
    {
        for (unsigned i = 0; i < 4; ++i)
            _state[i] = s[i];
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _state[4];
};

/**
 * Derive a named sub-stream seed from one master seed. The whole
 * simulator draws from a single documented seed chain rooted at the
 * workload seed (--seed): kernel setup uses the master directly, the
 * fault injector uses deriveSeed(master, "fault"), and any future
 * consumer should mint its own stream name here rather than invent a
 * second CLI knob. Stream names are hashed (FNV-1a) and mixed with the
 * master through the SplitMix64 finalizer, so distinct names yield
 * statistically independent streams while staying reproducible.
 */
inline std::uint64_t
deriveSeed(std::uint64_t master, std::string_view stream)
{
    std::uint64_t h = 0xCBF29CE484222325ULL; // FNV-1a offset basis
    for (char c : stream) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ULL;
    }
    std::uint64_t z = master + 0x9E3779B97F4A7C15ULL * (h | 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

} // namespace sim

#endif // COHESION_SIM_RANDOM_HH
