/**
 * @file
 * Host-side self-profiler: attributes the *simulator's* CPU/wall time
 * to named phases, the mirror image of the stat registry and flight
 * recorder (which instrument the *simulated* machine). It exists to
 * answer one question before the roadmap's shard-the-chip work is
 * attempted: where does a run actually spend host time — cluster event
 * handling, bank transactions, the directory, the region table, or the
 * event queue itself?
 *
 * Discipline (mirrors the FlightRecorder):
 *
 *  - cheap enough to leave compiled in: a Scope on a disabled profiler
 *    is a single relaxed flag test, so instrumentation sites stay in
 *    release builds;
 *  - two phase kinds. *Exact* phases (the run-loop cadences: dispatch
 *    bursts, audit passes, the fault pump, the sampler, setup/verify/
 *    export) are long and rare, so every occurrence is timed with
 *    steady_clock and their sum tiles a run's wall time. *Sampled*
 *    phases (per-component event handling) fire per event, where two
 *    clock reads would blow the <=2% events/sec budget; they count
 *    every entry but time only one in 2^sampleShift, reporting the
 *    scaled estimate `timedNs * count / timedCount`;
 *  - thread-local accumulation: each thread owns its accumulator (the
 *    registry keeps it alive past thread exit), so SweepEngine workers
 *    profile concurrently without sharing a cache line; snapshots
 *    merge across threads on demand;
 *  - strictly observer: a Scope never touches simulation state, so a
 *    profiled run is bit-identical to an unprofiled one. Everything
 *    exported from here lives under the `host.*` stat subtree, which
 *    is segregated from determinism golden hashes (host timings are
 *    nondeterministic by nature).
 *
 * Sampled phases are *inclusive*: a region-table scope opened inside a
 * bank-transaction scope accrues to both. The component ranking this
 * produces is exactly what the conservative-lookahead sharding item
 * needs — which per-component slices dominate dispatch time.
 */

#ifndef COHESION_SIM_HOST_PROFILER_HH
#define COHESION_SIM_HOST_PROFILER_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>

namespace sim {

class HostProfiler
{
  public:
    /** The phase taxonomy (DESIGN.md §11). Exact phases tile the run
     *  wall time; sampled phases attribute dispatch to components. */
    enum class Phase : std::uint8_t {
        None = 0,    ///< sentinel: "no phase", never accumulated
        // --- exact phases (timed on every occurrence) ---------------
        Setup,       ///< machine construction, kernel setup, task start
        EqDispatch,  ///< event-queue bursts inside runUntilQuiescent
        Audit,       ///< coherence auditor invariant passes
        FaultPump,   ///< cache bit-flip pump cadence
        Sampler,     ///< time-series sampling cadence
        Verify,      ///< kernel numerical verification
        StatsExport, ///< stat-registry build + JSON/CSV dump
        TraceExport, ///< trace-JSON finish, recorder serialize/dump
        // --- sampled phases (per-component event handling) ----------
        ClusterCore, ///< core coroutine resumes (kernel execution)
        ClusterMsg,  ///< response/probe delivery at a cluster
        ClusterSwcc, ///< SWcc flush/invalidate instruction handling
        BankMsg,     ///< bank request receipt + transaction segments
        Directory,   ///< directory lookup/insert/evict walks
        RegionTable, ///< fine region-table reads/updates (+cache)
        numPhases,
    };

    static constexpr unsigned numPhases =
        static_cast<unsigned>(Phase::numPhases);

    /** First sampled phase; everything before it is exact. */
    static constexpr Phase firstSampled = Phase::ClusterCore;

    static bool
    phaseSampled(Phase p)
    {
        return p >= firstSampled && p < Phase::numPhases;
    }

    /** Stable dotted name ("eq.dispatch", "bank.msg", ...). */
    static const char *phaseName(Phase p);

    // --- Enable / disable -----------------------------------------------

    /**
     * Turn profiling on process-wide. @p sample_shift sets the sampled
     * phases' timing stride to 1-in-2^shift (0 times every occurrence
     * — used by tests; the default 7 keeps the hot-path cost inside
     * the 2% events/sec budget: a timed transaction pays two clock
     * reads per segment, continuations included, so the stride has to
     * amortize whole Delay chains, not single scopes). Re-enabling
     * adjusts the stride but keeps accumulated data; call reset() for
     * a clean slate.
     */
    static void enable(unsigned sample_shift = defaultSampleShift);
    static void disable();

    static bool
    enabled()
    {
        return _on.load(std::memory_order_relaxed);
    }

    static unsigned
    sampleShift()
    {
        return _sampleShift.load(std::memory_order_relaxed);
    }
    static constexpr unsigned defaultSampleShift = 7;

    /** Zero every thread's accumulator (threads stay registered). */
    static void reset();

    // --- Accumulated data -----------------------------------------------

    struct PhaseAcc
    {
        /** Scope entries observed. For sampled phases this counts
         *  transactions: coroutine-continuation re-opens (the Resume
         *  scopes) accrue time to their transaction, not new entries. */
        std::uint64_t count = 0;
        std::uint64_t timedCount = 0; ///< entries actually timed
        std::uint64_t timedNs = 0;    ///< nanoseconds in timed entries
    };

    /** A merged snapshot (copyable, thread-independent). */
    struct Profile
    {
        std::array<PhaseAcc, numPhases> phases{};
        unsigned sampleShift = defaultSampleShift;

        const PhaseAcc &
        operator[](Phase p) const
        {
            return phases[static_cast<unsigned>(p)];
        }

        /**
         * Best-estimate nanoseconds for @p p: exact phases report
         * timedNs verbatim; sampled phases scale by the stride
         * (timedNs * count / timedCount).
         */
        std::uint64_t estNs(Phase p) const;

        /** Sum of estNs over the exact phases — the attributed slice
         *  of a run's wall time (sampled phases nest inside
         *  EqDispatch and would double-count). */
        std::uint64_t attributedNs() const;

        void merge(const Profile &other);

        /** Per-phase difference (this - earlier); saturates at 0 so a
         *  reset between snapshots cannot underflow. */
        Profile since(const Profile &earlier) const;

        bool
        empty() const
        {
            for (const PhaseAcc &a : phases)
                if (a.count)
                    return false;
            return true;
        }
    };

    /** Merge every registered thread's accumulator. */
    static Profile processSnapshot();

    /**
     * This thread's accumulation *group*: its own accumulator plus
     * every thread that joined its group (shard crew workers). Pair
     * two calls around a region (e.g. one sweep job) and subtract with
     * Profile::since to get a per-job profile even while sibling
     * workers run — a sweep worker's group never includes another
     * job's threads.
     */
    static Profile threadSnapshot();

    /** Opaque identity of this thread's group (its own accumulator
     *  unless it joined another thread's group). */
    static const void *groupKey();

    /** Fold this thread's accumulation into the group identified by
     *  @p key (from the owning thread's groupKey()). Shard crew
     *  threads call this once at startup so host.* attribution and
     *  attributed_pct cover shard work under --shards N. */
    static void joinGroup(const void *key);

    // --- Scoped timer ---------------------------------------------------

    class Scope
    {
      public:
        explicit Scope(Phase p)
        {
            if (p == Phase::None || !enabled()) {
                _acc = nullptr;
                return;
            }
            open(p);
        }

        /** Tag for re-opening a phase around a coroutine continuation
         *  (see resumePhase()). */
        struct Resume
        {};

        /**
         * Continuation segment of a timed sampled entry. Timed
         * unconditionally — the stride already chose the transaction
         * at its initial entry — and accrues nanoseconds only: the
         * transaction was counted (and its timedCount taken) when it
         * entered, so estNs scales whole-transaction samples.
         */
        Scope(Phase p, Resume)
        {
            if (p == Phase::None || !enabled())
                return;
            ThreadAcc *t = _tlAcc;
            if (!t)
                t = &threadAcc();
            _acc = &t->phases[static_cast<unsigned>(p)];
            _prevPhase = _tlPhase;
            _tlPhase = p;
            _restorePhase = true;
            _continuation = true;
            _t0 = clock::now();
        }

        ~Scope() { close(); }

        /** End the scope early (used where a block does not fit the
         *  region, e.g. setup spanning declarations). Idempotent. */
        void
        close()
        {
            // _acc is only set for timed entries (always, for exact
            // phases; one in 2^sampleShift for sampled ones), so an
            // untimed close is a single null test.
            if (!_acc)
                return;
            _acc->timedNs += static_cast<std::uint64_t>(
                (clock::now() - _t0).count());
            if (!_continuation)
                ++_acc->timedCount;
            if (_restorePhase)
                _tlPhase = _prevPhase;
            _acc = nullptr;
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        using clock = std::chrono::steady_clock;

        /** Enabled-path entry. Inline because sampled phases open per
         *  simulated event: the common (untimed) case must stay at a
         *  TLS load plus two increments. */
        void
        open(Phase p)
        {
            ThreadAcc *t = _tlAcc;
            if (!t)
                t = &threadAcc(); // outlined: registers this thread
            unsigned idx = static_cast<unsigned>(p);
            PhaseAcc &acc = t->phases[idx];
            ++acc.count;
            if (phaseSampled(p)) {
                if ((t->stride[idx]++ & ((1u << sampleShift()) - 1)) != 0)
                    return; // count-only entry; close() is a no-op
                // Timed entry: the thread-phase marker makes coroutine
                // continuations of *this* entry re-open the phase (see
                // resumePhase), so the stride samples whole
                // transactions, suspended segments included.
                _prevPhase = _tlPhase;
                _tlPhase = p;
                _restorePhase = true;
            }
            _acc = &acc;
            _t0 = clock::now();
        }

        PhaseAcc *_acc = nullptr;
        clock::time_point _t0;
        Phase _prevPhase = Phase::None;
        bool _restorePhase = false;
        bool _continuation = false;
    };

    /**
     * The sampled phase a *timed* entry currently has open on this
     * thread (None otherwise). Awaitables capture it at suspension and
     * re-open it around the resume — same-transaction continuations
     * (Delay) with a Scope(p, Resume{}), timed unconditionally, so a
     * bank transaction's delay segments stay attributed to the bank
     * across event boundaries; cross-transaction lock hand-offs
     * (LineLockTable::release) with a plain Scope(p) that re-rolls the
     * stride, so timing cannot cascade down waiter chains. The
     * sampling unit is a maximal Delay-chain starting at a request
     * receipt or a lock grant; count-only entries stay at two
     * increments.
     */
    static Phase resumePhase() { return _tlPhase; }

    /** One thread's accumulators plus its per-phase sampling strides.
     *  Implementation detail (public so Scope::open can inline and the
     *  registry in the .cc can own instances); not part of the API.
     *  The registry outlives the threads themselves, so a SweepEngine
     *  worker's contribution is still visible in processSnapshot()
     *  after its pool was torn down. */
    struct ThreadAcc
    {
        std::array<PhaseAcc, numPhases> phases{};
        std::array<std::uint32_t, numPhases> stride{};
        /** Group identity; null means "my own group" (self). Atomic
         *  because a shard crew worker joins its orchestrator's group
         *  at startup, concurrently with a baseline threadSnapshot()
         *  taken before the first window barrier orders the two
         *  threads (phase accumulators need no such care: they are
         *  only written inside windows, which end in a barrier). */
        std::atomic<const void *> group{nullptr};
    };

  private:
    static ThreadAcc &threadAcc();

    static std::atomic<bool> _on;
    /** Atomic: concurrent sweep jobs may each enable() the profiler
     *  (last writer wins; they pass the same shift in practice). */
    static std::atomic<unsigned> _sampleShift;
    static thread_local Phase _tlPhase;
    static thread_local ThreadAcc *_tlAcc;
};

} // namespace sim

#endif // COHESION_SIM_HOST_PROFILER_HH
