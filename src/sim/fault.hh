/**
 * @file
 * Deterministic, seeded fault injection. A FaultInjector owns one
 * dedicated Rng stream and a set of named injection *sites* — points
 * in the fabric and memory hierarchy where the wiring asks "does a
 * fault fire here?" once per opportunity. Because every draw happens
 * at a deterministic point in the event schedule, a (seed, plan) pair
 * reproduces the exact same fault sequence bit-for-bit.
 *
 * Sites are configured from a FaultPlan, built either from quick CLI
 * knobs (--fault-seed / --fault-drop-rate) or a JSON plan document:
 *
 *     {
 *       "seed": 7,
 *       "pump_period": 1024,
 *       "sites": {
 *         "fabric.c2b.drop":  { "rate": 0.01 },
 *         "fabric.b2c.delay": { "rate": 0.05, "delay": 128 },
 *         "l2.meta.flip":     { "rate": 0.2,  "max": 3 }
 *       }
 *     }
 *
 * Counter semantics: injected() counts fired faults per site;
 * recovered() counts faults the machinery demonstrably absorbed
 * (today: dropped messages that were retransmitted and delivered).
 * Flip/stale faults have no automatic recovery signal — the Auditor
 * or the kernel verifier is their detector.
 */

#ifndef COHESION_SIM_FAULT_HH
#define COHESION_SIM_FAULT_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stat_registry.hh"

namespace sim {

/** Named injection sites (see faultSiteName for the wire names). */
enum class FaultSite : std::uint8_t {
    FabricC2BDrop,  ///< Drop an L2->L3 message (retransmitted).
    FabricC2BDup,   ///< Duplicate an L2->L3 message.
    FabricC2BDelay, ///< Delay an L2->L3 message.
    FabricB2CDrop,  ///< Drop an L3->L2 response (retransmitted).
    FabricB2CDup,   ///< Duplicate an L3->L2 response.
    FabricB2CDelay, ///< Delay an L3->L2 response.
    L2DataFlip,     ///< Flip one data bit of a valid L2 line.
    L2MetaFlip,     ///< Flip one valid/dirty mask bit of an L2 line.
    L3DataFlip,     ///< Flip one data bit of a valid L3 line.
    L3MetaFlip,     ///< Flip one valid/dirty mask bit of an L3 line.
    TableStale,     ///< Fine-table cache hit returns a stale word.
    MemDataFlip,    ///< Targeted: corrupt the newest visible copy of
                    ///< a word (verifier-guard tests; never random).
};

constexpr unsigned numFaultSites = 12;

/** Wire name of a site (e.g. "fabric.c2b.drop"). */
const char *faultSiteName(FaultSite s);

/** Parse a wire name; returns false if unknown. */
bool faultSiteFromName(std::string_view name, FaultSite *out);

/** Per-site knobs. */
struct FaultSiteConfig
{
    double rate = 0.0;      ///< Fault probability per opportunity.
    std::uint64_t max = 0;  ///< Injection cap (0 = unlimited).
    Tick delay = 64;        ///< Extra ticks for delay sites.
};

/** A complete fault campaign configuration. */
struct FaultPlan
{
    /** Rng seed for the fault stream; 0 derives one from the default
     *  workload seed via deriveSeed(12345, "fault") (see random.hh). */
    std::uint64_t seed = 0;
    /** Cadence of the state-flip pump (cache/table sites). */
    Tick pumpPeriod = 1024;
    std::array<FaultSiteConfig, numFaultSites> sites{};

    FaultSiteConfig &
    site(FaultSite s)
    {
        return sites[static_cast<unsigned>(s)];
    }

    const FaultSiteConfig &
    site(FaultSite s) const
    {
        return sites[static_cast<unsigned>(s)];
    }

    /** True if any site has a nonzero rate. */
    bool anyEnabled() const;

    /**
     * Parse a JSON plan document (schema in the file header). Calls
     * fatal() on malformed input or unknown site names.
     */
    static FaultPlan parse(std::string_view json_text);
};

class FaultInjector
{
  public:
    /** Install @p plan and reset all counters and the Rng stream. */
    void configure(const FaultPlan &plan);

    bool enabled() const { return _enabled; }
    const FaultPlan &plan() const { return _plan; }
    /** The effective (post-derivation) fault seed. */
    std::uint64_t seed() const { return _seed; }

    /** True if @p s can still fire (nonzero rate, under its cap). */
    bool
    armed(FaultSite s) const
    {
        const FaultSiteConfig &c = _plan.site(s);
        return _enabled && c.rate > 0.0 &&
               (c.max == 0 || injected(s) < c.max);
    }

    /**
     * One injection opportunity at @p s: draws the Rng and returns
     * true (counting the injection) if a fault fires. Every call
     * consumes at most one Rng draw, at a deterministic point in the
     * event schedule, so campaigns replay exactly.
     */
    bool
    fire(FaultSite s)
    {
        if (!armed(s))
            return false;
        if (_rng.uniform() >= _plan.site(s).rate)
            return false;
        countInjected(s);
        return true;
    }

    Tick delayTicks(FaultSite s) const { return _plan.site(s).delay; }

    /** Count a directed (test-driven) injection at @p s. */
    void
    countInjected(FaultSite s)
    {
        ++_injected[static_cast<unsigned>(s)];
    }

    /** The machinery absorbed one fault injected at @p s. */
    void
    countRecovered(FaultSite s)
    {
        ++_recovered[static_cast<unsigned>(s)];
    }

    std::uint64_t
    injected(FaultSite s) const
    {
        return _injected[static_cast<unsigned>(s)];
    }

    std::uint64_t
    recovered(FaultSite s) const
    {
        return _recovered[static_cast<unsigned>(s)];
    }

    std::uint64_t totalInjected() const;
    std::uint64_t totalRecovered() const;

    /** The fault stream's Rng (victim selection for flip sites). */
    Rng &rng() { return _rng; }

    /** Register per-site injected/recovered counters under @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

    /** Checkpoint hooks: the Rng stream and the per-site counters
     *  resume so post-restore fault decisions replay the uninterrupted
     *  campaign exactly. The plan itself is configuration, rebuilt by
     *  the caller before restore. */
    void
    checkpointState(Serializer &ser) const
    {
        ser.tag("faults");
        ser.b(_enabled);
        ser.u64(_seed);
        for (std::uint64_t w : _rng.rawState())
            ser.u64(w);
        for (std::uint64_t v : _injected)
            ser.u64(v);
        for (std::uint64_t v : _recovered)
            ser.u64(v);
    }

    void
    restoreState(Deserializer &des)
    {
        des.tag("faults");
        bool enabled = des.b();
        if (enabled != _enabled) {
            throw SnapshotError("snapshot fault-injection state does not "
                                "match this configuration");
        }
        _seed = des.u64();
        std::array<std::uint64_t, 4> s;
        for (std::uint64_t &w : s)
            w = des.u64();
        _rng.setRawState(s);
        for (std::uint64_t &v : _injected)
            v = des.u64();
        for (std::uint64_t &v : _recovered)
            v = des.u64();
    }

  private:
    bool _enabled = false;
    std::uint64_t _seed = 0;
    FaultPlan _plan;
    Rng _rng;
    std::array<std::uint64_t, numFaultSites> _injected{};
    std::array<std::uint64_t, numFaultSites> _recovered{};
};

} // namespace sim

#endif // COHESION_SIM_FAULT_HH
