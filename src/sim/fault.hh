/**
 * @file
 * Deterministic, seeded fault injection. A FaultInjector owns one
 * dedicated Rng stream and a set of named injection *sites* — points
 * in the fabric and memory hierarchy where the wiring asks "does a
 * fault fire here?" once per opportunity. Because every draw happens
 * at a deterministic point in the event schedule, a (seed, plan) pair
 * reproduces the exact same fault sequence bit-for-bit.
 *
 * Sites are configured from a FaultPlan, built either from quick CLI
 * knobs (--fault-seed / --fault-drop-rate) or a JSON plan document:
 *
 *     {
 *       "seed": 7,
 *       "pump_period": 1024,
 *       "sites": {
 *         "fabric.c2b.drop":  { "rate": 0.01 },
 *         "fabric.b2c.delay": { "rate": 0.05, "delay": 128 },
 *         "l2.meta.flip":     { "rate": 0.2,  "max": 3 }
 *       }
 *     }
 *
 * Counter semantics: injected() counts fired faults per site;
 * recovered() counts faults the machinery demonstrably absorbed
 * (today: dropped messages that were retransmitted and delivered).
 * Flip/stale faults have no automatic recovery signal — the Auditor
 * or the kernel verifier is their detector.
 */

#ifndef COHESION_SIM_FAULT_HH
#define COHESION_SIM_FAULT_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stat_registry.hh"

namespace sim {

/** Named injection sites (see faultSiteName for the wire names). */
enum class FaultSite : std::uint8_t {
    FabricC2BDrop,  ///< Drop an L2->L3 message (retransmitted).
    FabricC2BDup,   ///< Duplicate an L2->L3 message.
    FabricC2BDelay, ///< Delay an L2->L3 message.
    FabricB2CDrop,  ///< Drop an L3->L2 response (retransmitted).
    FabricB2CDup,   ///< Duplicate an L3->L2 response.
    FabricB2CDelay, ///< Delay an L3->L2 response.
    L2DataFlip,     ///< Flip one data bit of a valid L2 line.
    L2MetaFlip,     ///< Flip one valid/dirty mask bit of an L2 line.
    L3DataFlip,     ///< Flip one data bit of a valid L3 line.
    L3MetaFlip,     ///< Flip one valid/dirty mask bit of an L3 line.
    TableStale,     ///< Fine-table cache hit returns a stale word.
    MemDataFlip,    ///< Targeted: corrupt the newest visible copy of
                    ///< a word (verifier-guard tests; never random).
};

constexpr unsigned numFaultSites = 12;

/** Wire name of a site (e.g. "fabric.c2b.drop"). */
const char *faultSiteName(FaultSite s);

/** Parse a wire name; returns false if unknown. */
bool faultSiteFromName(std::string_view name, FaultSite *out);

/** Per-site knobs. */
struct FaultSiteConfig
{
    double rate = 0.0;      ///< Fault probability per opportunity.
    std::uint64_t max = 0;  ///< Injection cap (0 = unlimited).
    Tick delay = 64;        ///< Extra ticks for delay sites.
};

/** A complete fault campaign configuration. */
struct FaultPlan
{
    /** Rng seed for the fault stream; 0 derives one from the default
     *  workload seed via deriveSeed(12345, "fault") (see random.hh). */
    std::uint64_t seed = 0;
    /** Cadence of the state-flip pump (cache/table sites). */
    Tick pumpPeriod = 1024;
    std::array<FaultSiteConfig, numFaultSites> sites{};

    FaultSiteConfig &
    site(FaultSite s)
    {
        return sites[static_cast<unsigned>(s)];
    }

    const FaultSiteConfig &
    site(FaultSite s) const
    {
        return sites[static_cast<unsigned>(s)];
    }

    /** True if any site has a nonzero rate. */
    bool anyEnabled() const;

    /**
     * Parse a JSON plan document (schema in the file header). Calls
     * fatal() on malformed input or unknown site names.
     */
    static FaultPlan parse(std::string_view json_text);
};

/**
 * Sharded-determinism note: a single shared Rng stream would make fault
 * decisions depend on the host interleaving of shard threads. Each site
 * therefore owns one independent Rng *lane* per source component —
 * C2B fabric sites are laned by source cluster, B2C fabric sites and
 * TableStale by bank, and the flip sites (whose opportunities happen at
 * the orchestrator's fault pump) share one lane. Each lane's seed is
 * derived from (fault seed, site name, lane index), so a lane's draw
 * sequence depends only on the simulated traffic through that one
 * component — which the conservative window scheduler already keeps
 * identical for every shard count.
 *
 * Semantics change vs. the pre-sharded model: per-site injection caps
 * (`max`) apply *per lane*, because checking a global cap from
 * concurrent shards would race the decision itself.
 */
class FaultInjector
{
  public:
    /**
     * Install @p plan and reset all counters and Rng lanes.
     * @p clusters / @p banks define the lane geometry (both are
     * machine topology, independent of the shard count).
     */
    void configure(const FaultPlan &plan, unsigned clusters = 1,
                   unsigned banks = 1);

    FaultInjector() = default;
    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    bool enabled() const { return _enabled; }
    const FaultPlan &plan() const { return _plan; }
    /** The effective (post-derivation) fault seed. */
    std::uint64_t seed() const { return _seed; }

    unsigned
    lanes(FaultSite s) const
    {
        return static_cast<unsigned>(_lanes[static_cast<unsigned>(s)].size());
    }

    /** True if @p s can still fire in lane @p lane. */
    bool
    armed(FaultSite s, unsigned lane) const
    {
        const FaultSiteConfig &c = _plan.site(s);
        return _enabled && c.rate > 0.0 &&
               (c.max == 0 || laneAt(s, lane).injected < c.max);
    }

    /** True if @p s can still fire in *any* lane (pump eligibility). */
    bool
    armed(FaultSite s) const
    {
        const FaultSiteConfig &c = _plan.site(s);
        if (!_enabled || c.rate <= 0.0)
            return false;
        if (c.max == 0)
            return true;
        for (const Lane &l : _lanes[static_cast<unsigned>(s)]) {
            if (l.injected < c.max)
                return true;
        }
        return false;
    }

    /**
     * One injection opportunity at @p s in lane @p lane: draws the
     * lane's Rng and returns true (counting the injection) if a fault
     * fires. Every call consumes at most one draw from that lane, at a
     * deterministic point in the component's event order, so campaigns
     * replay exactly at any shard count. Must run on the shard that
     * owns the lane's component.
     */
    bool
    fire(FaultSite s, unsigned lane)
    {
        if (!armed(s, lane))
            return false;
        Lane &l = laneAt(s, lane);
        if (l.rng.uniform() >= _plan.site(s).rate)
            return false;
        ++l.injected;
        return true;
    }

    Tick delayTicks(FaultSite s) const { return _plan.site(s).delay; }

    /** Count a directed (test-driven) injection at @p s. */
    void
    countInjected(FaultSite s, unsigned lane = 0)
    {
        ++laneAt(s, lane).injected;
    }

    /** The machinery absorbed one fault injected at @p s. May be
     *  called from any shard (recovery is observed at the receiver). */
    void
    countRecovered(FaultSite s)
    {
        _recovered[static_cast<unsigned>(s)].fetch_add(
            1, std::memory_order_relaxed);
    }

    /** Total injections at @p s, summed over lanes. Quiescent-only. */
    std::uint64_t
    injected(FaultSite s) const
    {
        std::uint64_t n = 0;
        for (const Lane &l : _lanes[static_cast<unsigned>(s)])
            n += l.injected;
        return n;
    }

    std::uint64_t
    recovered(FaultSite s) const
    {
        return _recovered[static_cast<unsigned>(s)].load(
            std::memory_order_relaxed);
    }

    std::uint64_t totalInjected() const;
    std::uint64_t totalRecovered() const;

    /** The fault pump's dedicated Rng stream (victim selection for
     *  flip sites; orchestrator-only). */
    Rng &pumpRng() { return _pumpRng; }

    /** Register per-site injected/recovered counters under @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

    /** Checkpoint hooks: every lane's Rng stream and counters resume
     *  so post-restore fault decisions replay the uninterrupted
     *  campaign exactly. Lane geometry is machine topology, so the
     *  record is shard-count-independent. The plan itself is
     *  configuration, rebuilt by the caller before restore. */
    void
    checkpointState(Serializer &ser) const
    {
        ser.tag("faults");
        ser.b(_enabled);
        ser.u64(_seed);
        for (const auto &site : _lanes) {
            ser.u64(site.size());
            for (const Lane &l : site) {
                for (std::uint64_t w : l.rng.rawState())
                    ser.u64(w);
                ser.u64(l.injected);
            }
        }
        for (const auto &v : _recovered)
            ser.u64(v.load(std::memory_order_relaxed));
        for (std::uint64_t w : _pumpRng.rawState())
            ser.u64(w);
    }

    void
    restoreState(Deserializer &des)
    {
        des.tag("faults");
        bool enabled = des.b();
        if (enabled != _enabled) {
            throw SnapshotError("snapshot fault-injection state does not "
                                "match this configuration");
        }
        _seed = des.u64();
        for (auto &site : _lanes) {
            if (des.u64() != site.size()) {
                throw SnapshotError(
                    "snapshot fault-lane geometry does not match this "
                    "machine configuration");
            }
            for (Lane &l : site) {
                std::array<std::uint64_t, 4> s;
                for (std::uint64_t &w : s)
                    w = des.u64();
                l.rng.setRawState(s);
                l.injected = des.u64();
            }
        }
        for (auto &v : _recovered)
            v.store(des.u64(), std::memory_order_relaxed);
        std::array<std::uint64_t, 4> s;
        for (std::uint64_t &w : s)
            w = des.u64();
        _pumpRng.setRawState(s);
    }

  private:
    struct Lane
    {
        Rng rng;
        std::uint64_t injected = 0;
    };

    Lane &
    laneAt(FaultSite s, unsigned lane)
    {
        return _lanes[static_cast<unsigned>(s)][lane];
    }

    const Lane &
    laneAt(FaultSite s, unsigned lane) const
    {
        return _lanes[static_cast<unsigned>(s)][lane];
    }

    bool _enabled = false;
    std::uint64_t _seed = 0;
    FaultPlan _plan;
    std::array<std::vector<Lane>, numFaultSites> _lanes;
    std::array<std::atomic<std::uint64_t>, numFaultSites> _recovered{};
    Rng _pumpRng;
};

} // namespace sim

#endif // COHESION_SIM_FAULT_HH
