/**
 * @file
 * Per-transaction cycle accounting: where did a memory request's
 * cycles go? Every completed request/response transaction carries a
 * compact stage timeline (issue -> MSHR wait -> request fabric ->
 * bank line-lock wait -> directory/backend service with probe
 * round-trips as a nested span -> DRAM -> reply fabric), stamped at
 * the existing protocol seams and aggregated per message class and
 * per coherence mode (the paper-relevant HWcc vs. SWcc cut).
 *
 * The hard invariant: for every completed transaction the stage
 * cycles sum *exactly* to the end-to-end latency (retire tick minus
 * the operation's anchor tick). Any violation increments a counter
 * that tests pin to zero — there is no "other" bucket to hide in.
 *
 * Observer-only, like the host profiler and flight recorder:
 * accounting off (the default) registers no stats and leaves
 * simulation results byte-identical; accounting on changes nothing
 * but the export. Aggregation lands in per-shard lanes (commutative
 * sums indexed by sim::tlsShard) and is folded only at export, so
 * the totals are shard-count invariant (DESIGN.md SS15).
 */

#ifndef COHESION_SIM_LATENCY_ACCOUNTING_HH
#define COHESION_SIM_LATENCY_ACCOUNTING_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.hh"

namespace sim {

class StatRegistry;

namespace lat {

/** The stage taxonomy. Every accounted cycle lands in exactly one. */
enum class Stage : std::uint8_t {
    Issue,      ///< Core issue to request departure (L1/L2 time).
    Mshr,       ///< Waited on an MSHR for an earlier miss (follow-up
                ///< and upgrade requests synthesized at fill time).
    ReqFabric,  ///< Cluster -> bank fabric hop (retries excluded).
    Retry,      ///< Drop/retransmit backoff, both fabric directions.
    BankLock,   ///< Bank line-lock / transaction-queue wait.
    Dir,        ///< Directory port + lookup + domain decision.
    Probe,      ///< Probe round-trips (nested span of the bank time).
    Dram,       ///< DRAM fill portion of the L3 access.
    Service,    ///< Remaining backend service (L3 port, merges, RMW).
    RespFabric, ///< Bank -> cluster fabric hop (retries excluded).
};

constexpr unsigned numStages = 10;

/** Stable display name ("issue", "mshr", "req_fabric", ...). */
const char *stageName(Stage s);

/** Coherence-mode blame cut for one transaction. */
enum class Mode : std::uint8_t {
    Hwcc,       ///< Served under hardware coherence.
    Swcc,       ///< Served incoherently / software-managed.
    Transition, ///< A Fig. 7 domain-transition (table update) flow.
};

constexpr unsigned numModes = 3;

const char *modeName(Mode m);

/**
 * Stage accrual cursor for one transaction, built bank-side on the
 * transaction coroutine's frame and carried to the cluster in the
 * Response. mark(s, now) attributes [last, now) to stage @p s; the
 * telescoping makes the bank span tile exactly.
 */
struct Cursor
{
    std::array<std::uint32_t, numStages> cycles{};
    Tick last = 0; ///< Tick of the previous mark.

    void
    add(Stage s, std::uint64_t d)
    {
        cycles[static_cast<unsigned>(s)] +=
            static_cast<std::uint32_t>(d);
    }

    /** Attribute [last, now) to @p s and advance the cursor. */
    void
    mark(Stage s, Tick now)
    {
        add(s, now - last);
        last = now;
    }

    /** The L3-access split: attribute up to @p dram_ticks of
     *  [last, now) to Dram and the rest (port wait, array latency) to
     *  Service, then advance the cursor. */
    void
    markAccess(Tick now, Tick dram_ticks)
    {
        Tick elapsed = now - last;
        Tick d = dram_ticks < elapsed ? dram_ticks : elapsed;
        add(Stage::Dram, d);
        add(Stage::Service, elapsed - d);
        last = now;
    }
};

} // namespace lat

/** Folded aggregate blame breakdown (export / report snapshot). */
struct LatencyTotals
{
    struct Bucket
    {
        std::uint64_t count = 0;
        std::uint64_t e2e = 0; ///< Sum of end-to-end cycles.
        std::array<std::uint64_t, lat::numStages> stage{};
    };

    std::array<Bucket, lat::numModes> mode{};
    /** Per message class; sized by the caller (arch::numMsgClasses). */
    std::vector<Bucket> cls;
    /** Transactions whose stages did not sum to end-to-end. Tests pin
     *  this to zero; it is exported so a violation is never silent. */
    std::uint64_t violations = 0;

    std::uint64_t
    completed() const
    {
        std::uint64_t n = 0;
        for (const Bucket &b : mode)
            n += b.count;
        return n;
    }
};

/**
 * Register @p t's blame breakdown under "<prefix>." in @p reg (scalars
 * copied by value): <prefix>.mode.<m>.{count,e2e,<stage>...},
 * <prefix>.class.<class_name(c)>.{...}, <prefix>.violations.
 */
void registerLatencyTotals(StatRegistry &reg, const std::string &prefix,
                           const LatencyTotals &t,
                           const char *(*class_name)(unsigned));

/**
 * Per-shard aggregation of completed-transaction timelines. The
 * cluster's retire path records into the lane named by sim::tlsShard;
 * fold() sums the lanes at export. Disabled (the default), record()
 * is never called and registerStats() adds nothing.
 */
class LatencyAccountant
{
  public:
    /** @p num_classes mirrors arch::numMsgClasses (sim/ cannot see
     *  arch/); @p lanes is the machine's shard count. */
    void
    configure(unsigned num_classes, unsigned lanes)
    {
        _numClasses = num_classes;
        _lanes.assign(lanes ? lanes : 1, Lane{});
        for (Lane &l : _lanes)
            l.cls.assign(_numClasses, LatencyTotals::Bucket{});
    }

    void enable() { _enabled = true; }
    bool enabled() const { return _enabled; }

    /**
     * Record one completed transaction into @p lane. @p ok is the
     * stage-sum invariant, checked by the caller (which holds both
     * the timeline and the end-to-end anchor ticks).
     */
    void
    record(unsigned lane, unsigned msg_class, lat::Mode mode,
           const std::array<std::uint32_t, lat::numStages> &stages,
           std::uint64_t e2e, bool ok)
    {
        Lane &l = _lanes[lane < _lanes.size() ? lane : 0];
        if (!ok)
            ++l.violations;
        bump(l.mode[static_cast<unsigned>(mode)], stages, e2e);
        if (msg_class < l.cls.size())
            bump(l.cls[msg_class], stages, e2e);
    }

    /** Sum the per-shard lanes (shard-count invariant totals). */
    LatencyTotals fold() const;

    /**
     * Register the folded breakdown under "<prefix>." (scalars are
     * copied in, so the registry never points into scratch). The
     * class-bucket names come from @p class_name(index).
     */
    void registerStats(StatRegistry &reg, const std::string &prefix,
                       const char *(*class_name)(unsigned)) const;

  private:
    struct Lane
    {
        std::array<LatencyTotals::Bucket, lat::numModes> mode{};
        std::vector<LatencyTotals::Bucket> cls;
        std::uint64_t violations = 0;
    };

    static void
    bump(LatencyTotals::Bucket &b,
         const std::array<std::uint32_t, lat::numStages> &stages,
         std::uint64_t e2e)
    {
        ++b.count;
        b.e2e += e2e;
        for (unsigned s = 0; s < lat::numStages; ++s)
            b.stage[s] += stages[s];
    }

    bool _enabled = false;
    unsigned _numClasses = 0;
    std::vector<Lane> _lanes;
};

} // namespace sim

#endif // COHESION_SIM_LATENCY_ACCOUNTING_HH
