/**
 * @file
 * Intra-run parallel-simulation primitives: the thread-local shard
 * index, the deterministic cross-shard message router, and the
 * persistent per-run worker crew.
 *
 * The chip is partitioned by component (clusters, and L3 banks grouped
 * by DRAM channel) onto S shards, each with its own calendar queue.
 * Shards advance in lockstep *windows* bounded by conservative
 * lookahead over the fabric link latency; everything that crosses a
 * component boundary travels through the ShardRouter, whose canonical
 * (tick, source, sequence) delivery order is a pure function of the
 * simulation — not of the shard count or of host thread timing. That
 * single property is what makes `--shards N` bit-identical to
 * `--shards 1` (DESIGN.md §13).
 */

#ifndef COHESION_SIM_SHARD_HH
#define COHESION_SIM_SHARD_HH

#include <algorithm>
#include <barrier>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace sim {

/**
 * Shard executing on this thread. Components ask the chip for "their"
 * event queue; the chip answers with the queue of the executing shard,
 * which the window loop guarantees is the component's home shard.
 * Single-threaded phases (setup, harvest, tests) run with shard 0
 * unless a ShardGuard says otherwise.
 */
extern thread_local unsigned tlsShard;

/** RAII shard-context switch (used by Core::perform so kernel-worker
 *  coroutines started from the main thread schedule into their core's
 *  home queue, and by the chip during construction so components bind
 *  captured queue references to their home shard). */
class ShardGuard
{
  public:
    explicit ShardGuard(unsigned shard) : _prev(tlsShard)
    {
        tlsShard = shard;
    }

    ~ShardGuard() { tlsShard = _prev; }

    ShardGuard(const ShardGuard &) = delete;
    ShardGuard &operator=(const ShardGuard &) = delete;

  private:
    unsigned _prev;
};

/**
 * Deterministic cross-shard mailbox. Senders append to a per-(source
 * shard, destination shard) outbox row — each row is written by
 * exactly one thread, so posting is lock-free. At every window barrier
 * the orchestrator moves outboxes into per-destination inbox heaps
 * ordered by (tick, srcKey, srcSeq); at window start each shard
 * flushes the inbox messages due inside the window into its queue in
 * that canonical order. Because *all* component-to-component messages
 * take this path — at --shards 1 too — the schedule order of every
 * queue is identical for every shard count.
 */
class ShardRouter
{
  public:
    /** @p num_src_keys: one key per message source (clusters, banks,
     *  plus singleton sources like the runtime barrier); per-key
     *  sequence numbers break same-tick ties deterministically. */
    ShardRouter(unsigned num_shards, unsigned num_src_keys)
        : _numShards(num_shards),
          _seq(num_src_keys, 0),
          _outbox(std::size_t(num_shards) * num_shards),
          _inbox(num_shards)
    {}

    /** Post @p cb for delivery at @p when on @p dst_shard. Runs on the
     *  sender's executing shard; @p src_key must be owned by it. */
    void
    post(unsigned src_key, unsigned dst_shard, Tick when, Event cb)
    {
        _outbox[std::size_t(tlsShard) * _numShards + dst_shard].push_back(
            Msg{when, src_key, _seq[src_key]++, std::move(cb)});
    }

    /** Move every outbox into the destination inbox heaps. Window
     *  barrier only (single-threaded). */
    void collect();

    /** Earliest pending delivery for @p shard (maxTick when none). */
    Tick
    inboxHead(unsigned shard) const
    {
        return _inbox[shard].empty() ? maxTick : _inbox[shard].front().when;
    }

    /** Earliest pending delivery across all shards. */
    Tick minInboxHead() const;

    /** Schedule shard @p shard's messages with tick <= @p stop into
     *  @p eq in canonical order. Runs on @p shard at window start. */
    void flush(unsigned shard, Tick stop, EventQueue &eq);

    /** No messages anywhere (outboxes or inboxes): part of the
     *  quiescence condition. */
    bool empty() const;

  private:
    struct Msg
    {
        Tick when;
        unsigned srcKey;
        std::uint64_t srcSeq;
        Event cb;
    };

    /** Heap comparator: the (when, srcKey, srcSeq)-smallest in front. */
    struct Later
    {
        bool
        operator()(const Msg &a, const Msg &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.srcKey != b.srcKey)
                return a.srcKey > b.srcKey;
            return a.srcSeq > b.srcSeq;
        }
    };

    unsigned _numShards;
    std::vector<std::uint64_t> _seq;      ///< Per-source sequence.
    std::vector<std::vector<Msg>> _outbox; ///< [src * S + dst].
    std::vector<std::vector<Msg>> _inbox;  ///< [dst], min-heap (Later).
};

/**
 * The per-run worker pool: S-1 persistent threads plus the calling
 * thread as shard 0, synchronized by two std::barriers per window.
 * Workers adopt the orchestrator's log-capture sink (so a panic inside
 * a shard worker lands in the owning job's buffer, not raw stderr) and
 * join its host-profiler group (so host.* attribution covers shard
 * work). A worker exception is stashed and rethrown on the calling
 * thread, lowest shard first.
 */
class ShardCrew
{
  public:
    explicit ShardCrew(unsigned num_shards);
    ~ShardCrew();

    ShardCrew(const ShardCrew &) = delete;
    ShardCrew &operator=(const ShardCrew &) = delete;

    unsigned shards() const { return _numShards; }

    /** Run @p fn(shard) on every shard concurrently and wait. */
    void runWindow(const std::function<void(unsigned)> &fn);

  private:
    void workerMain(unsigned shard);

    unsigned _numShards;
    const void *_ownerGroup;
    const std::function<void(unsigned)> *_fn = nullptr;
    LogCapture *_sink = nullptr;
    bool _quit = false;
    std::barrier<> _start;
    std::barrier<> _end;
    std::vector<std::exception_ptr> _errors;
    std::vector<std::thread> _threads;
};

} // namespace sim

#endif // COHESION_SIM_SHARD_HH
