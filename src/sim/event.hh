/**
 * @file
 * Move-only callable used by the event queue. Replaces std::function
 * on the schedule->fire hot path: captures up to inlineCapacity bytes
 * are stored inside the object itself, and larger captures (e.g. a
 * full Request with its line payload) are placed in pooled, free-list
 * recycled nodes — so the steady-state schedule->fire cycle performs
 * no heap allocations in either case.
 *
 * Each thread carves nodes from its own slab pool, but a node may be
 * freed from any thread: sharded runs construct an event on one shard
 * and destroy it on the shard that fires it. Foreign frees are pushed
 * onto the owning pool's lock-free return stack and reclaimed by the
 * owner before it carves a new slab; a pool whose thread has exited is
 * kept alive until its last outstanding node comes home (see
 * event_queue.cc).
 */

#ifndef COHESION_SIM_EVENT_HH
#define COHESION_SIM_EVENT_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sim {

namespace detail {

/** Pooled allocation for event captures larger than the inline buffer.
 *  @p size must be the same in both calls for a given node. */
void *eventAlloc(std::size_t size);
void eventFree(void *p, std::size_t size) noexcept;

} // namespace detail

class Event
{
  public:
    /** Captures up to this many bytes are stored inline. */
    static constexpr std::size_t inlineCapacity = 48;

    Event() noexcept = default;

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, Event> &&
                                          std::is_invocable_r_v<void, D &>>>
    Event(F &&fn)
    {
        static_assert(alignof(D) <= alignof(std::max_align_t),
                      "over-aligned event captures are not supported");
        if constexpr (sizeof(D) <= inlineCapacity &&
                      std::is_nothrow_move_constructible_v<D>) {
            ::new (static_cast<void *>(_buf)) D(std::forward<F>(fn));
            _ops = &opsInline<D>;
        } else {
            void *node = detail::eventAlloc(sizeof(D));
            ::new (node) D(std::forward<F>(fn));
            heapPtr() = node;
            _ops = &opsHeap<D>;
        }
    }

    Event(Event &&other) noexcept { moveFrom(other); }

    Event &
    operator=(Event &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    ~Event() { reset(); }

    explicit operator bool() const noexcept { return _ops != nullptr; }

    /** Invoke the stored callable (must be non-empty). */
    void operator()() { _ops->invoke(*this); }

    /** Destroy the stored callable, leaving the event empty. */
    void
    reset() noexcept
    {
        if (_ops) {
            _ops->destroy(*this);
            _ops = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(Event &);
        /** Move-construct src's callable into dst (dst raw), then
         *  destroy src's; dst adopts src's ops. */
        void (*relocate)(Event &dst, Event &src) noexcept;
        void (*destroy)(Event &) noexcept;
    };

    void
    moveFrom(Event &other) noexcept
    {
        _ops = other._ops;
        if (_ops)
            _ops->relocate(*this, other);
        other._ops = nullptr;
    }

    void *&heapPtr() { return *reinterpret_cast<void **>(_buf); }

    template <typename D>
    D *
    inlineObj()
    {
        return std::launder(reinterpret_cast<D *>(_buf));
    }

    template <typename D>
    static void
    invokeInline(Event &e)
    {
        (*e.inlineObj<D>())();
    }

    template <typename D>
    static void
    relocateInline(Event &dst, Event &src) noexcept
    {
        ::new (static_cast<void *>(dst._buf))
            D(std::move(*src.inlineObj<D>()));
        src.inlineObj<D>()->~D();
    }

    template <typename D>
    static void
    destroyInline(Event &e) noexcept
    {
        e.inlineObj<D>()->~D();
    }

    template <typename D>
    static void
    invokeHeap(Event &e)
    {
        (*static_cast<D *>(e.heapPtr()))();
    }

    static void
    relocateHeap(Event &dst, Event &src) noexcept
    {
        dst.heapPtr() = src.heapPtr();
    }

    template <typename D>
    static void
    destroyHeap(Event &e) noexcept
    {
        auto *d = static_cast<D *>(e.heapPtr());
        d->~D();
        detail::eventFree(d, sizeof(D));
    }

    template <typename D>
    static constexpr Ops opsInline = {&invokeInline<D>, &relocateInline<D>,
                                      &destroyInline<D>};

    template <typename D>
    static constexpr Ops opsHeap = {&invokeHeap<D>, &relocateHeap,
                                    &destroyHeap<D>};

    alignas(std::max_align_t) unsigned char _buf[inlineCapacity];
    const Ops *_ops = nullptr;
};

} // namespace sim

#endif // COHESION_SIM_EVENT_HH
