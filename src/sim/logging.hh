/**
 * @file
 * Status and error reporting in the gem5 idiom: panic() for simulator
 * bugs, fatal() for user/configuration errors, warn()/inform() for
 * non-fatal status messages.
 *
 * Thread model: every message is routed through the calling thread's
 * log sink. By default that sink is stderr (writes are serialized by a
 * process-wide mutex so parallel sweep jobs cannot interleave partial
 * lines); a sweep job installs a LogCapture so everything the machine
 * prints — including the message of the panic/fatal that killed it —
 * lands in a private per-job buffer instead of the shared console.
 */

#ifndef COHESION_SIM_LOGGING_HH
#define COHESION_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace sim {

/** Concatenate arbitrary streamable arguments into a std::string. */
template <typename... Args>
std::string
cat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Abort with a message: something happened that is a simulator bug. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit with a message: the simulation cannot continue (user error). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to the thread's log sink; the simulation continues. */
void warnImpl(const std::string &msg);

/** Print an informational message to the thread's log sink. */
void informImpl(const std::string &msg);

/** Enable/disable inform() output (benches silence it). Process-wide. */
void setVerbose(bool verbose);
bool verbose();

/**
 * RAII redirection of this thread's warn()/inform()/panic()/fatal()
 * output into a private buffer. Captures nest (the innermost wins and
 * the previous sink is restored on destruction), and each simulator
 * thread owns its capture independently — this is what keeps the
 * failure dump of one parallel sweep job free of its siblings' chatter.
 */
class LogCapture
{
  public:
    LogCapture();
    ~LogCapture();

    LogCapture(const LogCapture &) = delete;
    LogCapture &operator=(const LogCapture &) = delete;

    /** Everything captured so far (owned by the capture). */
    std::string text() const { return _buf.str(); }

    /** True if any output was captured. */
    bool empty() const { return _buf.str().empty(); }

    /** Internal: sink hook used by the logging implementation. */
    void append(const std::string &line) { _buf << line; }

  private:
    std::ostringstream _buf;
    LogCapture *_prev; ///< Enclosing capture on this thread, if any.
};

} // namespace sim

#define panic(...) \
    ::sim::panicImpl(__FILE__, __LINE__, ::sim::cat(__VA_ARGS__))
#define fatal(...) \
    ::sim::fatalImpl(__FILE__, __LINE__, ::sim::cat(__VA_ARGS__))
#define warn(...) ::sim::warnImpl(::sim::cat(__VA_ARGS__))
#define inform(...) ::sim::informImpl(::sim::cat(__VA_ARGS__))

#define panic_if(cond, ...)                  \
    do {                                     \
        if (cond) { panic(__VA_ARGS__); }    \
    } while (0)

#define fatal_if(cond, ...)                  \
    do {                                     \
        if (cond) { fatal(__VA_ARGS__); }    \
    } while (0)

#endif // COHESION_SIM_LOGGING_HH
