/**
 * @file
 * Status and error reporting in the gem5 idiom: panic() for simulator
 * bugs, fatal() for user/configuration errors, warn()/inform() for
 * non-fatal status messages.
 *
 * Thread model: every message is routed through the calling thread's
 * log sink. By default that sink is stderr (writes are serialized by a
 * process-wide mutex so parallel sweep jobs cannot interleave partial
 * lines); a sweep job installs a LogCapture so everything the machine
 * prints — including the message of the panic/fatal that killed it —
 * lands in a private per-job buffer instead of the shared console.
 */

#ifndef COHESION_SIM_LOGGING_HH
#define COHESION_SIM_LOGGING_HH

#include <mutex>
#include <sstream>
#include <string>

namespace sim {

/** Concatenate arbitrary streamable arguments into a std::string. */
template <typename... Args>
std::string
cat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Abort with a message: something happened that is a simulator bug. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit with a message: the simulation cannot continue (user error). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to the thread's log sink; the simulation continues. */
void warnImpl(const std::string &msg);

/** Print an informational message to the thread's log sink. */
void informImpl(const std::string &msg);

/** Enable/disable inform() output (benches silence it). Process-wide. */
void setVerbose(bool verbose);
bool verbose();

/**
 * RAII redirection of this thread's warn()/inform()/panic()/fatal()
 * output into a private buffer. Captures nest (the innermost wins and
 * the previous sink is restored on destruction), and each simulator
 * thread owns its capture independently — this is what keeps the
 * failure dump of one parallel sweep job free of its siblings' chatter.
 */
class LogCapture
{
  public:
    LogCapture();
    ~LogCapture();

    LogCapture(const LogCapture &) = delete;
    LogCapture &operator=(const LogCapture &) = delete;

    /** Everything captured so far (owned by the capture). */
    std::string
    text() const
    {
        std::lock_guard<std::mutex> g(_mu);
        return _buf.str();
    }

    /** True if any output was captured. */
    bool
    empty() const
    {
        std::lock_guard<std::mutex> g(_mu);
        return _buf.str().empty();
    }

    /** Internal: sink hook used by the logging implementation. The
     *  mutex serializes appends from shard worker threads that adopted
     *  this capture (see LogSinkAdoption); it is uncontended on the
     *  common single-threaded path and append is cold anyway. */
    void
    append(const std::string &line)
    {
        std::lock_guard<std::mutex> g(_mu);
        _buf << line;
    }

    /** The innermost capture installed on this thread (null: stderr). */
    static LogCapture *current();

  private:
    mutable std::mutex _mu;
    std::ostringstream _buf;
    LogCapture *_prev; ///< Enclosing capture on this thread, if any.
};

/**
 * RAII: route this thread's log output to @p sink — a capture owned by
 * *another* thread (shard crew workers adopt the orchestrator's sink
 * for each window, so panic/fatal text from a worker lands in the
 * owning job's buffer instead of the shared console). A null sink is a
 * no-op adoption (output keeps going to this thread's own sink).
 */
class LogSinkAdoption
{
  public:
    explicit LogSinkAdoption(LogCapture *sink);
    ~LogSinkAdoption();

    LogSinkAdoption(const LogSinkAdoption &) = delete;
    LogSinkAdoption &operator=(const LogSinkAdoption &) = delete;

  private:
    LogCapture *_prev;
    bool _installed;
};

} // namespace sim

#define panic(...) \
    ::sim::panicImpl(__FILE__, __LINE__, ::sim::cat(__VA_ARGS__))
#define fatal(...) \
    ::sim::fatalImpl(__FILE__, __LINE__, ::sim::cat(__VA_ARGS__))
#define warn(...) ::sim::warnImpl(::sim::cat(__VA_ARGS__))
#define inform(...) ::sim::informImpl(::sim::cat(__VA_ARGS__))

#define panic_if(cond, ...)                  \
    do {                                     \
        if (cond) { panic(__VA_ARGS__); }    \
    } while (0)

#define fatal_if(cond, ...)                  \
    do {                                     \
        if (cond) { fatal(__VA_ARGS__); }    \
    } while (0)

#endif // COHESION_SIM_LOGGING_HH
