/**
 * @file
 * Status and error reporting in the gem5 idiom: panic() for simulator
 * bugs, fatal() for user/configuration errors, warn()/inform() for
 * non-fatal status messages.
 */

#ifndef COHESION_SIM_LOGGING_HH
#define COHESION_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace sim {

/** Concatenate arbitrary streamable arguments into a std::string. */
template <typename... Args>
std::string
cat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Abort with a message: something happened that is a simulator bug. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit with a message: the simulation cannot continue (user error). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr; the simulation continues. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);
bool verbose();

} // namespace sim

#define panic(...) \
    ::sim::panicImpl(__FILE__, __LINE__, ::sim::cat(__VA_ARGS__))
#define fatal(...) \
    ::sim::fatalImpl(__FILE__, __LINE__, ::sim::cat(__VA_ARGS__))
#define warn(...) ::sim::warnImpl(::sim::cat(__VA_ARGS__))
#define inform(...) ::sim::informImpl(::sim::cat(__VA_ARGS__))

#define panic_if(cond, ...)                  \
    do {                                     \
        if (cond) { panic(__VA_ARGS__); }    \
    } while (0)

#define fatal_if(cond, ...)                  \
    do {                                     \
        if (cond) { fatal(__VA_ARGS__); }    \
    } while (0)

#endif // COHESION_SIM_LOGGING_HH
