#include "sim/event_queue.hh"

#include <atomic>
#include <mutex>

namespace sim {

// --------------------------------------------------------------------
// Pooled storage for out-of-line event captures (see sim/event.hh).
//
// Each thread owns a Pool. A node remembers its owning pool in a
// header word, so a free from any thread returns it to the pool that
// carved it: same-thread frees take the plain free list, cross-thread
// frees push onto the owner's lock-free MPSC return stack, drained by
// the owner before it carves a new slab. Without the header, a node
// allocated on one shard thread and freed on another would land on the
// *freeing* thread's list while its slab belonged to the allocator —
// reuse after the allocator thread exits would be use-after-free.
//
// Pools of exited threads retire into a registry and are deleted once
// their live allocation count drains to zero (shard crew threads die
// before the chip's event queues do, so their in-flight events may be
// freed arbitrarily late).
// --------------------------------------------------------------------

namespace detail {

namespace {

// Power-of-two size classes from 64 B to 4 KiB; anything larger falls
// back to the global heap (no simulator capture is that big).
constexpr std::size_t minClassShift = 6;
constexpr std::size_t maxClassShift = 12;
constexpr unsigned numClasses = maxClassShift - minClassShift + 1;
constexpr unsigned slabNodes = 64;

/** Node header: free-list link plus owner backpointer. 16 bytes, so
 *  payloads keep max_align_t alignment (class sizes are multiples of
 *  16 and operator new returns 16-aligned slabs). */
struct FreeNode
{
    FreeNode *next;
};

struct Pool;

struct NodeHeader
{
    FreeNode link;
    Pool *owner;
};

constexpr std::size_t headerBytes = sizeof(NodeHeader);
static_assert(headerBytes == 16 && headerBytes % alignof(std::max_align_t) == 0);

struct Pool
{
    /** Owner-thread free lists (no synchronization needed). */
    FreeNode *free[numClasses] = {};
    /** Cross-thread return stacks: CAS-pushed by foreign threads,
     *  exchange-drained by the owner. */
    std::atomic<FreeNode *> remote[numClasses] = {};
    std::vector<void *> slabs;
    /** Outstanding allocations; gates reaping of retired pools. */
    std::atomic<std::size_t> live{0};

    ~Pool()
    {
        for (void *s : slabs)
            ::operator delete(s);
    }
};

struct PoolRegistry
{
    std::mutex mu;
    std::vector<Pool *> retired;
};

PoolRegistry &
poolRegistry()
{
    // Leaked intentionally: thread-exit order vs static destruction
    // order is unknowable, and the registry must outlive both.
    static PoolRegistry *r = new PoolRegistry;
    return *r;
}

/** Delete retired pools whose last in-flight node has been freed. */
void
reapRetired()
{
    PoolRegistry &r = poolRegistry();
    std::lock_guard<std::mutex> g(r.mu);
    std::erase_if(r.retired, [](Pool *p) {
        if (p->live.load(std::memory_order_acquire) != 0)
            return false;
        delete p;
        return true;
    });
}

struct PoolHandle
{
    Pool *p;

    PoolHandle() : p(new Pool)
    {
        reapRetired();
    }

    ~PoolHandle()
    {
        if (p->live.load(std::memory_order_acquire) == 0) {
            delete p;
        } else {
            PoolRegistry &r = poolRegistry();
            std::lock_guard<std::mutex> g(r.mu);
            r.retired.push_back(p);
        }
        reapRetired();
    }
};

Pool &
pool()
{
    static thread_local PoolHandle h;
    return *h.p;
}

unsigned
classIndex(std::size_t size)
{
    unsigned shift = minClassShift;
    while ((std::size_t(1) << shift) < size)
        ++shift;
    return shift - minClassShift;
}

NodeHeader *
headerOf(void *payload)
{
    return reinterpret_cast<NodeHeader *>(
        static_cast<unsigned char *>(payload) - headerBytes);
}

} // namespace

void *
eventAlloc(std::size_t size)
{
    if (size > (std::size_t(1) << maxClassShift))
        return ::operator new(size);
    unsigned ci = classIndex(size);
    Pool &p = pool();
    if (!p.free[ci]) {
        // Drain nodes other threads returned to us (the chain is
        // already linked through the headers' next pointers).
        p.free[ci] = p.remote[ci].exchange(nullptr,
                                           std::memory_order_acquire);
    }
    if (!p.free[ci]) {
        std::size_t stride =
            (std::size_t(1) << (ci + minClassShift)) + headerBytes;
        auto *slab =
            static_cast<unsigned char *>(::operator new(stride * slabNodes));
        p.slabs.push_back(slab);
        for (unsigned i = 0; i < slabNodes; ++i) {
            auto *h = reinterpret_cast<NodeHeader *>(slab + i * stride);
            h->owner = &p;
            h->link.next = p.free[ci];
            p.free[ci] = &h->link;
        }
    }
    FreeNode *n = p.free[ci];
    p.free[ci] = n->next;
    p.live.fetch_add(1, std::memory_order_relaxed);
    return reinterpret_cast<unsigned char *>(n) + headerBytes;
}

void
eventFree(void *ptr, std::size_t size) noexcept
{
    if (size > (std::size_t(1) << maxClassShift)) {
        ::operator delete(ptr);
        return;
    }
    unsigned ci = classIndex(size);
    NodeHeader *h = headerOf(ptr);
    Pool *owner = h->owner;
    if (owner == &pool()) {
        h->link.next = owner->free[ci];
        owner->free[ci] = &h->link;
        owner->live.fetch_sub(1, std::memory_order_relaxed);
        return;
    }
    // Foreign free: push onto the owner's return stack. The release
    // CAS publishes the link write; the owner's acquire drain (and the
    // reaper's acquire load of live) observe the full node.
    FreeNode *head = owner->remote[ci].load(std::memory_order_relaxed);
    do {
        h->link.next = head;
    } while (!owner->remote[ci].compare_exchange_weak(
        head, &h->link, std::memory_order_release,
        std::memory_order_relaxed));
    owner->live.fetch_sub(1, std::memory_order_release);
}

} // namespace detail

// --------------------------------------------------------------------
// EventQueue
// --------------------------------------------------------------------

std::size_t
EventQueue::fireBucket(Tick t, std::size_t max_events)
{
    std::size_t idx = t & bucketMask;
    Bucket &b = _buckets[idx];
    std::size_t fired = 0;
    // Re-read size() every iteration: a firing event may append more
    // same-tick events (and grow/reallocate the vector).
    while (b.head < b.events.size() && fired < max_events) {
        Event ev = std::move(b.events[b.head++]);
        if (b.head == b.events.size()) {
            // Reset before invoking so a same-tick reschedule from
            // inside the callback lands in a clean bucket.
            b.events.clear();
            b.head = 0;
            _occupied[idx >> 6] &= ~(std::uint64_t(1) << (idx & 63));
        }
        --_size;
        ++_eventsRun;
        ++fired;
        ev();
    }
    return fired;
}

void
EventQueue::runOne()
{
    panic_if(empty(), "runOne on empty event queue");
    Tick t = nextEventTick();
    _now = t;
    _lastFired = t;
    if (t > _base)
        rebase(t);
    fireBucket(t, 1);
}

bool
EventQueue::run(Tick limit)
{
    while (_size) {
        Tick t = nextEventTick();
        if (t > limit) {
            _now = limit;
            return false;
        }
        _now = t;
        _lastFired = t;
        if (t > _base)
            rebase(t);
        fireBucket(t, ~std::size_t(0));
    }
    return true;
}

} // namespace sim
