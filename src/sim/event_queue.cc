#include "sim/event_queue.hh"

namespace sim {

void
EventQueue::runOne()
{
    panic_if(_queue.empty(), "runOne on empty event queue");
    // std::priority_queue::top() is const; move out via const_cast of the
    // entry we are about to pop. The queue invariant is unaffected since
    // the entry is removed immediately.
    auto &top = const_cast<Entry &>(_queue.top());
    Tick when = top.when;
    Callback cb = std::move(top.cb);
    _queue.pop();
    _now = when;
    ++_eventsRun;
    cb();
}

bool
EventQueue::run(Tick limit)
{
    while (!_queue.empty()) {
        if (_queue.top().when > limit) {
            _now = limit;
            return false;
        }
        runOne();
    }
    return true;
}

} // namespace sim
