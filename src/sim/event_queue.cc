#include "sim/event_queue.hh"

namespace sim {

// --------------------------------------------------------------------
// Pooled storage for out-of-line event captures (see sim/event.hh).
// --------------------------------------------------------------------

namespace detail {

namespace {

// Power-of-two size classes from 64 B to 4 KiB; anything larger falls
// back to the global heap (no simulator capture is that big).
constexpr std::size_t minClassShift = 6;
constexpr std::size_t maxClassShift = 12;
constexpr unsigned numClasses = maxClassShift - minClassShift + 1;
constexpr unsigned slabNodes = 64;

struct FreeNode
{
    FreeNode *next;
};

struct Pool
{
    FreeNode *free[numClasses] = {};
    std::vector<void *> slabs;

    ~Pool()
    {
        for (void *s : slabs)
            ::operator delete(s);
    }
};

Pool &
pool()
{
    static thread_local Pool p;
    return p;
}

unsigned
classIndex(std::size_t size)
{
    unsigned shift = minClassShift;
    while ((std::size_t(1) << shift) < size)
        ++shift;
    return shift - minClassShift;
}

} // namespace

void *
eventAlloc(std::size_t size)
{
    if (size > (std::size_t(1) << maxClassShift))
        return ::operator new(size);
    unsigned ci = classIndex(size);
    Pool &p = pool();
    if (!p.free[ci]) {
        std::size_t node = std::size_t(1) << (ci + minClassShift);
        auto *slab =
            static_cast<unsigned char *>(::operator new(node * slabNodes));
        p.slabs.push_back(slab);
        for (unsigned i = 0; i < slabNodes; ++i) {
            auto *n = reinterpret_cast<FreeNode *>(slab + i * node);
            n->next = p.free[ci];
            p.free[ci] = n;
        }
    }
    FreeNode *n = p.free[ci];
    p.free[ci] = n->next;
    return n;
}

void
eventFree(void *ptr, std::size_t size) noexcept
{
    if (size > (std::size_t(1) << maxClassShift)) {
        ::operator delete(ptr);
        return;
    }
    unsigned ci = classIndex(size);
    Pool &p = pool();
    auto *n = static_cast<FreeNode *>(ptr);
    n->next = p.free[ci];
    p.free[ci] = n;
}

} // namespace detail

// --------------------------------------------------------------------
// EventQueue
// --------------------------------------------------------------------

std::size_t
EventQueue::fireBucket(Tick t, std::size_t max_events)
{
    std::size_t idx = t & bucketMask;
    Bucket &b = _buckets[idx];
    std::size_t fired = 0;
    // Re-read size() every iteration: a firing event may append more
    // same-tick events (and grow/reallocate the vector).
    while (b.head < b.events.size() && fired < max_events) {
        Event ev = std::move(b.events[b.head++]);
        if (b.head == b.events.size()) {
            // Reset before invoking so a same-tick reschedule from
            // inside the callback lands in a clean bucket.
            b.events.clear();
            b.head = 0;
            _occupied[idx >> 6] &= ~(std::uint64_t(1) << (idx & 63));
        }
        --_size;
        ++_eventsRun;
        ++fired;
        ev();
    }
    return fired;
}

void
EventQueue::runOne()
{
    panic_if(empty(), "runOne on empty event queue");
    Tick t = nextEventTick();
    _now = t;
    if (t > _base)
        rebase(t);
    fireBucket(t, 1);
}

bool
EventQueue::run(Tick limit)
{
    while (_size) {
        Tick t = nextEventTick();
        if (t > limit) {
            _now = limit;
            return false;
        }
        _now = t;
        if (t > _base)
            rebase(t);
        fireBucket(t, ~std::size_t(0));
    }
    return true;
}

} // namespace sim
