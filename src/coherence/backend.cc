#include "coherence/backend.hh"

#include <stdexcept>

#include "coherence/backend_dls.hh"
#include "coherence/backend_msi.hh"
#include "coherence/directory.hh"
#include "sim/logging.hh"

namespace coherence {

const char *
invariantName(Invariant i)
{
    switch (i) {
      case Invariant::DirtySubsetValid:
        return "dirty-subset-valid";
      case Invariant::IncoherentXorHwstate:
        return "incoherent-xor-hwstate";
      case Invariant::ValidLineStateless:
        return "valid-line-stateless";
      case Invariant::DirtyNeedsOwner:
        return "dirty-needs-owner";
      case Invariant::ModeDomain:
        return "mode-domain";
      case Invariant::L2WithoutDirectory:
        return "l2-without-directory";
      case Invariant::SharerMissing:
        return "sharer-missing";
      case Invariant::StateMismatch:
        return "state-mismatch";
      case Invariant::DomainMismatch:
        return "domain-mismatch";
      case Invariant::OwnerExclusive:
        return "owner-exclusive";
      case Invariant::DirInSwccMode:
        return "dir-in-swcc-mode";
      case Invariant::DirInvalidState:
        return "dir-invalid-state";
      case Invariant::DirEmptySharers:
        return "dir-empty-sharers";
      case Invariant::DirMultiOwner:
        return "dir-multi-owner";
      case Invariant::DirCoversSwcc:
        return "dir-covers-swcc";
      case Invariant::DlsCleanShared:
        return "dls-clean-shared";
      case Invariant::Count:
        break;
    }
    panic("bad invariant id ", static_cast<unsigned>(i));
}

namespace {

constexpr std::uint32_t kMsiMask =
    kAllInvariants & ~invariantBit(Invariant::DlsCleanShared);
constexpr std::uint32_t kDlsMask = kAllInvariants & ~kDirectoryInvariants;

struct BackendInfo
{
    const char *name;
    BackendTraits traits;
};

// Registration order is display order ("--list-backends", errors).
const BackendInfo kRegistry[] = {
    {"msi-fullmap", {false, false, kMsiMask}},
    {"dir4b", {false, false, kMsiMask}},
    {"dls", {true, true, kDlsMask}},
};

} // namespace

const std::vector<std::string> &
backendNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const BackendInfo &b : kRegistry)
            v.emplace_back(b.name);
        return v;
    }();
    return names;
}

bool
backendKnown(const std::string &name)
{
    return backendTraits(name) != nullptr;
}

const BackendTraits *
backendTraits(const std::string &name)
{
    for (const BackendInfo &b : kRegistry) {
        if (name == b.name)
            return &b.traits;
    }
    return nullptr;
}

std::string
backendListString()
{
    std::string out;
    for (const BackendInfo &b : kRegistry) {
        if (!out.empty())
            out += ", ";
        out += b.name;
    }
    return out;
}

std::string
resolveBackendName(const std::string &requested,
                   const DirectoryConfig &dir)
{
    if (requested.empty()) {
        return dir.sharerKind == SharerKind::LimitedPtr ? "dir4b"
                                                        : "msi-fullmap";
    }
    if (!backendKnown(requested)) {
        throw std::runtime_error("unknown coherence backend '" + requested +
                                 "' (registered: " + backendListString() +
                                 ")");
    }
    return requested;
}

std::unique_ptr<Backend>
makeBackend(const std::string &name, arch::L3Bank &bank)
{
    if (name == "msi-fullmap" || name == "dir4b")
        return std::make_unique<MsiBackend>(name, bank);
    if (name == "dls")
        return std::make_unique<DlsBackend>(bank);
    throw std::runtime_error("unknown coherence backend '" + name +
                             "' (registered: " + backendListString() + ")");
}

} // namespace coherence
