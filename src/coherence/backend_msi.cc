#include "coherence/backend_msi.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "arch/chip.hh"
#include "arch/l3bank.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace coherence {

namespace {

using FR = sim::FlightRecorder;

} // namespace

using arch::AckGate;
using arch::Backoff;
using arch::CoherenceMode;
using arch::Delay;
using arch::Held;
using arch::ProbeResult;
using arch::ProbeType;
using arch::ReqType;
using arch::Request;
using arch::Response;

MsiBackend::MsiBackend(std::string name, arch::L3Bank &bank)
    : _name(std::move(name)), _traits(*backendTraits(_name)), _bank(bank),
      _dir(bank._chip.config().directory, bank._chip.config().numClusters)
{}

sim::CoTask
MsiBackend::read(Request req, sim::lat::Cursor *lat)
{
    const mem::Addr base = mem::lineBase(req.addr);
    const std::uint32_t key = mem::lineNumber(base);
    co_await _bank._locks.acquire(key);
    Held held(_bank._locks, key);

    arch::Chip &chip = _bank._chip;
    sim::EventQueue &eq = chip.eq();
    const CoherenceMode mode = chip.config().mode;
    if (lat)
        lat->mark(sim::lat::Stage::BankLock, eq.now());

    // Directory lookup (one cycle through the directory port).
    sim::Tick dstart = std::max(eq.now(), _dirPortFree);
    _dirPortFree = dstart + 1;
    co_await Delay{eq, dstart + 1};
    if (lat)
        lat->mark(sim::lat::Stage::Dir, eq.now());

    DirEntry *e =
        mode == CoherenceMode::SWccOnly ? nullptr : _dir.find(base);

    Response resp;
    resp.type = req.type;
    resp.core = req.core;
    resp.addr = base;

    Backoff bo;
    while (e && (e->state == cache::CohState::Modified ||
                 e->state == cache::CohState::Exclusive)) {
        if (e->sharers.contains(req.cluster) &&
            e->sharers.count() == 1 && !e->sharers.broadcast()) {
            // The owner itself is filling invalid words of a
            // partially-valid line (post-MakeOwner): serve from
            // the L3 and keep its exclusive state.
            sim::Tick dram = 0;
            auto [line, t] =
                _bank.l3AccessPrep(base, false, eq.now(), &dram);
            resp.grant = e->state;
            resp.data = line->data;
            co_await Delay{eq, t};
            if (lat)
                lat->markAccess(eq.now(), dram);
            _bank.respond(req, resp, mem::wordsPerLine, lat);
            co_return;
        }
        // Downgrade the owner; its dirty data moves to the L3.
        std::vector<unsigned> targets = e->sharers.probeTargets();
        std::vector<std::pair<unsigned, ProbeResult>> results;
        AckGate gate;
        gate.expect(targets.size());
        _bank.sendProbes(targets, ProbeType::Downgrade, base, req.msgId,
                         &results, &gate);
        co_await gate.wait();
        if (lat)
            lat->mark(sim::lat::Stage::Probe, eq.now());
        bool any_found = false;
        for (const auto &[cl, r] : results) {
            any_found |= r.found;
            if (r.dirty)
                co_await _bank.mergeIntoL3(base, r.data, r.dirtyMask);
        }
        if (lat)
            lat->mark(sim::lat::Stage::Service, eq.now());
        if (!any_found) {
            // The owner evicted concurrently; wait for its in-flight
            // WrRel to land (it needs the line lock) and re-evaluate.
            _bank._locks.release(key);
            co_await Delay{eq, eq.now() + bo.next()};
            co_await _bank._locks.acquire(key);
            if (lat)
                lat->mark(sim::lat::Stage::BankLock, eq.now());
            e = _dir.find(base);
            continue;
        }
        e = _dir.find(base);
        panic_if(!e, "directory entry vanished during downgrade");
        e->state = cache::CohState::Shared;
        chip.rec(FR::Ev::DirState, FR::compBank(_bank._id), base, req.msgId,
                 static_cast<std::uint8_t>(e->state), e->sharers.count());
        break;
    }
    if (e) {
        e->sharers.add(req.cluster);
        chip.rec(FR::Ev::DirState, FR::compBank(_bank._id), base, req.msgId,
                 static_cast<std::uint8_t>(e->state), e->sharers.count());
        sim::Tick dram = 0;
        auto [line, t] = _bank.l3AccessPrep(base, false, eq.now(), &dram);
        resp.grant = cache::CohState::Shared;
        resp.data = line->data;
        co_await Delay{eq, t};
        if (lat)
            lat->markAccess(eq.now(), dram);
        _bank.respond(req, resp, mem::wordsPerLine, lat);
        co_return;
    }

    // Directory miss: decide the coherence domain.
    bool swcc = false;
    if (mode == CoherenceMode::SWccOnly) {
        swcc = true;
    } else if (mode == CoherenceMode::Cohesion) {
        co_await _bank.lookupDomain(base, req.msgId, &swcc);
        if (lat)
            lat->mark(sim::lat::Stage::Dir, eq.now());
    }

    if (swcc) {
        sim::Tick dram = 0;
        auto [line, t] = _bank.l3AccessPrep(base, false, eq.now(), &dram);
        resp.incoherent = true;
        resp.data = line->data;
        co_await Delay{eq, t};
        if (lat)
            lat->markAccess(eq.now(), dram);
        _bank.respond(req, resp, mem::wordsPerLine, lat);
        co_return;
    }

    co_await makeRoom(base, req.msgId, lat);
    DirEntry &ne = _dir.insert(base);
    // MESI extension: a sole reader takes Exclusive and can later
    // upgrade to Modified silently; MSI (the paper) grants Shared.
    ne.state = chip.config().useMesi ? cache::CohState::Exclusive
                                     : cache::CohState::Shared;
    ne.sharers.add(req.cluster);
    chip.rec(FR::Ev::DirInsert, FR::compBank(_bank._id), base, req.msgId,
             static_cast<std::uint8_t>(ne.state), req.cluster);
    sim::Tick dram = 0;
    auto [line, t] = _bank.l3AccessPrep(base, false, eq.now(), &dram);
    resp.grant = ne.state;
    resp.data = line->data;
    co_await Delay{eq, t};
    if (lat)
        lat->markAccess(eq.now(), dram);
    _bank.respond(req, resp, mem::wordsPerLine, lat);
}

sim::CoTask
MsiBackend::write(Request req, sim::lat::Cursor *lat)
{
    const mem::Addr base = mem::lineBase(req.addr);
    const std::uint32_t key = mem::lineNumber(base);
    co_await _bank._locks.acquire(key);
    Held held(_bank._locks, key);

    arch::Chip &chip = _bank._chip;
    sim::EventQueue &eq = chip.eq();
    const CoherenceMode mode = chip.config().mode;
    if (lat)
        lat->mark(sim::lat::Stage::BankLock, eq.now());

    sim::Tick dstart = std::max(eq.now(), _dirPortFree);
    _dirPortFree = dstart + 1;
    co_await Delay{eq, dstart + 1};
    if (lat)
        lat->mark(sim::lat::Stage::Dir, eq.now());

    DirEntry *e =
        mode == CoherenceMode::SWccOnly ? nullptr : _dir.find(base);

    Response resp;
    resp.type = ReqType::Write;
    resp.core = req.core;
    resp.addr = base;

    if (!e) {
        bool swcc = false;
        if (mode == CoherenceMode::SWccOnly) {
            swcc = true;
        } else if (mode == CoherenceMode::Cohesion) {
            co_await _bank.lookupDomain(base, req.msgId, &swcc);
            if (lat)
                lat->mark(sim::lat::Stage::Dir, eq.now());
        }
        if (swcc) {
            // SWcc fill: the cluster allocates with the incoherent bit.
            sim::Tick dram = 0;
            auto [line, t] =
                _bank.l3AccessPrep(base, false, eq.now(), &dram);
            resp.incoherent = true;
            resp.data = line->data;
            co_await Delay{eq, t};
            if (lat)
                lat->markAccess(eq.now(), dram);
            _bank.respond(req, resp, mem::wordsPerLine, lat);
            co_return;
        }
        co_await makeRoom(base, req.msgId, lat);
        DirEntry &ne = _dir.insert(base);
        ne.state = cache::CohState::Modified;
        ne.sharers.add(req.cluster);
        chip.rec(FR::Ev::DirInsert, FR::compBank(_bank._id), base,
                 req.msgId, static_cast<std::uint8_t>(ne.state),
                 req.cluster);
        sim::Tick dram = 0;
        auto [line, t] = _bank.l3AccessPrep(base, false, eq.now(), &dram);
        resp.grant = cache::CohState::Modified;
        resp.data = line->data;
        co_await Delay{eq, t};
        if (lat)
            lat->markAccess(eq.now(), dram);
        _bank.respond(req, resp, mem::wordsPerLine, lat);
        co_return;
    }

    // Invalidate every other holder; collect a dirty owner's data.
    Backoff bo;
    while (e) {
        std::vector<unsigned> targets;
        for (unsigned cl : e->sharers.probeTargets()) {
            if (cl != req.cluster)
                targets.push_back(cl);
        }
        if (targets.empty())
            break;
        bool expect_dirty = e->state == cache::CohState::Modified ||
                            e->state == cache::CohState::Exclusive;
        ProbeType pt = expect_dirty ? ProbeType::WritebackInvalidate
                                    : ProbeType::Invalidate;
        std::vector<std::pair<unsigned, ProbeResult>> results;
        AckGate gate;
        gate.expect(targets.size());
        _bank.sendProbes(targets, pt, base, req.msgId, &results, &gate);
        co_await gate.wait();
        if (lat)
            lat->mark(sim::lat::Stage::Probe, eq.now());
        bool any_found = false;
        for (const auto &[cl, r] : results) {
            any_found |= r.found;
            if (r.dirty)
                co_await _bank.mergeIntoL3(base, r.data, r.dirtyMask);
        }
        if (lat)
            lat->mark(sim::lat::Stage::Service, eq.now());
        if (expect_dirty && !any_found) {
            // Owner evicted concurrently: wait for its WrRel.
            _bank._locks.release(key);
            co_await Delay{eq, eq.now() + bo.next()};
            co_await _bank._locks.acquire(key);
            if (lat)
                lat->mark(sim::lat::Stage::BankLock, eq.now());
            e = _dir.find(base);
            continue;
        }
        e = _dir.find(base);
        panic_if(!e, "directory entry vanished during invalidation");
        break;
    }
    if (!e) {
        // The entry was erased while we waited for an in-flight WrRel.
        // A concurrent HWcc=>SWcc transition may also have changed the
        // line's domain in that window, so the domain decision must be
        // redone — blindly re-inserting would resurrect an HWcc entry
        // for a now-SWcc line.
        bool swcc = false;
        if (mode == CoherenceMode::Cohesion) {
            co_await _bank.lookupDomain(base, req.msgId, &swcc);
            if (lat)
                lat->mark(sim::lat::Stage::Dir, eq.now());
        }
        if (swcc) {
            sim::Tick dram = 0;
            auto [line, t] =
                _bank.l3AccessPrep(base, false, eq.now(), &dram);
            resp.incoherent = true;
            resp.data = line->data;
            co_await Delay{eq, t};
            if (lat)
                lat->markAccess(eq.now(), dram);
            _bank.respond(req, resp, mem::wordsPerLine, lat);
            co_return;
        }
        co_await makeRoom(base, req.msgId, lat);
        e = &_dir.insert(base);
        chip.rec(FR::Ev::DirInsert, FR::compBank(_bank._id), base,
                 req.msgId,
                 static_cast<std::uint8_t>(cache::CohState::Modified),
                 req.cluster);
    }
    e->sharers.clear();
    e->sharers.add(req.cluster);
    e->state = cache::CohState::Modified;
    chip.rec(FR::Ev::DirState, FR::compBank(_bank._id), base, req.msgId,
             static_cast<std::uint8_t>(e->state), e->sharers.count());
    sim::Tick dram = 0;
    auto [line, t] = _bank.l3AccessPrep(base, false, eq.now(), &dram);
    resp.grant = cache::CohState::Modified;
    resp.data = line->data;
    co_await Delay{eq, t};
    if (lat)
        lat->markAccess(eq.now(), dram);
    _bank.respond(req, resp, mem::wordsPerLine, lat);
}

sim::CoTask
MsiBackend::recallForAtomic(mem::Addr base, std::uint32_t txn,
                            std::uint32_t lock_key, sim::lat::Cursor *lat)
{
    arch::Chip &chip = _bank._chip;
    sim::EventQueue &eq = chip.eq();
    sim::Tick dstart = std::max(eq.now(), _dirPortFree);
    _dirPortFree = dstart + 1;
    co_await Delay{eq, dstart + 1};
    if (lat)
        lat->mark(sim::lat::Stage::Dir, eq.now());
    if (_dir.find(base)) {
        // Cached HWcc copies must be recalled so the RMW is
        // globally ordered.
        co_await recallEntryRetry(base, txn, lock_key, lat);
        if (_dir.find(base)) {
            chip.rec(FR::Ev::DirErase, FR::compBank(_bank._id), base, txn);
            _dir.erase(base);
        }
    }
}

sim::CoTask
MsiBackend::flushLine(mem::Addr base, std::uint32_t txn,
                      std::uint32_t lock_key, sim::lat::Cursor *lat)
{
    arch::Chip &chip = _bank._chip;
    // HWcc => SWcc (Fig. 7a): flush any directory state.
    if (_dir.find(base)) {
        chip.rec(FR::Ev::TransStep, FR::compBank(_bank._id), base, txn,
                 static_cast<std::uint8_t>(FR::Step::Recall));
        co_await recallEntryRetry(base, txn, lock_key, lat);
        if (_dir.find(base)) {
            TRACE(chip.tracer(), sim::Category::Transition, "bank",
                  _bank._id, ": erase 0x", std::hex, base);
            chip.rec(FR::Ev::DirErase, FR::compBank(_bank._id), base, txn);
            _dir.erase(base);
        }
    }
}

sim::CoTask
MsiBackend::adoptLine(mem::Addr base, std::uint32_t txn,
                      const std::vector<unsigned> &clean_sharers,
                      const std::vector<unsigned> &dirty_holders,
                      bool overlap, sim::lat::Cursor *lat)
{
    arch::Chip &chip = _bank._chip;
    const auto step = [&](FR::Step s, std::uint32_t b = 0) {
        chip.rec(FR::Ev::TransStep, FR::compBank(_bank._id), base, txn,
                 static_cast<std::uint8_t>(s), b);
    };

    if (dirty_holders.empty()) {
        // Cases 1b/2b: clean copies (if any) joined HWcc as sharers
        // during the query; allocate the matching entry.
        if (!clean_sharers.empty()) {
            co_await makeRoom(base, txn, lat);
            DirEntry &e = _dir.insert(base);
            e.state = cache::CohState::Shared;
            for (unsigned cl : clean_sharers) {
                e.sharers.add(cl);
                step(FR::Step::CleanSharer, cl);
            }
            chip.rec(FR::Ev::DirInsert, FR::compBank(_bank._id), base, txn,
                     static_cast<std::uint8_t>(e.state),
                     static_cast<std::uint32_t>(clean_sharers.size()));
        }
        co_return;
    }

    if (dirty_holders.size() == 1 && clean_sharers.empty()) {
        // Case 3b: single writer, no readers — upgrade in place, no
        // writeback ("saving bandwidth").
        step(FR::Step::MakeOwner, dirty_holders.front());
        std::vector<std::pair<unsigned, ProbeResult>> r2;
        AckGate g2;
        g2.expect(1);
        _bank.sendProbes({dirty_holders.front()}, ProbeType::MakeOwner,
                         base, txn, &r2, &g2);
        co_await g2.wait();
        if (lat)
            lat->mark(sim::lat::Stage::Probe, chip.eq().now());
        if (r2.front().second.found && r2.front().second.dirty) {
            co_await makeRoom(base, txn, lat);
            DirEntry &e = _dir.insert(base);
            e.state = cache::CohState::Modified;
            e.sharers.add(dirty_holders.front());
            chip.rec(FR::Ev::DirInsert, FR::compBank(_bank._id), base, txn,
                     static_cast<std::uint8_t>(e.state),
                     dirty_holders.front());
        }
        co_return;
    }

    // Cases 4b/5b: invalidate the readers, write back every writer,
    // merge disjoint write sets at the L3. Overlapping write sets are
    // the Fig. 7b case 5b hardware race (last merge wins).
    if (overlap) {
        _bank._mergeConflicts.inc();
        step(FR::Step::Conflict,
             static_cast<std::uint32_t>(dirty_holders.size()));
    }
    for (unsigned cl : clean_sharers)
        step(FR::Step::Invalidate, cl);
    for (unsigned cl : dirty_holders)
        step(FR::Step::WritebackInv, cl);
    std::vector<std::pair<unsigned, ProbeResult>> r2;
    AckGate g2;
    g2.expect(clean_sharers.size() + dirty_holders.size());
    _bank.sendProbes(clean_sharers, ProbeType::Invalidate, base, txn, &r2,
                     &g2);
    _bank.sendProbes(dirty_holders, ProbeType::WritebackInvalidate, base,
                     txn, &r2, &g2);
    co_await g2.wait();
    if (lat)
        lat->mark(sim::lat::Stage::Probe, chip.eq().now());
    for (const auto &[cl, r] : r2) {
        if (r.dirty) {
            step(FR::Step::Merge, cl);
            co_await _bank.mergeIntoL3(base, r.data, r.dirtyMask);
        }
    }
    if (lat)
        lat->mark(sim::lat::Stage::Service, chip.eq().now());
}

void
MsiBackend::removeSharer(mem::Addr base, unsigned cluster,
                         std::uint32_t txn)
{
    if (DirEntry *e = _dir.find(base)) {
        e->sharers.remove(cluster);
        if (e->sharers.empty()) {
            _bank._chip.rec(FR::Ev::DirErase, FR::compBank(_bank._id),
                            base, txn);
            _dir.erase(base);
        }
    }
}

void
MsiBackend::writeRelease(const Request &req)
{
    removeSharer(mem::lineBase(req.addr), req.cluster, req.msgId);
}

void
MsiBackend::readRelease(const Request &req)
{
    removeSharer(mem::lineBase(req.addr), req.cluster, req.msgId);
}

sim::CoTask
MsiBackend::recallEntry(mem::Addr base, std::uint32_t txn,
                        bool *incomplete, sim::lat::Cursor *lat)
{
    *incomplete = false;
    DirEntry *e = _dir.find(base);
    if (!e || e->sharers.empty())
        co_return;

    bool modified = e->state == cache::CohState::Modified ||
                    e->state == cache::CohState::Exclusive;
    std::vector<unsigned> targets = e->sharers.probeTargets();
    ProbeType pt = modified ? ProbeType::WritebackInvalidate
                            : ProbeType::Invalidate;
    std::vector<std::pair<unsigned, ProbeResult>> results;
    AckGate gate;
    gate.expect(targets.size());
    _bank.sendProbes(targets, pt, base, txn, &results, &gate);
    co_await gate.wait();
    if (lat)
        lat->mark(sim::lat::Stage::Probe, _bank._chip.eq().now());

    bool any_found = false;
    for (const auto &[cl, r] : results) {
        any_found |= r.found;
        if (r.dirty)
            co_await _bank.mergeIntoL3(base, r.data, r.dirtyMask);
    }
    if (lat)
        lat->mark(sim::lat::Stage::Service, _bank._chip.eq().now());
    if (modified && !any_found) {
        // The owner evicted concurrently: its WrRel carries the dirty
        // data and is in flight to this bank. The caller must let it
        // acquire the line and merge before retrying.
        *incomplete = true;
    }
}

sim::CoTask
MsiBackend::recallEntryRetry(mem::Addr base, std::uint32_t txn,
                             std::uint32_t lock_key,
                             sim::lat::Cursor *lat)
{
    Backoff bo;
    while (true) {
        bool incomplete = false;
        co_await recallEntry(base, txn, &incomplete, lat);
        if (!incomplete)
            co_return;
        _bank._locks.release(lock_key);
        co_await Delay{_bank._chip.eq(),
                       _bank._chip.eq().now() + bo.next()};
        co_await _bank._locks.acquire(lock_key);
        if (lat)
            lat->mark(sim::lat::Stage::BankLock, _bank._chip.eq().now());
    }
}

sim::CoTask
MsiBackend::makeRoom(mem::Addr base, std::uint32_t txn,
                     sim::lat::Cursor *lat)
{
    base = mem::lineBase(base);
    Backoff bo;
    while (_dir.needsVictim(base)) {
        DirEntry *v = _dir.victimExcluding(base, [this](mem::Addr a) {
            return _bank._locks.busy(mem::lineNumber(a));
        });
        if (!v) {
            // Every candidate is mid-transaction; retry with backoff.
            co_await Delay{_bank._chip.eq(),
                           _bank._chip.eq().now() + bo.next()};
            if (lat)
                lat->mark(sim::lat::Stage::BankLock,
                          _bank._chip.eq().now());
            continue;
        }
        mem::Addr vbase = v->base;
        co_await _bank._locks.acquire(mem::lineNumber(vbase));
        Held held(_bank._locks, mem::lineNumber(vbase));
        if (lat)
            lat->mark(sim::lat::Stage::BankLock, _bank._chip.eq().now());
        // Entries evicted from the directory have all sharers
        // invalidated (Section 3.2).
        co_await recallEntryRetry(vbase, txn, mem::lineNumber(vbase), lat);
        if (_dir.find(vbase)) {
            _bank._chip.rec(FR::Ev::DirErase, FR::compBank(_bank._id),
                            vbase, txn);
            _dir.erase(vbase);
        }
        _bank._dirEvictions.inc();
    }
}

void
MsiBackend::checkpointState(sim::Serializer &ser) const
{
    ser.tag("backend:" + _name);
    _dir.checkpointState(ser);
    ser.u64(_dirPortFree);
}

void
MsiBackend::restoreState(sim::Deserializer &des)
{
    des.tag("backend:" + _name);
    _dir.restoreState(des);
    _dirPortFree = des.u64();
}

} // namespace coherence
