/**
 * @file
 * Sharer tracking for directory entries. Two representations from the
 * paper: a full-map bit vector (one bit per L2/cluster cache, used by
 * the optimistic baseline) and a limited-pointer Dir4B scheme
 * (Agarwal et al. [2]): four pointers plus a broadcast bit; pointer
 * overflow degrades to broadcast, after which invalidations must be
 * sent to every L2 and only an approximate sharer count remains.
 */

#ifndef COHESION_COHERENCE_SHARER_SET_HH
#define COHESION_COHERENCE_SHARER_SET_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace coherence {

/** Sharer representation selector. */
enum class SharerKind : std::uint8_t {
    FullMap,   ///< One presence bit per L2 (exact).
    LimitedPtr ///< DiriB: i pointers + broadcast bit (approximate).
};

class SharerSet
{
  public:
    /**
     * @param kind      Representation.
     * @param num_caches Number of L2 caches in the system.
     * @param pointers  Pointer count for LimitedPtr (4 => Dir4B).
     */
    SharerSet(SharerKind kind = SharerKind::FullMap,
              unsigned num_caches = 0, unsigned pointers = 4)
        : _kind(kind), _numCaches(num_caches), _maxPointers(pointers)
    {
        if (_kind == SharerKind::FullMap)
            _bitmap.assign((num_caches + 63) / 64, 0);
    }

    SharerKind kind() const { return _kind; }
    bool broadcast() const { return _broadcast; }
    unsigned count() const { return _count; }
    bool empty() const { return _count == 0; }

    /**
     * Add cache @p id as a sharer. Idempotent while the identity of
     * sharers is known (full map / in-pointer). Under broadcast the
     * identity is lost, so the approximate count increments on every
     * add: contains() is conservatively true for everyone there, and
     * gating the increment on it would leave genuinely new sharers
     * uncounted — paired removes would then drop the count to zero and
     * clear broadcast while live sharers remain, excluding them from
     * probeTargets() (a missed invalidation). Re-adding an existing
     * sharer under broadcast therefore overcounts, which errs safe:
     * broadcast just clears later than strictly necessary.
     */
    void
    add(unsigned id)
    {
        if (_kind == SharerKind::LimitedPtr && _broadcast) {
            ++_count;
            return;
        }
        if (contains(id))
            return;
        if (_kind == SharerKind::FullMap) {
            _bitmap[id / 64] |= std::uint64_t(1) << (id % 64);
        } else {
            if (_pointers.size() < _maxPointers) {
                _pointers.push_back(static_cast<std::uint16_t>(id));
            } else {
                // Pointer overflow: degrade to broadcast mode.
                _broadcast = true;
                _pointers.clear();
            }
        }
        ++_count;
    }

    /**
     * Remove cache @p id. Under broadcast the identity of sharers is
     * lost, so only the approximate count is decremented.
     */
    void
    remove(unsigned id)
    {
        if (_kind == SharerKind::FullMap) {
            std::uint64_t bit = std::uint64_t(1) << (id % 64);
            if (!(_bitmap[id / 64] & bit))
                return;
            _bitmap[id / 64] &= ~bit;
            --_count;
        } else if (_broadcast) {
            if (_count > 0)
                --_count;
            if (_count == 0)
                _broadcast = false;
        } else {
            for (auto it = _pointers.begin(); it != _pointers.end(); ++it) {
                if (*it == id) {
                    _pointers.erase(it);
                    --_count;
                    return;
                }
            }
        }
    }

    /**
     * True if @p id may be a sharer. Exact for full-map and in-pointer
     * entries; conservatively true for everyone in broadcast mode.
     */
    bool
    contains(unsigned id) const
    {
        if (_kind == SharerKind::FullMap)
            return _bitmap[id / 64] & (std::uint64_t(1) << (id % 64));
        if (_broadcast)
            return _count > 0;
        for (auto p : _pointers) {
            if (p == id)
                return true;
        }
        return false;
    }

    /**
     * The set of caches an invalidation must probe: the exact sharers,
     * or every cache in the system when in broadcast mode.
     */
    std::vector<unsigned>
    probeTargets() const
    {
        std::vector<unsigned> out;
        if (_kind == SharerKind::FullMap) {
            for (unsigned id = 0; id < _numCaches; ++id) {
                if (contains(id))
                    out.push_back(id);
            }
        } else if (_broadcast) {
            out.reserve(_numCaches);
            for (unsigned id = 0; id < _numCaches; ++id)
                out.push_back(id);
        } else {
            out.assign(_pointers.begin(), _pointers.end());
        }
        return out;
    }

    /** The single sharer id; only valid when count() == 1 and exact. */
    unsigned
    soleSharer() const
    {
        panic_if(_count != 1 || _broadcast, "soleSharer on non-singleton");
        if (_kind == SharerKind::LimitedPtr)
            return _pointers.front();
        for (unsigned id = 0; id < _numCaches; ++id) {
            if (contains(id))
                return id;
        }
        panic("full-map count/bitmap mismatch");
    }

    /** Drop all sharers. */
    void
    clear()
    {
        if (_kind == SharerKind::FullMap)
            _bitmap.assign(_bitmap.size(), 0);
        _pointers.clear();
        _broadcast = false;
        _count = 0;
    }

    /** Checkpoint hooks. The shape fields (kind, cache count, pointer
     *  budget) serialize too: directory entries are rebuilt from
     *  scratch on restore, so the set must carry its own geometry. */
    void
    checkpointState(sim::Serializer &ser) const
    {
        ser.u8(static_cast<std::uint8_t>(_kind));
        ser.u32(_numCaches);
        ser.u32(_maxPointers);
        ser.u32(_count);
        ser.b(_broadcast);
        ser.u64(_pointers.size());
        for (std::uint16_t p : _pointers)
            ser.u32(p);
        ser.u64(_bitmap.size());
        for (std::uint64_t w : _bitmap)
            ser.u64(w);
    }

    void
    restoreState(sim::Deserializer &des)
    {
        _kind = static_cast<SharerKind>(des.u8());
        _numCaches = des.u32();
        _maxPointers = des.u32();
        _count = des.u32();
        _broadcast = des.b();
        _pointers.resize(des.u64());
        for (std::uint16_t &p : _pointers)
            p = static_cast<std::uint16_t>(des.u32());
        _bitmap.resize(des.u64());
        for (std::uint64_t &w : _bitmap)
            w = des.u64();
    }

  private:
    SharerKind _kind;
    unsigned _numCaches;
    unsigned _maxPointers;
    unsigned _count = 0;
    bool _broadcast = false;
    std::vector<std::uint16_t> _pointers;
    std::vector<std::uint64_t> _bitmap;
};

} // namespace coherence

#endif // COHESION_COHERENCE_SHARER_SET_HH
