/**
 * @file
 * Analytic on-die directory area model reproducing Section 4.4 of the
 * paper: storage-bit costs of a full-map directory, a Dir4B limited
 * directory, and duplicate tags, expressed absolutely and as a
 * fraction of aggregate L2 capacity.
 */

#ifndef COHESION_COHERENCE_AREA_MODEL_HH
#define COHESION_COHERENCE_AREA_MODEL_HH

#include <cstdint>

namespace coherence {

/** Inputs describing the tracked cache population. */
struct AreaInputs
{
    unsigned numL2s = 128;           ///< Sharer vector width.
    std::uint32_t linesPerL2 = 2048; ///< 64 KB / 32 B.
    unsigned lineBytes = 32;
    unsigned stateBits = 2;          ///< MSI coherence state.
    unsigned sparseTagBits = 16;     ///< Extra tag bits for sparse.
    unsigned limitedPointers = 4;    ///< Dir4B.
    unsigned pointerBits = 7;        ///< log2(128 sharers).
    /** 21 tag bits plus state per duplicated L2 tag (=> 736 KB). */
    unsigned dupTagBitsPerLine = 23;
    /**
     * Directory entries provisioned per resident L2 line. Table 3's
     * realistic directory is 16K entries per bank x 32 banks = 512K
     * entries against 256K resident lines, i.e. 2x coverage — the
     * provisioning that reproduces the paper's 9.28 MB / 2.88 MB
     * Section 4.4 figures.
     */
    double coverageFactor = 2.0;
};

struct AreaResult
{
    double bytes = 0;
    double fractionOfL2 = 0; ///< bytes / aggregate L2 capacity.
};

/** Total lines that can be resident on die across all L2s. */
inline std::uint64_t
totalL2Lines(const AreaInputs &in)
{
    return std::uint64_t(in.numL2s) * in.linesPerL2;
}

/** Aggregate L2 data capacity in bytes. */
inline std::uint64_t
totalL2Bytes(const AreaInputs &in)
{
    return totalL2Lines(in) * in.lineBytes;
}

/**
 * Full-map sparse directory sized to cover every resident L2 line:
 * per entry, one presence bit per L2 plus state plus sparse tag.
 */
inline AreaResult
fullMapArea(const AreaInputs &in)
{
    double bits_per_entry = in.numL2s + in.stateBits + in.sparseTagBits;
    double bytes =
        totalL2Lines(in) * in.coverageFactor * bits_per_entry / 8.0;
    return AreaResult{bytes, bytes / totalL2Bytes(in)};
}

/**
 * Limited Dir4B sparse directory: four 7-bit pointers plus state plus
 * sparse tag per entry (28 + 2 + 16 bits).
 */
inline AreaResult
limitedArea(const AreaInputs &in)
{
    double bits_per_entry = in.limitedPointers * in.pointerBits +
                            in.stateBits + in.sparseTagBits;
    double bytes =
        totalL2Lines(in) * in.coverageFactor * bits_per_entry / 8.0;
    return AreaResult{bytes, bytes / totalL2Bytes(in)};
}

/**
 * Directoryless (DLS-style) backend: coherence is enforced by
 * write-through-invalidate at the bank, so there is no per-line sharer
 * metadata at all — zero directory storage. (The cost moves from area
 * to traffic: every store rides out to the bank; see backend_dls.hh.)
 */
inline AreaResult
dlsArea(const AreaInputs &)
{
    return AreaResult{0.0, 0.0};
}

/**
 * Duplicate tags: a copy of every L2 tag (21 bits per line), times the
 * number of replicas needed across L3 banks.
 */
inline AreaResult
duplicateTagArea(const AreaInputs &in, unsigned replicas)
{
    double bytes =
        totalL2Lines(in) * double(in.dupTagBitsPerLine) / 8.0 * replicas;
    return AreaResult{bytes, bytes / totalL2Bytes(in)};
}

} // namespace coherence

#endif // COHESION_COHERENCE_AREA_MODEL_HH
