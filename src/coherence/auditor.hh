/**
 * @file
 * Runtime coherence auditor. Walks every L2, every directory slice,
 * and the Cohesion region tables (the Chip's run loop invokes a pass
 * at a configurable cadence) and enforces the protocol's global
 * invariants:
 *
 *  1. per-line structural sanity (dirty words are valid words; the
 *     incoherent bit and the MSI state are mutually exclusive);
 *  2. per-word dirty masks only accumulate on SWcc (incoherent) or
 *     Modified lines — an HWcc Shared copy is clean;
 *  3. mode domain discipline (HWccOnly has no incoherent lines,
 *     SWccOnly has no hardware states and no directory entries);
 *  4. every HWcc L2 copy is backed by a home-directory entry that
 *     lists the cluster with a compatible state;
 *  5. owner exclusivity: a Modified/Exclusive copy is the only HWcc
 *     copy of its line anywhere in the system;
 *  6. directory structure (live entries have sharers; M/E entries
 *     have one owner; entries never cover SWcc lines in Cohesion).
 *
 * Lines with a transaction in flight (home-bank line lock held, an
 * MSHR allocated anywhere, or the covering fine-table line locked) are
 * skipped: the protocol is allowed to be mid-transition there. A
 * violation throws AuditError with a state dump, so silent corruption
 * from fault injection becomes a loud, attributable failure.
 *
 * Each check is gated by the active backend's applicability mask
 * (BackendTraits::auditMask): a directoryless backend masks off the
 * directory-backed invariants, and every masked-off evaluation is
 * counted per invariant (invariantSkips) so tests can prove a check
 * was skipped by design rather than vacuously passed.
 */

#ifndef COHESION_COHERENCE_AUDITOR_HH
#define COHESION_COHERENCE_AUDITOR_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "coherence/backend.hh"
#include "mem/types.hh"
#include "sim/event_queue.hh"
#include "sim/stat_registry.hh"
#include "sim/stats.hh"

namespace arch {
class Chip;
}

namespace coherence {

/** A coherence-invariant violation, with the offending state. */
class AuditError : public std::runtime_error
{
  public:
    AuditError(std::string invariant, const std::string &detail)
        : std::runtime_error("coherence audit failed [" + invariant +
                             "]: " + detail),
          _invariant(std::move(invariant))
    {}

    /** Copy of @p e with @p context appended to the message (the audit
     *  driver attaches the implicated lines' recorder histories). */
    AuditError(const AuditError &e, const std::string &context)
        : std::runtime_error(e.what() + context), _invariant(e.invariant())
    {}

    /** Short name of the violated invariant (e.g. "owner-exclusive"). */
    const std::string &invariant() const { return _invariant; }

  private:
    std::string _invariant;
};

class Auditor
{
  public:
    explicit Auditor(arch::Chip &chip) : _chip(chip) {}

    /** One full invariant pass right now (throws AuditError). */
    void auditNow();

    /**
     * auditNow() without moving the chip.audit.* counters: the
     * pre-checkpoint verification pass must be a pure observer, so a
     * session that checkpoints stays stat-identical to one that never
     * did.
     */
    void verifyNow();

    std::uint64_t passes() const { return _passes.value(); }
    std::uint64_t linesChecked() const { return _linesChecked.value(); }
    std::uint64_t linesSkipped() const { return _linesSkipped.value(); }

    /**
     * How many times invariant @p inv was masked off (not evaluated)
     * because the active backend's applicability mask excludes it.
     * Distinguishes "skipped by design" from "silently passed":
     * under a directoryless backend the directory-backed invariants
     * accumulate skips here instead of vacuous passes. Diagnostic
     * only — deliberately not stat-registered, so golden stat hashes
     * are identical across backends that differ only in their masks.
     */
    std::uint64_t
    invariantSkips(Invariant inv) const
    {
        return _invariantSkips[static_cast<unsigned>(inv)];
    }

    void registerStats(sim::StatRegistry &reg,
                       const std::string &prefix) const;

    /** Checkpoint hooks: the cumulative pass counters are part of the
     *  session's statistics contract, so they travel with the machine. */
    void
    checkpointState(sim::Serializer &ser) const
    {
        ser.tag("auditor");
        _passes.checkpointState(ser);
        _linesChecked.checkpointState(ser);
        _linesSkipped.checkpointState(ser);
    }

    void
    restoreState(sim::Deserializer &des)
    {
        des.tag("auditor");
        _passes.restoreState(des);
        _linesChecked.restoreState(des);
        _linesSkipped.restoreState(des);
    }

  private:
    /** The invariant walk behind auditNow() (throws AuditError). */
    void auditPass();

    /** True if @p base may legitimately be mid-transition. */
    bool inFlux(mem::Addr base) const;

    /** Authoritative SWcc-domain decision for @p base (coarse table,
     *  then the fine table read through the L3 copy or the backing
     *  store — never the per-bank table cache, which may be stale). */
    bool lineIsSwcc(mem::Addr base);

    arch::Chip &_chip;

    // Fine-table words resolved during the current pass.
    std::unordered_map<mem::Addr, std::uint32_t> _tableWords;

    sim::Counter _passes, _linesChecked, _linesSkipped;
    std::uint64_t _invariantSkips[static_cast<unsigned>(
        Invariant::Count)] = {};
    bool _countStats = true; ///< Cleared during verifyNow().
};

} // namespace coherence

#endif // COHESION_COHERENCE_AUDITOR_HH
