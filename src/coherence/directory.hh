/**
 * @file
 * Directory organization for one L3 bank. Supports the three
 * configurations evaluated in the paper:
 *
 *  - optimistic: infinite capacity, fully associative (no evictions);
 *  - realistic sparse: 16K entries per bank, 128-way set associative;
 *  - fully-associative finite capacities for the Fig. 9 sweep.
 *
 * The directory is inclusive of the L2s and may hold entries for lines
 * absent from the L3 (the hierarchy is non-inclusive). A conflict or
 * capacity victim must have its sharers invalidated by the protocol
 * engine before the new entry is installed; the directory therefore
 * exposes victim selection separately from insertion.
 */

#ifndef COHESION_COHERENCE_DIRECTORY_HH
#define COHESION_COHERENCE_DIRECTORY_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "cache/cache_array.hh"
#include "coherence/sharer_set.hh"
#include "mem/types.hh"
#include "sim/host_profiler.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace coherence {

/** Directory organization parameters. */
struct DirectoryConfig
{
    /** 0 => infinite (optimistic full-map baseline). */
    std::uint32_t entries = 0;
    /** 0 => fully associative; otherwise ways per set. */
    std::uint32_t assoc = 0;
    /** Sharer representation. */
    SharerKind sharerKind = SharerKind::FullMap;
    /** Pointers for the limited scheme (Dir4B => 4). */
    unsigned pointers = 4;

    bool infinite() const { return entries == 0; }

    std::uint32_t
    numSets() const
    {
        if (infinite() || assoc == 0)
            return 1;
        return entries / assoc;
    }

    /** Paper's realistic sparse directory (Table 3). */
    static DirectoryConfig
    sparseRealistic(SharerKind kind = SharerKind::FullMap)
    {
        return DirectoryConfig{16 * 1024, 128, kind, 4};
    }

    /** Optimistic: infinite, fully associative, full map. */
    static DirectoryConfig
    optimistic()
    {
        return DirectoryConfig{0, 0, SharerKind::FullMap, 4};
    }

    /** Fully-associative finite size (Fig. 9 sweep points). */
    static DirectoryConfig
    fullyAssociative(std::uint32_t entries,
                     SharerKind kind = SharerKind::FullMap)
    {
        return DirectoryConfig{entries, 0, kind, 4};
    }
};

/** One directory entry: MSI state plus the sharer set. */
struct DirEntry
{
    mem::Addr base = 0;
    cache::CohState state = cache::CohState::Invalid;
    SharerSet sharers;
};

/** Sparse/full/infinite directory for one L3 bank. */
class Directory
{
  public:
    Directory(const DirectoryConfig &config, unsigned num_caches)
        : _config(config), _numCaches(num_caches)
    {
        fatal_if(!config.infinite() && config.assoc != 0 &&
                     config.entries % config.assoc != 0,
                 "directory entries not divisible by associativity");
        _sets.resize(_config.numSets());
    }

    const DirectoryConfig &config() const { return _config; }

    /** Find the entry for @p base, or nullptr. Updates LRU. */
    DirEntry *
    find(mem::Addr base)
    {
        sim::HostProfiler::Scope hp(sim::HostProfiler::Phase::Directory);
        base = mem::lineBase(base);
        auto it = _index.find(base);
        if (it == _index.end())
            return nullptr;
        Set &set = _sets[setOf(base)];
        // Move to MRU position.
        set.lru.splice(set.lru.end(), set.lru, it->second.lruIt);
        return &it->second.entry;
    }

    /** True if installing @p base requires evicting another entry. */
    bool
    needsVictim(mem::Addr base) const
    {
        if (_config.infinite())
            return false;
        return _sets[setOf(mem::lineBase(base))].lru.size() >= waysPerSet();
    }

    /**
     * The entry that must be evicted before @p base can be installed
     * (LRU of the target set). Only valid when needsVictim() is true.
     */
    DirEntry &
    victim(mem::Addr base)
    {
        Set &set = _sets[setOf(mem::lineBase(base))];
        panic_if(set.lru.empty(), "victim() without a conflict");
        return _index.at(set.lru.front()).entry;
    }

    /**
     * Pick an eviction victim for @p base's set, skipping entries for
     * which @p excluded returns true (e.g., lines with transactions in
     * flight). Scans in LRU order; returns nullptr if every candidate
     * is excluded. Only meaningful when needsVictim() is true.
     */
    template <typename Pred>
    DirEntry *
    victimExcluding(mem::Addr base, Pred &&excluded)
    {
        sim::HostProfiler::Scope hp(sim::HostProfiler::Phase::Directory);
        Set &set = _sets[setOf(mem::lineBase(base))];
        for (mem::Addr cand : set.lru) {
            if (!excluded(cand))
                return &_index.at(cand).entry;
        }
        return nullptr;
    }

    /** Install a fresh entry for @p base (caller resolved conflicts). */
    DirEntry &
    insert(mem::Addr base)
    {
        sim::HostProfiler::Scope hp(sim::HostProfiler::Phase::Directory);
        base = mem::lineBase(base);
        panic_if(_index.count(base), "inserting duplicate directory entry for 0x", std::hex, base, std::dec, " state ", static_cast<int>(_index.at(base).entry.state));
        panic_if(needsVictim(base), "inserting into a full set");
        Set &set = _sets[setOf(base)];
        set.lru.push_back(base);
        auto lru_it = std::prev(set.lru.end());
        auto [it, ok] = _index.emplace(base, Node{DirEntry{}, lru_it});
        panic_if(!ok, "index insert failed");
        DirEntry &e = it->second.entry;
        e.base = base;
        e.state = cache::CohState::Invalid;
        e.sharers = SharerSet(_config.sharerKind, _numCaches,
                              _config.pointers);
        _insertions.inc();
        if (_index.size() > _peakEntries)
            _peakEntries = _index.size();
        return e;
    }

    /** Remove the entry for @p base (sharer count reached zero). */
    void
    erase(mem::Addr base)
    {
        sim::HostProfiler::Scope hp(sim::HostProfiler::Phase::Directory);
        base = mem::lineBase(base);
        auto it = _index.find(base);
        panic_if(it == _index.end(), "erasing missing directory entry");
        _sets[setOf(base)].lru.erase(it->second.lruIt);
        _index.erase(it);
    }

    /** Current number of allocated entries. */
    std::uint32_t size() const { return _index.size(); }

    /** High-water mark of allocated entries. */
    std::uint32_t peakEntries() const { return _peakEntries; }

    /** Total insertions (allocation churn diagnostic). */
    std::uint64_t insertions() const { return _insertions.value(); }

    /** Apply @p fn to each allocated entry (occupancy sampling). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[base, node] : _index)
            fn(node.entry);
    }

    /**
     * Checkpoint hooks. Entries are written per set in LRU order
     * (front first) so the rebuilt lists victimize identically; the
     * unordered index is reconstructed, never serialized, so hash-map
     * iteration order can't leak into snapshots.
     */
    void
    checkpointState(sim::Serializer &ser) const
    {
        ser.tag("directory");
        ser.u64(_sets.size());
        for (const Set &set : _sets) {
            ser.u64(set.lru.size());
            for (mem::Addr base : set.lru) {
                const DirEntry &e = _index.at(base).entry;
                ser.u32(e.base);
                ser.u8(static_cast<std::uint8_t>(e.state));
                e.sharers.checkpointState(ser);
            }
        }
        ser.u32(_peakEntries);
        _insertions.checkpointState(ser);
    }

    void
    restoreState(sim::Deserializer &des)
    {
        des.tag("directory");
        if (des.u64() != _sets.size())
            throw sim::SnapshotError("snapshot directory set-count mismatch");
        _index.clear();
        for (Set &set : _sets) {
            set.lru.clear();
            std::uint64_t n = des.u64();
            for (std::uint64_t i = 0; i < n; ++i) {
                mem::Addr base = des.u32();
                set.lru.push_back(base);
                auto lru_it = std::prev(set.lru.end());
                auto [it, ok] =
                    _index.emplace(base, Node{DirEntry{}, lru_it});
                if (!ok) {
                    throw sim::SnapshotError(
                        "snapshot corrupt: duplicate directory entry");
                }
                DirEntry &e = it->second.entry;
                e.base = base;
                e.state = static_cast<cache::CohState>(des.u8());
                e.sharers.restoreState(des);
            }
        }
        _peakEntries = des.u32();
        _insertions.restoreState(des);
    }

  private:
    std::uint32_t
    waysPerSet() const
    {
        if (_config.assoc != 0)
            return _config.assoc;
        return _config.entries; // fully associative: one set, all ways
    }

    std::uint32_t
    setOf(mem::Addr base) const
    {
        return (base >> mem::lineShift) & (_sets.size() - 1);
    }

    struct Node
    {
        DirEntry entry;
        std::list<mem::Addr>::iterator lruIt;
    };

    struct Set
    {
        std::list<mem::Addr> lru; // front = LRU, back = MRU
    };

    DirectoryConfig _config;
    unsigned _numCaches;
    std::vector<Set> _sets;
    std::unordered_map<mem::Addr, Node> _index;
    std::uint32_t _peakEntries = 0;
    sim::Counter _insertions;
};

} // namespace coherence

#endif // COHESION_COHERENCE_DIRECTORY_HH
