#include "coherence/line_profiler.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <map>
#include <vector>

#include "sim/logging.hh"

namespace coherence {

const char *
LineProfiler::patternName(Pattern p)
{
    switch (p) {
      case Pattern::TransitionChurn:  return "transition_churn";
      case Pattern::Private:          return "private";
      case Pattern::ReadShared:       return "read_shared";
      case Pattern::Migratory:        return "migratory";
      case Pattern::ProducerConsumer: return "producer_consumer";
      case Pattern::numPatterns:      break;
    }
    return "unknown";
}

unsigned
LineProfiler::LineStats::sharerCount() const
{
    return std::popcount(readers[0] | writers[0]) +
           std::popcount(readers[1] | writers[1]);
}

unsigned
LineProfiler::LineStats::writerCount() const
{
    return std::popcount(writers[0]) + std::popcount(writers[1]);
}

unsigned
LineProfiler::LineStats::readerCount() const
{
    return std::popcount(readers[0]) + std::popcount(readers[1]);
}

namespace {

void
setCluster(std::uint64_t set[2], std::uint32_t cluster)
{
    unsigned bit = cluster & 127;
    set[bit >> 6] |= std::uint64_t(1) << (bit & 63);
}

} // namespace

void
LineProfiler::observe(sim::FlightRecorder::Ev kind, mem::Addr line,
                      std::uint8_t a, std::uint32_t b)
{
    using Ev = sim::FlightRecorder::Ev;
    using Step = sim::FlightRecorder::Step;

    switch (kind) {
      case Ev::MsgRecv: {
        // Bank-side arrival is the serialization point: a is the
        // ReqType, b the requesting cluster.
        LineStats &s = _lines[line];
        switch (static_cast<arch::ReqType>(a)) {
          case arch::ReqType::Read:
          case arch::ReqType::Instr:
            ++s.reads;
            setCluster(s.readers, b);
            break;
          case arch::ReqType::Write:
          case arch::ReqType::Atomic:
            ++s.writes;
            setCluster(s.writers, b);
            if (s.lastWriter != (b & 0xFFFF)) {
                if (s.lastWriter != 0xFFFF)
                    ++s.ownerChanges;
                s.lastWriter = static_cast<std::uint16_t>(b & 0xFFFF);
            }
            break;
          case arch::ReqType::Eviction:
          case arch::ReqType::Flush:
          case arch::ReqType::WriteRelease:
            ++s.writebacks;
            // A dirty SWcc copy implies the cluster wrote the line.
            setCluster(s.writers, b);
            break;
          case arch::ReqType::ReadRelease:
            break;
        }
        break;
      }
      case Ev::SwccFlush:
        ++_lines[line].flushes;
        break;
      case Ev::ProbeSend:
        ++_lines[line].probes;
        break;
      case Ev::TransBegin:
        ++_lines[line].transitions;
        break;
      case Ev::TransStep:
        if (static_cast<Step>(a) == Step::Conflict)
            ++_lines[line].conflicts;
        break;
      default:
        break;
    }
}

LineProfiler::Pattern
LineProfiler::classify(const LineStats &s) const
{
    if (s.transitions >= churnThreshold)
        return Pattern::TransitionChurn;
    if (s.sharerCount() <= 1)
        return Pattern::Private;
    if (s.writerCount() == 0)
        return Pattern::ReadShared;
    // Clusters that read the line but never wrote it: their presence
    // makes the relationship producer->consumer; without them every
    // sharer writes, i.e. the line migrates with the computation.
    std::uint64_t ro0 = s.readers[0] & ~s.writers[0];
    std::uint64_t ro1 = s.readers[1] & ~s.writers[1];
    if (ro0 | ro1)
        return Pattern::ProducerConsumer;
    return Pattern::Migratory;
}

std::string
LineProfiler::regionName(mem::Addr line) const
{
    for (const auto &r : _regions.regions()) {
        if (r.contains(line))
            return cohesion::regionKindName(r.kind);
    }
    return "heap";
}

void
LineProfiler::registerStats(sim::StatRegistry &reg,
                            const std::string &prefix) const
{
    reg.addScalar(prefix + ".tracked",
                  static_cast<double>(_lines.size()));

    std::array<std::uint64_t, numPatterns> classes{};
    std::map<std::string, std::array<std::uint64_t, numPatterns>> regions;
    std::vector<std::pair<mem::Addr, const LineStats *>> contended;

    for (const auto &[addr, s] : _lines) {
        Pattern p = classify(s);
        classes[static_cast<unsigned>(p)] += 1;
        regions[regionName(addr)][static_cast<unsigned>(p)] += 1;
        if (s.sharerCount() >= 2 || s.transitions > 0)
            contended.emplace_back(addr, &s);
    }

    for (unsigned p = 0; p < numPatterns; ++p) {
        reg.addScalar(sim::cat(prefix, ".class.",
                               patternName(static_cast<Pattern>(p))),
                      static_cast<double>(classes[p]));
    }
    for (const auto &[rname, counts] : regions) {
        for (unsigned p = 0; p < numPatterns; ++p) {
            if (!counts[p])
                continue;
            reg.addScalar(sim::cat(prefix, ".region.", rname, ".",
                                   patternName(static_cast<Pattern>(p))),
                          static_cast<double>(counts[p]));
        }
    }

    std::sort(contended.begin(), contended.end(),
              [](const auto &x, const auto &y) {
                  std::uint64_t sx = x.second->score();
                  std::uint64_t sy = y.second->score();
                  return sx != sy ? sx > sy : x.first < y.first;
              });
    unsigned n = std::min<std::size_t>(_topN, contended.size());
    reg.addScalar(prefix + ".contended", static_cast<double>(contended.size()));
    for (unsigned i = 0; i < n; ++i) {
        const auto &[addr, s] = contended[i];
        std::string base = sim::cat(prefix, ".top", i, ".");
        reg.addScalar(base + "addr", static_cast<double>(addr));
        reg.addScalar(base + "reads", static_cast<double>(s->reads));
        reg.addScalar(base + "writes", static_cast<double>(s->writes));
        reg.addScalar(base + "sharers",
                      static_cast<double>(s->sharerCount()));
        reg.addScalar(base + "transitions",
                      static_cast<double>(s->transitions));
        reg.addScalar(base + "score", static_cast<double>(s->score()));
        reg.addScalar(base + "pattern",
                      static_cast<double>(classify(*s)));
    }
}

} // namespace coherence
