/**
 * @file
 * Pluggable coherence-backend seam at the L3-bank boundary.
 *
 * A Backend owns the sharer-tracking metadata (if any) for one bank
 * and implements the home side of the HWcc protocol: read/write
 * request flows, probe generation and invalidation ordering, the
 * per-line recall used by atomics and HWcc=>SWcc transitions
 * (Fig. 7a), and the adoption step of SWcc=>HWcc transitions
 * (Fig. 7b). SWcc flows (incoherent fills, per-word merges) and the
 * region-table machinery stay in the bank — they are protocol
 * independent.
 *
 * Registered backends:
 *  - "msi-fullmap": the paper's MSI directory with full-map sharers;
 *  - "dir4b": the same engine with Dir4B limited-pointer sharers;
 *  - "dls": a DLS-style directoryless shared LLC
 *    (write-through-invalidate at the bank, no sharer storage).
 */

#ifndef COHESION_COHERENCE_BACKEND_HH
#define COHESION_COHERENCE_BACKEND_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/types.hh"
#include "sim/cotask.hh"
#include "sim/serialize.hh"

namespace arch {
class L3Bank;
struct Request;
} // namespace arch

namespace sim::lat {
struct Cursor;
} // namespace sim::lat

namespace coherence {

class Directory;
struct DirectoryConfig;

/**
 * The auditor's coherence invariants, one bit each. A backend's
 * applicability mask selects which are meaningful for its protocol;
 * masked-off checks are counted as *skipped*, never silently passed.
 */
enum class Invariant : unsigned
{
    DirtySubsetValid = 0,  ///< dirty words are a subset of valid words
    IncoherentXorHwstate,  ///< a line is SWcc xor has an HWcc state
    ValidLineStateless,    ///< invalid lines carry no state bits
    DirtyNeedsOwner,       ///< dirty HWcc data only in M/E lines
    ModeDomain,            ///< line domain legal for the machine mode
    L2WithoutDirectory,    ///< HWcc L2 copy has a directory entry
    SharerMissing,         ///< directory tracks every L2 copy
    StateMismatch,         ///< L2 owner state matches the directory
    DomainMismatch,        ///< cached domain matches the fine table
    OwnerExclusive,        ///< at most one M/E copy per line
    DirInSwccMode,         ///< no directory entries in SWcc-only mode
    DirInvalidState,       ///< directory entries carry a real state
    DirEmptySharers,       ///< directory entries track >= 1 sharer
    DirMultiOwner,         ///< M/E entries track exactly one sharer
    DirCoversSwcc,         ///< directory entries only for HWcc lines
    DlsCleanShared,        ///< DLS: HWcc L2 copies are clean Shared
    Count
};

/** Stable display name for an invariant ("dirty-subset-valid", ...). */
const char *invariantName(Invariant i);

constexpr std::uint32_t
invariantBit(Invariant i)
{
    return 1u << static_cast<unsigned>(i);
}

constexpr std::uint32_t kAllInvariants =
    (1u << static_cast<unsigned>(Invariant::Count)) - 1;

/** Invariants that only make sense when a directory exists. */
constexpr std::uint32_t kDirectoryInvariants =
    invariantBit(Invariant::L2WithoutDirectory) |
    invariantBit(Invariant::SharerMissing) |
    invariantBit(Invariant::StateMismatch) |
    invariantBit(Invariant::DirInSwccMode) |
    invariantBit(Invariant::DirInvalidState) |
    invariantBit(Invariant::DirEmptySharers) |
    invariantBit(Invariant::DirMultiOwner) |
    invariantBit(Invariant::DirCoversSwcc);

/** Static per-backend properties, queryable without an instance. */
struct BackendTraits
{
    /** No sharer metadata: directoryOrNull() is null, occupancy and
     *  directory-area stats read as zero. */
    bool directoryless = false;
    /** Clusters write through on HWcc stores (no M/E grants, no
     *  upgrade path, silent clean evictions). */
    bool writeThrough = false;
    /** Auditor applicability mask (Invariant bits). */
    std::uint32_t auditMask = 0;
};

/**
 * Home-side protocol engine for one L3 bank. Each flow coroutine owns
 * its whole transaction: line-lock acquisition, probes, directory (or
 * no) bookkeeping, the L3 data access, and the response.
 *
 * Every flow takes a latency-accounting cursor (@p lat, null when
 * accounting is off): the flow marks the cursor after each await so
 * the bank span tiles into lock/directory/probe/DRAM/service stages
 * (DESIGN.md SS15). Marking is observer-only — no timing decision may
 * read the cursor.
 */
class Backend
{
  public:
    virtual ~Backend() = default;

    /** Registered name this instance was created under. */
    virtual const std::string &name() const = 0;
    virtual const BackendTraits &traits() const = 0;

    /** Read/Instr request flow. */
    virtual sim::CoTask read(arch::Request req,
                             sim::lat::Cursor *lat) = 0;
    /** Write request flow (miss or S->M upgrade / write-through). */
    virtual sim::CoTask write(arch::Request req,
                              sim::lat::Cursor *lat) = 0;

    /**
     * Ensure no cluster holds an HWcc copy of @p base before an
     * atomic RMW executes at the bank. Runs under the caller's line
     * lock (@p lock_key); may release and re-acquire it to let an
     * in-flight writeback land.
     */
    virtual sim::CoTask recallForAtomic(mem::Addr base, std::uint32_t txn,
                                        std::uint32_t lock_key,
                                        sim::lat::Cursor *lat) = 0;

    /**
     * HWcc => SWcc transition for one line (Fig. 7a): flush every
     * cached HWcc copy and drop any sharer metadata. Locking contract
     * matches recallForAtomic().
     */
    virtual sim::CoTask flushLine(mem::Addr base, std::uint32_t txn,
                                  std::uint32_t lock_key,
                                  sim::lat::Cursor *lat) = 0;

    /**
     * SWcc => HWcc adoption (Fig. 7b, after the bank's CleanQuery
     * broadcast classified the holders): absorb @p clean_sharers and
     * @p dirty_holders into this backend's tracking, writing back or
     * upgrading writers as the protocol requires. @p overlap flags
     * the case-5b multi-writer race.
     */
    virtual sim::CoTask
    adoptLine(mem::Addr base, std::uint32_t txn,
              const std::vector<unsigned> &clean_sharers,
              const std::vector<unsigned> &dirty_holders, bool overlap,
              sim::lat::Cursor *lat) = 0;

    /** Sharer bookkeeping for a WriteRelease (after the data merge). */
    virtual void writeRelease(const arch::Request &req) = 0;
    /** Sharer bookkeeping for a ReadRelease. */
    virtual void readRelease(const arch::Request &req) = 0;

    /** The backing directory, or null for directoryless backends. */
    virtual Directory *directoryOrNull() { return nullptr; }
    virtual const Directory *directoryOrNull() const { return nullptr; }

    /** Directory occupancy stats (zero when directoryless). */
    virtual std::uint32_t dirEntries() const { return 0; }
    virtual std::uint32_t dirPeakEntries() const { return 0; }
    virtual std::uint64_t dirInsertions() const { return 0; }

    /**
     * Serialize protocol state under a backend-specific CCKPT1
     * section tag ("backend:<name>"), so restoring a snapshot into a
     * machine with a different backend fails with a clear
     * SnapshotError instead of misreading bytes.
     */
    virtual void checkpointState(sim::Serializer &ser) const = 0;
    virtual void restoreState(sim::Deserializer &des) = 0;
};

// --- Registry -----------------------------------------------------------

/** Names of all registered backends, in display order. */
const std::vector<std::string> &backendNames();

/** True if @p name is a registered backend. */
bool backendKnown(const std::string &name);

/** Traits for @p name, or null if unknown. */
const BackendTraits *backendTraits(const std::string &name);

/** Comma-separated registered names (for error messages / --list). */
std::string backendListString();

/**
 * Resolve a requested backend name against the directory config:
 * empty selects the legacy default ("dir4b" when the sharer kind is
 * limited-pointer, else "msi-fullmap"). Throws std::runtime_error
 * naming the registered backends if @p requested is unknown.
 */
std::string resolveBackendName(const std::string &requested,
                               const DirectoryConfig &dir);

/**
 * Construct the backend registered as @p name for @p bank. Throws
 * std::runtime_error listing the registered backends if unknown.
 */
std::unique_ptr<Backend> makeBackend(const std::string &name,
                                     arch::L3Bank &bank);

} // namespace coherence

#endif // COHESION_COHERENCE_BACKEND_HH
