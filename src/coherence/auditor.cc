#include "coherence/auditor.hh"

#include <algorithm>
#include <charconv>
#include <string_view>
#include <vector>

#include "arch/chip.hh"
#include "cohesion/region_table.hh"
#include "sim/logging.hh"

namespace coherence {

void
Auditor::auditNow()
{
    try {
        auditPass();
    } catch (const AuditError &e) {
        // Attach the flight-recorder history of every line the
        // violation names (the "0x<addr>" tokens in the detail), so a
        // fault-campaign kill carries its own post-mortem.
        std::string ctx;
        std::vector<mem::Addr> seen;
        std::string_view msg(e.what());
        for (std::size_t i = 0; (i = msg.find("0x", i)) != msg.npos;) {
            i += 2;
            mem::Addr addr = 0;
            auto [p, ec] = std::from_chars(msg.data() + i,
                                           msg.data() + msg.size(), addr,
                                           16);
            if (ec != std::errc())
                continue;
            i = static_cast<std::size_t>(p - msg.data());
            mem::Addr base = mem::lineBase(addr);
            if (std::find(seen.begin(), seen.end(), base) != seen.end())
                continue;
            seen.push_back(base);
            std::string hist = _chip.lineHistory(base);
            if (!hist.empty()) {
                ctx += sim::cat("\n  recorder history line 0x", std::hex,
                                base, std::dec, ":\n", hist);
            }
        }
        throw AuditError(e, ctx);
    }
}

void
Auditor::verifyNow()
{
    _countStats = false;
    try {
        auditNow();
    } catch (...) {
        _countStats = true;
        throw;
    }
    _countStats = true;
}

bool
Auditor::inFlux(mem::Addr base) const
{
    base = mem::lineBase(base);
    arch::Chip &c = _chip;
    if (c.bank(c.map().bankOf(base)).lineBusy(base))
        return true;
    for (unsigned i = 0; i < c.numClusters(); ++i) {
        if (c.cluster(i).hasMshr(base))
            return true;
    }
    if (c.cohesionEnabled()) {
        // A transition atomic holds the covering table line's lock
        // while it rewrites this line's domain.
        mem::Addr wa = c.map().tableWordAddr(base);
        if (c.bank(c.map().bankOf(wa)).lineBusy(wa))
            return true;
    }
    return false;
}

bool
Auditor::lineIsSwcc(mem::Addr base)
{
    arch::Chip &c = _chip;
    base = mem::lineBase(base);
    if (c.coarseTable().contains(base))
        return true;
    const mem::AddressMap &map = c.map();
    const mem::Addr wa = map.tableWordAddr(base);
    std::uint32_t word = 0;
    auto it = _tableWords.find(wa);
    if (it != _tableWords.end()) {
        word = it->second;
    } else {
        // The L3 copy of the table line is the newest committed value;
        // the backing store serves lines the L3 evicted. The per-bank
        // table cache is deliberately not consulted — it is a fault
        // site (table.stale) and must not launder its own staleness.
        arch::L3Bank &home = c.bank(map.bankOf(wa));
        if (const cache::Line *l = home.l3().probe(wa))
            l->read(wa, &word, 4);
        else
            word = c.store().readT<std::uint32_t>(wa);
        _tableWords.emplace(wa, word);
    }
    return cohesion::fine_table::bitFromWord(word, map, base);
}

void
Auditor::auditPass()
{
    arch::Chip &c = _chip;
    const arch::CoherenceMode mode = c.config().mode;
    const std::uint32_t amask = c.auditMask();
    // True when @p inv is in the backend's applicability mask;
    // otherwise records the skip so it is visibly by-design.
    auto applicable = [&](Invariant inv) {
        if (amask & invariantBit(inv))
            return true;
        ++_invariantSkips[static_cast<unsigned>(inv)];
        return false;
    };
    if (_countStats)
        _passes.inc();
    _tableWords.clear();

    struct Copy
    {
        unsigned cluster;
        cache::CohState state;
    };
    std::unordered_map<mem::Addr, std::vector<Copy>> hwccCopies;

    // Per-bank snapshot of the directory index. Directory::find()
    // updates LRU state, so lookups during the audit must go through
    // this side table to keep the pass free of side effects.
    std::unordered_map<mem::Addr, const DirEntry *> dirIndex;
    for (unsigned bi = 0; bi < c.numBanks(); ++bi) {
        if (const Directory *dir = c.bank(bi).directoryOrNull()) {
            dir->forEach(
                [&](const DirEntry &e) { dirIndex.emplace(e.base, &e); });
        }
    }

    for (unsigned ci = 0; ci < c.numClusters(); ++ci) {
        c.cluster(ci).l2().forEachValid([&](cache::Line &l) {
            if (inFlux(l.base)) {
                if (_countStats)
                    _linesSkipped.inc();
                return;
            }
            if (_countStats)
                _linesChecked.inc();
            const std::string where = sim::cat(
                "cluster ", ci, " line 0x", std::hex, l.base, std::dec,
                " state ", cache::cohStateName(l.hwState),
                l.incoherent ? " incoherent" : "", " valid=0x", std::hex,
                unsigned(l.validMask), " dirty=0x", unsigned(l.dirtyMask),
                std::dec);

            if (applicable(Invariant::DirtySubsetValid) &&
                (l.dirtyMask & ~l.validMask) != 0)
                throw AuditError("dirty-subset-valid", where);
            if (applicable(Invariant::IncoherentXorHwstate) &&
                l.incoherent && l.hwState != cache::CohState::Invalid)
                throw AuditError("incoherent-xor-hwstate", where);
            if (applicable(Invariant::ValidLineStateless) &&
                !l.incoherent && l.hwState == cache::CohState::Invalid)
                throw AuditError("valid-line-stateless", where);
            if (applicable(Invariant::DirtyNeedsOwner) && l.dirty() &&
                !l.incoherent && l.hwState != cache::CohState::Modified)
                throw AuditError("dirty-needs-owner", where);
            if (applicable(Invariant::ModeDomain)) {
                if (mode == arch::CoherenceMode::HWccOnly && l.incoherent)
                    throw AuditError("mode-domain", where + " (HWccOnly)");
                if (mode == arch::CoherenceMode::SWccOnly && !l.incoherent)
                    throw AuditError("mode-domain", where + " (SWccOnly)");
            }

            if (!l.incoherent) {
                hwccCopies[l.base].push_back(Copy{ci, l.hwState});
                if (applicable(Invariant::DlsCleanShared) &&
                    (l.hwState != cache::CohState::Shared ||
                     l.dirtyMask != 0)) {
                    // Directoryless bank writes through and grants
                    // Shared only: an HWcc L2 copy is always a clean
                    // Shared one.
                    throw AuditError("dls-clean-shared", where);
                }
                // HWcc copy: the home directory must know about it
                // (directory-backed backends only).
                const DirEntry *e = nullptr;
                if (applicable(Invariant::L2WithoutDirectory)) {
                    auto di = dirIndex.find(l.base);
                    if (di == dirIndex.end())
                        throw AuditError("l2-without-directory", where);
                    e = di->second;
                }
                if (applicable(Invariant::SharerMissing) && e &&
                    !e->sharers.contains(ci))
                    throw AuditError(
                        "sharer-missing",
                        where + sim::cat(" (dir state ",
                                         cache::cohStateName(e->state),
                                         ", ", e->sharers.count(),
                                         " sharer(s))"));
                if (applicable(Invariant::StateMismatch) && e) {
                    bool l2_owner =
                        l.hwState == cache::CohState::Modified ||
                        l.hwState == cache::CohState::Exclusive;
                    bool dir_owner =
                        e->state == cache::CohState::Modified ||
                        e->state == cache::CohState::Exclusive;
                    if (l2_owner && !dir_owner)
                        throw AuditError(
                            "state-mismatch",
                            where +
                                sim::cat(" (dir state ",
                                         cache::cohStateName(e->state),
                                         ")"));
                }
                if (applicable(Invariant::DomainMismatch) &&
                    mode == arch::CoherenceMode::Cohesion &&
                    lineIsSwcc(l.base)) {
                    throw AuditError("domain-mismatch",
                                     where + " (table says SWcc)");
                }
            } else if (mode == arch::CoherenceMode::Cohesion) {
                if (applicable(Invariant::DomainMismatch) &&
                    !lineIsSwcc(l.base))
                    throw AuditError("domain-mismatch",
                                     where + " (table says HWcc)");
            }
        });
    }

    for (const auto &[base, copies] : hwccCopies) {
        if (!applicable(Invariant::OwnerExclusive))
            break;
        bool owned = false;
        for (const Copy &cp : copies) {
            owned |= cp.state == cache::CohState::Modified ||
                     cp.state == cache::CohState::Exclusive;
        }
        if (owned && copies.size() > 1) {
            std::string detail =
                sim::cat("line 0x", std::hex, base, std::dec, ":");
            for (const Copy &cp : copies) {
                detail += sim::cat(" cluster", cp.cluster, "=",
                                   cache::cohStateName(cp.state));
            }
            throw AuditError("owner-exclusive", detail);
        }
    }

    for (unsigned bi = 0; bi < c.numBanks(); ++bi) {
        const Directory *dir = c.bank(bi).directoryOrNull();
        if (!dir)
            continue; // directoryless backend: nothing to walk
        dir->forEach([&](const DirEntry &e) {
            const std::string where = sim::cat(
                "bank ", bi, " entry 0x", std::hex, e.base, std::dec,
                " state ", cache::cohStateName(e.state), " ",
                e.sharers.count(), " sharer(s)");
            if (applicable(Invariant::DirInSwccMode) &&
                mode == arch::CoherenceMode::SWccOnly)
                throw AuditError("dir-in-swcc-mode", where);
            if (inFlux(e.base)) {
                if (_countStats)
                    _linesSkipped.inc();
                return;
            }
            if (_countStats)
                _linesChecked.inc();
            if (applicable(Invariant::DirInvalidState) &&
                e.state == cache::CohState::Invalid)
                throw AuditError("dir-invalid-state", where);
            if (applicable(Invariant::DirEmptySharers) &&
                e.sharers.empty())
                throw AuditError("dir-empty-sharers", where);
            bool owner = e.state == cache::CohState::Modified ||
                         e.state == cache::CohState::Exclusive;
            if (applicable(Invariant::DirMultiOwner) && owner &&
                !e.sharers.broadcast() && e.sharers.count() != 1)
                throw AuditError("dir-multi-owner", where);
            if (applicable(Invariant::DirCoversSwcc) &&
                mode == arch::CoherenceMode::Cohesion &&
                lineIsSwcc(e.base))
                throw AuditError("dir-covers-swcc", where);
        });
    }
}

void
Auditor::registerStats(sim::StatRegistry &reg,
                       const std::string &prefix) const
{
    reg.addCounter(prefix + ".passes", _passes);
    reg.addCounter(prefix + ".lines_checked", _linesChecked);
    reg.addCounter(prefix + ".lines_skipped", _linesSkipped);
}

} // namespace coherence
