/**
 * @file
 * Per-line sharing-pattern profiler (the Figs. 4-5 characterization).
 *
 * Consumes the same event stream the flight recorder sees and folds
 * it into per-line access summaries: which clusters read and wrote a
 * line, how often ownership changed hands, and how many HWcc<=>SWcc
 * transitions it suffered. At report time each line is classified
 * into one of five sharing patterns and the results are exported as
 * class counts (overall and per coarse region kind) plus a top-N
 * contended-lines table — the telemetry a future adaptive HWcc/SWcc
 * placement policy would consume.
 */

#ifndef COHESION_COHERENCE_LINE_PROFILER_HH
#define COHESION_COHERENCE_LINE_PROFILER_HH

#include <cstdint>
#include <string>
#include <unordered_map>

#include "arch/protocol.hh"
#include "cohesion/region_table.hh"
#include "mem/types.hh"
#include "sim/flight_recorder.hh"
#include "sim/stat_registry.hh"

namespace coherence {

class LineProfiler
{
  public:
    /** Sharing-pattern classes, in classification precedence order. */
    enum class Pattern : std::uint8_t {
        TransitionChurn,  ///< bounced between HWcc and SWcc repeatedly
        Private,          ///< touched by a single cluster
        ReadShared,       ///< multiple clusters, no writer
        Migratory,        ///< every sharer both reads and writes; the
                          ///< line follows the computation around
        ProducerConsumer, ///< distinct writer and reader cluster sets
        numPatterns,
    };
    static constexpr unsigned numPatterns =
        static_cast<unsigned>(Pattern::numPatterns);
    static const char *patternName(Pattern p);

    /** Transitions at or above this count classify as churn. */
    static constexpr std::uint32_t churnThreshold = 4;

    struct LineStats
    {
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::uint64_t writebacks = 0; ///< dirty data merged at the bank
        std::uint64_t flushes = 0;    ///< SWcc software flushes
        std::uint64_t probes = 0;     ///< invalidations/recalls it cost
        std::uint32_t transitions = 0;
        std::uint32_t conflicts = 0;  ///< multi-writer merge overlaps
        std::uint32_t ownerChanges = 0;
        // Cluster sets as 128-bit masks (paper machine: 128 clusters);
        // wider machines alias modulo 128, which only ever
        // under-reports "private".
        std::uint64_t readers[2] = {0, 0};
        std::uint64_t writers[2] = {0, 0};
        std::uint16_t lastWriter = 0xFFFF;

        unsigned sharerCount() const;
        unsigned writerCount() const;
        unsigned readerCount() const;

        /** Contention score used for the top-N ranking. */
        std::uint64_t
        score() const
        {
            return reads + 2 * writes + 4 * probes + 16 * transitions;
        }
    };

    explicit LineProfiler(const cohesion::CoarseRegionTable &regions,
                          unsigned top_n = 8)
        : _regions(regions), _topN(top_n)
    {}

    /** Fold one recorder event into the per-line summaries. Called
     *  from Chip's emit helper; kinds it does not care about are
     *  ignored. */
    void observe(sim::FlightRecorder::Ev kind, mem::Addr line,
                 std::uint8_t a, std::uint32_t b);

    Pattern classify(const LineStats &s) const;

    std::size_t linesTracked() const { return _lines.size(); }
    unsigned topN() const { return _topN; }

    const LineStats *
    find(mem::Addr line) const
    {
        auto it = _lines.find(line);
        return it == _lines.end() ? nullptr : &it->second;
    }

    /** Coarse region kind name for @p line ("code", "stack",
     *  "immutable", "other") or "heap" when unmapped. */
    std::string regionName(mem::Addr line) const;

    /**
     * Export under @p prefix: `<prefix>.tracked`, per-class counts
     * (`<prefix>.class.<name>`), per-region class counts
     * (`<prefix>.region.<region>.<name>`), and the top-N contended
     * lines (`<prefix>.top<i>.{addr,reads,writes,sharers,transitions,
     * score,pattern}`), ranked by score desc then address asc so the
     * table is deterministic. Only lines with at least two sharers or
     * one domain transition qualify as "contended".
     */
    void registerStats(sim::StatRegistry &reg,
                       const std::string &prefix) const;

  private:
    std::unordered_map<mem::Addr, LineStats> _lines;
    const cohesion::CoarseRegionTable &_regions;
    unsigned _topN;
};

} // namespace coherence

#endif // COHESION_COHERENCE_LINE_PROFILER_HH
