#include "coherence/backend_dls.hh"

#include <utility>
#include <vector>

#include "arch/chip.hh"
#include "arch/l3bank.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace coherence {

namespace {

using FR = sim::FlightRecorder;

} // namespace

using arch::AckGate;
using arch::CoherenceMode;
using arch::Delay;
using arch::Held;
using arch::ProbeResult;
using arch::ProbeType;
using arch::ReqType;
using arch::Request;
using arch::Response;

DlsBackend::DlsBackend(arch::L3Bank &bank)
    : _name("dls"), _traits(*backendTraits(_name)), _bank(bank)
{}

sim::CoTask
DlsBackend::domainOf(mem::Addr base, std::uint32_t txn, bool *out_swcc)
{
    const CoherenceMode mode = _bank._chip.config().mode;
    *out_swcc = false;
    if (mode == CoherenceMode::SWccOnly)
        *out_swcc = true;
    else if (mode == CoherenceMode::Cohesion)
        co_await _bank.lookupDomain(base, txn, out_swcc);
}

sim::CoTask
DlsBackend::invalidateAll(mem::Addr base, std::uint32_t txn,
                          unsigned exclude, sim::lat::Cursor *lat)
{
    std::vector<unsigned> targets;
    for (unsigned cl = 0; cl < _bank._chip.numClusters(); ++cl) {
        if (cl != exclude)
            targets.push_back(cl);
    }
    std::vector<std::pair<unsigned, ProbeResult>> results;
    AckGate gate;
    gate.expect(targets.size());
    _bank.sendProbes(targets, ProbeType::Invalidate, base, txn, &results,
                     &gate);
    co_await gate.wait();
    if (lat)
        lat->mark(sim::lat::Stage::Probe, _bank._chip.eq().now());
    // HWcc copies are always clean under write-through, but an SWcc
    // straggler hit by the collateral broadcast (atomic recall or a
    // 7a flush) can return dirty words; merge them so nothing is lost.
    for (const auto &[cl, r] : results) {
        if (r.dirty)
            co_await _bank.mergeIntoL3(base, r.data, r.dirtyMask);
    }
    if (lat)
        lat->mark(sim::lat::Stage::Service, _bank._chip.eq().now());
}

sim::CoTask
DlsBackend::read(Request req, sim::lat::Cursor *lat)
{
    const mem::Addr base = mem::lineBase(req.addr);
    const std::uint32_t key = mem::lineNumber(base);
    co_await _bank._locks.acquire(key);
    Held held(_bank._locks, key);

    sim::EventQueue &eq = _bank._chip.eq();
    if (lat)
        lat->mark(sim::lat::Stage::BankLock, eq.now());

    Response resp;
    resp.type = req.type;
    resp.core = req.core;
    resp.addr = base;

    bool swcc = false;
    co_await domainOf(base, req.msgId, &swcc);
    if (lat)
        lat->mark(sim::lat::Stage::Dir, eq.now());

    // No directory port, no sharer lookup: the L3 itself is the
    // ordering point and every HWcc read is granted Shared.
    sim::Tick dram = 0;
    auto [line, t] = _bank.l3AccessPrep(base, false, eq.now(), &dram);
    if (swcc)
        resp.incoherent = true;
    else
        resp.grant = cache::CohState::Shared;
    resp.data = line->data;
    co_await Delay{eq, t};
    if (lat)
        lat->markAccess(eq.now(), dram);
    _bank.respond(req, resp, mem::wordsPerLine, lat);
}

sim::CoTask
DlsBackend::write(Request req, sim::lat::Cursor *lat)
{
    const mem::Addr base = mem::lineBase(req.addr);
    const std::uint32_t key = mem::lineNumber(base);
    co_await _bank._locks.acquire(key);
    Held held(_bank._locks, key);

    sim::EventQueue &eq = _bank._chip.eq();
    if (lat)
        lat->mark(sim::lat::Stage::BankLock, eq.now());

    Response resp;
    resp.type = ReqType::Write;
    resp.core = req.core;
    resp.addr = base;

    bool swcc = false;
    co_await domainOf(base, req.msgId, &swcc);
    if (lat)
        lat->mark(sim::lat::Stage::Dir, eq.now());

    if (swcc) {
        // SWcc fill: the cluster allocates with the incoherent bit.
        sim::Tick dram = 0;
        auto [line, t] = _bank.l3AccessPrep(base, false, eq.now(), &dram);
        resp.incoherent = true;
        resp.data = line->data;
        co_await Delay{eq, t};
        if (lat)
            lat->markAccess(eq.now(), dram);
        _bank.respond(req, resp, mem::wordsPerLine, lat);
        co_return;
    }

    // Write-through-invalidate: every other cluster's copy dies
    // before the store is globally ordered, then the store data lands
    // in the L3 and the ack re-grants a clean Shared line. The
    // bank->cluster FIFO (Chip::orderB2C) guarantees a stale copy's
    // invalidation cannot arrive after the refreshed fill.
    co_await invalidateAll(base, req.msgId, req.cluster, lat);

    sim::Tick dram = 0;
    auto [line, t] = _bank.l3AccessPrep(base, true, eq.now(), &dram);
    if (req.mask)
        line->merge(req.data.data(), req.mask);
    resp.grant = cache::CohState::Shared;
    resp.data = line->data;
    co_await Delay{eq, t};
    if (lat)
        lat->markAccess(eq.now(), dram);
    _bank.respond(req, resp, mem::wordsPerLine, lat);
}

sim::CoTask
DlsBackend::recallForAtomic(mem::Addr base, std::uint32_t txn,
                            std::uint32_t lock_key, sim::lat::Cursor *lat)
{
    (void)lock_key;
    // Without sharer metadata the only way to order an RMW against
    // cached copies is a broadcast invalidation of the line's domain
    // peers. SWcc lines need none (the atomic unit is their ordering
    // point already).
    bool swcc = false;
    co_await domainOf(base, txn, &swcc);
    if (lat)
        lat->mark(sim::lat::Stage::Dir, _bank._chip.eq().now());
    if (!swcc)
        co_await invalidateAll(base, txn, kNoExclude, lat);
}

sim::CoTask
DlsBackend::flushLine(mem::Addr base, std::uint32_t txn,
                      std::uint32_t lock_key, sim::lat::Cursor *lat)
{
    (void)lock_key;
    // HWcc => SWcc (Fig. 7a): no directory state to drop, but cached
    // copies must still be flushed so the line re-enters SWcc with the
    // L3 holding the authoritative data.
    _bank._chip.rec(FR::Ev::TransStep, FR::compBank(_bank._id), base, txn,
                    static_cast<std::uint8_t>(FR::Step::Recall));
    co_await invalidateAll(base, txn, kNoExclude, lat);
}

sim::CoTask
DlsBackend::adoptLine(mem::Addr base, std::uint32_t txn,
                      const std::vector<unsigned> &clean_sharers,
                      const std::vector<unsigned> &dirty_holders,
                      bool overlap, sim::lat::Cursor *lat)
{
    arch::Chip &chip = _bank._chip;
    const auto step = [&](FR::Step s, std::uint32_t b = 0) {
        chip.rec(FR::Ev::TransStep, FR::compBank(_bank._id), base, txn,
                 static_cast<std::uint8_t>(s), b);
    };

    // Cases 1b/2b: clean copies were already converted to (untracked)
    // Shared by the CleanQuery itself; with no writers there is
    // nothing to merge and nothing to allocate.
    if (dirty_holders.empty())
        co_return;

    // Any writer set (cases 3b/4b/5b): write-through has no owner
    // state to upgrade into, so every writer is written back and
    // every clean copy invalidated (it would be stale after the
    // merge). Overlapping write sets are still the case-5b race.
    if (overlap) {
        _bank._mergeConflicts.inc();
        step(FR::Step::Conflict,
             static_cast<std::uint32_t>(dirty_holders.size()));
    }
    for (unsigned cl : clean_sharers)
        step(FR::Step::Invalidate, cl);
    for (unsigned cl : dirty_holders)
        step(FR::Step::WritebackInv, cl);
    std::vector<std::pair<unsigned, ProbeResult>> r2;
    AckGate g2;
    g2.expect(clean_sharers.size() + dirty_holders.size());
    _bank.sendProbes(clean_sharers, ProbeType::Invalidate, base, txn, &r2,
                     &g2);
    _bank.sendProbes(dirty_holders, ProbeType::WritebackInvalidate, base,
                     txn, &r2, &g2);
    co_await g2.wait();
    if (lat)
        lat->mark(sim::lat::Stage::Probe, chip.eq().now());
    for (const auto &[cl, r] : r2) {
        if (r.dirty) {
            step(FR::Step::Merge, cl);
            co_await _bank.mergeIntoL3(base, r.data, r.dirtyMask);
        }
    }
    if (lat)
        lat->mark(sim::lat::Stage::Service, chip.eq().now());
}

void
DlsBackend::checkpointState(sim::Serializer &ser) const
{
    // Directoryless: the section tag is the whole payload. It still
    // guards against restoring a snapshot into a different backend.
    ser.tag("backend:dls");
}

void
DlsBackend::restoreState(sim::Deserializer &des)
{
    des.tag("backend:dls");
}

} // namespace coherence
