/**
 * @file
 * The paper's MSI directory protocol as a coherence backend. One
 * engine serves both registered names: "msi-fullmap" (full-map sharer
 * bits) and "dir4b" (limited-pointer Dir4B sharers) — the sharer
 * representation comes from the machine's DirectoryConfig.
 */

#ifndef COHESION_COHERENCE_BACKEND_MSI_HH
#define COHESION_COHERENCE_BACKEND_MSI_HH

#include "coherence/backend.hh"
#include "coherence/directory.hh"
#include "sim/event_queue.hh"

namespace coherence {

class MsiBackend : public Backend
{
  public:
    MsiBackend(std::string name, arch::L3Bank &bank);

    const std::string &name() const override { return _name; }
    const BackendTraits &traits() const override { return _traits; }

    sim::CoTask read(arch::Request req, sim::lat::Cursor *lat) override;
    sim::CoTask write(arch::Request req, sim::lat::Cursor *lat) override;
    sim::CoTask recallForAtomic(mem::Addr base, std::uint32_t txn,
                                std::uint32_t lock_key,
                                sim::lat::Cursor *lat) override;
    sim::CoTask flushLine(mem::Addr base, std::uint32_t txn,
                          std::uint32_t lock_key,
                          sim::lat::Cursor *lat) override;
    sim::CoTask adoptLine(mem::Addr base, std::uint32_t txn,
                          const std::vector<unsigned> &clean_sharers,
                          const std::vector<unsigned> &dirty_holders,
                          bool overlap, sim::lat::Cursor *lat) override;
    void writeRelease(const arch::Request &req) override;
    void readRelease(const arch::Request &req) override;

    Directory *directoryOrNull() override { return &_dir; }
    const Directory *directoryOrNull() const override { return &_dir; }
    std::uint32_t dirEntries() const override { return _dir.size(); }
    std::uint32_t dirPeakEntries() const override
    {
        return _dir.peakEntries();
    }
    std::uint64_t dirInsertions() const override
    {
        return _dir.insertions();
    }

    void checkpointState(sim::Serializer &ser) const override;
    void restoreState(sim::Deserializer &des) override;

  private:
    /**
     * Invalidate every sharer of @p base's directory entry, writing
     * back a dirty owner into the L3 (directory eviction and
     * HWcc=>SWcc cases 2a/3a). The caller erases the entry.
     *
     * If the modified owner NACKs the probe, its WrRel is already in
     * flight; *@p incomplete is set and the caller must release the
     * line lock, wait, and retry so the writeback can land first.
     */
    sim::CoTask recallEntry(mem::Addr base, std::uint32_t txn,
                            bool *incomplete, sim::lat::Cursor *lat);

    /** Retry wrapper: recall under @p lock_key until complete. */
    sim::CoTask recallEntryRetry(mem::Addr base, std::uint32_t txn,
                                 std::uint32_t lock_key,
                                 sim::lat::Cursor *lat);

    /**
     * Make room for a new directory entry covering @p base, evicting
     * (and recalling) a victim entry if required.
     */
    sim::CoTask makeRoom(mem::Addr base, std::uint32_t txn,
                         sim::lat::Cursor *lat);

    /** Drop @p req.cluster from @p base's sharers; erase when empty. */
    void removeSharer(mem::Addr base, unsigned cluster,
                      std::uint32_t txn);

    std::string _name;
    BackendTraits _traits;
    arch::L3Bank &_bank;
    Directory _dir;
    sim::Tick _dirPortFree = 0;
};

} // namespace coherence

#endif // COHESION_COHERENCE_BACKEND_MSI_HH
