/**
 * @file
 * DLS-style directoryless coherence backend: the shared L3 is the
 * ordering point and no sharer metadata exists at all (PAPERS.md,
 * "Directoryless Shared Last-level Cache"). HWcc reads are granted
 * Shared; HWcc writes invalidate every other cluster by broadcast and
 * write through into the L3 before the ack, so every L2 copy is
 * always clean. There is no Modified/Exclusive grant, no upgrade
 * path, no recall bookkeeping, and zero directory storage (see
 * coherence::dlsArea()).
 */

#ifndef COHESION_COHERENCE_BACKEND_DLS_HH
#define COHESION_COHERENCE_BACKEND_DLS_HH

#include "coherence/backend.hh"

namespace coherence {

class DlsBackend : public Backend
{
  public:
    explicit DlsBackend(arch::L3Bank &bank);

    const std::string &name() const override { return _name; }
    const BackendTraits &traits() const override { return _traits; }

    sim::CoTask read(arch::Request req, sim::lat::Cursor *lat) override;
    sim::CoTask write(arch::Request req, sim::lat::Cursor *lat) override;
    sim::CoTask recallForAtomic(mem::Addr base, std::uint32_t txn,
                                std::uint32_t lock_key,
                                sim::lat::Cursor *lat) override;
    sim::CoTask flushLine(mem::Addr base, std::uint32_t txn,
                          std::uint32_t lock_key,
                          sim::lat::Cursor *lat) override;
    sim::CoTask adoptLine(mem::Addr base, std::uint32_t txn,
                          const std::vector<unsigned> &clean_sharers,
                          const std::vector<unsigned> &dirty_holders,
                          bool overlap, sim::lat::Cursor *lat) override;
    void writeRelease(const arch::Request &) override {}
    void readRelease(const arch::Request &) override {}

    void checkpointState(sim::Serializer &ser) const override;
    void restoreState(sim::Deserializer &des) override;

  private:
    static constexpr unsigned kNoExclude = ~0u;

    /** SWcc/HWcc domain decision for @p base (no directory to ask). */
    sim::CoTask domainOf(mem::Addr base, std::uint32_t txn,
                         bool *out_swcc);

    /**
     * Broadcast Invalidate to every cluster except @p exclude and
     * merge any dirty (SWcc) data returned into the L3.
     */
    sim::CoTask invalidateAll(mem::Addr base, std::uint32_t txn,
                              unsigned exclude, sim::lat::Cursor *lat);

    std::string _name;
    BackendTraits _traits;
    arch::L3Bank &_bank;
};

} // namespace coherence

#endif // COHESION_COHERENCE_BACKEND_DLS_HH
