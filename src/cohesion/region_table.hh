/**
 * @file
 * Cohesion region tables (Section 3.4, Figure 5).
 *
 * The coarse-grain region table is a small on-die structure holding
 * address ranges that are permanently in the SWcc domain — code,
 * per-core stacks, and immutable global data. It is consulted in
 * parallel with the directory on every directory miss.
 *
 * The fine-grain region table is *not* an on-die structure: it is a
 * 16 MB bitmap in simulated memory (1 bit per 32 B line of the 4 GB
 * space), cached in the L3 like any other data, and updated only with
 * uncached atomic operations that the directory snoops. This file
 * provides the bit-manipulation helpers; the storage and timing are
 * the memory system's.
 */

#ifndef COHESION_COHESION_REGION_TABLE_HH
#define COHESION_COHESION_REGION_TABLE_HH

#include <cstdint>
#include <vector>

#include "mem/address_map.hh"
#include "mem/backing_store.hh"
#include "mem/types.hh"
#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace cohesion {

/** Why a coarse region is software-coherent (for diagnostics). */
enum class RegionKind : std::uint8_t { Code, Stack, Immutable, Other };

const char *regionKindName(RegionKind k);

struct CoarseRegion
{
    mem::Addr start = 0;
    std::uint32_t size = 0;
    RegionKind kind = RegionKind::Other;

    bool
    contains(mem::Addr a) const
    {
        return a >= start && a - start < size;
    }
};

/**
 * The on-die coarse-grain region table. Lookups are combinational
 * (performed in parallel with the directory lookup), so they add no
 * latency in the timing model.
 */
class CoarseRegionTable
{
  public:
    /** Register [start, start+size) as permanently SWcc. */
    void
    add(mem::Addr start, std::uint32_t size, RegionKind kind)
    {
        fatal_if(size == 0, "empty coarse region");
        fatal_if(start & (mem::lineBytes - 1),
                 "coarse region start must be line aligned");
        _regions.push_back(CoarseRegion{start, size, kind});
    }

    /** True if @p a lies in any registered SWcc region. */
    bool
    contains(mem::Addr a) const
    {
        for (const auto &r : _regions) {
            if (r.contains(a))
                return true;
        }
        return false;
    }

    const std::vector<CoarseRegion> &regions() const { return _regions; }
    void clear() { _regions.clear(); }

    /** Checkpoint hooks. The boot-time regions are deterministic, but
     *  serializing them keeps the snapshot self-contained if a future
     *  runtime registers regions dynamically. */
    void
    checkpointState(sim::Serializer &ser) const
    {
        ser.tag("coarse-regions");
        ser.u64(_regions.size());
        for (const CoarseRegion &r : _regions) {
            ser.u32(r.start);
            ser.u32(r.size);
            ser.u8(static_cast<std::uint8_t>(r.kind));
        }
    }

    void
    restoreState(sim::Deserializer &des)
    {
        des.tag("coarse-regions");
        _regions.resize(des.u64());
        for (CoarseRegion &r : _regions) {
            r.start = des.u32();
            r.size = des.u32();
            r.kind = static_cast<RegionKind>(des.u8());
        }
    }

  private:
    std::vector<CoarseRegion> _regions;
};

/**
 * Helpers for reading/writing fine-grain table bits in a raw line
 * image or a backing store (boot-time initialization path).
 */
namespace fine_table {

/** Read line(@p a)'s SWcc bit from the 32-bit word image @p word. */
inline bool
bitFromWord(std::uint32_t word, const mem::AddressMap &map, mem::Addr a)
{
    return (word >> map.tableBitIndex(a)) & 1u;
}

/** Boot-time (untimed) set/clear of a line's bit in the store. */
inline void
pokeBit(mem::BackingStore &store, const mem::AddressMap &map, mem::Addr a,
        bool swcc)
{
    mem::Addr word_addr = map.tableWordAddr(a);
    std::uint32_t word = store.readT<std::uint32_t>(word_addr);
    std::uint32_t bit = 1u << map.tableBitIndex(a);
    word = swcc ? (word | bit) : (word & ~bit);
    store.writeT(word_addr, word);
}

/** Boot-time bit read from the store (test support). */
inline bool
peekBit(const mem::BackingStore &store, const mem::AddressMap &map,
        mem::Addr a)
{
    return bitFromWord(store.readT<std::uint32_t>(map.tableWordAddr(a)),
                       map, a);
}

/** Mark a whole region SWcc/HWcc at boot (untimed). */
inline void
pokeRegion(mem::BackingStore &store, const mem::AddressMap &map,
           mem::Addr start, std::uint32_t size, bool swcc)
{
    for (mem::Addr a = mem::lineBase(start); a < start + size;
         a += mem::lineBytes) {
        pokeBit(store, map, a, swcc);
    }
}

} // namespace fine_table
} // namespace cohesion

#endif // COHESION_COHESION_REGION_TABLE_HH
