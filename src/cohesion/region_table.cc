#include "cohesion/region_table.hh"

namespace cohesion {

const char *
regionKindName(RegionKind k)
{
    switch (k) {
      case RegionKind::Code:
        return "code";
      case RegionKind::Stack:
        return "stack";
      case RegionKind::Immutable:
        return "immutable";
      case RegionKind::Other:
        return "other";
    }
    return "?";
}

} // namespace cohesion
