/**
 * @file
 * On-die fine-grain-table cache (the optional optimization of
 * Section 3.4: "If additional L3 latency for table accesses becomes a
 * concern, the dense structure of the table is amenable to on-die
 * caching"). One small direct-mapped cache of 32-bit table words per
 * L3 bank.
 *
 * No coherence machinery is needed for these caches: the tbloff hash
 * homes each table word to the same bank as the lines it covers, so a
 * word is only ever read (directory-miss lookups) and written
 * (snooped transition atomics) by its own bank — the cache is updated
 * in place on every commit.
 */

#ifndef COHESION_COHESION_TABLE_CACHE_HH
#define COHESION_COHESION_TABLE_CACHE_HH

#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "mem/types.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace cohesion {

class TableCache
{
  public:
    /** @param entries Capacity in 32-bit words (0 disables, power of
     *  two otherwise). */
    explicit TableCache(std::uint32_t entries)
    {
        fatal_if(entries && !std::has_single_bit(entries),
                 "table cache entries must be a power of two");
        _entries.resize(entries);
    }

    bool enabled() const { return !_entries.empty(); }
    std::uint32_t capacity() const { return _entries.size(); }

    /** Attach the chip's fault injector (table.stale site); @p lane
     *  is the owning bank's fault lane. */
    void
    setFaultInjector(sim::FaultInjector *f, unsigned lane)
    {
        _faults = f;
        _faultLane = lane;
    }

    /** Look up the cached table word at @p word_addr. Under fault
     *  injection a hit may return the *previous* committed value,
     *  modelling a stale cached table entry. */
    std::optional<std::uint32_t>
    lookup(mem::Addr word_addr)
    {
        if (!enabled())
            return std::nullopt;
        Entry &e = slot(word_addr);
        if (e.valid && e.addr == word_addr) {
            _hits.inc();
            if (_faults && e.prev != e.word &&
                _faults->fire(sim::FaultSite::TableStale, _faultLane)) {
                return e.prev;
            }
            return e.word;
        }
        _misses.inc();
        return std::nullopt;
    }

    /** Install @p word (fetched through the L3) for @p word_addr. */
    void
    fill(mem::Addr word_addr, std::uint32_t word)
    {
        if (!enabled())
            return;
        Entry &e = slot(word_addr);
        e.valid = true;
        e.addr = word_addr;
        e.word = word;
        e.prev = word;
    }

    /**
     * A snooped transition atomic committed a new value: update in
     * place if present (the home bank is the only reader/writer).
     */
    void
    update(mem::Addr word_addr, std::uint32_t word)
    {
        if (!enabled())
            return;
        Entry &e = slot(word_addr);
        if (e.valid && e.addr == word_addr) {
            e.prev = e.word;
            e.word = word;
        }
    }

    std::uint64_t hits() const { return _hits.value(); }
    std::uint64_t misses() const { return _misses.value(); }

    /** Checkpoint hooks. The fault-injector pointer is wiring, not
     *  state — the owner re-attaches it after restore. */
    void
    checkpointState(sim::Serializer &ser) const
    {
        ser.tag("table-cache");
        ser.u64(_entries.size());
        for (const Entry &e : _entries) {
            ser.b(e.valid);
            ser.u32(e.addr);
            ser.u32(e.word);
            ser.u32(e.prev);
        }
        _hits.checkpointState(ser);
        _misses.checkpointState(ser);
    }

    void
    restoreState(sim::Deserializer &des)
    {
        des.tag("table-cache");
        if (des.u64() != _entries.size()) {
            throw sim::SnapshotError(
                "snapshot table-cache capacity mismatch");
        }
        for (Entry &e : _entries) {
            e.valid = des.b();
            e.addr = des.u32();
            e.word = des.u32();
            e.prev = des.u32();
        }
        _hits.restoreState(des);
        _misses.restoreState(des);
    }

  private:
    struct Entry
    {
        bool valid = false;
        mem::Addr addr = 0;
        std::uint32_t word = 0;
        std::uint32_t prev = 0; ///< Last superseded value (stale reads).
    };

    Entry &
    slot(mem::Addr word_addr)
    {
        return _entries[(word_addr >> 2) & (_entries.size() - 1)];
    }

    std::vector<Entry> _entries;
    sim::FaultInjector *_faults = nullptr;
    unsigned _faultLane = 0;
    sim::Counter _hits, _misses;
};

} // namespace cohesion

#endif // COHESION_COHESION_TABLE_CACHE_HH
