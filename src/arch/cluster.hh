/**
 * @file
 * A Rigel-style cluster: eight in-order cores sharing a unified L2
 * cache through a pipelined split-phase bus. The cluster cache
 * controller implements the client side of *both* coherence worlds:
 *
 *  - SWcc (incoherent-bit lines): write-allocate stores with per-word
 *    dirty/valid bits, silent clean evictions, explicit software flush
 *    and invalidate instructions;
 *  - HWcc (MSI lines): blocking misses through the directory, read
 *    releases on clean evictions, responses to directory probes.
 *
 * Every message the cluster sends toward the L3 is accounted to one
 * of the eight Fig. 2 message classes.
 */

#ifndef COHESION_ARCH_CLUSTER_HH
#define COHESION_ARCH_CLUSTER_HH

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "arch/core.hh"
#include "arch/msg.hh"
#include "arch/protocol.hh"
#include "cache/cache_array.hh"
#include "mem/types.hh"
#include "sim/event_queue.hh"
#include "sim/stat_registry.hh"
#include "sim/stats.hh"

namespace arch {

class Chip;

class Cluster
{
  public:
    Cluster(Chip &chip, unsigned id);

    unsigned id() const { return _id; }
    Core &core(unsigned local) { return *_cores.at(local); }
    unsigned numCores() const { return _cores.size(); }
    cache::CacheArray &l2() { return _l2; }
    Chip &chip() { return _chip; }

    // --- Core operation implementations (called by Core) ---------------
    MemOp coreLoad(Core &core, mem::Addr addr, unsigned bytes);
    MemOp coreStore(Core &core, mem::Addr addr, std::uint32_t value,
                    unsigned bytes);
    MemOp coreAtomic(Core &core, AtomicOp op, mem::Addr addr,
                     std::uint32_t operand, std::uint32_t operand2);
    MemOp coreFlush(Core &core, mem::Addr addr);
    MemOp coreInv(Core &core, mem::Addr addr);
    MemOp coreDrain(Core &core);
    MemOp coreCompute(Core &core, std::uint64_t instrs);

    // --- Network-facing entry points ------------------------------------
    /** Deliver a response from a bank (called at the arrival event). */
    void handleResponse(const Response &resp);

    /**
     * Apply a directory probe to the L2 (synchronous state change at
     * the probe-arrival event) and return the observation.
     */
    ProbeResult handleProbe(ProbeType type, mem::Addr addr);

    // --- Statistics -----------------------------------------------------
    MsgCounters &msgCounters() { return _msgs; }
    const MsgCounters &msgCounters() const { return _msgs; }

    std::uint64_t flushesIssued() const { return _flushIssued.value(); }
    std::uint64_t flushesUseful() const { return _flushUseful.value(); }
    std::uint64_t invsIssued() const { return _invIssued.value(); }
    std::uint64_t invsUseful() const { return _invUseful.value(); }
    std::uint64_t l2Hits() const { return _l2Hits.value(); }
    std::uint64_t l2Misses() const { return _l2Misses.value(); }
    std::uint64_t evictsClean() const { return _evictClean.value(); }
    std::uint64_t evictsDirty() const { return _evictDirty.value(); }

    /** Register this cluster's stats under @p prefix in @p reg. */
    void registerStats(sim::StatRegistry &reg,
                       const std::string &prefix) const;

    /** SWcc writebacks (flushes + dirty evictions) awaiting L3 acks. */
    unsigned
    outstandingWrites() const
    {
        return static_cast<unsigned>(_pendingWb.size());
    }

    /** True if a fill/upgrade for @p base's line is in flight (used by
     *  the coherence auditor's in-flux filter). */
    bool
    hasMshr(mem::Addr base) const
    {
        return _mshrs.count(mem::lineBase(base)) != 0;
    }

    /** Outstanding fill/upgrade MSHRs (host occupancy gauge). */
    std::size_t mshrCount() const { return _mshrs.size(); }

    /** Visit every MSHR (watchdog in-flight dump). */
    void
    forEachMshr(const std::function<void(mem::Addr, ReqType,
                                         unsigned)> &fn) const
    {
        for (const auto &[base, m] : _mshrs)
            fn(base, m.sentType, static_cast<unsigned>(m.waiters.size()));
    }

  private:
    friend class Chip;

    struct Waiter
    {
        Core *core;
        bool isStore;
        mem::Addr addr;
        unsigned bytes;
        std::uint32_t value;
    };

    struct MshrEntry
    {
        ReqType sentType = ReqType::Read;
        bool upgradeSent = false;
        std::uint32_t expectId = 0; ///< msgId of the awaited response.
        std::vector<Waiter> waiters;
    };

    /** Arbitrate for an L2 port at local time @p when; returns the
     *  tick at which the access completes. */
    sim::Tick l2Access(sim::Tick when);

    /** Walk the I-fetch stream for @p instrs instructions. */
    void ifetch(Core &core, std::uint64_t instrs);

    /** Fetch one code line through L1I/L2 (may send InstrReq). */
    void fetchLine(Core &core, mem::Addr line_base);

    /** Send a request toward @p addr's home bank; assigns and returns
     *  the fresh msgId stamped on the wire message. */
    std::uint32_t sendRequest(const Request &req, MsgClass cls,
                              sim::Tick depart, unsigned data_words);

    /** Install a fill response into the L2 and service MSHR waiters. */
    void installFill(const Response &resp);

    /** Choose an L2 victim way for @p base, avoiding MSHR-busy lines. */
    cache::Line &selectVictim(mem::Addr base);

    /** Evict a valid line: emit the protocol-required message. */
    void evictLine(cache::Line &line, sim::Tick when);

    /** Drop @p base from every core's L1D (and optionally L1I). */
    void backInvalidateL1(mem::Addr base, bool also_l1i = false);

    /** Fill a core's L1D with a fully-valid L2 line. */
    void fillL1(Core &core, const cache::Line &l2_line);

    /** Serve a load hit from a line; returns the loaded value. */
    std::uint32_t readWord(const cache::Line &line, mem::Addr addr,
                           unsigned bytes) const;

    void applyStore(cache::Line &line, mem::Addr addr, std::uint32_t value,
                    unsigned bytes);

    /** One SWcc writeback ack arrived (duplicates are ignored via the
     *  pending-id set); wake drain waiters at zero. */
    void writebackAcked(std::uint32_t msg_id);

    Chip &_chip;
    unsigned _id;
    std::vector<std::unique_ptr<Core>> _cores;
    cache::CacheArray _l2;
    std::vector<sim::Tick> _l2PortFree;
    std::unordered_map<mem::Addr, MshrEntry> _mshrs;

    std::uint32_t _msgSeq = 0;
    std::unordered_set<std::uint32_t> _pendingWb;
    std::vector<Core *> _drainWaiters;

    MsgCounters _msgs;
    sim::Counter _flushIssued, _flushUseful;
    sim::Counter _invIssued, _invUseful;
    sim::Counter _l2Hits, _l2Misses;
    sim::Counter _evictClean, _evictDirty;
};

} // namespace arch

#endif // COHESION_ARCH_CLUSTER_HH
