/**
 * @file
 * A Rigel-style cluster: eight in-order cores sharing a unified L2
 * cache through a pipelined split-phase bus. The cluster cache
 * controller implements the client side of *both* coherence worlds:
 *
 *  - SWcc (incoherent-bit lines): write-allocate stores with per-word
 *    dirty/valid bits, silent clean evictions, explicit software flush
 *    and invalidate instructions;
 *  - HWcc (MSI lines): blocking misses through the directory, read
 *    releases on clean evictions, responses to directory probes.
 *
 * Every message the cluster sends toward the L3 is accounted to one
 * of the eight Fig. 2 message classes.
 */

#ifndef COHESION_ARCH_CLUSTER_HH
#define COHESION_ARCH_CLUSTER_HH

#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "arch/core.hh"
#include "arch/msg.hh"
#include "arch/protocol.hh"
#include "cache/cache_array.hh"
#include "mem/types.hh"
#include "sim/event_queue.hh"
#include "sim/stat_registry.hh"
#include "sim/stats.hh"

namespace arch {

class Chip;

/**
 * Insertion-ordered set of in-flight msgIds with a hard capacity.
 * Used for the cluster's outstanding-writeback/dedup tracking: entries
 * retire when the writeback ack arrives, but a fault campaign that
 * loses acks forever (or duplicates wildly) must not grow the
 * structure without bound. At capacity the oldest entry is evicted
 * and counted; an evicted writeback's eventual ack is then treated as
 * a duplicate (ignored), which errs safe — the drain condition only
 * clears earlier than a lost ack would ever allow anyway.
 */
class BoundedIdSet
{
  public:
    explicit BoundedIdSet(std::size_t cap) : _cap(cap ? cap : 1) {}

    std::size_t capacity() const { return _cap; }
    std::size_t size() const { return _ids.size(); }
    bool empty() const { return _ids.empty(); }
    bool contains(std::uint32_t id) const { return _ids.count(id) != 0; }

    /** Total oldest-entry evictions forced by the capacity bound. */
    const sim::Counter &evictions() const { return _evicted; }

    /** Insert @p id; returns false if already present. Evicts the
     *  oldest entry (counting it) when the bound would be exceeded. */
    bool
    insert(std::uint32_t id)
    {
        if (_ids.count(id))
            return false;
        _order.push_back(id);
        _ids.emplace(id, std::prev(_order.end()));
        while (_ids.size() > _cap) {
            _ids.erase(_order.front());
            _order.pop_front();
            _evicted.inc();
        }
        return true;
    }

    /** Remove @p id; returns false when absent (duplicate ack). */
    bool
    erase(std::uint32_t id)
    {
        auto it = _ids.find(id);
        if (it == _ids.end())
            return false;
        _order.erase(it->second);
        _ids.erase(it);
        return true;
    }

    void
    checkpointState(sim::Serializer &ser) const
    {
        ser.u64(_order.size());
        for (std::uint32_t id : _order)
            ser.u32(id);
        _evicted.checkpointState(ser);
    }

    void
    restoreState(sim::Deserializer &des)
    {
        _order.clear();
        _ids.clear();
        std::uint64_t n = des.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            std::uint32_t id = des.u32();
            _order.push_back(id);
            _ids.emplace(id, std::prev(_order.end()));
        }
        _evicted.restoreState(des);
    }

  private:
    std::size_t _cap;
    std::list<std::uint32_t> _order; ///< front = oldest insertion.
    std::unordered_map<std::uint32_t, std::list<std::uint32_t>::iterator>
        _ids;
    sim::Counter _evicted;
};

class Cluster
{
  public:
    Cluster(Chip &chip, unsigned id);

    unsigned id() const { return _id; }
    Core &core(unsigned local) { return *_cores.at(local); }
    unsigned numCores() const { return _cores.size(); }
    cache::CacheArray &l2() { return _l2; }
    Chip &chip() { return _chip; }

    // --- Core operation implementations (called by Core) ---------------
    MemOp coreLoad(Core &core, mem::Addr addr, unsigned bytes);
    MemOp coreStore(Core &core, mem::Addr addr, std::uint32_t value,
                    unsigned bytes);
    MemOp coreAtomic(Core &core, AtomicOp op, mem::Addr addr,
                     std::uint32_t operand, std::uint32_t operand2);
    MemOp coreFlush(Core &core, mem::Addr addr);
    MemOp coreInv(Core &core, mem::Addr addr);
    MemOp coreDrain(Core &core);
    MemOp coreCompute(Core &core, std::uint64_t instrs);

    // --- Network-facing entry points ------------------------------------
    /** Deliver a response from a bank (called at the arrival event). */
    void handleResponse(const Response &resp);

    /**
     * Apply a directory probe to the L2 (synchronous state change at
     * the probe-arrival event) and return the observation.
     */
    ProbeResult handleProbe(ProbeType type, mem::Addr addr);

    // --- Statistics -----------------------------------------------------
    MsgCounters &msgCounters() { return _msgs; }
    const MsgCounters &msgCounters() const { return _msgs; }

    std::uint64_t flushesIssued() const { return _flushIssued.value(); }
    std::uint64_t flushesUseful() const { return _flushUseful.value(); }
    std::uint64_t invsIssued() const { return _invIssued.value(); }
    std::uint64_t invsUseful() const { return _invUseful.value(); }
    std::uint64_t l2Hits() const { return _l2Hits.value(); }
    std::uint64_t l2Misses() const { return _l2Misses.value(); }
    std::uint64_t evictsClean() const { return _evictClean.value(); }
    std::uint64_t evictsDirty() const { return _evictDirty.value(); }

    /** Register this cluster's stats under @p prefix in @p reg. */
    void registerStats(sim::StatRegistry &reg,
                       const std::string &prefix) const;

    /** SWcc writebacks (flushes + dirty evictions) awaiting L3 acks. */
    unsigned
    outstandingWrites() const
    {
        return static_cast<unsigned>(_pendingWb.size());
    }

    /** Hard bound on tracked in-flight writeback ids (satellite of the
     *  fault-robustness work: lost acks must not grow state forever). */
    static constexpr std::size_t pendingWbCapacity = 4096;

    /** Oldest-id evictions forced by the pendingWb bound. */
    std::uint64_t
    pendingWbEvictions() const
    {
        return _pendingWb.evictions().value();
    }

    /** True if a fill/upgrade for @p base's line is in flight (used by
     *  the coherence auditor's in-flux filter). */
    bool
    hasMshr(mem::Addr base) const
    {
        return _mshrs.count(mem::lineBase(base)) != 0;
    }

    /** Outstanding fill/upgrade MSHRs (host occupancy gauge). */
    std::size_t mshrCount() const { return _mshrs.size(); }

    /** Visit every MSHR (watchdog in-flight dump). */
    void
    forEachMshr(const std::function<void(mem::Addr, ReqType,
                                         unsigned)> &fn) const
    {
        for (const auto &[base, m] : _mshrs)
            fn(base, m.sentType, static_cast<unsigned>(m.waiters.size()));
    }

  private:
    friend class Chip;

    struct Waiter
    {
        Core *core;
        bool isStore;
        mem::Addr addr;
        unsigned bytes;
        std::uint32_t value;
        /** Write-through backends only: this store's words already
         *  rode out on the in-flight Write, so the ack completes it
         *  without re-applying (unless the fill came back SWcc — the
         *  bank ignores write data on the incoherent path). */
        bool sent = false;
        /** Tick the waiter joined the MSHR: the anchor for follow-up
         *  requests synthesized at fill time (their pre-send span is
         *  MSHR wait, not core issue). Needs no serialization — MSHRs
         *  are empty at any checkpoint. */
        sim::Tick born = 0;
    };

    struct MshrEntry
    {
        ReqType sentType = ReqType::Read;
        bool upgradeSent = false;
        std::uint32_t expectId = 0; ///< msgId of the awaited response.
        std::vector<Waiter> waiters;
    };

    /** Arbitrate for an L2 port at local time @p when; returns the
     *  tick at which the access completes. */
    sim::Tick l2Access(sim::Tick when);

    /** Walk the I-fetch stream for @p instrs instructions. */
    void ifetch(Core &core, std::uint64_t instrs);

    /** Fetch one code line through L1I/L2 (may send InstrReq). */
    void fetchLine(Core &core, mem::Addr line_base);

    /** Send a request toward @p addr's home bank; assigns and returns
     *  the fresh msgId stamped on the wire message. */
    std::uint32_t sendRequest(const Request &req, MsgClass cls,
                              sim::Tick depart, unsigned data_words);

    /** Install a fill response into the L2 and service MSHR waiters.
     *  Returns false when the response was stale/duplicated and was
     *  ignored (latency accounting must not count it). */
    bool installFill(const Response &resp);

    /** Choose an L2 victim way for @p base, avoiding MSHR-busy lines. */
    cache::Line &selectVictim(mem::Addr base);

    /** Evict a valid line: emit the protocol-required message. */
    void evictLine(cache::Line &line, sim::Tick when);

    /** Drop @p base from every core's L1D (and optionally L1I). */
    void backInvalidateL1(mem::Addr base, bool also_l1i = false);

    /** Fill a core's L1D with a fully-valid L2 line. */
    void fillL1(Core &core, const cache::Line &l2_line);

    /** Serve a load hit from a line; returns the loaded value. */
    std::uint32_t readWord(const cache::Line &line, mem::Addr addr,
                           unsigned bytes) const;

    void applyStore(cache::Line &line, mem::Addr addr, std::uint32_t value,
                    unsigned bytes);

    /** One SWcc writeback ack arrived (duplicates are ignored via the
     *  pending-id set); wake drain waiters at zero. Returns false for
     *  a duplicate/evicted id that changed nothing. */
    bool writebackAcked(std::uint32_t msg_id);

    /** Close an accepted response's timeline (reply-fabric + retry
     *  legs), check the stage-sum invariant, and record it into the
     *  chip's LatencyAccountant. Called only when accounting is on. */
    void recordLatency(const Response &resp);

    Chip &_chip;
    unsigned _id;
    std::vector<std::unique_ptr<Core>> _cores;
    cache::CacheArray _l2;
    std::vector<sim::Tick> _l2PortFree;
    std::unordered_map<mem::Addr, MshrEntry> _mshrs;

    std::uint32_t _msgSeq = 0;
    BoundedIdSet _pendingWb{pendingWbCapacity};
    std::vector<Core *> _drainWaiters;

    MsgCounters _msgs;
    sim::Counter _flushIssued, _flushUseful;
    sim::Counter _invIssued, _invUseful;
    sim::Counter _l2Hits, _l2Misses;
    sim::Counter _evictClean, _evictDirty;

  public:
    /**
     * Checkpoint hooks. Only legal at a quiescent point: no MSHR in
     * flight and no core parked on a drain — those hold coroutine
     * handles and cannot serialize. Pending writeback ids DO serialize
     * (their acks are still in flight conceptually, but at quiescence
     * the event queue is empty, so a non-empty set only occurs when an
     * injected fault swallowed an ack — the ids must survive so drain
     * accounting matches an uninterrupted run).
     */
    void
    checkpointState(sim::Serializer &ser) const
    {
        ser.tag("cluster");
        if (!_mshrs.empty()) {
            throw sim::SnapshotError(
                "checkpoint with cluster MSHRs in flight");
        }
        if (!_drainWaiters.empty()) {
            throw sim::SnapshotError(
                "checkpoint with cores parked on a drain");
        }
        ser.u64(_cores.size());
        for (const auto &core : _cores)
            core->checkpointState(ser);
        _l2.checkpointState(ser);
        ser.u64(_l2PortFree.size());
        for (sim::Tick t : _l2PortFree)
            ser.u64(t);
        ser.u32(_msgSeq);
        _pendingWb.checkpointState(ser);
        _msgs.checkpointState(ser);
        _flushIssued.checkpointState(ser);
        _flushUseful.checkpointState(ser);
        _invIssued.checkpointState(ser);
        _invUseful.checkpointState(ser);
        _l2Hits.checkpointState(ser);
        _l2Misses.checkpointState(ser);
        _evictClean.checkpointState(ser);
        _evictDirty.checkpointState(ser);
    }

    void
    restoreState(sim::Deserializer &des)
    {
        des.tag("cluster");
        if (des.u64() != _cores.size())
            throw sim::SnapshotError("snapshot core count mismatch");
        for (auto &core : _cores)
            core->restoreState(des);
        _l2.restoreState(des);
        if (des.u64() != _l2PortFree.size())
            throw sim::SnapshotError("snapshot L2 port count mismatch");
        for (sim::Tick &t : _l2PortFree)
            t = des.u64();
        _msgSeq = des.u32();
        _pendingWb.restoreState(des);
        _msgs.restoreState(des);
        _flushIssued.restoreState(des);
        _flushUseful.restoreState(des);
        _invIssued.restoreState(des);
        _invUseful.restoreState(des);
        _l2Hits.restoreState(des);
        _l2Misses.restoreState(des);
        _evictClean.restoreState(des);
        _evictDirty.restoreState(des);
    }
};

} // namespace arch

#endif // COHESION_ARCH_CLUSTER_HH
