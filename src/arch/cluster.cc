#include "arch/cluster.hh"

#include <bit>

#include "arch/chip.hh"
#include "sim/host_profiler.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace arch {

namespace {

using FR = sim::FlightRecorder;

unsigned
maskWords(mem::WordMask m)
{
    return std::popcount(static_cast<unsigned>(m));
}

} // namespace

Cluster::Cluster(Chip &chip, unsigned id)
    : _chip(chip), _id(id),
      _l2(sim::cat("cluster", id, ".l2"), chip.config().l2Bytes,
          chip.config().l2Assoc),
      _l2PortFree(chip.config().l2Ports, 0)
{
    const MachineConfig &cfg = chip.config();
    // Pre-size the MSHR table: outstanding misses are bounded by a few
    // entries per core in practice, so one up-front reservation ends
    // the rehash/alloc churn the miss path would otherwise pay mid-run.
    // (Outstanding writebacks live in a BoundedIdSet with its own hard
    // cap; it sizes itself.)
    _mshrs.reserve(4 * cfg.coresPerCluster);
    for (unsigned c = 0; c < cfg.coresPerCluster; ++c) {
        _cores.push_back(std::make_unique<Core>(
            *this, id * cfg.coresPerCluster + c, c, cfg.l1iBytes,
            cfg.l1iAssoc, cfg.l1dBytes, cfg.l1dAssoc));
    }
}

sim::Tick
Cluster::l2Access(sim::Tick when)
{
    // Pick the earliest-free port; each access occupies it one cycle.
    unsigned best = 0;
    for (unsigned p = 1; p < _l2PortFree.size(); ++p) {
        if (_l2PortFree[p] < _l2PortFree[best])
            best = p;
    }
    sim::Tick start = std::max(when, _l2PortFree[best]);
    _l2PortFree[best] = start + 1;
    return start + _chip.config().l2Latency;
}

/** Complete an op at the core's local time, parking the coroutine on
 *  the event queue if the core has run too far ahead of global time
 *  (conservative-quantum slack bound). */
static MemOp
finish(Chip &chip, Core &core, std::uint64_t value)
{
    sim::EventQueue &eq = chip.eq();
    if (core.localTime() > eq.now() + chip.config().slackWindow) {
        eq.schedule(core.localTime(), [&core, value]() {
            // Resuming the kernel coroutine runs core-side execution
            // until its next memory op: the ClusterCore host phase.
            sim::HostProfiler::Scope hp(
                sim::HostProfiler::Phase::ClusterCore);
            core.completeOp(value);
        });
        return MemOp::pending(core);
    }
    return MemOp::ready(value);
}

std::uint32_t
Cluster::readWord(const cache::Line &line, mem::Addr addr,
                  unsigned bytes) const
{
    std::uint32_t v = 0;
    line.read(addr, &v, bytes);
    return v;
}

void
Cluster::applyStore(cache::Line &line, mem::Addr addr, std::uint32_t value,
                    unsigned bytes)
{
    line.write(addr, &value, bytes);
}

void
Cluster::fillL1(Core &core, const cache::Line &l2_line)
{
    // The L1D only caches fully-valid lines; partial SWcc lines are
    // served from the L2.
    if (l2_line.validMask != mem::fullMask)
        return;
    cache::CacheArray &l1 = core.l1d();
    cache::Line &v = l1.victim(l2_line.base);
    if (v.valid)
        v.reset(); // L1 is write-through: drops are always silent.
    l1.claim(v, l2_line.base);
    v.data = l2_line.data;
    v.validMask = mem::fullMask;
    v.dirtyMask = 0;
    v.incoherent = l2_line.incoherent;
    v.hwState = l2_line.hwState;
}

void
Cluster::backInvalidateL1(mem::Addr base, bool also_l1i)
{
    for (auto &core : _cores) {
        if (cache::Line *l = core->l1d().probe(base))
            l->reset();
        if (also_l1i) {
            if (cache::Line *l = core->l1i().probe(base))
                l->reset();
        }
    }
}

cache::Line &
Cluster::selectVictim(mem::Addr base)
{
    cache::Line *set = _l2.setFor(base);
    cache::Line *best = nullptr;
    for (unsigned w = 0; w < _l2.assoc(); ++w) {
        cache::Line &line = set[w];
        if (!line.valid)
            return line;
        if (_mshrs.count(line.base))
            continue; // fill or upgrade in flight; not safe to evict
        if (!best || line.lruStamp < best->lruStamp)
            best = &line;
    }
    if (!best) {
        // Pathological: every way has a transaction in flight. Fall
        // back to plain LRU; the install path tolerates a missing line.
        warn("cluster ", _id, ": all ways busy in set of 0x", std::hex,
             base);
        best = &_l2.victim(base);
    }
    return *best;
}

void
Cluster::evictLine(cache::Line &line, sim::Tick when)
{
    panic_if(!line.valid, "evicting an invalid line");
    TRACE(_chip.tracer(), sim::Category::Cache, "cluster", _id,
          ": evict 0x", std::hex, line.base, std::dec,
          line.incoherent ? " SWcc" : " HWcc",
          line.dirty() ? " dirty" : " clean");
    (line.dirty() ? _evictDirty : _evictClean).inc();
    _chip.rec(FR::Ev::Evict, FR::compCluster(_id), line.base, 0,
              line.dirty() ? FR::evictDirty : 0,
              line.incoherent ? FR::respIncoherent : 0);
    if (line.incoherent) {
        if (line.dirty()) {
            Request r;
            r.type = ReqType::Eviction;
            r.cluster = _id;
            r.addr = line.base;
            r.mask = line.dirtyMask;
            r.data = line.data;
            std::uint32_t id = sendRequest(r, MsgClass::CacheEviction, when,
                                           maskWords(r.mask));
            _pendingWb.insert(id);
            _chip.rec(FR::Ev::Writeback, FR::compCluster(_id), line.base,
                      id, r.mask);
        }
        // Clean SWcc evictions are silent: no message at all.
    } else if (line.hwState == cache::CohState::Modified) {
        Request r;
        r.type = ReqType::WriteRelease;
        r.cluster = _id;
        r.addr = line.base;
        r.mask = line.dirtyMask ? line.dirtyMask : mem::fullMask;
        r.data = line.data;
        std::uint32_t id =
            sendRequest(r, MsgClass::CacheEviction, when, maskWords(r.mask));
        _chip.rec(FR::Ev::Writeback, FR::compCluster(_id), line.base, id,
                  r.mask);
    } else if (line.hwState == cache::CohState::Shared ||
               line.hwState == cache::CohState::Exclusive) {
        if (!_chip.writeThroughBackend()) {
            // No silent evictions under HWcc: notify the directory (a
            // clean Exclusive line releases like a Shared one).
            Request r;
            r.type = ReqType::ReadRelease;
            r.cluster = _id;
            r.addr = line.base;
            sendRequest(r, MsgClass::ReadRelease, when, 0);
        }
        // Directoryless backend: nothing tracks this copy, so a clean
        // Shared line drops silently like an SWcc one.
    }
    backInvalidateL1(line.base, true);
    line.reset();
}

std::uint32_t
Cluster::sendRequest(const Request &req, MsgClass cls, sim::Tick depart,
                     unsigned data_words)
{
    _msgs.count(cls);
    Request stamped = req;
    stamped.msgId = ++_msgSeq;
    // Authoritative departure stamp: the fabric layer never re-stamps
    // it, so retransmit backoff shows up in the latency histograms.
    stamped.sendTick = depart;
    // Accounting anchor, same fill-if-zero convention: requests with
    // no explicit operation start (ifetch, evictions) get a zero-width
    // Issue stage.
    if (stamped.opStart == 0)
        stamped.opStart = depart;
    _chip.rec(FR::Ev::MsgSend, FR::compCluster(_id),
              mem::lineBase(stamped.addr), stamped.msgId,
              static_cast<std::uint8_t>(stamped.type),
              static_cast<std::uint32_t>(cls));
    // Fabric scheduling (and the fault sites riding on it) lives in
    // the chip so requests, responses, and probes share one model.
    _chip.deliverRequest(_id, stamped, data_words, depart);
    return stamped.msgId;
}

void
Cluster::registerStats(sim::StatRegistry &reg,
                       const std::string &prefix) const
{
    reg.addCounter(prefix + ".l2.hits", _l2Hits);
    reg.addCounter(prefix + ".l2.misses", _l2Misses);
    reg.addCounter(prefix + ".l2.evict.clean", _evictClean);
    reg.addCounter(prefix + ".l2.evict.dirty", _evictDirty);
    reg.addCounter(prefix + ".flush.issued", _flushIssued);
    reg.addCounter(prefix + ".flush.useful", _flushUseful);
    reg.addCounter(prefix + ".inv.issued", _invIssued);
    reg.addCounter(prefix + ".inv.useful", _invUseful);
    for (unsigned c = 0; c < numMsgClasses; ++c) {
        MsgClass cls = static_cast<MsgClass>(c);
        reg.addScalar(prefix + ".out." + msgClassName(cls),
                      [this, cls]() {
                          return static_cast<double>(_msgs.get(cls));
                      });
    }
}

// --------------------------------------------------------------------
// Instruction fetch
// --------------------------------------------------------------------

void
Cluster::fetchLine(Core &core, mem::Addr addr)
{
    mem::Addr base = mem::lineBase(addr);
    if (cache::Line *l1 = core.l1i().probe(base)) {
        core.l1i().touch(*l1);
        // Pipelined fetch: an L1I hit adds no stall.
        core._ifetchHitRun += mem::lineBytes;
        if (core._ifetchHitRun >= core._codeBytes)
            core._ifetchWarm = true;
        return;
    }
    core._ifetchHitRun = 0;

    sim::Tick t = l2Access(core.localTime());
    cache::Line *l2line = _l2.probe(base);
    if (l2line) {
        _l2.touch(*l2line);
        _l2Hits.inc();
        core.setLocalTime(t);
    } else {
        _l2Misses.inc();
        // Fire-and-forget instruction request; nothing consumes the
        // bytes, so the core only pays the latency.
        if (!_mshrs.count(base)) {
            MshrEntry &m = _mshrs[base];
            m.sentType = ReqType::Instr;
            Request r;
            r.type = ReqType::Instr;
            r.cluster = _id;
            r.core = core.localId();
            r.addr = base;
            m.expectId = sendRequest(r, MsgClass::InstructionRequest, t, 0);
        }
        const MachineConfig &cfg = _chip.config();
        core.setLocalTime(t + 2 * cfg.netLatency + cfg.l3Latency);
    }

    // Install into the L1I (contents are immaterial to execution).
    cache::Line &v = core.l1i().victim(base);
    if (v.valid)
        v.reset();
    core.l1i().claim(v, base);
    v.validMask = mem::fullMask;
    v.incoherent = true;
}

void
Cluster::ifetch(Core &core, std::uint64_t instrs)
{
    if (core._ifetchWarm)
        return;
    std::uint64_t bytes = instrs * 4;
    while (bytes > 0 && !core._ifetchWarm) {
        std::uint32_t line_off = core._fetchOffset & (mem::lineBytes - 1);
        std::uint64_t chunk =
            std::min<std::uint64_t>(bytes, mem::lineBytes - line_off);
        if (line_off == 0)
            fetchLine(core, core._codeBase + core._fetchOffset);
        core._fetchOffset += chunk;
        if (core._fetchOffset >= core._codeBytes)
            core._fetchOffset = 0;
        bytes -= chunk;
    }
}

// --------------------------------------------------------------------
// Core operations
// --------------------------------------------------------------------

MemOp
Cluster::coreLoad(Core &core, mem::Addr addr, unsigned bytes)
{
    // An idle core cannot issue in the past: sync to global time.
    core.advanceLocalTime(_chip.eq().now());
    panic_if(!mem::withinLine(addr, bytes), "load crosses a line");
    // Accounting anchor: the op exists from here; everything up to the
    // request's departure is the Issue stage (L1/L2 lookup, port
    // arbitration, any ifetch stall).
    const sim::Tick op_start = core.localTime();
    core.countInstructions(1);
    ifetch(core, 1);

    mem::Addr base = mem::lineBase(addr);
    mem::WordMask need = mem::wordMaskFor(addr, bytes);

    if (cache::Line *l1 = core.l1d().probe(base)) {
        core.l1d().touch(*l1);
        core.advanceLocalTime(core.localTime() +
                              _chip.config().l1Latency);
        return finish(_chip, core, readWord(*l1, addr, bytes));
    }

    sim::Tick t = l2Access(core.localTime() + _chip.config().l1Latency);
    cache::Line *l2line = _l2.probe(base);
    if (l2line && (l2line->validMask & need) == need) {
        _l2.touch(*l2line);
        _l2Hits.inc();
        core.setLocalTime(t);
        fillL1(core, *l2line);
        return finish(_chip, core, readWord(*l2line, addr, bytes));
    }
    _l2Misses.inc();
    core.setLocalTime(t);

    auto it = _mshrs.find(base);
    if (it != _mshrs.end()) {
        it->second.waiters.push_back(
            Waiter{&core, false, addr, bytes, 0, false, _chip.eq().now()});
        return MemOp::pending(core);
    }
    MshrEntry &m = _mshrs[base];
    m.sentType = ReqType::Read;
    m.waiters.push_back(
        Waiter{&core, false, addr, bytes, 0, false, _chip.eq().now()});

    Request r;
    r.type = ReqType::Read;
    r.cluster = _id;
    r.core = core.localId();
    r.addr = base;
    r.opStart = op_start;
    m.expectId = sendRequest(r, MsgClass::ReadRequest, t, 0);
    return MemOp::pending(core);
}

MemOp
Cluster::coreStore(Core &core, mem::Addr addr, std::uint32_t value,
                   unsigned bytes)
{
    // An idle core cannot issue in the past: sync to global time.
    core.advanceLocalTime(_chip.eq().now());
    panic_if(!mem::withinLine(addr, bytes), "store crosses a line");
    const sim::Tick op_start = core.localTime();
    core.countInstructions(1);
    ifetch(core, 1);

    mem::Addr base = mem::lineBase(addr);

    // Write-through L1D with bus snooping inside the cluster: update
    // our own copy, invalidate the other cores' copies.
    for (auto &other : _cores) {
        cache::Line *l1 = other->l1d().probe(base);
        if (!l1)
            continue;
        if (other.get() == &core) {
            l1->write(addr, &value, bytes);
            l1->dirtyMask = 0; // write-through: L1 stays clean
        } else {
            l1->reset();
        }
    }

    sim::Tick t = l2Access(core.localTime() + _chip.config().l1Latency);
    cache::Line *l2line = _l2.probe(base);
    if (l2line) {
        if (l2line->incoherent ||
            l2line->hwState == cache::CohState::Modified ||
            l2line->hwState == cache::CohState::Exclusive) {
            // MESI: an Exclusive holder upgrades to Modified silently
            // (no directory message) — the benefit the E state buys.
            if (l2line->hwState == cache::CohState::Exclusive)
                l2line->hwState = cache::CohState::Modified;
            _l2.touch(*l2line);
            _l2Hits.inc();
            applyStore(*l2line, addr, value, bytes);
            core.setLocalTime(t);
            return finish(_chip, core, 0);
        }
        if (l2line->hwState == cache::CohState::Shared) {
            _l2Misses.inc();
            core.setLocalTime(t);
            auto it = _mshrs.find(base);
            if (it != _mshrs.end()) {
                it->second.waiters.push_back(Waiter{
                    &core, true, addr, bytes, value, false,
                    _chip.eq().now()});
                return MemOp::pending(core);
            }
            if (_chip.writeThroughBackend()) {
                // Directoryless write-through: apply the store to the
                // local Shared copy (which stays clean) and push the
                // written words to the home bank; the bank invalidates
                // every other copy and acks with the merged line. The
                // core blocks until that ack — the store is globally
                // ordered only once the bank serializes it.
                applyStore(*l2line, addr, value, bytes);
                mem::WordMask wmask = l2line->dirtyMask;
                MshrEntry &m = _mshrs[base];
                m.sentType = ReqType::Write;
                m.waiters.push_back(Waiter{&core, true, addr, bytes,
                                           value, true, _chip.eq().now()});
                Request r;
                r.type = ReqType::Write;
                r.cluster = _id;
                r.core = core.localId();
                r.addr = base;
                r.mask = wmask;
                r.data = l2line->data;
                r.opStart = op_start;
                l2line->dirtyMask = 0; // write-through: L2 stays clean
                m.expectId = sendRequest(r, MsgClass::WriteRequest, t,
                                         maskWords(wmask));
                return MemOp::pending(core);
            }
            // S -> M upgrade through the directory.
            MshrEntry &m = _mshrs[base];
            m.sentType = ReqType::Write;
            m.upgradeSent = true;
            m.waiters.push_back(Waiter{&core, true, addr, bytes, value,
                                       false, _chip.eq().now()});
            Request r;
            r.type = ReqType::Write;
            r.cluster = _id;
            r.core = core.localId();
            r.addr = base;
            r.upgrade = true;
            r.opStart = op_start;
            m.expectId = sendRequest(r, MsgClass::WriteRequest, t, 0);
            return MemOp::pending(core);
        }
    }

    _l2Misses.inc();
    core.setLocalTime(t);

    if (_chip.config().mode == CoherenceMode::SWccOnly) {
        // TCMM write-allocate: the store retires immediately; the fill
        // request completes in the background and merges around the
        // locally dirty words.
        auto it = _mshrs.find(base);
        if (it != _mshrs.end()) {
            it->second.waiters.push_back(Waiter{
                &core, true, addr, bytes, value, false, _chip.eq().now()});
            return MemOp::pending(core);
        }
        cache::Line &v = selectVictim(base);
        if (v.valid)
            evictLine(v, t);
        _l2.claim(v, base);
        v.incoherent = true;
        applyStore(v, addr, value, bytes);
        MshrEntry &m = _mshrs[base];
        m.sentType = ReqType::Write;
        Request r;
        r.type = ReqType::Write;
        r.cluster = _id;
        r.core = core.localId();
        r.addr = base;
        r.opStart = op_start;
        m.expectId = sendRequest(r, MsgClass::WriteRequest, t, 0);
        return finish(_chip, core, 0);
    }

    // Cohesion / HWcc: the store blocks until the home bank responds
    // (M grant or an incoherent fill for SWcc-domain data).
    auto it = _mshrs.find(base);
    if (it != _mshrs.end()) {
        it->second.waiters.push_back(Waiter{
            &core, true, addr, bytes, value, false, _chip.eq().now()});
        return MemOp::pending(core);
    }
    MshrEntry &m = _mshrs[base];
    m.sentType = ReqType::Write;
    m.waiters.push_back(Waiter{&core, true, addr, bytes, value, false,
                               _chip.eq().now()});
    Request r;
    r.type = ReqType::Write;
    r.cluster = _id;
    r.core = core.localId();
    r.addr = base;
    r.opStart = op_start;
    m.expectId = sendRequest(r, MsgClass::WriteRequest, t, 0);
    return MemOp::pending(core);
}

MemOp
Cluster::coreAtomic(Core &core, AtomicOp op, mem::Addr addr,
                    std::uint32_t operand, std::uint32_t operand2)
{
    // An idle core cannot issue in the past: sync to global time.
    core.advanceLocalTime(_chip.eq().now());
    core.countInstructions(1);
    ifetch(core, 1);

    mem::Addr base = mem::lineBase(addr);
    sim::Tick depart = core.localTime() + 1;

    // Uncached: local copies must not linger. The drop goes through
    // the eviction protocol — dirty data is pushed out so the RMW
    // observes it, and HWcc lines notify the directory (a silent drop
    // of a clean Exclusive line would leave the home bank waiting
    // forever for a writeback that never comes).
    if (cache::Line *l2line = _l2.probe(base)) {
        if (_mshrs.count(base)) {
            // A fill or upgrade for this line is already in flight; an
            // eviction notification now would cross it and corrupt the
            // directory's sharer view. Leave the copy — the home
            // bank's recall is serialized behind the in-flight
            // transaction and will collect it.
            backInvalidateL1(base, false);
        } else {
            evictLine(*l2line, depart);
        }
    } else {
        backInvalidateL1(base, false);
    }

    Request r;
    r.type = ReqType::Atomic;
    r.cluster = _id;
    r.core = core.localId();
    r.addr = addr;
    r.op = op;
    r.operand = operand;
    r.operand2 = operand2;
    r.opStart = core.localTime();
    sendRequest(r, MsgClass::UncachedAtomic, depart, 1);
    core.setLocalTime(depart);
    return MemOp::pending(core);
}

MemOp
Cluster::coreFlush(Core &core, mem::Addr addr)
{
    sim::HostProfiler::Scope hp(sim::HostProfiler::Phase::ClusterSwcc);
    // An idle core cannot issue in the past: sync to global time.
    core.advanceLocalTime(_chip.eq().now());
    core.countInstructions(1);
    ifetch(core, 1);
    _flushIssued.inc();

    mem::Addr base = mem::lineBase(addr);
    sim::Tick t = l2Access(core.localTime());
    core.setLocalTime(t);

    cache::Line *l2line = _l2.probe(base);
    if (!l2line)
        return finish(_chip, core, 0); // wasted instruction (Fig. 3)
    _flushUseful.inc();
    if (l2line->incoherent && l2line->dirty()) {
        Request r;
        r.type = ReqType::Flush;
        r.cluster = _id;
        r.core = core.localId();
        r.addr = base;
        r.mask = l2line->dirtyMask;
        r.data = l2line->data;
        std::uint32_t id =
            sendRequest(r, MsgClass::SoftwareFlush, t, maskWords(r.mask));
        _pendingWb.insert(id);
        _chip.rec(FR::Ev::SwccFlush, FR::compCluster(_id), base, id, r.mask);
        l2line->dirtyMask = 0; // line transitions to the Clean state
    }
    return finish(_chip, core, 0);
}

MemOp
Cluster::coreInv(Core &core, mem::Addr addr)
{
    sim::HostProfiler::Scope hp(sim::HostProfiler::Phase::ClusterSwcc);
    // An idle core cannot issue in the past: sync to global time.
    core.advanceLocalTime(_chip.eq().now());
    core.countInstructions(1);
    ifetch(core, 1);
    _invIssued.inc();

    mem::Addr base = mem::lineBase(addr);
    sim::Tick t = l2Access(core.localTime());
    core.setLocalTime(t);

    cache::Line *l2line = _l2.probe(base);
    if (!l2line)
        return finish(_chip, core, 0); // wasted instruction (Fig. 3)
    if (l2line->incoherent) {
        _invUseful.inc();
        _chip.rec(FR::Ev::SwccInv, FR::compCluster(_id), base, 0);
        // TCMM invalidation discards the local copy without traffic.
        backInvalidateL1(base, false);
        l2line->reset();
    }
    return finish(_chip, core, 0);
}

MemOp
Cluster::coreDrain(Core &core)
{
    if (_pendingWb.empty())
        return finish(_chip, core, 0);
    _drainWaiters.push_back(&core);
    return MemOp::pending(core);
}

MemOp
Cluster::coreCompute(Core &core, std::uint64_t instrs)
{
    // An idle core cannot issue in the past: sync to global time.
    core.advanceLocalTime(_chip.eq().now());
    core.countInstructions(instrs);
    ifetch(core, instrs);
    core.setLocalTime(core.localTime() + instrs);
    return finish(_chip, core, 0);
}

// --------------------------------------------------------------------
// Network-facing handlers
// --------------------------------------------------------------------

bool
Cluster::writebackAcked(std::uint32_t msg_id)
{
    if (!_pendingWb.erase(msg_id))
        return false; // duplicated ack, or an id the bound evicted
    if (_pendingWb.empty() && !_drainWaiters.empty()) {
        std::vector<Core *> waiters;
        waiters.swap(_drainWaiters);
        for (Core *c : waiters) {
            c->advanceLocalTime(_chip.eq().now());
            c->completeOp(0);
        }
    }
    return true;
}

void
Cluster::recordLatency(const Response &resp)
{
    sim::Tick now = _chip.eq().now();
    std::array<std::uint32_t, sim::lat::numStages> stages =
        resp.latStages;
    // Close the reply-fabric leg: the backoff portion of the hop is
    // blamed to Retry, the rest to RespFabric. The arrival tick always
    // covers the accumulated backoffs (delivery floors only delay
    // further), so the subtraction cannot go negative; clamp anyway so
    // an anomaly shows up as a stage-sum violation, not a wrapped u32.
    std::uint64_t resp_leg = now - resp.sendTick;
    std::uint64_t rp = std::min<std::uint64_t>(resp.retryPenalty, resp_leg);
    stages[static_cast<unsigned>(sim::lat::Stage::RespFabric)] +=
        static_cast<std::uint32_t>(resp_leg - rp);
    stages[static_cast<unsigned>(sim::lat::Stage::Retry)] +=
        static_cast<std::uint32_t>(rp);
    std::uint64_t e2e = now - resp.opStart;
    std::uint64_t sum = 0;
    for (std::uint32_t s : stages)
        sum += s;
    _chip.latAcc().record(
        sim::tlsShard, static_cast<unsigned>(msgClassFor(resp.type)),
        resp.latMode, stages, e2e, sum == e2e);
}

void
Cluster::handleResponse(const Response &resp)
{
    sim::HostProfiler::Scope hp(sim::HostProfiler::Phase::ClusterMsg);
    _chip.sampleRespLatency(_chip.eq().now() - resp.sendTick);
    _chip.rec(FR::Ev::RespRecv, FR::compCluster(_id),
              mem::lineBase(resp.addr), resp.msgId,
              static_cast<std::uint8_t>(resp.type),
              (resp.incoherent ? FR::respIncoherent : 0) |
                  (resp.grant == cache::CohState::Exclusive ||
                           resp.grant == cache::CohState::Modified
                       ? FR::respGrant
                       : 0));
    // Only *accepted* responses retire a transaction timeline: a
    // duplicated or stale response (fault injection) must not count a
    // second completion.
    bool accepted = true;
    switch (resp.type) {
      case ReqType::Atomic: {
          Core &c = core(resp.core);
          c.advanceLocalTime(_chip.eq().now());
          c.completeOp(resp.atomicOld);
          break;
      }
      case ReqType::Flush:
      case ReqType::Eviction:
        _chip.rec(FR::Ev::WbAck, FR::compCluster(_id),
                  mem::lineBase(resp.addr), resp.msgId);
        accepted = writebackAcked(resp.msgId);
        break;
      default:
        accepted = installFill(resp);
    }
    if (accepted && _chip.latencyOn())
        recordLatency(resp);
}

bool
Cluster::installFill(const Response &resp)
{
    TRACE(_chip.tracer(), sim::Category::Cache, "cluster", _id,
          ": fill 0x", std::hex, resp.addr, std::dec,
          resp.incoherent ? " incoherent" : " coherent");
    mem::Addr base = mem::lineBase(resp.addr);
    auto it = _mshrs.find(base);
    if (it == _mshrs.end() || it->second.expectId != resp.msgId)
        return false; // duplicated or stale fill (fault injection)
    auto node = _mshrs.extract(it);

    cache::Line *line = _l2.probe(base);
    if (!line) {
        cache::Line &v = selectVictim(base);
        if (v.valid)
            evictLine(v, _chip.eq().now());
        _l2.claim(v, base);
        line = &v;
    } else {
        _l2.touch(*line);
    }

    if (resp.incoherent) {
        line->incoherent = true;
        line->hwState = cache::CohState::Invalid;
    } else {
        line->incoherent = false;
        line->hwState = resp.grant;
    }
    line->fill(resp.data.data(), mem::fullMask);
    _chip.rec(FR::Ev::Fill, FR::compCluster(_id), base, resp.msgId,
              static_cast<std::uint8_t>(line->hwState),
              resp.incoherent ? FR::respIncoherent : 0);

    MshrEntry m = std::move(node.mapped());

    // Apply stores and compute load results first; resume afterwards
    // so re-entrant ops from resumed coroutines cannot disturb the
    // line mid-service.
    std::vector<std::pair<Core *, std::uint64_t>> completions;
    std::vector<Waiter> upgrade_waiters;
    bool can_store = line->incoherent ||
                     line->hwState == cache::CohState::Modified ||
                     line->hwState == cache::CohState::Exclusive;
    if (can_store && line->hwState == cache::CohState::Exclusive) {
        // Stores joined a read miss that was granted Exclusive:
        // silent upgrade.
        bool any_store = false;
        for (const Waiter &w : m.waiters)
            any_store |= w.isStore;
        if (any_store)
            line->hwState = cache::CohState::Modified;
    }
    for (const Waiter &w : m.waiters) {
        if (w.isStore) {
            if (can_store) {
                applyStore(*line, w.addr, w.value, w.bytes);
                completions.emplace_back(w.core, 0);
            } else if (w.sent) {
                // Write-through ack: the bank already merged this
                // store's words into the line it just returned.
                completions.emplace_back(w.core, 0);
            } else {
                upgrade_waiters.push_back(w); // granted S; need M/WT
            }
        } else {
            completions.emplace_back(w.core,
                                     readWord(*line, w.addr, w.bytes));
            fillL1(*w.core, *line); // response path fills the L1D
        }
    }

    if (!upgrade_waiters.empty()) {
        // The follow-up's accounting anchor: the earliest waiter has
        // been parked in the MSHR since its born tick, so the pre-send
        // span of the synthesized request is MSHR wait, not core issue.
        sim::Tick earliest = _chip.eq().now();
        for (const Waiter &w : upgrade_waiters)
            earliest = std::min(earliest, w.born);
        if (_chip.writeThroughBackend()) {
            // Stores that queued behind this fill (or behind an
            // earlier write-through) combine into one follow-up
            // write-through carrying all their words.
            for (Waiter &w : upgrade_waiters) {
                applyStore(*line, w.addr, w.value, w.bytes);
                w.sent = true;
            }
            mem::WordMask wmask = line->dirtyMask;
            MshrEntry wt;
            wt.sentType = ReqType::Write;
            unsigned core_id = upgrade_waiters.front().core->localId();
            wt.waiters = std::move(upgrade_waiters);
            MshrEntry &slot =
                _mshrs.emplace(base, std::move(wt)).first->second;
            Request r;
            r.type = ReqType::Write;
            r.cluster = _id;
            r.core = core_id;
            r.addr = base;
            r.mask = wmask;
            r.data = line->data;
            r.opStart = earliest;
            r.fromMshr = true;
            line->dirtyMask = 0; // write-through: L2 stays clean
            slot.expectId = sendRequest(r, MsgClass::WriteRequest,
                                        _chip.eq().now(),
                                        maskWords(wmask));
        } else {
            MshrEntry up;
            up.sentType = ReqType::Write;
            up.upgradeSent = true;
            unsigned core_id = upgrade_waiters.front().core->localId();
            up.waiters = std::move(upgrade_waiters);
            MshrEntry &slot =
                _mshrs.emplace(base, std::move(up)).first->second;
            Request r;
            r.type = ReqType::Write;
            r.cluster = _id;
            r.core = core_id;
            r.addr = base;
            r.upgrade = true;
            r.opStart = earliest;
            r.fromMshr = true;
            slot.expectId =
                sendRequest(r, MsgClass::WriteRequest, _chip.eq().now(), 0);
        }
    }

    for (auto &[c, value] : completions) {
        c->advanceLocalTime(_chip.eq().now());
        c->completeOp(value);
    }
    return true;
}

ProbeResult
Cluster::handleProbe(ProbeType type, mem::Addr addr)
{
    sim::HostProfiler::Scope hp(sim::HostProfiler::Phase::ClusterMsg);
    mem::Addr base = mem::lineBase(addr);
    l2Access(_chip.eq().now()); // tag access occupies a port

    ProbeResult res;
    cache::Line *l = _l2.probe(base);
    if (!l)
        return res; // nack: already evicted/released

    switch (type) {
      case ProbeType::Invalidate:
      case ProbeType::WritebackInvalidate:
        res.found = true;
        if (l->dirty()) {
            res.dirty = true;
            res.dirtyMask = l->dirtyMask;
            res.data = l->data;
        }
        backInvalidateL1(base, false);
        l->reset();
        break;

      case ProbeType::Downgrade:
        res.found = true;
        if (l->dirty()) {
            res.dirty = true;
            res.dirtyMask = l->dirtyMask;
            res.data = l->data;
            l->dirtyMask = 0;
        }
        l->hwState = cache::CohState::Shared;
        // L1 copies may serve stale data until the next store probes
        // them out; conservatively drop them.
        backInvalidateL1(base, false);
        break;

      case ProbeType::CleanQuery:
        if (!l->incoherent) {
            // Already HWcc (e.g., re-converted earlier): report clean.
            res.found = true;
        } else if (l->dirty()) {
            res.found = true;
            res.dirty = true;
            res.dirtyMask = l->dirtyMask;
            // The line is kept; round two collects the data.
        } else {
            // Clean SWcc line joins the HWcc domain as a sharer.
            res.found = true;
            l->incoherent = false;
            l->hwState = cache::CohState::Shared;
        }
        break;

      case ProbeType::MakeOwner:
        if (l->incoherent && l->dirty()) {
            res.found = true;
            res.dirty = true;
            l->incoherent = false;
            l->hwState = cache::CohState::Modified;
        } else if (l) {
            res.found = true; // raced away; report what we have
        }
        break;
    }
    return res;
}

} // namespace arch
