/**
 * @file
 * One L3 cache bank with its co-located directory slice and the
 * Cohesion transition engine (Sections 3.2, 3.4, 3.6). All requests
 * for a line are serialized through its home bank; each incoming
 * request runs as a coroutine transaction under a per-line lock.
 *
 * The bank implements:
 *  - the home side of the HWcc protocol via a pluggable
 *    coherence::Backend (reads, writes with invalidation/recall, read
 *    releases, writebacks, directory-entry evictions with sharer
 *    invalidation — see backend_msi.hh and backend_dls.hh);
 *  - SWcc support (incoherent fills, per-word merge of flushes and
 *    dirty evictions);
 *  - Cohesion lookups (coarse region table in parallel with the
 *    directory; fine-grain table reads through the L3 on a miss);
 *  - the atomic unit (atom.* executed at the bank, recalling any
 *    HWcc copies first);
 *  - the coherence-domain transition protocol: the bank snoops
 *    atomics to the fine-table range and performs the Fig. 7 flows,
 *    including the SWcc=>HWcc broadcast clean request and the
 *    single-owner upgrade, serialized line by line.
 */

#ifndef COHESION_ARCH_L3BANK_HH
#define COHESION_ARCH_L3BANK_HH

#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "arch/await.hh"
#include "arch/protocol.hh"
#include "cache/cache_array.hh"
#include "coherence/backend.hh"
#include "coherence/directory.hh"
#include "cohesion/table_cache.hh"
#include "mem/types.hh"
#include "sim/cotask.hh"
#include "sim/stat_registry.hh"
#include "sim/stats.hh"

namespace coherence {
class MsiBackend;
class DlsBackend;
} // namespace coherence

namespace arch {

class Chip;

class L3Bank
{
  public:
    L3Bank(Chip &chip, unsigned id);

    unsigned id() const { return _id; }

    /** The protocol engine behind this bank. */
    coherence::Backend &backend() { return *_backend; }
    const coherence::Backend &backend() const { return *_backend; }

    /** The backend's directory, or null (DLS). */
    coherence::Directory *directoryOrNull()
    {
        return _backend->directoryOrNull();
    }
    const coherence::Directory *
    directoryOrNull() const
    {
        return _backend->directoryOrNull();
    }

    /** The backend's directory; panics for directoryless backends
     *  (callers that know they configured one keep this shorthand). */
    coherence::Directory &
    directory()
    {
        coherence::Directory *d = _backend->directoryOrNull();
        panic_if(!d, "backend '", _backend->name(), "' has no directory");
        return *d;
    }
    const coherence::Directory &
    directory() const
    {
        const coherence::Directory *d = _backend->directoryOrNull();
        panic_if(!d, "backend '", _backend->name(), "' has no directory");
        return *d;
    }

    cache::CacheArray &l3() { return _l3; }

    /** Accept a request (called at the fabric arrival event). */
    void receiveRequest(const Request &req);

    /** In-flight protocol transactions (queue-depth proxy). */
    unsigned
    inFlight() const
    {
        return static_cast<unsigned>(_running.size());
    }

    /** One live protocol transaction (watchdog in-flight dump). */
    struct TxnRecord
    {
        std::uint64_t id = 0;
        ReqType type = ReqType::Read;
        mem::Addr addr = 0;
        unsigned cluster = 0;
        sim::Tick start = 0;
    };

    /** Visit every live transaction record. */
    void
    forEachTxn(const std::function<void(const TxnRecord &)> &fn) const
    {
        for (const auto &[id, t] : _txns)
            fn(t);
    }

    /** True if @p base's line lock is held by a transaction (used by
     *  the coherence auditor's in-flux filter). */
    bool
    lineBusy(mem::Addr base) const
    {
        return _locks.busy(mem::lineNumber(mem::lineBase(base)));
    }

    /** Protocol transactions completed (watchdog progress signal —
     *  unlike event or message counts, this stagnates in a livelock). */
    std::uint64_t txnsCompleted() const { return _txnsCompleted.value(); }

    /**
     * Test hook: start a transaction that takes @p base's line lock
     * and never releases it, wedging every later request for the line
     * (exercises the deadlock watchdog).
     */
    void debugWedgeLine(mem::Addr base);

    /** Register this bank's stats under @p prefix in @p reg. */
    void registerStats(sim::StatRegistry &reg,
                       const std::string &prefix) const;

    /** Drop finished transaction frames (nodes recycle via _spare).
     *  Called lazily on request arrival; the checkpoint path calls it
     *  eagerly so a quiescent bank reads as empty. */
    void pruneTransactions();

    /**
     * Checkpoint hooks. Only legal when no transaction coroutine is
     * live (then every line lock is also free — locks are erased on
     * release with no waiters). The transaction-id sequence serializes
     * so post-restore trace/causal ids continue where they left off.
     */
    void
    checkpointState(sim::Serializer &ser) const
    {
        ser.tag("bank");
        if (!_running.empty() || !_txns.empty()) {
            throw sim::SnapshotError(
                "checkpoint with bank transactions in flight");
        }
        _l3.checkpointState(ser);
        _backend->checkpointState(ser);
        _tableCache.checkpointState(ser);
        ser.u64(_l3PortFree);
        ser.u64(_txnSeq);
        _transitions.checkpointState(ser);
        _tableLookups.checkpointState(ser);
        _dirEvictions.checkpointState(ser);
        _atomics.checkpointState(ser);
        _mergeConflicts.checkpointState(ser);
        _l3Hits.checkpointState(ser);
        _l3Misses.checkpointState(ser);
        _txnsCompleted.checkpointState(ser);
    }

    void
    restoreState(sim::Deserializer &des)
    {
        des.tag("bank");
        _l3.restoreState(des);
        _backend->restoreState(des);
        _tableCache.restoreState(des);
        _l3PortFree = des.u64();
        _txnSeq = des.u64();
        _transitions.restoreState(des);
        _tableLookups.restoreState(des);
        _dirEvictions.restoreState(des);
        _atomics.restoreState(des);
        _mergeConflicts.restoreState(des);
        _l3Hits.restoreState(des);
        _l3Misses.restoreState(des);
        _txnsCompleted.restoreState(des);
    }

    // --- Statistics -----------------------------------------------------
    std::uint64_t transitions() const { return _transitions.value(); }
    std::uint64_t tableLookups() const { return _tableLookups.value(); }
    std::uint64_t dirEvictions() const { return _dirEvictions.value(); }
    std::uint64_t atomics() const { return _atomics.value(); }
    /** Fig. 7b case 5b: overlapping multi-writer merges observed. */
    std::uint64_t mergeConflicts() const { return _mergeConflicts.value(); }
    std::uint64_t l3Hits() const { return _l3Hits.value(); }
    std::uint64_t l3Misses() const { return _l3Misses.value(); }
    const cohesion::TableCache &tableCache() const { return _tableCache; }

    /** Directory occupancy, routed through the backend (zero when
     *  directoryless). */
    std::uint32_t dirEntries() const { return _backend->dirEntries(); }
    std::uint32_t
    dirPeakEntries() const
    {
        return _backend->dirPeakEntries();
    }
    std::uint64_t
    dirInsertions() const
    {
        return _backend->dirInsertions();
    }

  private:
    /** Top-level protocol transaction for one request. @p trace_id is
     *  the nonzero async-span id when a JSON trace sink is attached. */
    sim::CoTask transaction(Request req, std::uint64_t trace_id);

    /** Atomic RMW at the bank (non-table addresses). */
    sim::CoTask handleAtomic(Request req, sim::lat::Cursor *lat);
    /** Snooped fine-table update: coherence domain transitions. */
    sim::CoTask handleTableUpdate(Request req, sim::lat::Cursor *lat);
    /** Writebacks / releases / flushes. */
    sim::CoTask handleWriteback(Request req, sim::lat::Cursor *lat);

    /** SWcc => HWcc transition for one line (Fig. 7b). */
    sim::CoTask swccToHwcc(mem::Addr base, std::uint32_t txn,
                           sim::lat::Cursor *lat);

    /** Decide SWcc/HWcc domain for a directory miss; may touch the
     *  fine table through the L3. Result via @p out_swcc. */
    sim::CoTask lookupDomain(mem::Addr base, std::uint32_t txn,
                             bool *out_swcc);

    /** Fan probes out to @p targets and collect results. */
    void sendProbes(const std::vector<unsigned> &targets, ProbeType type,
                    mem::Addr addr, std::uint32_t txn,
                    std::vector<std::pair<unsigned, ProbeResult>> *results,
                    AckGate *gate);

    /**
     * Ensure @p base is resident in the L3 (filling from DRAM and
     * writing back a dirty victim as needed); returns the line and
     * the tick at which the access completes. State changes are
     * applied immediately; the caller awaits the returned tick.
     * @p dram, when non-null, receives the DRAM-fill portion of the
     * access (zero on an L3 hit) for the latency-accounting split.
     */
    std::pair<cache::Line *, sim::Tick>
    l3AccessPrep(mem::Addr base, bool write, sim::Tick start,
                 sim::Tick *dram = nullptr);

    /** Merge @p mask words of @p data into the L3 copy of @p base. */
    sim::CoTask mergeIntoL3(mem::Addr base,
                            const std::array<std::uint8_t,
                                             mem::lineBytes> &data,
                            mem::WordMask mask);

    /** Reply to the requester (data words sized by @p data_words).
     *  With a live @p lat cursor, closes the residual span to Service
     *  and copies the stage timeline into the response. */
    void respond(const Request &req, Response resp, unsigned data_words,
                 sim::lat::Cursor *lat);

    /** Apply one atomic op; returns the old value. */
    std::uint32_t applyAtomic(cache::Line &line, mem::Addr addr,
                              AtomicOp op, std::uint32_t operand,
                              std::uint32_t operand2);

    /** Move @p task into _running, reusing a spare list node. */
    sim::CoTask &adoptTransaction(sim::CoTask &&task);

    /** The coroutine behind debugWedgeLine. */
    sim::CoTask wedge(mem::Addr base);

    // Backends are the other half of this class: they own the sharer
    // metadata and the read/write/recall flows, but drive the bank's
    // L3 port, lock table, probes, and responses directly.
    friend class coherence::MsiBackend;
    friend class coherence::DlsBackend;

    Chip &_chip;
    unsigned _id;
    cache::CacheArray _l3;
    cohesion::TableCache _tableCache;
    LineLockTable _locks;
    std::unique_ptr<coherence::Backend> _backend;
    sim::Tick _l3PortFree = 0;
    std::list<sim::CoTask> _running;
    std::list<sim::CoTask> _spare; ///< Recycled _running nodes.
    std::unordered_map<std::uint64_t, TxnRecord> _txns;
    std::uint64_t _txnSeq = 0;

    sim::Counter _transitions, _tableLookups, _dirEvictions, _atomics;
    sim::Counter _mergeConflicts, _l3Hits, _l3Misses;
    sim::Counter _txnsCompleted;
};

} // namespace arch

#endif // COHESION_ARCH_L3BANK_HH
