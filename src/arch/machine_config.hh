/**
 * @file
 * Machine configuration: the paper's Table 3 parameters plus the
 * coherence-mode selection (SWcc-only, HWcc-only, Cohesion) evaluated
 * in Section 4. Everything is parameterized so the benches can sweep
 * directory sizes (Fig. 9), L2 sizes (Fig. 3), and run scaled-down
 * core counts on small hosts.
 */

#ifndef COHESION_ARCH_MACHINE_CONFIG_HH
#define COHESION_ARCH_MACHINE_CONFIG_HH

#include <cstdint>
#include <string>

#include "coherence/directory.hh"
#include "mem/dram.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"

namespace arch {

/** Which coherence machinery the machine uses (Section 4.1). */
enum class CoherenceMode : std::uint8_t {
    SWccOnly, ///< No directory; software manages all coherence.
    HWccOnly, ///< Directory tracks every cached line; tables disabled.
    Cohesion  ///< Hybrid: directory + coarse/fine region tables.
};

const char *coherenceModeName(CoherenceMode m);

struct MachineConfig
{
    // --- Topology -------------------------------------------------------
    unsigned numClusters = 16;     ///< Paper: 128 clusters of 8 cores.
    unsigned coresPerCluster = 8;
    unsigned numL3Banks = 8;       ///< Paper: 32.
    unsigned numChannels = 2;      ///< Paper: 8 GDDR5 channels.

    // --- Caches (Table 3) -----------------------------------------------
    std::uint32_t l1iBytes = 2 * 1024;
    unsigned l1iAssoc = 2;
    std::uint32_t l1dBytes = 1024;
    unsigned l1dAssoc = 2;
    std::uint32_t l2Bytes = 64 * 1024;
    unsigned l2Assoc = 16;
    std::uint32_t l3BankBytes = 128 * 1024; ///< 4 MB / 32 banks.
    unsigned l3Assoc = 8;

    // --- Latencies / ports (core cycles @ 1.5 GHz) -----------------------
    sim::Tick l1Latency = 1;
    sim::Tick l2Latency = 4;
    unsigned l2Ports = 2;          ///< Accesses per cycle into the L2.
    sim::Tick l3Latency = 16;      ///< "16+" in Table 3; plus queuing.
    unsigned l3Ports = 1;
    sim::Tick netLatency = 20;     ///< Cluster<->bank one-way latency
                                   ///< (bus + tree + crossbar).
    unsigned linkBytesPerCycle = 8;///< Serialization bandwidth per
                                   ///< cluster uplink and per bank port.
    mem::DramTiming dram;

    // --- Coherence --------------------------------------------------------
    CoherenceMode mode = CoherenceMode::Cohesion;
    coherence::DirectoryConfig directory =
        coherence::DirectoryConfig::optimistic();
    /**
     * Registered coherence-backend name ("msi-fullmap", "dir4b",
     * "dls"). Empty selects the legacy default derived from the
     * directory's sharer kind; Chip's constructor resolves and
     * validates the name (see coherence::resolveBackendName) and
     * forces the sharer kind to match an explicit MSI variant.
     */
    std::string backend;
    /**
     * Per-bank on-die cache of fine-grain table words (Section 3.4's
     * optional optimization); 0 disables it and every fine-grain
     * lookup goes through the L3.
     */
    std::uint32_t tableCacheEntries = 0;
    /**
     * Grant Exclusive on sole-sharer reads (MESI) instead of the
     * paper's MSI. Off by default — the paper rejects E because
     * read-shared data pays an extra downgrade probe; the ablation
     * bench measures that tradeoff.
     */
    bool useMesi = false;

    // --- Execution model ---------------------------------------------------
    /**
     * Conservative-quantum slack: how far a core's local clock may run
     * ahead of global simulated time between event-queue interactions.
     */
    sim::Tick slackWindow = 400;
    /** Watchdog: abort if simulated time exceeds this (deadlock guard). */
    sim::Tick maxCycles = 500'000'000;
    /**
     * Livelock watchdog: if no forward progress (instructions retired,
     * bank transactions completed, responses delivered) happens within
     * this many ticks, runUntilQuiescent throws DeadlockError with an
     * in-flight transaction dump. 0 disables the windowed check (the
     * maxCycles bound still applies).
     */
    sim::Tick watchdogWindow = 2'000'000;
    /**
     * Intra-run parallelism: number of simulation shards (per-shard
     * event queues run by a per-chip thread pool with conservative
     * lookahead over netLatency). Results are bit-identical for every
     * value; 1 simulates on the calling thread alone. Clamped to the
     * number of schedulable components (clusters + DRAM-channel bank
     * groups).
     */
    unsigned shards = 1;

    // --- Fault injection ---------------------------------------------------
    /** Fault campaign; all-zero rates (the default) disable injection. */
    sim::FaultPlan faults;

    unsigned totalCores() const { return numClusters * coresPerCluster; }
    std::uint32_t l3TotalBytes() const { return numL3Banks * l3BankBytes; }

    /** The paper's full-scale 1024-core configuration (Table 3). */
    static MachineConfig
    paper1024()
    {
        MachineConfig c;
        c.numClusters = 128;
        c.numL3Banks = 32;
        c.numChannels = 8;
        return c;
    }

    /**
     * A scaled configuration that preserves the paper's per-cluster
     * ratios: @p clusters clusters of eight cores, one L3 bank per
     * four clusters (min 2), one channel per four banks (min 1).
     */
    static MachineConfig
    scaled(unsigned clusters)
    {
        MachineConfig c;
        c.numClusters = clusters;
        unsigned banks = clusters / 4;
        if (banks < 2)
            banks = 2;
        c.numL3Banks = banks;
        unsigned channels = banks / 4;
        if (channels < 1)
            channels = 1;
        c.numChannels = channels;
        return c;
    }

    /** Human-readable one-line summary. */
    std::string summary() const;
};

} // namespace arch

#endif // COHESION_ARCH_MACHINE_CONFIG_HH
