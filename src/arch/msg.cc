#include "arch/msg.hh"

namespace arch {

const char *
msgClassName(MsgClass c)
{
    switch (c) {
      case MsgClass::ReadRequest:
        return "ReadRequests";
      case MsgClass::WriteRequest:
        return "WriteRequests";
      case MsgClass::InstructionRequest:
        return "InstructionRequests";
      case MsgClass::UncachedAtomic:
        return "UncachedAtomics";
      case MsgClass::CacheEviction:
        return "CacheEvictions";
      case MsgClass::SoftwareFlush:
        return "SoftwareFlushes";
      case MsgClass::ReadRelease:
        return "ReadReleases";
      case MsgClass::ProbeResponse:
        return "ProbeResponses";
      case MsgClass::NumClasses:
        break;
    }
    return "?";
}

void
MsgCounters::exportTo(sim::StatSet &out, const std::string &prefix) const
{
    for (unsigned i = 0; i < numMsgClasses; ++i) {
        out.add(prefix + msgClassName(static_cast<MsgClass>(i)),
                static_cast<double>(_counts[i]));
    }
}

} // namespace arch
