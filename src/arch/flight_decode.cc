#include "arch/flight_decode.hh"

#include <sstream>

#include "arch/protocol.hh"
#include "cache/cache_array.hh"

namespace arch {

namespace {

using FR = sim::FlightRecorder;
using Ev = FR::Ev;

const char *
stateName(std::uint8_t s)
{
    switch (static_cast<cache::CohState>(s)) {
      case cache::CohState::Invalid:   return "I";
      case cache::CohState::Shared:    return "S";
      case cache::CohState::Exclusive: return "E";
      case cache::CohState::Modified:  return "M";
    }
    return "?";
}

void
maskTo(std::ostream &os, std::uint8_t mask)
{
    os << "mask=0x" << std::hex << unsigned(mask) << std::dec;
}

} // namespace

std::string
describeRecordBody(const sim::FlightRecorder::Record &r)
{
    std::ostringstream os;
    Ev e = static_cast<Ev>(r.kind);
    os << FR::compName(r.comp) << ' ' << FR::evName(e);

    auto req_type = [&] { os << ' ' << reqTypeName(static_cast<ReqType>(r.a)); };
    auto probe_type = [&] {
        os << ' ' << probeTypeName(static_cast<ProbeType>(r.a));
    };
    auto line = [&] {
        os << " line 0x" << std::hex << r.line << std::dec;
    };
    auto msg = [&] { os << " msg#" << r.txn; };

    switch (e) {
      case Ev::MsgSend:
        req_type();
        line();
        msg();
        os << " class=" << msgClassName(static_cast<MsgClass>(r.b));
        break;
      case Ev::MsgRecv:
        req_type();
        line();
        os << " from cluster" << r.b;
        msg();
        break;
      case Ev::MsgDrop:
        req_type();
        line();
        msg();
        os << ((r.b & 0x80000000u) ? " (response)" : " (request)")
           << " drop#" << (r.b & 0x7FFFFFFFu);
        break;
      case Ev::MsgRetransmit:
        req_type();
        line();
        msg();
        os << " delivered after " << r.b
           << (r.b == 1 ? " drop" : " drops");
        break;
      case Ev::RetransmitExhausted:
        req_type();
        line();
        msg();
        os << " retransmit budget spent (" << r.b
           << " drops); delivery forced";
        break;
      case Ev::RespSend:
      case Ev::RespRecv:
        req_type();
        line();
        msg();
        if (r.b & FR::respIncoherent)
            os << " incoherent(SWcc)";
        if (r.b & FR::respGrant)
            os << " exclusive-grant";
        break;
      case Ev::ProbeSend:
        probe_type();
        line();
        os << " -> cluster" << r.b;
        msg();
        break;
      case Ev::ProbeRecv:
        probe_type();
        line();
        os << ((r.b & FR::probeFound)
                   ? ((r.b & FR::probeDirty) ? " hit dirty" : " hit clean")
                   : " miss");
        msg();
        break;
      case Ev::ProbeAck:
        probe_type();
        line();
        os << " from cluster" << r.b;
        msg();
        break;
      case Ev::DirInsert:
        line();
        os << " state=" << stateName(r.a) << " cluster" << r.b;
        msg();
        break;
      case Ev::DirState:
        line();
        os << " state=" << stateName(r.a) << " sharers=" << r.b;
        msg();
        break;
      case Ev::DirErase:
        line();
        msg();
        break;
      case Ev::SwccFlush:
      case Ev::Writeback:
        line();
        os << ' ';
        maskTo(os, r.a);
        msg();
        break;
      case Ev::SwccInv:
      case Ev::WbAck:
        line();
        msg();
        break;
      case Ev::Fill:
        line();
        if (r.b & FR::respIncoherent)
            os << " incoherent(SWcc)";
        else
            os << " state=" << stateName(r.a);
        msg();
        break;
      case Ev::Evict:
        line();
        os << ((r.b & FR::respIncoherent) ? " SWcc" : " HWcc")
           << ((r.a & FR::evictDirty) ? " dirty" : " clean");
        break;
      case Ev::TableRead:
        line();
        os << " -> " << (r.a ? "SWcc" : "HWcc")
           << (r.b == FR::tableFromCache ? " (table$)" : " (L3/mem)");
        msg();
        break;
      case Ev::TableUpdate:
        line();
        os << " bit=" << unsigned(r.a);
        msg();
        break;
      case Ev::TransBegin:
        line();
        os << (r.a ? " HWcc=>SWcc (Fig. 7a)" : " SWcc=>HWcc (Fig. 7b)");
        msg();
        break;
      case Ev::TransStep:
        line();
        os << ' ' << FR::stepName(static_cast<FR::Step>(r.a));
        if (r.b)
            os << " cluster" << r.b;
        msg();
        break;
      case Ev::TransEnd:
        line();
        os << (r.a ? " now SWcc" : " now HWcc");
        msg();
        break;
      case Ev::TxnBegin:
        req_type();
        line();
        os << " txn#" << r.txn << " msg#" << r.b;
        break;
      case Ev::TxnEnd:
        req_type();
        line();
        os << " txn#" << r.txn;
        break;
      case Ev::None:
      case Ev::numEvents:
        break;
    }
    return os.str();
}

std::string
describeRecord(const sim::FlightRecorder::Record &r)
{
    std::ostringstream os;
    os << "t=" << r.tick << ' ' << describeRecordBody(r);
    return os.str();
}

} // namespace arch
