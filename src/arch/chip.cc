#include "arch/chip.hh"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <sstream>

#include "arch/flight_decode.hh"
#include "coherence/auditor.hh"
#include "coherence/line_profiler.hh"
#include "sim/host_profiler.hh"
#include "sim/logging.hh"
#include "sim/trace_json.hh"

namespace arch {

namespace {

// Drop-retransmit model: the drop decision is made synchronously at
// send time, each consecutive drop adds a doubling backoff to the
// delivery tick, and after maxDropRetransmits the message goes through
// unconditionally — injected losses are never permanent.
constexpr unsigned maxDropRetransmits = 8;
constexpr sim::Tick dropBackoffBase = 16;
constexpr sim::Tick dropBackoffCap = 2048;

/** Clamp the shard count to the schedulable components: clusters plus
 *  DRAM-channel bank groups — more shards than that would only idle. */
MachineConfig
withClampedShards(MachineConfig c)
{
    unsigned most = c.numClusters + c.numChannels;
    if (c.shards < 1)
        c.shards = 1;
    if (c.shards > most)
        c.shards = most;
    return c;
}

/**
 * Clamp shards and resolve the coherence-backend name (throws
 * std::runtime_error listing the registered backends if unknown). An
 * explicit MSI variant forces the matching sharer representation so
 * `--backend dir4b` alone selects limited pointers.
 */
MachineConfig
normalized(MachineConfig c)
{
    c = withClampedShards(std::move(c));
    c.backend = coherence::resolveBackendName(c.backend, c.directory);
    if (c.backend == "dir4b")
        c.directory.sharerKind = coherence::SharerKind::LimitedPtr;
    else if (c.backend == "msi-fullmap")
        c.directory.sharerKind = coherence::SharerKind::FullMap;
    return c;
}

std::vector<std::unique_ptr<sim::EventQueue>>
makeQueues(unsigned n)
{
    std::vector<std::unique_ptr<sim::EventQueue>> qs;
    qs.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        qs.push_back(std::make_unique<sim::EventQueue>());
    return qs;
}

/** Canonical merge order for staged flight-recorder records, used
 *  under stable_sort. Key is (tick, comp) only: every cluster/bank
 *  component is pinned to one shard, so its staged records already sit
 *  in its deterministic processing order for every shard count, and
 *  stability preserves that causal order (a full-content key would
 *  reorder e.g. a TransBegin after the ProbeSends it caused at the
 *  same tick). compChip records alone are emitted from whichever shard
 *  holds the sender/receiver, so they get a full-content tiebreak to
 *  stay shard-count invariant. */
/** Class-bucket namer handed to the accountant (sim/ cannot name
 *  arch::MsgClass, so the binding happens here). */
const char *
latClassName(unsigned c)
{
    return msgClassName(static_cast<MsgClass>(c));
}

bool
recordBefore(const sim::FlightRecorder::Record &x,
             const sim::FlightRecorder::Record &y)
{
    if (x.tick != y.tick)
        return x.tick < y.tick;
    if (x.comp != y.comp)
        return x.comp < y.comp;
    if (x.comp != sim::FlightRecorder::compChip)
        return false;
    if (x.kind != y.kind)
        return x.kind < y.kind;
    if (x.line != y.line)
        return x.line < y.line;
    if (x.txn != y.txn)
        return x.txn < y.txn;
    if (x.a != y.a)
        return x.a < y.a;
    return x.b < y.b;
}

} // namespace

Chip::Chip(const MachineConfig &config, mem::Addr table_base)
    : _config(normalized(config)),
      _backendTraits(*coherence::backendTraits(_config.backend)),
      _eqs(makeQueues(_config.shards)),
      _router(_config.shards,
              _config.numClusters + _config.numL3Banks + 1),
      _tracer(*_eqs[0]),
      _map(_config.numL3Banks, _config.numChannels, table_base),
      _dram(_map, _config.dram), _fabric(_config),
      _timeSeries(*_eqs[0]), _latLanes(_config.shards),
      _recStage(_config.shards)
{
    _faults.configure(_config.faults, _config.numClusters,
                      _config.numL3Banks);
    _latAcc.configure(numMsgClasses, _config.shards);
    // Components capture queue references at construction (e.g. the
    // bank line-lock tables); bind them to their home shard's queue.
    for (unsigned c = 0; c < _config.numClusters; ++c) {
        sim::ShardGuard g(shardOfCluster(c));
        _clusters.push_back(std::make_unique<Cluster>(*this, c));
    }
    for (unsigned b = 0; b < _config.numL3Banks; ++b) {
        sim::ShardGuard g(shardOfBank(b));
        _banks.push_back(std::make_unique<L3Bank>(*this, b));
    }
    _crew = std::make_unique<sim::ShardCrew>(_config.shards);
}

Chip::~Chip() = default;

std::uint64_t
Chip::totalEventsRun() const
{
    std::uint64_t n = 0;
    for (const auto &q : _eqs)
        n += q->eventsRun();
    return n;
}

void
Chip::postBarrierWake(unsigned cluster, sim::Tick when, sim::Event cb)
{
    _router.post(srcKeyBarrier(), shardOfCluster(cluster), when,
                 std::move(cb));
}

void
Chip::deliverRequest(unsigned cluster_id, Request req, unsigned data_words,
                     sim::Tick depart)
{
    // The sender stamps sendTick at issue; only fill it in here when
    // it was left unset so retransmit backoff (folded into the arrival
    // tick below) inflates the measured latency instead of hiding it.
    if (req.sendTick == 0)
        req.sendTick = depart;
    unsigned bank_id = _map.bankOf(req.addr);
    sim::Tick nominal =
        _fabric.c2bSend(cluster_id, msgBytes(data_words), depart);
    unsigned drops = 0;
    bool dup = false;
    if (_faults.enabled()) {
        using sim::FaultSite;
        if (_faults.fire(FaultSite::FabricC2BDelay, cluster_id))
            nominal += _faults.delayTicks(FaultSite::FabricC2BDelay);
        sim::Tick backoff = dropBackoffBase;
        while (drops < maxDropRetransmits &&
               _faults.fire(FaultSite::FabricC2BDrop, cluster_id)) {
            ++drops;
            rec(sim::FlightRecorder::Ev::MsgDrop, sim::FlightRecorder::compChip,
                mem::lineBase(req.addr), req.msgId,
                static_cast<std::uint8_t>(req.type), drops);
            nominal += backoff;
            // Backoff ticks are blamed to the Retry stage, not the
            // fabric hop, by the bank-side accounting.
            req.retryPenalty += static_cast<std::uint32_t>(backoff);
            backoff = std::min(backoff * 2, dropBackoffCap);
        }
        if (drops == maxDropRetransmits) {
            // Retransmit budget spent: the message force-delivers at
            // the last computed arrival tick. This used to happen
            // silently; surface it so fault campaigns can see how
            // often the bound actually engages.
            _retryExhausted.fetch_add(1, std::memory_order_relaxed);
            rec(sim::FlightRecorder::Ev::RetransmitExhausted,
                sim::FlightRecorder::compChip, mem::lineBase(req.addr),
                req.msgId, static_cast<std::uint8_t>(req.type), drops);
        }
        // Atomics are excluded: a duplicated RMW executes twice.
        dup = req.type != ReqType::Atomic &&
              _faults.fire(FaultSite::FabricC2BDup, cluster_id);
        if (drops || dup) {
            TRACE(_tracer, sim::Category::Fault, "c2b ",
                  reqTypeName(req.type), " 0x", std::hex, req.addr,
                  std::dec, drops ? " dropped" : " duplicated");
        }
    }
    req.retries = static_cast<std::uint8_t>(drops);
    if (drops) {
        _reqRetries[static_cast<unsigned>(msgClassFor(req.type))].fetch_add(
            drops, std::memory_order_relaxed);
    }
    nominal = _fabric.orderC2B(cluster_id, bank_id, nominal);
    routeRequest(cluster_id, bank_id, req, nominal, depart, drops);
    if (dup) {
        sim::Tick at = _fabric.orderC2B(cluster_id, bank_id, nominal + 1);
        routeRequest(cluster_id, bank_id, req, at, depart, 0);
    }
}

void
Chip::routeRequest(unsigned cluster_id, unsigned bank_id, Request req,
                   sim::Tick nominal, sim::Tick depart, unsigned drops)
{
    _router.post(
        srcKeyCluster(cluster_id), shardOfBank(bank_id), nominal,
        [this, bank_id, req, nominal, depart, drops]() {
            sim::Tick accept = _fabric.c2bAccept(bank_id, nominal, depart);
            auto deliver = [this, bank_id, req, drops]() {
                for (unsigned i = 0; i < drops; ++i)
                    _faults.countRecovered(sim::FaultSite::FabricC2BDrop);
                if (drops) {
                    rec(sim::FlightRecorder::Ev::MsgRetransmit,
                        sim::FlightRecorder::compChip,
                        mem::lineBase(req.addr), req.msgId,
                        static_cast<std::uint8_t>(req.type), drops);
                }
                bank(bank_id).receiveRequest(req);
            };
            if (accept == eq().now())
                deliver();
            else
                eq().schedule(accept, std::move(deliver));
        });
}

void
Chip::sendResponse(unsigned bank_id, unsigned cluster_id, Response resp,
                   unsigned data_words)
{
    sim::Tick depart = eq().now();
    resp.sendTick = depart;
    sim::Tick nominal = _fabric.b2cSend(bank_id, msgBytes(data_words), depart);
    unsigned drops = 0;
    bool dup = false;
    if (_faults.enabled()) {
        using sim::FaultSite;
        if (_faults.fire(FaultSite::FabricB2CDelay, bank_id))
            nominal += _faults.delayTicks(FaultSite::FabricB2CDelay);
        sim::Tick backoff = dropBackoffBase;
        while (drops < maxDropRetransmits &&
               _faults.fire(FaultSite::FabricB2CDrop, bank_id)) {
            ++drops;
            rec(sim::FlightRecorder::Ev::MsgDrop, sim::FlightRecorder::compChip,
                mem::lineBase(resp.addr), resp.msgId,
                static_cast<std::uint8_t>(resp.type), 0x80000000u | drops);
            nominal += backoff;
            resp.retryPenalty += static_cast<std::uint32_t>(backoff);
            backoff = std::min(backoff * 2, dropBackoffCap);
        }
        if (drops == maxDropRetransmits) {
            _retryExhausted.fetch_add(1, std::memory_order_relaxed);
            rec(sim::FlightRecorder::Ev::RetransmitExhausted,
                sim::FlightRecorder::compChip, mem::lineBase(resp.addr),
                resp.msgId, static_cast<std::uint8_t>(resp.type), drops);
        }
        // A duplicated Atomic ack would complete the core's op twice;
        // all other responses are deduplicated by msgId at the cluster.
        dup = resp.type != ReqType::Atomic &&
              _faults.fire(FaultSite::FabricB2CDup, bank_id);
        if (drops || dup) {
            TRACE(_tracer, sim::Category::Fault, "b2c ",
                  reqTypeName(resp.type), " 0x", std::hex, resp.addr,
                  std::dec, drops ? " dropped" : " duplicated");
        }
    }
    resp.retries = static_cast<std::uint8_t>(drops);
    if (drops)
        _respRetries.fetch_add(drops, std::memory_order_relaxed);
    nominal = _fabric.orderB2C(bank_id, cluster_id, nominal);
    auto route = [this, cluster_id, resp, depart](sim::Tick at,
                                                  unsigned n_drops) {
        _router.post(
            srcKeyBank(_map.bankOf(resp.addr)), shardOfCluster(cluster_id),
            at, [this, cluster_id, resp, at, depart, n_drops]() {
                sim::Tick accept = _fabric.b2cAccept(cluster_id, at, depart);
                auto deliver = [this, cluster_id, resp, n_drops]() {
                    for (unsigned i = 0; i < n_drops; ++i) {
                        _faults.countRecovered(
                            sim::FaultSite::FabricB2CDrop);
                    }
                    if (n_drops) {
                        rec(sim::FlightRecorder::Ev::MsgRetransmit,
                            sim::FlightRecorder::compChip,
                            mem::lineBase(resp.addr), resp.msgId,
                            static_cast<std::uint8_t>(resp.type), n_drops);
                    }
                    _respDelivered.fetch_add(1, std::memory_order_relaxed);
                    cluster(cluster_id).handleResponse(resp);
                };
                if (accept == eq().now())
                    deliver();
                else
                    eq().schedule(accept, std::move(deliver));
            });
    };
    route(nominal, drops);
    if (dup) {
        sim::Tick at = _fabric.orderB2C(bank_id, cluster_id, nominal + 1);
        route(at, 0);
    }
}

void
Chip::sendProbe(unsigned bank_id, unsigned cluster_id, ProbeType type,
                mem::Addr addr, std::uint32_t txn,
                std::function<void(unsigned, const ProbeResult &)> done)
{
    using FR = sim::FlightRecorder;
    rec(FR::Ev::ProbeSend, FR::compBank(bank_id), mem::lineBase(addr), txn,
        static_cast<std::uint8_t>(type), cluster_id);
    sim::Tick depart = eq().now();
    sim::Tick nominal = _fabric.b2cSend(bank_id, msgBytes(0), depart);
    // Probes participate in AckGate fan-ins: a dropped or duplicated
    // probe would underflow/overflow the gate, so probes only suffer
    // delay faults (on either leg).
    if (_faults.enabled() &&
        _faults.fire(sim::FaultSite::FabricB2CDelay, bank_id))
        nominal += _faults.delayTicks(sim::FaultSite::FabricB2CDelay);
    nominal = _fabric.orderB2C(bank_id, cluster_id, nominal);
    _router.post(
        srcKeyBank(bank_id), shardOfCluster(cluster_id), nominal,
        [this, bank_id, cluster_id, type, addr, txn, depart, nominal,
         done = std::move(done)]() mutable {
            sim::Tick accept = _fabric.b2cAccept(cluster_id, nominal, depart);
            _latLanes[sim::tlsShard].probe.sample(accept - depart);
            auto apply = [this, bank_id, cluster_id, type, addr, txn,
                          done = std::move(done)]() mutable {
                probeArrived(bank_id, cluster_id, type, addr, txn,
                             std::move(done));
            };
            if (accept == eq().now())
                apply();
            else
                eq().schedule(accept, std::move(apply));
        });
}

void
Chip::probeArrived(unsigned bank_id, unsigned cluster_id, ProbeType type,
                   mem::Addr addr, std::uint32_t txn,
                   std::function<void(unsigned, const ProbeResult &)> done)
{
    using FR = sim::FlightRecorder;
    ProbeResult r = cluster(cluster_id).handleProbe(type, addr);
    rec(FR::Ev::ProbeRecv, FR::compCluster(cluster_id), mem::lineBase(addr),
        txn, static_cast<std::uint8_t>(type),
        (r.found ? FR::probeFound : 0) | (r.dirty ? FR::probeDirty : 0));
    cluster(cluster_id).msgCounters().count(MsgClass::ProbeResponse);
    unsigned words =
        r.dirty ? std::popcount(static_cast<unsigned>(r.dirtyMask)) : 0;
    sim::Tick depart = eq().now();
    sim::Tick back = _fabric.c2bSend(cluster_id, msgBytes(words), depart);
    if (_faults.enabled() &&
        _faults.fire(sim::FaultSite::FabricC2BDelay, cluster_id))
        back += _faults.delayTicks(sim::FaultSite::FabricC2BDelay);
    back = _fabric.orderC2B(cluster_id, bank_id, back);
    _router.post(
        srcKeyCluster(cluster_id), shardOfBank(bank_id), back,
        [this, bank_id, cluster_id, type, addr, txn, r, back, depart,
         done = std::move(done)]() mutable {
            sim::Tick accept = _fabric.c2bAccept(bank_id, back, depart);
            sampleReqLatency(MsgClass::ProbeResponse, accept - depart);
            auto ack = [this, bank_id, cluster_id, type, addr, txn, r,
                        done = std::move(done)]() {
                rec(FR::Ev::ProbeAck, FR::compBank(bank_id),
                    mem::lineBase(addr), txn,
                    static_cast<std::uint8_t>(type), cluster_id);
                // The ack continuation runs bank-side transaction logic.
                sim::HostProfiler::Scope hp(
                    sim::HostProfiler::Phase::BankMsg);
                done(cluster_id, r);
            };
            if (accept == eq().now())
                ack();
            else
                eq().schedule(accept, std::move(ack));
        });
}

std::uint32_t
Chip::coherentRead32(mem::Addr a)
{
    mem::Addr base = mem::lineBase(a);
    mem::WordMask bit = mem::wordBit(a);

    // A dirty word in any L2 is the newest value.
    for (auto &cl : _clusters) {
        if (cache::Line *l = cl->l2().probe(base)) {
            if ((l->dirtyMask & bit) && (l->validMask & bit)) {
                std::uint32_t v = 0;
                l->read(a, &v, 4);
                return v;
            }
        }
    }
    // Then the L3 copy, then memory.
    cache::Line *l3line = bank(_map.bankOf(base)).l3().probe(base);
    if (l3line && (l3line->validMask & bit)) {
        std::uint32_t v = 0;
        l3line->read(a, &v, 4);
        return v;
    }
    return _store.readT<std::uint32_t>(a);
}

void
Chip::injectFault(sim::FaultSite site, mem::Addr a, std::uint32_t xor_mask)
{
    using sim::FaultSite;
    mem::Addr base = mem::lineBase(a);
    mem::WordMask bit = mem::wordBit(a);

    // Pure bit flip: perturb the stored bytes without touching the
    // dirty/valid bookkeeping (that is what the meta sites are for).
    auto xor_data = [&](cache::Line &l) {
        unsigned off = a & (mem::lineBytes - 1);
        std::uint32_t v = 0;
        std::memcpy(&v, l.data.data() + off, 4);
        v ^= xor_mask;
        std::memcpy(l.data.data() + off, &v, 4);
    };
    auto xor_meta = [&](cache::Line &l) {
        l.dirtyMask ^= static_cast<mem::WordMask>(xor_mask & 0xFF);
        l.validMask ^= static_cast<mem::WordMask>((xor_mask >> 8) & 0xFF);
    };

    switch (site) {
      case FaultSite::MemDataFlip:
        // Corrupt the newest visible copy, mirroring coherentRead32's
        // search order, so a verifier must observe the flip.
        for (auto &cl : _clusters) {
            if (cache::Line *l = cl->l2().probe(base)) {
                if ((l->dirtyMask & bit) && (l->validMask & bit)) {
                    xor_data(*l);
                    _faults.countInjected(site);
                    return;
                }
            }
        }
        if (cache::Line *l3 = bank(_map.bankOf(base)).l3().probe(base)) {
            if (l3->validMask & bit) {
                xor_data(*l3);
                _faults.countInjected(site);
                return;
            }
        }
        _store.writeT(a, _store.readT<std::uint32_t>(a) ^ xor_mask);
        _faults.countInjected(site);
        return;

      case FaultSite::L2DataFlip:
      case FaultSite::L2MetaFlip:
        for (auto &cl : _clusters) {
            if (cache::Line *l = cl->l2().probe(base)) {
                site == FaultSite::L2DataFlip ? xor_data(*l) : xor_meta(*l);
                _faults.countInjected(site);
                return;
            }
        }
        return; // no resident copy: nothing to corrupt

      case FaultSite::L3DataFlip:
      case FaultSite::L3MetaFlip:
        if (cache::Line *l = bank(_map.bankOf(base)).l3().probe(base)) {
            site == FaultSite::L3DataFlip ? xor_data(*l) : xor_meta(*l);
            _faults.countInjected(site);
        }
        return;

      default:
        panic("injectFault: site ", sim::faultSiteName(site),
              " has no targeted form");
    }
}

bool
Chip::pumpEligible() const
{
    using sim::FaultSite;
    return _faults.armed(FaultSite::L2DataFlip) ||
           _faults.armed(FaultSite::L2MetaFlip) ||
           _faults.armed(FaultSite::L3DataFlip) ||
           _faults.armed(FaultSite::L3MetaFlip);
}

void
Chip::faultPump()
{
    using sim::FaultSite;
    // The pump's own Rng stream: victim picks must not perturb the
    // per-component fault lanes.
    sim::Rng &rng = _faults.pumpRng();

    auto flip_in = [&](cache::CacheArray &arr, FaultSite site, bool meta) {
        // Hand-rolled fire(): the injection only counts if the chosen
        // array has a valid line to corrupt.
        if (!_faults.armed(site) ||
            rng.uniform() >= _faults.plan().site(site).rate)
            return;
        cache::Line *l = arr.nthValidLine(rng.next());
        if (!l)
            return;
        if (meta)
            l->flipMetaBit(
                static_cast<unsigned>(rng.below(2 * mem::wordsPerLine)));
        else
            l->flipDataBit(
                static_cast<unsigned>(rng.below(mem::lineBytes * 8)));
        _faults.countInjected(site);
        TRACE(_tracer, sim::Category::Fault, sim::faultSiteName(site),
              ": line 0x", std::hex, l->base);
    };

    flip_in(cluster(rng.below(numClusters())).l2(), FaultSite::L2DataFlip,
            false);
    flip_in(cluster(rng.below(numClusters())).l2(), FaultSite::L2MetaFlip,
            true);
    flip_in(bank(rng.below(numBanks())).l3(), FaultSite::L3DataFlip, false);
    flip_in(bank(rng.below(numBanks())).l3(), FaultSite::L3MetaFlip, true);
}

void
Chip::enableAudit(sim::Tick period)
{
    // An auditor may already exist without a cadence (auditNow(), or a
    // snapshot restore carrying its counters); enabling then only sets
    // the period.
    if (_auditPeriod)
        return;
    if (period == 0) {
        // Cost-scaled default: a full pass walks every L2 and
        // directory, so big machines audit less often.
        period = std::max<sim::Tick>(4096, totalCores() * 256);
    }
    if (!_auditor)
        _auditor = std::make_unique<coherence::Auditor>(*this);
    _auditPeriod = period;
}

void
Chip::auditNow()
{
    if (!_auditor)
        _auditor = std::make_unique<coherence::Auditor>(*this);
    _auditor->auditNow();
}

void
Chip::verifyNow()
{
    if (!_auditor)
        _auditor = std::make_unique<coherence::Auditor>(*this);
    _auditor->verifyNow();
}

std::string
Chip::inFlightDump() const
{
    std::ostringstream os;
    std::vector<L3Bank::TxnRecord> txns;
    for (const auto &b : _banks) {
        b->forEachTxn(
            [&](const L3Bank::TxnRecord &t) { txns.push_back(t); });
    }
    std::sort(txns.begin(), txns.end(),
              [](const L3Bank::TxnRecord &a, const L3Bank::TxnRecord &b) {
                  return a.start != b.start ? a.start < b.start
                                            : a.id < b.id;
              });
    for (const L3Bank::TxnRecord &t : txns) {
        os << "  bank" << _map.bankOf(t.addr) << " txn#" << t.id << ' '
           << reqTypeName(t.type) << " 0x" << std::hex << t.addr
           << std::dec << " cluster" << t.cluster << " since t=" << t.start
           << '\n';
    }
    for (const auto &cl : _clusters) {
        cl->forEachMshr([&](mem::Addr base, ReqType t, unsigned waiters) {
            os << "  cluster" << cl->id() << " mshr 0x" << std::hex << base
               << std::dec << ' ' << reqTypeName(t) << " waiters="
               << waiters << '\n';
        });
        if (cl->outstandingWrites()) {
            os << "  cluster" << cl->id() << " outstanding writebacks: "
               << cl->outstandingWrites() << '\n';
        }
    }
    return os.str();
}

void
Chip::sampleOccupancy()
{
    std::array<double, numSegments> counts{};
    double total = 0;
    for (auto &b : _banks) {
        const coherence::Directory *dir = b->directoryOrNull();
        if (!dir)
            continue; // directoryless backend: occupancy is zero
        dir->forEach([&](const coherence::DirEntry &e) {
            Segment seg = _classifier ? _classifier(e.base)
                                      : Segment::HeapGlobal;
            counts[static_cast<unsigned>(seg)] += 1;
            total += 1;
        });
    }
    for (unsigned s = 0; s < numSegments; ++s)
        _occupancy[s].sample(counts[s]);
    _occupancyTotal.sample(total);
    _lastOccupancy = counts;
    _lastOccupancyTotal = total;
}

void
Chip::enableOccupancySampling(sim::Tick period)
{
    if (_timeSeries.enabled())
        return;
    _samplePeriod = period;

    // One directory walk per sampling point feeds every dir.* probe.
    _timeSeries.setPreSample([this]() { sampleOccupancy(); });
    _timeSeries.add("dir.total", [this]() { return _lastOccupancyTotal; });
    _timeSeries.add("dir.code", [this]() { return _lastOccupancy[0]; });
    _timeSeries.add("dir.stack", [this]() { return _lastOccupancy[1]; });
    _timeSeries.add("dir.heap_global",
                    [this]() { return _lastOccupancy[2]; });
    for (unsigned b = 0; b < _banks.size(); ++b) {
        _timeSeries.add(sim::cat("bank", b, ".inflight"), [this, b]() {
            return static_cast<double>(_banks[b]->inFlight());
        });
    }
    // Message rate: delta of the aggregate L2-output count per period.
    _timeSeries.add("net.msgs",
                    [this, prev = std::uint64_t(0)]() mutable {
                        std::uint64_t cur = aggregateMessages().total();
                        double delta = static_cast<double>(cur - prev);
                        prev = cur;
                        return delta;
                    });
    // Host-side occupancy gauges ride the same cadence, but only when
    // the self-profiler is on: they describe the simulator (queue
    // pressure, MSHR load), not the simulated machine, and existing
    // time-series consumers should not see new columns by default.
    if (sim::HostProfiler::enabled()) {
        _timeSeries.add("host.eq.pending", [this]() {
            double n = 0;
            for (const auto &q : _eqs)
                n += static_cast<double>(q->pending());
            return n;
        });
        _timeSeries.add("host.mshr.occupancy", [this]() {
            double n = 0;
            for (const auto &cl : _clusters)
                n += static_cast<double>(cl->mshrCount());
            return n;
        });
    }
    _timeSeries.start(period);
}

void
Chip::enableRecorder(std::uint32_t capacity)
{
    _recorder.enable(capacity);
    updateRecAny();
}

void
Chip::enableLineProfiler(unsigned top_n)
{
    if (!_profiler)
        _profiler =
            std::make_unique<coherence::LineProfiler>(_coarseTable, top_n);
    updateRecAny();
}

void
Chip::setWatchLine(mem::Addr addr)
{
    _watchLine = mem::lineBase(addr);
    updateRecAny();
}

void
Chip::updateRecAny()
{
    _recSlow = _profiler != nullptr || _watchLine != ~mem::Addr(0);
    _recAny = _recorder.enabled() || _recSlow;
    // Staging is unconditional whenever anything records: the ring (and
    // with it recorder dumps and machine snapshots) must hold the same
    // byte sequence for every shard count, and only the canonical
    // barrier merge delivers that — at one shard the ring would
    // otherwise fill in execution order, which the merge key is not.
    _recStaged = _recAny;
}

void
Chip::recImpl(const sim::FlightRecorder::Record &r)
{
    if (_profiler) {
        _profiler->observe(static_cast<sim::FlightRecorder::Ev>(r.kind),
                           r.line, r.a, r.b);
    }
    if (r.line == _watchLine)
        inform("watch: ", describeRecord(r));
}

void
Chip::drainRecStage()
{
    std::size_t total = 0;
    for (const auto &v : _recStage)
        total += v.size();
    if (!total)
        return;
    std::vector<sim::FlightRecorder::Record> batch;
    batch.reserve(total);
    for (auto &v : _recStage) {
        batch.insert(batch.end(), v.begin(), v.end());
        v.clear();
    }
    std::stable_sort(batch.begin(), batch.end(), recordBefore);
    for (const sim::FlightRecorder::Record &r : batch) {
        if (_recorder.enabled()) {
            _recorder.record(r.tick,
                             static_cast<sim::FlightRecorder::Ev>(r.kind),
                             r.comp, r.line, r.txn, r.a, r.b);
        }
        if (_recSlow)
            recImpl(r);
    }
}

std::string
Chip::lineHistory(mem::Addr line_base, std::size_t max_records) const
{
    if (!_recorder.enabled())
        return "";
    std::vector<sim::FlightRecorder::Record> hits;
    _recorder.forEach([&](const sim::FlightRecorder::Record &r) {
        if (r.line == line_base)
            hits.push_back(r);
    });
    std::size_t first = hits.size() > max_records
                            ? hits.size() - max_records
                            : 0;
    std::string out;
    for (std::size_t i = first; i < hits.size(); ++i)
        out += "    " + describeRecord(hits[i]) + "\n";
    return out;
}

std::string
Chip::postMortemHistory() const
{
    if (!_recorder.enabled())
        return "";
    // The implicated lines: everything named by an in-flight bank
    // transaction or a cluster MSHR, capped so a wedged broadcast
    // can't turn the dump into a novel.
    std::vector<mem::Addr> lines;
    auto note = [&](mem::Addr base) {
        if (std::find(lines.begin(), lines.end(), base) == lines.end())
            lines.push_back(base);
    };
    for (const auto &b : _banks)
        b->forEachTxn([&](const L3Bank::TxnRecord &t) {
            note(mem::lineBase(t.addr));
        });
    for (const auto &cl : _clusters)
        cl->forEachMshr([&](mem::Addr base, ReqType, unsigned) {
            note(base);
        });
    constexpr std::size_t maxLines = 8;
    std::ostringstream os;
    for (std::size_t i = 0; i < lines.size() && i < maxLines; ++i) {
        std::string h = lineHistory(lines[i]);
        os << "  recorder history line 0x" << std::hex << lines[i]
           << std::dec << ":\n"
           << (h.empty() ? "    (no recorded events)\n" : h);
    }
    if (lines.size() > maxLines)
        os << "  (" << lines.size() - maxLines
           << " more implicated lines omitted)\n";
    return os.str();
}

void
Chip::attachJson(sim::TraceJsonWriter *w)
{
    if (w && _config.shards > 1) {
        warn("JSON tracing is not supported with --shards > 1; ignoring");
        return;
    }
    _tracer.setJson(w);
    if (!w) {
        _timeSeries.setSink({});
        return;
    }
    w->threadName(sim::TraceJsonWriter::machineTid, "machine");
    for (unsigned b = 0; b < _banks.size(); ++b)
        w->threadName(sim::TraceJsonWriter::bankTid(b),
                      sim::cat("l3bank", b));
    for (unsigned c = 0; c < _clusters.size(); ++c)
        w->threadName(sim::TraceJsonWriter::clusterTid(c),
                      sim::cat("cluster", c));
    _timeSeries.setSink(
        [w](sim::Tick t, const std::string &name, double v) {
            w->counter(t, name, v);
        });
}

void
Chip::degradeDebugSinks()
{
    if (_config.shards <= 1)
        return;
    if (_tracer.mask() != sim::Category::None) {
        warn("text tracing is not supported with --shards > 1; disabling");
        _tracer.setMask(sim::Category::None);
    }
}

const sim::Histogram &
Chip::reqLatency(MsgClass cls) const
{
    unsigned c = static_cast<unsigned>(cls);
    _reqLatencyFolded[c].reset();
    for (const LatencyLanes &l : _latLanes)
        _reqLatencyFolded[c].merge(l.req[c]);
    return _reqLatencyFolded[c];
}

const sim::Histogram &
Chip::respLatency() const
{
    _respLatencyFolded.reset();
    for (const LatencyLanes &l : _latLanes)
        _respLatencyFolded.merge(l.resp);
    return _respLatencyFolded;
}

const sim::Histogram &
Chip::probeLatency() const
{
    _probeLatencyFolded.reset();
    for (const LatencyLanes &l : _latLanes)
        _probeLatencyFolded.merge(l.probe);
    return _probeLatencyFolded;
}

void
Chip::registerStats(sim::StatRegistry &reg) const
{
    const_cast<Chip *>(this)->drainRecStage();
    for (unsigned c = 0; c < numMsgClasses; ++c) {
        reg.addHistogram(
            sim::cat("chip.latency.req.",
                     msgClassName(static_cast<MsgClass>(c))),
            reqLatency(static_cast<MsgClass>(c)));
    }
    reg.addHistogram("chip.latency.resp", respLatency());
    reg.addHistogram("chip.latency.probe", probeLatency());
    for (unsigned c = 0; c < numMsgClasses; ++c) {
        _reqRetriesStat[c].reset();
        _reqRetriesStat[c].inc(
            _reqRetries[c].load(std::memory_order_relaxed));
        reg.addCounter(sim::cat("chip.retries.req.",
                                msgClassName(static_cast<MsgClass>(c))),
                       _reqRetriesStat[c]);
    }
    _respRetriesStat.reset();
    _respRetriesStat.inc(respRetries());
    reg.addCounter("chip.retries.resp", _respRetriesStat);
    _retryExhaustedStat.reset();
    _retryExhaustedStat.inc(retriesExhausted());
    reg.addCounter("chip.retries.exhausted", _retryExhaustedStat);
    reg.addScalar("chip.retries.wb_evicted", [this]() {
        double total = 0;
        for (const auto &cl : _clusters)
            total += static_cast<double>(cl->pendingWbEvictions());
        return total;
    });
    // Stage-blame breakdown only exists when accounting was enabled:
    // the keys' absence when off is what keeps existing stat
    // fingerprints (and cohesion-diff goldens) byte-identical.
    if (_latAcc.enabled())
        _latAcc.registerStats(reg, "chip.latency", latClassName);
    if (_recorder.enabled()) {
        reg.addScalar("chip.recorder.recorded",
                      static_cast<double>(_recorder.recorded()));
        reg.addScalar("chip.recorder.capacity",
                      static_cast<double>(_recorder.capacity()));
    }
    if (_profiler)
        _profiler->registerStats(reg, "chip.lines");
    _fabric.registerStats(reg, "chip.fabric");
    _faults.registerStats(reg, "chip.faults");
    if (_auditor)
        _auditor->registerStats(reg, "chip.audit");
    for (const auto &cl : _clusters)
        cl->registerStats(reg, sim::cat("chip.cluster", cl->id()));
    for (const auto &b : _banks)
        b->registerStats(reg, sim::cat("chip.bank", b->id()));
}

void
Chip::checkpointState(sim::Serializer &ser) const
{
    ser.tag("chip");
    // Structural quiescence: every component hook below also asserts
    // its own slice, but check the machine-level conditions up front
    // so the failure names the real problem instead of a section tag.
    const_cast<Chip *>(this)->drainRecStage();
    if (!_router.empty()) {
        throw sim::SnapshotError(
            "checkpoint with cross-shard messages in flight");
    }
    for (const auto &q : _eqs) {
        if (!q->empty())
            throw sim::SnapshotError("checkpoint with events pending");
        if (q->now() != _eqs[0]->now()) {
            throw sim::SnapshotError(
                "checkpoint with unsynchronized shard clocks");
        }
    }
    for (const auto &b : _banks) {
        // Finished coroutine frames linger in the running list until
        // the next request arrives; they are not in-flight work.
        b->pruneTransactions();
        if (b->inFlight() != 0) {
            throw sim::SnapshotError(
                "checkpoint with bank transactions in flight");
        }
    }
    for (const auto &cl : _clusters) {
        if (cl->mshrCount() != 0) {
            throw sim::SnapshotError(
                "checkpoint with cluster MSHRs in flight");
        }
    }

    // Geometry fingerprint: a snapshot only restores into a machine
    // built from the same topology (cache shapes are re-validated
    // per-array by their own hooks). The shard count is deliberately
    // absent — snapshots are shard-count-independent.
    ser.u32(_config.numClusters);
    ser.u32(_config.coresPerCluster);
    ser.u32(_config.numL3Banks);
    ser.u32(_config.numChannels);
    ser.u8(static_cast<std::uint8_t>(_config.mode));

    // Canonical queue record: same wire shape as one queue's
    // (now, eventsRun, nextSeq) triple.
    ser.u64(_eqs[0]->now());
    ser.u64(totalEventsRun());
    // The summed sequence origin is shard-count-invariant (every
    // schedule increments exactly one queue) and >= any per-queue
    // value, so restoring it into every queue preserves tie-break
    // order; a per-queue max would leak the shard count into the
    // snapshot bytes.
    std::uint64_t seq = 0;
    for (const auto &q : _eqs)
        seq += q->nextSeq();
    ser.u64(seq);

    _store.checkpointState(ser);
    _dram.checkpointState(ser);
    _fabric.checkpointState(ser);
    _faults.checkpointState(ser);
    _coarseTable.checkpointState(ser);
    for (const auto &cl : _clusters)
        cl->checkpointState(ser);
    for (const auto &b : _banks)
        b->checkpointState(ser);

    ser.tag("chip-stats");
    for (unsigned c = 0; c < numMsgClasses; ++c)
        reqLatency(static_cast<MsgClass>(c)).checkpointState(ser);
    respLatency().checkpointState(ser);
    probeLatency().checkpointState(ser);
    for (const auto &c : _reqRetries)
        ser.u64(c.load(std::memory_order_relaxed));
    ser.u64(respRetries());
    ser.u64(retriesExhausted());
    ser.u64(responsesDelivered());
    ser.u64(_traceIdSeq.load(std::memory_order_relaxed));
    for (const auto &s : _occupancy)
        s.checkpointState(ser);
    _occupancyTotal.checkpointState(ser);
    _recorder.checkpointState(ser);
    // The auditor's cumulative counters register as chip.audit.*, so
    // they are part of the session's stat contract like any other.
    ser.b(_auditor != nullptr);
    if (_auditor)
        _auditor->checkpointState(ser);
}

void
Chip::restoreState(sim::Deserializer &des)
{
    des.tag("chip");
    auto geom = [&](std::uint32_t expect, const char *what) {
        if (des.u32() != expect) {
            throw sim::SnapshotError(
                std::string("snapshot machine geometry mismatch: ") + what);
        }
    };
    geom(_config.numClusters, "cluster count");
    geom(_config.coresPerCluster, "cores per cluster");
    geom(_config.numL3Banks, "bank count");
    geom(_config.numChannels, "channel count");
    if (des.u8() != static_cast<std::uint8_t>(_config.mode)) {
        throw sim::SnapshotError(
            "snapshot coherence mode does not match this configuration");
    }

    // Every queue adopts the canonical tick and sequence origin; the
    // event total lands on queue 0 so the sum is preserved.
    sim::Tick t = des.u64();
    std::uint64_t events = des.u64();
    std::uint64_t seq = des.u64();
    for (unsigned s = 0; s < _eqs.size(); ++s)
        _eqs[s]->adopt(t, seq, s == 0 ? events : 0);

    _store.restoreState(des);
    _dram.restoreState(des);
    _fabric.restoreState(des);
    _faults.restoreState(des);
    _coarseTable.restoreState(des);
    for (auto &cl : _clusters)
        cl->restoreState(des);
    for (auto &b : _banks)
        b->restoreState(des);

    des.tag("chip-stats");
    for (auto &l : _latLanes) {
        for (auto &h : l.req)
            h.reset();
        l.resp.reset();
        l.probe.reset();
    }
    for (unsigned c = 0; c < numMsgClasses; ++c)
        _latLanes[0].req[c].restoreState(des);
    _latLanes[0].resp.restoreState(des);
    _latLanes[0].probe.restoreState(des);
    for (auto &c : _reqRetries)
        c.store(des.u64(), std::memory_order_relaxed);
    _respRetries.store(des.u64(), std::memory_order_relaxed);
    _retryExhausted.store(des.u64(), std::memory_order_relaxed);
    _respDelivered.store(des.u64(), std::memory_order_relaxed);
    _traceIdSeq.store(des.u64(), std::memory_order_relaxed);
    for (auto &s : _occupancy)
        s.restoreState(des);
    _occupancyTotal.restoreState(des);
    _recorder.restoreState(des);
    if (des.b()) {
        if (!_auditor)
            _auditor = std::make_unique<coherence::Auditor>(*this);
        _auditor->restoreState(des);
    }
    updateRecAny();
}

Chip::Progress
Chip::progress() const
{
    Progress p;
    p.instructions = totalInstructions();
    for (const auto &b : _banks)
        p.txnsCompleted += b->txnsCompleted();
    p.respDelivered = responsesDelivered();
    return p;
}

void
Chip::runShardWindow(unsigned shard, sim::Tick stop)
{
    sim::HostProfiler::Scope hp(sim::HostProfiler::Phase::EqDispatch);
    _router.flush(shard, stop, *_eqs[shard]);
    _eqs[shard]->run(stop);
}

sim::Tick
Chip::runUntilQuiescent()
{
    degradeDebugSinks();
    const sim::Tick limit = _config.maxCycles;
    const sim::Tick window =
        _config.watchdogWindow ? std::min(_config.watchdogWindow, limit)
                               : limit;
    // Audit passes, the fault pump and the time-series sampler are all
    // driven from the window barrier rather than from self-re-arming
    // queue events: a pair of such events would keep each other pending
    // forever and hold a quiesced machine alive, and a lone one stops
    // for good the first time the queues drain. Barrier-driven cadences
    // instead survive quiescent gaps — sampling resumes when new work
    // arrives in a later runUntilQuiescent call. Every cadence tick is
    // a pure function of the simulation, so the window boundaries (and
    // with them every event order) are shard-count-invariant.
    const sim::Tick audit_period = _auditor ? _auditPeriod : 0;
    const sim::Tick pump_period =
        pumpEligible() ? _faults.plan().pumpPeriod : 0;
    const sim::Tick entry = _eqs[0]->now();
    sim::Tick next_audit =
        audit_period ? entry + audit_period : sim::maxTick;
    sim::Tick next_pump = pump_period ? entry + pump_period : sim::maxTick;
    sim::Tick window_end = entry + window;
    Progress last = progress();

    // Conservative lookahead: a window [B, B + horizon] is safe because
    // every cross-component message departs at >= B and arrives at
    // >= B + lookahead + 1 — strictly beyond the window.
    const sim::Tick horizon =
        _fabric.lookahead() ? _fabric.lookahead() - 1 : 0;

    // Live-progress heartbeat. The host clock is consulted only at
    // barriers (and only every few windows); it never shapes a window
    // boundary, so the heartbeat cannot perturb simulated results.
    using host_clock = std::chrono::steady_clock;
    host_clock::time_point last_emit = host_clock::now();
    unsigned beat_countdown = 0;

    auto run_windows = [&](sim::Tick stop) {
        if (_config.shards == 1) {
            runShardWindow(0, stop);
            return;
        }
        sim::HostProfiler::Scope hp(sim::HostProfiler::Phase::EqDispatch);
        _crew->runWindow([this, stop](unsigned s) {
            runShardWindow(s, stop);
        });
    };

    while (true) {
        _router.collect();
        sim::Tick bound = _router.minInboxHead();
        for (const auto &q : _eqs)
            bound = std::min(bound, q->nextEventTick());
        if (bound == sim::maxTick)
            break; // quiescent
        if (bound > limit) {
            std::string dump = inFlightDump() + postMortemHistory();
            TRACE(_tracer, sim::Category::Watchdog,
                  "watchdog: cycle limit hit; in-flight:\n", dump);
            throw DeadlockError(
                sim::cat("watchdog: simulation exceeded ", limit,
                         " cycles (deadlock or runaway workload)"),
                std::move(dump));
        }

        sim::Tick next_sample = _timeSeries.nextSampleAt();
        sim::Tick stop = std::min(
            std::min(std::min(limit, window_end), bound + horizon),
            std::min(std::min(next_audit, next_pump), next_sample));

        run_windows(stop);

        // --- Window barrier (single-threaded) ------------------------
        drainRecStage();
        bool cadence_due = stop >= next_audit || stop >= next_pump ||
                           stop >= next_sample || stop >= window_end;
        if (cadence_due) {
            // Legal: every event <= stop ran in the window, and no
            // pending message or event is <= stop any more.
            _router.collect();
            for (auto &q : _eqs)
                q->advanceTo(stop);
            if (stop >= next_audit) {
                sim::HostProfiler::Scope hp(
                    sim::HostProfiler::Phase::Audit);
                _auditor->auditNow();
                next_audit += audit_period;
            }
            if (stop >= next_pump) {
                sim::HostProfiler::Scope hp(
                    sim::HostProfiler::Phase::FaultPump);
                faultPump();
                next_pump += pump_period;
            }
            if (stop >= next_sample) {
                sim::HostProfiler::Scope hp(
                    sim::HostProfiler::Phase::Sampler);
                _timeSeries.tick();
            }
            if (stop >= window_end) {
                Progress cur = progress();
                if (_config.watchdogWindow && cur == last) {
                    std::string dump =
                        inFlightDump() + postMortemHistory();
                    TRACE(_tracer, sim::Category::Watchdog,
                          "watchdog: no forward progress; in-flight:\n",
                          dump);
                    throw DeadlockError(
                        sim::cat("watchdog: no forward progress in ",
                                 window, " ticks at t=", stop,
                                 " (deadlock or livelock)"),
                        std::move(dump));
                }
                last = cur;
                window_end = stop + window;
            }
        }
        if (_progressFn && beat_countdown-- == 0) {
            beat_countdown = 32;
            host_clock::time_point now_h = host_clock::now();
            double el =
                std::chrono::duration<double>(now_h - last_emit).count();
            if (el >= _progressIntervalSec) {
                _progressFn(stop, totalEventsRun());
                last_emit = now_h;
            }
        }
    }

    // End normalization: every queue's clock lands on the last fired
    // event, so a later run (or a checkpoint) continues from one
    // well-defined point regardless of the shard count.
    sim::Tick final_tick = entry;
    for (const auto &q : _eqs) {
        // A cadence barrier may already have advanced a queue's clock
        // past its last fired event (quiescence is only detected one
        // iteration later), so the final tick covers both. The stop
        // sequence is itself shard-count-invariant, so this stays
        // bit-identical across shard counts.
        final_tick = std::max(final_tick,
                              std::max(q->lastFired(), q->now()));
    }
    for (auto &q : _eqs)
        q->advanceTo(final_tick);
    drainRecStage();
    // The final event may land exactly on the sampling cadence.
    if (final_tick >= _timeSeries.nextSampleAt()) {
        sim::HostProfiler::Scope hp(sim::HostProfiler::Phase::Sampler);
        _timeSeries.tick();
    }
    if (_progressFn)
        _progressFn(final_tick, totalEventsRun());
    return final_tick;
}

MsgCounters
Chip::aggregateMessages() const
{
    MsgCounters agg;
    for (const auto &cl : _clusters)
        agg.merge(cl->msgCounters());
    return agg;
}

std::uint64_t
Chip::totalInstructions() const
{
    std::uint64_t n = 0;
    for (const auto &cl : _clusters) {
        for (unsigned c = 0; c < cl->numCores(); ++c)
            n += const_cast<Cluster &>(*cl).core(c).instructions();
    }
    return n;
}

} // namespace arch
