#include "arch/chip.hh"

#include <bit>

#include "sim/logging.hh"

namespace arch {

Chip::Chip(const MachineConfig &config, mem::Addr table_base)
    : _config(config),
      _map(config.numL3Banks, config.numChannels, table_base),
      _dram(_map, config.dram), _fabric(config)
{
    for (unsigned c = 0; c < config.numClusters; ++c)
        _clusters.push_back(std::make_unique<Cluster>(*this, c));
    for (unsigned b = 0; b < config.numL3Banks; ++b)
        _banks.push_back(std::make_unique<L3Bank>(*this, b));
}

void
Chip::sendResponse(unsigned bank, unsigned cluster_id, Response resp,
                   unsigned data_words)
{
    sim::Tick arrive = _fabric.bankToCluster(
        bank, cluster_id, msgBytes(data_words), _eq.now());
    _eq.schedule(arrive, [this, cluster_id, resp]() {
        cluster(cluster_id).handleResponse(resp);
    });
}

void
Chip::sendProbe(unsigned bank, unsigned cluster_id, ProbeType type,
                mem::Addr addr,
                std::function<void(unsigned, const ProbeResult &)> done)
{
    sim::Tick arrive =
        _fabric.bankToCluster(bank, cluster_id, msgBytes(0), _eq.now());
    _eq.schedule(arrive, [this, bank, cluster_id, type, addr,
                          done = std::move(done)]() {
        ProbeResult r = cluster(cluster_id).handleProbe(type, addr);
        cluster(cluster_id).msgCounters().count(MsgClass::ProbeResponse);
        unsigned words =
            r.dirty ? std::popcount(static_cast<unsigned>(r.dirtyMask)) : 0;
        sim::Tick back = _fabric.clusterToBank(cluster_id, bank,
                                               msgBytes(words), _eq.now());
        _eq.schedule(back, [done, cluster_id, r]() {
            done(cluster_id, r);
        });
    });
}

std::uint32_t
Chip::coherentRead32(mem::Addr a)
{
    mem::Addr base = mem::lineBase(a);
    mem::WordMask bit = mem::wordBit(a);

    // A dirty word in any L2 is the newest value.
    for (auto &cl : _clusters) {
        if (cache::Line *l = cl->l2().probe(base)) {
            if ((l->dirtyMask & bit) && (l->validMask & bit)) {
                std::uint32_t v = 0;
                l->read(a, &v, 4);
                return v;
            }
        }
    }
    // Then the L3 copy, then memory.
    cache::Line *l3line = bank(_map.bankOf(base)).l3().probe(base);
    if (l3line && (l3line->validMask & bit)) {
        std::uint32_t v = 0;
        l3line->read(a, &v, 4);
        return v;
    }
    return _store.readT<std::uint32_t>(a);
}

void
Chip::sampleOccupancy()
{
    std::array<double, numSegments> counts{};
    double total = 0;
    for (auto &b : _banks) {
        b->directory().forEach([&](const coherence::DirEntry &e) {
            Segment seg = _classifier ? _classifier(e.base)
                                      : Segment::HeapGlobal;
            counts[static_cast<unsigned>(seg)] += 1;
            total += 1;
        });
    }
    for (unsigned s = 0; s < numSegments; ++s)
        _occupancy[s].sample(counts[s]);
    _occupancyTotal.sample(total);
}

sim::Tick
Chip::runUntilQuiescent()
{
    const sim::Tick limit = _config.maxCycles;
    if (_samplePeriod == 0) {
        bool drained = _eq.run(limit);
        fatal_if(!drained, "watchdog: simulation exceeded ", limit,
                 " cycles (deadlock or runaway workload)");
        return _eq.now();
    }
    while (true) {
        sim::Tick next = _eq.now() + _samplePeriod;
        fatal_if(next > limit, "watchdog: simulation exceeded ", limit,
                 " cycles (deadlock or runaway workload)");
        bool drained = _eq.run(next);
        sampleOccupancy();
        if (drained)
            return _eq.now();
    }
}

MsgCounters
Chip::aggregateMessages() const
{
    MsgCounters agg;
    for (const auto &cl : _clusters)
        agg.merge(cl->msgCounters());
    return agg;
}

std::uint64_t
Chip::totalInstructions() const
{
    std::uint64_t n = 0;
    for (const auto &cl : _clusters) {
        for (unsigned c = 0; c < cl->numCores(); ++c)
            n += const_cast<Cluster &>(*cl).core(c).instructions();
    }
    return n;
}

} // namespace arch
