#include "arch/chip.hh"

#include <bit>

#include "sim/logging.hh"
#include "sim/trace_json.hh"

namespace arch {

Chip::Chip(const MachineConfig &config, mem::Addr table_base)
    : _config(config),
      _map(config.numL3Banks, config.numChannels, table_base),
      _dram(_map, config.dram), _fabric(config)
{
    for (unsigned c = 0; c < config.numClusters; ++c)
        _clusters.push_back(std::make_unique<Cluster>(*this, c));
    for (unsigned b = 0; b < config.numL3Banks; ++b)
        _banks.push_back(std::make_unique<L3Bank>(*this, b));
}

void
Chip::sendResponse(unsigned bank, unsigned cluster_id, Response resp,
                   unsigned data_words)
{
    resp.sendTick = _eq.now();
    sim::Tick arrive = _fabric.bankToCluster(
        bank, cluster_id, msgBytes(data_words), _eq.now());
    _eq.schedule(arrive, [this, cluster_id, resp]() {
        cluster(cluster_id).handleResponse(resp);
    });
}

void
Chip::sendProbe(unsigned bank, unsigned cluster_id, ProbeType type,
                mem::Addr addr,
                std::function<void(unsigned, const ProbeResult &)> done)
{
    sim::Tick arrive =
        _fabric.bankToCluster(bank, cluster_id, msgBytes(0), _eq.now());
    _probeLatency.sample(arrive - _eq.now());
    _eq.schedule(arrive, [this, bank, cluster_id, type, addr,
                          done = std::move(done)]() {
        ProbeResult r = cluster(cluster_id).handleProbe(type, addr);
        cluster(cluster_id).msgCounters().count(MsgClass::ProbeResponse);
        unsigned words =
            r.dirty ? std::popcount(static_cast<unsigned>(r.dirtyMask)) : 0;
        sim::Tick back = _fabric.clusterToBank(cluster_id, bank,
                                               msgBytes(words), _eq.now());
        sampleReqLatency(MsgClass::ProbeResponse, back - _eq.now());
        _eq.schedule(back, [done, cluster_id, r]() {
            done(cluster_id, r);
        });
    });
}

std::uint32_t
Chip::coherentRead32(mem::Addr a)
{
    mem::Addr base = mem::lineBase(a);
    mem::WordMask bit = mem::wordBit(a);

    // A dirty word in any L2 is the newest value.
    for (auto &cl : _clusters) {
        if (cache::Line *l = cl->l2().probe(base)) {
            if ((l->dirtyMask & bit) && (l->validMask & bit)) {
                std::uint32_t v = 0;
                l->read(a, &v, 4);
                return v;
            }
        }
    }
    // Then the L3 copy, then memory.
    cache::Line *l3line = bank(_map.bankOf(base)).l3().probe(base);
    if (l3line && (l3line->validMask & bit)) {
        std::uint32_t v = 0;
        l3line->read(a, &v, 4);
        return v;
    }
    return _store.readT<std::uint32_t>(a);
}

void
Chip::sampleOccupancy()
{
    std::array<double, numSegments> counts{};
    double total = 0;
    for (auto &b : _banks) {
        b->directory().forEach([&](const coherence::DirEntry &e) {
            Segment seg = _classifier ? _classifier(e.base)
                                      : Segment::HeapGlobal;
            counts[static_cast<unsigned>(seg)] += 1;
            total += 1;
        });
    }
    for (unsigned s = 0; s < numSegments; ++s)
        _occupancy[s].sample(counts[s]);
    _occupancyTotal.sample(total);
    _lastOccupancy = counts;
    _lastOccupancyTotal = total;
}

void
Chip::enableOccupancySampling(sim::Tick period)
{
    if (_timeSeries.enabled())
        return;
    _samplePeriod = period;

    // One directory walk per sampling point feeds every dir.* probe.
    _timeSeries.setPreSample([this]() { sampleOccupancy(); });
    _timeSeries.add("dir.total", [this]() { return _lastOccupancyTotal; });
    _timeSeries.add("dir.code", [this]() { return _lastOccupancy[0]; });
    _timeSeries.add("dir.stack", [this]() { return _lastOccupancy[1]; });
    _timeSeries.add("dir.heap_global",
                    [this]() { return _lastOccupancy[2]; });
    for (unsigned b = 0; b < _banks.size(); ++b) {
        _timeSeries.add(sim::cat("bank", b, ".inflight"), [this, b]() {
            return static_cast<double>(_banks[b]->inFlight());
        });
    }
    // Message rate: delta of the aggregate L2-output count per period.
    _timeSeries.add("net.msgs",
                    [this, prev = std::uint64_t(0)]() mutable {
                        std::uint64_t cur = aggregateMessages().total();
                        double delta = static_cast<double>(cur - prev);
                        prev = cur;
                        return delta;
                    });
    _timeSeries.start(period);
}

void
Chip::attachJson(sim::TraceJsonWriter *w)
{
    _tracer.setJson(w);
    if (!w) {
        _timeSeries.setSink({});
        return;
    }
    w->threadName(sim::TraceJsonWriter::machineTid, "machine");
    for (unsigned b = 0; b < _banks.size(); ++b)
        w->threadName(sim::TraceJsonWriter::bankTid(b),
                      sim::cat("l3bank", b));
    for (unsigned c = 0; c < _clusters.size(); ++c)
        w->threadName(sim::TraceJsonWriter::clusterTid(c),
                      sim::cat("cluster", c));
    _timeSeries.setSink(
        [w](sim::Tick t, const std::string &name, double v) {
            w->counter(t, name, v);
        });
}

void
Chip::registerStats(sim::StatRegistry &reg) const
{
    for (unsigned c = 0; c < numMsgClasses; ++c) {
        reg.addHistogram(
            sim::cat("chip.latency.req.",
                     msgClassName(static_cast<MsgClass>(c))),
            _reqLatency[c]);
    }
    reg.addHistogram("chip.latency.resp", _respLatency);
    reg.addHistogram("chip.latency.probe", _probeLatency);
    _fabric.registerStats(reg, "chip.fabric");
    for (const auto &cl : _clusters)
        cl->registerStats(reg, sim::cat("chip.cluster", cl->id()));
    for (const auto &b : _banks)
        b->registerStats(reg, sim::cat("chip.bank", b->id()));
}

sim::Tick
Chip::runUntilQuiescent()
{
    const sim::Tick limit = _config.maxCycles;
    bool drained = _eq.run(limit);
    fatal_if(!drained, "watchdog: simulation exceeded ", limit,
             " cycles (deadlock or runaway workload)");
    return _eq.now();
}

MsgCounters
Chip::aggregateMessages() const
{
    MsgCounters agg;
    for (const auto &cl : _clusters)
        agg.merge(cl->msgCounters());
    return agg;
}

std::uint64_t
Chip::totalInstructions() const
{
    std::uint64_t n = 0;
    for (const auto &cl : _clusters) {
        for (unsigned c = 0; c < cl->numCores(); ++c)
            n += const_cast<Cluster &>(*cl).core(c).instructions();
    }
    return n;
}

} // namespace arch
