#include "arch/core.hh"

#include "arch/chip.hh"
#include "arch/cluster.hh"
#include "sim/logging.hh"
#include "sim/shard.hh"

namespace arch {

Core::Core(Cluster &cluster, unsigned global_id, unsigned local_id,
           std::uint32_t l1i_bytes, unsigned l1i_assoc,
           std::uint32_t l1d_bytes, unsigned l1d_assoc)
    : _cluster(cluster), _globalId(global_id), _localId(local_id),
      _l1i(sim::cat("core", global_id, ".l1i"), l1i_bytes, l1i_assoc),
      _l1d(sim::cat("core", global_id, ".l1d"), l1d_bytes, l1d_assoc)
{}

MemOp
Core::perform(const OpDesc &d)
{
    // Core activity runs on its cluster's shard; bind the thread-local
    // shard id so every eq()/stat touch below lands on the right lane.
    sim::ShardGuard g(_cluster.chip().shardOfCluster(_cluster.id()));
    switch (d.kind) {
      case OpDesc::Kind::Load:
        return _cluster.coreLoad(*this, d.addr, d.bytes);
      case OpDesc::Kind::Store:
        return _cluster.coreStore(*this, d.addr, d.value, d.bytes);
      case OpDesc::Kind::Atomic:
        return _cluster.coreAtomic(*this, d.op, d.addr, d.value,
                                   d.operand2);
      case OpDesc::Kind::Flush:
        return _cluster.coreFlush(*this, d.addr);
      case OpDesc::Kind::Inv:
        return _cluster.coreInv(*this, d.addr);
      case OpDesc::Kind::Drain:
        return _cluster.coreDrain(*this);
      case OpDesc::Kind::Compute:
        return _cluster.coreCompute(*this, d.count);
    }
    panic("unknown op kind");
}

} // namespace arch
