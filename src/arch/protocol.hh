/**
 * @file
 * Wire-level protocol types exchanged between cluster caches (L2) and
 * L3 banks: requests, responses, directory probes, and probe results.
 * Figure 6 of the paper names the request types; the comments below
 * map them.
 */

#ifndef COHESION_ARCH_PROTOCOL_HH
#define COHESION_ARCH_PROTOCOL_HH

#include <array>
#include <cstdint>

#include "arch/msg.hh"
#include "cache/cache_array.hh"
#include "mem/types.hh"
#include "sim/event_queue.hh"
#include "sim/latency_accounting.hh"

namespace arch {

/** L2 -> L3 request types. */
enum class ReqType : std::uint8_t {
    Read,         ///< RdReq: load miss (grant S or incoherent data).
    Write,        ///< WrReq: store miss / S->M upgrade.
    Instr,        ///< Instruction fetch miss.
    Atomic,       ///< atom.*: uncached RMW performed at the L3.
    WriteRelease, ///< WrRel: HWcc dirty eviction writeback.
    ReadRelease,  ///< RdRel: HWcc clean eviction notification.
    Eviction,     ///< SWcc dirty eviction writeback (per-word mask).
    Flush         ///< SWcc software flush (per-word mask), acked.
};

const char *reqTypeName(ReqType t);

/** The Fig. 2 message class a request of type @p t is accounted to. */
MsgClass msgClassFor(ReqType t);

/** A request message from a cluster to a line's home bank. */
struct Request
{
    ReqType type = ReqType::Read;
    unsigned cluster = 0;            ///< Source L2 id.
    unsigned core = 0;               ///< Issuing core (for acks).
    mem::Addr addr = 0;              ///< Word address (line-aligned ok).
    mem::WordMask mask = 0;          ///< Dirty words for writebacks.
    std::array<std::uint8_t, mem::lineBytes> data{}; ///< WB payload.
    bool upgrade = false;            ///< Write: already hold S copy.
    /**
     * Departure stamp for latency stats. Set once by the sending
     * cluster; the fabric layer must never re-stamp it (retransmitted
     * messages would otherwise under-report latency), so the delivery
     * path only fills it in when the sender left it zero.
     */
    sim::Tick sendTick = 0;
    std::uint8_t retries = 0;        ///< Fabric drops survived en route.
    /**
     * Per-cluster message id, echoed back in the Response. Lets the
     * cluster discard duplicated or stale responses under fault
     * injection: a writeback ack must not double-decrement the
     * outstanding-write count, and a duplicated fill must not clobber
     * a line a newer transaction owns.
     */
    std::uint32_t msgId = 0;

    // Atomic-only fields.
    AtomicOp op = AtomicOp::AddU32;
    std::uint32_t operand = 0;
    std::uint32_t operand2 = 0;      ///< CAS expected value.

    // Latency-accounting fields (sim/latency_accounting.hh). Written
    // only when accounting is on; pure observers otherwise.
    /**
     * Anchor tick of the operation this request serves: when the core
     * started the access (before L1/L2), or when the earliest waiter
     * joined the MSHR for fill-time follow-ups. Same fill-if-zero
     * convention as sendTick: the send path defaults it to the
     * departure tick, making the Issue stage zero.
     */
    sim::Tick opStart = 0;
    /** The pre-send span [opStart, sendTick) was an MSHR wait (a
     *  follow-up/upgrade synthesized at fill time), not core issue. */
    bool fromMshr = false;
    /** Drop-retransmit backoff ticks accumulated en route; the bank
     *  splits the request-fabric leg into ReqFabric + Retry with it. */
    std::uint32_t retryPenalty = 0;
};

/** A response from the home bank back to the requesting cluster. */
struct Response
{
    ReqType type = ReqType::Read;
    unsigned core = 0;
    mem::Addr addr = 0;
    bool incoherent = false;         ///< Line granted in SWcc domain.
    cache::CohState grant = cache::CohState::Invalid; ///< S or M.
    std::array<std::uint8_t, mem::lineBytes> data{};
    std::uint32_t atomicOld = 0;     ///< Prior value for atomics.
    sim::Tick sendTick = 0;          ///< Departure stamp (latency stats).
    std::uint32_t msgId = 0;         ///< Echo of Request::msgId.
    std::uint8_t retries = 0;        ///< Fabric drops survived en route.

    // Latency-accounting fields: the bank-side stage timeline rides
    // home in the response (no shared per-txn map — duplicated
    // messages under fault injection each carry a self-consistent
    // copy and the cluster's dedup picks the survivor). Written only
    // when accounting is on.
    std::array<std::uint32_t, sim::lat::numStages> latStages{};
    sim::Tick opStart = 0;           ///< Echo of Request::opStart.
    std::uint32_t retryPenalty = 0;  ///< Response-leg backoff ticks.
    sim::lat::Mode latMode = sim::lat::Mode::Hwcc; ///< Blame cut.
};

/** Directory -> L2 probe types. */
enum class ProbeType : std::uint8_t {
    Invalidate,          ///< Drop the line (S sharers).
    WritebackInvalidate, ///< Return dirty data and drop (M owner).
    Downgrade,           ///< Return dirty data, keep as S (M->S).
    CleanQuery,          ///< Cohesion SWcc->HWcc round 1: report
                         ///< state; clean lines join HWcc as S.
    MakeOwner            ///< Cohesion SWcc->HWcc: single dirty owner
                         ///< upgraded to HWcc M in place (no WB).
};

const char *probeTypeName(ProbeType t);

/** Result of a probe as observed at the probed L2. */
struct ProbeResult
{
    bool found = false;
    bool dirty = false;
    mem::WordMask dirtyMask = 0;
    std::array<std::uint8_t, mem::lineBytes> data{};
};

} // namespace arch

#endif // COHESION_ARCH_PROTOCOL_HH
