/**
 * @file
 * Awaitable building blocks for protocol coroutines: fixed-tick
 * delays, ack-gathering gates (probe fan-out), and a per-line lock
 * table that serializes all transactions for a line through its home
 * bank — the paper's race-avoidance mechanism (Section 3.2).
 */

#ifndef COHESION_ARCH_AWAIT_HH
#define COHESION_ARCH_AWAIT_HH

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/host_profiler.hh"
#include "sim/logging.hh"

namespace arch {

/** Awaitable that resumes the coroutine at an absolute tick. */
struct Delay
{
    sim::EventQueue &eq;
    sim::Tick until;

    bool await_ready() const { return until <= eq.now(); }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        // Capture the sampled host-profiler phase open at suspension
        // and re-open it around the resume, so a transaction's later
        // segments stay attributed to their component.
        eq.schedule(until, [h, p = sim::HostProfiler::resumePhase()]() {
            sim::HostProfiler::Scope hp(
                p, sim::HostProfiler::Scope::Resume{});
            h.resume();
        });
    }

    void await_resume() const {}
};

/**
 * Bounded exponential backoff for retry loops (transition-protocol
 * nacks, owner-evicted races, injected message drops). Each next()
 * returns the delay for the upcoming attempt and doubles the stride up
 * to the cap, so colliding retries spread out instead of livelocking
 * in lockstep.
 */
struct Backoff
{
    sim::Tick stride;
    sim::Tick cap;
    unsigned tries = 0;

    explicit Backoff(sim::Tick base = 8, sim::Tick limit = 1024)
        : stride(base), cap(limit)
    {}

    sim::Tick
    next()
    {
        ++tries;
        sim::Tick d = stride;
        stride = std::min(stride * 2, cap);
        return d;
    }

    unsigned attempts() const { return tries; }
};

/**
 * Counts expected acknowledgements; the awaiting coroutine resumes
 * when all have arrived. signal() may be called before wait() begins
 * (acks can beat the await), which completes synchronously.
 */
class AckGate
{
  public:
    /** Declare how many acks are expected. Resets previous state. */
    void
    expect(unsigned n)
    {
        panic_if(_waiter, "AckGate re-armed while awaited");
        _expected = n;
        _arrived = 0;
    }

    /** One ack arrived; resumes the waiter when the count completes. */
    void
    signal()
    {
        ++_arrived;
        panic_if(_arrived > _expected, "more acks than expected");
        if (_arrived == _expected && _waiter) {
            auto h = _waiter;
            _waiter = nullptr;
            h.resume();
        }
    }

    struct Awaiter
    {
        AckGate &gate;

        bool
        await_ready() const
        {
            return gate._arrived >= gate._expected;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            gate._waiter = h;
        }

        void await_resume() const {}
    };

    /** Await all expected acks. */
    Awaiter wait() { return Awaiter{*this}; }

  private:
    unsigned _expected = 0;
    unsigned _arrived = 0;
    std::coroutine_handle<> _waiter;
};

/**
 * Per-line mutual exclusion for home-bank transactions. Acquisition
 * order is FIFO; release hands the line to the next waiter via a
 * zero-delay event (avoiding unbounded resume recursion).
 */
class LineLockTable
{
  public:
    explicit LineLockTable(sim::EventQueue &eq) : _eq(eq) {}

    struct Acquire
    {
        LineLockTable &table;
        std::uint32_t line;

        bool
        await_ready() const
        {
            auto it = table._lines.find(line);
            return it == table._lines.end() || !it->second.held;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            table._lines[line].waiters.push_back(h);
        }

        void
        await_resume() const
        {
            table._lines[line].held = true;
        }
    };

    /** Await exclusive ownership of @p line. Pair with release(). */
    Acquire acquire(std::uint32_t line) { return Acquire{*this, line}; }

    /** Release @p line, waking the next queued transaction. */
    void
    release(std::uint32_t line)
    {
        auto it = _lines.find(line);
        panic_if(it == _lines.end() || !it->second.held,
                 "releasing a line lock that is not held");
        if (it->second.waiters.empty()) {
            _lines.erase(it);
            return;
        }
        // Hand the hold directly to the next waiter (held stays true so
        // a newcomer cannot sneak in before the waiter's resume event).
        auto h = it->second.waiters.front();
        it->second.waiters.pop_front();
        // The waiter is another transaction of the same component:
        // re-open the releasing phase around its resume, but as a
        // fresh stride-sampled entry, not a Resume continuation — the
        // hand-off crosses transactions, and an unconditional timer
        // here would cascade through every dependent waiter chain.
        // The profiler's sampling unit is thus a maximal Delay-chain
        // starting at a request receipt or a lock grant.
        _eq.scheduleIn(0, [h, p = sim::HostProfiler::resumePhase()]() {
            sim::HostProfiler::Scope hp(p);
            h.resume();
        });
    }

    /** True if any transaction holds or waits on @p line. */
    bool
    busy(std::uint32_t line) const
    {
        return _lines.count(line) != 0;
    }

  private:
    struct LineState
    {
        bool held = false;
        std::deque<std::coroutine_handle<>> waiters;
    };

    sim::EventQueue &_eq;
    std::unordered_map<std::uint32_t, LineState> _lines;
};

/**
 * RAII guard releasing a line lock when a transaction coroutine
 * finishes (normally or via exception unwind). Movable so ownership
 * can be handed between scopes; shared by the bank and the coherence
 * backends.
 */
class [[nodiscard]] Held
{
  public:
    Held(LineLockTable &table, std::uint32_t line)
        : _table(&table), _line(line)
    {}

    Held(Held &&other) noexcept
        : _table(std::exchange(other._table, nullptr)), _line(other._line)
    {}

    Held(const Held &) = delete;
    Held &operator=(const Held &) = delete;
    Held &operator=(Held &&) = delete;

    ~Held()
    {
        if (_table)
            _table->release(_line);
    }

  private:
    LineLockTable *_table;
    std::uint32_t _line;
};

} // namespace arch

#endif // COHESION_ARCH_AWAIT_HH
