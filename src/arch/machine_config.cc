#include "arch/machine_config.hh"

#include "sim/logging.hh"

namespace arch {

const char *
coherenceModeName(CoherenceMode m)
{
    switch (m) {
      case CoherenceMode::SWccOnly:
        return "SWcc";
      case CoherenceMode::HWccOnly:
        return "HWcc";
      case CoherenceMode::Cohesion:
        return "Cohesion";
    }
    return "?";
}

std::string
MachineConfig::summary() const
{
    return sim::cat(coherenceModeName(mode), " ", totalCores(), " cores (",
                    numClusters, "x", coresPerCluster, "), ", numL3Banks,
                    " L3 banks x ", l3BankBytes / 1024, "KB, ", numChannels,
                    " channels, L2 ", l2Bytes / 1024, "KB/", l2Assoc,
                    "-way, dir ",
                    directory.infinite()
                        ? std::string("infinite")
                        : sim::cat(directory.entries, "e/",
                                   directory.assoc == 0
                                       ? std::string("full")
                                       : sim::cat(directory.assoc, "w")));
}

} // namespace arch
