/**
 * @file
 * Interconnect timing model: pipelined split-phase cluster bus feeding
 * a two-level tree/crossbar network to the L3 banks (Section 3.1). The
 * model is arithmetic: given a departure tick and message size it
 * returns the arrival tick, enforcing per-cluster uplink/downlink and
 * per-bank port serialization with next-free counters. Latencies are
 * symmetric and constant, so point-to-point ordering is preserved —
 * the property the home-bank serialization argument relies on.
 *
 * Sharded execution splits each hop into a *send* half and an *accept*
 * half. The send half runs on the source component's shard and owns the
 * source-side next-free counters (_clusterUp/_bankOut) plus the
 * ordering floors; it returns the nominal arrival tick
 * (start + serialization + latency), which is always at least
 * netLatency+1 beyond the departure — the conservative-lookahead bound
 * the window scheduler relies on. The accept half runs on the
 * destination shard when the routed message is delivered and owns the
 * destination-side counters (_bankIn/_clusterDown). Every counter is
 * therefore written by exactly one shard; the byte counters are shared
 * commutative sums (relaxed atomics) and the delay histograms are
 * per-shard lanes folded on export.
 */

#ifndef COHESION_ARCH_FABRIC_HH
#define COHESION_ARCH_FABRIC_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/machine_config.hh"
#include "sim/event_queue.hh"
#include "sim/shard.hh"
#include "sim/stat_registry.hh"
#include "sim/stats.hh"

namespace arch {

class Fabric
{
  public:
    explicit Fabric(const MachineConfig &config)
        : _latency(config.netLatency),
          _bytesPerCycle(config.linkBytesPerCycle),
          _numBanks(config.numL3Banks),
          _clusterUp(config.numClusters, 0),
          _clusterDown(config.numClusters, 0),
          _bankIn(config.numL3Banks, 0),
          _bankOut(config.numL3Banks, 0),
          _c2bFloor(config.numClusters * config.numL3Banks, 0),
          _b2cFloor(config.numClusters * config.numL3Banks, 0),
          _delayUpLanes(std::max(1u, config.shards)),
          _delayDownLanes(std::max(1u, config.shards))
    {}

    /** Minimum send-to-delivery distance of any hop: every nominal
     *  arrival is > depart + lookahead(). */
    sim::Tick lookahead() const { return _latency; }

    /**
     * Send half, cluster->bank: claim the cluster uplink and return
     * the nominal arrival tick at the bank. Runs on the cluster's
     * shard.
     */
    sim::Tick
    c2bSend(unsigned cluster, unsigned bytes, sim::Tick depart)
    {
        sim::Tick start = std::max(depart, _clusterUp[cluster]);
        sim::Tick ser = serialization(bytes);
        _clusterUp[cluster] = start + ser;
        _bytesUp.fetch_add(bytes, std::memory_order_relaxed);
        return start + ser + _latency;
    }

    /**
     * Accept half, cluster->bank: serialize on the bank's input port.
     * Runs on the bank's shard at delivery; @p depart is carried from
     * the send for the delay histogram.
     * @return the tick at which the message is available at the bank.
     */
    sim::Tick
    c2bAccept(unsigned bank, sim::Tick nominal, sim::Tick depart)
    {
        sim::Tick accept = std::max(nominal, _bankIn[bank]);
        _bankIn[bank] = accept + 1; // one message accepted per cycle
        _delayUpLanes[sim::tlsShard].sample(accept - depart);
        return accept;
    }

    /** Send half, bank->cluster (see c2bSend). Runs on the bank's
     *  shard. */
    sim::Tick
    b2cSend(unsigned bank, unsigned bytes, sim::Tick depart)
    {
        sim::Tick start = std::max(depart, _bankOut[bank]);
        sim::Tick ser = serialization(bytes);
        _bankOut[bank] = start + ser;
        _bytesDown.fetch_add(bytes, std::memory_order_relaxed);
        return start + ser + _latency;
    }

    /** Accept half, bank->cluster (see c2bAccept). Runs on the
     *  cluster's shard at delivery. */
    sim::Tick
    b2cAccept(unsigned cluster, sim::Tick nominal, sim::Tick depart)
    {
        sim::Tick accept = std::max(nominal, _clusterDown[cluster]);
        _clusterDown[cluster] = accept + 1;
        _delayDownLanes[sim::tlsShard].sample(accept - depart);
        return accept;
    }

    /**
     * Per-(cluster,bank) delivery floors, applied to the nominal
     * arrival on the *sender's* shard. Baseline timing already
     * delivers each channel's messages in send order (the next-free
     * counters are monotone), but fault injection perturbs arrival
     * ticks — a delayed or retransmitted message must not overtake a
     * later send on the same channel, or the home-bank serialization
     * argument breaks (e.g. an SWcc Eviction writeback reordered after
     * a subsequent Read of the same line silently yields stale data).
     * These clamps raise each delivery to at least the previous one on
     * the same ordered channel; with faults disabled they are no-ops.
     */
    sim::Tick
    orderC2B(unsigned cluster, unsigned bank, sim::Tick arrive)
    {
        sim::Tick &floor = _c2bFloor[cluster * _numBanks + bank];
        if (arrive < floor)
            arrive = floor;
        floor = arrive + 1;
        return arrive;
    }

    sim::Tick
    orderB2C(unsigned bank, unsigned cluster, sim::Tick arrive)
    {
        sim::Tick &floor = _b2cFloor[cluster * _numBanks + bank];
        if (arrive < floor)
            arrive = floor;
        floor = arrive + 1;
        return arrive;
    }

    std::uint64_t
    bytesUp() const
    {
        return _bytesUp.load(std::memory_order_relaxed);
    }

    std::uint64_t
    bytesDown() const
    {
        return _bytesDown.load(std::memory_order_relaxed);
    }

    /** Depart-to-accept delay (serialization + hops + contention),
     *  folded across shard lanes. */
    const sim::Histogram &
    delayUp() const
    {
        foldLanes(_delayUpLanes, _delayUpFolded);
        return _delayUpFolded;
    }

    const sim::Histogram &
    delayDown() const
    {
        foldLanes(_delayDownLanes, _delayDownFolded);
        return _delayDownFolded;
    }

    void
    registerStats(sim::StatRegistry &reg, const std::string &prefix) const
    {
        _bytesUpStat.reset();
        _bytesUpStat.inc(bytesUp());
        _bytesDownStat.reset();
        _bytesDownStat.inc(bytesDown());
        reg.addCounter(prefix + ".bytes_up", _bytesUpStat);
        reg.addCounter(prefix + ".bytes_down", _bytesDownStat);
        reg.addHistogram(prefix + ".delay_up", delayUp());
        reg.addHistogram(prefix + ".delay_down", delayDown());
    }

    /** Checkpoint hooks: every next-free counter and ordering floor
     *  shapes post-restore arrival ticks, so all of them serialize.
     *  Histogram lanes fold into one record, so the wire format is
     *  shard-count-independent (restore refills lane 0). */
    void
    checkpointState(sim::Serializer &ser) const
    {
        ser.tag("fabric");
        auto vec = [&](const std::vector<sim::Tick> &v) {
            ser.u64(v.size());
            for (sim::Tick t : v)
                ser.u64(t);
        };
        vec(_clusterUp);
        vec(_clusterDown);
        vec(_bankIn);
        vec(_bankOut);
        vec(_c2bFloor);
        vec(_b2cFloor);
        ser.u64(bytesUp());
        ser.u64(bytesDown());
        delayUp().checkpointState(ser);
        delayDown().checkpointState(ser);
    }

    void
    restoreState(sim::Deserializer &des)
    {
        des.tag("fabric");
        auto vec = [&](std::vector<sim::Tick> &v) {
            if (des.u64() != v.size())
                throw sim::SnapshotError("snapshot fabric shape mismatch");
            for (sim::Tick &t : v)
                t = des.u64();
        };
        vec(_clusterUp);
        vec(_clusterDown);
        vec(_bankIn);
        vec(_bankOut);
        vec(_c2bFloor);
        vec(_b2cFloor);
        _bytesUp.store(des.u64(), std::memory_order_relaxed);
        _bytesDown.store(des.u64(), std::memory_order_relaxed);
        for (sim::Histogram &h : _delayUpLanes)
            h.reset();
        for (sim::Histogram &h : _delayDownLanes)
            h.reset();
        _delayUpLanes[0].restoreState(des);
        _delayDownLanes[0].restoreState(des);
    }

  private:
    sim::Tick
    serialization(unsigned bytes) const
    {
        return (bytes + _bytesPerCycle - 1) / _bytesPerCycle;
    }

    static void
    foldLanes(const std::vector<sim::Histogram> &lanes,
              sim::Histogram &folded)
    {
        folded.reset();
        for (const sim::Histogram &h : lanes)
            folded.merge(h);
    }

    sim::Tick _latency;
    unsigned _bytesPerCycle;
    unsigned _numBanks;
    std::vector<sim::Tick> _clusterUp;
    std::vector<sim::Tick> _clusterDown;
    std::vector<sim::Tick> _bankIn;
    std::vector<sim::Tick> _bankOut;
    std::vector<sim::Tick> _c2bFloor;
    std::vector<sim::Tick> _b2cFloor;
    std::atomic<std::uint64_t> _bytesUp{0}, _bytesDown{0};
    std::vector<sim::Histogram> _delayUpLanes, _delayDownLanes;
    /** Export scratch: the registry stores pointers, so the folded
     *  views must live here (refreshed by every accessor call). */
    mutable sim::Histogram _delayUpFolded, _delayDownFolded;
    mutable sim::Counter _bytesUpStat, _bytesDownStat;
};

} // namespace arch

#endif // COHESION_ARCH_FABRIC_HH
