/**
 * @file
 * Interconnect timing model: pipelined split-phase cluster bus feeding
 * a two-level tree/crossbar network to the L3 banks (Section 3.1). The
 * model is arithmetic: given a departure tick and message size it
 * returns the arrival tick, enforcing per-cluster uplink/downlink and
 * per-bank port serialization with next-free counters. Latencies are
 * symmetric and constant, so point-to-point ordering is preserved —
 * the property the home-bank serialization argument relies on.
 */

#ifndef COHESION_ARCH_FABRIC_HH
#define COHESION_ARCH_FABRIC_HH

#include <algorithm>
#include <string>
#include <vector>

#include "arch/machine_config.hh"
#include "sim/event_queue.hh"
#include "sim/stat_registry.hh"
#include "sim/stats.hh"

namespace arch {

class Fabric
{
  public:
    explicit Fabric(const MachineConfig &config)
        : _latency(config.netLatency),
          _bytesPerCycle(config.linkBytesPerCycle),
          _numBanks(config.numL3Banks),
          _clusterUp(config.numClusters, 0),
          _clusterDown(config.numClusters, 0),
          _bankIn(config.numL3Banks, 0),
          _bankOut(config.numL3Banks, 0),
          _c2bFloor(config.numClusters * config.numL3Banks, 0),
          _b2cFloor(config.numClusters * config.numL3Banks, 0)
    {}

    /**
     * Send a message from cluster @p cluster to bank @p bank.
     * @return the tick at which the message is available at the bank.
     */
    sim::Tick
    clusterToBank(unsigned cluster, unsigned bank, unsigned bytes,
                  sim::Tick depart)
    {
        sim::Tick start = std::max(depart, _clusterUp[cluster]);
        sim::Tick ser = serialization(bytes);
        _clusterUp[cluster] = start + ser;
        sim::Tick at_bank = start + ser + _latency;
        sim::Tick accept = std::max(at_bank, _bankIn[bank]);
        _bankIn[bank] = accept + 1; // one message accepted per cycle
        _bytesUp.inc(bytes);
        _delayUp.sample(accept - depart);
        return accept;
    }

    /**
     * Send a message from bank @p bank to cluster @p cluster.
     * @return the arrival tick at the cluster.
     */
    sim::Tick
    bankToCluster(unsigned bank, unsigned cluster, unsigned bytes,
                  sim::Tick depart)
    {
        sim::Tick start = std::max(depart, _bankOut[bank]);
        sim::Tick ser = serialization(bytes);
        _bankOut[bank] = start + ser;
        sim::Tick at_cluster = start + ser + _latency;
        sim::Tick accept = std::max(at_cluster, _clusterDown[cluster]);
        _clusterDown[cluster] = accept + 1;
        _bytesDown.inc(bytes);
        _delayDown.sample(accept - depart);
        return accept;
    }

    /**
     * Per-(cluster,bank) delivery floors. Baseline timing already
     * delivers each channel's messages in send order (the next-free
     * counters are monotone), but fault injection perturbs arrival
     * ticks — a delayed or retransmitted message must not overtake a
     * later send on the same channel, or the home-bank serialization
     * argument breaks (e.g. an SWcc Eviction writeback reordered after
     * a subsequent Read of the same line silently yields stale data).
     * These clamps raise each delivery to at least the previous one on
     * the same ordered channel; with faults disabled they are no-ops.
     */
    sim::Tick
    orderC2B(unsigned cluster, unsigned bank, sim::Tick arrive)
    {
        sim::Tick &floor = _c2bFloor[cluster * _numBanks + bank];
        if (arrive < floor)
            arrive = floor;
        floor = arrive + 1;
        return arrive;
    }

    sim::Tick
    orderB2C(unsigned bank, unsigned cluster, sim::Tick arrive)
    {
        sim::Tick &floor = _b2cFloor[cluster * _numBanks + bank];
        if (arrive < floor)
            arrive = floor;
        floor = arrive + 1;
        return arrive;
    }

    std::uint64_t bytesUp() const { return _bytesUp.value(); }
    std::uint64_t bytesDown() const { return _bytesDown.value(); }

    /** Depart-to-accept delay (serialization + hops + contention). */
    const sim::Histogram &delayUp() const { return _delayUp; }
    const sim::Histogram &delayDown() const { return _delayDown; }

    void
    registerStats(sim::StatRegistry &reg, const std::string &prefix) const
    {
        reg.addCounter(prefix + ".bytes_up", _bytesUp);
        reg.addCounter(prefix + ".bytes_down", _bytesDown);
        reg.addHistogram(prefix + ".delay_up", _delayUp);
        reg.addHistogram(prefix + ".delay_down", _delayDown);
    }

    /** Checkpoint hooks: every next-free counter and ordering floor
     *  shapes post-restore arrival ticks, so all of them serialize. */
    void
    checkpointState(sim::Serializer &ser) const
    {
        ser.tag("fabric");
        auto vec = [&](const std::vector<sim::Tick> &v) {
            ser.u64(v.size());
            for (sim::Tick t : v)
                ser.u64(t);
        };
        vec(_clusterUp);
        vec(_clusterDown);
        vec(_bankIn);
        vec(_bankOut);
        vec(_c2bFloor);
        vec(_b2cFloor);
        _bytesUp.checkpointState(ser);
        _bytesDown.checkpointState(ser);
        _delayUp.checkpointState(ser);
        _delayDown.checkpointState(ser);
    }

    void
    restoreState(sim::Deserializer &des)
    {
        des.tag("fabric");
        auto vec = [&](std::vector<sim::Tick> &v) {
            if (des.u64() != v.size())
                throw sim::SnapshotError("snapshot fabric shape mismatch");
            for (sim::Tick &t : v)
                t = des.u64();
        };
        vec(_clusterUp);
        vec(_clusterDown);
        vec(_bankIn);
        vec(_bankOut);
        vec(_c2bFloor);
        vec(_b2cFloor);
        _bytesUp.restoreState(des);
        _bytesDown.restoreState(des);
        _delayUp.restoreState(des);
        _delayDown.restoreState(des);
    }

  private:
    sim::Tick
    serialization(unsigned bytes) const
    {
        return (bytes + _bytesPerCycle - 1) / _bytesPerCycle;
    }

    sim::Tick _latency;
    unsigned _bytesPerCycle;
    unsigned _numBanks;
    std::vector<sim::Tick> _clusterUp;
    std::vector<sim::Tick> _clusterDown;
    std::vector<sim::Tick> _bankIn;
    std::vector<sim::Tick> _bankOut;
    std::vector<sim::Tick> _c2bFloor;
    std::vector<sim::Tick> _b2cFloor;
    sim::Counter _bytesUp, _bytesDown;
    sim::Histogram _delayUp, _delayDown;
};

} // namespace arch

#endif // COHESION_ARCH_FABRIC_HH
