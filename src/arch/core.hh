/**
 * @file
 * In-order core model. Cores execute kernel code as C++20 coroutines;
 * every architectural operation (load/store/atomic/flush/inv/compute)
 * is issued through this class and returns a MemOp awaitable that
 * either completed synchronously (L1/L2 hit — no simulation event) or
 * parks the coroutine until the memory system resumes it.
 *
 * Each core has private 2 KB L1I and 1 KB L1D caches (Table 3). The
 * L1D is write-through to the cluster L2, which is the coherence
 * point; per-word dirty state lives in the L2. Instruction fetch is
 * modelled by walking a per-task code loop through the L1I.
 */

#ifndef COHESION_ARCH_CORE_HH
#define COHESION_ARCH_CORE_HH

#include <coroutine>
#include <cstdint>

#include "arch/msg.hh"
#include "cache/cache_array.hh"
#include "mem/types.hh"
#include "sim/cotask.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace arch {

class Cluster;

/** Deferred description of a core operation (see MemOp). */
struct OpDesc
{
    enum class Kind : std::uint8_t {
        Load,
        Store,
        Atomic,
        Flush,
        Inv,
        Drain,
        Compute
    };

    Kind kind = Kind::Compute;
    mem::Addr addr = 0;
    std::uint32_t value = 0;
    unsigned bytes = 4;
    AtomicOp op = AtomicOp::AddU32;
    std::uint32_t operand2 = 0;
    std::uint64_t count = 0;
};

/**
 * Awaitable result of a core operation.
 *
 * Operations are issued *lazily, at await time*: Core::load() et al.
 * only capture an OpDesc, and await_ready() performs the access. This
 * guarantees a core never has more than one completion outstanding —
 * required because expressions like `f(co_await load(a)) -
 * f(co_await load(b))` evaluate their operands unsequenced, so an
 * eager design could issue both accesses before either await and
 * deliver the completions to the wrong awaits.
 *
 * ready(v) carries an already-synchronous value; pending(core) parks
 * the coroutine on the core's resumption slot immediately (used by
 * the memory system and runtime internals, which always await at
 * once).
 */
class MemOp
{
  public:
    MemOp() = default;

    static MemOp
    ready(std::uint64_t value)
    {
        MemOp op;
        op._immediate = value;
        return op;
    }

    static MemOp
    pending(class Core &core)
    {
        MemOp op;
        op._core = &core;
        return op;
    }

    static MemOp
    lazy(class Core &core, const OpDesc &desc)
    {
        MemOp op;
        op._core = &core;
        op._desc = desc;
        op._lazy = true;
        return op;
    }

    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    std::uint64_t await_resume() const;

  private:
    friend class Core;

    void resolve();

    class Core *_core = nullptr;
    std::uint64_t _immediate = 0;
    bool _lazy = false;
    OpDesc _desc;
};

class Core
{
  public:
    Core(Cluster &cluster, unsigned global_id, unsigned local_id,
         std::uint32_t l1i_bytes, unsigned l1i_assoc,
         std::uint32_t l1d_bytes, unsigned l1d_assoc);

    unsigned globalId() const { return _globalId; }
    unsigned localId() const { return _localId; }
    Cluster &cluster() { return _cluster; }

    /** Core-local clock; always >= the event-queue time at issue. */
    sim::Tick localTime() const { return _localTime; }
    void setLocalTime(sim::Tick t) { _localTime = t; }
    void
    advanceLocalTime(sim::Tick t)
    {
        if (t > _localTime)
            _localTime = t;
    }

    // --- Kernel-facing operations (co_await the returned MemOp) --------
    // All of these are lazy: the access is issued when awaited.

    /** Load @p bytes (1/2/4) at @p addr; resolves to the value. */
    MemOp
    load(mem::Addr addr, unsigned bytes = 4)
    {
        OpDesc d;
        d.kind = OpDesc::Kind::Load;
        d.addr = addr;
        d.bytes = bytes;
        return MemOp::lazy(*this, d);
    }

    /** Store the low @p bytes of @p value at @p addr. */
    MemOp
    store(mem::Addr addr, std::uint32_t value, unsigned bytes = 4)
    {
        OpDesc d;
        d.kind = OpDesc::Kind::Store;
        d.addr = addr;
        d.value = value;
        d.bytes = bytes;
        return MemOp::lazy(*this, d);
    }

    /** Atomic RMW executed at the home L3 bank; resolves to the old
     *  value. Bypasses the L1/L2 (uncached). */
    MemOp
    atomic(AtomicOp op, mem::Addr addr, std::uint32_t operand,
           std::uint32_t operand2 = 0)
    {
        OpDesc d;
        d.kind = OpDesc::Kind::Atomic;
        d.addr = addr;
        d.value = operand;
        d.op = op;
        d.operand2 = operand2;
        return MemOp::lazy(*this, d);
    }

    /** SWcc writeback instruction for the line containing @p addr. */
    MemOp
    flushLine(mem::Addr addr)
    {
        OpDesc d;
        d.kind = OpDesc::Kind::Flush;
        d.addr = addr;
        return MemOp::lazy(*this, d);
    }

    /** SWcc invalidate instruction for the line containing @p addr. */
    MemOp
    invLine(mem::Addr addr)
    {
        OpDesc d;
        d.kind = OpDesc::Kind::Inv;
        d.addr = addr;
        return MemOp::lazy(*this, d);
    }

    /** Wait until all of this cluster's SWcc writebacks are globally
     *  visible (used before barriers). */
    MemOp
    drainWrites()
    {
        OpDesc d;
        d.kind = OpDesc::Kind::Drain;
        return MemOp::lazy(*this, d);
    }

    /** Execute @p instrs single-issue instructions (with I-fetch). */
    MemOp
    compute(std::uint64_t instrs)
    {
        OpDesc d;
        d.kind = OpDesc::Kind::Compute;
        d.count = instrs;
        return MemOp::lazy(*this, d);
    }

    /** Issue a described operation now (called by MemOp::resolve). */
    MemOp perform(const OpDesc &desc);

    /** Set the code loop the I-fetch model walks during compute(). */
    void
    setCodeRegion(mem::Addr base, std::uint32_t bytes)
    {
        _codeBase = base;
        _codeBytes = bytes ? bytes : mem::lineBytes;
        _fetchOffset = 0;
        _ifetchWarm = false;
        _ifetchHitRun = 0;
    }

    // --- Completion interface used by the memory system ----------------

    /** Complete the outstanding operation with @p result and resume.
     *  The value is latched into the awaiting MemOp itself: compilers
     *  may defer await_resume() of one co_await past a sibling
     *  unsequenced co_await, so a shared per-core slot would be
     *  overwritten by the later completion. */
    void
    completeOp(std::uint64_t result)
    {
        _opResult = result;
        if (_pendingOp) {
            MemOp *op = _pendingOp;
            _pendingOp = nullptr;
            latchInto(op, result);
        }
        _resumer.fire();
    }

    /** Register the awaiting MemOp (called from await_suspend). */
    void setPendingOp(MemOp *op) { _pendingOp = op; }

    bool opPending() const { return _resumer.armed(); }
    std::uint64_t opResult() const { return _opResult; }
    sim::Resumer &resumer() { return _resumer; }

    cache::CacheArray &l1i() { return _l1i; }
    cache::CacheArray &l1d() { return _l1d; }

    /** Instructions retired (compute + memory + coherence ops). */
    std::uint64_t instructions() const { return _instructions.value(); }
    void countInstructions(std::uint64_t n) { _instructions.inc(n); }

    /**
     * Checkpoint hooks. At a quiescent point no operation is pending
     * and no coroutine is parked, so only the architectural state
     * serializes: the local clock, both L1s, the I-fetch loop state,
     * and the instruction counter. The resumer/pending-op machinery is
     * asserted idle instead.
     */
    void
    checkpointState(sim::Serializer &ser) const
    {
        if (_resumer.armed() || _pendingOp) {
            throw sim::SnapshotError(
                "checkpoint with a core operation in flight");
        }
        ser.u64(_localTime);
        _l1i.checkpointState(ser);
        _l1d.checkpointState(ser);
        ser.u32(_codeBase);
        ser.u32(_codeBytes);
        ser.u32(_fetchOffset);
        ser.b(_ifetchWarm);
        ser.u32(_ifetchHitRun);
        ser.u64(_opResult);
        _instructions.checkpointState(ser);
    }

    void
    restoreState(sim::Deserializer &des)
    {
        _localTime = des.u64();
        _l1i.restoreState(des);
        _l1d.restoreState(des);
        _codeBase = des.u32();
        _codeBytes = des.u32();
        _fetchOffset = des.u32();
        _ifetchWarm = des.b();
        _ifetchHitRun = des.u32();
        _opResult = des.u64();
        _instructions.restoreState(des);
    }

  private:
    friend class Cluster;

    Cluster &_cluster;
    unsigned _globalId;
    unsigned _localId;
    sim::Tick _localTime = 0;

    cache::CacheArray _l1i;
    cache::CacheArray _l1d;

    static void latchInto(MemOp *op, std::uint64_t result);

    sim::Resumer _resumer;
    std::uint64_t _opResult = 0;
    MemOp *_pendingOp = nullptr;

    // I-fetch state: a loop of _codeBytes starting at _codeBase. Once
    // a full pass over the loop hits in the L1I, the loop is "warm"
    // and fetch modelling is skipped (it would always hit).
    mem::Addr _codeBase = 0;
    std::uint32_t _codeBytes = mem::lineBytes;
    std::uint32_t _fetchOffset = 0;
    bool _ifetchWarm = false;
    std::uint32_t _ifetchHitRun = 0;

    sim::Counter _instructions;
};

inline void
MemOp::resolve()
{
    if (!_lazy)
        return;
    _lazy = false;
    MemOp inner = _core->perform(_desc);
    // The inner op is either synchronous (value available) or pending
    // on this same core's resumption slot.
    if (inner._core == nullptr) {
        _core = nullptr;
        _immediate = inner._immediate;
    }
}

inline bool
MemOp::await_ready()
{
    resolve();
    return _core == nullptr;
}

inline void
MemOp::await_suspend(std::coroutine_handle<> h)
{
    _core->resumer().arm(h);
    _core->setPendingOp(this);
}

inline std::uint64_t
MemOp::await_resume() const
{
    // _core is cleared (and _immediate latched) at completion; a
    // still-set _core means the op finished synchronously before any
    // suspension bookkeeping, where the shared slot is safe.
    return _core ? _core->opResult() : _immediate;
}

inline void
Core::latchInto(MemOp *op, std::uint64_t result)
{
    op->_immediate = result;
    op->_core = nullptr;
}

} // namespace arch

#endif // COHESION_ARCH_CORE_HH
