#include "arch/protocol.hh"

namespace arch {

const char *
reqTypeName(ReqType t)
{
    switch (t) {
      case ReqType::Read:
        return "RdReq";
      case ReqType::Write:
        return "WrReq";
      case ReqType::Instr:
        return "InstrReq";
      case ReqType::Atomic:
        return "Atomic";
      case ReqType::WriteRelease:
        return "WrRel";
      case ReqType::ReadRelease:
        return "RdRel";
      case ReqType::Eviction:
        return "Evict";
      case ReqType::Flush:
        return "Flush";
    }
    return "?";
}

const char *
probeTypeName(ProbeType t)
{
    switch (t) {
      case ProbeType::Invalidate:
        return "Inv";
      case ProbeType::WritebackInvalidate:
        return "WbInv";
      case ProbeType::Downgrade:
        return "Downgrade";
      case ProbeType::CleanQuery:
        return "CleanQuery";
      case ProbeType::MakeOwner:
        return "MakeOwner";
    }
    return "?";
}

} // namespace arch
