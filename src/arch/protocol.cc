#include "arch/protocol.hh"

namespace arch {

const char *
reqTypeName(ReqType t)
{
    switch (t) {
      case ReqType::Read:
        return "RdReq";
      case ReqType::Write:
        return "WrReq";
      case ReqType::Instr:
        return "InstrReq";
      case ReqType::Atomic:
        return "Atomic";
      case ReqType::WriteRelease:
        return "WrRel";
      case ReqType::ReadRelease:
        return "RdRel";
      case ReqType::Eviction:
        return "Evict";
      case ReqType::Flush:
        return "Flush";
    }
    return "?";
}

MsgClass
msgClassFor(ReqType t)
{
    switch (t) {
      case ReqType::Read:
        return MsgClass::ReadRequest;
      case ReqType::Write:
        return MsgClass::WriteRequest;
      case ReqType::Instr:
        return MsgClass::InstructionRequest;
      case ReqType::Atomic:
        return MsgClass::UncachedAtomic;
      case ReqType::WriteRelease:
        return MsgClass::CacheEviction;
      case ReqType::ReadRelease:
        return MsgClass::ReadRelease;
      case ReqType::Eviction:
        return MsgClass::CacheEviction;
      case ReqType::Flush:
        return MsgClass::SoftwareFlush;
    }
    return MsgClass::ReadRequest;
}

const char *
probeTypeName(ProbeType t)
{
    switch (t) {
      case ProbeType::Invalidate:
        return "Inv";
      case ProbeType::WritebackInvalidate:
        return "WbInv";
      case ProbeType::Downgrade:
        return "Downgrade";
      case ProbeType::CleanQuery:
        return "CleanQuery";
      case ProbeType::MakeOwner:
        return "MakeOwner";
    }
    return "?";
}

} // namespace arch
