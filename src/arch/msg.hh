/**
 * @file
 * Message taxonomy at the L2 -> L3 boundary. The eight classes are
 * exactly the legend of the paper's Figures 2 and 8; every message a
 * cluster cache sends toward the L3/directory is accounted to one of
 * them. Sizes feed the interconnect serialization model.
 */

#ifndef COHESION_ARCH_MSG_HH
#define COHESION_ARCH_MSG_HH

#include <array>
#include <cstdint>
#include <string>

#include "mem/types.hh"
#include "sim/stats.hh"

namespace arch {

/** L2 output message classes (Fig. 2 / Fig. 8 legend). */
enum class MsgClass : std::uint8_t {
    ReadRequest,        ///< Data load misses.
    WriteRequest,       ///< Store misses / ownership upgrades.
    InstructionRequest, ///< L2 instruction fetch misses.
    UncachedAtomic,     ///< Atomic RMW and uncached operations.
    CacheEviction,      ///< Dirty-line capacity writebacks.
    SoftwareFlush,      ///< Explicit SWcc writeback instructions.
    ReadRelease,        ///< HWcc notification of clean evictions.
    ProbeResponse,      ///< Replies to directory probes/broadcasts.
    NumClasses
};

constexpr unsigned numMsgClasses =
    static_cast<unsigned>(MsgClass::NumClasses);

const char *msgClassName(MsgClass c);

/** Wire sizes: 8-byte header, 4 bytes per carried data word. */
constexpr unsigned msgHeaderBytes = 8;

inline unsigned
msgBytes(unsigned data_words)
{
    return msgHeaderBytes + data_words * mem::wordBytes;
}

/** Per-cluster counters of L2 output messages by class. */
class MsgCounters
{
  public:
    void
    count(MsgClass c, std::uint64_t n = 1)
    {
        _counts[static_cast<unsigned>(c)] += n;
    }

    std::uint64_t
    get(MsgClass c) const
    {
        return _counts[static_cast<unsigned>(c)];
    }

    std::uint64_t
    total() const
    {
        std::uint64_t t = 0;
        for (auto v : _counts)
            t += v;
        return t;
    }

    void
    merge(const MsgCounters &other)
    {
        for (unsigned i = 0; i < numMsgClasses; ++i)
            _counts[i] += other._counts[i];
    }

    void exportTo(sim::StatSet &out, const std::string &prefix) const;

    void
    checkpointState(sim::Serializer &ser) const
    {
        for (std::uint64_t v : _counts)
            ser.u64(v);
    }

    void
    restoreState(sim::Deserializer &des)
    {
        for (std::uint64_t &v : _counts)
            v = des.u64();
    }

  private:
    std::array<std::uint64_t, numMsgClasses> _counts{};
};

/** Atomic read-modify-write operations executed at the L3 banks. */
enum class AtomicOp : std::uint8_t {
    AddU32, ///< Fetch-and-add (unsigned).
    AddF32, ///< Fetch-and-add (float) for reductions.
    MinF32, ///< Fetch-and-min (float).
    Or,     ///< Fetch-and-or (fine-table updates use this).
    And,    ///< Fetch-and-and (fine-table updates use this).
    Xchg,   ///< Exchange.
    Cas     ///< Compare-and-swap (operand2 = expected).
};

} // namespace arch

#endif // COHESION_ARCH_MSG_HH
