/**
 * @file
 * Top-level chip: clusters, interconnect, L3 banks with directory
 * slices, DRAM channels, the coarse region table, and the backing
 * store holding architectural memory contents. Also provides untimed
 * debug access for workload setup/verification and the directory
 * occupancy sampler used by Fig. 9c.
 *
 * Sharded execution (DESIGN.md §13): the chip owns one calendar queue
 * per shard and partitions components over them — cluster c on shard
 * c % S, bank b co-sharded with its DRAM channel on shard
 * channelOf(b) % S. A persistent ShardCrew advances all queues in
 * lockstep windows bounded by conservative lookahead over the fabric
 * latency; every cross-component message (requests, responses, both
 * probe legs, barrier wakeups) travels through the ShardRouter in a
 * canonical (tick, source, sequence) order that does not depend on the
 * shard count, so `--shards N` is bit-identical to `--shards 1`.
 */

#ifndef COHESION_ARCH_CHIP_HH
#define COHESION_ARCH_CHIP_HH

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/cluster.hh"
#include "arch/fabric.hh"
#include "arch/l3bank.hh"
#include "arch/machine_config.hh"
#include "cohesion/region_table.hh"
#include "mem/address_map.hh"
#include "mem/backing_store.hh"
#include "mem/dram.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/flight_recorder.hh"
#include "sim/latency_accounting.hh"
#include "sim/shard.hh"
#include "sim/stat_registry.hh"
#include "sim/timeseries.hh"
#include "sim/trace.hh"

namespace coherence {
class Auditor;
class LineProfiler;
}

namespace arch {

/**
 * Thrown by the deadlock/livelock watchdog in runUntilQuiescent when
 * the machine makes no forward progress for a full watchdog window (or
 * exceeds the absolute cycle limit). Carries the in-flight transaction
 * dump so the failure is diagnosable without rerunning under a tracer.
 */
class DeadlockError : public std::runtime_error
{
  public:
    DeadlockError(const std::string &reason, std::string in_flight)
        : std::runtime_error(in_flight.empty() ? reason
                                               : reason + "\n" + in_flight),
          _dump(std::move(in_flight))
    {}

    /** The in-flight transaction table at detection time. */
    const std::string &dump() const { return _dump; }

  private:
    std::string _dump;
};

/** Segment classes for directory-occupancy accounting (Fig. 9c). */
enum class Segment : std::uint8_t { Code, Stack, HeapGlobal };
constexpr unsigned numSegments = 3;

class Chip
{
  public:
    explicit Chip(const MachineConfig &config, mem::Addr table_base);
    ~Chip();

    const MachineConfig &config() const { return _config; }

    /** The executing shard's event queue. Components always schedule
     *  into the queue of the shard they run on, which the window loop
     *  (and the construction/setup ShardGuards) keeps equal to their
     *  home shard; cross-shard delivery goes through the router. */
    sim::EventQueue &eq() { return *_eqs[sim::tlsShard]; }

    mem::AddressMap &map() { return _map; }
    mem::BackingStore &store() { return _store; }
    mem::DramModel &dram() { return _dram; }
    Fabric &fabric() { return _fabric; }
    cohesion::CoarseRegionTable &coarseTable() { return _coarseTable; }
    sim::Tracer &tracer() { return _tracer; }

    Cluster &cluster(unsigned i) { return *_clusters.at(i); }
    unsigned numClusters() const { return _clusters.size(); }
    L3Bank &bank(unsigned i) { return *_banks.at(i); }
    unsigned numBanks() const { return _banks.size(); }

    /** Core by global id (cluster-major order). */
    Core &
    core(unsigned global_id)
    {
        return cluster(global_id / _config.coresPerCluster)
            .core(global_id % _config.coresPerCluster);
    }

    unsigned totalCores() const { return _config.totalCores(); }

    bool cohesionEnabled() const
    {
        return _config.mode == CoherenceMode::Cohesion;
    }

    // --- Coherence backend ------------------------------------------------

    /** Resolved backend name (never empty after construction). */
    const std::string &backendName() const { return _config.backend; }

    /** Registry traits of the resolved backend. */
    const coherence::BackendTraits &backendTraits() const
    {
        return _backendTraits;
    }

    /** Clusters must write through (no M/E grants, no upgrades). */
    bool writeThroughBackend() const { return _backendTraits.writeThrough; }

    /** Auditor applicability mask for the resolved backend. */
    std::uint32_t auditMask() const { return _backendTraits.auditMask; }

    // --- Sharding ---------------------------------------------------------

    /** Effective shard count (the config value, clamped). */
    unsigned numShards() const { return _config.shards; }

    unsigned shardOfCluster(unsigned c) const { return c % _config.shards; }

    /** Banks are co-sharded with their DRAM channel so each channel's
     *  timing state has exactly one writing shard (channelOf is a pure
     *  function of the bank index). */
    unsigned
    shardOfBank(unsigned b) const
    {
        return (b & (_config.numChannels - 1)) % _config.shards;
    }

    /** Events executed across all shard queues. */
    std::uint64_t totalEventsRun() const;

    /** The run's final tick. Valid at quiescence (runUntilQuiescent
     *  normalizes every queue's clock to the last fired event). */
    sim::Tick finalTick() const { return _eqs[0]->now(); }

    /** Cross-shard wakeup used by the runtime barrier: run @p cb on
     *  @p cluster's home shard at @p when (canonical router order). */
    void postBarrierWake(unsigned cluster, sim::Tick when, sim::Event cb);

    // --- Messaging helpers (used by clusters and banks) -----------------

    /**
     * Deliver a cluster request to its home bank through the fabric.
     * All L2->L3 fault sites (drop/duplicate/delay) live here; dropped
     * messages are retransmitted with bounded exponential backoff and
     * per-channel FIFO is preserved via the fabric's delivery floors.
     * Runs on the cluster's shard; delivery crosses via the router.
     */
    void deliverRequest(unsigned cluster, Request req, unsigned data_words,
                        sim::Tick depart);

    /** Deliver a bank response to a cluster through the fabric. */
    void sendResponse(unsigned bank, unsigned cluster, Response resp,
                      unsigned data_words);

    /**
     * Send a probe from @p bank to @p cluster; the probe is applied at
     * arrival, the cluster's ProbeResponse is counted and sent back,
     * and @p done runs at the response's arrival at the bank. @p txn
     * is the causal id (the triggering request's msgId) threaded
     * through for the flight recorder.
     */
    void sendProbe(unsigned bank, unsigned cluster, ProbeType type,
                   mem::Addr addr, std::uint32_t txn,
                   std::function<void(unsigned, const ProbeResult &)> done);

    // --- Untimed debug access (setup / verification) --------------------

    void
    debugWrite(mem::Addr a, const void *src, unsigned bytes)
    {
        _store.write(a, src, bytes);
    }

    void
    debugRead(mem::Addr a, void *out, unsigned bytes) const
    {
        _store.read(a, out, bytes);
    }

    template <typename T>
    void
    debugWriteT(mem::Addr a, T v)
    {
        _store.writeT(a, v);
    }

    template <typename T>
    T
    debugReadT(mem::Addr a) const
    {
        return _store.readT<T>(a);
    }

    /**
     * Read a 32-bit word with full visibility into the hierarchy:
     * a dirty L2 copy wins, then a valid L3 copy, then memory. Used
     * by kernel verification so results need not be flushed first.
     */
    std::uint32_t coherentRead32(mem::Addr a);

    // --- Fault injection -------------------------------------------------

    sim::FaultInjector &faults() { return _faults; }
    const sim::FaultInjector &faults() const { return _faults; }

    /**
     * Directed (test-driven) injection at @p site, xoring @p xor_mask
     * into the word at @p addr. MemDataFlip corrupts the newest
     * visible copy (the one coherentRead32 would return) so a verifier
     * must observe it; L2/L3 variants corrupt a resident copy if one
     * exists (meta sites xor the low byte into dirtyMask and the next
     * byte into validMask). Counts as injected on the site.
     */
    void injectFault(sim::FaultSite site, mem::Addr addr,
                     std::uint32_t xor_mask);

    // --- Runtime auditing ------------------------------------------------

    /**
     * Enable the coherence auditor: full invariant passes every
     * @p period ticks while the run is live plus a final pass after
     * quiescence. @p period 0 picks a cost-scaled default. Violations
     * surface as coherence::AuditError out of runUntilQuiescent.
     */
    void enableAudit(sim::Tick period = 0);

    /** One full audit pass right now (throws coherence::AuditError). */
    void auditNow();

    /** auditNow() without moving the chip.audit.* counters (the
     *  pre-checkpoint verification pass; see coherence::Auditor). */
    void verifyNow();

    coherence::Auditor *auditor() { return _auditor.get(); }

    /** Human-readable table of in-flight bank transactions, cluster
     *  MSHRs, and outstanding writebacks (watchdog diagnostics). */
    std::string inFlightDump() const;

    /** Responses delivered to clusters (watchdog progress signal). */
    std::uint64_t
    responsesDelivered() const
    {
        return _respDelivered.load(std::memory_order_relaxed);
    }

    // --- Observability ---------------------------------------------------

    /** Latency of a request/probe-response message of class @p cls,
     *  measured depart-to-accept through the fabric. Sampled on the
     *  receiving shard into a per-shard lane. */
    void
    sampleReqLatency(MsgClass cls, sim::Tick lat)
    {
        _latLanes[sim::tlsShard].req[static_cast<unsigned>(cls)].sample(lat);
    }

    void
    sampleRespLatency(sim::Tick lat)
    {
        _latLanes[sim::tlsShard].resp.sample(lat);
    }

    const sim::Histogram &reqLatency(MsgClass cls) const;
    const sim::Histogram &respLatency() const;
    const sim::Histogram &probeLatency() const;

    /**
     * Turn on per-transaction cycle accounting (chip.latency.*; see
     * sim/latency_accounting.hh). Observer-only like the recorder:
     * off (the default) leaves the hot path untouched and exports no
     * new keys, so existing stat fingerprints are unchanged.
     */
    void enableLatencyAccounting() { _latAcc.enable(); }
    bool latencyOn() const { return _latAcc.enabled(); }
    sim::LatencyAccountant &latAcc() { return _latAcc; }
    const sim::LatencyAccountant &latAcc() const { return _latAcc; }

    sim::TimeSeries &timeSeries() { return _timeSeries; }
    const sim::TimeSeries &timeSeries() const { return _timeSeries; }

    // --- Flight recorder / line profiler ---------------------------------

    /** Turn the flight recorder on with a ring of @p capacity records
     *  (one allocation; see sim::FlightRecorder). */
    void enableRecorder(std::uint32_t capacity = 1u << 14);

    /** Aggregate per-line sharing-pattern telemetry (exported under
     *  "chip.lines" by registerStats). @p top_n sizes the contended-
     *  lines table. */
    void enableLineProfiler(unsigned top_n = 8);

    /** Verbose-decode every recorder event touching @p addr's line to
     *  the log (works even with the ring disabled). */
    void setWatchLine(mem::Addr addr);

    sim::FlightRecorder &recorder() { return _recorder; }
    const sim::FlightRecorder &recorder() const { return _recorder; }
    coherence::LineProfiler *lineProfiler() { return _profiler.get(); }

    /**
     * Emit one protocol event. The disabled path is this single byte
     * test, so instrumented hot paths stay effectively free when
     * neither the recorder, the profiler nor a watched line is active.
     * The direct path (one shard, no profiler/watch) inlines the
     * masked ring store here. Sharded runs (and any run feeding the
     * line profiler or a watch line) instead *stage* records per shard
     * and merge them at every window barrier in a canonical
     * content-sorted order, so the ring, the profiler and the watch
     * log observe the same stream for every shard count.
     */
    void
    rec(sim::FlightRecorder::Ev kind, std::uint16_t comp, mem::Addr line,
        std::uint32_t txn, std::uint8_t a = 0, std::uint32_t b = 0)
    {
        if (!_recAny)
            return;
        if (_recStaged) {
            sim::FlightRecorder::Record r;
            r.tick = eq().now();
            r.line = line;
            r.txn = txn;
            r.comp = comp;
            r.kind = static_cast<std::uint8_t>(kind);
            r.a = a;
            r.b = b;
            _recStage[sim::tlsShard].push_back(r);
            return;
        }
        if (_recorder.enabled())
            _recorder.record(eq().now(), kind, comp, line, txn, a, b);
    }

    /** Decoded recorder history for one line (newest @p max_records),
     *  one indented record per row. Empty if the ring is off. */
    std::string lineHistory(mem::Addr line_base,
                            std::size_t max_records = 16) const;

    /** Recorder histories for every line implicated in the in-flight
     *  dump (watchdog/audit post-mortems). */
    std::string postMortemHistory() const;

    /** Fabric drops survived by delivered requests of class @p cls. */
    std::uint64_t
    reqRetries(MsgClass cls) const
    {
        return _reqRetries[static_cast<unsigned>(cls)].load(
            std::memory_order_relaxed);
    }

    std::uint64_t
    respRetries() const
    {
        return _respRetries.load(std::memory_order_relaxed);
    }

    /** Fresh id for an async trace span (chip-global sequence). */
    std::uint64_t
    nextTraceId()
    {
        return _traceIdSeq.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    /**
     * Attach (or detach, with nullptr) a structured trace sink: names
     * the per-component tracks and mirrors time-series samples as
     * counter events. The writer is not owned and must outlive the run.
     * Ignored (with a warning) when the chip runs more than one shard.
     */
    void attachJson(sim::TraceJsonWriter *w);

    /** Register every chip-level stat under "chip." in @p reg. */
    void registerStats(sim::StatRegistry &reg) const;

    // --- Directory occupancy sampling (Fig. 9c) -------------------------

    using SegmentClassifier = std::function<Segment(mem::Addr)>;

    void setSegmentClassifier(SegmentClassifier fn)
    {
        _classifier = std::move(fn);
    }

    /**
     * Enable periodic sampling (default: paper's 1000 cycles).
     * Registers the occupancy / queue-depth / message-rate series with
     * the time-series sampler and arms it on the event queue.
     */
    void enableOccupancySampling(sim::Tick period = 1000);

    /** Time-average directory entries in @p seg across banks. */
    double occupancyAverage(Segment seg) const
    {
        return _occupancy[static_cast<unsigned>(seg)].timeAverage();
    }

    double occupancyAverageTotal() const { return _occupancyTotal.timeAverage(); }
    double occupancyMax() const { return _occupancyTotal.maximum(); }

    // --- Execution -------------------------------------------------------

    /**
     * Live-progress heartbeat: called from inside runUntilQuiescent
     * roughly every @p interval_sec of host time with (current tick,
     * events run so far). The host clock is only consulted at window
     * barriers and never feeds back into window boundaries, so the
     * simulated results stay byte-identical with the hook installed.
     */
    using ProgressFn = std::function<void(sim::Tick, std::uint64_t)>;

    void
    setProgressHook(ProgressFn fn, double interval_sec = 0.25)
    {
        _progressFn = std::move(fn);
        _progressIntervalSec = interval_sec;
    }

    /**
     * Run until every shard queue (and the router) drains. Execution
     * proceeds in conservative-lookahead windows: each window runs all
     * shards in parallel up to
     *   stop = min(B + netLatency - 1, next cadence tick, limits)
     * where B is the earliest pending event/message anywhere — every
     * cross-shard message arrives at least netLatency+1 past its
     * departure, so nothing scheduled inside a window can land inside
     * it. Audit passes, the fault pump, the sampler, the watchdog and
     * the heartbeat all run at the single-threaded window barrier.
     * Throws DeadlockError on stagnation or the maxCycles limit.
     * @return final tick (the last fired event; every queue's clock is
     * normalized to it, so a later run or checkpoint continues
     * identically for any shard count).
     */
    sim::Tick runUntilQuiescent();

    /** Aggregate L2 output message counters across clusters. */
    MsgCounters aggregateMessages() const;

    /** Total instructions retired across all cores. */
    std::uint64_t totalInstructions() const;

  private:
    struct LatencyLanes
    {
        std::array<sim::Histogram, numMsgClasses> req;
        sim::Histogram resp;
        sim::Histogram probe;
    };

    /** Route one request (or its duplicate) to the bank's shard. */
    void routeRequest(unsigned cluster_id, unsigned bank_id, Request req,
                      sim::Tick nominal, sim::Tick depart, unsigned drops);

    /** Probe application at the cluster + response leg back. */
    void probeArrived(unsigned bank_id, unsigned cluster_id, ProbeType type,
                      mem::Addr addr, std::uint32_t txn,
                      std::function<void(unsigned, const ProbeResult &)> done);

    /** One parallel window on shard @p shard: flush due router
     *  messages, then run the shard queue to @p stop. */
    void runShardWindow(unsigned shard, sim::Tick stop);

    /** Merge staged flight-recorder records (canonical content order)
     *  into the ring / profiler / watch log. Barrier-only. */
    void drainRecStage();

    /** Disable debug sinks that are not shard-safe (text trace mask,
     *  JSON writer) when running more than one shard. */
    void degradeDebugSinks();

    void recImpl(const sim::FlightRecorder::Record &r);
    void updateRecAny();

    void sampleOccupancy();

    /** True when any cache-flip fault site is armed; the run loop then
     *  invokes faultPump() at the plan's pump cadence. */
    bool pumpEligible() const;
    void faultPump();

    unsigned srcKeyCluster(unsigned c) const { return c; }
    unsigned srcKeyBank(unsigned b) const { return _config.numClusters + b; }
    unsigned
    srcKeyBarrier() const
    {
        return _config.numClusters + _config.numL3Banks;
    }

    /** Watchdog progress signature: stagnation across a full window
     *  means deadlock or livelock (retry storms keep event counts and
     *  message counters moving, so those are deliberately excluded). */
    struct Progress
    {
        std::uint64_t instructions = 0;
        std::uint64_t txnsCompleted = 0;
        std::uint64_t respDelivered = 0;
        bool operator==(const Progress &) const = default;
    };
    Progress progress() const;

    MachineConfig _config; ///< shards clamped, backend resolved.
    coherence::BackendTraits _backendTraits;
    std::vector<std::unique_ptr<sim::EventQueue>> _eqs; ///< [shard]
    sim::ShardRouter _router;
    sim::Tracer _tracer;
    mem::AddressMap _map;
    mem::BackingStore _store;
    mem::DramModel _dram;
    Fabric _fabric;
    sim::FaultInjector _faults;
    cohesion::CoarseRegionTable _coarseTable;
    std::vector<std::unique_ptr<Cluster>> _clusters;
    std::vector<std::unique_ptr<L3Bank>> _banks;
    std::unique_ptr<sim::ShardCrew> _crew;
    std::unique_ptr<coherence::Auditor> _auditor;
    sim::Tick _auditPeriod = 0;
    std::atomic<std::uint64_t> _respDelivered{0};

    ProgressFn _progressFn;
    double _progressIntervalSec = 0.25;

    SegmentClassifier _classifier;
    sim::Tick _samplePeriod = 0;
    std::array<sim::TimeSampler, numSegments> _occupancy;
    sim::TimeSampler _occupancyTotal;

    // Cached by sampleOccupancy() so the time-series probes read the
    // directory walk's result instead of repeating it per series.
    std::array<double, numSegments> _lastOccupancy{};
    double _lastOccupancyTotal = 0;

    sim::TimeSeries _timeSeries;
    std::vector<LatencyLanes> _latLanes; ///< [shard]
    /** Stage-blame aggregation (per-shard lanes inside); deliberately
     *  not checkpointed — aggregates restart at restore (§15). */
    sim::LatencyAccountant _latAcc;
    /** Export scratch: the registry stores pointers, so folded views
     *  must live here (refreshed by every accessor call). */
    mutable std::array<sim::Histogram, numMsgClasses> _reqLatencyFolded;
    mutable sim::Histogram _respLatencyFolded;
    mutable sim::Histogram _probeLatencyFolded;
    mutable std::array<sim::Counter, numMsgClasses> _reqRetriesStat;
    mutable sim::Counter _respRetriesStat, _retryExhaustedStat,
        _respDeliveredStat;
    std::atomic<std::uint64_t> _traceIdSeq{0};

    sim::FlightRecorder _recorder;
    std::vector<std::vector<sim::FlightRecorder::Record>> _recStage;
    std::unique_ptr<coherence::LineProfiler> _profiler;
    mem::Addr _watchLine = ~mem::Addr(0);
    bool _recAny = false;    ///< recorder, profiler or watch line active
    bool _recSlow = false;   ///< profiler or watch line active
    bool _recStaged = false; ///< staged (canonical-merge) mode active
    std::array<std::atomic<std::uint64_t>, numMsgClasses> _reqRetries{};
    std::atomic<std::uint64_t> _respRetries{0};
    std::atomic<std::uint64_t> _retryExhausted{0};

  public:
    /** Messages force-delivered after the drop-retransmit budget was
     *  spent (previously silent; see deliverRequest/sendResponse). */
    std::uint64_t
    retriesExhausted() const
    {
        return _retryExhausted.load(std::memory_order_relaxed);
    }

    /**
     * Checkpoint hooks (tentpole of the crash-resilience work). Only
     * legal at a quiescent point: every shard queue and the router
     * must be drained and no bank transaction, cluster MSHR, or parked
     * core may exist — coroutine frames cannot serialize. The queue
     * record is one canonical (tick, events run, next seq) triple, so
     * snapshots are shard-count-independent: a run checkpointed at
     * --shards 4 restores bit-exactly into --shards 1 and vice versa.
     * Callers should run a full audit pass first; checkpointState()
     * enforces the structural conditions itself and throws
     * sim::SnapshotError otherwise.
     */
    void checkpointState(sim::Serializer &ser) const;
    void restoreState(sim::Deserializer &des);
};

} // namespace arch

#endif // COHESION_ARCH_CHIP_HH
