/**
 * @file
 * Top-level chip: clusters, interconnect, L3 banks with directory
 * slices, DRAM channels, the coarse region table, and the backing
 * store holding architectural memory contents. Also provides untimed
 * debug access for workload setup/verification and the directory
 * occupancy sampler used by Fig. 9c.
 */

#ifndef COHESION_ARCH_CHIP_HH
#define COHESION_ARCH_CHIP_HH

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "arch/cluster.hh"
#include "arch/fabric.hh"
#include "arch/l3bank.hh"
#include "arch/machine_config.hh"
#include "cohesion/region_table.hh"
#include "mem/address_map.hh"
#include "mem/backing_store.hh"
#include "mem/dram.hh"
#include "sim/event_queue.hh"
#include "sim/stat_registry.hh"
#include "sim/timeseries.hh"
#include "sim/trace.hh"

namespace arch {

/** Segment classes for directory-occupancy accounting (Fig. 9c). */
enum class Segment : std::uint8_t { Code, Stack, HeapGlobal };
constexpr unsigned numSegments = 3;

class Chip
{
  public:
    explicit Chip(const MachineConfig &config, mem::Addr table_base);

    const MachineConfig &config() const { return _config; }
    sim::EventQueue &eq() { return _eq; }
    mem::AddressMap &map() { return _map; }
    mem::BackingStore &store() { return _store; }
    mem::DramModel &dram() { return _dram; }
    Fabric &fabric() { return _fabric; }
    cohesion::CoarseRegionTable &coarseTable() { return _coarseTable; }
    sim::Tracer &tracer() { return _tracer; }

    Cluster &cluster(unsigned i) { return *_clusters.at(i); }
    unsigned numClusters() const { return _clusters.size(); }
    L3Bank &bank(unsigned i) { return *_banks.at(i); }
    unsigned numBanks() const { return _banks.size(); }

    /** Core by global id (cluster-major order). */
    Core &
    core(unsigned global_id)
    {
        return cluster(global_id / _config.coresPerCluster)
            .core(global_id % _config.coresPerCluster);
    }

    unsigned totalCores() const { return _config.totalCores(); }

    bool cohesionEnabled() const
    {
        return _config.mode == CoherenceMode::Cohesion;
    }

    // --- Messaging helpers (used by clusters and banks) -----------------

    /** Deliver a bank response to a cluster through the fabric. */
    void sendResponse(unsigned bank, unsigned cluster, Response resp,
                      unsigned data_words);

    /**
     * Send a probe from @p bank to @p cluster; the probe is applied at
     * arrival, the cluster's ProbeResponse is counted and sent back,
     * and @p done runs at the response's arrival at the bank.
     */
    void sendProbe(unsigned bank, unsigned cluster, ProbeType type,
                   mem::Addr addr,
                   std::function<void(unsigned, const ProbeResult &)> done);

    // --- Untimed debug access (setup / verification) --------------------

    void
    debugWrite(mem::Addr a, const void *src, unsigned bytes)
    {
        _store.write(a, src, bytes);
    }

    void
    debugRead(mem::Addr a, void *out, unsigned bytes) const
    {
        _store.read(a, out, bytes);
    }

    template <typename T>
    void
    debugWriteT(mem::Addr a, T v)
    {
        _store.writeT(a, v);
    }

    template <typename T>
    T
    debugReadT(mem::Addr a) const
    {
        return _store.readT<T>(a);
    }

    /**
     * Read a 32-bit word with full visibility into the hierarchy:
     * a dirty L2 copy wins, then a valid L3 copy, then memory. Used
     * by kernel verification so results need not be flushed first.
     */
    std::uint32_t coherentRead32(mem::Addr a);

    // --- Observability ---------------------------------------------------

    /** Latency of a request/probe-response message of class @p cls,
     *  measured depart-to-arrival through the fabric. */
    void
    sampleReqLatency(MsgClass cls, sim::Tick lat)
    {
        _reqLatency[static_cast<unsigned>(cls)].sample(lat);
    }

    void sampleRespLatency(sim::Tick lat) { _respLatency.sample(lat); }

    const sim::Histogram &
    reqLatency(MsgClass cls) const
    {
        return _reqLatency[static_cast<unsigned>(cls)];
    }

    const sim::Histogram &respLatency() const { return _respLatency; }
    const sim::Histogram &probeLatency() const { return _probeLatency; }

    sim::TimeSeries &timeSeries() { return _timeSeries; }
    const sim::TimeSeries &timeSeries() const { return _timeSeries; }

    /** Fresh id for an async trace span (chip-global sequence). */
    std::uint64_t nextTraceId() { return ++_traceIdSeq; }

    /**
     * Attach (or detach, with nullptr) a structured trace sink: names
     * the per-component tracks and mirrors time-series samples as
     * counter events. The writer is not owned and must outlive the run.
     */
    void attachJson(sim::TraceJsonWriter *w);

    /** Register every chip-level stat under "chip." in @p reg. */
    void registerStats(sim::StatRegistry &reg) const;

    // --- Directory occupancy sampling (Fig. 9c) -------------------------

    using SegmentClassifier = std::function<Segment(mem::Addr)>;

    void setSegmentClassifier(SegmentClassifier fn)
    {
        _classifier = std::move(fn);
    }

    /**
     * Enable periodic sampling (default: paper's 1000 cycles).
     * Registers the occupancy / queue-depth / message-rate series with
     * the time-series sampler and arms it on the event queue.
     */
    void enableOccupancySampling(sim::Tick period = 1000);

    /** Time-average directory entries in @p seg across banks. */
    double occupancyAverage(Segment seg) const
    {
        return _occupancy[static_cast<unsigned>(seg)].timeAverage();
    }

    double occupancyAverageTotal() const { return _occupancyTotal.timeAverage(); }
    double occupancyMax() const { return _occupancyTotal.maximum(); }

    // --- Execution -------------------------------------------------------

    /**
     * Run until the event queue drains (all cores quiescent) or the
     * watchdog limit is hit (fatal). Periodic sampling rides on the
     * event queue itself (TimeSeries), so a single run suffices.
     * @return final tick.
     */
    sim::Tick runUntilQuiescent();

    /** Aggregate L2 output message counters across clusters. */
    MsgCounters aggregateMessages() const;

    /** Total instructions retired across all cores. */
    std::uint64_t totalInstructions() const;

  private:
    void sampleOccupancy();

    MachineConfig _config;
    sim::EventQueue _eq;
    sim::Tracer _tracer{_eq};
    mem::AddressMap _map;
    mem::BackingStore _store;
    mem::DramModel _dram;
    Fabric _fabric;
    cohesion::CoarseRegionTable _coarseTable;
    std::vector<std::unique_ptr<Cluster>> _clusters;
    std::vector<std::unique_ptr<L3Bank>> _banks;

    SegmentClassifier _classifier;
    sim::Tick _samplePeriod = 0;
    std::array<sim::TimeSampler, numSegments> _occupancy;
    sim::TimeSampler _occupancyTotal;

    // Cached by sampleOccupancy() so the time-series probes read the
    // directory walk's result instead of repeating it per series.
    std::array<double, numSegments> _lastOccupancy{};
    double _lastOccupancyTotal = 0;

    sim::TimeSeries _timeSeries{_eq};
    std::array<sim::Histogram, numMsgClasses> _reqLatency;
    sim::Histogram _respLatency;
    sim::Histogram _probeLatency;
    std::uint64_t _traceIdSeq = 0;
};

} // namespace arch

#endif // COHESION_ARCH_CHIP_HH
