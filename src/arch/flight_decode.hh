/**
 * @file
 * Human-readable decoding of flight-recorder records. Lives in the
 * arch layer so sim/flight_recorder stays free of protocol knowledge:
 * the a/b payloads are interpreted here against ReqType, ProbeType,
 * MsgClass and the Fig. 7 transition steps.
 */

#ifndef COHESION_ARCH_FLIGHT_DECODE_HH
#define COHESION_ARCH_FLIGHT_DECODE_HH

#include <string>

#include "sim/flight_recorder.hh"

namespace arch {

/** One-line narrative for @p r, e.g.
 *  "t=1204 bank3 msg.recv WrReq line 0x1a40 cluster2 msg#17". */
std::string describeRecord(const sim::FlightRecorder::Record &r);

/** The narrative without the leading "t=<tick> " stamp. */
std::string describeRecordBody(const sim::FlightRecorder::Record &r);

} // namespace arch

#endif // COHESION_ARCH_FLIGHT_DECODE_HH
