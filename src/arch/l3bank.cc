#include "arch/l3bank.hh"

#include <algorithm>
#include <bit>

#include "arch/chip.hh"
#include "cohesion/region_table.hh"
#include "sim/host_profiler.hh"
#include "sim/logging.hh"
#include "sim/shard.hh"
#include "sim/trace.hh"
#include "sim/trace_json.hh"

namespace arch {

namespace {

using FR = sim::FlightRecorder;

} // namespace

L3Bank::L3Bank(Chip &chip, unsigned id)
    : _chip(chip), _id(id),
      _l3(sim::cat("l3bank", id), chip.config().l3BankBytes,
          chip.config().l3Assoc),
      _tableCache(chip.config().tableCacheEntries), _locks(chip.eq()),
      _backend(coherence::makeBackend(chip.config().backend, *this))
{
    _tableCache.setFaultInjector(&chip.faults(), id);
    _txns.reserve(64);
}

void
L3Bank::pruneTransactions()
{
    for (auto it = _running.begin(); it != _running.end();) {
        if (it->done()) {
            it->rethrow();
            auto done_it = it++;
            // Recycle the list node instead of freeing it: the frame
            // slot moves to the spare list and the next transaction
            // reuses it, so steady-state request arrival allocates no
            // list nodes (the coroutine frame itself is unavoidable).
            *done_it = sim::CoTask();
            _spare.splice(_spare.begin(), _running, done_it);
        } else {
            ++it;
        }
    }
    // Bound the spare pool: a fan-in burst can briefly strand many
    // frames; keep a generous working set and return the rest.
    while (_spare.size() > 256)
        _spare.pop_back();
}

sim::CoTask &
L3Bank::adoptTransaction(sim::CoTask &&task)
{
    if (_spare.empty()) {
        _running.push_back(std::move(task));
    } else {
        _running.splice(_running.end(), _spare, _spare.begin());
        _running.back() = std::move(task);
    }
    return _running.back();
}

void
L3Bank::receiveRequest(const Request &req)
{
    // Covers the transaction coroutine's first segment (through
    // .start() up to its first suspension); later segments re-open
    // the phase from the awaitable resume hooks.
    sim::HostProfiler::Scope hp(sim::HostProfiler::Phase::BankMsg);
    TRACE(_chip.tracer(), sim::Category::Protocol, "bank", _id, ": ",
          reqTypeName(req.type), " 0x", std::hex, req.addr, std::dec,
          " from cluster ", req.cluster);
    _chip.sampleReqLatency(msgClassFor(req.type),
                           _chip.eq().now() - req.sendTick);
    _chip.rec(FR::Ev::MsgRecv, FR::compBank(_id), mem::lineBase(req.addr),
              req.msgId, static_cast<std::uint8_t>(req.type), req.cluster);
    std::uint64_t trace_id = 0;
    if (sim::TraceJsonWriter *w = _chip.tracer().json()) {
        trace_id = _chip.nextTraceId();
        w->asyncBegin(trace_id, _chip.eq().now(),
                      sim::cat("bank", _id, ":", reqTypeName(req.type)),
                      "txn");
    }
    pruneTransactions();
    adoptTransaction(transaction(req, trace_id)).start();
}

sim::CoTask
L3Bank::transaction(Request req, std::uint64_t trace_id)
{
    const std::uint64_t txn = ++_txnSeq;
    _txns.emplace(txn, TxnRecord{txn, req.type, mem::lineBase(req.addr),
                                 req.cluster, _chip.eq().now()});
    // TxnBegin binds the bank-local txn sequence to the cluster's
    // msgId so the decoder can stitch the two id spaces together.
    _chip.rec(FR::Ev::TxnBegin, FR::compBank(_id), mem::lineBase(req.addr),
              static_cast<std::uint32_t>(txn), 0, req.msgId);
    // Latency accounting: the stage cursor lives on this frame and is
    // threaded by pointer through the whole flow, so the bank span
    // tiles exactly between arrival and the response send. The
    // request leg (issue/MSHR wait, fabric hop, retransmit backoff)
    // is settled here from the message's own stamps.
    sim::lat::Cursor cursor;
    sim::lat::Cursor *lat = nullptr;
    if (_chip.latencyOn()) {
        lat = &cursor;
        const sim::Tick t1 = _chip.eq().now();
        std::uint64_t req_leg = t1 - req.sendTick;
        std::uint64_t rp =
            std::min<std::uint64_t>(req.retryPenalty, req_leg);
        cursor.add(sim::lat::Stage::ReqFabric, req_leg - rp);
        cursor.add(sim::lat::Stage::Retry, rp);
        cursor.add(req.fromMshr ? sim::lat::Stage::Mshr
                                : sim::lat::Stage::Issue,
                   req.sendTick - req.opStart);
        cursor.last = t1;
    }
    if (req.type == ReqType::Atomic && _chip.cohesionEnabled() &&
        _chip.map().inTable(req.addr)) {
        co_await handleTableUpdate(req, lat);
    } else {
        switch (req.type) {
          case ReqType::Read:
          case ReqType::Instr:
            co_await _backend->read(req, lat);
            break;
          case ReqType::Write:
            co_await _backend->write(req, lat);
            break;
          case ReqType::Atomic:
            co_await handleAtomic(req, lat);
            break;
          default:
            co_await handleWriteback(req, lat);
            break;
        }
    }
    _txns.erase(txn);
    _txnsCompleted.inc();
    _chip.rec(FR::Ev::TxnEnd, FR::compBank(_id), mem::lineBase(req.addr),
              static_cast<std::uint32_t>(txn), 0, req.msgId);
    if (trace_id) {
        if (sim::TraceJsonWriter *w = _chip.tracer().json())
            w->asyncEnd(trace_id, _chip.eq().now(),
                        sim::cat("bank", _id, ":",
                                 reqTypeName(req.type)),
                        "txn");
    }
}

void
L3Bank::respond(const Request &req, Response resp, unsigned data_words,
                sim::lat::Cursor *lat)
{
    resp.msgId = req.msgId; // echo for cluster-side dedup
    if (lat) {
        // Close the residual bank span to Service: sendResponse below
        // stamps resp.sendTick with this same tick, so the timeline
        // tiles [opStart, sendTick) exactly and the cluster settles
        // the reply leg at retire.
        lat->mark(sim::lat::Stage::Service, _chip.eq().now());
        resp.latStages = lat->cycles;
        resp.opStart = req.opStart;
        if (resp.incoherent)
            resp.latMode = sim::lat::Mode::Swcc;
    }
    _chip.rec(FR::Ev::RespSend, FR::compBank(_id), mem::lineBase(resp.addr),
              resp.msgId, static_cast<std::uint8_t>(resp.type),
              (resp.incoherent ? FR::respIncoherent : 0u) |
                  (resp.grant == cache::CohState::Exclusive ||
                           resp.grant == cache::CohState::Modified
                       ? FR::respGrant
                       : 0u));
    _chip.sendResponse(_id, req.cluster, resp, data_words);
}

void
L3Bank::registerStats(sim::StatRegistry &reg,
                      const std::string &prefix) const
{
    reg.addCounter(prefix + ".l3.hits", _l3Hits);
    reg.addCounter(prefix + ".l3.misses", _l3Misses);
    reg.addCounter(prefix + ".transitions", _transitions);
    reg.addCounter(prefix + ".table_lookups", _tableLookups);
    reg.addCounter(prefix + ".dir.evictions", _dirEvictions);
    reg.addCounter(prefix + ".atomics", _atomics);
    reg.addCounter(prefix + ".merge_conflicts", _mergeConflicts);
    reg.addCounter(prefix + ".txns_completed", _txnsCompleted);
    reg.addScalar(prefix + ".dir.entries", [this]() {
        return static_cast<double>(_backend->dirEntries());
    });
    reg.addScalar(prefix + ".dir.peak", [this]() {
        return static_cast<double>(_backend->dirPeakEntries());
    });
    reg.addScalar(prefix + ".dir.insertions", [this]() {
        return static_cast<double>(_backend->dirInsertions());
    });
}

void
L3Bank::sendProbes(const std::vector<unsigned> &targets, ProbeType type,
                   mem::Addr addr, std::uint32_t txn,
                   std::vector<std::pair<unsigned, ProbeResult>> *results,
                   AckGate *gate)
{
    TRACE(_chip.tracer(), sim::Category::Protocol, "bank", _id, ": ",
          probeTypeName(type), " 0x", std::hex, addr, std::dec, " -> ",
          targets.size(), " cluster(s)");
    for (unsigned cl : targets) {
        _chip.sendProbe(_id, cl, type, addr, txn,
                        [results, gate](unsigned c, const ProbeResult &r) {
                            results->emplace_back(c, r);
                            gate->signal();
                        });
    }
}

std::pair<cache::Line *, sim::Tick>
L3Bank::l3AccessPrep(mem::Addr base, bool write, sim::Tick start,
                     sim::Tick *dram)
{
    (void)write;
    base = mem::lineBase(base);
    start = std::max(start, _l3PortFree);
    _l3PortFree = start + 1;
    sim::Tick ready = start + _chip.config().l3Latency;
    if (dram)
        *dram = 0;

    if (cache::Line *line = _l3.probe(base)) {
        _l3.touch(*line);
        _l3Hits.inc();
        return {line, ready};
    }
    _l3Misses.inc();

    cache::Line &v = _l3.victim(base);
    if (v.valid) {
        if (v.dirty()) {
            // Victim writeback uses the channel but is off the
            // critical path of this access.
            _chip.store().write(v.base, v.data.data(), mem::lineBytes);
            _chip.dram().access(v.base, true, start);
        }
        v.reset();
    }
    _l3.claim(v, base);
    _chip.store().read(base, v.data.data(), mem::lineBytes);
    v.validMask = mem::fullMask;
    v.dirtyMask = 0;

    sim::Tick fill_done = _chip.dram().access(base, false, ready);
    if (dram)
        *dram = fill_done + 1 - ready;
    return {&v, fill_done + 1};
}

sim::CoTask
L3Bank::mergeIntoL3(mem::Addr base,
                    const std::array<std::uint8_t, mem::lineBytes> &data,
                    mem::WordMask mask)
{
    auto [line, t] = l3AccessPrep(base, true, _chip.eq().now());
    line->merge(data.data(), mask);
    co_await Delay{_chip.eq(), t};
}

std::uint32_t
L3Bank::applyAtomic(cache::Line &line, mem::Addr addr, AtomicOp op,
                    std::uint32_t operand, std::uint32_t operand2)
{
    std::uint32_t old = 0;
    line.read(addr, &old, 4);
    std::uint32_t next = old;
    switch (op) {
      case AtomicOp::AddU32:
        next = old + operand;
        break;
      case AtomicOp::AddF32: {
          float f = std::bit_cast<float>(old) + std::bit_cast<float>(operand);
          next = std::bit_cast<std::uint32_t>(f);
          break;
      }
      case AtomicOp::MinF32: {
          float a = std::bit_cast<float>(old);
          float b = std::bit_cast<float>(operand);
          next = std::bit_cast<std::uint32_t>(std::min(a, b));
          break;
      }
      case AtomicOp::Or:
        next = old | operand;
        break;
      case AtomicOp::And:
        next = old & operand;
        break;
      case AtomicOp::Xchg:
        next = operand;
        break;
      case AtomicOp::Cas:
        next = (old == operand2) ? operand : old;
        break;
    }
    line.write(addr, &next, 4);
    return old;
}

sim::CoTask
L3Bank::lookupDomain(mem::Addr base, std::uint32_t txn, bool *out_swcc)
{
    // Host-profiler scopes in this coroutine are closed explicitly
    // before every co_await: a scope left open across a suspension
    // would time simulated waiting, not host work.
    sim::HostProfiler::Scope hp(sim::HostProfiler::Phase::RegionTable);
    // The coarse-grain table is checked in parallel with the directory
    // and adds no latency.
    if (_chip.coarseTable().contains(base)) {
        *out_swcc = true;
        co_return;
    }
    // Fine-grain lookup: one extra L3 data access for the table word
    // (Section 3.4: "a minimum of one cycle of delay ... more under
    // contention at the L3 or if an L3 cache miss for the table
    // occurs").
    _tableLookups.inc();
    const mem::AddressMap &map = _chip.map();
    mem::Addr word_addr = map.tableWordAddr(base);

    // Optional on-die table cache: a hit avoids the L3 access
    // entirely (one cycle, like the coarse table).
    if (auto cached = _tableCache.lookup(word_addr)) {
        hp.close();
        co_await Delay{_chip.eq(), _chip.eq().now() + 1};
        sim::HostProfiler::Scope hp2(
            sim::HostProfiler::Phase::RegionTable);
        *out_swcc = cohesion::fine_table::bitFromWord(*cached, map, base);
        _chip.rec(FR::Ev::TableRead, FR::compBank(_id), base, txn,
                  *out_swcc ? 1 : 0, FR::tableFromCache);
        co_return;
    }

    auto [tline, t] = l3AccessPrep(word_addr, false, _chip.eq().now());
    std::uint32_t word = 0;
    tline->read(word_addr, &word, 4);
    _tableCache.fill(word_addr, word);
    hp.close();
    co_await Delay{_chip.eq(), t};
    sim::HostProfiler::Scope hp3(sim::HostProfiler::Phase::RegionTable);
    *out_swcc = cohesion::fine_table::bitFromWord(word, map, base);
    _chip.rec(FR::Ev::TableRead, FR::compBank(_id), base, txn,
              *out_swcc ? 1 : 0, FR::tableFromMem);
    TRACE(_chip.tracer(), sim::Category::Transition, "bank", _id,
          ": lookup 0x", std::hex, base, std::dec, " -> ",
          *out_swcc ? "SWcc" : "HWcc");
}

sim::CoTask
L3Bank::handleAtomic(Request req, sim::lat::Cursor *lat)
{
    const mem::Addr base = mem::lineBase(req.addr);
    const std::uint32_t key = mem::lineNumber(base);
    co_await _locks.acquire(key);
    Held held(_locks, key);

    sim::EventQueue &eq = _chip.eq();
    if (lat)
        lat->mark(sim::lat::Stage::BankLock, eq.now());

    if (_chip.config().mode != CoherenceMode::SWccOnly) {
        // Cached HWcc copies must be recalled (or, for directoryless
        // backends, broadcast-invalidated) so the RMW is globally
        // ordered.
        co_await _backend->recallForAtomic(base, req.msgId, key, lat);
    }

    sim::Tick dram = 0;
    auto [line, t] = l3AccessPrep(base, true, eq.now(), &dram);
    std::uint32_t old =
        applyAtomic(*line, req.addr, req.op, req.operand, req.operand2);
    _atomics.inc();
    co_await Delay{eq, t};
    if (lat)
        lat->markAccess(eq.now(), dram);

    Response resp;
    resp.type = ReqType::Atomic;
    resp.core = req.core;
    resp.addr = req.addr;
    resp.atomicOld = old;
    // In SWcc-only machines the atomic unit is the software-managed
    // ordering point; blame its cycles to the SWcc cut.
    if (_chip.config().mode == CoherenceMode::SWccOnly)
        resp.latMode = sim::lat::Mode::Swcc;
    respond(req, resp, 1, lat);
}

sim::CoTask
L3Bank::handleWriteback(Request req, sim::lat::Cursor *lat)
{
    const mem::Addr base = mem::lineBase(req.addr);
    const std::uint32_t key = mem::lineNumber(base);
    co_await _locks.acquire(key);
    Held held(_locks, key);
    if (lat)
        lat->mark(sim::lat::Stage::BankLock, _chip.eq().now());

    switch (req.type) {
      case ReqType::WriteRelease: {
          // Fire-and-forget (no ack message, nothing retires at the
          // cluster), so the cursor is dropped with the frame.
          co_await mergeIntoL3(base, req.data, req.mask);
          if (_chip.config().mode != CoherenceMode::SWccOnly)
              _backend->writeRelease(req);
          break;
      }
      case ReqType::ReadRelease: {
          _backend->readRelease(req);
          break;
      }
      case ReqType::Eviction:
      case ReqType::Flush: {
          co_await mergeIntoL3(base, req.data, req.mask);
          if (lat)
              lat->mark(sim::lat::Stage::Service, _chip.eq().now());
          Response resp;
          resp.type = req.type;
          resp.core = req.core;
          resp.addr = base;
          // Flushes and dirty evictions are the SWcc writeback
          // machinery (HWcc writebacks are unacked WriteReleases).
          resp.latMode = sim::lat::Mode::Swcc;
          respond(req, resp, 0, lat);
          break;
      }
      default:
        panic("unexpected writeback type ", reqTypeName(req.type));
    }
}

sim::CoTask
L3Bank::swccToHwcc(mem::Addr base, std::uint32_t txn,
                   sim::lat::Cursor *lat)
{
    sim::EventQueue &eq = _chip.eq();
    const auto step = [&](FR::Step s, std::uint32_t b = 0) {
        _chip.rec(FR::Ev::TransStep, FR::compBank(_id), base, txn,
                  static_cast<std::uint8_t>(s), b);
    };

    // Round 1: broadcast clean request to every cluster (Section 3.6).
    std::vector<unsigned> all;
    for (unsigned c = 0; c < _chip.numClusters(); ++c)
        all.push_back(c);
    step(FR::Step::Broadcast, static_cast<std::uint32_t>(all.size()));
    std::vector<std::pair<unsigned, ProbeResult>> results;
    AckGate gate;
    gate.expect(all.size());
    sendProbes(all, ProbeType::CleanQuery, base, txn, &results, &gate);
    co_await gate.wait();
    if (lat)
        lat->mark(sim::lat::Stage::Probe, eq.now());

    std::vector<unsigned> clean_sharers;
    std::vector<unsigned> dirty_holders;
    mem::WordMask seen_dirty = 0;
    bool overlap = false;
    for (const auto &[cl, r] : results) {
        if (!r.found)
            continue;
        if (r.dirty) {
            dirty_holders.push_back(cl);
            if (seen_dirty & r.dirtyMask)
                overlap = true;
            seen_dirty |= r.dirtyMask;
        } else {
            clean_sharers.push_back(cl);
        }
    }

    // Rounds 2+ depend on the protocol: the backend absorbs the
    // classified holders (cases 1b-5b) into its own tracking.
    co_await _backend->adoptLine(base, txn, clean_sharers, dirty_holders,
                                 overlap, lat);
    (void)eq;
}

sim::CoTask
L3Bank::handleTableUpdate(Request req, sim::lat::Cursor *lat)
{
    sim::EventQueue &eq = _chip.eq();
    const mem::AddressMap &map = _chip.map();
    panic_if(req.op != AtomicOp::Or && req.op != AtomicOp::And,
             "fine-table updates must use atom.or/atom.and");

    const mem::Addr word_addr = req.addr & ~mem::Addr(3);
    const mem::Addr tbl_base = mem::lineBase(word_addr);
    const std::uint32_t tbl_key = mem::lineNumber(tbl_base);
    co_await _locks.acquire(tbl_key);
    Held held(_locks, tbl_key);
    if (lat)
        lat->mark(sim::lat::Stage::BankLock, eq.now());

    // Read the current word to find which bits change.
    sim::HostProfiler::Scope hp(sim::HostProfiler::Phase::RegionTable);
    auto [tline, t0] = l3AccessPrep(tbl_base, true, eq.now());
    std::uint32_t old = 0;
    tline->read(word_addr, &old, 4);
    hp.close();
    co_await Delay{eq, t0};
    // Table reads/commits are domain machinery: blame them to Dir.
    if (lat)
        lat->mark(sim::lat::Stage::Dir, eq.now());

    std::uint32_t next =
        req.op == AtomicOp::Or ? (old | req.operand) : (old & req.operand);
    std::uint32_t changed = old ^ next;
    const mem::Addr block_base = map.coveredBlockBase(word_addr);

    // Serialize transitions line by line (Section 3.6: "the directory
    // serializes the requests line-by-line").
    for (unsigned bit = 0; bit < 32 && changed; ++bit) {
        if (!((changed >> bit) & 1u))
            continue;
        mem::Addr lb = block_base + bit * mem::lineBytes;
        std::uint32_t lkey = mem::lineNumber(lb);
        bool self = (lkey == tbl_key);
        if (!self) {
            co_await _locks.acquire(lkey);
            if (lat)
                lat->mark(sim::lat::Stage::BankLock, eq.now());
        }

        bool to_swcc = (next >> bit) & 1u;
        TRACE(_chip.tracer(), sim::Category::Transition, "bank", _id,
              ": line 0x", std::hex, lb, std::dec, " -> ",
              to_swcc ? "SWcc" : "HWcc");
        if (sim::TraceJsonWriter *w = _chip.tracer().json()) {
            w->instant(eq.now(), sim::TraceJsonWriter::bankTid(_id),
                       sim::cat("line 0x", std::hex, lb,
                                to_swcc ? " ->SWcc" : " ->HWcc"),
                       "transition");
        }
        _chip.rec(FR::Ev::TransBegin, FR::compBank(_id), lb, req.msgId,
                  to_swcc ? 1 : 0, bit);
        if (to_swcc) {
            // HWcc => SWcc (Fig. 7a): flush cached copies and any
            // sharer-tracking state.
            co_await _backend->flushLine(lb, req.msgId, lkey, lat);
        } else {
            // SWcc => HWcc (Fig. 7b): broadcast clean request.
            co_await swccToHwcc(lb, req.msgId, lat);
        }

        // Commit this line's bit under its lock. The table line may
        // have been evicted from the L3 during the probes; re-prep.
        sim::HostProfiler::Scope hpc(
            sim::HostProfiler::Phase::RegionTable);
        auto [tl, tt] = l3AccessPrep(tbl_base, true, eq.now());
        std::uint32_t cur = 0;
        tl->read(word_addr, &cur, 4);
        cur = to_swcc ? (cur | (1u << bit)) : (cur & ~(1u << bit));
        tl->write(word_addr, &cur, 4);
        _tableCache.update(word_addr, cur);
        _transitions.inc();
        _chip.rec(FR::Ev::TableUpdate, FR::compBank(_id), lb, req.msgId,
                  to_swcc ? 1 : 0, cur);
        _chip.rec(FR::Ev::TransEnd, FR::compBank(_id), lb, req.msgId,
                  to_swcc ? 1 : 0);
        hpc.close();
        co_await Delay{eq, tt};
        if (lat)
            lat->mark(sim::lat::Stage::Dir, eq.now());

        if (!self)
            _locks.release(lkey);
    }

    // The issuing core blocks until the transition completes
    // (Section 3.6) — the ack carries the prior word value.
    Response resp;
    resp.type = ReqType::Atomic;
    resp.core = req.core;
    resp.addr = req.addr;
    resp.atomicOld = old;
    resp.latMode = sim::lat::Mode::Transition;
    respond(req, resp, 1, lat);
}

void
L3Bank::debugWedgeLine(mem::Addr base)
{
    // Called from test harness context, outside any shard window; the
    // wedge transaction must park on this bank's home queue.
    sim::ShardGuard g(_chip.shardOfBank(_id));
    pruneTransactions();
    adoptTransaction(wedge(mem::lineBase(base))).start();
}

sim::CoTask
L3Bank::wedge(mem::Addr base)
{
    const std::uint32_t key = mem::lineNumber(base);
    const std::uint64_t txn = ++_txnSeq;
    _txns.emplace(txn, TxnRecord{txn, ReqType::Read, base, 0,
                                 _chip.eq().now()});
    co_await _locks.acquire(key);
    Held held(_locks, key);
    // Park far beyond any cycle limit while holding the line lock:
    // every later request for this line queues behind it forever.
    co_await Delay{_chip.eq(), _chip.eq().now() + (sim::Tick{1} << 62)};
}

} // namespace arch
