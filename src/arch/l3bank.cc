#include "arch/l3bank.hh"

#include <algorithm>
#include <bit>

#include "arch/chip.hh"
#include "cohesion/region_table.hh"
#include "sim/host_profiler.hh"
#include "sim/logging.hh"
#include "sim/shard.hh"
#include "sim/trace.hh"
#include "sim/trace_json.hh"

namespace arch {

namespace {

using FR = sim::FlightRecorder;

/** RAII line-lock holder (release on scope exit, move-only). */
class [[nodiscard]] Held
{
  public:
    Held(LineLockTable &t, std::uint32_t line) : _table(&t), _line(line) {}

    Held(Held &&o) noexcept
        : _table(std::exchange(o._table, nullptr)), _line(o._line)
    {}

    Held(const Held &) = delete;
    Held &operator=(const Held &) = delete;
    Held &operator=(Held &&) = delete;

    ~Held()
    {
        if (_table)
            _table->release(_line);
    }

  private:
    LineLockTable *_table;
    std::uint32_t _line;
};

} // namespace

L3Bank::L3Bank(Chip &chip, unsigned id)
    : _chip(chip), _id(id),
      _l3(sim::cat("l3bank", id), chip.config().l3BankBytes,
          chip.config().l3Assoc),
      _dir(chip.config().directory, chip.config().numClusters),
      _tableCache(chip.config().tableCacheEntries), _locks(chip.eq())
{
    _tableCache.setFaultInjector(&chip.faults(), id);
    _txns.reserve(64);
}

void
L3Bank::pruneTransactions()
{
    for (auto it = _running.begin(); it != _running.end();) {
        if (it->done()) {
            it->rethrow();
            auto done_it = it++;
            // Recycle the list node instead of freeing it: the frame
            // slot moves to the spare list and the next transaction
            // reuses it, so steady-state request arrival allocates no
            // list nodes (the coroutine frame itself is unavoidable).
            *done_it = sim::CoTask();
            _spare.splice(_spare.begin(), _running, done_it);
        } else {
            ++it;
        }
    }
    // Bound the spare pool: a fan-in burst can briefly strand many
    // frames; keep a generous working set and return the rest.
    while (_spare.size() > 256)
        _spare.pop_back();
}

sim::CoTask &
L3Bank::adoptTransaction(sim::CoTask &&task)
{
    if (_spare.empty()) {
        _running.push_back(std::move(task));
    } else {
        _running.splice(_running.end(), _spare, _spare.begin());
        _running.back() = std::move(task);
    }
    return _running.back();
}

void
L3Bank::receiveRequest(const Request &req)
{
    // Covers the transaction coroutine's first segment (through
    // .start() up to its first suspension); later segments re-open
    // the phase from the awaitable resume hooks.
    sim::HostProfiler::Scope hp(sim::HostProfiler::Phase::BankMsg);
    TRACE(_chip.tracer(), sim::Category::Protocol, "bank", _id, ": ",
          reqTypeName(req.type), " 0x", std::hex, req.addr, std::dec,
          " from cluster ", req.cluster);
    _chip.sampleReqLatency(msgClassFor(req.type),
                           _chip.eq().now() - req.sendTick);
    _chip.rec(FR::Ev::MsgRecv, FR::compBank(_id), mem::lineBase(req.addr),
              req.msgId, static_cast<std::uint8_t>(req.type), req.cluster);
    std::uint64_t trace_id = 0;
    if (sim::TraceJsonWriter *w = _chip.tracer().json()) {
        trace_id = _chip.nextTraceId();
        w->asyncBegin(trace_id, _chip.eq().now(),
                      sim::cat("bank", _id, ":", reqTypeName(req.type)),
                      "txn");
    }
    pruneTransactions();
    adoptTransaction(transaction(req, trace_id)).start();
}

sim::CoTask
L3Bank::transaction(Request req, std::uint64_t trace_id)
{
    const std::uint64_t txn = ++_txnSeq;
    _txns.emplace(txn, TxnRecord{txn, req.type, mem::lineBase(req.addr),
                                 req.cluster, _chip.eq().now()});
    // TxnBegin binds the bank-local txn sequence to the cluster's
    // msgId so the decoder can stitch the two id spaces together.
    _chip.rec(FR::Ev::TxnBegin, FR::compBank(_id), mem::lineBase(req.addr),
              static_cast<std::uint32_t>(txn), 0, req.msgId);
    if (req.type == ReqType::Atomic && _chip.cohesionEnabled() &&
        _chip.map().inTable(req.addr)) {
        co_await handleTableUpdate(req);
    } else {
        switch (req.type) {
          case ReqType::Read:
          case ReqType::Instr:
            co_await handleRead(req);
            break;
          case ReqType::Write:
            co_await handleWrite(req);
            break;
          case ReqType::Atomic:
            co_await handleAtomic(req);
            break;
          default:
            co_await handleWriteback(req);
            break;
        }
    }
    _txns.erase(txn);
    _txnsCompleted.inc();
    _chip.rec(FR::Ev::TxnEnd, FR::compBank(_id), mem::lineBase(req.addr),
              static_cast<std::uint32_t>(txn), 0, req.msgId);
    if (trace_id) {
        if (sim::TraceJsonWriter *w = _chip.tracer().json())
            w->asyncEnd(trace_id, _chip.eq().now(),
                        sim::cat("bank", _id, ":",
                                 reqTypeName(req.type)),
                        "txn");
    }
}

void
L3Bank::respond(const Request &req, Response resp, unsigned data_words)
{
    resp.msgId = req.msgId; // echo for cluster-side dedup
    _chip.rec(FR::Ev::RespSend, FR::compBank(_id), mem::lineBase(resp.addr),
              resp.msgId, static_cast<std::uint8_t>(resp.type),
              (resp.incoherent ? FR::respIncoherent : 0u) |
                  (resp.grant == cache::CohState::Exclusive ||
                           resp.grant == cache::CohState::Modified
                       ? FR::respGrant
                       : 0u));
    _chip.sendResponse(_id, req.cluster, resp, data_words);
}

void
L3Bank::registerStats(sim::StatRegistry &reg,
                      const std::string &prefix) const
{
    reg.addCounter(prefix + ".l3.hits", _l3Hits);
    reg.addCounter(prefix + ".l3.misses", _l3Misses);
    reg.addCounter(prefix + ".transitions", _transitions);
    reg.addCounter(prefix + ".table_lookups", _tableLookups);
    reg.addCounter(prefix + ".dir.evictions", _dirEvictions);
    reg.addCounter(prefix + ".atomics", _atomics);
    reg.addCounter(prefix + ".merge_conflicts", _mergeConflicts);
    reg.addCounter(prefix + ".txns_completed", _txnsCompleted);
    reg.addScalar(prefix + ".dir.entries", [this]() {
        return static_cast<double>(_dir.size());
    });
    reg.addScalar(prefix + ".dir.peak", [this]() {
        return static_cast<double>(_dir.peakEntries());
    });
    reg.addScalar(prefix + ".dir.insertions", [this]() {
        return static_cast<double>(_dir.insertions());
    });
}

void
L3Bank::sendProbes(const std::vector<unsigned> &targets, ProbeType type,
                   mem::Addr addr, std::uint32_t txn,
                   std::vector<std::pair<unsigned, ProbeResult>> *results,
                   AckGate *gate)
{
    TRACE(_chip.tracer(), sim::Category::Protocol, "bank", _id, ": ",
          probeTypeName(type), " 0x", std::hex, addr, std::dec, " -> ",
          targets.size(), " cluster(s)");
    for (unsigned cl : targets) {
        _chip.sendProbe(_id, cl, type, addr, txn,
                        [results, gate](unsigned c, const ProbeResult &r) {
                            results->emplace_back(c, r);
                            gate->signal();
                        });
    }
}

std::pair<cache::Line *, sim::Tick>
L3Bank::l3AccessPrep(mem::Addr base, bool write, sim::Tick start)
{
    (void)write;
    base = mem::lineBase(base);
    start = std::max(start, _l3PortFree);
    _l3PortFree = start + 1;
    sim::Tick ready = start + _chip.config().l3Latency;

    if (cache::Line *line = _l3.probe(base)) {
        _l3.touch(*line);
        _l3Hits.inc();
        return {line, ready};
    }
    _l3Misses.inc();

    cache::Line &v = _l3.victim(base);
    if (v.valid) {
        if (v.dirty()) {
            // Victim writeback uses the channel but is off the
            // critical path of this access.
            _chip.store().write(v.base, v.data.data(), mem::lineBytes);
            _chip.dram().access(v.base, true, start);
        }
        v.reset();
    }
    _l3.claim(v, base);
    _chip.store().read(base, v.data.data(), mem::lineBytes);
    v.validMask = mem::fullMask;
    v.dirtyMask = 0;

    sim::Tick fill_done = _chip.dram().access(base, false, ready);
    return {&v, fill_done + 1};
}

sim::CoTask
L3Bank::mergeIntoL3(mem::Addr base,
                    const std::array<std::uint8_t, mem::lineBytes> &data,
                    mem::WordMask mask)
{
    auto [line, t] = l3AccessPrep(base, true, _chip.eq().now());
    line->merge(data.data(), mask);
    co_await Delay{_chip.eq(), t};
}

std::uint32_t
L3Bank::applyAtomic(cache::Line &line, mem::Addr addr, AtomicOp op,
                    std::uint32_t operand, std::uint32_t operand2)
{
    std::uint32_t old = 0;
    line.read(addr, &old, 4);
    std::uint32_t next = old;
    switch (op) {
      case AtomicOp::AddU32:
        next = old + operand;
        break;
      case AtomicOp::AddF32: {
          float f = std::bit_cast<float>(old) + std::bit_cast<float>(operand);
          next = std::bit_cast<std::uint32_t>(f);
          break;
      }
      case AtomicOp::MinF32: {
          float a = std::bit_cast<float>(old);
          float b = std::bit_cast<float>(operand);
          next = std::bit_cast<std::uint32_t>(std::min(a, b));
          break;
      }
      case AtomicOp::Or:
        next = old | operand;
        break;
      case AtomicOp::And:
        next = old & operand;
        break;
      case AtomicOp::Xchg:
        next = operand;
        break;
      case AtomicOp::Cas:
        next = (old == operand2) ? operand : old;
        break;
    }
    line.write(addr, &next, 4);
    return old;
}

sim::CoTask
L3Bank::recallEntry(mem::Addr base, std::uint32_t txn, bool *incomplete)
{
    *incomplete = false;
    coherence::DirEntry *e = _dir.find(base);
    if (!e || e->sharers.empty())
        co_return;

    bool modified = e->state == cache::CohState::Modified ||
                    e->state == cache::CohState::Exclusive;
    std::vector<unsigned> targets = e->sharers.probeTargets();
    ProbeType pt = modified ? ProbeType::WritebackInvalidate
                            : ProbeType::Invalidate;
    std::vector<std::pair<unsigned, ProbeResult>> results;
    AckGate gate;
    gate.expect(targets.size());
    sendProbes(targets, pt, base, txn, &results, &gate);
    co_await gate.wait();

    bool any_found = false;
    for (const auto &[cl, r] : results) {
        any_found |= r.found;
        if (r.dirty)
            co_await mergeIntoL3(base, r.data, r.dirtyMask);
    }
    if (modified && !any_found) {
        // The owner evicted concurrently: its WrRel carries the dirty
        // data and is in flight to this bank. The caller must let it
        // acquire the line and merge before retrying.
        *incomplete = true;
    }
}

sim::CoTask
L3Bank::recallEntryRetry(mem::Addr base, std::uint32_t txn,
                         std::uint32_t lock_key)
{
    Backoff bo;
    while (true) {
        bool incomplete = false;
        co_await recallEntry(base, txn, &incomplete);
        if (!incomplete)
            co_return;
        _locks.release(lock_key);
        co_await Delay{_chip.eq(), _chip.eq().now() + bo.next()};
        co_await _locks.acquire(lock_key);
    }
}

sim::CoTask
L3Bank::makeRoom(mem::Addr base, std::uint32_t txn)
{
    base = mem::lineBase(base);
    Backoff bo;
    while (_dir.needsVictim(base)) {
        coherence::DirEntry *v = _dir.victimExcluding(
            base, [this](mem::Addr a) {
                return _locks.busy(mem::lineNumber(a));
            });
        if (!v) {
            // Every candidate is mid-transaction; retry with backoff.
            co_await Delay{_chip.eq(), _chip.eq().now() + bo.next()};
            continue;
        }
        mem::Addr vbase = v->base;
        co_await _locks.acquire(mem::lineNumber(vbase));
        Held held(_locks, mem::lineNumber(vbase));
        // Entries evicted from the directory have all sharers
        // invalidated (Section 3.2).
        co_await recallEntryRetry(vbase, txn, mem::lineNumber(vbase));
        if (_dir.find(vbase)) {
            _chip.rec(FR::Ev::DirErase, FR::compBank(_id), vbase, txn);
            _dir.erase(vbase);
        }
        _dirEvictions.inc();
    }
}

sim::CoTask
L3Bank::lookupDomain(mem::Addr base, std::uint32_t txn, bool *out_swcc)
{
    // Host-profiler scopes in this coroutine are closed explicitly
    // before every co_await: a scope left open across a suspension
    // would time simulated waiting, not host work.
    sim::HostProfiler::Scope hp(sim::HostProfiler::Phase::RegionTable);
    // The coarse-grain table is checked in parallel with the directory
    // and adds no latency.
    if (_chip.coarseTable().contains(base)) {
        *out_swcc = true;
        co_return;
    }
    // Fine-grain lookup: one extra L3 data access for the table word
    // (Section 3.4: "a minimum of one cycle of delay ... more under
    // contention at the L3 or if an L3 cache miss for the table
    // occurs").
    _tableLookups.inc();
    const mem::AddressMap &map = _chip.map();
    mem::Addr word_addr = map.tableWordAddr(base);

    // Optional on-die table cache: a hit avoids the L3 access
    // entirely (one cycle, like the coarse table).
    if (auto cached = _tableCache.lookup(word_addr)) {
        hp.close();
        co_await Delay{_chip.eq(), _chip.eq().now() + 1};
        sim::HostProfiler::Scope hp2(
            sim::HostProfiler::Phase::RegionTable);
        *out_swcc = cohesion::fine_table::bitFromWord(*cached, map, base);
        _chip.rec(FR::Ev::TableRead, FR::compBank(_id), base, txn,
                  *out_swcc ? 1 : 0, FR::tableFromCache);
        co_return;
    }

    auto [tline, t] = l3AccessPrep(word_addr, false, _chip.eq().now());
    std::uint32_t word = 0;
    tline->read(word_addr, &word, 4);
    _tableCache.fill(word_addr, word);
    hp.close();
    co_await Delay{_chip.eq(), t};
    sim::HostProfiler::Scope hp3(sim::HostProfiler::Phase::RegionTable);
    *out_swcc = cohesion::fine_table::bitFromWord(word, map, base);
    _chip.rec(FR::Ev::TableRead, FR::compBank(_id), base, txn,
              *out_swcc ? 1 : 0, FR::tableFromMem);
    TRACE(_chip.tracer(), sim::Category::Transition, "bank", _id,
          ": lookup 0x", std::hex, base, std::dec, " -> ",
          *out_swcc ? "SWcc" : "HWcc");
}

sim::CoTask
L3Bank::handleRead(Request req)
{
    const mem::Addr base = mem::lineBase(req.addr);
    const std::uint32_t key = mem::lineNumber(base);
    co_await _locks.acquire(key);
    Held held(_locks, key);

    sim::EventQueue &eq = _chip.eq();
    const CoherenceMode mode = _chip.config().mode;

    // Directory lookup (one cycle through the directory port).
    sim::Tick dstart = std::max(eq.now(), _dirPortFree);
    _dirPortFree = dstart + 1;
    co_await Delay{eq, dstart + 1};

    coherence::DirEntry *e =
        mode == CoherenceMode::SWccOnly ? nullptr : _dir.find(base);

    Response resp;
    resp.type = req.type;
    resp.core = req.core;
    resp.addr = base;

    Backoff bo;
    while (e && (e->state == cache::CohState::Modified ||
                 e->state == cache::CohState::Exclusive)) {
        if (e->sharers.contains(req.cluster) &&
            e->sharers.count() == 1 && !e->sharers.broadcast()) {
            // The owner itself is filling invalid words of a
            // partially-valid line (post-MakeOwner): serve from
            // the L3 and keep its exclusive state.
            auto [line, t] = l3AccessPrep(base, false, eq.now());
            resp.grant = e->state;
            resp.data = line->data;
            co_await Delay{eq, t};
            respond(req, resp, mem::wordsPerLine);
            co_return;
        }
        // Downgrade the owner; its dirty data moves to the L3.
        std::vector<unsigned> targets = e->sharers.probeTargets();
        std::vector<std::pair<unsigned, ProbeResult>> results;
        AckGate gate;
        gate.expect(targets.size());
        sendProbes(targets, ProbeType::Downgrade, base, req.msgId, &results,
                   &gate);
        co_await gate.wait();
        bool any_found = false;
        for (const auto &[cl, r] : results) {
            any_found |= r.found;
            if (r.dirty)
                co_await mergeIntoL3(base, r.data, r.dirtyMask);
        }
        if (!any_found) {
            // The owner evicted concurrently; wait for its in-flight
            // WrRel to land (it needs the line lock) and re-evaluate.
            _locks.release(key);
            co_await Delay{eq, eq.now() + bo.next()};
            co_await _locks.acquire(key);
            e = _dir.find(base);
            continue;
        }
        e = _dir.find(base);
        panic_if(!e, "directory entry vanished during downgrade");
        e->state = cache::CohState::Shared;
        _chip.rec(FR::Ev::DirState, FR::compBank(_id), base, req.msgId,
                  static_cast<std::uint8_t>(e->state), e->sharers.count());
        break;
    }
    if (e) {
        e->sharers.add(req.cluster);
        _chip.rec(FR::Ev::DirState, FR::compBank(_id), base, req.msgId,
                  static_cast<std::uint8_t>(e->state), e->sharers.count());
        auto [line, t] = l3AccessPrep(base, false, eq.now());
        resp.grant = cache::CohState::Shared;
        resp.data = line->data;
        co_await Delay{eq, t};
        respond(req, resp, mem::wordsPerLine);
        co_return;
    }

    // Directory miss: decide the coherence domain.
    bool swcc = false;
    if (mode == CoherenceMode::SWccOnly) {
        swcc = true;
    } else if (mode == CoherenceMode::Cohesion) {
        co_await lookupDomain(base, req.msgId, &swcc);
    }

    if (swcc) {
        auto [line, t] = l3AccessPrep(base, false, eq.now());
        resp.incoherent = true;
        resp.data = line->data;
        co_await Delay{eq, t};
        respond(req, resp, mem::wordsPerLine);
        co_return;
    }

    co_await makeRoom(base, req.msgId);
    coherence::DirEntry &ne = _dir.insert(base);
    // MESI extension: a sole reader takes Exclusive and can later
    // upgrade to Modified silently; MSI (the paper) grants Shared.
    ne.state = _chip.config().useMesi ? cache::CohState::Exclusive
                                      : cache::CohState::Shared;
    ne.sharers.add(req.cluster);
    _chip.rec(FR::Ev::DirInsert, FR::compBank(_id), base, req.msgId,
              static_cast<std::uint8_t>(ne.state), req.cluster);
    auto [line, t] = l3AccessPrep(base, false, eq.now());
    resp.grant = ne.state;
    resp.data = line->data;
    co_await Delay{eq, t};
    respond(req, resp, mem::wordsPerLine);
}

sim::CoTask
L3Bank::handleWrite(Request req)
{
    const mem::Addr base = mem::lineBase(req.addr);
    const std::uint32_t key = mem::lineNumber(base);
    co_await _locks.acquire(key);
    Held held(_locks, key);

    sim::EventQueue &eq = _chip.eq();
    const CoherenceMode mode = _chip.config().mode;

    sim::Tick dstart = std::max(eq.now(), _dirPortFree);
    _dirPortFree = dstart + 1;
    co_await Delay{eq, dstart + 1};

    coherence::DirEntry *e =
        mode == CoherenceMode::SWccOnly ? nullptr : _dir.find(base);

    Response resp;
    resp.type = ReqType::Write;
    resp.core = req.core;
    resp.addr = base;

    if (!e) {
        bool swcc = false;
        if (mode == CoherenceMode::SWccOnly) {
            swcc = true;
        } else if (mode == CoherenceMode::Cohesion) {
            co_await lookupDomain(base, req.msgId, &swcc);
        }
        if (swcc) {
            // SWcc fill: the cluster allocates with the incoherent bit.
            auto [line, t] = l3AccessPrep(base, false, eq.now());
            resp.incoherent = true;
            resp.data = line->data;
            co_await Delay{eq, t};
            respond(req, resp, mem::wordsPerLine);
            co_return;
        }
        co_await makeRoom(base, req.msgId);
        coherence::DirEntry &ne = _dir.insert(base);
        ne.state = cache::CohState::Modified;
        ne.sharers.add(req.cluster);
        _chip.rec(FR::Ev::DirInsert, FR::compBank(_id), base, req.msgId,
                  static_cast<std::uint8_t>(ne.state), req.cluster);
        auto [line, t] = l3AccessPrep(base, false, eq.now());
        resp.grant = cache::CohState::Modified;
        resp.data = line->data;
        co_await Delay{eq, t};
        respond(req, resp, mem::wordsPerLine);
        co_return;
    }

    // Invalidate every other holder; collect a dirty owner's data.
    Backoff bo;
    while (e) {
        std::vector<unsigned> targets;
        for (unsigned cl : e->sharers.probeTargets()) {
            if (cl != req.cluster)
                targets.push_back(cl);
        }
        if (targets.empty())
            break;
        bool expect_dirty = e->state == cache::CohState::Modified ||
                            e->state == cache::CohState::Exclusive;
        ProbeType pt = expect_dirty ? ProbeType::WritebackInvalidate
                                    : ProbeType::Invalidate;
        std::vector<std::pair<unsigned, ProbeResult>> results;
        AckGate gate;
        gate.expect(targets.size());
        sendProbes(targets, pt, base, req.msgId, &results, &gate);
        co_await gate.wait();
        bool any_found = false;
        for (const auto &[cl, r] : results) {
            any_found |= r.found;
            if (r.dirty)
                co_await mergeIntoL3(base, r.data, r.dirtyMask);
        }
        if (expect_dirty && !any_found) {
            // Owner evicted concurrently: wait for its WrRel.
            _locks.release(key);
            co_await Delay{eq, eq.now() + bo.next()};
            co_await _locks.acquire(key);
            e = _dir.find(base);
            continue;
        }
        e = _dir.find(base);
        panic_if(!e, "directory entry vanished during invalidation");
        break;
    }
    if (!e) {
        // The entry was erased while we waited for an in-flight WrRel.
        // A concurrent HWcc=>SWcc transition may also have changed the
        // line's domain in that window, so the domain decision must be
        // redone — blindly re-inserting would resurrect an HWcc entry
        // for a now-SWcc line.
        bool swcc = false;
        if (mode == CoherenceMode::Cohesion)
            co_await lookupDomain(base, req.msgId, &swcc);
        if (swcc) {
            auto [line, t] = l3AccessPrep(base, false, eq.now());
            resp.incoherent = true;
            resp.data = line->data;
            co_await Delay{eq, t};
            respond(req, resp, mem::wordsPerLine);
            co_return;
        }
        co_await makeRoom(base, req.msgId);
        e = &_dir.insert(base);
        _chip.rec(FR::Ev::DirInsert, FR::compBank(_id), base, req.msgId,
                  static_cast<std::uint8_t>(cache::CohState::Modified),
                  req.cluster);
    }
    e->sharers.clear();
    e->sharers.add(req.cluster);
    e->state = cache::CohState::Modified;
    _chip.rec(FR::Ev::DirState, FR::compBank(_id), base, req.msgId,
              static_cast<std::uint8_t>(e->state), e->sharers.count());
    auto [line, t] = l3AccessPrep(base, false, eq.now());
    resp.grant = cache::CohState::Modified;
    resp.data = line->data;
    co_await Delay{eq, t};
    respond(req, resp, mem::wordsPerLine);
}

sim::CoTask
L3Bank::handleAtomic(Request req)
{
    const mem::Addr base = mem::lineBase(req.addr);
    const std::uint32_t key = mem::lineNumber(base);
    co_await _locks.acquire(key);
    Held held(_locks, key);

    sim::EventQueue &eq = _chip.eq();

    if (_chip.config().mode != CoherenceMode::SWccOnly) {
        sim::Tick dstart = std::max(eq.now(), _dirPortFree);
        _dirPortFree = dstart + 1;
        co_await Delay{eq, dstart + 1};
        if (_dir.find(base)) {
            // Cached HWcc copies must be recalled so the RMW is
            // globally ordered.
            co_await recallEntryRetry(base, req.msgId, key);
            if (_dir.find(base)) {
                _chip.rec(FR::Ev::DirErase, FR::compBank(_id), base,
                          req.msgId);
                _dir.erase(base);
            }
        }
    }

    auto [line, t] = l3AccessPrep(base, true, eq.now());
    std::uint32_t old =
        applyAtomic(*line, req.addr, req.op, req.operand, req.operand2);
    _atomics.inc();
    co_await Delay{eq, t};

    Response resp;
    resp.type = ReqType::Atomic;
    resp.core = req.core;
    resp.addr = req.addr;
    resp.atomicOld = old;
    respond(req, resp, 1);
}

sim::CoTask
L3Bank::handleWriteback(Request req)
{
    const mem::Addr base = mem::lineBase(req.addr);
    const std::uint32_t key = mem::lineNumber(base);
    co_await _locks.acquire(key);
    Held held(_locks, key);

    switch (req.type) {
      case ReqType::WriteRelease: {
          co_await mergeIntoL3(base, req.data, req.mask);
          if (_chip.config().mode != CoherenceMode::SWccOnly) {
              if (coherence::DirEntry *e = _dir.find(base)) {
                  e->sharers.remove(req.cluster);
                  if (e->sharers.empty()) {
                      _chip.rec(FR::Ev::DirErase, FR::compBank(_id), base,
                                req.msgId);
                      _dir.erase(base);
                  }
              }
          }
          break;
      }
      case ReqType::ReadRelease: {
          if (coherence::DirEntry *e = _dir.find(base)) {
              e->sharers.remove(req.cluster);
              if (e->sharers.empty()) {
                  _chip.rec(FR::Ev::DirErase, FR::compBank(_id), base,
                            req.msgId);
                  _dir.erase(base);
              }
          }
          break;
      }
      case ReqType::Eviction:
      case ReqType::Flush: {
          co_await mergeIntoL3(base, req.data, req.mask);
          Response resp;
          resp.type = req.type;
          resp.core = req.core;
          resp.addr = base;
          respond(req, resp, 0);
          break;
      }
      default:
        panic("unexpected writeback type ", reqTypeName(req.type));
    }
}

sim::CoTask
L3Bank::swccToHwcc(mem::Addr base, std::uint32_t txn)
{
    sim::EventQueue &eq = _chip.eq();
    const auto step = [&](FR::Step s, std::uint32_t b = 0) {
        _chip.rec(FR::Ev::TransStep, FR::compBank(_id), base, txn,
                  static_cast<std::uint8_t>(s), b);
    };

    // Round 1: broadcast clean request to every cluster (Section 3.6).
    std::vector<unsigned> all;
    for (unsigned c = 0; c < _chip.numClusters(); ++c)
        all.push_back(c);
    step(FR::Step::Broadcast, static_cast<std::uint32_t>(all.size()));
    std::vector<std::pair<unsigned, ProbeResult>> results;
    AckGate gate;
    gate.expect(all.size());
    sendProbes(all, ProbeType::CleanQuery, base, txn, &results, &gate);
    co_await gate.wait();

    std::vector<unsigned> clean_sharers;
    std::vector<unsigned> dirty_holders;
    mem::WordMask seen_dirty = 0;
    bool overlap = false;
    for (const auto &[cl, r] : results) {
        if (!r.found)
            continue;
        if (r.dirty) {
            dirty_holders.push_back(cl);
            if (seen_dirty & r.dirtyMask)
                overlap = true;
            seen_dirty |= r.dirtyMask;
        } else {
            clean_sharers.push_back(cl);
        }
    }

    if (dirty_holders.empty()) {
        // Cases 1b/2b: clean copies (if any) joined HWcc as sharers
        // during the query; allocate the matching entry.
        if (!clean_sharers.empty()) {
            co_await makeRoom(base, txn);
            coherence::DirEntry &e = _dir.insert(base);
            e.state = cache::CohState::Shared;
            for (unsigned cl : clean_sharers) {
                e.sharers.add(cl);
                step(FR::Step::CleanSharer, cl);
            }
            _chip.rec(FR::Ev::DirInsert, FR::compBank(_id), base, txn,
                      static_cast<std::uint8_t>(e.state),
                      static_cast<std::uint32_t>(clean_sharers.size()));
        }
        co_return;
    }

    if (dirty_holders.size() == 1 && clean_sharers.empty()) {
        // Case 3b: single writer, no readers — upgrade in place, no
        // writeback ("saving bandwidth").
        step(FR::Step::MakeOwner, dirty_holders.front());
        std::vector<std::pair<unsigned, ProbeResult>> r2;
        AckGate g2;
        g2.expect(1);
        sendProbes({dirty_holders.front()}, ProbeType::MakeOwner, base,
                   txn, &r2, &g2);
        co_await g2.wait();
        if (r2.front().second.found && r2.front().second.dirty) {
            co_await makeRoom(base, txn);
            coherence::DirEntry &e = _dir.insert(base);
            e.state = cache::CohState::Modified;
            e.sharers.add(dirty_holders.front());
            _chip.rec(FR::Ev::DirInsert, FR::compBank(_id), base, txn,
                      static_cast<std::uint8_t>(e.state),
                      dirty_holders.front());
        }
        co_return;
    }

    // Cases 4b/5b: invalidate the readers, write back every writer,
    // merge disjoint write sets at the L3. Overlapping write sets are
    // the Fig. 7b case 5b hardware race (last merge wins).
    if (overlap) {
        _mergeConflicts.inc();
        step(FR::Step::Conflict,
             static_cast<std::uint32_t>(dirty_holders.size()));
    }
    for (unsigned cl : clean_sharers)
        step(FR::Step::Invalidate, cl);
    for (unsigned cl : dirty_holders)
        step(FR::Step::WritebackInv, cl);
    std::vector<std::pair<unsigned, ProbeResult>> r2;
    AckGate g2;
    g2.expect(clean_sharers.size() + dirty_holders.size());
    sendProbes(clean_sharers, ProbeType::Invalidate, base, txn, &r2, &g2);
    sendProbes(dirty_holders, ProbeType::WritebackInvalidate, base, txn,
               &r2, &g2);
    co_await g2.wait();
    for (const auto &[cl, r] : r2) {
        if (r.dirty) {
            step(FR::Step::Merge, cl);
            co_await mergeIntoL3(base, r.data, r.dirtyMask);
        }
    }
    (void)eq;
}

sim::CoTask
L3Bank::handleTableUpdate(Request req)
{
    sim::EventQueue &eq = _chip.eq();
    const mem::AddressMap &map = _chip.map();
    panic_if(req.op != AtomicOp::Or && req.op != AtomicOp::And,
             "fine-table updates must use atom.or/atom.and");

    const mem::Addr word_addr = req.addr & ~mem::Addr(3);
    const mem::Addr tbl_base = mem::lineBase(word_addr);
    const std::uint32_t tbl_key = mem::lineNumber(tbl_base);
    co_await _locks.acquire(tbl_key);
    Held held(_locks, tbl_key);

    // Read the current word to find which bits change.
    sim::HostProfiler::Scope hp(sim::HostProfiler::Phase::RegionTable);
    auto [tline, t0] = l3AccessPrep(tbl_base, true, eq.now());
    std::uint32_t old = 0;
    tline->read(word_addr, &old, 4);
    hp.close();
    co_await Delay{eq, t0};

    std::uint32_t next =
        req.op == AtomicOp::Or ? (old | req.operand) : (old & req.operand);
    std::uint32_t changed = old ^ next;
    const mem::Addr block_base = map.coveredBlockBase(word_addr);

    // Serialize transitions line by line (Section 3.6: "the directory
    // serializes the requests line-by-line").
    for (unsigned bit = 0; bit < 32 && changed; ++bit) {
        if (!((changed >> bit) & 1u))
            continue;
        mem::Addr lb = block_base + bit * mem::lineBytes;
        std::uint32_t lkey = mem::lineNumber(lb);
        bool self = (lkey == tbl_key);
        if (!self)
            co_await _locks.acquire(lkey);

        bool to_swcc = (next >> bit) & 1u;
        TRACE(_chip.tracer(), sim::Category::Transition, "bank", _id,
              ": line 0x", std::hex, lb, std::dec, " -> ",
              to_swcc ? "SWcc" : "HWcc");
        if (sim::TraceJsonWriter *w = _chip.tracer().json()) {
            w->instant(eq.now(), sim::TraceJsonWriter::bankTid(_id),
                       sim::cat("line 0x", std::hex, lb,
                                to_swcc ? " ->SWcc" : " ->HWcc"),
                       "transition");
        }
        _chip.rec(FR::Ev::TransBegin, FR::compBank(_id), lb, req.msgId,
                  to_swcc ? 1 : 0, bit);
        if (to_swcc) {
            // HWcc => SWcc (Fig. 7a): flush any directory state.
            if (_dir.find(lb)) {
                _chip.rec(FR::Ev::TransStep, FR::compBank(_id), lb,
                          req.msgId,
                          static_cast<std::uint8_t>(FR::Step::Recall));
                co_await recallEntryRetry(lb, req.msgId, lkey);
                if (_dir.find(lb)) {
                    TRACE(_chip.tracer(), sim::Category::Transition,
                          "bank", _id, ": erase 0x", std::hex, lb);
                    _chip.rec(FR::Ev::DirErase, FR::compBank(_id), lb,
                              req.msgId);
                    _dir.erase(lb);
                }
            }
        } else {
            // SWcc => HWcc (Fig. 7b): broadcast clean request.
            co_await swccToHwcc(lb, req.msgId);
        }

        // Commit this line's bit under its lock. The table line may
        // have been evicted from the L3 during the probes; re-prep.
        sim::HostProfiler::Scope hpc(
            sim::HostProfiler::Phase::RegionTable);
        auto [tl, tt] = l3AccessPrep(tbl_base, true, eq.now());
        std::uint32_t cur = 0;
        tl->read(word_addr, &cur, 4);
        cur = to_swcc ? (cur | (1u << bit)) : (cur & ~(1u << bit));
        tl->write(word_addr, &cur, 4);
        _tableCache.update(word_addr, cur);
        _transitions.inc();
        _chip.rec(FR::Ev::TableUpdate, FR::compBank(_id), lb, req.msgId,
                  to_swcc ? 1 : 0, cur);
        _chip.rec(FR::Ev::TransEnd, FR::compBank(_id), lb, req.msgId,
                  to_swcc ? 1 : 0);
        hpc.close();
        co_await Delay{eq, tt};

        if (!self)
            _locks.release(lkey);
    }

    // The issuing core blocks until the transition completes
    // (Section 3.6) — the ack carries the prior word value.
    Response resp;
    resp.type = ReqType::Atomic;
    resp.core = req.core;
    resp.addr = req.addr;
    resp.atomicOld = old;
    respond(req, resp, 1);
}

void
L3Bank::debugWedgeLine(mem::Addr base)
{
    // Called from test harness context, outside any shard window; the
    // wedge transaction must park on this bank's home queue.
    sim::ShardGuard g(_chip.shardOfBank(_id));
    pruneTransactions();
    adoptTransaction(wedge(mem::lineBase(base))).start();
}

sim::CoTask
L3Bank::wedge(mem::Addr base)
{
    const std::uint32_t key = mem::lineNumber(base);
    const std::uint64_t txn = ++_txnSeq;
    _txns.emplace(txn, TxnRecord{txn, ReqType::Read, base, 0,
                                 _chip.eq().now()});
    co_await _locks.acquire(key);
    Held held(_locks, key);
    // Park far beyond any cycle limit while holding the line lock:
    // every later request for this line queues behind it forever.
    co_await Delay{_chip.eq(), _chip.eq().now() + (sim::Tick{1} << 62)};
}

} // namespace arch
