#include "harness/report.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <vector>

#include "harness/table.hh"

namespace harness {

void
buildStatRegistry(const arch::MachineConfig &cfg, const RunResult &r,
                  sim::StatRegistry &reg)
{
    reg.addScalar("machine.cores", cfg.totalCores());
    reg.addScalar("machine.clusters", cfg.numClusters);
    reg.addScalar("machine.l3_banks", cfg.numL3Banks);
    reg.addScalar("machine.channels", cfg.numChannels);
    reg.addScalar("machine.mode", static_cast<double>(cfg.mode));

    reg.addScalar("sim.cycles", static_cast<double>(r.cycles));
    reg.addScalar("sim.seed", static_cast<double>(r.seed));
    reg.addScalar("sim.fault_seed", static_cast<double>(r.faultSeed));
    reg.addScalar("faults.injected",
                  static_cast<double>(r.faultsInjected));
    reg.addScalar("faults.recovered",
                  static_cast<double>(r.faultsRecovered));
    reg.addScalar("sim.instructions", static_cast<double>(r.instructions));
    reg.addScalar("sim.ipc_per_core",
                  r.cycles
                      ? double(r.instructions) / r.cycles / cfg.totalCores()
                      : 0.0);

    for (unsigned c = 0; c < arch::numMsgClasses; ++c) {
        arch::MsgClass cls = static_cast<arch::MsgClass>(c);
        reg.addScalar(sim::cat("l2_out.", arch::msgClassName(cls)),
                      static_cast<double>(r.msgs.get(cls)));
        reg.addHistogram(sim::cat("latency.req.", arch::msgClassName(cls)),
                         r.reqLatency[c]);
        reg.addScalar(sim::cat("retries.req.", arch::msgClassName(cls)),
                      static_cast<double>(r.reqRetries[c]));
    }
    reg.addScalar("l2_out.total", static_cast<double>(r.msgs.total()));
    reg.addHistogram("latency.resp", r.respLatency);
    reg.addHistogram("latency.probe", r.probeLatency);
    reg.addScalar("retries.resp", static_cast<double>(r.respRetries));
    reg.addScalar("recorder.recorded",
                  static_cast<double>(r.recorderRecorded));

    reg.addScalar("l2.hits", static_cast<double>(r.l2Hits));
    reg.addScalar("l2.misses", static_cast<double>(r.l2Misses));
    reg.addScalar("l2.hit_rate",
                  (r.l2Hits + r.l2Misses)
                      ? double(r.l2Hits) / (r.l2Hits + r.l2Misses)
                      : 0.0);
    reg.addScalar("l3.hits", static_cast<double>(r.l3Hits));
    reg.addScalar("l3.misses", static_cast<double>(r.l3Misses));
    reg.addScalar("l3.hit_rate",
                  (r.l3Hits + r.l3Misses)
                      ? double(r.l3Hits) / (r.l3Hits + r.l3Misses)
                      : 0.0);

    reg.addScalar("swcc.flush_issued", static_cast<double>(r.flushIssued));
    reg.addScalar("swcc.flush_useful", static_cast<double>(r.flushUseful));
    reg.addScalar("swcc.inv_issued", static_cast<double>(r.invIssued));
    reg.addScalar("swcc.inv_useful", static_cast<double>(r.invUseful));
    double coh_ops = double(r.flushIssued) + r.invIssued;
    reg.addScalar("swcc.useful_fraction",
                  coh_ops
                      ? (double(r.flushUseful) + r.invUseful) / coh_ops
                      : 0.0);

    reg.addScalar("dir.insertions", static_cast<double>(r.dirInsertions));
    reg.addScalar("dir.evictions", static_cast<double>(r.dirEvictions));
    reg.addScalar("dir.peak_entries", static_cast<double>(r.dirPeak));
    reg.addScalar("dir.avg_entries", r.dirAvgTotal);
    reg.addScalar("dir.avg_code", r.dirAvgBySegment[0]);
    reg.addScalar("dir.avg_stack", r.dirAvgBySegment[1]);
    reg.addScalar("dir.avg_heap_global", r.dirAvgBySegment[2]);
    reg.addScalar("dir.max_entries", r.dirMax);

    reg.addScalar("cohesion.transitions",
                  static_cast<double>(r.transitions));
    reg.addScalar("cohesion.table_lookups",
                  static_cast<double>(r.tableLookups));
    reg.addScalar("cohesion.table_cache_hits",
                  static_cast<double>(r.tableCacheHits));
    reg.addScalar("cohesion.table_cache_misses",
                  static_cast<double>(r.tableCacheMisses));
    reg.addScalar("cohesion.merge_conflicts",
                  static_cast<double>(r.mergeConflicts));
    reg.addScalar("atomics.executed", static_cast<double>(r.atomics));

    reg.addScalar("dram.accesses", static_cast<double>(r.dramAccesses));
    reg.addScalar("net.bytes", static_cast<double>(r.fabricBytes));
    reg.addScalar("net.bytes_per_cycle",
                  r.cycles ? double(r.fabricBytes) / r.cycles : 0.0);
    reg.addHistogram("net.delay_up", r.fabricDelayUp);
    reg.addHistogram("net.delay_down", r.fabricDelayDown);

    // Cycle-blame breakdown: only present when latency accounting ran
    // (zero transactions means the run had it off), so default CSV and
    // report output stays byte-identical.
    if (r.latency.completed() || r.latency.violations) {
        sim::registerLatencyTotals(
            reg, "latency", r.latency, +[](unsigned c) {
                return arch::msgClassName(
                    static_cast<arch::MsgClass>(c));
            });
    }
}

sim::StatSet
collectStats(const arch::MachineConfig &cfg, const RunResult &r)
{
    sim::StatRegistry reg;
    buildStatRegistry(cfg, r, reg);
    return reg.flatten();
}

void
printJson(std::ostream &os, const arch::MachineConfig &cfg,
          const RunResult &r)
{
    sim::StatRegistry reg;
    buildStatRegistry(cfg, r, reg);
    reg.dumpJson(os);
}

void
printReport(std::ostream &os, const arch::MachineConfig &cfg,
            const RunResult &r)
{
    banner(os, "Simulation report: " + cfg.summary());
    sim::StatSet s = collectStats(cfg, r);
    os << std::left;
    for (const auto &[name, value] : s.values()) {
        os << "  " << std::setw(32) << name << " ";
        if (value == static_cast<double>(static_cast<long long>(value))) {
            os << static_cast<long long>(value);
        } else {
            os << std::fixed << std::setprecision(4) << value
               << std::defaultfloat;
        }
        os << '\n';
    }
}

void
printCsv(std::ostream &os, const arch::MachineConfig &cfg,
         const RunResult &r)
{
    sim::StatSet s = collectStats(cfg, r);
    os << "stat,value\n";
    for (const auto &[name, value] : s.values())
        os << name << ',' << value << '\n';
}

void
printLatencyTopN(std::ostream &os, const RunResult &r, unsigned n)
{
    const sim::LatencyTotals &t = r.latency;
    std::uint64_t total_e2e = 0;
    for (const auto &b : t.mode)
        total_e2e += b.e2e;
    banner(os, "Latency blame: top contended stages");
    if (!t.completed()) {
        os << "  (no completed transactions — was --latency on?)\n";
        return;
    }

    struct Row
    {
        unsigned cls, stage;
        std::uint64_t cycles, count;
    };
    std::vector<Row> rows;
    for (unsigned c = 0; c < t.cls.size(); ++c) {
        for (unsigned s = 0; s < sim::lat::numStages; ++s) {
            if (t.cls[c].stage[s])
                rows.push_back({c, s, t.cls[c].stage[s], t.cls[c].count});
        }
    }
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        if (a.cycles != b.cycles)
            return a.cycles > b.cycles;
        return a.cls != b.cls ? a.cls < b.cls : a.stage < b.stage;
    });
    if (rows.size() > n)
        rows.resize(n);

    os << "  " << std::left << std::setw(22) << "class" << std::setw(12)
       << "stage" << std::right << std::setw(14) << "cycles"
       << std::setw(9) << "share" << std::setw(12) << "avg/txn" << '\n';
    for (const Row &row : rows) {
        os << "  " << std::left << std::setw(22)
           << arch::msgClassName(static_cast<arch::MsgClass>(row.cls))
           << std::setw(12)
           << sim::lat::stageName(static_cast<sim::lat::Stage>(row.stage))
           << std::right << std::setw(14) << row.cycles << std::setw(8)
           << std::fixed << std::setprecision(1)
           << (total_e2e ? 100.0 * double(row.cycles) / double(total_e2e)
                         : 0.0)
           << '%' << std::setw(12) << std::setprecision(1)
           << (row.count ? double(row.cycles) / double(row.count) : 0.0)
           << std::defaultfloat << '\n';
    }

    os << "\n  per-mode waterfall (cycles by stage):\n";
    for (unsigned m = 0; m < sim::lat::numModes; ++m) {
        const auto &b = t.mode[m];
        if (!b.count)
            continue;
        os << "  " << std::left << std::setw(12)
           << sim::lat::modeName(static_cast<sim::lat::Mode>(m))
           << std::right << " txns=" << b.count << " e2e=" << b.e2e
           << '\n';
        for (unsigned s = 0; s < sim::lat::numStages; ++s) {
            if (!b.stage[s])
                continue;
            os << "    " << std::left << std::setw(12)
               << sim::lat::stageName(static_cast<sim::lat::Stage>(s))
               << std::right << std::setw(14) << b.stage[s]
               << std::setw(8) << std::fixed << std::setprecision(1)
               << (b.e2e ? 100.0 * double(b.stage[s]) / double(b.e2e)
                         : 0.0)
               << '%' << std::defaultfloat << '\n';
        }
    }
    if (t.violations)
        os << "  WARNING: " << t.violations
           << " transaction(s) violated the stage-sum invariant\n";
}

} // namespace harness
