#include "harness/report.hh"

#include <iomanip>
#include <ostream>

#include "harness/table.hh"

namespace harness {

sim::StatSet
collectStats(const arch::MachineConfig &cfg, const RunResult &r)
{
    sim::StatSet s;
    s.set("machine.cores", cfg.totalCores());
    s.set("machine.clusters", cfg.numClusters);
    s.set("machine.l3_banks", cfg.numL3Banks);
    s.set("machine.channels", cfg.numChannels);
    s.set("machine.mode", static_cast<double>(cfg.mode));

    s.set("sim.cycles", static_cast<double>(r.cycles));
    s.set("sim.instructions", static_cast<double>(r.instructions));
    s.set("sim.ipc_per_core",
          r.cycles ? double(r.instructions) / r.cycles / cfg.totalCores()
                   : 0.0);

    r.msgs.exportTo(s, "l2_out.");
    s.set("l2_out.total", static_cast<double>(r.msgs.total()));

    s.set("l2.hits", static_cast<double>(r.l2Hits));
    s.set("l2.misses", static_cast<double>(r.l2Misses));
    s.set("l2.hit_rate", (r.l2Hits + r.l2Misses)
                             ? double(r.l2Hits) / (r.l2Hits + r.l2Misses)
                             : 0.0);
    s.set("l3.hits", static_cast<double>(r.l3Hits));
    s.set("l3.misses", static_cast<double>(r.l3Misses));
    s.set("l3.hit_rate", (r.l3Hits + r.l3Misses)
                             ? double(r.l3Hits) / (r.l3Hits + r.l3Misses)
                             : 0.0);

    s.set("swcc.flush_issued", static_cast<double>(r.flushIssued));
    s.set("swcc.flush_useful", static_cast<double>(r.flushUseful));
    s.set("swcc.inv_issued", static_cast<double>(r.invIssued));
    s.set("swcc.inv_useful", static_cast<double>(r.invUseful));
    double coh_ops = double(r.flushIssued) + r.invIssued;
    s.set("swcc.useful_fraction",
          coh_ops ? (double(r.flushUseful) + r.invUseful) / coh_ops : 0.0);

    s.set("dir.insertions", static_cast<double>(r.dirInsertions));
    s.set("dir.evictions", static_cast<double>(r.dirEvictions));
    s.set("dir.peak_entries", static_cast<double>(r.dirPeak));
    s.set("dir.avg_entries", r.dirAvgTotal);
    s.set("dir.avg_code", r.dirAvgBySegment[0]);
    s.set("dir.avg_stack", r.dirAvgBySegment[1]);
    s.set("dir.avg_heap_global", r.dirAvgBySegment[2]);
    s.set("dir.max_entries", r.dirMax);

    s.set("cohesion.transitions", static_cast<double>(r.transitions));
    s.set("cohesion.table_lookups",
          static_cast<double>(r.tableLookups));
    s.set("cohesion.table_cache_hits",
          static_cast<double>(r.tableCacheHits));
    s.set("cohesion.table_cache_misses",
          static_cast<double>(r.tableCacheMisses));
    s.set("cohesion.merge_conflicts",
          static_cast<double>(r.mergeConflicts));
    s.set("atomics.executed", static_cast<double>(r.atomics));

    s.set("dram.accesses", static_cast<double>(r.dramAccesses));
    s.set("net.bytes", static_cast<double>(r.fabricBytes));
    s.set("net.bytes_per_cycle",
          r.cycles ? double(r.fabricBytes) / r.cycles : 0.0);
    return s;
}

void
printReport(std::ostream &os, const arch::MachineConfig &cfg,
            const RunResult &r)
{
    banner(os, "Simulation report: " + cfg.summary());
    sim::StatSet s = collectStats(cfg, r);
    os << std::left;
    for (const auto &[name, value] : s.values()) {
        os << "  " << std::setw(32) << name << " ";
        if (value == static_cast<double>(static_cast<long long>(value))) {
            os << static_cast<long long>(value);
        } else {
            os << std::fixed << std::setprecision(4) << value
               << std::defaultfloat;
        }
        os << '\n';
    }
}

void
printCsv(std::ostream &os, const arch::MachineConfig &cfg,
         const RunResult &r)
{
    sim::StatSet s = collectStats(cfg, r);
    os << "stat,value\n";
    for (const auto &[name, value] : s.values())
        os << name << ',' << value << '\n';
}

} // namespace harness
