#include "harness/statdiff.hh"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace harness {

namespace {

void
flattenInto(const sim::JsonValue &v, const std::string &prefix,
            std::vector<StatEntry> &out)
{
    using Kind = sim::JsonValue::Kind;
    switch (v.kind) {
      case Kind::Object:
        for (const auto &[key, child] : v.obj) {
            flattenInto(child,
                        prefix.empty() ? key : prefix + "." + key, out);
        }
        return;
      case Kind::Array:
        for (std::size_t i = 0; i < v.arr.size(); ++i) {
            flattenInto(v.arr[i], prefix + "." + std::to_string(i), out);
        }
        return;
      case Kind::Number: {
          StatEntry e;
          e.path = prefix;
          e.numeric = true;
          e.value = v.number;
          out.push_back(std::move(e));
          return;
      }
      default: {
          StatEntry e;
          e.path = prefix;
          e.numeric = false;
          e.text = v.dump();
          out.push_back(std::move(e));
          return;
      }
    }
}

bool
pathIgnored(const std::string &path,
            const std::vector<std::string> &segments)
{
    std::size_t start = 0;
    while (start <= path.size()) {
        std::size_t dot = path.find('.', start);
        std::size_t len =
            (dot == std::string::npos ? path.size() : dot) - start;
        for (const std::string &seg : segments) {
            if (path.compare(start, len, seg) == 0)
                return true;
        }
        if (dot == std::string::npos)
            break;
        start = dot + 1;
    }
    return false;
}

std::string
numberText(double v)
{
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

} // namespace

std::vector<StatEntry>
flattenStats(const sim::JsonValue &doc)
{
    std::vector<StatEntry> out;
    flattenInto(doc, "", out);
    std::sort(out.begin(), out.end(),
              [](const StatEntry &a, const StatEntry &b) {
                  return a.path < b.path;
              });
    return out;
}

DiffResult
diffStats(const sim::JsonValue &a, const sim::JsonValue &b,
          const DiffOptions &opts)
{
    std::vector<StatEntry> fa = flattenStats(a);
    std::vector<StatEntry> fb = flattenStats(b);

    DiffResult d;
    std::size_t ia = 0, ib = 0;
    auto skip = [&](const StatEntry &e) {
        if (pathIgnored(e.path, opts.ignoreSegments))
            return true;
        for (const std::string &p : opts.ignorePrefixes) {
            if (e.path.compare(0, p.size(), p) == 0)
                return true;
        }
        return false;
    };
    while (ia < fa.size() || ib < fb.size()) {
        if (ia < fa.size() && skip(fa[ia])) {
            ++ia;
            continue;
        }
        if (ib < fb.size() && skip(fb[ib])) {
            ++ib;
            continue;
        }
        if (ib == fb.size() ||
            (ia < fa.size() && fa[ia].path < fb[ib].path)) {
            DiffEntry e;
            e.kind = DiffEntry::Kind::Removed;
            e.path = fa[ia].path;
            e.before =
                fa[ia].numeric ? numberText(fa[ia].value) : fa[ia].text;
            d.entries.push_back(std::move(e));
            ++ia;
            continue;
        }
        if (ia == fa.size() || fb[ib].path < fa[ia].path) {
            DiffEntry e;
            e.kind = DiffEntry::Kind::Added;
            e.path = fb[ib].path;
            e.after =
                fb[ib].numeric ? numberText(fb[ib].value) : fb[ib].text;
            d.entries.push_back(std::move(e));
            ++ib;
            continue;
        }
        // Same path in both.
        const StatEntry &ea = fa[ia];
        const StatEntry &eb = fb[ib];
        ++ia;
        ++ib;
        ++d.compared;
        if (ea.numeric && eb.numeric) {
            double delta = std::abs(ea.value - eb.value);
            double mag = std::max(std::abs(ea.value), std::abs(eb.value));
            double rel = mag > 0 ? delta / mag : 0;
            if (delta <= opts.absTol || rel <= opts.relTol ||
                delta == 0) {
                continue;
            }
            DiffEntry e;
            e.kind = DiffEntry::Kind::Changed;
            e.path = ea.path;
            e.before = numberText(ea.value);
            e.after = numberText(eb.value);
            e.absDelta = delta;
            e.relDelta = rel;
            d.entries.push_back(std::move(e));
        } else if (ea.numeric != eb.numeric ||
                   ea.text != eb.text) {
            DiffEntry e;
            e.kind = DiffEntry::Kind::Changed;
            e.path = ea.path;
            e.before = ea.numeric ? numberText(ea.value) : ea.text;
            e.after = eb.numeric ? numberText(eb.value) : eb.text;
            d.entries.push_back(std::move(e));
        }
    }
    return d;
}

void
printDiff(std::ostream &os, const DiffResult &d,
          const std::string &label_a, const std::string &label_b)
{
    std::size_t added = 0, removed = 0, changed = 0;
    for (const DiffEntry &e : d.entries) {
        switch (e.kind) {
          case DiffEntry::Kind::Added:
            ++added;
            os << "+ " << e.path << " = " << e.after << '\n';
            break;
          case DiffEntry::Kind::Removed:
            ++removed;
            os << "- " << e.path << " = " << e.before << '\n';
            break;
          case DiffEntry::Kind::Changed:
            ++changed;
            os << "~ " << e.path << ": " << e.before << " -> "
               << e.after;
            if (e.relDelta > 0) {
                os << " (" << e.absDelta << " abs, "
                   << e.relDelta * 100 << "% rel)";
            }
            os << '\n';
            break;
        }
    }
    if (d.identical()) {
        os << label_a << " and " << label_b << " match: " << d.compared
           << " stats compared, no differences\n";
    } else {
        os << label_a << " vs " << label_b << ": " << d.compared
           << " stats compared, " << changed << " changed, " << added
           << " added, " << removed << " removed\n";
    }
}

} // namespace harness
