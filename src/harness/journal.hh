/**
 * @file
 * Crash-resilient campaign results: a deterministic per-job JSON
 * rendering, an append-only JSON-lines journal of finished jobs, and
 * a results-document composer that stitches journaled and freshly-run
 * jobs into one byte-stable file.
 *
 * The invariant the resume feature rests on: the final results
 * document is built purely from per-job object strings (in submission
 * order) plus a fixed wrapper, and the per-job string for a given job
 * is identical whether it was just computed or read back from a
 * journal written by an earlier, interrupted campaign. A resumed
 * campaign therefore reproduces the uninterrupted campaign's results
 * file byte for byte.
 */

#ifndef COHESION_HARNESS_JOURNAL_HH
#define COHESION_HARNESS_JOURNAL_HH

#include <fstream>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "harness/sweep.hh"

namespace harness {

/**
 * Deterministic JSON object for one finished job: the fields of the
 * cohesion-sweep-results-v2 schema minus the per-job "host" block
 * (host wall-clock is the one nondeterministic part of a results
 * file and must not enter the byte-identity contract).
 */
std::string jobObjectJson(const sim::JobResult &r);

/**
 * Compose the deterministic results document from per-job object
 * strings in submission order. The wrapper carries the same schema
 * tag; the top-level "host" aggregate is omitted for the same reason
 * the per-job blocks are.
 */
void writeResultsDoc(std::ostream &os,
                     const std::vector<std::string> &job_objects);

/**
 * Append-only JSON-lines journal of finished jobs. Line 1 is a schema
 * header; every further line is {"label": ..., "job": {...}} flushed
 * as soon as the job completes, so a killed campaign loses at most
 * the in-flight jobs.
 */
class ResultsJournal
{
  public:
    /** Open @p path for appending (created if missing; a schema header
     *  is written only when the file is new/empty). */
    bool open(const std::string &path, std::string *err);

    bool isOpen() const { return _out.is_open(); }

    /** Append one finished job and flush. */
    void append(const std::string &label, const std::string &job_object);

    void close() { _out.close(); }

    /**
     * Load journaled jobs: label -> per-job object string (verbatim
     * bytes, so re-emitted documents stay byte-stable). Tolerates a
     * truncated or garbled trailing line — the signature of a crash
     * mid-append — by ignoring any line that does not parse. A missing
     * file is an empty journal, not an error.
     */
    static bool load(const std::string &path,
                     std::map<std::string, std::string> *out,
                     std::string *err);

  private:
    std::ofstream _out;
};

} // namespace harness

#endif // COHESION_HARNESS_JOURNAL_HH
