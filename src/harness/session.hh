/**
 * @file
 * A simulation session: one persistent machine (chip + runtime) that
 * can execute several kernel runs back to back, checkpoint its full
 * architectural state to a versioned snapshot between runs, and be
 * reconstructed from such a snapshot in a fresh process.
 *
 * Checkpoints are only taken at quiescent points — the event queue
 * drained, no bank transaction or cluster MSHR in flight, no coroutine
 * parked — because kernel workers are C++20 coroutines whose frames
 * cannot serialize. In practice that means "between kernel runs": the
 * session model is run(k1); checkpoint(); ... later, in any process:
 * restore(); run(k2); and the result of run(k2) is bit-identical to
 * having executed run(k1); run(k2) in one uninterrupted session.
 */

#ifndef COHESION_HARNESS_SESSION_HH
#define COHESION_HARNESS_SESSION_HH

#include <memory>
#include <string>

#include "arch/chip.hh"
#include "arch/machine_config.hh"
#include "harness/runner.hh"
#include "kernels/kernel.hh"
#include "runtime/runtime.hh"

namespace harness {

class Session
{
  public:
    /**
     * Build a fresh machine from @p cfg. @p workload_seed chains the
     * fault-injection stream (cfg.faults.seed left 0 derives it from
     * the workload seed, exactly as runKernel always has).
     */
    Session(const arch::MachineConfig &cfg, std::uint64_t workload_seed);
    ~Session();

    arch::Chip &chip() { return *_chip; }
    runtime::CohesionRuntime &runtime() { return *_rt; }

    /**
     * Execute @p kernel to completion on every core of the persistent
     * machine and harvest cumulative statistics (counters monotonically
     * accumulate across the session's runs, as they would on hardware).
     * Calls fatal() on deadlock or verification failure.
     */
    RunResult run(kernels::Kernel &kernel, const RunOptions &opts = {});

    /**
     * Serialize the machine into a framed CCKPT1 snapshot blob. Runs a
     * full coherence-audit pass first; throws sim::SnapshotError if the
     * machine is not quiescent and coherence::AuditError if the audit
     * fails.
     */
    std::string checkpoint();

    /** checkpoint() straight to @p path (throws sim::SnapshotError). */
    void checkpointTo(const std::string &path);

    /**
     * Restore machine state from a framed snapshot blob produced by
     * checkpoint() on an identically-configured session. Only legal
     * before the first run. Throws sim::SnapshotError on a corrupt,
     * truncated, wrong-version, or mismatched snapshot.
     */
    void restore(const std::string &framed);

    /** restore() from the snapshot file at @p path. */
    void restoreFrom(const std::string &path);

  private:
    arch::MachineConfig _cfg;     ///< As given (registry/report view).
    arch::MachineConfig _cfgEff;  ///< With the chained fault seed.
    std::unique_ptr<arch::Chip> _chip;
    std::unique_ptr<runtime::CohesionRuntime> _rt;
};

} // namespace harness

#endif // COHESION_HARNESS_SESSION_HH
