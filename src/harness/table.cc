#include "harness/table.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace harness {

Table::Table(std::vector<std::string> headers)
    : _headers(std::move(headers))
{}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(_headers.size());
    _rows.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            for (std::size_t pad = cells[c].size(); pad < widths[c] + 2;
                 ++pad) {
                os << ' ';
            }
        }
        os << '\n';
    };

    emit(_headers);
    std::string rule;
    for (std::size_t c = 0; c < _headers.size(); ++c)
        rule += std::string(widths[c], '-') + "  ";
    os << rule << '\n';
    for (const auto &row : _rows)
        emit(row);
}

std::string
Table::fmt(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
Table::fmtX(double v, int prec)
{
    return fmt(v, prec) + "x";
}

std::string
Table::fmtCount(double v)
{
    char buf[64];
    if (v >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
    else if (v >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.1fK", v / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
}

void
banner(std::ostream &os, const std::string &title)
{
    os << '\n' << std::string(72, '=') << '\n'
       << title << '\n'
       << std::string(72, '=') << '\n';
}

} // namespace harness
