/**
 * @file
 * Parallel sweep engine for multi-configuration campaigns.
 *
 * Every headline result of the paper (Figs. 8-10, Table 3, the
 * directory-size sweep, the SWcc/HWcc ablations, the fault campaign)
 * is a *family* of independent simulations over kernels x machine
 * configs x directory geometries x seeds x fault plans. SweepEngine
 * runs such a family on a work-stealing std::thread pool, one fully
 * isolated Machine per job:
 *
 *  - a job owns its Chip, runtime, kernel, StatRegistry and Tracer;
 *    nothing mutable is shared between concurrent jobs (the event
 *    capture pool is thread-local, log output is captured per job via
 *    sim::LogCapture, and every Rng is seeded from the job's own
 *    config), so results are byte-identical for any --jobs value;
 *  - results come back in job-submission order regardless of which
 *    worker ran what, so table-printing call sites stay simple;
 *  - a job that throws is classified (audit / deadlock / panic /
 *    verify) and reported in its JobResult together with its captured
 *    log; sibling jobs are unaffected.
 *
 * The declarative layer (SweepSpec) describes a campaign as the
 * cross-product of axes and expands it into jobs; call sites with
 * bespoke per-run logic (the ablation bench's chip surgery, the
 * transition-stress kernel) submit custom job bodies instead.
 */

#ifndef COHESION_HARNESS_SWEEP_HH
#define COHESION_HARNESS_SWEEP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "arch/machine_config.hh"
#include "harness/runner.hh"
#include "kernels/kernel.hh"

namespace sim {

/** How a sweep job ended. Everything but Ok carries `what`. */
enum class JobOutcome : std::uint8_t
{
    Ok,       ///< Ran to completion (and verified, unless skipped).
    Audit,    ///< coherence::AuditError — invariant violated.
    Deadlock, ///< arch::DeadlockError — watchdog caught a hang.
    Panic,    ///< std::logic_error — a panic() path was reached.
    Verify,   ///< std::runtime_error — fatal(), typically a verify
              ///< mismatch or a configuration error.
    Unknown,  ///< Any other exception type.
    Skipped,  ///< Never ran: a cooperative stop (SIGINT/SIGTERM) was
              ///< requested before the job started.
};

const char *jobOutcomeName(JobOutcome o);

/**
 * Live-telemetry slot for one job: the job's progress hook stores,
 * the sweep monitor thread loads. Lock-free and strictly one-way —
 * nothing a reader does can perturb the job, so progress-enabled
 * sweeps stay byte-identical.
 */
struct JobTelemetry
{
    enum State : std::uint8_t { Pending, Running, Done, Failed };

    std::atomic<std::uint8_t> state{Pending};
    std::atomic<std::uint64_t> tick{0};
    std::atomic<std::uint64_t> events{0};
};

/** One schedulable unit: a label and a body that builds, runs and
 *  tears down a private Machine, returning its statistics. */
struct SweepJob
{
    std::string label;
    std::function<harness::RunResult()> body;
    /** Optional telemetry-aware body, preferred when the engine runs
     *  with progress enabled; receives the job's live slot (never
     *  null). Falls back to body when unset. */
    std::function<harness::RunResult(JobTelemetry *)> bodyT;
};

/** What came back from one job. */
struct JobResult
{
    std::string label;
    JobOutcome outcome = JobOutcome::Ok;
    harness::RunResult run; ///< Valid iff outcome == Ok.
    std::string what;       ///< Exception message otherwise.
    std::string log;        ///< warn()/inform()/panic() output of this
                            ///< job only (never interleaved).
    double wallSec = 0;     ///< Host wall-clock spent in the body.

    bool ok() const { return outcome == JobOutcome::Ok; }
};

/**
 * Work-stealing thread pool over isolated simulation jobs.
 *
 * Jobs are dealt round-robin onto per-worker deques; a worker drains
 * its own deque LIFO-from-front and steals from the back of a victim's
 * when empty, which keeps long tails (one slow directory point) from
 * idling the pool. The result vector is indexed by submission order,
 * so scheduling never changes what the caller observes.
 */
/** Campaign-level live telemetry controls (SweepEngine::run). */
struct SweepProgress
{
    bool enabled = false;
    /** Human one-liners on stderr (on unless a script only wants the
     *  JSON-lines stream). */
    bool human = true;
    /** Optional JSON-lines sink (not owned; null: none). */
    std::ostream *jsonl = nullptr;
    /** Seconds between heartbeats. */
    double intervalSec = 1.0;
    /**
     * Cooperative stop flag (not owned; null: none). When it becomes
     * true, jobs already running finish normally and their results are
     * delivered, but no further job starts; never-started jobs come
     * back with JobOutcome::Skipped. Settable from a signal handler —
     * the engine only loads it.
     */
    std::atomic<bool> *stop = nullptr;
    /**
     * Completion hook, invoked with (submission index, result) right
     * after each job finishes, before the engine returns. Calls are
     * serialized under a mutex regardless of --jobs, so a journal
     * writer needs no locking of its own. Skipped jobs do not fire it.
     */
    std::function<void(std::size_t, const JobResult &)> onJobDone;
};

class SweepEngine
{
  public:
    /** @p threads 0 selects the host's hardware concurrency. */
    explicit SweepEngine(unsigned threads = 0);

    unsigned threads() const { return _threads; }

    /**
     * Run every job and return results in submission order. With one
     * thread (or one job) everything runs inline on the caller's
     * thread — `--jobs 1` is the bit-exact serial reference.
     */
    std::vector<JobResult> run(const std::vector<SweepJob> &jobs) const;

    /** As above, with a live heartbeat: a monitor thread samples every
     *  job's telemetry slot on @p progress.intervalSec and emits
     *  campaign one-liners / JSON lines. The monitor only reads
     *  atomics — results are identical to the plain overload. */
    std::vector<JobResult> run(const std::vector<SweepJob> &jobs,
                               const SweepProgress &progress) const;

    /** Convenience: run one body outside any pool with the same
     *  classification and log capture. @p telemetry (optional) is
     *  handed to the job's telemetry-aware body. */
    static JobResult runOne(const SweepJob &job,
                            JobTelemetry *telemetry = nullptr);

  private:
    unsigned _threads;
};

/** One fully-specified simulation in a declarative sweep. */
struct SweepPoint
{
    std::string label;
    std::string kernel;
    arch::MachineConfig cfg;
    kernels::Params params;
    bool sampleOccupancy = false;
    bool skipVerify = false;
    bool audit = true;
    /** Enable the host-side self-profiler in each job. */
    bool hostProfile = false;
    /**
     * Cache-warming kernel runs executed on the job's machine before
     * the measured run (statistics accumulate across all of them, as
     * on hardware). Jobs sharing identical warm-up state reuse one
     * machine snapshot via a process-global cache instead of each
     * re-simulating the warm-up — results are bit-identical either
     * way (see harness::Session).
     */
    unsigned warmupRuns = 0;
};

/** Lower a declarative point to a runnable job. */
SweepJob makeJob(const SweepPoint &p);

/**
 * Declarative campaign: the cross-product of kernels x coherence modes
 * x directory geometries x seeds x fault plans on one machine scale.
 * Axes left empty get a single default entry, so the minimal spec
 * {"kernels": ["heat"]} is one job.
 *
 * JSON schema (all fields optional unless noted):
 *
 *   {
 *     "machine":     {"clusters": 4, "paper": false, "scale": 1},
 *     "kernels":     ["heat", "dmm"],         // or ["all"]
 *     "modes":       ["cohesion", "hwcc", "swcc"],
 *     "backends":    ["msi-fullmap", "dir4b", "dls"],  // or ["all"]
 *     "seeds":       [12345, 99],
 *     "directories": [
 *        {"label": "opt"},                    // infinite full-map
 *        {"label": "8k-fa", "entries": 8192},
 *        {"label": "16k-128w-dir4b", "entries": 16384, "assoc": 128,
 *         "sharers": "dir4b"}
 *     ],
 *     "faults":      [
 *        {"label": "none"},
 *        {"label": "drop2", "plan": { ...sim/fault.hh schema... }}
 *     ],
 *     "options":     {"skip_verify": false, "audit": true,
 *                     "occupancy": false, "table_cache": 0}
 *   }
 */
struct SweepSpec
{
    struct DirAxis
    {
        std::string label = "opt";
        coherence::DirectoryConfig dir =
            coherence::DirectoryConfig::optimistic();
    };

    struct FaultAxis
    {
        std::string label = "none";
        FaultPlan plan;
    };

    unsigned clusters = 4;
    bool paper = false;
    unsigned scale = 1;
    std::uint32_t tableCacheEntries = 0;

    std::vector<std::string> kernels;
    std::vector<arch::CoherenceMode> modes;
    std::vector<DirAxis> dirs;
    /**
     * Coherence-backend axis (registered names; see
     * coherence::backendNames()). Empty keeps the legacy default
     * backend and — for label/journal stability — omits the backend
     * token from job labels entirely.
     */
    std::vector<std::string> backends;
    std::vector<std::uint64_t> seeds;
    std::vector<FaultAxis> faults;

    bool sampleOccupancy = false;
    bool skipVerify = false;
    bool audit = true;
    /** options.warmup: warm-up runs per job (see SweepPoint). */
    unsigned warmupRuns = 0;
    /** options.shards: intra-run shard threads per job (results are
     *  bit-identical for any value; see DESIGN.md §13). */
    unsigned shards = 1;

    /** Parse the JSON schema above. Returns false and sets @p err on
     *  malformed input. */
    static bool parse(std::string_view json_text, SweepSpec *out,
                      std::string *err);

    /** Expand the cross-product into fully-specified points, in the
     *  deterministic order kernel > mode > directory > backend > seed
     *  > fault. */
    std::vector<SweepPoint> expand() const;
};

} // namespace sim

#endif // COHESION_HARNESS_SWEEP_HH
