#include "harness/session.hh"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <vector>

#include "harness/hostprof.hh"
#include "harness/report.hh"
#include "runtime/ctx.hh"
#include "runtime/layout.hh"
#include "sim/logging.hh"
#include "sim/serialize.hh"
#include "sim/trace_json.hh"

namespace harness {

namespace {

/**
 * CI post-mortem hook: when COHESION_RECORDER_DUMP_DIR is set, write
 * the recorder ring and the failure text there so the workflow can
 * upload them as artifacts. Best-effort — a failed write must not mask
 * the original error.
 */
void
dumpPostMortem(const arch::Chip &chip, const std::string &kernel_name,
               std::uint64_t seed, const char *what)
{
    const char *dir = std::getenv("COHESION_RECORDER_DUMP_DIR");
    if (!dir || !*dir || !chip.recorder().enabled())
        return;
    std::string stem = std::string(dir) + "/" + kernel_name + "-" +
                       std::to_string(seed) + "-postmortem";
    std::ofstream bin(stem + ".cfr", std::ios::binary);
    if (bin) {
        std::string blob = chip.recorder().serialize();
        bin.write(blob.data(),
                  static_cast<std::streamsize>(blob.size()));
    }
    std::ofstream txt(stem + ".txt");
    if (txt)
        txt << what << "\n" << chip.postMortemHistory();
}

} // namespace

Session::Session(const arch::MachineConfig &cfg,
                 std::uint64_t workload_seed)
    : _cfg(cfg), _cfgEff(cfg)
{
    if (_cfgEff.faults.anyEnabled() && _cfgEff.faults.seed == 0) {
        // Chain the fault stream off the workload seed so one --seed
        // reproduces the entire session, faults included.
        _cfgEff.faults.seed = sim::deriveSeed(workload_seed, "fault");
    }
    _chip = std::make_unique<arch::Chip>(_cfgEff,
                                         runtime::Layout::tableBase);
    _rt = std::make_unique<runtime::CohesionRuntime>(*_chip);
}

Session::~Session() = default;

std::string
Session::checkpoint()
{
    // Auditor pre-checkpoint pass: never snapshot an inconsistent
    // machine (throws coherence::AuditError). The structural quiescence
    // conditions are then enforced by checkpointState itself.
    _chip->verifyNow();
    sim::Serializer ser;
    _chip->checkpointState(ser);
    _rt->checkpointState(ser);
    return sim::frameSnapshot(ser.blob());
}

void
Session::checkpointTo(const std::string &path)
{
    sim::writeSnapshotFile(path, checkpoint());
}

void
Session::restore(const std::string &framed)
{
    std::string payload = sim::unframeSnapshot(framed);
    sim::Deserializer des(payload);
    _chip->restoreState(des);
    _rt->restoreState(des);
    if (!des.atEnd())
        throw sim::SnapshotError("snapshot has trailing bytes");
}

void
Session::restoreFrom(const std::string &path)
{
    restore(sim::readSnapshotFile(path));
}

RunResult
Session::run(kernels::Kernel &kernel, const RunOptions &opts)
{
    const auto wall0 = std::chrono::steady_clock::now();
    auto wallSec = [&wall0]() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - wall0)
            .count();
    };
    sim::HostProfiler::Profile prof0;
    if (opts.hostProfile) {
        sim::HostProfiler::enable(opts.hostSampleShift);
        // The run's profile is this thread's accumulation delta, so
        // concurrent sweep jobs on sibling workers don't bleed in.
        prof0 = sim::HostProfiler::threadSnapshot();
    }
    sim::HostProfiler::Scope setup(sim::HostProfiler::Phase::Setup);

    arch::Chip &chip = *_chip;
    runtime::CohesionRuntime &rt = *_rt;

    chip.tracer().setMask(opts.traceMask);
    if (opts.audit)
        chip.enableAudit(opts.auditPeriod);
    // Later runs of a session (and restored sessions) keep the live
    // ring rolling: re-enabling would clear it and fork the behavior
    // of an uninterrupted session from a restored one.
    if (opts.recorderCapacity && !chip.recorder().enabled())
        chip.enableRecorder(opts.recorderCapacity);
    if (opts.watchLine != ~mem::Addr(0))
        chip.setWatchLine(opts.watchLine);
    if (unsigned top_n = opts.profileTopN ? opts.profileTopN
                                          : (opts.statsJson ? 8u : 0u))
        chip.enableLineProfiler(top_n);
    if (opts.latency)
        chip.enableLatencyAccounting();

    std::optional<sim::TraceJsonWriter> trace_json;
    if (opts.traceJson) {
        trace_json.emplace(*opts.traceJson);
        chip.attachJson(&*trace_json);
    }

    kernel.setup(rt);

    sim::Tick period = opts.samplePeriod;
    if (period == 0 && opts.sampleOccupancy)
        period = 1000;
    if (period)
        chip.enableOccupancySampling(period);

    if (opts.progress)
        chip.setProgressHook(opts.progress);

    std::vector<sim::CoTask> workers;
    workers.reserve(chip.totalCores());
    for (unsigned c = 0; c < chip.totalCores(); ++c)
        workers.push_back(kernel.worker(runtime::Ctx(rt, chip.core(c))));
    for (auto &w : workers)
        w.start();
    setup.close();

    sim::Tick end = 0;
    try {
        end = chip.runUntilQuiescent();

        for (unsigned c = 0; c < workers.size(); ++c) {
            workers[c].rethrow();
            fatal_if(!workers[c].done(), kernel.name(), ": core ", c,
                     " did not finish (deadlock?) at cycle ", end);
        }

        if (opts.audit) {
            sim::HostProfiler::Scope hp(sim::HostProfiler::Phase::Audit);
            chip.auditNow(); // final pass over the quiesced machine
        }
    } catch (const std::exception &e) {
        dumpPostMortem(chip, kernel.name(), kernel.params().seed,
                       e.what());
        throw;
    }

    if (!opts.skipVerify) {
        sim::HostProfiler::Scope hp(sim::HostProfiler::Phase::Verify);
        kernel.verify(rt);
    }

    RunResult r;
    r.cycles = end;
    r.instructions = chip.totalInstructions();
    r.eventsRun = chip.totalEventsRun();
    r.msgs = chip.aggregateMessages();

    for (unsigned c = 0; c < chip.numClusters(); ++c) {
        arch::Cluster &cl = chip.cluster(c);
        r.flushIssued += cl.flushesIssued();
        r.flushUseful += cl.flushesUseful();
        r.invIssued += cl.invsIssued();
        r.invUseful += cl.invsUseful();
        r.l2Hits += cl.l2Hits();
        r.l2Misses += cl.l2Misses();
    }

    for (unsigned b = 0; b < chip.numBanks(); ++b) {
        arch::L3Bank &bank = chip.bank(b);
        r.transitions += bank.transitions();
        r.tableLookups += bank.tableLookups();
        r.tableCacheHits += bank.tableCache().hits();
        r.tableCacheMisses += bank.tableCache().misses();
        r.dirEvictions += bank.dirEvictions();
        r.atomics += bank.atomics();
        r.mergeConflicts += bank.mergeConflicts();
        r.dirInsertions += bank.dirInsertions();
        r.dirPeak += bank.dirPeakEntries();
        r.l3Hits += bank.l3Hits();
        r.l3Misses += bank.l3Misses();
    }

    if (period) {
        r.dirAvgTotal = chip.occupancyAverageTotal();
        r.dirMax = chip.occupancyMax();
        for (unsigned s = 0; s < arch::numSegments; ++s) {
            r.dirAvgBySegment[s] =
                chip.occupancyAverage(static_cast<arch::Segment>(s));
        }
        r.timeSeries = chip.timeSeries().data();
    }

    r.seed = kernel.params().seed;
    r.faultSeed = chip.faults().enabled() ? chip.faults().seed() : 0;
    r.faultsInjected = chip.faults().totalInjected();
    r.faultsRecovered = chip.faults().totalRecovered();

    r.dramAccesses = chip.dram().totalAccesses();
    r.fabricBytes = chip.fabric().bytesUp() + chip.fabric().bytesDown();

    for (unsigned c = 0; c < arch::numMsgClasses; ++c)
        r.reqRetries[c] = chip.reqRetries(static_cast<arch::MsgClass>(c));
    r.respRetries = chip.respRetries();

    if (chip.recorder().enabled()) {
        sim::HostProfiler::Scope hp(
            sim::HostProfiler::Phase::TraceExport);
        r.recorderDump = chip.recorder().serialize();
        r.recorderRecorded = chip.recorder().recorded();
        if (!opts.recorderDumpPath.empty()) {
            std::ofstream out(opts.recorderDumpPath, std::ios::binary);
            fatal_if(!out, "cannot write recorder dump ",
                     opts.recorderDumpPath);
            out.write(r.recorderDump.data(),
                      static_cast<std::streamsize>(r.recorderDump.size()));
        }
    }

    if (chip.latencyOn())
        r.latency = chip.latAcc().fold();

    for (unsigned c = 0; c < arch::numMsgClasses; ++c)
        r.reqLatency[c] = chip.reqLatency(static_cast<arch::MsgClass>(c));
    r.respLatency = chip.respLatency();
    r.probeLatency = chip.probeLatency();
    r.fabricDelayUp = chip.fabric().delayUp();
    r.fabricDelayDown = chip.fabric().delayDown();

    if (opts.statsJson) {
        sim::HostProfiler::Scope hp(
            sim::HostProfiler::Phase::StatsExport);
        sim::StatRegistry reg;
        buildStatRegistry(_cfg, r, reg);
        chip.registerStats(reg);
        // host.* rides along in statsJson but is registered only
        // here, never by the chip: determinism goldens hash the chip
        // registry and must not see nondeterministic host timings.
        if (opts.hostProfile) {
            addHostStats(
                reg, sim::HostProfiler::threadSnapshot().since(prof0),
                wallSec());
        }
        // Wall-clock companion to chip.latency.*: registered only by
        // the runner (never the chip, same rule as host.*) so the
        // deterministic breakdown and the nondeterministic host timing
        // live under distinct prefixes ("latency.host_*" is in
        // cohesion-diff's default ignore set).
        if (opts.latency)
            reg.addScalar("latency.host_wall_sec", wallSec());
        reg.dumpJson(*opts.statsJson);
    }
    if (trace_json) {
        sim::HostProfiler::Scope hp(
            sim::HostProfiler::Phase::TraceExport);
        trace_json->finish();
        chip.attachJson(nullptr);
    }
    if (opts.hostProfile)
        r.hostProfile = sim::HostProfiler::threadSnapshot().since(prof0);
    r.hostWallSec = wallSec();
    return r;
}

} // namespace harness
