#include "harness/sweep.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <iostream>
#include <map>
#include <mutex>
#include <thread>

#include "coherence/auditor.hh"
#include "harness/progress.hh"
#include "harness/session.hh"
#include "kernels/registry.hh"
#include "sim/json.hh"
#include "sim/logging.hh"

namespace sim {

const char *
jobOutcomeName(JobOutcome o)
{
    switch (o) {
      case JobOutcome::Ok:
        return "ok";
      case JobOutcome::Audit:
        return "audit-error";
      case JobOutcome::Deadlock:
        return "deadlock-error";
      case JobOutcome::Panic:
        return "panic";
      case JobOutcome::Verify:
        return "verify-error";
      case JobOutcome::Unknown:
        return "unknown-error";
      case JobOutcome::Skipped:
        return "skipped";
    }
    return "?";
}

SweepEngine::SweepEngine(unsigned threads) : _threads(threads)
{
    if (_threads == 0) {
        _threads = std::thread::hardware_concurrency();
        if (_threads == 0)
            _threads = 1;
    }
}

JobResult
SweepEngine::runOne(const SweepJob &job, JobTelemetry *telemetry)
{
    JobResult r;
    r.label = job.label;
    if (telemetry)
        telemetry->state.store(JobTelemetry::Running,
                               std::memory_order_release);

    // Everything the machine prints — including the message of the
    // panic/fatal that kills it — lands in this job's private buffer,
    // so parallel failure dumps never interleave.
    LogCapture capture;
    auto t0 = std::chrono::steady_clock::now();
    try {
        r.run = telemetry && job.bodyT ? job.bodyT(telemetry)
                                       : job.body();
        r.outcome = JobOutcome::Ok;
    } catch (const coherence::AuditError &e) {
        r.outcome = JobOutcome::Audit;
        r.what = e.what();
    } catch (const arch::DeadlockError &e) {
        r.outcome = JobOutcome::Deadlock;
        r.what = e.what();
    } catch (const std::logic_error &e) {
        r.outcome = JobOutcome::Panic;
        r.what = e.what();
    } catch (const std::runtime_error &e) {
        r.outcome = JobOutcome::Verify;
        r.what = e.what();
    } catch (const std::exception &e) {
        r.outcome = JobOutcome::Unknown;
        r.what = e.what();
    } catch (...) {
        r.outcome = JobOutcome::Unknown;
        r.what = "non-std::exception thrown";
    }
    r.wallSec = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    r.log = capture.text();
    if (telemetry) {
        if (r.ok())
            telemetry->events.store(r.run.eventsRun,
                                    std::memory_order_relaxed);
        telemetry->state.store(r.ok() ? JobTelemetry::Done
                                      : JobTelemetry::Failed,
                               std::memory_order_release);
    }
    return r;
}

namespace {

/** One worker's job queue. Owner pops the front; thieves take the
 *  back, so a victim's locality (and the deal order) is preserved. */
struct WorkDeque
{
    std::mutex m;
    std::deque<std::size_t> q;

    bool
    popFront(std::size_t *idx)
    {
        std::lock_guard<std::mutex> g(m);
        if (q.empty())
            return false;
        *idx = q.front();
        q.pop_front();
        return true;
    }

    bool
    popBack(std::size_t *idx)
    {
        std::lock_guard<std::mutex> g(m);
        if (q.empty())
            return false;
        *idx = q.back();
        q.pop_back();
        return true;
    }
};

} // namespace

std::vector<JobResult>
SweepEngine::run(const std::vector<SweepJob> &jobs) const
{
    return run(jobs, SweepProgress{});
}

std::vector<JobResult>
SweepEngine::run(const std::vector<SweepJob> &jobs,
                 const SweepProgress &progress) const
{
    std::vector<JobResult> results(jobs.size());
    if (jobs.empty())
        return results;
    unsigned workers = _threads;
    if (workers > jobs.size())
        workers = static_cast<unsigned>(jobs.size());

    // Telemetry slots and the monitor that samples them. A deque so
    // the non-movable atomic slots construct in place. The monitor
    // strictly reads; the ETA feeds off completed-job wall times.
    const bool live = progress.enabled;
    std::deque<JobTelemetry> slots(live ? jobs.size() : 0);
    std::atomic<std::uint64_t> doneWallUs{0};

    auto stopping = [&]() {
        return progress.stop &&
               progress.stop->load(std::memory_order_acquire);
    };

    std::mutex done_mutex;
    std::vector<char> ran(jobs.size(), 0);
    auto execJob = [&](std::size_t idx) {
        JobTelemetry *t = live ? &slots[idx] : nullptr;
        results[idx] = runOne(jobs[idx], t);
        ran[idx] = 1;
        doneWallUs.fetch_add(
            static_cast<std::uint64_t>(results[idx].wallSec * 1e6),
            std::memory_order_relaxed);
        if (progress.onJobDone) {
            std::lock_guard<std::mutex> g(done_mutex);
            progress.onJobDone(idx, results[idx]);
        }
    };

    const auto t0 = std::chrono::steady_clock::now();
    auto makeBeat = [&](std::uint64_t *last_events,
                        std::chrono::steady_clock::time_point *last_t,
                        bool final) {
        harness::SweepBeat b;
        b.total = jobs.size();
        b.final = final;
        std::uint64_t events = 0;
        for (JobTelemetry &s : slots) {
            std::uint8_t st = s.state.load(std::memory_order_acquire);
            events += s.events.load(std::memory_order_relaxed);
            if (st == JobTelemetry::Done) {
                ++b.done;
            } else if (st == JobTelemetry::Failed) {
                ++b.done;
                ++b.failed;
            } else if (st == JobTelemetry::Running) {
                ++b.running;
            }
        }
        auto now = std::chrono::steady_clock::now();
        b.events = events;
        b.elapsedSec =
            std::chrono::duration<double>(now - t0).count();
        double dt =
            std::chrono::duration<double>(now - *last_t).count();
        b.eventsPerSec =
            dt > 0 ? static_cast<double>(events - *last_events) / dt : 0;
        *last_events = events;
        *last_t = now;
        if (b.done > 0 && !final) {
            double avg_wall =
                static_cast<double>(
                    doneWallUs.load(std::memory_order_relaxed)) /
                1e6 / static_cast<double>(b.done);
            b.etaSec = avg_wall *
                       static_cast<double>(b.total - b.done) /
                       static_cast<double>(workers ? workers : 1);
        }
        return b;
    };
    auto emit = [&](const harness::SweepBeat &b) {
        if (progress.human)
            harness::printSweepBeat(std::cerr, b);
        if (progress.jsonl)
            harness::writeSweepBeatJsonl(*progress.jsonl, b);
    };

    std::atomic<bool> stop_monitor{false};
    std::thread monitor;
    if (live) {
        monitor = std::thread([&]() {
            std::uint64_t last_events = 0;
            auto last_t = t0;
            auto next = t0 + std::chrono::duration<double>(
                                 progress.intervalSec);
            while (!stop_monitor.load(std::memory_order_acquire)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
                if (std::chrono::steady_clock::now() < next)
                    continue;
                emit(makeBeat(&last_events, &last_t, false));
                next += std::chrono::duration<double>(
                    progress.intervalSec);
            }
            // Final summary beat with everything accounted for.
            emit(makeBeat(&last_events, &last_t, true));
        });
    }

    if (workers <= 1) {
        // The bit-exact serial reference (--jobs 1).
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (stopping())
                break;
            execJob(i);
        }
    } else {
        // Deal jobs round-robin so every worker starts with a spread
        // of the submission order (adjacent jobs are often similar
        // cost).
        std::vector<WorkDeque> deques(workers);
        for (std::size_t i = 0; i < jobs.size(); ++i)
            deques[i % workers].q.push_back(i);

        std::atomic<std::size_t> remaining{jobs.size()};

        auto workerFn = [&](unsigned self) {
            for (;;) {
                if (stopping())
                    return; // finish nothing new; in-flight work done
                std::size_t idx;
                bool have = deques[self].popFront(&idx);
                for (unsigned v = 1; !have && v < workers; ++v)
                    have = deques[(self + v) % workers].popBack(&idx);
                if (!have) {
                    if (remaining.load(std::memory_order_acquire) == 0)
                        return;
                    // Queues are dry but a sibling is still running
                    // its last job; it cannot spawn more, so just
                    // wait it out.
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(200));
                    continue;
                }
                execJob(idx);
                remaining.fetch_sub(1, std::memory_order_acq_rel);
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(workerFn, w);
        for (std::thread &t : pool)
            t.join();
    }

    if (live) {
        stop_monitor.store(true, std::memory_order_release);
        monitor.join();
    }

    // Jobs a cooperative stop kept from ever starting report as
    // Skipped (with their label, so callers can resume them later).
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (!ran[i]) {
            results[i] = JobResult{};
            results[i].label = jobs[i].label;
            results[i].outcome = JobOutcome::Skipped;
        }
    }
    return results;
}

namespace {

harness::RunOptions
optsFor(const SweepPoint &p)
{
    harness::RunOptions opts;
    opts.sampleOccupancy = p.sampleOccupancy;
    opts.skipVerify = p.skipVerify;
    opts.audit = p.audit;
    opts.hostProfile = p.hostProfile;
    return opts;
}

/**
 * Process-global cache of warm-machine snapshots, keyed by everything
 * that shapes warm-up state. The first job with a given key simulates
 * the warm-up and publishes the snapshot; concurrent jobs with the
 * same key wait for it instead of redundantly re-simulating. A failed
 * build abandons the slot so a sibling can retry.
 */
class WarmupCache
{
  public:
    /** Returns the snapshot if ready; "" if the caller should build
     *  it (it then must publish() or abandon()). Blocks while another
     *  thread is building the same key. */
    std::string
    acquire(const std::string &key)
    {
        std::unique_lock<std::mutex> lk(_m);
        for (;;) {
            Slot &s = _slots[key];
            if (s.ready)
                return s.blob;
            if (!s.building) {
                s.building = true;
                return "";
            }
            _cv.wait(lk);
        }
    }

    void
    publish(const std::string &key, std::string blob)
    {
        std::lock_guard<std::mutex> lk(_m);
        Slot &s = _slots[key];
        s.blob = std::move(blob);
        s.ready = true;
        s.building = false;
        _cv.notify_all();
    }

    void
    abandon(const std::string &key)
    {
        std::lock_guard<std::mutex> lk(_m);
        _slots[key].building = false;
        _cv.notify_all();
    }

  private:
    struct Slot
    {
        bool building = false;
        bool ready = false;
        std::string blob;
    };

    std::mutex _m;
    std::condition_variable _cv;
    std::map<std::string, Slot> _slots;
};

WarmupCache &
warmupCache()
{
    static WarmupCache cache;
    return cache;
}

/** Everything that shapes the warm machine, folded into a cache key.
 *  Conservative: any field that could matter is included, so a
 *  collision can only happen between genuinely identical warm-ups. */
std::string
warmupKey(const SweepPoint &p)
{
    std::ostringstream os;
    os << p.kernel << '|' << p.params.seed << '|' << p.params.scale
       << '|' << p.warmupRuns << '|'
       << static_cast<unsigned>(p.cfg.mode) << '|' << p.cfg.numClusters
       << '|' << p.cfg.coresPerCluster << '|' << p.cfg.numL3Banks << '|'
       << p.cfg.numChannels << '|' << p.cfg.l1iBytes << '|'
       << p.cfg.l1iAssoc << '|' << p.cfg.l1dBytes << '|' << p.cfg.l1dAssoc
       << '|' << p.cfg.l2Bytes << '|' << p.cfg.l2Assoc << '|'
       << p.cfg.l3BankBytes << '|' << p.cfg.l3Assoc << '|'
       << p.cfg.l1Latency << '|' << p.cfg.l2Latency << '|'
       << p.cfg.l2Ports << '|' << p.cfg.l3Latency << '|' << p.cfg.l3Ports
       << '|' << p.cfg.netLatency << '|' << p.cfg.linkBytesPerCycle
       << '|' << p.cfg.dram.rowHit << '|' << p.cfg.dram.rowMiss << '|'
       << p.cfg.dram.burst << '|' << p.cfg.dram.writeRecovery << '|'
       << p.cfg.directory.entries << '|' << p.cfg.directory.assoc << '|'
       << static_cast<unsigned>(p.cfg.directory.sharerKind) << '|'
       << p.cfg.directory.pointers << '|' << p.cfg.backend << '|'
       << p.cfg.tableCacheEntries
       << '|' << p.cfg.useMesi << '|' << p.cfg.slackWindow << '|'
       << p.cfg.faults.seed << '|' << p.cfg.faults.pumpPeriod;
    for (const FaultSiteConfig &s : p.cfg.faults.sites)
        os << '|' << s.rate << ',' << s.max << ',' << s.delay;
    return os.str();
}

/** Run one declarative point: optional (cached) warm-up runs on a
 *  persistent machine, then the measured run. */
harness::RunResult
runPoint(const SweepPoint &p, const harness::RunOptions &opts)
{
    if (p.warmupRuns == 0) {
        return harness::runKernel(p.cfg, kernels::kernelFactory(p.kernel),
                                  p.params, opts);
    }
    kernels::KernelFactory factory = kernels::kernelFactory(p.kernel);
    harness::Session session(p.cfg, p.params.seed);
    const std::string key = warmupKey(p);
    std::string blob = warmupCache().acquire(key);
    if (!blob.empty()) {
        session.restore(blob);
    } else {
        try {
            harness::RunOptions wopts = opts;
            wopts.statsJson = nullptr;
            wopts.traceJson = nullptr;
            for (unsigned i = 0; i < p.warmupRuns; ++i) {
                auto kernel = factory(p.params);
                session.run(*kernel, wopts);
            }
            warmupCache().publish(key, session.checkpoint());
        } catch (...) {
            warmupCache().abandon(key);
            throw;
        }
    }
    auto kernel = factory(p.params);
    return session.run(*kernel, opts);
}

} // namespace

SweepJob
makeJob(const SweepPoint &p)
{
    SweepJob job;
    job.label = p.label;
    job.body = [p]() { return runPoint(p, optsFor(p)); };
    job.bodyT = [p](JobTelemetry *t) {
        harness::RunOptions opts = optsFor(p);
        // The hook only stores into the job's telemetry slot; the
        // monitor reads it. Nothing flows back into the simulation.
        opts.progress = [t](sim::Tick tick, std::uint64_t events) {
            t->tick.store(tick, std::memory_order_relaxed);
            t->events.store(events, std::memory_order_relaxed);
        };
        return runPoint(p, opts);
    };
    return job;
}

// --------------------------------------------------------------------
// Declarative spec
// --------------------------------------------------------------------

namespace {

bool
parseMode(std::string_view name, arch::CoherenceMode *out)
{
    if (name == "swcc") {
        *out = arch::CoherenceMode::SWccOnly;
    } else if (name == "hwcc") {
        *out = arch::CoherenceMode::HWccOnly;
    } else if (name == "cohesion") {
        *out = arch::CoherenceMode::Cohesion;
    } else {
        return false;
    }
    return true;
}

const char *
modeToken(arch::CoherenceMode m)
{
    switch (m) {
      case arch::CoherenceMode::SWccOnly:
        return "swcc";
      case arch::CoherenceMode::HWccOnly:
        return "hwcc";
      case arch::CoherenceMode::Cohesion:
        return "cohesion";
    }
    return "?";
}

bool
specFail(std::string *err, const std::string &why)
{
    if (err)
        *err = why;
    return false;
}

} // namespace

bool
SweepSpec::parse(std::string_view json_text, SweepSpec *out,
                 std::string *err)
{
    JsonValue doc;
    std::string perr;
    if (!parseJson(json_text, &doc, &perr))
        return specFail(err, "sweep spec: " + perr);
    if (!doc.isObject())
        return specFail(err, "sweep spec: top level must be an object");

    SweepSpec spec;

    if (const JsonValue *m = doc.find("machine")) {
        if (!m->isObject())
            return specFail(err, "sweep spec: machine must be an object");
        if (const JsonValue *v = m->find("clusters")) {
            if (!v->isNumber() || v->number < 1)
                return specFail(err, "sweep spec: machine.clusters must "
                                     "be a positive number");
            spec.clusters = static_cast<unsigned>(v->number);
        }
        if (const JsonValue *v = m->find("paper")) {
            if (!v->isBool())
                return specFail(err,
                                "sweep spec: machine.paper must be bool");
            spec.paper = v->boolean;
        }
        if (const JsonValue *v = m->find("scale")) {
            if (!v->isNumber() || v->number < 1)
                return specFail(err, "sweep spec: machine.scale must be "
                                     "a positive number");
            spec.scale = static_cast<unsigned>(v->number);
        }
    }

    if (const JsonValue *k = doc.find("kernels")) {
        if (!k->isArray())
            return specFail(err, "sweep spec: kernels must be an array");
        for (const JsonValue &v : k->arr) {
            if (!v.isString())
                return specFail(err,
                                "sweep spec: kernels entries are strings");
            if (v.str == "all") {
                for (const std::string &name : kernels::allKernelNames())
                    spec.kernels.push_back(name);
            } else if (!kernels::isKernelName(v.str)) {
                return specFail(err, "sweep spec: unknown kernel \"" +
                                         v.str + "\"");
            } else {
                spec.kernels.push_back(v.str);
            }
        }
    }

    if (const JsonValue *m = doc.find("modes")) {
        if (!m->isArray())
            return specFail(err, "sweep spec: modes must be an array");
        for (const JsonValue &v : m->arr) {
            arch::CoherenceMode mode;
            if (!v.isString() || !parseMode(v.str, &mode))
                return specFail(err, "sweep spec: unknown mode \"" +
                                         v.str + "\"");
            spec.modes.push_back(mode);
        }
    }

    if (const JsonValue *b = doc.find("backends")) {
        if (!b->isArray())
            return specFail(err, "sweep spec: backends must be an array");
        for (const JsonValue &v : b->arr) {
            if (!v.isString())
                return specFail(err,
                                "sweep spec: backends entries are strings");
            if (v.str == "all") {
                for (const std::string &name : coherence::backendNames())
                    spec.backends.push_back(name);
            } else if (!coherence::backendKnown(v.str)) {
                return specFail(err, "sweep spec: unknown backend \"" +
                                         v.str + "\" (registered: " +
                                         coherence::backendListString() +
                                         ")");
            } else {
                spec.backends.push_back(v.str);
            }
        }
    }

    if (const JsonValue *s = doc.find("seeds")) {
        if (!s->isArray())
            return specFail(err, "sweep spec: seeds must be an array");
        for (const JsonValue &v : s->arr) {
            if (!v.isNumber())
                return specFail(err,
                                "sweep spec: seeds entries are numbers");
            spec.seeds.push_back(static_cast<std::uint64_t>(v.number));
        }
    }

    if (const JsonValue *d = doc.find("directories")) {
        if (!d->isArray())
            return specFail(err,
                            "sweep spec: directories must be an array");
        for (const JsonValue &v : d->arr) {
            if (!v.isObject())
                return specFail(err,
                                "sweep spec: directory entries are objects");
            DirAxis axis;
            if (const JsonValue *l = v.find("label")) {
                if (!l->isString())
                    return specFail(err, "sweep spec: directory label "
                                         "must be a string");
                axis.label = l->str;
            }
            if (const JsonValue *e = v.find("entries")) {
                if (!e->isNumber() || e->number < 0)
                    return specFail(err, "sweep spec: directory entries "
                                         "must be a non-negative number");
                axis.dir.entries = static_cast<std::uint32_t>(e->number);
            }
            if (const JsonValue *a = v.find("assoc")) {
                if (!a->isNumber() || a->number < 0)
                    return specFail(err, "sweep spec: directory assoc "
                                         "must be a non-negative number");
                axis.dir.assoc = static_cast<std::uint32_t>(a->number);
            }
            if (const JsonValue *s = v.find("sharers")) {
                if (s->isString() && s->str == "dir4b") {
                    axis.dir.sharerKind = coherence::SharerKind::LimitedPtr;
                } else if (s->isString() && s->str == "fullmap") {
                    axis.dir.sharerKind = coherence::SharerKind::FullMap;
                } else {
                    return specFail(err, "sweep spec: directory sharers "
                                         "must be \"fullmap\" or "
                                         "\"dir4b\"");
                }
            }
            if (const JsonValue *p = v.find("pointers")) {
                if (!p->isNumber() || p->number < 1)
                    return specFail(err, "sweep spec: directory pointers "
                                         "must be a positive number");
                axis.dir.pointers = static_cast<unsigned>(p->number);
            }
            spec.dirs.push_back(std::move(axis));
        }
    }

    if (const JsonValue *f = doc.find("faults")) {
        if (!f->isArray())
            return specFail(err, "sweep spec: faults must be an array");
        for (const JsonValue &v : f->arr) {
            if (!v.isObject())
                return specFail(err,
                                "sweep spec: fault entries are objects");
            FaultAxis axis;
            if (const JsonValue *l = v.find("label")) {
                if (!l->isString())
                    return specFail(err, "sweep spec: fault label must "
                                         "be a string");
                axis.label = l->str;
            }
            if (const JsonValue *p = v.find("plan")) {
                if (!p->isObject())
                    return specFail(err, "sweep spec: fault plan must be "
                                         "an object (sim/fault.hh schema)");
                try {
                    axis.plan = FaultPlan::parse(p->dump());
                } catch (const std::exception &e) {
                    return specFail(err, e.what());
                }
            }
            spec.faults.push_back(std::move(axis));
        }
    }

    if (const JsonValue *o = doc.find("options")) {
        if (!o->isObject())
            return specFail(err, "sweep spec: options must be an object");
        if (const JsonValue *v = o->find("skip_verify")) {
            if (!v->isBool())
                return specFail(err, "sweep spec: options.skip_verify "
                                     "must be bool");
            spec.skipVerify = v->boolean;
        }
        if (const JsonValue *v = o->find("audit")) {
            if (!v->isBool())
                return specFail(err,
                                "sweep spec: options.audit must be bool");
            spec.audit = v->boolean;
        }
        if (const JsonValue *v = o->find("occupancy")) {
            if (!v->isBool())
                return specFail(err, "sweep spec: options.occupancy "
                                     "must be bool");
            spec.sampleOccupancy = v->boolean;
        }
        if (const JsonValue *v = o->find("table_cache")) {
            if (!v->isNumber() || v->number < 0)
                return specFail(err, "sweep spec: options.table_cache "
                                     "must be a non-negative number");
            spec.tableCacheEntries =
                static_cast<std::uint32_t>(v->number);
        }
        if (const JsonValue *v = o->find("warmup")) {
            if (!v->isNumber() || v->number < 0)
                return specFail(err, "sweep spec: options.warmup "
                                     "must be a non-negative number");
            spec.warmupRuns = static_cast<unsigned>(v->number);
        }
        if (const JsonValue *v = o->find("shards")) {
            if (!v->isNumber() || v->number < 1)
                return specFail(err, "sweep spec: options.shards "
                                     "must be a positive number");
            spec.shards = static_cast<unsigned>(v->number);
        }
    }

    if (spec.kernels.empty())
        return specFail(err,
                        "sweep spec: at least one kernel is required");

    *out = std::move(spec);
    return true;
}

std::vector<SweepPoint>
SweepSpec::expand() const
{
    // Singleton defaults for the axes the spec left empty.
    std::vector<arch::CoherenceMode> modes_eff =
        modes.empty()
            ? std::vector<arch::CoherenceMode>{arch::CoherenceMode::
                                                   Cohesion}
            : modes;
    std::vector<DirAxis> dirs_eff =
        dirs.empty() ? std::vector<DirAxis>{DirAxis{}} : dirs;
    std::vector<std::uint64_t> seeds_eff =
        seeds.empty() ? std::vector<std::uint64_t>{kernels::Params{}.seed}
                      : seeds;
    std::vector<FaultAxis> faults_eff =
        faults.empty() ? std::vector<FaultAxis>{FaultAxis{}} : faults;
    // An empty backend string keeps the legacy default (derived from
    // the directory's sharer kind) and keeps legacy labels unchanged.
    std::vector<std::string> backends_eff =
        backends.empty() ? std::vector<std::string>{std::string()}
                         : backends;

    arch::MachineConfig base = paper
                                   ? arch::MachineConfig::paper1024()
                                   : arch::MachineConfig::scaled(clusters);
    base.tableCacheEntries = tableCacheEntries;
    base.shards = shards;

    std::vector<SweepPoint> points;
    points.reserve(kernels.size() * modes_eff.size() * dirs_eff.size() *
                   backends_eff.size() * seeds_eff.size() *
                   faults_eff.size());
    for (const std::string &kernel : kernels) {
        for (arch::CoherenceMode mode : modes_eff) {
            for (const DirAxis &dir : dirs_eff) {
                for (const std::string &backend : backends_eff) {
                    for (std::uint64_t seed : seeds_eff) {
                        for (const FaultAxis &fault : faults_eff) {
                            SweepPoint p;
                            p.kernel = kernel;
                            p.cfg = base;
                            p.cfg.mode = mode;
                            p.cfg.directory = dir.dir;
                            p.cfg.backend = backend;
                            p.cfg.faults = fault.plan;
                            p.params.scale = scale;
                            p.params.seed = seed;
                            p.sampleOccupancy = sampleOccupancy;
                            p.skipVerify = skipVerify;
                            p.audit = audit;
                            p.warmupRuns = warmupRuns;
                            // The backend token appears only when the
                            // axis is in play, so legacy specs keep
                            // their labels (journals, baselines).
                            p.label =
                                backend.empty()
                                    ? cat(kernel, ".", modeToken(mode),
                                          ".", dir.label, ".s", seed, ".",
                                          fault.label)
                                    : cat(kernel, ".", modeToken(mode),
                                          ".", dir.label, ".", backend,
                                          ".s", seed, ".", fault.label);
                            points.push_back(std::move(p));
                        }
                    }
                }
            }
        }
    }
    return points;
}

} // namespace sim
