#include "harness/progress.hh"

#include <cmath>
#include <iostream>
#include <sstream>

namespace harness {

std::string
formatRate(double per_sec)
{
    std::ostringstream os;
    os.precision(3);
    if (per_sec >= 1e9)
        os << per_sec / 1e9 << "G";
    else if (per_sec >= 1e6)
        os << per_sec / 1e6 << "M";
    else if (per_sec >= 1e3)
        os << per_sec / 1e3 << "k";
    else
        os << per_sec;
    return os.str();
}

RunProgress::RunProgress(std::string label, std::ostream *jsonl,
                         bool human)
    : _label(std::move(label)), _jsonl(jsonl), _human(human),
      _start(clock::now()), _last(_start)
{
}

void
RunProgress::beat(std::uint64_t tick, std::uint64_t events)
{
    clock::time_point now = clock::now();
    double since_last =
        std::chrono::duration<double>(now - _last).count();
    double elapsed =
        std::chrono::duration<double>(now - _start).count();
    double rate = since_last > 0
                      ? static_cast<double>(events - _lastEvents) /
                            since_last
                      : 0;
    _last = now;
    _lastEvents = events;

    if (_human) {
        std::cerr << "progress: [" << _label << "] t=" << tick
                  << " events=" << events << ' ' << formatRate(rate)
                  << " ev/s\n";
    }
    if (_jsonl) {
        *_jsonl << "{\"type\":\"run\",\"label\":\"" << _label
                << "\",\"tick\":" << tick << ",\"events\":" << events
                << ",\"events_per_sec\":" << rate
                << ",\"elapsed_sec\":" << elapsed << "}\n";
        _jsonl->flush();
    }
}

void
printSweepBeat(std::ostream &os, const SweepBeat &b)
{
    os << "sweep: " << b.done << "/" << b.total << " done";
    if (b.failed)
        os << " (" << b.failed << " failed)";
    os << ", " << b.running << " running, " << formatRate(b.eventsPerSec)
       << " ev/s";
    if (b.final) {
        os << ", finished in " << std::round(b.elapsedSec * 10) / 10
           << "s";
    } else if (b.etaSec >= 0) {
        os << ", eta " << std::round(b.etaSec) << "s";
    }
    os << '\n';
}

void
writeSweepBeatJsonl(std::ostream &os, const SweepBeat &b)
{
    os << "{\"type\":\"sweep\",\"done\":" << b.done
       << ",\"failed\":" << b.failed << ",\"running\":" << b.running
       << ",\"total\":" << b.total << ",\"events\":" << b.events
       << ",\"events_per_sec\":" << b.eventsPerSec
       << ",\"elapsed_sec\":" << b.elapsedSec;
    if (b.etaSec >= 0)
        os << ",\"eta_sec\":" << b.etaSec;
    os << ",\"final\":" << (b.final ? "true" : "false") << "}\n";
    os.flush();
}

} // namespace harness
