/**
 * @file
 * Column-aligned text table used by every bench binary to print
 * paper-shaped rows (figures and tables from the evaluation).
 */

#ifndef COHESION_HARNESS_TABLE_HH
#define COHESION_HARNESS_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace harness {

class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    void print(std::ostream &os) const;

    /** Format a double with @p prec decimals. */
    static std::string fmt(double v, int prec = 2);
    /** Format a ratio as "1.23x". */
    static std::string fmtX(double v, int prec = 2);
    /** Format with thousands grouping. */
    static std::string fmtCount(double v);

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/** Print a section banner for a figure/table reproduction. */
void banner(std::ostream &os, const std::string &title);

} // namespace harness

#endif // COHESION_HARNESS_TABLE_HH
