#include "harness/hostprof.hh"

#include <algorithm>
#include <ostream>
#include <vector>

#include "sim/logging.hh"

namespace harness {

namespace {

using sim::HostProfiler;

constexpr double nsPerSec = 1e9;

double
secOf(std::uint64_t ns)
{
    return static_cast<double>(ns) / nsPerSec;
}

double
pctOf(std::uint64_t ns, double wall_sec)
{
    if (wall_sec <= 0)
        return 0;
    return 100.0 * secOf(ns) / wall_sec;
}

} // namespace

void
addHostStats(sim::StatRegistry &reg, const HostProfiler::Profile &p,
             double wall_sec)
{
    reg.addScalar("host.wall_sec", wall_sec);
    reg.addScalar("host.attributed_sec", secOf(p.attributedNs()));
    reg.addScalar("host.attributed_pct", pctOf(p.attributedNs(), wall_sec));
    reg.addScalar("host.sample_shift",
                  static_cast<double>(p.sampleShift));
    for (unsigned i = 1; i < HostProfiler::numPhases; ++i) {
        auto ph = static_cast<HostProfiler::Phase>(i);
        const HostProfiler::PhaseAcc &a = p[ph];
        if (!a.count)
            continue;
        std::string base = sim::cat("host.phase.", HostProfiler::phaseName(ph));
        reg.addScalar(base + ".sec", secOf(p.estNs(ph)));
        reg.addScalar(base + ".calls", static_cast<double>(a.count));
        reg.addScalar(base + ".pct", pctOf(p.estNs(ph), wall_sec));
    }
}

void
writeHostProfileJson(std::ostream &os, const HostProfiler::Profile &p,
                     double wall_sec, std::uint64_t events_run)
{
    using Phase = HostProfiler::Phase;

    // Rank phases by estimated time within each kind.
    std::vector<Phase> exact, sampled;
    for (unsigned i = 1; i < HostProfiler::numPhases; ++i) {
        auto ph = static_cast<Phase>(i);
        if (!p[ph].count)
            continue;
        (HostProfiler::phaseSampled(ph) ? sampled : exact).push_back(ph);
    }
    auto by_time = [&](Phase a, Phase b) { return p.estNs(a) > p.estNs(b); };
    std::sort(exact.begin(), exact.end(), by_time);
    std::sort(sampled.begin(), sampled.end(), by_time);

    const std::uint64_t dispatch_ns = p.estNs(Phase::EqDispatch);

    os << "{\n";
    os << "  \"schema\": \"cohesion-host-profile-v1\",\n";
    os << "  \"wall_sec\": " << wall_sec << ",\n";
    os << "  \"events_run\": " << events_run << ",\n";
    os << "  \"events_per_sec\": "
       << (wall_sec > 0 ? static_cast<double>(events_run) / wall_sec : 0)
       << ",\n";
    os << "  \"sample_shift\": " << p.sampleShift << ",\n";
    os << "  \"attributed_sec\": " << secOf(p.attributedNs()) << ",\n";
    os << "  \"attributed_pct\": " << pctOf(p.attributedNs(), wall_sec)
       << ",\n";

    // Exact phases tile the run: their seconds are measured, not
    // estimated, and sum to attributed_sec.
    os << "  \"phases\": [";
    bool first = true;
    for (Phase ph : exact) {
        os << (first ? "" : ",") << "\n    {\"name\": \""
           << HostProfiler::phaseName(ph) << "\", \"calls\": "
           << p[ph].count << ", \"sec\": " << secOf(p.estNs(ph))
           << ", \"pct_of_wall\": " << pctOf(p.estNs(ph), wall_sec)
           << "}";
        first = false;
    }
    os << "\n  ],\n";

    // Sampled per-component attribution of dispatch time: the
    // shard-parallelism ranking. Inclusive (a region-table scope under
    // a bank scope accrues to both), so entries can overlap and are
    // reported against eq.dispatch rather than summed.
    os << "  \"components\": [";
    first = true;
    for (Phase ph : sampled) {
        const HostProfiler::PhaseAcc &a = p[ph];
        double pct_dispatch =
            dispatch_ns ? 100.0 * static_cast<double>(p.estNs(ph)) /
                              static_cast<double>(dispatch_ns)
                        : 0;
        os << (first ? "" : ",") << "\n    {\"name\": \""
           << HostProfiler::phaseName(ph) << "\", \"calls\": " << a.count
           << ", \"timed\": " << a.timedCount
           << ", \"est_sec\": " << secOf(p.estNs(ph))
           << ", \"pct_of_dispatch\": " << pct_dispatch << "}";
        first = false;
    }
    os << "\n  ]\n";
    os << "}\n";
}

} // namespace harness
