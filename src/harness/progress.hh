/**
 * @file
 * Live-telemetry formatting shared by cohesion-sim and cohesion_sweep:
 * heartbeat lines describing a running simulation (tick, events,
 * events/sec) or a running campaign (jobs done/running, aggregate
 * event rate, ETA). Each beat is emitted in two forms — a human
 * one-liner on stderr and an optional machine-readable JSON line — so
 * a terminal user and a wrapping script read the same stream of
 * truth. Strictly observer: nothing here feeds back into simulation
 * state, so progress-enabled runs stay byte-identical.
 */

#ifndef COHESION_HARNESS_PROGRESS_HH
#define COHESION_HARNESS_PROGRESS_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace harness {

/** Format an event rate compactly ("1.43M", "980k", "73"). */
std::string formatRate(double per_sec);

/**
 * Heartbeat sink for one simulation run. Install beat() as the chip's
 * progress hook; each call prints
 *
 *   progress: [heat] t=482000 events=1520000 1.43M ev/s
 *
 * to stderr (when @p human) and, when @p jsonl is non-null, appends
 *
 *   {"type":"run","label":"heat","tick":482000,"events":1520000,
 *    "events_per_sec":...,"elapsed_sec":...}
 *
 * The rate is computed between consecutive beats.
 */
class RunProgress
{
  public:
    RunProgress(std::string label, std::ostream *jsonl, bool human = true);

    void beat(std::uint64_t tick, std::uint64_t events);

  private:
    using clock = std::chrono::steady_clock;

    std::string _label;
    std::ostream *_jsonl;
    bool _human;
    clock::time_point _start;
    clock::time_point _last;
    std::uint64_t _lastEvents = 0;
};

/** One observation of a whole campaign (built by the sweep monitor). */
struct SweepBeat
{
    std::size_t done = 0;
    std::size_t failed = 0;
    std::size_t running = 0;
    std::size_t total = 0;
    std::uint64_t events = 0; ///< aggregate over all jobs so far
    double elapsedSec = 0;
    double eventsPerSec = 0; ///< since the previous beat
    double etaSec = -1;      ///< negative: not yet estimable
    bool final = false;
};

/** Human one-liner, e.g.
 *  "sweep: 3/24 done (1 failed), 4 running, 5.2M ev/s, eta 42s". */
void printSweepBeat(std::ostream &os, const SweepBeat &b);

/** One JSON line ({"type":"sweep",...}), newline-terminated. */
void writeSweepBeatJsonl(std::ostream &os, const SweepBeat &b);

} // namespace harness

#endif // COHESION_HARNESS_PROGRESS_HH
