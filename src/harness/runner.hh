/**
 * @file
 * Experiment runner: builds a machine in a given configuration, boots
 * the runtime, executes a kernel to completion on every core, verifies
 * the result, and collects the statistics every figure of the paper is
 * derived from.
 */

#ifndef COHESION_HARNESS_RUNNER_HH
#define COHESION_HARNESS_RUNNER_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "arch/chip.hh"
#include "arch/machine_config.hh"
#include "kernels/kernel.hh"
#include "sim/host_profiler.hh"
#include "sim/timeseries.hh"
#include "sim/trace.hh"

namespace harness {

/** Everything the benches need from one simulation. */
struct RunResult
{
    sim::Tick cycles = 0;
    std::uint64_t instructions = 0;
    /** Discrete events fired by the run (simulator throughput metric). */
    std::uint64_t eventsRun = 0;

    arch::MsgCounters msgs; ///< L2 output messages by Fig. 2 class.

    // Fig. 3: SWcc coherence-instruction efficiency.
    std::uint64_t flushIssued = 0;
    std::uint64_t flushUseful = 0;
    std::uint64_t invIssued = 0;
    std::uint64_t invUseful = 0;

    // Fig. 9c: directory occupancy (time-averaged, 1000-cycle samples).
    double dirAvgTotal = 0;
    std::array<double, arch::numSegments> dirAvgBySegment{};
    double dirMax = 0;

    // Protocol activity.
    std::uint64_t transitions = 0;
    std::uint64_t tableLookups = 0;
    std::uint64_t tableCacheHits = 0;
    std::uint64_t tableCacheMisses = 0;
    std::uint64_t dirEvictions = 0;
    std::uint64_t atomics = 0;
    std::uint64_t mergeConflicts = 0;
    std::uint64_t dirInsertions = 0;
    std::uint64_t dirPeak = 0;

    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t l3Hits = 0;
    std::uint64_t l3Misses = 0;
    std::uint64_t dramAccesses = 0;
    std::uint64_t fabricBytes = 0;

    // Message-latency histograms (depart -> arrival through the fabric),
    // per Fig. 2 class plus responses and directory probes.
    std::array<sim::Histogram, arch::numMsgClasses> reqLatency{};
    sim::Histogram respLatency;
    sim::Histogram probeLatency;
    sim::Histogram fabricDelayUp;
    sim::Histogram fabricDelayDown;

    /** Sampled series (empty unless sampling was enabled). */
    sim::TimeSeriesData timeSeries;

    /** Effective workload seed (kernels::Params::seed). */
    std::uint64_t seed = 0;
    /** Effective fault seed (0 when fault injection was off). */
    std::uint64_t faultSeed = 0;
    std::uint64_t faultsInjected = 0;
    std::uint64_t faultsRecovered = 0;

    /** Fabric drops survived by delivered messages (fault injection),
     *  split by request class plus responses. */
    std::array<std::uint64_t, arch::numMsgClasses> reqRetries{};
    std::uint64_t respRetries = 0;

    /** Serialized flight-recorder ring (binary dump format; empty when
     *  the recorder was disabled). Deterministic for a deterministic
     *  run, so sweeps can compare dumps across --jobs values. */
    std::string recorderDump;
    /** Total events the recorder observed (wrapped ones included). */
    std::uint64_t recorderRecorded = 0;

    /** Host-side self-profile of this run (this thread's accumulation
     *  delta across runKernel; empty when RunOptions::hostProfile is
     *  off). Nondeterministic — never feed into golden hashes. */
    sim::HostProfiler::Profile hostProfile;
    /** Host wall-clock seconds spent inside runKernel (always set). */
    double hostWallSec = 0;

    /** Folded per-stage cycle-blame breakdown (all buckets zero unless
     *  RunOptions::latency was on). Deterministic and shard-count
     *  invariant — see DESIGN.md SS15. */
    sim::LatencyTotals latency;
};

/** Options controlling a run. New members go at the END: call sites
 *  aggregate-initialize the leading fields positionally. */
struct RunOptions
{
    /** Sample the directory every 1000 cycles (Fig. 9c). */
    bool sampleOccupancy = false;
    /** Skip numerical verification (sweep speed). */
    bool skipVerify = false;
    /** Debug-trace categories to enable (sim/trace.hh). */
    sim::Category traceMask = sim::Category::None;
    /** Time-series sampling period (0: 1000 iff sampleOccupancy). */
    sim::Tick samplePeriod = 0;
    /** Stream a Chrome trace-event JSON document here (not owned). */
    std::ostream *traceJson = nullptr;
    /** Dump the hierarchical stat registry as JSON here (not owned). */
    std::ostream *statsJson = nullptr;
    /** Run the coherence auditor (periodic passes + one final pass). */
    bool audit = true;
    /** Audit cadence in ticks (0: cost-scaled default). */
    sim::Tick auditPeriod = 0;
    /** Flight-recorder ring capacity in records (0 disables). The
     *  recorder is on by default so every failure has a post-mortem. */
    std::uint32_t recorderCapacity = 1u << 14;
    /** Write the binary recorder dump here after the run (empty: keep
     *  it only in RunResult::recorderDump). */
    std::string recorderDumpPath;
    /** Narrate every recorded event touching this line as it happens
     *  (~0: off). Matches the line containing the address. */
    mem::Addr watchLine = ~mem::Addr(0);
    /** Per-line sharing-pattern profiler top-N table size. 0 defers to
     *  the default: enabled (top 8) whenever statsJson is requested. */
    unsigned profileTopN = 0;
    /** Enable the host-side self-profiler (sim/host_profiler.hh):
     *  fills RunResult::hostProfile and adds the host.* subtree to
     *  statsJson. Strictly observer — simulated results are identical
     *  with it on or off. */
    bool hostProfile = false;
    /** Sampled-phase timing stride for the self-profiler: time one in
     *  2^shift occurrences (0 = time every one; tests use that). */
    unsigned hostSampleShift = sim::HostProfiler::defaultSampleShift;
    /** Live-progress heartbeat, invoked with (tick, events run) every
     *  ~0.25 s of host time while the machine runs (null: off). */
    arch::Chip::ProgressFn progress;
    /** Write a CCKPT1 machine snapshot here after the run completes
     *  (empty: off). See harness::Session. */
    std::string checkpointAt;
    /** Restore machine state from this CCKPT1 snapshot before running
     *  (empty: off). Throws sim::SnapshotError on a bad snapshot. */
    std::string restoreFrom;
    /** Intra-run parallelism: shard the machine's event processing
     *  across this many worker threads (0: keep cfg.shards; 1: serial).
     *  Results are bit-identical for every value — see DESIGN.md §13.
     *  Overrides MachineConfig::shards before the machine is built. */
    unsigned shards = 0;
    /** Enable per-transaction latency accounting (chip.latency.* stats
     *  and RunResult::latency). Observer-only: simulated results are
     *  byte-identical with it on or off. */
    bool latency = false;
};

/**
 * Run @p kernel on a machine configured by @p cfg.
 * Calls fatal() on deadlock or verification failure.
 */
RunResult runKernel(const arch::MachineConfig &cfg, kernels::Kernel &kernel,
                    const RunOptions &opts = {});

/** Convenience: build the kernel from a factory and run it. */
RunResult runKernel(const arch::MachineConfig &cfg,
                    kernels::KernelFactory factory,
                    const kernels::Params &params,
                    const RunOptions &opts = {});

} // namespace harness

#endif // COHESION_HARNESS_RUNNER_HH
