/**
 * @file
 * Full-statistics report for a single simulation (in the spirit of
 * gem5's stats.txt): machine configuration, runtime, instruction
 * counts, the complete L2-output message breakdown, cache hit rates,
 * SWcc instruction efficiency, directory activity and occupancy, DRAM
 * behaviour, and network bytes. Used by the cohesion-sim CLI driver
 * and available to any embedder.
 */

#ifndef COHESION_HARNESS_REPORT_HH
#define COHESION_HARNESS_REPORT_HH

#include <iosfwd>

#include "harness/runner.hh"

namespace harness {

/** Flatten a RunResult into named scalar statistics. */
sim::StatSet collectStats(const arch::MachineConfig &cfg,
                          const RunResult &r);

/** Print a human-readable report. */
void printReport(std::ostream &os, const arch::MachineConfig &cfg,
                 const RunResult &r);

/** Print `name,value` CSV lines (with a header) for post-processing. */
void printCsv(std::ostream &os, const arch::MachineConfig &cfg,
              const RunResult &r);

} // namespace harness

#endif // COHESION_HARNESS_REPORT_HH
