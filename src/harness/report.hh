/**
 * @file
 * Full-statistics report for a single simulation (in the spirit of
 * gem5's stats.txt): machine configuration, runtime, instruction
 * counts, the complete L2-output message breakdown, cache hit rates,
 * SWcc instruction efficiency, directory activity and occupancy, DRAM
 * behaviour, and network bytes. Used by the cohesion-sim CLI driver
 * and available to any embedder.
 */

#ifndef COHESION_HARNESS_REPORT_HH
#define COHESION_HARNESS_REPORT_HH

#include <iosfwd>

#include "harness/runner.hh"
#include "sim/stat_registry.hh"

namespace harness {

/**
 * Populate @p reg with every statistic derived from @p r: the legacy
 * flat scalar names (sim.cycles, l2_out.*, dir.*, ...) plus the typed
 * latency histograms. @p r must outlive any dump of @p reg (histogram
 * entries are registered by reference).
 */
void buildStatRegistry(const arch::MachineConfig &cfg, const RunResult &r,
                       sim::StatRegistry &reg);

/** Flatten a RunResult into named scalar statistics. */
sim::StatSet collectStats(const arch::MachineConfig &cfg,
                          const RunResult &r);

/** Dump the hierarchical stat registry as a JSON tree. */
void printJson(std::ostream &os, const arch::MachineConfig &cfg,
               const RunResult &r);

/** Print a human-readable report. */
void printReport(std::ostream &os, const arch::MachineConfig &cfg,
                 const RunResult &r);

/** Print `name,value` CSV lines (with a header) for post-processing. */
void printCsv(std::ostream &os, const arch::MachineConfig &cfg,
              const RunResult &r);

/**
 * "Where did the cycles go?" — print the top @p n most contended
 * (message class, stage) cells of @p r's latency-accounting breakdown,
 * plus a per-mode waterfall. Requires a run with RunOptions::latency.
 */
void printLatencyTopN(std::ostream &os, const RunResult &r, unsigned n);

} // namespace harness

#endif // COHESION_HARNESS_REPORT_HH
