#include "harness/runner.hh"

#include "harness/session.hh"

namespace harness {

RunResult
runKernel(const arch::MachineConfig &cfg, kernels::Kernel &kernel,
          const RunOptions &opts)
{
    arch::MachineConfig cfg_eff = cfg;
    if (opts.shards)
        cfg_eff.shards = opts.shards;
    Session session(cfg_eff, kernel.params().seed);
    if (!opts.restoreFrom.empty())
        session.restoreFrom(opts.restoreFrom);
    RunResult r = session.run(kernel, opts);
    if (!opts.checkpointAt.empty())
        session.checkpointTo(opts.checkpointAt);
    return r;
}

RunResult
runKernel(const arch::MachineConfig &cfg, kernels::KernelFactory factory,
          const kernels::Params &params, const RunOptions &opts)
{
    auto kernel = factory(params);
    return runKernel(cfg, *kernel, opts);
}

} // namespace harness
