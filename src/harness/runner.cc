#include "harness/runner.hh"

#include <optional>
#include <vector>

#include "harness/report.hh"
#include "runtime/ctx.hh"
#include "runtime/layout.hh"
#include "sim/logging.hh"
#include "sim/trace_json.hh"

namespace harness {

RunResult
runKernel(const arch::MachineConfig &cfg, kernels::Kernel &kernel,
          const RunOptions &opts)
{
    arch::MachineConfig cfg_eff = cfg;
    if (cfg_eff.faults.anyEnabled() && cfg_eff.faults.seed == 0) {
        // Chain the fault stream off the workload seed so one --seed
        // reproduces the entire run, faults included.
        cfg_eff.faults.seed =
            sim::deriveSeed(kernel.params().seed, "fault");
    }
    arch::Chip chip(cfg_eff, runtime::Layout::tableBase);
    chip.tracer().setMask(opts.traceMask);
    if (opts.audit)
        chip.enableAudit(opts.auditPeriod);
    runtime::CohesionRuntime rt(chip);

    std::optional<sim::TraceJsonWriter> trace_json;
    if (opts.traceJson) {
        trace_json.emplace(*opts.traceJson);
        chip.attachJson(&*trace_json);
    }

    kernel.setup(rt);

    sim::Tick period = opts.samplePeriod;
    if (period == 0 && opts.sampleOccupancy)
        period = 1000;
    if (period)
        chip.enableOccupancySampling(period);

    std::vector<sim::CoTask> workers;
    workers.reserve(chip.totalCores());
    for (unsigned c = 0; c < chip.totalCores(); ++c)
        workers.push_back(kernel.worker(runtime::Ctx(rt, chip.core(c))));
    for (auto &w : workers)
        w.start();

    sim::Tick end = chip.runUntilQuiescent();

    for (unsigned c = 0; c < workers.size(); ++c) {
        workers[c].rethrow();
        fatal_if(!workers[c].done(), kernel.name(), ": core ", c,
                 " did not finish (deadlock?) at cycle ", end);
    }

    if (opts.audit)
        chip.auditNow(); // final pass over the quiesced machine

    if (!opts.skipVerify)
        kernel.verify(rt);

    RunResult r;
    r.cycles = end;
    r.instructions = chip.totalInstructions();
    r.eventsRun = chip.eq().eventsRun();
    r.msgs = chip.aggregateMessages();

    for (unsigned c = 0; c < chip.numClusters(); ++c) {
        arch::Cluster &cl = chip.cluster(c);
        r.flushIssued += cl.flushesIssued();
        r.flushUseful += cl.flushesUseful();
        r.invIssued += cl.invsIssued();
        r.invUseful += cl.invsUseful();
        r.l2Hits += cl.l2Hits();
        r.l2Misses += cl.l2Misses();
    }

    for (unsigned b = 0; b < chip.numBanks(); ++b) {
        arch::L3Bank &bank = chip.bank(b);
        r.transitions += bank.transitions();
        r.tableLookups += bank.tableLookups();
        r.tableCacheHits += bank.tableCache().hits();
        r.tableCacheMisses += bank.tableCache().misses();
        r.dirEvictions += bank.dirEvictions();
        r.atomics += bank.atomics();
        r.mergeConflicts += bank.mergeConflicts();
        r.dirInsertions += bank.directory().insertions();
        r.dirPeak += bank.directory().peakEntries();
        r.l3Hits += bank.l3Hits();
        r.l3Misses += bank.l3Misses();
    }

    if (period) {
        r.dirAvgTotal = chip.occupancyAverageTotal();
        r.dirMax = chip.occupancyMax();
        for (unsigned s = 0; s < arch::numSegments; ++s) {
            r.dirAvgBySegment[s] =
                chip.occupancyAverage(static_cast<arch::Segment>(s));
        }
        r.timeSeries = chip.timeSeries().data();
    }

    r.seed = kernel.params().seed;
    r.faultSeed = chip.faults().enabled() ? chip.faults().seed() : 0;
    r.faultsInjected = chip.faults().totalInjected();
    r.faultsRecovered = chip.faults().totalRecovered();

    r.dramAccesses = chip.dram().totalAccesses();
    r.fabricBytes = chip.fabric().bytesUp() + chip.fabric().bytesDown();

    for (unsigned c = 0; c < arch::numMsgClasses; ++c)
        r.reqLatency[c] = chip.reqLatency(static_cast<arch::MsgClass>(c));
    r.respLatency = chip.respLatency();
    r.probeLatency = chip.probeLatency();
    r.fabricDelayUp = chip.fabric().delayUp();
    r.fabricDelayDown = chip.fabric().delayDown();

    if (opts.statsJson) {
        sim::StatRegistry reg;
        buildStatRegistry(cfg, r, reg);
        chip.registerStats(reg);
        reg.dumpJson(*opts.statsJson);
    }
    if (trace_json)
        trace_json->finish();
    return r;
}

RunResult
runKernel(const arch::MachineConfig &cfg, kernels::KernelFactory factory,
          const kernels::Params &params, const RunOptions &opts)
{
    auto kernel = factory(params);
    return runKernel(cfg, *kernel, opts);
}

} // namespace harness
