#include "harness/journal.hh"

#include <ostream>
#include <sstream>

#include "sim/json.hh"

namespace harness {

std::string
jobObjectJson(const sim::JobResult &r)
{
    std::ostringstream os;
    os << "{\"label\": ";
    sim::writeJsonString(os, r.label);
    os << ", \"outcome\": ";
    sim::writeJsonString(os, sim::jobOutcomeName(r.outcome));
    if (r.ok()) {
        os << ", \"cycles\": " << r.run.cycles
           << ", \"events\": " << r.run.eventsRun
           << ", \"instructions\": " << r.run.instructions
           << ", \"msgs\": " << r.run.msgs.total()
           << ", \"dir_evictions\": " << r.run.dirEvictions
           << ", \"l2_misses\": " << r.run.l2Misses
           << ", \"resp_p50\": " << r.run.respLatency.p50()
           << ", \"resp_p95\": " << r.run.respLatency.p95()
           << ", \"resp_p99\": " << r.run.respLatency.p99()
           << ", \"seed\": " << r.run.seed;
        if (r.run.faultSeed) {
            os << ", \"faults_injected\": " << r.run.faultsInjected
               << ", \"faults_recovered\": " << r.run.faultsRecovered;
        }
    } else {
        os << ", \"what\": ";
        sim::writeJsonString(os, r.what);
        os << ", \"log\": ";
        sim::writeJsonString(os, r.log);
    }
    os << "}";
    return os.str();
}

void
writeResultsDoc(std::ostream &os,
                const std::vector<std::string> &job_objects)
{
    os << "{\n  \"schema\": \"cohesion-sweep-results-v2\",\n"
       << "  \"jobs\": [\n";
    for (std::size_t i = 0; i < job_objects.size(); ++i) {
        os << "    " << job_objects[i]
           << (i + 1 < job_objects.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
}

bool
ResultsJournal::open(const std::string &path, std::string *err)
{
    bool fresh = false;
    {
        std::ifstream probe(path);
        fresh = !probe || probe.peek() == std::ifstream::traits_type::eof();
    }
    _out.open(path, std::ios::app);
    if (!_out) {
        if (err)
            *err = "cannot open journal " + path;
        return false;
    }
    if (fresh) {
        _out << "{\"schema\": \"cohesion-sweep-journal-v1\"}\n";
        _out.flush();
    }
    return true;
}

void
ResultsJournal::append(const std::string &label,
                       const std::string &job_object)
{
    _out << "{\"label\": ";
    sim::writeJsonString(_out, label);
    _out << ", \"job\": " << job_object << "}\n";
    // One job per line, flushed immediately: a kill between appends
    // costs at most the jobs still in flight.
    _out.flush();
}

bool
ResultsJournal::load(const std::string &path,
                     std::map<std::string, std::string> *out,
                     std::string *err)
{
    out->clear();
    std::ifstream in(path);
    if (!in)
        return true; // no journal yet: nothing to resume, not an error
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        sim::JsonValue doc;
        std::string perr;
        if (!sim::parseJson(line, &doc, &perr))
            continue; // truncated/garbled tail of a killed campaign
        if (!doc.isObject())
            continue;
        const sim::JsonValue *label = doc.find("label");
        const sim::JsonValue *job = doc.find("job");
        if (!label || !label->isString() || !job || !job->isObject())
            continue; // header line, or foreign content
        // Recover the job object *bytes* rather than re-dumping the
        // parsed value: byte-stability of resumed results depends on
        // replaying exactly what was journaled. The marker below
        // cannot occur inside the label literal (its quotes are
        // escaped), so the first match is the real field boundary.
        static const std::string marker = "\", \"job\": ";
        std::string::size_type pos = line.find(marker);
        if (pos == std::string::npos || line.back() != '}')
            continue;
        pos += marker.size();
        (*out)[label->str] = line.substr(pos, line.size() - pos - 1);
    }
    (void)err;
    return true;
}

} // namespace harness
