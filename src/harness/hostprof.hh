/**
 * @file
 * Export helpers for the host-side self-profiler: registering the
 * `host.*` stat subtree and writing the standalone `--host-profile`
 * JSON report. Kept separate from report.cc because everything here
 * describes the *simulator*, not the simulated machine, and must stay
 * segregated from determinism-sensitive statistics.
 */

#ifndef COHESION_HARNESS_HOSTPROF_HH
#define COHESION_HARNESS_HOSTPROF_HH

#include <cstdint>
#include <iosfwd>

#include "sim/host_profiler.hh"
#include "sim/stat_registry.hh"

namespace harness {

/**
 * Register the `host.*` subtree for @p p: wall time, attributed time,
 * and per-phase seconds/calls/percent-of-run. Only the runner calls
 * this, and only when the profiler is on — Chip::registerStats never
 * emits host stats, which is what keeps determinism golden hashes
 * (computed over the chip registry) independent of profiling.
 */
void addHostStats(sim::StatRegistry &reg,
                  const sim::HostProfiler::Profile &p, double wall_sec);

/**
 * Write the standalone host-profile report: per-phase totals, call
 * counts, percent-of-run, and the sampled per-component ranking the
 * roadmap's sharding work reads (sorted by estimated host time).
 */
void writeHostProfileJson(std::ostream &os,
                          const sim::HostProfiler::Profile &p,
                          double wall_sec, std::uint64_t events_run);

} // namespace harness

#endif // COHESION_HARNESS_HOSTPROF_HH
