/**
 * @file
 * Structured comparison of two statistics documents (the JSON trees
 * written by --stats-json, or whole sweep-results files). This is the
 * regression harness the sharding and backend-ablation work diffs
 * against: flatten both documents to dotted scalar paths, compare
 * under per-stat absolute/relative tolerances, and report every
 * added, removed and changed stat.
 *
 * Host-side self-observation (`host.*` subtrees, per-job `wall_sec`)
 * is nondeterministic by nature; paths matching the ignore list are
 * skipped so "byte-identical modulo host time" is expressible as
 * exit code 0.
 */

#ifndef COHESION_HARNESS_STATDIFF_HH
#define COHESION_HARNESS_STATDIFF_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/json.hh"

namespace harness {

/** One flattened statistic: dotted path + numeric value. Non-numeric
 *  leaves (strings, bools) compare by their serialized text. */
struct StatEntry
{
    std::string path;
    bool numeric = false;
    double value = 0;
    std::string text; ///< serialized form for non-numeric leaves
};

/** Flatten @p doc into sorted dotted-path leaves ("chip.bank0.l3.hits").
 *  Array elements use their index as a path segment. */
std::vector<StatEntry> flattenStats(const sim::JsonValue &doc);

struct DiffOptions
{
    double absTol = 0;  ///< |a-b| <= absTol passes
    double relTol = 0;  ///< |a-b| <= relTol * max(|a|,|b|) passes
    /** Path segments whose subtree is ignored entirely. Defaults to
     *  the nondeterministic host-side names. */
    std::vector<std::string> ignoreSegments{"host", "wall_sec"};
    /** Flattened-path prefixes ignored entirely. Defaults to the
     *  runner-side latency accounting wall-clock scalars
     *  (latency.host_wall_sec and friends) — the simulated
     *  latency.mode.* / latency.class.* breakdown is deterministic
     *  and deliberately NOT covered by this default. */
    std::vector<std::string> ignorePrefixes{"latency.host_"};
};

/** One difference between the two documents. */
struct DiffEntry
{
    enum class Kind { Added, Removed, Changed };
    Kind kind;
    std::string path;
    std::string before; ///< empty for Added
    std::string after;  ///< empty for Removed
    double absDelta = 0;
    double relDelta = 0;
};

struct DiffResult
{
    std::vector<DiffEntry> entries;
    std::size_t compared = 0; ///< leaves present in both and checked

    bool identical() const { return entries.empty(); }
};

/** Compare two parsed documents under @p opts. */
DiffResult diffStats(const sim::JsonValue &a, const sim::JsonValue &b,
                     const DiffOptions &opts = {});

/** Human-readable report, one line per difference plus a summary. */
void printDiff(std::ostream &os, const DiffResult &d,
               const std::string &label_a, const std::string &label_b);

} // namespace harness

#endif // COHESION_HARNESS_STATDIFF_HH
