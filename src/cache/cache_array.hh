/**
 * @file
 * Generic set-associative cache array with LRU replacement, real data
 * storage, per-word valid/dirty masks (required by the SWcc protocol's
 * write-allocate-without-fetch stores and by the L3's merge of
 * disjoint multi-writer lines), the MSI state used in the HWcc domain,
 * and the Cohesion incoherent bit. Used for L1I, L1D, the cluster L2,
 * and the L3 banks.
 */

#ifndef COHESION_CACHE_CACHE_ARRAY_HH
#define COHESION_CACHE_CACHE_ARRAY_HH

#include <array>
#include <bit>
#include <cstring>
#include <string>
#include <vector>

#include "mem/types.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace cache {

/**
 * Line-granular coherence state used in the HWcc domain.
 *
 * MSI is the paper's protocol (Section 3.2: E omitted "due to the high
 * cost of exclusive to shared downgrades for read-shared data");
 * Exclusive exists as a configurable extension so that decision can be
 * quantified (MachineConfig::useMesi, ablation 5).
 */
enum class CohState : std::uint8_t { Invalid, Shared, Exclusive, Modified };

const char *cohStateName(CohState s);

/** One cache line: tag, state bits, masks, and a copy of the data. */
struct Line
{
    bool valid = false;
    mem::Addr base = 0;               ///< Line base address (tag).
    CohState hwState = CohState::Invalid;
    bool incoherent = false;          ///< Cohesion incoherent (SWcc) bit.
    mem::WordMask validMask = 0;      ///< Per-word valid bits.
    mem::WordMask dirtyMask = 0;      ///< Per-word dirty bits.
    std::uint64_t lruStamp = 0;
    std::array<std::uint8_t, mem::lineBytes> data{};

    bool dirty() const { return dirtyMask != 0; }

    /** Drop all state (silent invalidation). */
    void
    reset()
    {
        valid = false;
        hwState = CohState::Invalid;
        incoherent = false;
        validMask = 0;
        dirtyMask = 0;
    }

    /** Read @p bytes (within this line) at @p a into @p out. */
    void
    read(mem::Addr a, void *out, unsigned bytes) const
    {
        panic_if(mem::lineBase(a) != base, "line read of foreign address");
        std::memcpy(out, data.data() + (a - base), bytes);
    }

    /** Write @p bytes at @p a, setting valid+dirty bits for the words. */
    void
    write(mem::Addr a, const void *src, unsigned bytes)
    {
        panic_if(mem::lineBase(a) != base, "line write of foreign address");
        std::memcpy(data.data() + (a - base), src, bytes);
        mem::WordMask m = mem::wordMaskFor(a, bytes);
        validMask |= m;
        dirtyMask |= m;
    }

    /**
     * Fill words from @p src (a full line image) for every word in
     * @p mask that is not already valid locally; never clobbers
     * locally written (dirty) words. Used when a fill response arrives
     * after the core already stored into the allocated line.
     */
    void
    fill(const std::uint8_t *src, mem::WordMask mask)
    {
        for (unsigned w = 0; w < mem::wordsPerLine; ++w) {
            mem::WordMask bit = mem::WordMask(1u << w);
            if ((mask & bit) && !(validMask & bit)) {
                std::memcpy(data.data() + w * mem::wordBytes,
                            src + w * mem::wordBytes, mem::wordBytes);
                validMask |= bit;
            }
        }
    }

    /** Fault injection: xor one bit of the line's data image. Does
     *  not touch the masks — a silent single-event upset. */
    void
    flipDataBit(unsigned bit)
    {
        bit %= mem::lineBytes * 8;
        data[bit / 8] ^= std::uint8_t(1u << (bit % 8));
    }

    /** Fault injection: xor one metadata bit — the first wordsPerLine
     *  indices address the dirty mask, the rest the valid mask. */
    void
    flipMetaBit(unsigned bit)
    {
        bit %= 2 * mem::wordsPerLine;
        if (bit < mem::wordsPerLine)
            dirtyMask ^= mem::WordMask(1u << bit);
        else
            validMask ^= mem::WordMask(1u << (bit - mem::wordsPerLine));
    }

    /**
     * Merge the words selected by @p mask from @p src into this line,
     * marking them valid and dirty. Used by the L3 to merge disjoint
     * write sets from multiple SWcc writers (Fig. 7b, case 4b).
     */
    void
    merge(const std::uint8_t *src, mem::WordMask mask)
    {
        for (unsigned w = 0; w < mem::wordsPerLine; ++w) {
            if (mask & (1u << w)) {
                std::memcpy(data.data() + w * mem::wordBytes,
                            src + w * mem::wordBytes, mem::wordBytes);
            }
        }
        validMask |= mask;
        dirtyMask |= mask;
    }
};

/** Set-associative tag/data array with true-LRU replacement. */
class CacheArray
{
  public:
    /**
     * @param name        Diagnostic name.
     * @param size_bytes  Total capacity (power of two).
     * @param assoc       Ways per set; clamped to the number of lines.
     */
    CacheArray(std::string name, std::uint32_t size_bytes, unsigned assoc)
        : _name(std::move(name))
    {
        fatal_if(size_bytes < mem::lineBytes, _name,
                 ": cache smaller than a line");
        fatal_if(!std::has_single_bit(size_bytes), _name,
                 ": cache size must be a power of two");
        std::uint32_t lines = size_bytes / mem::lineBytes;
        _assoc = assoc < lines ? assoc : lines;
        fatal_if(lines % _assoc != 0, _name,
                 ": lines not divisible by associativity");
        _numSets = lines / _assoc;
        fatal_if(!std::has_single_bit(_numSets), _name,
                 ": set count must be a power of two");
        _lines.resize(lines);
    }

    const std::string &name() const { return _name; }
    unsigned assoc() const { return _assoc; }
    std::uint32_t numSets() const { return _numSets; }
    std::uint32_t capacityBytes() const
    {
        return _lines.size() * mem::lineBytes;
    }

    /** Set index for a line base address. */
    std::uint32_t
    setIndex(mem::Addr base) const
    {
        return (base >> mem::lineShift) & (_numSets - 1);
    }

    /** Find the valid line holding @p base, or nullptr. */
    Line *
    probe(mem::Addr base)
    {
        base = mem::lineBase(base);
        Line *set = &_lines[setIndex(base) * _assoc];
        for (unsigned w = 0; w < _assoc; ++w) {
            if (set[w].valid && set[w].base == base)
                return &set[w];
        }
        return nullptr;
    }

    const Line *
    probe(mem::Addr base) const
    {
        return const_cast<CacheArray *>(this)->probe(base);
    }

    /** Mark @p line most-recently used. */
    void touch(Line &line) { line.lruStamp = ++_lruClock; }

    /**
     * Pick the replacement victim in @p base's set: an invalid way if
     * one exists, otherwise the LRU way. The caller must clean up a
     * valid victim (writeback / directory notification) and then call
     * claim() to install the new tag.
     */
    Line &
    victim(mem::Addr base)
    {
        base = mem::lineBase(base);
        Line *set = &_lines[setIndex(base) * _assoc];
        Line *best = &set[0];
        for (unsigned w = 0; w < _assoc; ++w) {
            if (!set[w].valid)
                return set[w];
            if (set[w].lruStamp < best->lruStamp)
                best = &set[w];
        }
        return *best;
    }

    /** Install @p base into @p line (which must already be clean). */
    void
    claim(Line &line, mem::Addr base)
    {
        panic_if(line.valid, "claiming a line that is still valid");
        line.reset();
        line.valid = true;
        line.base = mem::lineBase(base);
        touch(line);
    }

    /** First line of @p base's set (the set spans assoc() lines). */
    Line *
    setFor(mem::Addr base)
    {
        return &_lines[setIndex(mem::lineBase(base)) * _assoc];
    }

    /** Apply @p fn to every valid line (e.g., broadcast clean scans). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn)
    {
        for (auto &line : _lines) {
            if (line.valid)
                fn(line);
        }
    }

    /** Number of currently valid lines. */
    std::uint32_t
    validLines() const
    {
        std::uint32_t n = 0;
        for (const auto &line : _lines)
            n += line.valid ? 1 : 0;
        return n;
    }

    /** The (n mod validLines())-th valid line in array order, or
     *  nullptr when the array is empty (fault-pump victim pick). */
    Line *
    nthValidLine(std::uint64_t n)
    {
        std::uint32_t count = validLines();
        if (count == 0)
            return nullptr;
        std::uint64_t want = n % count;
        for (auto &line : _lines) {
            if (line.valid && want-- == 0)
                return &line;
        }
        return nullptr; // unreachable
    }

    /** Invalidate everything (test support). */
    void
    flushAll()
    {
        for (auto &line : _lines)
            line.reset();
    }

    /** Checkpoint hooks: every line (tags, states, masks, data, LRU
     *  stamps) plus the LRU clock, field by field — no struct memcpy,
     *  so padding bytes never leak into snapshots. */
    void
    checkpointState(sim::Serializer &ser) const
    {
        ser.tag("cache:" + _name);
        ser.u64(_lines.size());
        ser.u64(_lruClock);
        for (const Line &l : _lines) {
            ser.b(l.valid);
            ser.u32(l.base);
            ser.u8(static_cast<std::uint8_t>(l.hwState));
            ser.b(l.incoherent);
            ser.u8(l.validMask);
            ser.u8(l.dirtyMask);
            ser.u64(l.lruStamp);
            ser.bytes(l.data.data(), l.data.size());
        }
    }

    void
    restoreState(sim::Deserializer &des)
    {
        des.tag("cache:" + _name);
        if (des.u64() != _lines.size()) {
            throw sim::SnapshotError("snapshot geometry mismatch for " +
                                     _name);
        }
        _lruClock = des.u64();
        for (Line &l : _lines) {
            l.valid = des.b();
            l.base = des.u32();
            l.hwState = static_cast<CohState>(des.u8());
            l.incoherent = des.b();
            l.validMask = des.u8();
            l.dirtyMask = des.u8();
            l.lruStamp = des.u64();
            des.bytes(l.data.data(), l.data.size());
        }
    }

  private:
    std::string _name;
    unsigned _assoc;
    std::uint32_t _numSets;
    std::vector<Line> _lines;
    std::uint64_t _lruClock = 0;
};

} // namespace cache

#endif // COHESION_CACHE_CACHE_ARRAY_HH
