#include "cache/cache_array.hh"

namespace cache {

const char *
cohStateName(CohState s)
{
    switch (s) {
      case CohState::Invalid:
        return "I";
      case CohState::Shared:
        return "S";
      case CohState::Exclusive:
        return "E";
      case CohState::Modified:
        return "M";
    }
    return "?";
}

} // namespace cache
