/**
 * @file
 * The Cohesion runtime: the programmer-visible API of Table 2
 * (malloc / free / coh_malloc / coh_free / coh_SWcc_region /
 * coh_HWcc_region), boot-time region-table initialization
 * (Section 3.5), the barrier-synchronized task-queue programming
 * model the benchmarks use (Section 4.1), and SWcc-management policy
 * queries (which addresses need software flush/invalidate in the
 * current machine mode).
 */

#ifndef COHESION_RUNTIME_RUNTIME_HH
#define COHESION_RUNTIME_RUNTIME_HH

#include <cstdint>
#include <vector>

#include "arch/chip.hh"
#include "runtime/heap.hh"
#include "runtime/layout.hh"
#include "sim/cotask.hh"

namespace runtime {

/** A 16-byte task descriptor in the global work queue. */
struct TaskDesc
{
    std::uint32_t arg0 = 0;
    std::uint32_t arg1 = 0;
    std::uint32_t arg2 = 0;
    std::uint32_t arg3 = 0;
};

/**
 * Global barrier for all cores. Arrival is one uncached atomic
 * fetch-add at the counter's home bank (counted in the Uncached/
 * Atomic message class); release is a hardware-style wakeup broadcast
 * one network latency later. A fresh counter word is used per episode
 * so no reset traffic is needed.
 *
 * Shard safety: the winner is decided by the fetch-add's result at the
 * counter's home bank (bank-serialized, so exactly one arrival sees
 * old+1 == parties regardless of shard interleaving). All host-side
 * bookkeeping is partitioned by the shard that writes it — each core's
 * episode count is written only on its own cluster's shard, and the
 * parked-waiter lists and release counters are per cluster. The winner
 * broadcasts the release to every cluster's shard through the chip's
 * router (Chip::postBarrierWake), which is also what gives the wakeup
 * its one-network-latency timing.
 */
class Barrier
{
  public:
    Barrier(arch::Chip &chip, mem::Addr counter_base, unsigned parties)
        : _chip(chip), _counterBase(counter_base), _parties(parties),
          _coreEpisode(parties, 0), _waiting(chip.numClusters()),
          _released(chip.numClusters(), 0)
    {}

    /** Block @p core until all parties have arrived. */
    sim::CoTask wait(arch::Core &core);

    /** Completed episodes. Stable only at quiescence (between kernel
     *  phases every core agrees). */
    std::uint64_t episodes() const { return _episodesReleased; }

    /** Checkpoint hooks. The episode index picks the live counter word
     *  (a fresh word per episode, modulo the window), so it must
     *  survive a restore or post-restore barriers would reread a stale
     *  counter. No core may be parked at the barrier, and at a
     *  quiescent point all per-core/per-cluster views agree — the
     *  record stays the single episode word of the unsharded model. */
    void
    checkpointState(sim::Serializer &ser) const
    {
        ser.tag("barrier");
        for (const auto &w : _waiting) {
            if (!w.empty()) {
                throw sim::SnapshotError(
                    "checkpoint with cores parked at the barrier");
            }
        }
        std::uint64_t ep = _episodesReleased;
        for (std::uint64_t e : _coreEpisode) {
            if (e != ep) {
                throw sim::SnapshotError(
                    "checkpoint with barrier arrivals in flight");
            }
        }
        for (std::uint64_t r : _released) {
            if (r != ep) {
                throw sim::SnapshotError(
                    "checkpoint with barrier releases in flight");
            }
        }
        ser.u64(ep);
    }

    void
    restoreState(sim::Deserializer &des)
    {
        des.tag("barrier");
        std::uint64_t ep = des.u64();
        _episodesReleased = ep;
        for (std::uint64_t &e : _coreEpisode)
            e = ep;
        for (std::uint64_t &r : _released)
            r = ep;
        for (auto &w : _waiting)
            w.clear();
    }

  private:
    struct Waiter
    {
        arch::Core *core;
        std::uint64_t episode;
    };

    void releaseAll(std::uint64_t episode);

    arch::Chip &_chip;
    mem::Addr _counterBase;
    unsigned _parties;
    /** Episodes this barrier has released (winner-written; episodes
     *  are serialized in simulated time, so no two writes race). */
    std::uint64_t _episodesReleased = 0;
    std::vector<std::uint64_t> _coreEpisode;       ///< [global core id]
    std::vector<std::vector<Waiter>> _waiting;     ///< [cluster]
    std::vector<std::uint64_t> _released;          ///< [cluster]
};

/**
 * A barrier-phased global task queue: a set of phases, each an array
 * of task descriptors plus an uncached dequeue counter. Dequeue is a
 * single atomic fetch-add; descriptors are then read through the
 * normal cached path (read-shared data).
 */
class TaskQueue
{
  public:
    explicit TaskQueue(arch::Chip &chip) : _chip(chip) {}

    /** Create a phase from @p tasks; returns the phase id. Descriptors
     *  are installed untimed at setup (see DESIGN.md). @p desc_region
     *  is the simulated address to place descriptors at. */
    unsigned addPhase(const std::vector<TaskDesc> &tasks,
                      mem::Addr desc_region, mem::Addr counter_addr);

    unsigned numPhases() const { return _phases.size(); }
    std::uint32_t phaseTasks(unsigned p) const
    {
        return _phases.at(p).count;
    }

    /**
     * Pop the next task of phase @p p. Sets *@p got to false when the
     * phase is exhausted, else fills *@p out.
     */
    sim::CoTask pop(arch::Core &core, unsigned p, TaskDesc *out, bool *got);

    /** Checkpoint hooks: phase descriptors are simulated-memory
     *  pointers plus counts — plain data, no coroutine state. */
    void
    checkpointState(sim::Serializer &ser) const
    {
        ser.tag("taskqueue");
        ser.u64(_phases.size());
        for (const Phase &p : _phases) {
            ser.u32(p.counter);
            ser.u32(p.descs);
            ser.u32(p.count);
        }
    }

    void
    restoreState(sim::Deserializer &des)
    {
        des.tag("taskqueue");
        _phases.clear();
        std::uint64_t n = des.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            Phase p;
            p.counter = des.u32();
            p.descs = des.u32();
            p.count = des.u32();
            _phases.push_back(p);
        }
    }

  private:
    struct Phase
    {
        mem::Addr counter = 0;
        mem::Addr descs = 0;
        std::uint32_t count = 0;
    };

    arch::Chip &_chip;
    std::vector<Phase> _phases;
};

/** The runtime proper. One instance per simulated machine. */
class CohesionRuntime
{
  public:
    explicit CohesionRuntime(arch::Chip &chip);

    arch::Chip &chip() { return _chip; }
    Barrier &barrier() { return _barrier; }
    TaskQueue &taskQueue() { return _queue; }

    // --- Table 2 API -----------------------------------------------------

    /** Allocate on the coherent heap: data is always HWcc. */
    mem::Addr malloc(std::uint32_t bytes) { return _cohHeap.alloc(bytes); }

    void free(mem::Addr a) { _cohHeap.free(a); }

    /**
     * Allocate on the incoherent heap: data may transition coherence
     * domains; the initial state is SWcc and the data is not present
     * in any private cache. Minimum allocation is 64 bytes.
     */
    mem::Addr cohMalloc(std::uint32_t bytes)
    {
        return _incHeap.alloc(bytes);
    }

    void cohFree(mem::Addr a) { _incHeap.free(a); }

    /**
     * Move [ptr, ptr+size) into the SWcc domain: the issuing core
     * performs atom.or updates to the fine-grain table (one per
     * covered table word, addressed via the tbloff hash) and blocks
     * until the directory completes each transition.
     */
    sim::CoTask cohSWccRegion(arch::Core &core, mem::Addr ptr,
                              std::uint32_t size);

    /** Move [ptr, ptr+size) into the HWcc domain (atom.and updates). */
    sim::CoTask cohHWccRegion(arch::Core &core, mem::Addr ptr,
                              std::uint32_t size);

    // --- Policy queries ---------------------------------------------------

    /**
     * True if software must manage coherence (flush/invalidate) for
     * @p a in this machine mode: everything under SWcc-only, nothing
     * under HWcc-only, and SWcc-domain data (incoherent heap, stacks,
     * coarse regions) under Cohesion.
     */
    bool swccManaged(mem::Addr a) const;

    // --- Setup helpers ----------------------------------------------------

    /** Untimed scratch allocation in the metadata segment (counters,
     *  descriptor arrays); never recycled, so stale copies of a prior
     *  phase's metadata can never be observed. */
    mem::Addr metaAlloc(std::uint32_t bytes);

    /** Untimed write of @p v into simulated memory (workload setup). */
    template <typename T>
    void
    poke(mem::Addr a, T v)
    {
        _chip.debugWriteT(a, v);
    }

    template <typename T>
    T
    peek(mem::Addr a) const
    {
        return _chip.debugReadT<T>(a);
    }

    /** Coherent (hierarchy-aware) 32-bit read for verification. */
    std::uint32_t verifyRead32(mem::Addr a) { return _chip.coherentRead32(a); }

    /**
     * Checkpoint hooks for the runtime's own state: the three heaps
     * (so allocation addresses continue identically), the barrier
     * episode, and the task-queue phases. Boot-time region-table and
     * fine-table contents live in the chip snapshot. The chip itself
     * is checkpointed separately by the session.
     */
    void
    checkpointState(sim::Serializer &ser) const
    {
        ser.tag("runtime");
        _cohHeap.checkpointState(ser);
        _incHeap.checkpointState(ser);
        _metaHeap.checkpointState(ser);
        _barrier.checkpointState(ser);
        _queue.checkpointState(ser);
    }

    void
    restoreState(sim::Deserializer &des)
    {
        des.tag("runtime");
        _cohHeap.restoreState(des);
        _incHeap.restoreState(des);
        _metaHeap.restoreState(des);
        _barrier.restoreState(des);
        _queue.restoreState(des);
    }

    float
    verifyReadF32(mem::Addr a)
    {
        std::uint32_t v = verifyRead32(a);
        float f;
        static_assert(sizeof(f) == sizeof(v));
        __builtin_memcpy(&f, &v, sizeof(f));
        return f;
    }

  private:
    /** Boot: coarse regions, fine-table defaults, segment classifier. */
    void boot();

    sim::CoTask setRegionDomain(arch::Core &core, mem::Addr ptr,
                                std::uint32_t size, bool swcc);

    arch::Chip &_chip;
    Heap _cohHeap;
    Heap _incHeap;
    Heap _metaHeap;
    Barrier _barrier;
    TaskQueue _queue;
};

} // namespace runtime

#endif // COHESION_RUNTIME_RUNTIME_HH
