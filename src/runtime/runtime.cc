#include "runtime/runtime.hh"

#include "cohesion/region_table.hh"
#include "sim/trace_json.hh"

namespace runtime {

// --------------------------------------------------------------------
// Barrier
// --------------------------------------------------------------------

sim::CoTask
Barrier::wait(arch::Core &core)
{
    // Fresh counter word per episode: no reset message needed. The
    // episode index is tracked per core (written only on the core's
    // own shard); the winner is decided by the bank-serialized
    // fetch-add below, never by host-side state.
    unsigned id = core.globalId();
    std::uint64_t my_episode = _coreEpisode[id]++;
    fatal_if(my_episode >= 4096, "barrier episode window exhausted");
    mem::Addr counter =
        _counterBase + static_cast<mem::Addr>((my_episode % 4096) * 4);

    std::uint32_t old =
        co_await core.atomic(arch::AtomicOp::AddU32, counter, 1);

    if (old + 1 == _parties) {
        ++_episodesReleased;
        releaseAll(my_episode);
        co_return;
    }
    unsigned cl = id / _chip.config().coresPerCluster;
    if (_released[cl] > my_episode) {
        // Release reached this cluster while our arrival ack was in
        // flight.
        co_return;
    }
    _waiting[cl].push_back({&core, my_episode});
    co_await arch::MemOp::pending(core);
}

void
Barrier::releaseAll(std::uint64_t episode)
{
    TRACE(_chip.tracer(), sim::Category::Runtime, "barrier: episode ",
          episode + 1, " released");
    if (sim::TraceJsonWriter *w = _chip.tracer().json()) {
        w->instant(_chip.eq().now(), sim::TraceJsonWriter::machineTid,
                   sim::cat("barrier.release ep", episode + 1), "runtime");
    }
    sim::Tick when = _chip.eq().now() + _chip.config().netLatency;
    for (unsigned cl = 0; cl < _chip.numClusters(); ++cl) {
        _chip.postBarrierWake(cl, when, [this, cl, when]() {
            std::uint64_t upto = ++_released[cl];
            std::vector<arch::Core *> ready;
            auto &w = _waiting[cl];
            std::size_t keep = 0;
            for (std::size_t i = 0; i < w.size(); ++i) {
                if (w[i].episode < upto)
                    ready.push_back(w[i].core);
                else
                    w[keep++] = w[i];
            }
            w.resize(keep);
            for (arch::Core *c : ready) {
                c->advanceLocalTime(when);
                c->completeOp(0);
            }
        });
    }
}

// --------------------------------------------------------------------
// TaskQueue
// --------------------------------------------------------------------

unsigned
TaskQueue::addPhase(const std::vector<TaskDesc> &tasks,
                    mem::Addr desc_region, mem::Addr counter_addr)
{
    Phase p;
    p.counter = counter_addr;
    p.descs = desc_region;
    p.count = tasks.size();
    for (std::uint32_t i = 0; i < tasks.size(); ++i) {
        mem::Addr a = desc_region + i * sizeof(TaskDesc);
        _chip.debugWriteT(a + 0, tasks[i].arg0);
        _chip.debugWriteT(a + 4, tasks[i].arg1);
        _chip.debugWriteT(a + 8, tasks[i].arg2);
        _chip.debugWriteT(a + 12, tasks[i].arg3);
    }
    _chip.debugWriteT<std::uint32_t>(counter_addr, 0);
    _phases.push_back(p);
    return _phases.size() - 1;
}

sim::CoTask
TaskQueue::pop(arch::Core &core, unsigned p, TaskDesc *out, bool *got)
{
    const Phase &phase = _phases.at(p);
    std::uint32_t idx =
        co_await core.atomic(arch::AtomicOp::AddU32, phase.counter, 1);
    if (idx >= phase.count) {
        *got = false;
        co_return;
    }
    mem::Addr a = phase.descs + idx * sizeof(TaskDesc);
    out->arg0 = co_await core.load(a + 0);
    out->arg1 = co_await core.load(a + 4);
    out->arg2 = co_await core.load(a + 8);
    out->arg3 = co_await core.load(a + 12);
    *got = true;
}

// --------------------------------------------------------------------
// CohesionRuntime
// --------------------------------------------------------------------

CohesionRuntime::CohesionRuntime(arch::Chip &chip)
    : _chip(chip),
      _cohHeap("coherent-heap", Layout::cohHeapBase, Layout::cohHeapBytes),
      _incHeap("incoherent-heap", Layout::incHeapBase, Layout::incHeapBytes,
               64),
      _metaHeap("meta", Layout::metaBase, Layout::metaBytes),
      _barrier(chip, Layout::metaBase, chip.totalCores()),
      _queue(chip)
{
    // Reserve the barrier counter window claimed in the ctor above.
    _metaHeap.alloc(4096 * 4);
    boot();
}

void
CohesionRuntime::boot()
{
    // Coarse-grain SWcc regions: code, constant globals, stacks
    // (Section 3.5: "set for the code segment, the constant data
    // region, and the per-core stack region").
    auto &coarse = _chip.coarseTable();
    coarse.add(Layout::codeBase, Layout::codeBytes,
               cohesion::RegionKind::Code);
    coarse.add(Layout::globalBase, Layout::globalBytes,
               cohesion::RegionKind::Immutable);
    coarse.add(Layout::stackBase,
               _chip.totalCores() * Layout::stackBytesPerCore,
               cohesion::RegionKind::Stack);

    // Fine-grain table: zeroed at boot (all of memory defaults to
    // HWcc); the incoherent heap range starts SWcc (Section 3.6:
    // "the initial state of these lines is SWcc").
    if (_chip.cohesionEnabled()) {
        cohesion::fine_table::pokeRegion(_chip.store(), _chip.map(),
                                         Layout::incHeapBase,
                                         Layout::incHeapBytes, true);
    }

    _chip.setSegmentClassifier(
        [](mem::Addr a) { return Layout::classify(a); });
}

mem::Addr
CohesionRuntime::metaAlloc(std::uint32_t bytes)
{
    return _metaHeap.alloc(bytes);
}

bool
CohesionRuntime::swccManaged(mem::Addr a) const
{
    switch (_chip.config().mode) {
      case arch::CoherenceMode::SWccOnly:
        return true;
      case arch::CoherenceMode::HWccOnly:
        return false;
      case arch::CoherenceMode::Cohesion:
        break;
    }
    if (_incHeap.contains(a))
        return true;
    return _chip.coarseTable().contains(a);
}

sim::CoTask
CohesionRuntime::setRegionDomain(arch::Core &core, mem::Addr ptr,
                                 std::uint32_t size, bool swcc)
{
    if (!_chip.cohesionEnabled())
        co_return; // no tables in the pure modes

    const mem::AddressMap &map = _chip.map();
    mem::Addr a = mem::lineBase(ptr);
    const mem::Addr end = ptr + size;
    while (a < end) {
        // All lines within one 1 KB block share a table word; gather
        // their bits into a single atomic update (hybrid.tbloff gives
        // the word's address).
        mem::Addr block = a & ~mem::Addr(1023);
        std::uint32_t mask = 0;
        for (; a < end && (a & ~mem::Addr(1023)) == block;
             a += mem::lineBytes) {
            mask |= 1u << map.tableBitIndex(a);
        }
        mem::Addr word_addr = map.tableWordAddr(block);
        if (swcc) {
            co_await core.atomic(arch::AtomicOp::Or, word_addr, mask);
        } else {
            co_await core.atomic(arch::AtomicOp::And, word_addr, ~mask);
        }
    }
}

sim::CoTask
CohesionRuntime::cohSWccRegion(arch::Core &core, mem::Addr ptr,
                               std::uint32_t size)
{
    co_await setRegionDomain(core, ptr, size, true);
}

sim::CoTask
CohesionRuntime::cohHWccRegion(arch::Core &core, mem::Addr ptr,
                               std::uint32_t size)
{
    co_await setRegionDomain(core, ptr, size, false);
}

} // namespace runtime
