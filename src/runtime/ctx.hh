/**
 * @file
 * Kernel execution context: the per-core view of the machine handed
 * to benchmark worker coroutines. Wraps the core's architectural
 * operations with typed helpers, region-granular SWcc management
 * (flush/invalidate loops plus the drain fence), barrier and
 * task-queue access, and the mode-policy query that lets one kernel
 * source serve the SWcc, HWcc, and Cohesion configurations.
 */

#ifndef COHESION_RUNTIME_CTX_HH
#define COHESION_RUNTIME_CTX_HH

#include <bit>
#include <functional>

#include "runtime/runtime.hh"
#include "sim/cotask.hh"

namespace runtime {

class Ctx
{
  public:
    Ctx(CohesionRuntime &rt, arch::Core &core)
        : _rt(rt), _core(core)
    {}

    CohesionRuntime &rt() { return _rt; }
    arch::Core &core() { return _core; }
    unsigned coreId() const { return _core.globalId(); }
    unsigned numCores() const { return _rt.chip().totalCores(); }
    arch::CoherenceMode mode() const
    {
        return _rt.chip().config().mode;
    }

    /** This core's private stack region. */
    mem::Addr stack() const { return Layout::stackFor(_core.globalId()); }

    // --- Typed memory operations ---------------------------------------

    arch::MemOp load32(mem::Addr a) { return _core.load(a, 4); }
    arch::MemOp store32(mem::Addr a, std::uint32_t v)
    {
        return _core.store(a, v, 4);
    }

    arch::MemOp
    storeF32(mem::Addr a, float f)
    {
        return _core.store(a, std::bit_cast<std::uint32_t>(f), 4);
    }

    /** co_await yields the float (via bit pattern in the result). */
    arch::MemOp loadF32raw(mem::Addr a) { return _core.load(a, 4); }

    static float asF32(std::uint64_t bits)
    {
        return std::bit_cast<float>(static_cast<std::uint32_t>(bits));
    }

    arch::MemOp
    atomicAdd(mem::Addr a, std::uint32_t v)
    {
        return _core.atomic(arch::AtomicOp::AddU32, a, v);
    }

    arch::MemOp
    atomicAddF32(mem::Addr a, float v)
    {
        return _core.atomic(arch::AtomicOp::AddF32, a,
                            std::bit_cast<std::uint32_t>(v));
    }

    arch::MemOp
    atomicMinF32(mem::Addr a, float v)
    {
        return _core.atomic(arch::AtomicOp::MinF32, a,
                            std::bit_cast<std::uint32_t>(v));
    }

    arch::MemOp
    atomicCas(mem::Addr a, std::uint32_t expected, std::uint32_t desired)
    {
        return _core.atomic(arch::AtomicOp::Cas, a, desired, expected);
    }

    /** Model @p n single-issue compute instructions. */
    arch::MemOp compute(std::uint64_t n) { return _core.compute(n); }

    // --- SWcc management -------------------------------------------------

    /** True if software owns coherence for @p a in this mode. */
    bool swccManaged(mem::Addr a) const { return _rt.swccManaged(a); }

    /**
     * Eagerly write back [a, a+bytes) if software-managed: one flush
     * instruction per line (wasted instructions on absent lines are
     * the Fig. 3 inefficiency, reproduced faithfully).
     */
    sim::CoTask
    flushRegion(mem::Addr a, std::uint32_t bytes)
    {
        if (!swccManaged(a))
            co_return;
        mem::Addr end = a + bytes;
        for (mem::Addr p = mem::lineBase(a); p < end; p += mem::lineBytes)
            co_await _core.flushLine(p);
    }

    /** Lazily invalidate [a, a+bytes) if software-managed. */
    sim::CoTask
    invRegion(mem::Addr a, std::uint32_t bytes)
    {
        if (!swccManaged(a))
            co_return;
        mem::Addr end = a + bytes;
        for (mem::Addr p = mem::lineBase(a); p < end; p += mem::lineBytes)
            co_await _core.invLine(p);
    }

    /** Wait until the cluster's SWcc writebacks are globally visible. */
    arch::MemOp drain() { return _core.drainWrites(); }

    // --- Synchronization / tasking ----------------------------------------

    /** Global barrier; SWcc writebacks are drained first. */
    sim::CoTask
    barrier()
    {
        co_await _core.drainWrites();
        co_await _rt.barrier().wait(_core);
    }

    /** Pop the next task of @p phase (got=false when exhausted). */
    sim::CoTask
    nextTask(unsigned phase, TaskDesc *out, bool *got)
    {
        co_await _rt.taskQueue().pop(_core, phase, out, got);
    }

    /**
     * Dequeue-and-run every task of @p phase through @p body. The body
     * is a coroutine factory (copied into this frame, so capturing
     * worker-frame locals by reference is safe for the loop's
     * duration).
     *
     * Each dispatch saves and restores a callee-saved context frame at
     * the top of the core's stack, as a real runtime's indirect task
     * call does — this is the stack residency Fig. 9c accounts under
     * pure HWcc (and that Cohesion's coarse stack region exempts).
     */
    sim::CoTask
    forEachTask(unsigned phase,
                std::function<sim::CoTask(Ctx &, const TaskDesc &)> body)
    {
        constexpr unsigned frame_words = 40;
        const mem::Addr frame = stack() + Layout::stackBytesPerCore -
                                frame_words * mem::wordBytes;
        TaskDesc td;
        bool got = true;
        while (true) {
            co_await _rt.taskQueue().pop(_core, phase, &td, &got);
            if (!got)
                break;
            for (unsigned w = 0; w < frame_words; ++w)
                co_await store32(frame + w * 4, td.arg0 ^ (w * 0x9E37u));
            co_await body(*this, td);
            for (unsigned w = 0; w < frame_words; ++w)
                co_await load32(frame + w * 4);
        }
    }

    // --- Cohesion transitions ---------------------------------------------

    sim::CoTask
    toSWcc(mem::Addr a, std::uint32_t bytes)
    {
        co_await _rt.cohSWccRegion(_core, a, bytes);
    }

    sim::CoTask
    toHWcc(mem::Addr a, std::uint32_t bytes)
    {
        co_await _rt.cohHWccRegion(_core, a, bytes);
    }

  private:
    CohesionRuntime &_rt;
    arch::Core &_core;
};

} // namespace runtime

#endif // COHESION_RUNTIME_CTX_HH
