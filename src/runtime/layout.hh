/**
 * @file
 * Address-space layout used by the runtime (Section 3.5). A single
 * 32-bit physical address space holds the code segment, immutable
 * globals, per-core stacks, the conventional (coherent) heap, the
 * incoherent heap, runtime metadata (task-queue counters, barrier
 * counters), and the 16 MB fine-grain region table.
 */

#ifndef COHESION_RUNTIME_LAYOUT_HH
#define COHESION_RUNTIME_LAYOUT_HH

#include "arch/chip.hh"
#include "mem/types.hh"

namespace runtime {

struct Layout
{
    static constexpr mem::Addr codeBase = 0x0010'0000;
    static constexpr std::uint32_t codeBytes = 0x0010'0000; // 1 MB

    static constexpr mem::Addr globalBase = 0x0100'0000;
    static constexpr std::uint32_t globalBytes = 0x0100'0000; // 16 MB

    static constexpr mem::Addr stackBase = 0x1000'0000;
    static constexpr std::uint32_t stackBytesPerCore = 8 * 1024;

    static constexpr mem::Addr cohHeapBase = 0x2000'0000;
    static constexpr std::uint32_t cohHeapBytes = 0x1000'0000; // 256 MB

    static constexpr mem::Addr incHeapBase = 0x6000'0000;
    static constexpr std::uint32_t incHeapBytes = 0x1000'0000; // 256 MB

    /** Runtime metadata: queue counters, barrier counters. */
    static constexpr mem::Addr metaBase = 0xE000'0000;
    static constexpr std::uint32_t metaBytes = 0x0100'0000; // 16 MB

    /** Fine-grain region table (16 MB, 16 MB-aligned). */
    static constexpr mem::Addr tableBase = 0xF000'0000;

    static constexpr mem::Addr
    stackFor(unsigned core_id)
    {
        return stackBase + core_id * stackBytesPerCore;
    }

    /** Segment classification for Fig. 9c occupancy accounting. */
    static arch::Segment
    classify(mem::Addr a)
    {
        if (a >= codeBase && a < codeBase + codeBytes)
            return arch::Segment::Code;
        if (a >= stackBase && a < cohHeapBase)
            return arch::Segment::Stack;
        return arch::Segment::HeapGlobal;
    }
};

} // namespace runtime

#endif // COHESION_RUNTIME_LAYOUT_HH
