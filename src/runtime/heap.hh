/**
 * @file
 * Simple line-granular heap allocator over a simulated address range.
 * Two instances exist: the conventional coherent heap (libc-style
 * malloc/free; data always HWcc) and the incoherent heap (coh_malloc/
 * coh_free; minimum 64-byte allocation so allocator metadata can stay
 * coherent — Section 3.5).
 */

#ifndef COHESION_RUNTIME_HEAP_HH
#define COHESION_RUNTIME_HEAP_HH

#include <cstdint>
#include <map>
#include <string>

#include "mem/types.hh"
#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace runtime {

class Heap
{
  public:
    /**
     * @param name      Diagnostic name.
     * @param base      First managed address (line aligned).
     * @param size      Managed bytes.
     * @param min_alloc Minimum allocation granule (>= one line).
     */
    Heap(std::string name, mem::Addr base, std::uint32_t size,
         std::uint32_t min_alloc = mem::lineBytes)
        : _name(std::move(name)), _base(base), _limit(base + size),
          _minAlloc(min_alloc)
    {
        fatal_if(base & (mem::lineBytes - 1), _name,
                 ": heap base must be line aligned");
        fatal_if(min_alloc < mem::lineBytes, _name,
                 ": minimum allocation below line size");
        _free.emplace(base, size);
    }

    mem::Addr base() const { return _base; }
    mem::Addr limit() const { return _limit; }

    /** True if @p a points into this heap's range. */
    bool
    contains(mem::Addr a) const
    {
        return a >= _base && a < _limit;
    }

    /** Allocate @p bytes (rounded up to the granule); first-fit. */
    mem::Addr
    alloc(std::uint32_t bytes)
    {
        std::uint32_t need = roundUp(bytes);
        for (auto it = _free.begin(); it != _free.end(); ++it) {
            auto [start, size] = *it;
            if (size < need)
                continue;
            _free.erase(it);
            if (size > need)
                _free.emplace(start + need, size - need);
            _allocated.emplace(start, need);
            _bytesLive += need;
            if (_bytesLive > _peakBytes)
                _peakBytes = _bytesLive;
            return start;
        }
        fatal(_name, ": out of memory allocating ", bytes, " bytes");
    }

    /** Release a previous allocation (coalesces with neighbours). */
    void
    free(mem::Addr a)
    {
        auto it = _allocated.find(a);
        fatal_if(it == _allocated.end(), _name,
                 ": free of unallocated address 0x", std::hex, a);
        std::uint32_t size = it->second;
        _allocated.erase(it);
        _bytesLive -= size;

        auto [fit, ok] = _free.emplace(a, size);
        panic_if(!ok, "free block collision");
        // Coalesce forward.
        auto next = std::next(fit);
        if (next != _free.end() && fit->first + fit->second == next->first) {
            fit->second += next->second;
            _free.erase(next);
        }
        // Coalesce backward.
        if (fit != _free.begin()) {
            auto prev = std::prev(fit);
            if (prev->first + prev->second == fit->first) {
                prev->second += fit->second;
                _free.erase(fit);
            }
        }
    }

    std::uint32_t bytesLive() const { return _bytesLive; }
    std::uint32_t peakBytes() const { return _peakBytes; }
    std::size_t allocations() const { return _allocated.size(); }

    /** Checkpoint hooks. The free and allocated maps restore exactly,
     *  so first-fit allocations after a restore land at the same
     *  addresses as in an uninterrupted session — address-sensitive
     *  workloads stay bit-identical. */
    void
    checkpointState(sim::Serializer &ser) const
    {
        ser.tag("heap:" + _name);
        auto blocks = [&](const std::map<mem::Addr, std::uint32_t> &m) {
            ser.u64(m.size());
            for (const auto &[start, size] : m) {
                ser.u32(start);
                ser.u32(size);
            }
        };
        blocks(_free);
        blocks(_allocated);
        ser.u32(_bytesLive);
        ser.u32(_peakBytes);
    }

    void
    restoreState(sim::Deserializer &des)
    {
        des.tag("heap:" + _name);
        auto blocks = [&](std::map<mem::Addr, std::uint32_t> &m) {
            m.clear();
            std::uint64_t n = des.u64();
            for (std::uint64_t i = 0; i < n; ++i) {
                mem::Addr start = des.u32();
                std::uint32_t size = des.u32();
                m.emplace(start, size);
            }
        };
        blocks(_free);
        blocks(_allocated);
        _bytesLive = des.u32();
        _peakBytes = des.u32();
    }

  private:
    std::uint32_t
    roundUp(std::uint32_t bytes) const
    {
        if (bytes < _minAlloc)
            bytes = _minAlloc;
        return (bytes + mem::lineBytes - 1) & ~(mem::lineBytes - 1);
    }

    std::string _name;
    mem::Addr _base;
    mem::Addr _limit;
    std::uint32_t _minAlloc;
    std::map<mem::Addr, std::uint32_t> _free;      // start -> size
    std::map<mem::Addr, std::uint32_t> _allocated; // start -> size
    std::uint32_t _bytesLive = 0;
    std::uint32_t _peakBytes = 0;
};

} // namespace runtime

#endif // COHESION_RUNTIME_HEAP_HH
