/**
 * @file
 * Registry of the paper's eight benchmark kernels (Section 4.1):
 * cg, dmm, gjk, heat, kmeans, mri, sobel, stencil.
 */

#ifndef COHESION_KERNELS_REGISTRY_HH
#define COHESION_KERNELS_REGISTRY_HH

#include <string>
#include <vector>

#include "kernels/kernel.hh"

namespace kernels {

std::unique_ptr<Kernel> makeCg(const Params &params);
std::unique_ptr<Kernel> makeDmm(const Params &params);
std::unique_ptr<Kernel> makeGjk(const Params &params);
std::unique_ptr<Kernel> makeHeat(const Params &params);
std::unique_ptr<Kernel> makeKmeans(const Params &params);
std::unique_ptr<Kernel> makeMri(const Params &params);
std::unique_ptr<Kernel> makeSobel(const Params &params);
std::unique_ptr<Kernel> makeStencil(const Params &params);

/** Names in the paper's presentation order. */
const std::vector<std::string> &allKernelNames();

/** True if @p name is a registered kernel. */
bool isKernelName(const std::string &name);

/** Factory by name; fatal() on unknown names. */
KernelFactory kernelFactory(const std::string &name);

} // namespace kernels

#endif // COHESION_KERNELS_REGISTRY_HH
