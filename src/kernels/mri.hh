/**
 * @file
 * mri: non-Cartesian MRI reconstruction (the MRI-Q computation,
 * Section 4.1). For every voxel, accumulate cos/sin contributions of
 * all k-space samples — very high arithmetic intensity, so execution
 * efficiency rather than coherence dominates (paper Section 4.5).
 */

#ifndef COHESION_KERNELS_MRI_HH
#define COHESION_KERNELS_MRI_HH

#include <vector>

#include "kernels/kernel.hh"

namespace kernels {

class MriKernel : public Kernel
{
  public:
    explicit MriKernel(const Params &params);

    const char *name() const override { return "mri"; }
    void setup(runtime::CohesionRuntime &rt) override;
    sim::CoTask worker(runtime::Ctx ctx) override;
    void verify(runtime::CohesionRuntime &rt) override;

  private:
    sim::CoTask voxelTask(runtime::Ctx &ctx, runtime::TaskDesc td);

    std::uint32_t _numSamples = 0;
    std::uint32_t _numVoxels = 0;
    mem::Addr _ksp = 0;    ///< K-space: (kx, ky, kz, phi) per sample.
    mem::Addr _vox = 0;    ///< Voxels: (x, y, z) per voxel.
    mem::Addr _qr = 0;     ///< Output real part.
    mem::Addr _qi = 0;     ///< Output imaginary part.
    std::vector<float> _hostKsp;
    std::vector<float> _hostVox;
    unsigned _phase = 0;
};

std::unique_ptr<Kernel> makeMri(const Params &params);

} // namespace kernels

#endif // COHESION_KERNELS_MRI_HH
