#include "kernels/stencil.hh"

#include <cmath>

#include "sim/logging.hh"

namespace kernels {

StencilKernel::StencilKernel(const Params &params) : Kernel(params)
{
    _n = 14 * params.scale;
    _iters = 4;
    _rng = sim::Rng(params.seed ^ 0x57E7C);
}

void
StencilKernel::setup(runtime::CohesionRuntime &rt)
{
    const std::uint32_t cells = _n * _n * _n;
    _a = rt.cohMalloc(cells * 4);
    _b = rt.cohMalloc(cells * 4);

    _init.resize(cells);
    for (std::uint32_t i = 0; i < cells; ++i) {
        _init[i] = static_cast<float>(_rng.range(0.0, 10.0));
        rt.poke<float>(_a + i * 4, _init[i]);
        rt.poke<float>(_b + i * 4, _init[i]);
    }

    unsigned cores = rt.chip().totalCores();
    std::uint32_t slabs = _n - 2;
    std::uint32_t chunk = std::max<std::uint32_t>(1, slabs / (2 * cores));
    _phases.clear();
    for (unsigned t = 0; t < _iters; ++t)
        _phases.push_back(addPhase(rt, chunkTasks(slabs, chunk)));
}

sim::CoTask
StencilKernel::slabTask(runtime::Ctx &ctx, runtime::TaskDesc td,
                        mem::Addr src, mem::Addr dst)
{
    const std::uint32_t first_z = td.arg0 + 1;
    const std::uint32_t slabs = td.arg1;
    const std::uint32_t n = _n;
    const std::uint32_t plane = n * n;

    if (ctx.swccManaged(src)) {
        co_await ctx.invRegion(src + (first_z - 1) * plane * 4,
                               (slabs + 2) * plane * 4);
    }

    for (std::uint32_t z = first_z; z < first_z + slabs; ++z) {
        for (std::uint32_t y = 1; y + 1 < n; ++y) {
            for (std::uint32_t x = 1; x + 1 < n; ++x) {
                mem::Addr c = src + idx(x, y, z) * 4;
                float xm = runtime::Ctx::asF32(
                    co_await ctx.load32(c - 4));
                float xp = runtime::Ctx::asF32(
                    co_await ctx.load32(c + 4));
                float ym = runtime::Ctx::asF32(
                    co_await ctx.load32(c - n * 4));
                float yp = runtime::Ctx::asF32(
                    co_await ctx.load32(c + n * 4));
                float zm = runtime::Ctx::asF32(
                    co_await ctx.load32(c - plane * 4));
                float zp = runtime::Ctx::asF32(
                    co_await ctx.load32(c + plane * 4));
                float cc = runtime::Ctx::asF32(co_await ctx.load32(c));
                co_await ctx.compute(9);
                float v = (1.0f / 7.0f) *
                          (xm + xp + ym + yp + zm + zp + cc);
                co_await ctx.storeF32(dst + idx(x, y, z) * 4, v);
            }
        }
    }

    if (ctx.swccManaged(dst)) {
        co_await ctx.flushRegion(dst + first_z * plane * 4,
                                 slabs * plane * 4);
    }
}

sim::CoTask
StencilKernel::worker(runtime::Ctx ctx)
{
    ctx.core().setCodeRegion(runtime::Layout::codeBase + 0x4000, 1024);
    for (unsigned t = 0; t < _iters; ++t) {
        mem::Addr src = (t % 2 == 0) ? _a : _b;
        mem::Addr dst = (t % 2 == 0) ? _b : _a;
        co_await ctx.forEachTask(
            _phases[t],
            [this, src, dst](runtime::Ctx &c,
                             const runtime::TaskDesc &td) {
                return slabTask(c, td, src, dst);
            });
        co_await ctx.barrier();
    }
}

void
StencilKernel::verify(runtime::CohesionRuntime &rt)
{
    const std::uint32_t n = _n;
    std::vector<float> cur = _init;
    std::vector<float> next = _init;
    for (unsigned t = 0; t < _iters; ++t) {
        for (std::uint32_t z = 1; z + 1 < n; ++z) {
            for (std::uint32_t y = 1; y + 1 < n; ++y) {
                for (std::uint32_t x = 1; x + 1 < n; ++x) {
                    next[idx(x, y, z)] =
                        (1.0f / 7.0f) *
                        (cur[idx(x - 1, y, z)] + cur[idx(x + 1, y, z)] +
                         cur[idx(x, y - 1, z)] + cur[idx(x, y + 1, z)] +
                         cur[idx(x, y, z - 1)] + cur[idx(x, y, z + 1)] +
                         cur[idx(x, y, z)]);
                }
            }
        }
        std::swap(cur, next);
    }

    mem::Addr result = (_iters % 2 == 0) ? _a : _b;
    for (std::uint32_t i = 0; i < n * n * n; ++i) {
        float got = rt.verifyReadF32(result + i * 4);
        float want = cur[i];
        // !(x <= t) so a NaN from an injected fault fails.
        fatal_if(!(std::fabs(got - want) <=
                   1e-3f + 1e-4f * std::fabs(want)),
                 "stencil mismatch at cell ", i, ": got ", got, " want ",
                 want);
    }
}

std::unique_ptr<Kernel>
makeStencil(const Params &params)
{
    return std::make_unique<StencilKernel>(params);
}

} // namespace kernels
