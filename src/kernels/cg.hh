/**
 * @file
 * cg: conjugate-gradient linear solver on a 2D-Laplacian sparse
 * system in CSR form (Section 4.1). Each iteration is three
 * barrier-separated phases (q = Ap with a p.q reduction; x/r update
 * with an r.r reduction; p update). Reductions use atomic
 * floating-point adds at the L3; scalars are fresh per iteration.
 */

#ifndef COHESION_KERNELS_CG_HH
#define COHESION_KERNELS_CG_HH

#include <vector>

#include "kernels/kernel.hh"

namespace kernels {

class CgKernel : public Kernel
{
  public:
    explicit CgKernel(const Params &params);

    const char *name() const override { return "cg"; }
    void setup(runtime::CohesionRuntime &rt) override;
    sim::CoTask worker(runtime::Ctx ctx) override;
    void verify(runtime::CohesionRuntime &rt) override;

  private:
    sim::CoTask initTask(runtime::Ctx &ctx, runtime::TaskDesc td);
    sim::CoTask matvecTask(runtime::Ctx &ctx, runtime::TaskDesc td,
                           unsigned iter);
    sim::CoTask xrTask(runtime::Ctx &ctx, runtime::TaskDesc td,
                       unsigned iter);
    sim::CoTask pTask(runtime::Ctx &ctx, runtime::TaskDesc td,
                      unsigned iter);

    // Scalar slots (one line per iteration): [pq, rnew].
    mem::Addr pqAddr(unsigned it) const
    {
        return _scalars + it * mem::lineBytes;
    }
    mem::Addr rnewAddr(unsigned it) const
    {
        return _scalars + it * mem::lineBytes + 4;
    }
    /** r.r entering iteration @p it (rr0 for it==0). */
    mem::Addr rrAddr(unsigned it) const
    {
        return it == 0 ? _rr0 : rnewAddr(it - 1);
    }

    std::uint32_t _grid = 0;
    std::uint32_t _n = 0;
    std::uint32_t _nnz = 0;
    unsigned _iters = 0;

    mem::Addr _rowPtr = 0;
    mem::Addr _colIdx = 0;
    mem::Addr _vals = 0;
    mem::Addr _x = 0;
    mem::Addr _r = 0;
    mem::Addr _p = 0;
    mem::Addr _q = 0;
    mem::Addr _scalars = 0;
    mem::Addr _rr0 = 0;

    std::vector<std::uint32_t> _hRowPtr;
    std::vector<std::uint32_t> _hColIdx;
    std::vector<float> _hVals;
    std::vector<float> _hB;

    unsigned _phaseInit = 0;
    std::vector<unsigned> _phaseMatvec;
    std::vector<unsigned> _phaseXr;
    std::vector<unsigned> _phaseP;
};

std::unique_ptr<Kernel> makeCg(const Params &params);

} // namespace kernels

#endif // COHESION_KERNELS_CG_HH
