/**
 * @file
 * heat: 2D Jacobi stencil kernel (see heat.cc).
 */

#ifndef COHESION_KERNELS_HEAT_HH
#define COHESION_KERNELS_HEAT_HH

#include <vector>

#include "kernels/kernel.hh"

namespace kernels {

class HeatKernel : public Kernel
{
  public:
    explicit HeatKernel(const Params &params);

    const char *name() const override { return "heat"; }
    void setup(runtime::CohesionRuntime &rt) override;
    sim::CoTask worker(runtime::Ctx ctx) override;
    void verify(runtime::CohesionRuntime &rt) override;

  private:
    sim::CoTask taskBody(runtime::Ctx &ctx, runtime::TaskDesc td,
                         mem::Addr src, mem::Addr dst);

    std::uint32_t _n = 0;
    unsigned _iters = 0;
    mem::Addr _a = 0;
    mem::Addr _b = 0;
    std::vector<float> _init;
    std::vector<unsigned> _phases;
};

std::unique_ptr<Kernel> makeHeat(const Params &params);

} // namespace kernels

#endif // COHESION_KERNELS_HEAT_HH
