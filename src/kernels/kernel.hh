/**
 * @file
 * Benchmark kernel interface. Each of the paper's eight kernels
 * (Section 4.1) implements this: untimed setup (input generation,
 * allocation, task-queue phase construction), a per-core worker
 * coroutine written in the barrier-synchronized task-queue model, and
 * numerical verification of the result after the run.
 *
 * One kernel source serves all machine modes: SWcc coherence actions
 * (flush/invalidate) are guarded by Ctx::swccManaged(), so the SWcc
 * and Cohesion variants issue them for software-managed data while
 * the HWcc variant issues none — exactly the paper's methodology.
 */

#ifndef COHESION_KERNELS_KERNEL_HH
#define COHESION_KERNELS_KERNEL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/ctx.hh"
#include "runtime/runtime.hh"
#include "sim/cotask.hh"
#include "sim/random.hh"

namespace kernels {

/** Workload scaling knobs shared by all kernels. */
struct Params
{
    /** Linear problem-size multiplier (1 = test-sized). */
    unsigned scale = 1;
    /** Deterministic input seed. */
    std::uint64_t seed = 12345;
};

class Kernel
{
  public:
    explicit Kernel(const Params &params) : _params(params) {}
    virtual ~Kernel() = default;

    virtual const char *name() const = 0;

    /** Untimed: allocate and initialize inputs, build queue phases. */
    virtual void setup(runtime::CohesionRuntime &rt) = 0;

    /** Per-core worker coroutine (ctx is copied into the frame). */
    virtual sim::CoTask worker(runtime::Ctx ctx) = 0;

    /** Check the computed result; calls fatal() on a mismatch. */
    virtual void verify(runtime::CohesionRuntime &rt) = 0;

    const Params &params() const { return _params; }

  protected:
    /** Allocate a queue phase in the metadata segment. */
    unsigned
    addPhase(runtime::CohesionRuntime &rt,
             const std::vector<runtime::TaskDesc> &tasks)
    {
        mem::Addr descs = rt.metaAlloc(
            std::max<std::uint32_t>(tasks.size(), 1) *
            sizeof(runtime::TaskDesc));
        mem::Addr counter = rt.metaAlloc(mem::lineBytes);
        return rt.taskQueue().addPhase(tasks, descs, counter);
    }

    /** Chunk [0, n) into per-task (begin, count) descriptors. */
    static std::vector<runtime::TaskDesc>
    chunkTasks(std::uint32_t n, std::uint32_t chunk,
               std::uint32_t arg2 = 0, std::uint32_t arg3 = 0)
    {
        std::vector<runtime::TaskDesc> out;
        for (std::uint32_t b = 0; b < n; b += chunk) {
            runtime::TaskDesc t;
            t.arg0 = b;
            t.arg1 = std::min(chunk, n - b);
            t.arg2 = arg2;
            t.arg3 = arg3;
            out.push_back(t);
        }
        return out;
    }

    Params _params;
    sim::Rng _rng{12345};
};

/** Factory signature used by the registry and the bench harnesses. */
using KernelFactory = std::unique_ptr<Kernel> (*)(const Params &);

} // namespace kernels

#endif // COHESION_KERNELS_KERNEL_HH
