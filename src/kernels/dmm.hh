/**
 * @file
 * dmm: blocked dense matrix multiply C = A x B (Section 4.1). Inputs
 * are immutable read-shared data; each task produces a block of C
 * rows and eagerly flushes it under software-managed coherence.
 */

#ifndef COHESION_KERNELS_DMM_HH
#define COHESION_KERNELS_DMM_HH

#include <vector>

#include "kernels/kernel.hh"

namespace kernels {

class DmmKernel : public Kernel
{
  public:
    explicit DmmKernel(const Params &params);

    const char *name() const override { return "dmm"; }
    void setup(runtime::CohesionRuntime &rt) override;
    sim::CoTask worker(runtime::Ctx ctx) override;
    void verify(runtime::CohesionRuntime &rt) override;

  private:
    sim::CoTask tileTask(runtime::Ctx &ctx, runtime::TaskDesc td);

    std::uint32_t _n = 0;
    mem::Addr _a = 0;
    mem::Addr _b = 0;
    mem::Addr _c = 0;
    std::vector<float> _ha;
    std::vector<float> _hb;
    unsigned _phase = 0;
};

std::unique_ptr<Kernel> makeDmm(const Params &params);

} // namespace kernels

#endif // COHESION_KERNELS_DMM_HH
