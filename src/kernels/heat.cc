/**
 * @file
 * heat: 2D Jacobi stencil (Section 4.1). Two buffers alternate as
 * source and destination across barrier-separated iterations; each
 * task relaxes a block of interior rows. Under software-managed
 * coherence the task lazily invalidates the source rows it reads
 * (they were produced by other clusters last iteration) and eagerly
 * flushes the destination rows it wrote — the canonical TCMM idiom.
 */

#include "kernels/heat.hh"

#include <cmath>
#include <vector>

#include "sim/logging.hh"

namespace kernels {

HeatKernel::HeatKernel(const Params &params) : Kernel(params)
{
    _n = 48 * params.scale;
    _iters = 6;
    _rng = sim::Rng(params.seed);
}

void
HeatKernel::setup(runtime::CohesionRuntime &rt)
{
    const std::uint32_t cells = _n * _n;
    _a = rt.cohMalloc(cells * 4);
    _b = rt.cohMalloc(cells * 4);

    _init.resize(cells);
    for (std::uint32_t i = 0; i < cells; ++i) {
        _init[i] = static_cast<float>(_rng.range(0.0, 100.0));
        rt.poke<float>(_a + i * 4, _init[i]);
        rt.poke<float>(_b + i * 4, _init[i]); // boundary cells persist
    }

    // One phase per iteration over the interior rows.
    unsigned cores = rt.chip().totalCores();
    std::uint32_t rows = _n - 2;
    std::uint32_t chunk = std::max<std::uint32_t>(1, rows / (2 * cores));
    _phases.clear();
    for (unsigned t = 0; t < _iters; ++t)
        _phases.push_back(addPhase(rt, chunkTasks(rows, chunk)));
}

sim::CoTask
HeatKernel::taskBody(runtime::Ctx &ctx, runtime::TaskDesc td,
                     mem::Addr src, mem::Addr dst)
{
    const std::uint32_t first_row = td.arg0 + 1; // interior offset
    const std::uint32_t rows = td.arg1;
    const std::uint32_t n = _n;

    // Lazily invalidate the source rows (incl. halo) we are about to
    // read: other clusters produced them last iteration.
    if (ctx.swccManaged(src)) {
        co_await ctx.invRegion(src + (first_row - 1) * n * 4,
                               (rows + 2) * n * 4);
    }

    for (std::uint32_t r = first_row; r < first_row + rows; ++r) {
        for (std::uint32_t c = 1; c + 1 < n; ++c) {
            mem::Addr center = src + (r * n + c) * 4;
            float up = runtime::Ctx::asF32(
                co_await ctx.load32(center - n * 4));
            float down = runtime::Ctx::asF32(
                co_await ctx.load32(center + n * 4));
            float left = runtime::Ctx::asF32(
                co_await ctx.load32(center - 4));
            float right = runtime::Ctx::asF32(
                co_await ctx.load32(center + 4));
            co_await ctx.compute(6);
            float v = 0.25f * (up + down + left + right);
            co_await ctx.storeF32(dst + (r * n + c) * 4, v);
        }
    }

    // Eagerly write back the produced rows.
    if (ctx.swccManaged(dst))
        co_await ctx.flushRegion(dst + first_row * n * 4, rows * n * 4);
}

sim::CoTask
HeatKernel::worker(runtime::Ctx ctx)
{
    ctx.core().setCodeRegion(runtime::Layout::codeBase + 0x1000, 768);
    for (unsigned t = 0; t < _iters; ++t) {
        mem::Addr src = (t % 2 == 0) ? _a : _b;
        mem::Addr dst = (t % 2 == 0) ? _b : _a;
        co_await ctx.forEachTask(
            _phases[t],
            [this, src, dst](runtime::Ctx &c,
                             const runtime::TaskDesc &td) {
                return taskBody(c, td, src, dst);
            });
        co_await ctx.barrier();
    }
}

void
HeatKernel::verify(runtime::CohesionRuntime &rt)
{
    const std::uint32_t n = _n;
    std::vector<float> cur = _init;
    std::vector<float> next = _init;
    for (unsigned t = 0; t < _iters; ++t) {
        for (std::uint32_t r = 1; r + 1 < n; ++r) {
            for (std::uint32_t c = 1; c + 1 < n; ++c) {
                next[r * n + c] = 0.25f * (cur[(r - 1) * n + c] +
                                           cur[(r + 1) * n + c] +
                                           cur[r * n + c - 1] +
                                           cur[r * n + c + 1]);
            }
        }
        std::swap(cur, next);
    }

    mem::Addr result = (_iters % 2 == 0) ? _a : _b;
    for (std::uint32_t i = 0; i < n * n; ++i) {
        float got = rt.verifyReadF32(result + i * 4);
        float want = cur[i];
        // !(x <= t) so a NaN from an injected fault fails the check.
        fatal_if(!(std::fabs(got - want) <=
                   1e-3f + 1e-4f * std::fabs(want)),
                 "heat mismatch at cell ", i, ": got ", got, " want ",
                 want);
    }
}

std::unique_ptr<Kernel>
makeHeat(const Params &params)
{
    return std::make_unique<HeatKernel>(params);
}

} // namespace kernels
