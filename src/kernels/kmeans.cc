#include "kernels/kmeans.hh"

#include <cmath>

#include "sim/logging.hh"

namespace kernels {

KmeansKernel::KmeansKernel(const Params &params) : Kernel(params)
{
    _numPoints = 768 * params.scale;
    _iters = 3;
    _rng = sim::Rng(params.seed ^ 0x4EA45);
}

void
KmeansKernel::setup(runtime::CohesionRuntime &rt)
{
    // Points drawn around well-separated centers so assignments are
    // robust to reduction-order float differences.
    std::vector<std::array<float, kDims>> centers(kClusters);
    for (unsigned k = 0; k < kClusters; ++k) {
        for (unsigned d = 0; d < kDims; ++d)
            centers[k][d] = 20.0f * k + static_cast<float>(
                _rng.range(0.0, 4.0));
    }

    _points = rt.cohMalloc(_numPoints * kDims * 4);
    // Centroids are rewritten by the update phase and re-read by all
    // assign tasks: irregular sharing the Cohesion variant leaves HWcc.
    _centroids = rt.malloc(kClusters * kDims * 4);

    _hostPoints.resize(_numPoints * kDims);
    for (std::uint32_t p = 0; p < _numPoints; ++p) {
        unsigned k = p % kClusters;
        for (unsigned d = 0; d < kDims; ++d) {
            float v = centers[k][d] +
                      static_cast<float>(_rng.range(-2.0, 2.0));
            _hostPoints[p * kDims + d] = v;
            rt.poke<float>(pointAddr(p, d), v);
        }
    }

    _hostInitCentroids.resize(kClusters * kDims);
    for (unsigned k = 0; k < kClusters; ++k) {
        for (unsigned d = 0; d < kDims; ++d) {
            float v = _hostPoints[k * kDims + d]; // first points seed
            _hostInitCentroids[k * kDims + d] = v;
            rt.poke<float>(centroidAddr(k, d), v);
        }
    }

    unsigned cores = rt.chip().totalCores();
    std::uint32_t chunk =
        std::max<std::uint32_t>(4, _numPoints / (2 * cores));
    auto tasks = chunkTasks(_numPoints, chunk);
    _numTasks = tasks.size();
    // Tag each task with its own index for the partial-slot variant.
    for (std::uint32_t t = 0; t < tasks.size(); ++t)
        tasks[t].arg2 = t;

    // Global accumulators (fresh per iteration) and per-task slots.
    _sums = rt.malloc(_iters * kClusters * (kDims + 1) * 4);
    _slots = rt.malloc(_iters * _numTasks * kClusters * (kDims + 1) * 4);
    for (mem::Addr a = _sums;
         a < _sums + _iters * kClusters * (kDims + 1) * 4; a += 4) {
        rt.poke<std::uint32_t>(a, 0);
    }
    for (mem::Addr a = _slots;
         a < _slots + _iters * _numTasks * kClusters * (kDims + 1) * 4;
         a += 4) {
        rt.poke<std::uint32_t>(a, 0);
    }

    _assignPhases.clear();
    _updatePhases.clear();
    for (unsigned it = 0; it < _iters; ++it) {
        _assignPhases.push_back(addPhase(rt, tasks));
        _updatePhases.push_back(
            addPhase(rt, chunkTasks(kClusters, 1)));
    }
}

sim::CoTask
KmeansKernel::assignTask(runtime::Ctx &ctx, runtime::TaskDesc td,
                         unsigned iter)
{
    const std::uint32_t first = td.arg0;
    const std::uint32_t count = td.arg1;
    const std::uint32_t task_id = td.arg2;

    // Re-read the centroids produced by the previous update phase.
    if (ctx.swccManaged(_centroids))
        co_await ctx.invRegion(_centroids, kClusters * kDims * 4);

    // The centroid block exceeds the register file; spill it to the
    // per-core stack and read it back through the L1 in the distance
    // loop (stack residency is what Fig. 9c's stack segment counts).
    const mem::Addr spill = ctx.stack();
    for (unsigned k = 0; k < kClusters; ++k) {
        for (unsigned d = 0; d < kDims; ++d) {
            float v = runtime::Ctx::asF32(
                co_await ctx.load32(centroidAddr(k, d)));
            co_await ctx.storeF32(spill + (k * kDims + d) * 4, v);
        }
    }
    float cents[kClusters][kDims];
    for (unsigned k = 0; k < kClusters; ++k) {
        for (unsigned d = 0; d < kDims; ++d) {
            cents[k][d] = runtime::Ctx::asF32(
                co_await ctx.load32(spill + (k * kDims + d) * 4));
        }
    }

    // Atomic histogramming is the benchmark's native form (SWcc and
    // pure HWcc); only the Cohesion variant applies the paper's
    // "rely upon HWcc" optimization of pulling per-task partials.
    const bool atomic_variant =
        ctx.mode() != arch::CoherenceMode::Cohesion;
    float partial[kClusters][kDims + 1] = {};

    for (std::uint32_t p = first; p < first + count; ++p) {
        float pt[kDims];
        for (unsigned d = 0; d < kDims; ++d) {
            pt[d] = runtime::Ctx::asF32(
                co_await ctx.load32(pointAddr(p, d)));
        }
        co_await ctx.compute(kClusters * (2 * kDims + 1));
        unsigned best = 0;
        float best_d = 0;
        for (unsigned k = 0; k < kClusters; ++k) {
            float dist = 0;
            for (unsigned d = 0; d < kDims; ++d) {
                float diff = pt[d] - cents[k][d];
                dist += diff * diff;
            }
            if (k == 0 || dist < best_d) {
                best_d = dist;
                best = k;
            }
        }
        if (atomic_variant) {
            // Uncached atomic histogramming: the kmeans signature.
            for (unsigned d = 0; d < kDims; ++d) {
                co_await ctx.atomicAddF32(sumAddr(iter, best, d),
                                          pt[d]);
            }
            co_await ctx.atomicAdd(countAddr(iter, best), 1);
        } else {
            for (unsigned d = 0; d < kDims; ++d)
                partial[best][d] += pt[d];
            partial[best][kDims] += 1.0f;
        }
    }

    if (!atomic_variant) {
        // Publish partials through cached HWcc stores; the update
        // phase pulls them on demand (paper Section 4.2's Cohesion
        // optimization for kmeans).
        for (unsigned k = 0; k < kClusters; ++k) {
            for (unsigned d = 0; d <= kDims; ++d) {
                co_await ctx.storeF32(slotAddr(iter, task_id, k, d),
                                      partial[k][d]);
            }
        }
        if (ctx.swccManaged(_slots)) {
            co_await ctx.flushRegion(
                slotAddr(iter, task_id, 0, 0),
                kClusters * (kDims + 1) * 4);
        }
    }
}

sim::CoTask
KmeansKernel::updateTask(runtime::Ctx &ctx, runtime::TaskDesc td,
                         unsigned iter)
{
    const unsigned k = td.arg0;
    const bool atomic_variant =
        ctx.mode() != arch::CoherenceMode::Cohesion;

    float sum[kDims] = {};
    float cnt = 0;
    if (atomic_variant) {
        // Atomics updated the L3 copy directly; invalidate any stale
        // cached copies before reading.
        if (ctx.swccManaged(_sums)) {
            co_await ctx.invRegion(sumAddr(iter, k, 0), (kDims + 1) * 4);
        }
        for (unsigned d = 0; d < kDims; ++d) {
            sum[d] = runtime::Ctx::asF32(
                co_await ctx.load32(sumAddr(iter, k, d)));
        }
        cnt = static_cast<float>(
            co_await ctx.load32(countAddr(iter, k)));
    } else {
        for (std::uint32_t t = 0; t < _numTasks; ++t) {
            if (ctx.swccManaged(_slots)) {
                co_await ctx.invRegion(slotAddr(iter, t, k, 0),
                                       (kDims + 1) * 4);
            }
            for (unsigned d = 0; d < kDims; ++d) {
                sum[d] += runtime::Ctx::asF32(
                    co_await ctx.load32(slotAddr(iter, t, k, d)));
            }
            cnt += runtime::Ctx::asF32(
                co_await ctx.load32(slotAddr(iter, t, k, kDims)));
        }
    }

    co_await ctx.compute(3 * kDims);
    for (unsigned d = 0; d < kDims; ++d) {
        float v = cnt > 0 ? sum[d] / cnt : 0.0f;
        co_await ctx.storeF32(centroidAddr(k, d), v);
    }
    if (ctx.swccManaged(_centroids))
        co_await ctx.flushRegion(centroidAddr(k, 0), kDims * 4);
}

sim::CoTask
KmeansKernel::worker(runtime::Ctx ctx)
{
    ctx.core().setCodeRegion(runtime::Layout::codeBase + 0x5000, 1152);
    for (unsigned it = 0; it < _iters; ++it) {
        co_await ctx.forEachTask(
            _assignPhases[it],
            [this, it](runtime::Ctx &c, const runtime::TaskDesc &td) {
                return assignTask(c, td, it);
            });
        co_await ctx.barrier();
        co_await ctx.forEachTask(
            _updatePhases[it],
            [this, it](runtime::Ctx &c, const runtime::TaskDesc &td) {
                return updateTask(c, td, it);
            });
        co_await ctx.barrier();
    }
}

void
KmeansKernel::verify(runtime::CohesionRuntime &rt)
{
    // Host reference with the same float formulae; reduction order may
    // differ, so compare with tolerance. Assignments are robust: the
    // clusters are 20 units apart with +/-2 noise.
    std::vector<float> cents = _hostInitCentroids;
    std::vector<std::uint32_t> counts(kClusters);
    for (unsigned it = 0; it < _iters; ++it) {
        std::vector<double> sums(kClusters * kDims, 0.0);
        std::fill(counts.begin(), counts.end(), 0);
        for (std::uint32_t p = 0; p < _numPoints; ++p) {
            unsigned best = 0;
            float best_d = 0;
            for (unsigned k = 0; k < kClusters; ++k) {
                float dist = 0;
                for (unsigned d = 0; d < kDims; ++d) {
                    float diff = _hostPoints[p * kDims + d] -
                                 cents[k * kDims + d];
                    dist += diff * diff;
                }
                if (k == 0 || dist < best_d) {
                    best_d = dist;
                    best = k;
                }
            }
            for (unsigned d = 0; d < kDims; ++d)
                sums[best * kDims + d] += _hostPoints[p * kDims + d];
            counts[best] += 1;
        }
        for (unsigned k = 0; k < kClusters; ++k) {
            for (unsigned d = 0; d < kDims; ++d) {
                cents[k * kDims + d] =
                    counts[k] ? static_cast<float>(sums[k * kDims + d] /
                                                   counts[k])
                              : 0.0f;
            }
        }
    }

    for (unsigned k = 0; k < kClusters; ++k) {
        for (unsigned d = 0; d < kDims; ++d) {
            float got = rt.verifyReadF32(centroidAddr(k, d));
            float want = cents[k * kDims + d];
            // !(x <= t) so a NaN from an injected fault fails.
            fatal_if(!(std::fabs(got - want) <=
                       5e-2f + 1e-3f * std::fabs(want)),
                     "kmeans centroid mismatch at (", k, ",", d,
                     "): got ", got, " want ", want);
        }
    }
}

std::unique_ptr<Kernel>
makeKmeans(const Params &params)
{
    return std::make_unique<KmeansKernel>(params);
}

} // namespace kernels
