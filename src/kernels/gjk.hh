/**
 * @file
 * gjk: convex collision detection via iterative support mapping over
 * Minkowski differences (Section 4.1). Object vertex sets are
 * read-shared and irregularly sized, tasks are fine-grained (one pair
 * each, so dequeue overhead matters — paper Section 4.5 notes gjk is
 * limited by task-scheduling overhead), and the working simplex is
 * kept in per-core stack memory.
 */

#ifndef COHESION_KERNELS_GJK_HH
#define COHESION_KERNELS_GJK_HH

#include <vector>

#include "kernels/kernel.hh"

namespace kernels {

class GjkKernel : public Kernel
{
  public:
    explicit GjkKernel(const Params &params);

    const char *name() const override { return "gjk"; }
    void setup(runtime::CohesionRuntime &rt) override;
    sim::CoTask worker(runtime::Ctx ctx) override;
    void verify(runtime::CohesionRuntime &rt) override;

    static constexpr unsigned kMaxIters = 8;

  private:
    struct Object
    {
        std::uint32_t vertOffset; ///< Index of first vertex.
        std::uint32_t vertCount;
        float cx, cy, cz;
    };

    sim::CoTask pairTask(runtime::Ctx &ctx, runtime::TaskDesc td);

    /** Host-side replica of the simulated algorithm (verification). */
    float hostPair(std::uint32_t a, std::uint32_t b) const;

    mem::Addr vertAddr(std::uint32_t v, unsigned d) const
    {
        return _verts + (v * 3 + d) * 4;
    }

    mem::Addr objAddr(std::uint32_t o) const
    {
        return _objects + o * 8 * 4; // padded to 32 B
    }

    std::uint32_t _numObjects = 0;
    std::uint32_t _numPairs = 0;
    mem::Addr _verts = 0;
    mem::Addr _objects = 0;
    mem::Addr _pairs = 0;
    mem::Addr _results = 0;
    std::vector<Object> _hObjects;
    std::vector<float> _hVerts;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> _hPairs;
    unsigned _phase = 0;
};

std::unique_ptr<Kernel> makeGjk(const Params &params);

} // namespace kernels

#endif // COHESION_KERNELS_GJK_HH
