#include "kernels/cg.hh"

#include <cmath>

#include "sim/logging.hh"

namespace kernels {

CgKernel::CgKernel(const Params &params) : Kernel(params)
{
    _grid = 20 * params.scale;
    _n = _grid * _grid;
    _iters = 4;
    _rng = sim::Rng(params.seed ^ 0xC6);
}

void
CgKernel::setup(runtime::CohesionRuntime &rt)
{
    // 2D 5-point Laplacian in CSR form.
    _hRowPtr.assign(_n + 1, 0);
    _hColIdx.clear();
    _hVals.clear();
    for (std::uint32_t row = 0; row < _n; ++row) {
        std::uint32_t gy = row / _grid, gx = row % _grid;
        auto push = [&](std::uint32_t col, float v) {
            _hColIdx.push_back(col);
            _hVals.push_back(v);
        };
        if (gy > 0)
            push(row - _grid, -1.0f);
        if (gx > 0)
            push(row - 1, -1.0f);
        push(row, 4.2f); // slightly diagonally dominant
        if (gx + 1 < _grid)
            push(row + 1, -1.0f);
        if (gy + 1 < _grid)
            push(row + _grid, -1.0f);
        _hRowPtr[row + 1] = _hColIdx.size();
    }
    _nnz = _hColIdx.size();

    _hB.resize(_n);
    for (std::uint32_t i = 0; i < _n; ++i)
        _hB[i] = static_cast<float>(_rng.range(-1.0, 1.0));

    _rowPtr = rt.cohMalloc((_n + 1) * 4);
    _colIdx = rt.cohMalloc(_nnz * 4);
    _vals = rt.cohMalloc(_nnz * 4);
    // The CSR matrix is immutable: incoherent heap (SWcc under
    // Cohesion). The solver vectors see gather-style, fine-grained
    // sharing (p is read by every row task), so the Cohesion variant
    // keeps them hardware-coherent (conventional heap) — the paper's
    // conservative annotation strategy.
    _x = rt.malloc(_n * 4);
    _r = rt.malloc(_n * 4);
    _p = rt.malloc(_n * 4);
    _q = rt.malloc(_n * 4);
    _scalars = rt.malloc(_iters * mem::lineBytes);
    _rr0 = rt.malloc(mem::lineBytes);

    for (std::uint32_t i = 0; i <= _n; ++i)
        rt.poke<std::uint32_t>(_rowPtr + i * 4, _hRowPtr[i]);
    for (std::uint32_t i = 0; i < _nnz; ++i) {
        rt.poke<std::uint32_t>(_colIdx + i * 4, _hColIdx[i]);
        rt.poke<float>(_vals + i * 4, _hVals[i]);
    }
    for (std::uint32_t i = 0; i < _n; ++i) {
        rt.poke<float>(_x + i * 4, 0.0f);
        rt.poke<float>(_r + i * 4, _hB[i]); // r0 = b (x0 = 0)
        rt.poke<float>(_p + i * 4, _hB[i]); // p0 = r0
        rt.poke<float>(_q + i * 4, 0.0f);
    }
    for (unsigned it = 0; it < _iters; ++it) {
        rt.poke<float>(pqAddr(it), 0.0f);
        rt.poke<float>(rnewAddr(it), 0.0f);
    }
    rt.poke<float>(_rr0, 0.0f);

    unsigned cores = rt.chip().totalCores();
    std::uint32_t chunk = std::max<std::uint32_t>(4, _n / (2 * cores));
    auto tasks = chunkTasks(_n, chunk);
    _phaseInit = addPhase(rt, tasks);
    for (unsigned it = 0; it < _iters; ++it) {
        _phaseMatvec.push_back(addPhase(rt, tasks));
        _phaseXr.push_back(addPhase(rt, tasks));
        _phaseP.push_back(addPhase(rt, tasks));
    }
}

sim::CoTask
CgKernel::initTask(runtime::Ctx &ctx, runtime::TaskDesc td)
{
    // Partial r.r for the initial residual (r = b).
    float acc = 0.0f;
    for (std::uint32_t i = td.arg0; i < td.arg0 + td.arg1; ++i) {
        float rv =
            runtime::Ctx::asF32(co_await ctx.load32(_r + i * 4));
        acc += rv * rv;
    }
    co_await ctx.compute(2 * td.arg1);
    co_await ctx.atomicAddF32(_rr0, acc);
}

sim::CoTask
CgKernel::matvecTask(runtime::Ctx &ctx, runtime::TaskDesc td,
                     unsigned iter)
{
    const std::uint32_t first = td.arg0, count = td.arg1;

    // p was produced by other clusters in the previous phase; q rows
    // cached from the previous iteration are stale.
    if (ctx.swccManaged(_p)) {
        co_await ctx.invRegion(_p, _n * 4); // gather access: whole p
        co_await ctx.invRegion(_q + first * 4, count * 4);
    }

    float acc = 0.0f;
    for (std::uint32_t row = first; row < first + count; ++row) {
        std::uint32_t lo = co_await ctx.load32(_rowPtr + row * 4);
        std::uint32_t hi = co_await ctx.load32(_rowPtr + (row + 1) * 4);
        float sum = 0.0f;
        for (std::uint32_t e = lo; e < hi; ++e) {
            std::uint32_t col = co_await ctx.load32(_colIdx + e * 4);
            float v =
                runtime::Ctx::asF32(co_await ctx.load32(_vals + e * 4));
            float pv =
                runtime::Ctx::asF32(co_await ctx.load32(_p + col * 4));
            sum += v * pv;
        }
        co_await ctx.compute(2 * (hi - lo) + 4);
        co_await ctx.storeF32(_q + row * 4, sum);
        float pr =
            runtime::Ctx::asF32(co_await ctx.load32(_p + row * 4));
        acc += pr * sum;
    }

    co_await ctx.atomicAddF32(pqAddr(iter), acc);
    if (ctx.swccManaged(_q))
        co_await ctx.flushRegion(_q + first * 4, count * 4);
}

sim::CoTask
CgKernel::xrTask(runtime::Ctx &ctx, runtime::TaskDesc td, unsigned iter)
{
    const std::uint32_t first = td.arg0, count = td.arg1;

    // Scalars were atomically accumulated; q rows for this chunk may
    // have been produced elsewhere.
    if (ctx.swccManaged(_scalars)) {
        co_await ctx.invRegion(pqAddr(iter), 8);
        co_await ctx.invRegion(rrAddr(iter), 4);
    }
    float rr = runtime::Ctx::asF32(co_await ctx.load32(rrAddr(iter)));
    float pq = runtime::Ctx::asF32(co_await ctx.load32(pqAddr(iter)));
    float alpha = rr / pq;

    if (ctx.swccManaged(_q)) {
        co_await ctx.invRegion(_q + first * 4, count * 4);
        co_await ctx.invRegion(_x + first * 4, count * 4);
        co_await ctx.invRegion(_r + first * 4, count * 4);
    }

    float acc = 0.0f;
    for (std::uint32_t i = first; i < first + count; ++i) {
        float xv = runtime::Ctx::asF32(co_await ctx.load32(_x + i * 4));
        float rv = runtime::Ctx::asF32(co_await ctx.load32(_r + i * 4));
        float pv = runtime::Ctx::asF32(co_await ctx.load32(_p + i * 4));
        float qv = runtime::Ctx::asF32(co_await ctx.load32(_q + i * 4));
        co_await ctx.compute(6);
        xv += alpha * pv;
        rv -= alpha * qv;
        co_await ctx.storeF32(_x + i * 4, xv);
        co_await ctx.storeF32(_r + i * 4, rv);
        acc += rv * rv;
    }

    co_await ctx.atomicAddF32(rnewAddr(iter), acc);
    if (ctx.swccManaged(_x)) {
        co_await ctx.flushRegion(_x + first * 4, count * 4);
        co_await ctx.flushRegion(_r + first * 4, count * 4);
    }
}

sim::CoTask
CgKernel::pTask(runtime::Ctx &ctx, runtime::TaskDesc td, unsigned iter)
{
    const std::uint32_t first = td.arg0, count = td.arg1;

    if (ctx.swccManaged(_scalars)) {
        co_await ctx.invRegion(rnewAddr(iter), 4);
        co_await ctx.invRegion(rrAddr(iter), 4);
    }
    float rnew =
        runtime::Ctx::asF32(co_await ctx.load32(rnewAddr(iter)));
    float rr = runtime::Ctx::asF32(co_await ctx.load32(rrAddr(iter)));
    float beta = rnew / rr;

    if (ctx.swccManaged(_r)) {
        co_await ctx.invRegion(_r + first * 4, count * 4);
        co_await ctx.invRegion(_p + first * 4, count * 4);
    }

    for (std::uint32_t i = first; i < first + count; ++i) {
        float rv = runtime::Ctx::asF32(co_await ctx.load32(_r + i * 4));
        float pv = runtime::Ctx::asF32(co_await ctx.load32(_p + i * 4));
        co_await ctx.compute(3);
        co_await ctx.storeF32(_p + i * 4, rv + beta * pv);
    }

    if (ctx.swccManaged(_p))
        co_await ctx.flushRegion(_p + first * 4, count * 4);
}

sim::CoTask
CgKernel::worker(runtime::Ctx ctx)
{
    ctx.core().setCodeRegion(runtime::Layout::codeBase + 0x7000, 1280);

    co_await ctx.forEachTask(
        _phaseInit, [this](runtime::Ctx &c, const runtime::TaskDesc &td) {
            return initTask(c, td);
        });
    co_await ctx.barrier();

    for (unsigned it = 0; it < _iters; ++it) {
        co_await ctx.forEachTask(
            _phaseMatvec[it],
            [this, it](runtime::Ctx &c, const runtime::TaskDesc &td) {
                return matvecTask(c, td, it);
            });
        co_await ctx.barrier();
        co_await ctx.forEachTask(
            _phaseXr[it],
            [this, it](runtime::Ctx &c, const runtime::TaskDesc &td) {
                return xrTask(c, td, it);
            });
        co_await ctx.barrier();
        co_await ctx.forEachTask(
            _phaseP[it],
            [this, it](runtime::Ctx &c, const runtime::TaskDesc &td) {
                return pTask(c, td, it);
            });
        co_await ctx.barrier();
    }
}

void
CgKernel::verify(runtime::CohesionRuntime &rt)
{
    // Host reference CG (double accumulators for the reductions).
    std::vector<float> x(_n, 0.0f), r = _hB, p = _hB, q(_n, 0.0f);
    double rr = 0;
    for (std::uint32_t i = 0; i < _n; ++i)
        rr += double(r[i]) * r[i];
    const double rr_initial = rr;

    for (unsigned it = 0; it < _iters; ++it) {
        double pq = 0;
        for (std::uint32_t row = 0; row < _n; ++row) {
            float sum = 0.0f;
            for (std::uint32_t e = _hRowPtr[row]; e < _hRowPtr[row + 1];
                 ++e) {
                sum += _hVals[e] * p[_hColIdx[e]];
            }
            q[row] = sum;
            pq += double(p[row]) * sum;
        }
        float alpha = static_cast<float>(rr / pq);
        double rnew = 0;
        for (std::uint32_t i = 0; i < _n; ++i) {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
            rnew += double(r[i]) * r[i];
        }
        float beta = static_cast<float>(rnew / rr);
        for (std::uint32_t i = 0; i < _n; ++i)
            p[i] = r[i] + beta * p[i];
        rr = rnew;
    }

    // CG converges: the reference residual must have dropped.
    fatal_if(rr > 0.9 * rr_initial, "cg reference did not converge");

    // The simulated run's reductions are atomic float adds whose
    // order differs run to run, and CG amplifies last-bit alpha/beta
    // differences across iterations. Verify the algorithmic property:
    // the simulated x must satisfy the same residual reduction the
    // reference achieved (within slack), plus a loose direct match.
    std::vector<double> xs(_n);
    for (std::uint32_t i = 0; i < _n; ++i)
        xs[i] = rt.verifyReadF32(_x + i * 4);
    double rr_sim = 0;
    for (std::uint32_t row = 0; row < _n; ++row) {
        double ax = 0;
        for (std::uint32_t e = _hRowPtr[row]; e < _hRowPtr[row + 1]; ++e)
            ax += double(_hVals[e]) * xs[_hColIdx[e]];
        double res = double(_hB[row]) - ax;
        rr_sim += res * res;
    }
    // !(x <= t) instead of (x > t): a NaN in the simulated solution
    // (e.g. from an injected bit flip) must fail, not slip past.
    fatal_if(!(rr_sim <= 4.0 * rr + 1e-6),
             "cg simulated residual too high: ", rr_sim,
             " vs reference ", rr);

    double err = 0, norm = 0;
    for (std::uint32_t i = 0; i < _n; ++i) {
        err += std::fabs(xs[i] - x[i]);
        norm += std::fabs(x[i]);
    }
    fatal_if(!(err <= 0.10 * norm + 1e-3),
             "cg solution mismatch: |err|=", err, " |x|=", norm);
}

std::unique_ptr<Kernel>
makeCg(const Params &params)
{
    return std::make_unique<CgKernel>(params);
}

} // namespace kernels
