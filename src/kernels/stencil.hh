/**
 * @file
 * stencil: 3D 7-point stencil over barrier-separated iterations
 * (Section 4.1). Tasks relax z-slabs; sources are lazily invalidated
 * and destinations eagerly flushed under software-managed coherence.
 */

#ifndef COHESION_KERNELS_STENCIL_HH
#define COHESION_KERNELS_STENCIL_HH

#include <vector>

#include "kernels/kernel.hh"

namespace kernels {

class StencilKernel : public Kernel
{
  public:
    explicit StencilKernel(const Params &params);

    const char *name() const override { return "stencil"; }
    void setup(runtime::CohesionRuntime &rt) override;
    sim::CoTask worker(runtime::Ctx ctx) override;
    void verify(runtime::CohesionRuntime &rt) override;

  private:
    sim::CoTask slabTask(runtime::Ctx &ctx, runtime::TaskDesc td,
                         mem::Addr src, mem::Addr dst);

    std::uint32_t
    idx(std::uint32_t x, std::uint32_t y, std::uint32_t z) const
    {
        return (z * _n + y) * _n + x;
    }

    std::uint32_t _n = 0;
    unsigned _iters = 0;
    mem::Addr _a = 0;
    mem::Addr _b = 0;
    std::vector<float> _init;
    std::vector<unsigned> _phases;
};

std::unique_ptr<Kernel> makeStencil(const Params &params);

} // namespace kernels

#endif // COHESION_KERNELS_STENCIL_HH
