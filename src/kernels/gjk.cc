#include "kernels/gjk.hh"

#include <cmath>

#include "sim/logging.hh"

namespace kernels {

GjkKernel::GjkKernel(const Params &params) : Kernel(params)
{
    _numObjects = 24 * params.scale;
    _numPairs = 128 * params.scale;
    _rng = sim::Rng(params.seed ^ 0x61C);
}

void
GjkKernel::setup(runtime::CohesionRuntime &rt)
{
    // Irregularly sized convex point clouds around random centers.
    _hObjects.clear();
    _hVerts.clear();
    for (std::uint32_t o = 0; o < _numObjects; ++o) {
        Object obj;
        obj.vertOffset = _hVerts.size() / 3;
        obj.vertCount = 40 + static_cast<std::uint32_t>(_rng.below(80));
        obj.cx = static_cast<float>(_rng.range(-30.0, 30.0));
        obj.cy = static_cast<float>(_rng.range(-30.0, 30.0));
        obj.cz = static_cast<float>(_rng.range(-30.0, 30.0));
        for (std::uint32_t v = 0; v < obj.vertCount; ++v) {
            _hVerts.push_back(obj.cx +
                              static_cast<float>(_rng.range(-4.0, 4.0)));
            _hVerts.push_back(obj.cy +
                              static_cast<float>(_rng.range(-4.0, 4.0)));
            _hVerts.push_back(obj.cz +
                              static_cast<float>(_rng.range(-4.0, 4.0)));
        }
        _hObjects.push_back(obj);
    }

    _hPairs.clear();
    for (std::uint32_t p = 0; p < _numPairs; ++p) {
        std::uint32_t a = _rng.below(_numObjects);
        std::uint32_t b = _rng.below(_numObjects);
        if (b == a)
            b = (b + 1) % _numObjects;
        _hPairs.emplace_back(a, b);
    }

    _verts = rt.cohMalloc(_hVerts.size() * 4);
    _objects = rt.cohMalloc(_numObjects * 8 * 4);
    _pairs = rt.cohMalloc(_numPairs * 2 * 4);
    // One-word results per pair: too fine-grained for software
    // flushes to pay off, so Cohesion leaves them HWcc.
    _results = rt.malloc(_numPairs * 4);

    for (std::size_t i = 0; i < _hVerts.size(); ++i)
        rt.poke<float>(_verts + i * 4, _hVerts[i]);
    for (std::uint32_t o = 0; o < _numObjects; ++o) {
        rt.poke<std::uint32_t>(objAddr(o) + 0, _hObjects[o].vertOffset);
        rt.poke<std::uint32_t>(objAddr(o) + 4, _hObjects[o].vertCount);
        rt.poke<float>(objAddr(o) + 8, _hObjects[o].cx);
        rt.poke<float>(objAddr(o) + 12, _hObjects[o].cy);
        rt.poke<float>(objAddr(o) + 16, _hObjects[o].cz);
    }
    for (std::uint32_t p = 0; p < _numPairs; ++p) {
        rt.poke<std::uint32_t>(_pairs + p * 8, _hPairs[p].first);
        rt.poke<std::uint32_t>(_pairs + p * 8 + 4, _hPairs[p].second);
    }

    // One pair per task: fine granularity (dequeue overhead matters).
    _phase = addPhase(rt, chunkTasks(_numPairs, 1));
}

sim::CoTask
GjkKernel::pairTask(runtime::Ctx &ctx, runtime::TaskDesc td)
{
    const std::uint32_t pair = td.arg0;
    const std::uint32_t ai = co_await ctx.load32(_pairs + pair * 8);
    const std::uint32_t bi = co_await ctx.load32(_pairs + pair * 8 + 4);

    // Object headers.
    std::uint32_t a_off = co_await ctx.load32(objAddr(ai) + 0);
    std::uint32_t a_cnt = co_await ctx.load32(objAddr(ai) + 4);
    std::uint32_t b_off = co_await ctx.load32(objAddr(bi) + 0);
    std::uint32_t b_cnt = co_await ctx.load32(objAddr(bi) + 4);
    float dx = runtime::Ctx::asF32(co_await ctx.load32(objAddr(ai) + 8)) -
               runtime::Ctx::asF32(co_await ctx.load32(objAddr(bi) + 8));
    float dy =
        runtime::Ctx::asF32(co_await ctx.load32(objAddr(ai) + 12)) -
        runtime::Ctx::asF32(co_await ctx.load32(objAddr(bi) + 12));
    float dz =
        runtime::Ctx::asF32(co_await ctx.load32(objAddr(ai) + 16)) -
        runtime::Ctx::asF32(co_await ctx.load32(objAddr(bi) + 16));

    // Direction from B toward A; iterate support mapping.
    float d[3] = {-dx, -dy, -dz};
    float min_proj = 1e30f;
    const mem::Addr simplex = ctx.stack(); // per-core private scratch

    // Clear the simplex scratch: the stack is reused across tasks.
    for (unsigned s = 0; s < 4 * 3; ++s)
        co_await ctx.storeF32(simplex + s * 4, 0.0f);

    for (unsigned it = 0; it < kMaxIters; ++it) {
        // Support of A along d.
        float best_a[3] = {0, 0, 0};
        float best_dot = -1e30f;
        for (std::uint32_t v = 0; v < a_cnt; ++v) {
            float vx = runtime::Ctx::asF32(
                co_await ctx.load32(vertAddr(a_off + v, 0)));
            float vy = runtime::Ctx::asF32(
                co_await ctx.load32(vertAddr(a_off + v, 1)));
            float vz = runtime::Ctx::asF32(
                co_await ctx.load32(vertAddr(a_off + v, 2)));
            float dot = vx * d[0] + vy * d[1] + vz * d[2];
            if (dot > best_dot) {
                best_dot = dot;
                best_a[0] = vx;
                best_a[1] = vy;
                best_a[2] = vz;
            }
        }
        co_await ctx.compute(6 * a_cnt);
        // Support of B along -d.
        float best_b[3] = {0, 0, 0};
        best_dot = -1e30f;
        for (std::uint32_t v = 0; v < b_cnt; ++v) {
            float vx = runtime::Ctx::asF32(
                co_await ctx.load32(vertAddr(b_off + v, 0)));
            float vy = runtime::Ctx::asF32(
                co_await ctx.load32(vertAddr(b_off + v, 1)));
            float vz = runtime::Ctx::asF32(
                co_await ctx.load32(vertAddr(b_off + v, 2)));
            float dot = -(vx * d[0] + vy * d[1] + vz * d[2]);
            if (dot > best_dot) {
                best_dot = dot;
                best_b[0] = vx;
                best_b[1] = vy;
                best_b[2] = vz;
            }
        }
        co_await ctx.compute(6 * b_cnt);

        // Minkowski-difference support point, kept on the stack.
        float w[3] = {best_a[0] - best_b[0], best_a[1] - best_b[1],
                      best_a[2] - best_b[2]};
        for (unsigned c = 0; c < 3; ++c) {
            co_await ctx.storeF32(
                simplex + ((it % 4) * 3 + c) * 4, w[c]);
        }

        float dlen = std::sqrt(d[0] * d[0] + d[1] * d[1] + d[2] * d[2]);
        if (dlen < 1e-6f)
            break;
        float proj = (w[0] * d[0] + w[1] * d[1] + w[2] * d[2]) / dlen;
        co_await ctx.compute(12);
        if (proj < min_proj)
            min_proj = proj;
        if (proj <= 0.0f)
            break; // separating axis found: no collision
        // New direction: bend toward the latest support point.
        d[0] = 0.25f * d[0] - w[0];
        d[1] = 0.25f * d[1] - w[1];
        d[2] = 0.25f * d[2] - w[2];
    }

    // Fold the stacked simplex back in (forces stack read traffic).
    float norm = 0.0f;
    for (unsigned s = 0; s < 4 * 3; ++s) {
        float v =
            runtime::Ctx::asF32(co_await ctx.load32(simplex + s * 4));
        norm += v * v;
    }
    co_await ctx.compute(24);

    float result = min_proj + 1e-7f * norm;
    co_await ctx.storeF32(_results + pair * 4, result);
    if (ctx.swccManaged(_results))
        co_await ctx.flushRegion(_results + pair * 4, 4);
}

float
GjkKernel::hostPair(std::uint32_t ai, std::uint32_t bi) const
{
    const Object &a = _hObjects[ai];
    const Object &b = _hObjects[bi];
    float d[3] = {-(a.cx - b.cx), -(a.cy - b.cy), -(a.cz - b.cz)};
    float min_proj = 1e30f;
    float simplex[12] = {};

    for (unsigned it = 0; it < kMaxIters; ++it) {
        float best_a[3] = {0, 0, 0};
        float best_dot = -1e30f;
        for (std::uint32_t v = 0; v < a.vertCount; ++v) {
            const float *vv = &_hVerts[(a.vertOffset + v) * 3];
            float dot = vv[0] * d[0] + vv[1] * d[1] + vv[2] * d[2];
            if (dot > best_dot) {
                best_dot = dot;
                best_a[0] = vv[0];
                best_a[1] = vv[1];
                best_a[2] = vv[2];
            }
        }
        float best_b[3] = {0, 0, 0};
        best_dot = -1e30f;
        for (std::uint32_t v = 0; v < b.vertCount; ++v) {
            const float *vv = &_hVerts[(b.vertOffset + v) * 3];
            float dot = -(vv[0] * d[0] + vv[1] * d[1] + vv[2] * d[2]);
            if (dot > best_dot) {
                best_dot = dot;
                best_b[0] = vv[0];
                best_b[1] = vv[1];
                best_b[2] = vv[2];
            }
        }
        float w[3] = {best_a[0] - best_b[0], best_a[1] - best_b[1],
                      best_a[2] - best_b[2]};
        for (unsigned c = 0; c < 3; ++c)
            simplex[(it % 4) * 3 + c] = w[c];
        float dlen = std::sqrt(d[0] * d[0] + d[1] * d[1] + d[2] * d[2]);
        if (dlen < 1e-6f)
            break;
        float proj = (w[0] * d[0] + w[1] * d[1] + w[2] * d[2]) / dlen;
        if (proj < min_proj)
            min_proj = proj;
        if (proj <= 0.0f)
            break;
        d[0] = 0.25f * d[0] - w[0];
        d[1] = 0.25f * d[1] - w[1];
        d[2] = 0.25f * d[2] - w[2];
    }

    float norm = 0.0f;
    for (float v : simplex)
        norm += v * v;
    return min_proj + 1e-7f * norm;
}

sim::CoTask
GjkKernel::worker(runtime::Ctx ctx)
{
    ctx.core().setCodeRegion(runtime::Layout::codeBase + 0x8000, 1536);
    co_await ctx.forEachTask(
        _phase, [this](runtime::Ctx &c, const runtime::TaskDesc &td) {
            return pairTask(c, td);
        });
    co_await ctx.barrier();
}

void
GjkKernel::verify(runtime::CohesionRuntime &rt)
{
    for (std::uint32_t p = 0; p < _numPairs; ++p) {
        float want = hostPair(_hPairs[p].first, _hPairs[p].second);
        float got = rt.verifyReadF32(_results + p * 4);
        // !(x <= t) so a NaN from an injected fault fails.
        fatal_if(!(std::fabs(got - want) <=
                   1e-3f + 1e-4f * std::fabs(want)),
                 "gjk mismatch at pair ", p, ": got ", got, " want ",
                 want);
    }
}

std::unique_ptr<Kernel>
makeGjk(const Params &params)
{
    return std::make_unique<GjkKernel>(params);
}

} // namespace kernels
