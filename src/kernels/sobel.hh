/**
 * @file
 * sobel: 2D edge detection (Section 4.1). Phase 1 computes gradient
 * magnitudes over a read-shared input image; phase 2 thresholds the
 * edge map (produced by other tasks, hence lazily invalidated under
 * SWcc) and counts edge pixels with atomic increments.
 */

#ifndef COHESION_KERNELS_SOBEL_HH
#define COHESION_KERNELS_SOBEL_HH

#include <vector>

#include "kernels/kernel.hh"

namespace kernels {

class SobelKernel : public Kernel
{
  public:
    explicit SobelKernel(const Params &params);

    const char *name() const override { return "sobel"; }
    void setup(runtime::CohesionRuntime &rt) override;
    sim::CoTask worker(runtime::Ctx ctx) override;
    void verify(runtime::CohesionRuntime &rt) override;

  private:
    sim::CoTask gradientTask(runtime::Ctx &ctx, runtime::TaskDesc td);
    sim::CoTask thresholdTask(runtime::Ctx &ctx, runtime::TaskDesc td);

    std::uint32_t _w = 0;
    std::uint32_t _h = 0;
    float _threshold = 120.0f;
    mem::Addr _img = 0;
    mem::Addr _edges = 0;
    mem::Addr _count = 0;
    std::vector<float> _input;
    unsigned _phaseGrad = 0;
    unsigned _phaseThresh = 0;
};

std::unique_ptr<Kernel> makeSobel(const Params &params);

} // namespace kernels

#endif // COHESION_KERNELS_SOBEL_HH
