#include "kernels/registry.hh"

#include "sim/logging.hh"

namespace kernels {

const std::vector<std::string> &
allKernelNames()
{
    static const std::vector<std::string> names = {
        "cg", "dmm", "gjk", "heat", "kmeans", "mri", "sobel", "stencil",
    };
    return names;
}

bool
isKernelName(const std::string &name)
{
    for (const std::string &k : allKernelNames()) {
        if (k == name)
            return true;
    }
    return false;
}

KernelFactory
kernelFactory(const std::string &name)
{
    if (name == "cg")
        return &makeCg;
    if (name == "dmm")
        return &makeDmm;
    if (name == "gjk")
        return &makeGjk;
    if (name == "heat")
        return &makeHeat;
    if (name == "kmeans")
        return &makeKmeans;
    if (name == "mri")
        return &makeMri;
    if (name == "sobel")
        return &makeSobel;
    if (name == "stencil")
        return &makeStencil;
    fatal("unknown kernel: ", name);
}

} // namespace kernels
