#include "kernels/dmm.hh"

#include <cmath>

#include "sim/logging.hh"

namespace kernels {

DmmKernel::DmmKernel(const Params &params) : Kernel(params)
{
    _n = 32 * params.scale;
    _rng = sim::Rng(params.seed ^ 0xD33);
}

void
DmmKernel::setup(runtime::CohesionRuntime &rt)
{
    const std::uint32_t cells = _n * _n;
    _a = rt.cohMalloc(cells * 4);
    _b = rt.cohMalloc(cells * 4);
    _c = rt.cohMalloc(cells * 4);

    _ha.resize(cells);
    _hb.resize(cells);
    for (std::uint32_t i = 0; i < cells; ++i) {
        _ha[i] = static_cast<float>(_rng.range(-1.0, 1.0));
        _hb[i] = static_cast<float>(_rng.range(-1.0, 1.0));
        rt.poke<float>(_a + i * 4, _ha[i]);
        rt.poke<float>(_b + i * 4, _hb[i]);
    }

    unsigned cores = rt.chip().totalCores();
    std::uint32_t chunk = std::max<std::uint32_t>(1, _n / (2 * cores));
    _phase = addPhase(rt, chunkTasks(_n, chunk));
}

sim::CoTask
DmmKernel::tileTask(runtime::Ctx &ctx, runtime::TaskDesc td)
{
    const std::uint32_t first_row = td.arg0;
    const std::uint32_t rows = td.arg1;
    const std::uint32_t n = _n;

    for (std::uint32_t i = first_row; i < first_row + rows; ++i) {
        for (std::uint32_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (std::uint32_t k = 0; k < n; ++k) {
                float av = runtime::Ctx::asF32(
                    co_await ctx.load32(_a + (i * n + k) * 4));
                float bv = runtime::Ctx::asF32(
                    co_await ctx.load32(_b + (k * n + j) * 4));
                acc += av * bv;
            }
            co_await ctx.compute(2 * n);
            co_await ctx.storeF32(_c + (i * n + j) * 4, acc);
        }
    }

    if (ctx.swccManaged(_c)) {
        co_await ctx.flushRegion(_c + first_row * n * 4, rows * n * 4);
    }
}

sim::CoTask
DmmKernel::worker(runtime::Ctx ctx)
{
    ctx.core().setCodeRegion(runtime::Layout::codeBase + 0x3000, 512);
    co_await ctx.forEachTask(
        _phase, [this](runtime::Ctx &c, const runtime::TaskDesc &td) {
            return tileTask(c, td);
        });
    co_await ctx.barrier();
}

void
DmmKernel::verify(runtime::CohesionRuntime &rt)
{
    const std::uint32_t n = _n;
    for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j = 0; j < n; ++j) {
            float want = 0.0f;
            for (std::uint32_t k = 0; k < n; ++k)
                want += _ha[i * n + k] * _hb[k * n + j];
            float got = rt.verifyReadF32(_c + (i * n + j) * 4);
            // !(x <= t) so a NaN from an injected fault fails the check.
            fatal_if(!(std::fabs(got - want) <=
                       1e-3f + 1e-3f * std::fabs(want)),
                     "dmm mismatch at (", i, ",", j, "): got ", got,
                     " want ", want);
        }
    }
}

std::unique_ptr<Kernel>
makeDmm(const Params &params)
{
    return std::make_unique<DmmKernel>(params);
}

} // namespace kernels
