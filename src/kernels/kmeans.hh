/**
 * @file
 * kmeans: k-means clustering (Section 4.1). The assignment phase is
 * dominated by atomic read-modify-write histogramming of per-cluster
 * sums/counts — the paper's explanation for kmeans being the one
 * benchmark where SWcc sends more messages than HWcc. Under Cohesion
 * and HWcc the benchmark applies the paper's optimization of "relying
 * upon HWcc" to replace most uncached atomics with cached stores to
 * per-task partial buffers reduced in a pull phase.
 */

#ifndef COHESION_KERNELS_KMEANS_HH
#define COHESION_KERNELS_KMEANS_HH

#include <vector>

#include "kernels/kernel.hh"

namespace kernels {

class KmeansKernel : public Kernel
{
  public:
    explicit KmeansKernel(const Params &params);

    const char *name() const override { return "kmeans"; }
    void setup(runtime::CohesionRuntime &rt) override;
    sim::CoTask worker(runtime::Ctx ctx) override;
    void verify(runtime::CohesionRuntime &rt) override;

    static constexpr unsigned kDims = 4;
    static constexpr unsigned kClusters = 8;

  private:
    sim::CoTask assignTask(runtime::Ctx &ctx, runtime::TaskDesc td,
                           unsigned iter);
    sim::CoTask updateTask(runtime::Ctx &ctx, runtime::TaskDesc td,
                           unsigned iter);

    mem::Addr pointAddr(std::uint32_t p, unsigned d) const
    {
        return _points + (p * kDims + d) * 4;
    }

    mem::Addr centroidAddr(unsigned k, unsigned d) const
    {
        return _centroids + (k * kDims + d) * 4;
    }

    /** Global accumulators, fresh per iteration: kClusters rows of
     *  (kDims sums + count). */
    mem::Addr sumAddr(unsigned iter, unsigned k, unsigned d) const
    {
        return _sums + (iter * kClusters + k) * (kDims + 1) * 4 + d * 4;
    }

    mem::Addr countAddr(unsigned iter, unsigned k) const
    {
        return sumAddr(iter, k, kDims);
    }

    /** Per-task partial slots (HWcc/Cohesion pull variant). */
    mem::Addr slotAddr(unsigned iter, std::uint32_t task, unsigned k,
                       unsigned d) const
    {
        return _slots +
               ((iter * _numTasks + task) * kClusters + k) *
                   (kDims + 1) * 4 +
               d * 4;
    }

    std::uint32_t _numPoints = 0;
    std::uint32_t _numTasks = 0;
    unsigned _iters = 0;
    mem::Addr _points = 0;
    mem::Addr _centroids = 0;
    mem::Addr _sums = 0;
    mem::Addr _slots = 0;
    std::vector<float> _hostPoints;
    std::vector<float> _hostInitCentroids;
    std::vector<unsigned> _assignPhases;
    std::vector<unsigned> _updatePhases;
};

std::unique_ptr<Kernel> makeKmeans(const Params &params);

} // namespace kernels

#endif // COHESION_KERNELS_KMEANS_HH
