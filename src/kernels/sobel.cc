#include "kernels/sobel.hh"

#include <cmath>

#include "sim/logging.hh"

namespace kernels {

SobelKernel::SobelKernel(const Params &params) : Kernel(params)
{
    _w = 64 * params.scale;
    _h = 48 * params.scale;
    _rng = sim::Rng(params.seed ^ 0x50BE1);
}

void
SobelKernel::setup(runtime::CohesionRuntime &rt)
{
    const std::uint32_t pixels = _w * _h;
    _img = rt.cohMalloc(pixels * 4);
    _edges = rt.cohMalloc(pixels * 4);
    _count = rt.malloc(mem::lineBytes); // HWcc: shared atomic counter

    _input.resize(pixels);
    for (std::uint32_t i = 0; i < pixels; ++i) {
        _input[i] = static_cast<float>(_rng.range(0.0, 255.0));
        rt.poke<float>(_img + i * 4, _input[i]);
    }
    rt.poke<std::uint32_t>(_count, 0);

    unsigned cores = rt.chip().totalCores();
    std::uint32_t rows = _h - 2;
    std::uint32_t chunk = std::max<std::uint32_t>(1, rows / (2 * cores));
    _phaseGrad = addPhase(rt, chunkTasks(rows, chunk));
    _phaseThresh = addPhase(rt, chunkTasks(rows, chunk));
}

sim::CoTask
SobelKernel::gradientTask(runtime::Ctx &ctx, runtime::TaskDesc td)
{
    const std::uint32_t first_row = td.arg0 + 1;
    const std::uint32_t rows = td.arg1;
    const std::uint32_t w = _w;

    auto pix = [&](std::uint32_t r, std::uint32_t c) {
        return _img + (r * w + c) * 4;
    };

    for (std::uint32_t r = first_row; r < first_row + rows; ++r) {
        for (std::uint32_t c = 1; c + 1 < w; ++c) {
            float p[3][3];
            for (int dr = -1; dr <= 1; ++dr) {
                for (int dc = -1; dc <= 1; ++dc) {
                    p[dr + 1][dc + 1] = runtime::Ctx::asF32(
                        co_await ctx.load32(pix(r + dr, c + dc)));
                }
            }
            co_await ctx.compute(14);
            float gx = (p[0][2] + 2 * p[1][2] + p[2][2]) -
                       (p[0][0] + 2 * p[1][0] + p[2][0]);
            float gy = (p[2][0] + 2 * p[2][1] + p[2][2]) -
                       (p[0][0] + 2 * p[0][1] + p[0][2]);
            float mag = std::fabs(gx) + std::fabs(gy);
            co_await ctx.storeF32(_edges + (r * w + c) * 4, mag);
        }
    }

    if (ctx.swccManaged(_edges)) {
        co_await ctx.flushRegion(_edges + first_row * w * 4,
                                 rows * w * 4);
    }
}

sim::CoTask
SobelKernel::thresholdTask(runtime::Ctx &ctx, runtime::TaskDesc td)
{
    const std::uint32_t first_row = td.arg0 + 1;
    const std::uint32_t rows = td.arg1;
    const std::uint32_t w = _w;

    // The edge rows were written by other clusters in phase 1.
    if (ctx.swccManaged(_edges)) {
        co_await ctx.invRegion(_edges + first_row * w * 4, rows * w * 4);
    }

    std::uint32_t local = 0;
    for (std::uint32_t r = first_row; r < first_row + rows; ++r) {
        for (std::uint32_t c = 1; c + 1 < w; ++c) {
            float mag = runtime::Ctx::asF32(
                co_await ctx.load32(_edges + (r * w + c) * 4));
            co_await ctx.compute(2);
            if (mag > _threshold)
                ++local;
        }
    }
    if (local)
        co_await ctx.atomicAdd(_count, local);
}

sim::CoTask
SobelKernel::worker(runtime::Ctx ctx)
{
    ctx.core().setCodeRegion(runtime::Layout::codeBase + 0x2000, 896);
    co_await ctx.forEachTask(
        _phaseGrad, [this](runtime::Ctx &c, const runtime::TaskDesc &td) {
            return gradientTask(c, td);
        });
    co_await ctx.barrier();
    co_await ctx.forEachTask(
        _phaseThresh,
        [this](runtime::Ctx &c, const runtime::TaskDesc &td) {
            return thresholdTask(c, td);
        });
    co_await ctx.barrier();
}

void
SobelKernel::verify(runtime::CohesionRuntime &rt)
{
    const std::uint32_t w = _w, h = _h;
    std::uint32_t want_count = 0;
    for (std::uint32_t r = 1; r + 1 < h; ++r) {
        for (std::uint32_t c = 1; c + 1 < w; ++c) {
            auto p = [&](std::uint32_t rr, std::uint32_t cc) {
                return _input[rr * w + cc];
            };
            float gx = (p(r - 1, c + 1) + 2 * p(r, c + 1) +
                        p(r + 1, c + 1)) -
                       (p(r - 1, c - 1) + 2 * p(r, c - 1) +
                        p(r + 1, c - 1));
            float gy = (p(r + 1, c - 1) + 2 * p(r + 1, c) +
                        p(r + 1, c + 1)) -
                       (p(r - 1, c - 1) + 2 * p(r - 1, c) +
                        p(r - 1, c + 1));
            float want = std::fabs(gx) + std::fabs(gy);
            float got = rt.verifyReadF32(_edges + (r * w + c) * 4);
            // !(x <= t) so a NaN from an injected fault fails.
            fatal_if(!(std::fabs(got - want) <= 1e-2f),
                     "sobel mismatch at (", r, ",", c, "): got ", got,
                     " want ", want);
            if (want > _threshold)
                ++want_count;
        }
    }
    std::uint32_t got_count = rt.verifyRead32(_count);
    fatal_if(got_count != want_count, "sobel edge count: got ", got_count,
             " want ", want_count);
}

std::unique_ptr<Kernel>
makeSobel(const Params &params)
{
    return std::make_unique<SobelKernel>(params);
}

} // namespace kernels
