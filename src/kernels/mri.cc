#include "kernels/mri.hh"

#include <cmath>

#include "sim/logging.hh"

namespace kernels {

MriKernel::MriKernel(const Params &params) : Kernel(params)
{
    _numSamples = 16 * params.scale;
    _numVoxels = 4096 * params.scale;
    _rng = sim::Rng(params.seed ^ 0x3417);
}

void
MriKernel::setup(runtime::CohesionRuntime &rt)
{
    _ksp = rt.cohMalloc(_numSamples * 4 * 4);
    _vox = rt.cohMalloc(_numVoxels * 3 * 4);
    _qr = rt.cohMalloc(_numVoxels * 4);
    _qi = rt.cohMalloc(_numVoxels * 4);

    _hostKsp.resize(_numSamples * 4);
    for (std::uint32_t s = 0; s < _numSamples * 4; ++s) {
        _hostKsp[s] = static_cast<float>(_rng.range(-1.0, 1.0));
        rt.poke<float>(_ksp + s * 4, _hostKsp[s]);
    }
    _hostVox.resize(_numVoxels * 3);
    for (std::uint32_t v = 0; v < _numVoxels * 3; ++v) {
        _hostVox[v] = static_cast<float>(_rng.range(-3.0, 3.0));
        rt.poke<float>(_vox + v * 4, _hostVox[v]);
    }

    unsigned cores = rt.chip().totalCores();
    std::uint32_t chunk =
        std::max<std::uint32_t>(1, _numVoxels / (2 * cores));
    _phase = addPhase(rt, chunkTasks(_numVoxels, chunk));
}

sim::CoTask
MriKernel::voxelTask(runtime::Ctx &ctx, runtime::TaskDesc td)
{
    const std::uint32_t first = td.arg0;
    const std::uint32_t count = td.arg1;

    for (std::uint32_t v = first; v < first + count; ++v) {
        float x = runtime::Ctx::asF32(
            co_await ctx.load32(_vox + (v * 3 + 0) * 4));
        float y = runtime::Ctx::asF32(
            co_await ctx.load32(_vox + (v * 3 + 1) * 4));
        float z = runtime::Ctx::asF32(
            co_await ctx.load32(_vox + (v * 3 + 2) * 4));

        float qr = 0.0f, qi = 0.0f;
        for (std::uint32_t s = 0; s < _numSamples; ++s) {
            mem::Addr sa = _ksp + s * 4 * 4;
            float kx = runtime::Ctx::asF32(co_await ctx.load32(sa + 0));
            float ky = runtime::Ctx::asF32(co_await ctx.load32(sa + 4));
            float kz = runtime::Ctx::asF32(co_await ctx.load32(sa + 8));
            float phi = runtime::Ctx::asF32(
                co_await ctx.load32(sa + 12));
            // High arithmetic intensity: trig per sample.
            co_await ctx.compute(24);
            float arg = 2.0f * 3.14159265f * (kx * x + ky * y + kz * z);
            qr += phi * std::cos(arg);
            qi += phi * std::sin(arg);
        }
        co_await ctx.storeF32(_qr + v * 4, qr);
        co_await ctx.storeF32(_qi + v * 4, qi);
    }

    if (ctx.swccManaged(_qr)) {
        co_await ctx.flushRegion(_qr + first * 4, count * 4);
        co_await ctx.flushRegion(_qi + first * 4, count * 4);
    }
}

sim::CoTask
MriKernel::worker(runtime::Ctx ctx)
{
    // Large trig loop body: more I-fetch footprint than the L1I.
    ctx.core().setCodeRegion(runtime::Layout::codeBase + 0x6000, 2560);
    co_await ctx.forEachTask(
        _phase, [this](runtime::Ctx &c, const runtime::TaskDesc &td) {
            return voxelTask(c, td);
        });
    co_await ctx.barrier();
}

void
MriKernel::verify(runtime::CohesionRuntime &rt)
{
    for (std::uint32_t v = 0; v < _numVoxels; ++v) {
        float x = _hostVox[v * 3 + 0];
        float y = _hostVox[v * 3 + 1];
        float z = _hostVox[v * 3 + 2];
        float qr = 0.0f, qi = 0.0f;
        for (std::uint32_t s = 0; s < _numSamples; ++s) {
            float kx = _hostKsp[s * 4 + 0];
            float ky = _hostKsp[s * 4 + 1];
            float kz = _hostKsp[s * 4 + 2];
            float phi = _hostKsp[s * 4 + 3];
            float arg = 2.0f * 3.14159265f * (kx * x + ky * y + kz * z);
            qr += phi * std::cos(arg);
            qi += phi * std::sin(arg);
        }
        float got_r = rt.verifyReadF32(_qr + v * 4);
        float got_i = rt.verifyReadF32(_qi + v * 4);
        // !(x <= t) so a NaN from an injected fault fails.
        fatal_if(!(std::fabs(got_r - qr) <= 1e-3f + 1e-3f * std::fabs(qr)),
                 "mri Qr mismatch at voxel ", v, ": got ", got_r,
                 " want ", qr);
        fatal_if(!(std::fabs(got_i - qi) <= 1e-3f + 1e-3f * std::fabs(qi)),
                 "mri Qi mismatch at voxel ", v, ": got ", got_i,
                 " want ", qi);
    }
}

std::unique_ptr<Kernel>
makeMri(const Params &params)
{
    return std::make_unique<MriKernel>(params);
}

} // namespace kernels
