/**
 * @file
 * Shared scaffolding for the figure-reproduction benches: command-line
 * parsing (machine scale, workload scale), the four evaluation
 * configurations of Section 4.1, and result caching across benches
 * that need the same runs.
 */

#ifndef COHESION_BENCH_BENCH_COMMON_HH
#define COHESION_BENCH_BENCH_COMMON_HH

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <iostream>
#include <string>

#include "coherence/backend.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "kernels/registry.hh"

namespace bench {

struct Args
{
    unsigned clusters = 4; ///< 32 cores by default (8 per cluster).
    unsigned scale = 4;    ///< Workload size multiplier (4 => working
                           ///< sets exceed the scaled L2s, as the
                           ///< paper datasets exceed its 8 MB of L2).
    bool paper = false;    ///< Full 1024-core Table 3 machine.
    unsigned jobs = 0;     ///< Sweep worker threads (0 = all cores).
    std::string backend;   ///< Coherence backend ("" = config default).

    static Args
    parse(int argc, char **argv)
    {
        Args a;
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--clusters") && i + 1 < argc) {
                a.clusters = std::atoi(argv[++i]);
            } else if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
                a.scale = std::atoi(argv[++i]);
            } else if (!std::strcmp(argv[i], "--paper")) {
                a.paper = true;
            } else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
                a.jobs = std::atoi(argv[++i]);
            } else if (!std::strcmp(argv[i], "--backend") &&
                       i + 1 < argc) {
                a.backend = argv[++i];
                if (!coherence::backendKnown(a.backend)) {
                    std::cerr << "unknown coherence backend '"
                              << a.backend << "' (registered: "
                              << coherence::backendListString()
                              << ")\n";
                    std::exit(2);
                }
            } else if (!std::strcmp(argv[i], "--help")) {
                std::cout << "usage: " << argv[0]
                          << " [--clusters N] [--scale N] [--paper]"
                             " [--jobs N] [--backend NAME]\n";
                std::exit(0);
            }
        }
        return a;
    }

    arch::MachineConfig
    base() const
    {
        arch::MachineConfig cfg =
            paper ? arch::MachineConfig::paper1024()
                  : arch::MachineConfig::scaled(clusters);
        cfg.backend = backend;
        return cfg;
    }

    kernels::Params
    params() const
    {
        kernels::Params p;
        p.scale = scale;
        return p;
    }

    std::string
    describe() const
    {
        return base().summary() +
               sim::cat(", workload scale ", scale);
    }
};

/**
 * The realistic sparse directory for a (possibly scaled) machine:
 * Table 3 provisions 16K entries x 128 ways per bank for 128 L2s over
 * 32 banks — i.e. 2x the resident L2 lines, split across banks. The
 * same coverage rule is applied at scaled sizes.
 */
inline coherence::DirectoryConfig
realisticDirectory(const arch::MachineConfig &cfg,
                   coherence::SharerKind kind =
                       coherence::SharerKind::FullMap)
{
    std::uint64_t l2_lines =
        std::uint64_t(cfg.numClusters) * (cfg.l2Bytes / mem::lineBytes);
    std::uint32_t entries_per_bank =
        static_cast<std::uint32_t>(2 * l2_lines / cfg.numL3Banks);
    // Keep the paper's 128-way associativity (and a power-of-two set
    // count).
    if (entries_per_bank < 128)
        entries_per_bank = 128;
    return coherence::DirectoryConfig{entries_per_bank, 128, kind, 4};
}

/** The four Section 4.1 design points. */
enum class DesignPoint
{
    SWcc,        ///< No directory; software coherence only.
    HWccIdeal,   ///< Infinite full-map directory (optimistic).
    HWccReal,    ///< 128-way sparse directory (realistic).
    Cohesion,    ///< Hybrid with the same realistic directory.
    CohesionOpt, ///< Hybrid with the optimistic directory.
};

inline const char *
designPointName(DesignPoint p)
{
    switch (p) {
      case DesignPoint::SWcc:
        return "SWcc";
      case DesignPoint::HWccIdeal:
        return "HWccIdeal";
      case DesignPoint::HWccReal:
        return "HWccReal";
      case DesignPoint::Cohesion:
        return "Cohesion";
      case DesignPoint::CohesionOpt:
        return "CohesionOpt";
    }
    return "?";
}

inline arch::MachineConfig
configure(const Args &args, DesignPoint p)
{
    arch::MachineConfig cfg = args.base();
    switch (p) {
      case DesignPoint::SWcc:
        cfg.mode = arch::CoherenceMode::SWccOnly;
        break;
      case DesignPoint::HWccIdeal:
        cfg.mode = arch::CoherenceMode::HWccOnly;
        cfg.directory = coherence::DirectoryConfig::optimistic();
        break;
      case DesignPoint::HWccReal:
        cfg.mode = arch::CoherenceMode::HWccOnly;
        cfg.directory = realisticDirectory(cfg);
        break;
      case DesignPoint::Cohesion:
        cfg.mode = arch::CoherenceMode::Cohesion;
        cfg.directory = realisticDirectory(cfg);
        break;
      case DesignPoint::CohesionOpt:
        cfg.mode = arch::CoherenceMode::Cohesion;
        cfg.directory = coherence::DirectoryConfig::optimistic();
        break;
    }
    return cfg;
}

inline harness::RunResult
run(const Args &args, const std::string &kernel, DesignPoint p,
    const harness::RunOptions &opts = {})
{
    arch::MachineConfig cfg = configure(args, p);
    return harness::runKernel(cfg, kernels::kernelFactory(kernel),
                              args.params(), opts);
}

/** A declarative sweep point for one bench run. */
inline sim::SweepPoint
point(const Args &args, const std::string &kernel,
      const arch::MachineConfig &cfg, bool sample_occupancy = false)
{
    sim::SweepPoint p;
    p.label = kernel + "." + cfg.summary();
    p.kernel = kernel;
    p.cfg = cfg;
    p.params = args.params();
    p.sampleOccupancy = sample_occupancy;
    return p;
}

/**
 * Run a family of jobs on the sweep engine (--jobs N workers) and
 * return the RunResults in submission order. Benches expect every run
 * to succeed; on any failure the per-job captured log is printed and
 * the bench exits nonzero.
 */
inline std::vector<harness::RunResult>
runAll(const Args &args, std::vector<sim::SweepJob> jobs)
{
    sim::SweepEngine engine(args.jobs);
    std::vector<sim::JobResult> results = engine.run(jobs);
    std::vector<harness::RunResult> out;
    out.reserve(results.size());
    for (sim::JobResult &r : results) {
        if (!r.ok()) {
            std::cerr << "bench job failed: " << r.label << " ["
                      << sim::jobOutcomeName(r.outcome) << "] " << r.what
                      << '\n'
                      << r.log;
            std::exit(1);
        }
        out.push_back(std::move(r.run));
    }
    return out;
}

/** Convenience overload: lower declarative points and run them. */
inline std::vector<harness::RunResult>
runAll(const Args &args, const std::vector<sim::SweepPoint> &points)
{
    std::vector<sim::SweepJob> jobs;
    jobs.reserve(points.size());
    for (const sim::SweepPoint &p : points)
        jobs.push_back(sim::makeJob(p));
    return runAll(args, std::move(jobs));
}

/** Geometric mean helper for cross-benchmark aggregates. */
class GeoMean
{
  public:
    void
    add(double v)
    {
        _log += std::log(v);
        ++_n;
    }

    double value() const { return _n ? std::exp(_log / _n) : 0.0; }

  private:
    double _log = 0.0;
    unsigned _n = 0;
};

} // namespace bench

#endif // COHESION_BENCH_BENCH_COMMON_HH
