/**
 * @file
 * Latency-accounting overhead bench. Runs paper kernels with cycle
 * accounting off (the default) and on, and reports events/sec for
 * each plus the overhead of the accounting relative to off.
 *
 * The accounting budget is <=2% events/sec, the same bar the flight
 * recorder and host profiler meet: accounting off is a single bool
 * test at the bank transaction entry, and accounting on only stamps a
 * stack-resident cursor at seams the coroutine already suspends at,
 * then folds one array add at retire. Anything above 2% means an
 * instrumentation site grew a hidden cost (e.g. a heap allocation per
 * transaction, or a mark inside a hot non-suspending loop).
 *
 * The off/on pair is measured strictly back-to-back inside each rep,
 * alternating which goes first so order bias cancels, and the gated
 * overhead is the median of the per-rep paired ratios (the
 * perf_hostprof methodology — one contended stretch on a shared CI
 * box cannot swing the median). --quick runs a reduced matrix wired
 * as the perf-smoke advisory check (WARN, exit 0); --strict makes
 * the gate fail. Results are written as BENCH_latency.json with
 * --json FILE.
 */

#include <algorithm>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"

namespace {

/** Single-threaded CPU time: immune to other processes on the box,
 *  which is what a 2% budget needs (wall-clock swings far more). */
double
cpuSeconds()
{
    timespec ts;
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + ts.tv_nsec * 1e-9;
}

struct Row
{
    std::string kernel;
    double offEvSec = 0; ///< accounting disabled
    double onEvSec = 0;  ///< accounting enabled
    std::uint64_t txns = 0;       ///< completed transactions accounted
    std::uint64_t violations = 0; ///< stage-sum invariant failures
    double overhead = 0; ///< median of per-rep paired (off-on)/off
};

Row
measureRow(const arch::MachineConfig &cfg, const std::string &kernel,
           const kernels::Params &params,
           const harness::RunOptions *configs[2], unsigned reps,
           double minRepSeconds)
{
    Row row;
    row.kernel = kernel;
    std::vector<double> samples[2];
    for (unsigned i = 0; i < reps; ++i) {
        const unsigned order[2] = {i & 1u, 1u - (i & 1u)};
        for (unsigned j = 0; j < 2; ++j) {
            unsigned c = order[j];
            std::uint64_t events = 0;
            double elapsed = 0;
            do {
                double t0 = cpuSeconds();
                harness::RunResult r = harness::runKernel(
                    cfg, kernels::kernelFactory(kernel), params,
                    *configs[c]);
                elapsed += cpuSeconds() - t0;
                events += r.eventsRun;
                if (c == 1) {
                    row.txns = r.latency.completed();
                    row.violations = r.latency.violations;
                }
            } while (elapsed < minRepSeconds);
            samples[c].push_back(static_cast<double>(events) / elapsed);
        }
    }
    auto median = [](std::vector<double> &v) {
        std::sort(v.begin(), v.end());
        std::size_t n = v.size();
        return n ? (n % 2 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2)
                 : 0.0;
    };
    std::vector<double> ratios;
    for (unsigned i = 0; i < reps; ++i) {
        if (samples[0][i] > 0) {
            ratios.push_back((samples[0][i] - samples[1][i]) /
                             samples[0][i] * 100.0);
        }
    }
    row.overhead = median(ratios);
    row.offEvSec = median(samples[0]);
    row.onEvSec = median(samples[1]);
    return row;
}

void
writeJson(const std::string &path, const std::string &machine,
          unsigned scale, const std::vector<Row> &rows)
{
    std::ofstream os(path);
    os << "{\n  \"bench\": \"perf_latency\",\n";
    os << "  \"machine\": \"" << machine << "\",\n";
    os << "  \"workload_scale\": " << scale << ",\n";
    os << "  \"overhead_budget_pct\": 2.0,\n";
    os << "  \"kernels\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        os << "    {\"kernel\": \"" << r.kernel << "\""
           << ", \"off_events_per_sec\": " << std::uint64_t(r.offEvSec)
           << ", \"on_events_per_sec\": " << std::uint64_t(r.onEvSec)
           << ", \"transactions\": " << r.txns
           << ", \"violations\": " << r.violations
           << ", \"overhead_pct\": " << r.overhead << "}"
           << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool strict = false;
    unsigned scale = 0;
    unsigned reps_override = 0;
    double min_rep = 0.4;
    std::string json_path;
    std::vector<std::string> only;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick")) {
            quick = true;
        } else if (!std::strcmp(argv[i], "--strict")) {
            strict = true;
        } else if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
            scale = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--kernel") && i + 1 < argc) {
            only.push_back(argv[++i]);
        } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
            reps_override = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--min-rep") && i + 1 < argc) {
            min_rep = std::atof(argv[++i]);
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::cout << "usage: " << argv[0]
                      << " [--quick] [--strict] [--scale N]"
                         " [--reps N] [--min-rep SEC]"
                         " [--kernel NAME]... [--json FILE]\n";
            return !std::strcmp(argv[i], "--help") ? 0 : 1;
        }
    }

    arch::MachineConfig cfg = arch::MachineConfig::scaled(quick ? 4 : 8);
    kernels::Params params;
    params.scale = scale ? scale : (quick ? 2 : 4);
    const unsigned reps = reps_override ? reps_override : (quick ? 3 : 7);
    std::vector<std::string> which =
        !only.empty() ? only
        : quick       ? std::vector<std::string>{"heat", "kmeans"}
                      : kernels::allKernelNames();

    harness::RunOptions off;
    off.audit = false; // measure the protocol, not the checker
    off.recorderCapacity = 0;
    harness::RunOptions on = off;
    on.latency = true;

    std::cout << "latency-accounting overhead on " << cfg.summary()
              << ", workload scale " << params.scale << ", median of "
              << reps << " reps\n";
    std::cout << "  kernel         off ev/s      on ev/s"
                 "      txns  viol  overhead\n";
    const harness::RunOptions *configs[2] = {&off, &on};
    std::vector<Row> rows;
    double worst = 0;
    std::uint64_t violations = 0;
    for (const std::string &k : which) {
        Row r = measureRow(cfg, k, params, configs, reps, min_rep);
        rows.push_back(r);
        worst = std::max(worst, r.overhead);
        violations += r.violations;
        std::printf("  %-10s %12.0f %12.0f %9llu %5llu   %6.2f%%\n",
                    k.c_str(), r.offEvSec, r.onEvSec,
                    static_cast<unsigned long long>(r.txns),
                    static_cast<unsigned long long>(r.violations),
                    r.overhead);
    }

    if (!json_path.empty())
        writeJson(json_path, cfg.summary(), params.scale, rows);

    // The invariant is a hard failure even in advisory mode: a
    // violation is a correctness bug, not host noise.
    if (violations) {
        std::cerr << "FAIL: " << violations
                  << " stage-sum invariant violation(s)\n";
        return 1;
    }
    if (worst > 2.0) {
        std::cerr << (strict ? "FAIL" : "WARN")
                  << ": latency-accounting overhead " << worst
                  << "% exceeds the 2% budget\n";
        return strict ? 1 : 0;
    }
    std::cout << "\nPASS: latency-accounting overhead <= 2% events/sec\n";
    return 0;
}
