/**
 * @file
 * Host-profiler overhead bench. Runs paper kernels three ways —
 * profiler off, profiler on (the default 1-in-128 sampling stride), and
 * profiler + a --progress hook on the default interval — and reports
 * events/sec for each, plus the profiler's overhead relative to off.
 *
 * The profiler budget is <=2% events/sec, the same bar the flight
 * recorder meets: a Scope on a disabled profiler is one relaxed flag
 * test, and on the enabled path the per-event sampled phases read the
 * steady clock only one entry in 2^sampleShift. Anything above 2%
 * means an instrumentation site grew a hidden cost (e.g. a clock read
 * on every entry, or a Scope left spanning a co_await).
 *
 * --quick runs a reduced matrix suitable for CI (wired as the
 * `hostprof`-labeled ctest); the gate there is advisory (WARN, exit 0)
 * because shared CI boxes add wall-clock noise; --strict makes it
 * fail. Results are written as BENCH_hostprof.json with --json FILE.
 */

#include <algorithm>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "sim/host_profiler.hh"

namespace {

/** Single-threaded CPU time: immune to other processes on the box,
 *  which is what a 2% budget needs (wall-clock swings far more). */
double
cpuSeconds()
{
    timespec ts;
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + ts.tv_nsec * 1e-9;
}

struct Row
{
    std::string kernel;
    double offEvSec = 0;      ///< profiler disabled
    double onEvSec = 0;       ///< profiler at the default stride
    double progressEvSec = 0; ///< profiler + progress heartbeats
    double attributedPct = 0; ///< attributed share of the on-run wall
    double overhead = 0; ///< median of per-rep paired (off-on)/off
};

/**
 * Measure one kernel under all three configurations. The off/on pair
 * that feeds the overhead gate is measured strictly back-to-back
 * inside each rep, alternating which of the two goes first so order
 * bias cancels; the progress configuration (not gated, reported for
 * reference) rides after the pair, outside the paired window. This is
 * tighter than perf_recorder's three-way rotation: host contention
 * that varies on a ~second timescale then hits both members of a pair
 * almost equally instead of landing between them, and the overhead is
 * the median of the per-rep paired ratios so one contended stretch
 * cannot swing it. Short kernels repeat until out of the
 * timer-granularity regime. runKernel leaves the process-wide
 * profiler enabled after a profiled run, so the off configuration
 * disables it explicitly.
 */
Row
measureRow(const arch::MachineConfig &cfg, const std::string &kernel,
           const kernels::Params &params,
           const harness::RunOptions *configs[3], unsigned reps,
           double minRepSeconds)
{
    Row row;
    row.kernel = kernel;
    std::vector<double> samples[3];
    for (unsigned i = 0; i < reps; ++i) {
        // Rep i measures: [off,on] or [on,off] (alternating), then
        // progress.
        const unsigned order[3] = {i & 1u, 1u - (i & 1u), 2u};
        for (unsigned j = 0; j < 3; ++j) {
            unsigned c = order[j];
            if (!configs[c]->hostProfile)
                sim::HostProfiler::disable();
            std::uint64_t events = 0;
            double elapsed = 0;
            do {
                double t0 = cpuSeconds();
                harness::RunResult r = harness::runKernel(
                    cfg, kernels::kernelFactory(kernel), params,
                    *configs[c]);
                elapsed += cpuSeconds() - t0;
                events += r.eventsRun;
                if (c == 1 && r.hostWallSec > 0) {
                    row.attributedPct =
                        100.0 * double(r.hostProfile.attributedNs()) /
                        1e9 / r.hostWallSec;
                }
            } while (elapsed < minRepSeconds);
            samples[c].push_back(static_cast<double>(events) / elapsed);
        }
    }
    sim::HostProfiler::disable();
    auto median = [](std::vector<double> &v) {
        std::sort(v.begin(), v.end());
        std::size_t n = v.size();
        return n ? (n % 2 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2)
                 : 0.0;
    };
    std::vector<double> ratios;
    for (unsigned i = 0; i < reps; ++i) {
        if (samples[0][i] > 0) {
            ratios.push_back((samples[0][i] - samples[1][i]) /
                             samples[0][i] * 100.0);
        }
    }
    row.overhead = median(ratios);
    row.offEvSec = median(samples[0]);
    row.onEvSec = median(samples[1]);
    row.progressEvSec = median(samples[2]);
    return row;
}

void
writeJson(const std::string &path, const std::string &machine,
          unsigned scale, unsigned shift, const std::vector<Row> &rows)
{
    std::ofstream os(path);
    os << "{\n  \"bench\": \"perf_hostprof\",\n";
    os << "  \"machine\": \"" << machine << "\",\n";
    os << "  \"workload_scale\": " << scale << ",\n";
    os << "  \"sample_shift\": " << shift << ",\n";
    os << "  \"overhead_budget_pct\": 2.0,\n";
    os << "  \"kernels\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        os << "    {\"kernel\": \"" << r.kernel << "\""
           << ", \"off_events_per_sec\": " << std::uint64_t(r.offEvSec)
           << ", \"on_events_per_sec\": " << std::uint64_t(r.onEvSec)
           << ", \"progress_events_per_sec\": "
           << std::uint64_t(r.progressEvSec)
           << ", \"attributed_pct\": " << r.attributedPct
           << ", \"overhead_pct\": " << r.overhead << "}"
           << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool strict = false;
    unsigned scale = 0;
    unsigned reps_override = 0;
    unsigned shift = sim::HostProfiler::defaultSampleShift;
    double min_rep = 0.4;
    std::string json_path;
    std::vector<std::string> only;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick")) {
            quick = true;
        } else if (!std::strcmp(argv[i], "--strict")) {
            strict = true;
        } else if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
            scale = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--kernel") && i + 1 < argc) {
            only.push_back(argv[++i]);
        } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
            reps_override = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--min-rep") && i + 1 < argc) {
            min_rep = std::atof(argv[++i]);
        } else if (!std::strcmp(argv[i], "--shift") && i + 1 < argc) {
            shift = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::cout << "usage: " << argv[0]
                      << " [--quick] [--strict] [--scale N]"
                         " [--reps N] [--min-rep SEC] [--shift N]"
                         " [--kernel NAME]... [--json FILE]\n";
            return !std::strcmp(argv[i], "--help") ? 0 : 1;
        }
    }

    arch::MachineConfig cfg = arch::MachineConfig::scaled(quick ? 4 : 8);
    kernels::Params params;
    params.scale = scale ? scale : (quick ? 2 : 4);
    const unsigned reps = reps_override ? reps_override : (quick ? 3 : 7);
    std::vector<std::string> which =
        !only.empty() ? only
        : quick       ? std::vector<std::string>{"heat", "kmeans"}
                      : kernels::allKernelNames();

    harness::RunOptions off;
    off.audit = false; // measure the protocol, not the checker
    off.recorderCapacity = 0;
    harness::RunOptions on = off;
    on.hostProfile = true;
    on.hostSampleShift = shift;
    harness::RunOptions progressed = on;
    // The default chip heartbeat interval, with a sink that does no
    // I/O: measures the run-loop chunking, not the terminal.
    progressed.progress = [](sim::Tick, std::uint64_t) {};

    std::cout << "host-profiler overhead on " << cfg.summary()
              << ", workload scale " << params.scale << ", median of "
              << reps << " reps, stride 1/" << (1u << shift) << "\n";
    std::cout << "  kernel         off ev/s      on ev/s  progress ev/s"
                 "  attrib  overhead\n";
    const harness::RunOptions *configs[3] = {&off, &on, &progressed};
    std::vector<Row> rows;
    double worst = 0;
    for (const std::string &k : which) {
        Row r = measureRow(cfg, k, params, configs, reps, min_rep);
        rows.push_back(r);
        worst = std::max(worst, r.overhead);
        std::printf("  %-10s %12.0f %12.0f   %12.0f  %5.1f%%   %6.2f%%\n",
                    k.c_str(), r.offEvSec, r.onEvSec, r.progressEvSec,
                    r.attributedPct, r.overhead);
    }

    if (!json_path.empty())
        writeJson(json_path, cfg.summary(), params.scale, shift, rows);

    if (worst > 2.0) {
        std::cerr << (strict ? "FAIL" : "WARN")
                  << ": host-profiler overhead " << worst
                  << "% exceeds the 2% budget\n";
        return strict ? 1 : 0;
    }
    std::cout << "\nPASS: host-profiler overhead <= 2% events/sec\n";
    return 0;
}
