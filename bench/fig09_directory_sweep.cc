/**
 * @file
 * Figure 9:
 *  (A) HWcc slowdown vs directory entries per L3 bank (fully
 *      associative), normalized to an infinite directory;
 *  (B) the same sweep for Cohesion (far flatter: reduced sensitivity
 *      to directory capacity);
 *  (C) time-averaged (1000-cycle samples) and maximum directory
 *      occupancy for HWcc and Cohesion with unbounded directories,
 *      classified into code / stack / heap+global segments.
 *
 * The sweep axis is scaled with the machine: the paper's 256..16384
 * entries/bank correspond to 1/32 .. 2x of the per-bank share of
 * resident L2 lines; the same fractions are swept here and both the
 * fraction and absolute entry counts are printed.
 *
 * All runs — 8 kernels x 2 modes x (1 + 7 directory points) for parts
 * A/B plus 16 occupancy runs for part C — execute as one family on the
 * sweep engine (--jobs N); results are consumed in submission order,
 * so the tables are identical for any job count.
 */

#include <fstream>

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    bench::Args args = bench::Args::parse(argc, argv);

    arch::MachineConfig base = args.base();
    std::uint64_t l2_lines_per_bank =
        std::uint64_t(base.numClusters) * (base.l2Bytes / mem::lineBytes) /
        base.numL3Banks;

    harness::banner(std::cout,
                    "Figure 9A/9B: slowdown vs directory entries per "
                    "bank (fully associative, normalized to infinite)\n" +
                        args.describe());

    // Paper sweep: 256..16384 per bank with 8192 = 1x coverage of the
    // per-bank L2-line share. Sweep the same coverage fractions.
    const double fractions[] = {1.0 / 32, 1.0 / 16, 1.0 / 8, 1.0 / 4,
                                1.0 / 2,  1.0,      2.0};

    auto entriesFor = [&](double f) {
        std::uint32_t entries =
            static_cast<std::uint32_t>(f * l2_lines_per_bank);
        return entries < 16 ? 16u : entries;
    };

    // One family: per kernel x mode, the infinite reference followed
    // by the seven finite points.
    std::vector<sim::SweepPoint> points;
    for (const auto &k : kernels::allKernelNames()) {
        for (bool cohesion : {false, true}) {
            points.push_back(bench::point(
                args, k,
                bench::configure(args, cohesion
                                           ? bench::DesignPoint::CohesionOpt
                                           : bench::DesignPoint::HWccIdeal)));
            for (double f : fractions) {
                arch::MachineConfig cfg = args.base();
                cfg.mode = cohesion ? arch::CoherenceMode::Cohesion
                                    : arch::CoherenceMode::HWccOnly;
                cfg.directory = coherence::DirectoryConfig::fullyAssociative(
                    entriesFor(f));
                points.push_back(bench::point(args, k, cfg));
            }
        }
    }
    std::vector<harness::RunResult> runs = bench::runAll(args, points);

    harness::Table table({"bench", "mode", "entries/bank", "coverage",
                          "cycles", "slowdown", "dir evictions"});
    std::size_t idx = 0;
    for (const auto &k : kernels::allKernelNames()) {
        for (bool cohesion : {false, true}) {
            const harness::RunResult &inf = runs[idx++];
            const char *mode = cohesion ? "Cohesion" : "HWcc";
            table.addRow({k, mode, "inf", "-",
                          std::to_string(inf.cycles),
                          harness::Table::fmtX(1.0), "0"});
            for (double f : fractions) {
                const harness::RunResult &r = runs[idx++];
                table.addRow(
                    {k, mode, std::to_string(entriesFor(f)),
                     harness::Table::fmt(f, 3), std::to_string(r.cycles),
                     harness::Table::fmtX(double(r.cycles) / inf.cycles),
                     harness::Table::fmtCount(r.dirEvictions)});
            }
        }
    }
    table.print(std::cout);

    harness::banner(std::cout,
                    "Figure 9C: directory occupancy (time-averaged over "
                    "1000-cycle samples; unbounded directory)");

    std::vector<sim::SweepPoint> occ_points;
    for (const auto &k : kernels::allKernelNames()) {
        for (bool cohesion : {true, false}) {
            occ_points.push_back(bench::point(
                args, k,
                bench::configure(args, cohesion
                                           ? bench::DesignPoint::CohesionOpt
                                           : bench::DesignPoint::HWccIdeal),
                true));
        }
    }
    std::vector<harness::RunResult> occ_runs =
        bench::runAll(args, occ_points);

    harness::Table occ({"bench", "mode", "avg code", "avg stack",
                        "avg heap/global", "avg total", "max"});
    double sum_hw = 0, sum_coh = 0, sum_stack = 0, sum_total_hw = 0;
    idx = 0;
    for (const auto &k : kernels::allKernelNames()) {
        for (bool cohesion : {true, false}) {
            const harness::RunResult &r = occ_runs[idx++];
            if (!r.timeSeries.empty()) {
                // Raw occupancy trace behind the table (one tidy CSV
                // per kernel/mode; plottable as the Fig. 9c curves).
                std::string csv = "fig09c_occupancy_" + k + "_" +
                                  (cohesion ? "cohesion" : "hwcc") +
                                  ".csv";
                std::ofstream os(csv);
                if (os) {
                    r.timeSeries.dumpCsv(os);
                    std::cout << "  wrote " << csv << " ("
                              << r.timeSeries.rows.size()
                              << " samples)\n";
                }
            }
            occ.addRow(
                {k, cohesion ? "Cohesion" : "HWcc",
                 harness::Table::fmt(r.dirAvgBySegment[0], 1),
                 harness::Table::fmt(r.dirAvgBySegment[1], 1),
                 harness::Table::fmt(r.dirAvgBySegment[2], 1),
                 harness::Table::fmt(r.dirAvgTotal, 1),
                 harness::Table::fmt(r.dirMax, 0)});
            if (cohesion) {
                sum_coh += r.dirAvgTotal;
            } else {
                sum_hw += r.dirAvgTotal;
                sum_stack += r.dirAvgBySegment[1];
                sum_total_hw += r.dirAvgTotal;
            }
        }
    }
    occ.print(std::cout);

    std::cout << "\nDirectory utilization reduction (mean HWcc / mean "
                 "Cohesion): "
              << harness::Table::fmtX(sum_hw / sum_coh)
              << "   (paper headline: 2.1x)\n"
              << "Stack share of HWcc entries: "
              << harness::Table::fmt(100.0 * sum_stack / sum_total_hw, 1)
              << "%   (paper: ~15%)\n";
    return 0;
}
