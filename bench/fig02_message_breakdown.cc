/**
 * @file
 * Figure 2: number of messages sent by the cluster caches (L2) to the
 * global shared last-level cache (L3) for SWcc and *optimistic* HWcc
 * (infinite full-map directory), broken into the eight message
 * classes and normalized to SWcc per benchmark.
 */

#include <cmath>

#include "bench/bench_common.hh"

int
main(int argc, char **argv)
{
    bench::Args args = bench::Args::parse(argc, argv);

    harness::banner(std::cout,
                    "Figure 2: L2 output messages, SWcc vs optimistic "
                    "HWcc (normalized to SWcc)\n" +
                        args.describe());

    using MC = arch::MsgClass;
    harness::Table table({"bench", "config", "total", "norm", "RdReq",
                          "WrReq", "Instr", "Unc/Atomic", "Evict",
                          "SWFlush", "RdRel", "ProbeResp"});

    bench::GeoMean hw_over_sw;
    for (const auto &k : kernels::allKernelNames()) {
        harness::RunResult sw =
            bench::run(args, k, bench::DesignPoint::SWcc);
        harness::RunResult hw =
            bench::run(args, k, bench::DesignPoint::HWccIdeal);

        double sw_total = static_cast<double>(sw.msgs.total());
        auto row = [&](const char *label, const harness::RunResult &r) {
            table.addRow(
                {k, label, harness::Table::fmtCount(r.msgs.total()),
                 harness::Table::fmt(r.msgs.total() / sw_total),
                 harness::Table::fmtCount(r.msgs.get(MC::ReadRequest)),
                 harness::Table::fmtCount(r.msgs.get(MC::WriteRequest)),
                 harness::Table::fmtCount(
                     r.msgs.get(MC::InstructionRequest)),
                 harness::Table::fmtCount(
                     r.msgs.get(MC::UncachedAtomic)),
                 harness::Table::fmtCount(r.msgs.get(MC::CacheEviction)),
                 harness::Table::fmtCount(r.msgs.get(MC::SoftwareFlush)),
                 harness::Table::fmtCount(r.msgs.get(MC::ReadRelease)),
                 harness::Table::fmtCount(
                     r.msgs.get(MC::ProbeResponse))});
        };
        row("SWcc", sw);
        row("HWcc", hw);
        hw_over_sw.add(hw.msgs.total() / sw_total);
    }

    table.print(std::cout);
    std::cout << "\nGeomean HWcc/SWcc message ratio: "
              << harness::Table::fmtX(hw_over_sw.value())
              << "  (paper Fig. 2: HWcc sends significantly more "
                 "messages for all benchmarks except kmeans)\n";
    return 0;
}
