/**
 * @file
 * google-benchmark microbenchmarks for the simulator's building
 * blocks: event queue throughput, cache array probes/fills, directory
 * organizations (infinite vs sparse vs fully associative), sharer-set
 * operations, DRAM channel accesses, the tbloff hash, and end-to-end
 * simulated-cycles-per-host-second for a small kernel.
 */

#include <benchmark/benchmark.h>

#include "cache/cache_array.hh"
#include "coherence/directory.hh"
#include "harness/runner.hh"
#include "kernels/registry.hh"
#include "mem/address_map.hh"
#include "mem/dram.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1024; ++i)
            eq.schedule(i, [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_CacheProbeHit(benchmark::State &state)
{
    cache::CacheArray c("bench", 64 * 1024, 16);
    for (mem::Addr a = 0; a < 64 * 1024; a += mem::lineBytes) {
        cache::Line &v = c.victim(a);
        c.claim(v, a);
    }
    sim::Rng rng(1);
    for (auto _ : state) {
        mem::Addr a = (rng.next() % (64 * 1024)) & ~31u;
        benchmark::DoNotOptimize(c.probe(a));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheProbeHit);

void
BM_CacheFillEvict(benchmark::State &state)
{
    cache::CacheArray c("bench", 8 * 1024, 4);
    std::uint8_t image[mem::lineBytes] = {};
    mem::Addr a = 0;
    for (auto _ : state) {
        cache::Line &v = c.victim(a);
        if (v.valid)
            v.reset();
        c.claim(v, a);
        v.fill(image, mem::fullMask);
        a += mem::lineBytes;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheFillEvict);

void
BM_DirectoryInsertEraseInfinite(benchmark::State &state)
{
    coherence::Directory d(coherence::DirectoryConfig::optimistic(), 128);
    mem::Addr a = 0;
    for (auto _ : state) {
        d.insert(a).sharers.add(3);
        d.erase(a);
        a += mem::lineBytes;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectoryInsertEraseInfinite);

void
BM_DirectorySparseLookup(benchmark::State &state)
{
    coherence::Directory d(
        coherence::DirectoryConfig::sparseRealistic(), 128);
    for (mem::Addr a = 0; a < 8192 * mem::lineBytes; a += mem::lineBytes)
        d.insert(a);
    sim::Rng rng(2);
    for (auto _ : state) {
        mem::Addr a =
            (rng.next() % 8192) * mem::lineBytes;
        benchmark::DoNotOptimize(d.find(a));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectorySparseLookup);

void
BM_SharerSetFullMap(benchmark::State &state)
{
    for (auto _ : state) {
        coherence::SharerSet s(coherence::SharerKind::FullMap, 128);
        for (unsigned i = 0; i < 128; i += 3)
            s.add(i);
        benchmark::DoNotOptimize(s.probeTargets());
    }
}
BENCHMARK(BM_SharerSetFullMap);

void
BM_DramChannel(benchmark::State &state)
{
    mem::DramTiming t;
    mem::DramChannel ch(t);
    sim::Rng rng(3);
    sim::Tick now = 0;
    for (auto _ : state) {
        now = ch.access(rng.next() % 16, rng.next() % 1024, false, now);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramChannel);

void
BM_TblOffHash(benchmark::State &state)
{
    mem::AddressMap map(32, 8, 0xF000'0000);
    sim::Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            map.tableWordAddr(static_cast<mem::Addr>(rng.next())));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TblOffHash);

/** End-to-end: simulated cycles per host second on a small machine. */
void
BM_SimulateHeat(benchmark::State &state)
{
    for (auto _ : state) {
        arch::MachineConfig cfg = arch::MachineConfig::scaled(2);
        cfg.mode = arch::CoherenceMode::Cohesion;
        kernels::Params params;
        harness::RunResult r = harness::runKernel(
            cfg, kernels::kernelFactory("heat"), params);
        state.counters["sim_cycles"] = static_cast<double>(r.cycles);
        state.counters["sim_instructions"] =
            static_cast<double>(r.instructions);
    }
}
BENCHMARK(BM_SimulateHeat)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
